package lard

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"lard/internal/sim"
)

// goldenCases is the (profile, config, seed) grid the golden suite runs for
// every registered scheme. Three profiles with very different sharing
// behavior (replication winner, shared-read-only heavy, low-reuse
// streaming), two core counts, distinct seeds — small enough to run on
// every `go test`, varied enough that an optimization which perturbs any
// simulated outcome trips at least one cell.
var goldenCases = []struct {
	bench string
	cores int
	seed  uint64
}{
	{"BARNES", 16, 0},
	{"PATRICIA", 4, 7},
	{"CONCOMP", 16, 3},
}

// goldenHashes pins SHA-256 over the canonical JSON of the full internal
// sim.Result — completion time, time and energy breakdowns, miss counts,
// run-length histogram, page reclassifications — for every grid cell.
//
// These hashes are the repo's byte-identical-outcomes contract: performance
// work on the simulator core must never change a single one. If a hash
// mismatches, the optimization changed simulated behavior — fix the code,
// do not re-pin. (Re-pinning is reserved for deliberate model changes, via
// `go test -run TestGoldenResults -golden-regen`-style regeneration: set
// LARD_GOLDEN_REGEN=1 and copy the emitted table.)
var goldenHashes = map[string]string{
	"S-NUCA/BARNES/c16/s0":  "5c709150602c1c5a1b0ef3295286201cd9ef163cd288c0ee3fc5d809e6808a35",
	"S-NUCA/PATRICIA/c4/s7": "bd58054396f6e1af009e0a26016b14f55300402e7e8dc0d6ac0cdae5b6747430",
	"S-NUCA/CONCOMP/c16/s3": "08fe6a80b709b1c0d94b0f680da05fd1f4b473d571f0bfdc66ddd8b6c00c9c37",
	"R-NUCA/BARNES/c16/s0":  "51c613984c428ee21cd337859fd84fff13f17ce15dd02120d1d2bc4b6357aac3",
	"R-NUCA/PATRICIA/c4/s7": "824470711730d838144ed4bff91c9e5e6a66e8e7b555893522ee972efe06e3d7",
	"R-NUCA/CONCOMP/c16/s3": "a2a961b11623390010dafb31f599bd7886d3bf5350c5df4fd65710111828f0ab",
	"VR/BARNES/c16/s0":      "991d05f2547b2c1ed712694ae1319efe1c00a29666fdcab4ab68b963a255a3cf",
	"VR/PATRICIA/c4/s7":     "0cc7cedeb56c9ede3d8b8152ab7a0a6a9eb27579fc54b456468edb41f5995f81",
	"VR/CONCOMP/c16/s3":     "5fef20c3c4324be942353967614a03ce0ea71c8e16b1bce80269103fa717aef6",
	"ASR/BARNES/c16/s0":     "02839946a1b052368c742cd946db3ecad4b9e7517e76450faf45a98d1abe747e",
	"ASR/PATRICIA/c4/s7":    "29b060a07e00c819d8a6dec91b3fb8aaf05a241655902d100b3f974d3ed7e956",
	"ASR/CONCOMP/c16/s3":    "d600afdcb1a1628f2e56ecab9d748e260fe07f9318f8cb8ccc2aaee8d9a1b7ea",
	"RT/BARNES/c16/s0":      "f89f18ed971fdf275835d9b57326a31636f8e6bc7ceb3dba3afae96240232f8d",
	"RT/PATRICIA/c4/s7":     "740abc60e1375bbc49f35df255989763407104db3c607a1ac980dfd1edaa2d3f",
	"RT/CONCOMP/c16/s3":     "7f7b09674ea1462875a5b5c10cc9f379c103d2c96ebbac9479a6f825de34bc3e",
	"EHC/BARNES/c16/s0":     "25c792510d2ddb433386f2fb5d8a9416e59a8333d5a962837053bc229737ed3b",
	"EHC/PATRICIA/c4/s7":    "dad8d158118c4da9cc3a6a72da6e698d4f91f57f491c674e0106ff914ac9ed4c",
	"EHC/CONCOMP/c16/s3":    "ad74c57c9ff3d4fec7c6abbebad54c3af0da0262377a34d95d9989d2df024f92",
}

// goldenHash canonicalizes one result: the struct's JSON encoding (field
// order fixed by the struct definition, float formatting fixed by
// encoding/json) hashed with SHA-256.
func goldenHash(t *testing.T, r *sim.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// TestGoldenResults runs the grid for every registered scheme and compares
// each full sim.Result hash against the pinned table. It never skips (no
// -short carve-out): CI's analyze job greps for its presence in the test
// output, so filtering it out fails the build.
func TestGoldenResults(t *testing.T) {
	regen := os.Getenv("LARD_GOLDEN_REGEN") != ""
	seen := make(map[string]bool, len(goldenHashes))
	for _, info := range RegisteredSchemes() {
		for _, gc := range goldenCases {
			name := fmt.Sprintf("%s/%s/c%d/s%d", info.Kind, gc.bench, gc.cores, gc.seed)
			scheme, gc := info.Example, gc
			t.Run(name, func(t *testing.T) {
				prof, cfg, opt, _, err := plan(gc.bench, scheme, Options{
					Cores:     gc.cores,
					OpsScale:  0.02,
					Seed:      gc.seed,
					TrackRuns: true,
				})
				if err != nil {
					t.Fatalf("plan: %v", err)
				}
				res := sim.Run(cfg, prof, opt)
				if res == nil {
					t.Fatal("sim.Run returned nil without an interrupt")
				}
				got := goldenHash(t, res)
				if regen {
					fmt.Printf("\t%q: %q,\n", name, got)
					return
				}
				want, ok := goldenHashes[name]
				if !ok {
					t.Fatalf("no pinned hash for %s — regenerate with LARD_GOLDEN_REGEN=1", name)
				}
				seen[name] = true
				if got != want {
					t.Errorf("simulated outcome changed:\n  pinned %s\n  got    %s", want, got)
				}
				// Deterministic intra-run parallelism: the same cell re-run
				// through the conflict-aware parallel scheduler at several
				// worker widths must hash identically to the pinned value.
				// Sub-tests of the same test binary on purpose: CI's filter
				// guard greps for TestGoldenResults in the output, and these
				// must never be filterable separately from the pin they check.
				// GOMAXPROCS is raised so the scheduler actually fans out to
				// worker-lane goroutines — on a single-CPU machine it would
				// otherwise take the master-inline path, and the concurrent
				// execution machinery would go untested.
				for _, workers := range []int{2, 4} {
					workers := workers
					t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
						defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
						popt := opt
						popt.Workers = workers
						pres := sim.Run(cfg, prof, popt)
						if pres == nil {
							t.Fatal("sim.Run returned nil without an interrupt")
						}
						if ph := goldenHash(t, pres); ph != want {
							t.Errorf("parallel run (workers=%d) diverged from pinned outcome:\n  pinned %s\n  got    %s", workers, want, ph)
						}
					})
				}
			})
		}
	}
	if regen {
		t.Skip("regeneration mode: hashes printed, nothing asserted")
	}
	for name := range goldenHashes {
		if !seen[name] {
			t.Errorf("pinned hash %s matches no grid cell — stale entry", name)
		}
	}
}
