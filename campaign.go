package lard

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"lard/internal/resultstore"
)

// campaignKeyVersion is folded into every campaign id so future changes to
// member addressing can never alias old campaigns.
const campaignKeyVersion = "lard-campaign-v1"

// CampaignSpec describes a whole benchmark x scheme matrix — one figure's
// worth of runs — using the same wire types as a single run request. An
// empty Benchmarks list selects all 21 paper benchmarks; Options apply to
// every member.
type CampaignSpec struct {
	Benchmarks []string `json:"benchmarks,omitempty"`
	Schemes    []Scheme `json:"schemes"`
	Options    Options  `json:"options"`
}

// CampaignMember is one expanded (benchmark, scheme) cell of a campaign,
// carrying its canonical content address and the column label it renders
// under.
type CampaignMember struct {
	Benchmark string
	Scheme    Scheme
	Label     string
	Options   Options
	Key       string
}

// ExpandCampaign expands a campaign into its member runs: the cross product
// of benchmarks and schemes, each validated and content-addressed through
// the exact same path as a single run. Members whose content address
// coincides (duplicate scheme entries) are deduplicated, keeping the first
// occurrence, so a campaign never simulates one run twice. Column labels are
// made unique ("ASR", "ASR#2") so distinct schemes sharing a figure label
// stay distinguishable in tables.
func ExpandCampaign(c CampaignSpec) ([]CampaignMember, error) {
	if len(c.Schemes) == 0 {
		return nil, errors.New("lard: campaign has no schemes")
	}
	benches := c.Benchmarks
	if len(benches) == 0 {
		benches = Benchmarks()
	}

	// Dedup schemes first: two schemes denote the same run for every
	// benchmark exactly when they share a content address for one, so
	// probing against the first benchmark identifies duplicates. Labels are
	// assigned after deduplication — a dropped duplicate must not leave a
	// gap in the "#n" suffixes of the surviving columns.
	var schemes []Scheme
	seenScheme := make(map[string]bool, len(c.Schemes))
	for _, s := range c.Schemes {
		key, err := KeyFor(benches[0], s, c.Options)
		if err != nil {
			return nil, fmt.Errorf("campaign member %s/%s: %w", benches[0], s.Label(), err)
		}
		if seenScheme[key] {
			continue
		}
		seenScheme[key] = true
		schemes = append(schemes, s)
	}
	labels := make([]string, len(schemes))
	labelUses := make(map[string]int, len(schemes))
	for i, s := range schemes {
		l := s.Label()
		labelUses[l]++
		if n := labelUses[l]; n > 1 {
			l = fmt.Sprintf("%s#%d", l, n)
		}
		labels[i] = l
	}

	seen := make(map[string]bool)
	var members []CampaignMember
	for _, b := range benches {
		for i, s := range schemes {
			key, err := KeyFor(b, s, c.Options)
			if err != nil {
				return nil, fmt.Errorf("campaign member %s/%s: %w", b, labels[i], err)
			}
			if seen[key] { // duplicate benchmark entries dedup whole rows
				continue
			}
			seen[key] = true
			members = append(members, CampaignMember{
				Benchmark: b, Scheme: s, Label: labels[i], Options: c.Options, Key: key,
			})
		}
	}
	return members, nil
}

// CampaignKeyFor returns the campaign's content address: a hex SHA-256 over
// the sorted (member key, column label) pairs. Two campaigns share an id
// exactly when they expand to the same set of runs under the same labels:
// reordering benchmarks or schemes does not change the id, but two schemes
// that share a figure label (and therefore get order-dependent "#n"
// suffixes) form distinct campaigns when submitted in different orders —
// a client can never attach to a campaign whose columns are labeled
// differently than its own submission would be.
func CampaignKeyFor(members []CampaignMember) string {
	pairs := make([]string, len(members))
	for i, m := range members {
		pairs[i] = m.Key + "\x00" + m.Label
	}
	sort.Strings(pairs)
	h := sha256.New()
	h.Write([]byte(campaignKeyVersion))
	for _, p := range pairs {
		h.Write([]byte{'\n'})
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StoredByKey returns the stored result whose content address is key, if
// the store holds one. It is the polling fallback for ids that outlived a
// server's job registry: the registry forgets, the store does not.
func StoredByKey(st *resultstore.Store, key string) (*Result, bool, error) {
	res, _, ok, err := st.GetByKey(key)
	if err != nil || !ok {
		return nil, false, err
	}
	return export(res), true, nil
}
