package analysis

import (
	"go/ast"
)

// CtxFlowAnalyzer enforces context threading: a function that was handed
// a context.Context (or an *http.Request, which carries one) must thread
// it, not mint a fresh context.Background()/TODO(). A detached context
// severs cancellation — the client hangs up, the handler returns, and
// the simulation keeps burning a worker because the ctx it got never
// heard about it.
//
// Only the innermost function's own parameters count: a function without
// a ctx of its own (the engine's worker loop, a detached janitor
// goroutine) is legitimately the root of a new context tree.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc: "functions that receive a context.Context or *http.Request must thread it instead of calling " +
		"context.Background() or context.TODO(); detaching from the caller's context severs cancellation",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		checkCtxFlowFile(pass, f)
	}
	return nil
}

func checkCtxFlowFile(pass *Pass, f *ast.File) {
	funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		var ftype *ast.FuncType
		where := "function literal"
		if decl != nil {
			ftype = decl.Type
			where = decl.Name.Name
		} else if lit := enclosingFuncLit(f, body); lit != nil {
			ftype = lit.Type
		}
		if ftype == nil {
			return
		}
		source := ctxSource(pass, ftype)
		if source == "" {
			return
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // inner literals are checked against their own params
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range []string{"Background", "TODO"} {
				if calleeIs(pass.TypesInfo, call, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() in %s, which already receives %s: thread the caller's "+
							"context so cancellation propagates (//lint:allow ctxflow <reason> if "+
							"detaching is intentional)", name, where, source)
				}
			}
			return true
		})
	})
}

// ctxSource names the parameter that makes a fresh context suspicious:
// a context.Context or an *http.Request (whose Context() is the one to
// thread). Empty when the function has neither.
func ctxSource(pass *Pass, ftype *ast.FuncType) string {
	if ftype.Params == nil {
		return ""
	}
	for _, field := range ftype.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if typeIs(t, "context", "Context") {
			return "a context.Context parameter"
		}
		if typeIs(t, "net/http", "Request") {
			return "an *http.Request (use r.Context())"
		}
	}
	return ""
}

// enclosingFuncLit finds the literal whose body is exactly body.
func enclosingFuncLit(f *ast.File, body *ast.BlockStmt) *ast.FuncLit {
	var found *ast.FuncLit
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body == body {
			found = lit
			return false
		}
		return true
	})
	return found
}
