package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker introduces a suppression comment:
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the flagged line (trailing comment) or on the line directly
// above it. The analyzer name must belong to the running suite and the
// reason must be non-empty: a suppression that cannot say why it exists
// is a diagnostic itself, so exceptions stay explicit and grep-able.
const allowMarker = "//lint:allow"

// allowKey addresses one suppressed (file, line, analyzer) cell.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows scans every comment of files for allow markers. It
// returns the set of well-formed suppressions and one diagnostic per
// malformed one (missing analyzer, unknown analyzer, or missing reason).
func collectAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (map[allowKey]bool, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	allows := make(map[allowKey]bool)
	var malformed []Diagnostic
	bad := func(pos token.Pos, msg string) {
		malformed = append(malformed, Diagnostic{Analyzer: "suppress", Pos: pos, Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowMarker) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowMarker)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // some other //lint:allowfoo-style comment
				}
				// The directive ends at an embedded "//": anything after
				// is commentary, not part of the reason.
				rest, _, _ = strings.Cut(rest, "//")
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "lint:allow needs an analyzer name and a reason")
					continue
				}
				name := fields[0]
				if !known[name] {
					bad(c.Pos(), "lint:allow names unknown analyzer "+name)
					continue
				}
				if len(fields) < 2 {
					bad(c.Pos(), "lint:allow "+name+" needs a reason: unjustified suppressions are not allowed")
					continue
				}
				p := fset.Position(c.Pos())
				// The comment covers its own line and the next one, so
				// both trailing and preceding placements work.
				allows[allowKey{p.Filename, p.Line, name}] = true
				allows[allowKey{p.Filename, p.Line + 1, name}] = true
			}
		}
	}
	return allows, malformed
}

// filterSuppressed drops diagnostics covered by a well-formed allow.
func filterSuppressed(fset *token.FileSet, diags []Diagnostic, allows map[allowKey]bool) []Diagnostic {
	if len(allows) == 0 {
		return diags
	}
	out := diags[:0]
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if allows[allowKey{p.Filename, p.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
