package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"lard/internal/obs"
)

// internalPrefix scopes the hygiene rules to the library layers. The
// cmd/ tools legitimately print to stdout; internal packages must speak
// slog (structured, leveled, routed by the server) or render into a
// caller-supplied writer.
const internalPrefix = "lard/internal/"

// ObsHygieneAnalyzer enforces observability hygiene:
//
//   - internal packages never print: no fmt.Print*/log.Print* (or any
//     log.* output call), and no fmt.Fprint* aimed at os.Stdout or
//     os.Stderr. Logging goes through slog; metrics render into the
//     writer the caller chose.
//   - every string literal that looks like one of our metric names
//     (prefix "lard_") satisfies obs.ValidMetricName — the exact rule
//     obs.Lint applies to rendered output at test time, enforced here
//     on the source literal at build time.
//   - obs.NewHistogramVec gets a legal literal name, legal literal
//     labels, and — when bounds are written inline — finite constants in
//     strictly ascending order, so the constructor's runtime panic can
//     never fire from a literal call site.
//   - obs.SeriesDef literals carry a legal literal name
//     (obs.ValidLabelName): a timeline series name becomes a JSON key on
//     GET /v1/runs/{id}/timeline and a CSV column header, so it obeys the
//     same identifier rule as a metric label.
var ObsHygieneAnalyzer = &Analyzer{
	Name: "obshygiene",
	Doc: "internal packages log via slog only (no fmt.Print*/log.Print*, no Fprint to os.Stdout/Stderr); " +
		"\"lard_\"-prefixed string literals must be legal metric names per obs.ValidMetricName; " +
		"literal histogram bounds must be finite and strictly ascending; " +
		"literal obs.SeriesDef names must be legal label names per obs.ValidLabelName",
	Run: runObsHygiene,
}

func runObsHygiene(pass *Pass) error {
	internal := strings.HasPrefix(pass.Pkg.Path(), internalPrefix)
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CallExpr:
				if internal {
					checkNoPrinting(pass, node)
				}
				checkHistogramCall(pass, node)
			case *ast.CompositeLit:
				checkSeriesDefLit(pass, node)
			case *ast.BasicLit:
				if internal {
					checkMetricLiteral(pass, node)
				}
			}
			return true
		})
	}
	return nil
}

// checkNoPrinting flags direct terminal output from internal packages.
func checkNoPrinting(pass *Pass, call *ast.CallExpr) {
	callee := calleeOf(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	switch callee.Pkg().Path() {
	case "fmt":
		name := callee.Name()
		if name == "Print" || name == "Printf" || name == "Println" {
			pass.Reportf(call.Pos(),
				"%s.%s in an internal package: log through slog (leveled, structured, routed by "+
					"the server) instead of writing to stdout", "fmt", name)
			return
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			if std, which := isStdStream(pass, call.Args[0]); std {
				pass.Reportf(call.Pos(),
					"fmt.%s to os.%s in an internal package: log through slog instead of writing "+
						"to the process streams", name, which)
			}
		}
	case "log":
		pass.Reportf(call.Pos(),
			"log.%s in an internal package: the stdlib logger bypasses slog's level and handler "+
				"routing — use the slog.Logger the caller wired in", callee.Name())
	}
}

// isStdStream reports whether e denotes os.Stdout or os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) (bool, string) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false, ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
		return false, ""
	}
	if name := obj.Name(); name == "Stdout" || name == "Stderr" {
		return true, name
	}
	return false, ""
}

// checkMetricLiteral validates "lard_"-prefixed string literals against
// the exposition-format name rule. Catching an illegal name here — at
// the literal — beats catching it in obs.Lint after a test renders it.
func checkMetricLiteral(pass *Pass, lit *ast.BasicLit) {
	if lit.Kind != token.STRING {
		return
	}
	val, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.HasPrefix(val, "lard_") {
		return
	}
	// Rendering templates ("lard_build_info{version=%q} 1\n") are not
	// name literals; their output is what obs.Lint validates at test
	// time. Only bare names are checkable at the source level.
	if strings.ContainsAny(val, " {%\n\t") {
		return
	}
	if !obs.ValidMetricName(val) {
		pass.Reportf(lit.Pos(),
			"%q is not a legal metric name (obs.ValidMetricName): exposition names match "+
				"[a-zA-Z_:][a-zA-Z0-9_:]*", val)
	}
}

// checkHistogramCall validates literal arguments of obs.NewHistogramVec:
// the name, each literal label, and literal bounds (finite, strictly
// ascending — the constructor's documented panic conditions).
func checkHistogramCall(pass *Pass, call *ast.CallExpr) {
	if !calleeIs(pass.TypesInfo, call, obsPkg, "NewHistogramVec") || len(call.Args) != 4 {
		return
	}
	if name, ok := stringConst(pass, call.Args[0]); ok && !obs.ValidMetricName(name) {
		pass.Reportf(call.Args[0].Pos(),
			"histogram name %q is not a legal metric name (obs.ValidMetricName)", name)
	}
	if labels, ok := ast.Unparen(call.Args[2]).(*ast.CompositeLit); ok {
		for _, elt := range labels.Elts {
			if l, ok := stringConst(pass, elt); ok && !obs.ValidLabelName(l) {
				pass.Reportf(elt.Pos(),
					"histogram label %q is not a legal label name (obs.ValidLabelName)", l)
			}
		}
	}
	bounds, ok := ast.Unparen(call.Args[3]).(*ast.CompositeLit)
	if !ok {
		return // a shared bucket var (DurationBuckets etc.) is validated at its own literal
	}
	prev := 0.0
	havePrev := false
	for _, elt := range bounds.Elts {
		v, ok := floatConst(pass, elt)
		if !ok {
			return // computed bound: the constructor's runtime check still guards it
		}
		if havePrev && v <= prev {
			pass.Reportf(elt.Pos(),
				"histogram bounds must be strictly ascending: %v after %v would panic in "+
					"NewHistogramVec at init", v, prev)
		}
		prev, havePrev = v, true
	}
}

// checkSeriesDefLit validates literal telemetry series declarations
// (obs.SeriesDef{Name: ...}). The name becomes a JSON key on the
// timeline endpoint and a CSV column header, so it must satisfy the
// metric-label identifier rule — caught here at the literal, before a
// timeline is ever served.
func checkSeriesDefLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "SeriesDef" || obj.Pkg() == nil || obj.Pkg().Path() != obsPkg {
		return
	}
	for i, elt := range lit.Elts {
		var value ast.Expr
		switch e := elt.(type) {
		case *ast.KeyValueExpr:
			if key, ok := e.Key.(*ast.Ident); !ok || key.Name != "Name" {
				continue
			}
			value = e.Value
		default:
			if i != 0 { // positional: Name is the first field
				continue
			}
			value = elt
		}
		if name, ok := stringConst(pass, value); ok && !obs.ValidLabelName(name) {
			pass.Reportf(value.Pos(),
				"series name %q is not a legal series name (obs.ValidLabelName): timeline series "+
					"become JSON keys and CSV columns and match [a-zA-Z_][a-zA-Z0-9_]*", name)
		}
	}
}

// stringConst evaluates e as a constant string.
func stringConst(pass *Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// floatConst evaluates e as a constant float.
func floatConst(pass *Pass, e ast.Expr) (float64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Float, constant.Int:
		f, _ := constant.Float64Val(tv.Value)
		return f, true
	}
	return 0, false
}
