package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Key-bearing structs: every byte of their JSON encoding feeds a
// content address (run keys, campaign ids), so their field set is part
// of the store's persistent format. Adding a field without an explicit
// json tag silently changes (or, for side channels, should NOT change)
// every key — the RT<1 "silently simulating the wrong config" bug class
// from PR 2 started exactly this way.
var keyStructs = map[string][]string{
	"lard":                      {"Scheme", "Options", "CampaignSpec"},
	"lard/internal/sim":         {"Options"},
	"lard/internal/resultstore": {"Spec"},
}

// Canonicalization functions: the only places that turn a request into a
// content address. A json:"-" field is execution plumbing by contract,
// so reading one here means an observer is leaking into run identity.
// Writes are fine — SpecFor exists to strip these fields.
var canonFuncs = map[string]map[string]bool{
	"lard": {
		"KeyFor":         true,
		"CampaignKeyFor": true,
	},
	"lard/internal/resultstore": {
		"SpecFor":     true,
		"Spec.Key":    true,
		"encodeEntry": true,
	},
}

// KeyNeutralAnalyzer enforces key neutrality: explicit json tags on
// key-bearing structs, and no reads of json:"-" side channels inside
// key/spec canonicalization functions.
var KeyNeutralAnalyzer = &Analyzer{
	Name: "keyneutral",
	Doc: "key-bearing structs (sim.Options, lard.Scheme/Options/CampaignSpec, resultstore.Spec) " +
		"must tag every field explicitly with `json:...` (side channels with `json:\"-\"`), and " +
		"json:\"-\" fields must never be read inside key/spec canonicalization functions",
	Run: runKeyNeutral,
}

func runKeyNeutral(pass *Pass) error {
	wanted := map[string]bool{}
	for _, name := range keyStructs[pass.Pkg.Path()] {
		wanted[name] = true
	}
	canon := canonFuncs[pass.Pkg.Path()]

	for _, f := range pass.Files {
		if len(wanted) > 0 {
			checkKeyStructTags(pass, f, wanted)
		}
		if len(canon) > 0 {
			checkCanonReads(pass, f, canon)
		}
	}
	return nil
}

// checkKeyStructTags flags fields of key-bearing structs that lack an
// explicit json tag. The tag is the declaration of intent: either the
// field is identity (named key, frozen forever) or plumbing (`json:"-"`,
// stripped from every address). An untagged field is neither, and its
// default encoding silently becomes part of the persistent key format.
func checkKeyStructTags(pass *Pass, f *ast.File, wanted map[string]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok || !wanted[ts.Name.Name] {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			if _, present := jsonTag(structTagOf(field)); present {
				continue
			}
			names := strings.Join(fieldNames(field), ", ")
			pass.Reportf(field.Pos(),
				"field %s of key-bearing struct %s.%s needs an explicit json tag: "+
					"name it (frozen into every content address) or exclude it with json:\"-\"",
				names, pass.Pkg.Path(), ts.Name.Name)
		}
		return true
	})
}

// checkCanonReads flags reads of json:"-" fields of key-bearing structs
// inside canonicalization functions. Assignments TO such fields are the
// stripping step and stay legal.
func checkCanonReads(pass *Pass, f *ast.File, canon map[string]bool) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !canon[canonFuncName(pass, fn)] {
			continue
		}
		// Selector expressions appearing as assignment LHS are writes;
		// everything else is a read.
		writes := map[*ast.SelectorExpr]bool{}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
			return true
		})
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || writes[sel] {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			recvPath, recvName, ok := namedType(selection.Recv())
			if !ok || !isKeyStruct(recvPath, recvName) {
				return true
			}
			tag, present := jsonTagOfField(selection.Recv(), sel.Sel.Name)
			if present && tag == "-" {
				pass.Reportf(sel.Pos(),
					"json:\"-\" field %s.%s read inside canonicalization function %s: "+
						"side channels are execution plumbing and must never reach a content address",
					recvName, sel.Sel.Name, canonFuncName(pass, fn))
			}
			return true
		})
	}
}

// canonFuncName renders fn the way canonFuncs keys it: "Name" for
// functions, "Recv.Name" for methods.
func canonFuncName(pass *Pass, fn *ast.FuncDecl) string {
	if fn.Recv == nil {
		return fn.Name.Name
	}
	if _, name, ok := recvTypeOf(pass.TypesInfo, fn); ok {
		return name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// isKeyStruct reports whether pkgPath.name is in the key-struct table.
func isKeyStruct(pkgPath, name string) bool {
	for _, n := range keyStructs[pkgPath] {
		if n == name {
			return true
		}
	}
	return false
}
