package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
)

// coherencePkg is the policy registry; schemesFile is its wire-level half
// in the facade. Together they are the only places allowed to branch on
// scheme identity — everywhere else must go through the registry, or the
// next scheme lands as a switch-ladder edit in five layers again.
const (
	coherencePkg = "lard/internal/coherence"
	facadePkg    = "lard"
	schemesFile  = "schemes.go"
)

// descriptorRequired are the Descriptor fields every policy registration
// must set: identity (Scheme id and wire Name are frozen into content
// addresses), discoverability (Description feeds GET /v1/schemes), and
// the constructor without which Register panics at init.
var descriptorRequired = []string{"Scheme", "Name", "Description", "New"}

// RegistryDisciplineAnalyzer enforces registry discipline: scheme
// dispatch happens through the internal/coherence registry (plus the
// facade's schemes.go), never through switch/if ladders elsewhere, and
// every policy_*.go file self-registers a complete Descriptor in init.
var RegistryDisciplineAnalyzer = &Analyzer{
	Name: "registrydiscipline",
	Doc: "no switch or if-ladder on scheme kind (coherence.Scheme values or Scheme.Kind strings) outside " +
		"internal/coherence and schemes.go; every internal/coherence/policy_*.go registers a Descriptor " +
		"with Scheme, Name, Description and New set, from an init function",
	Run: runRegistryDiscipline,
}

func runRegistryDiscipline(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		if pass.Pkg.Path() == coherencePkg {
			base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
			if strings.HasPrefix(base, "policy_") && strings.HasSuffix(base, ".go") {
				checkPolicyFile(pass, f, base)
			}
			continue // the registry itself may branch on schemes freely
		}
		if pass.Pkg.Path() == facadePkg &&
			filepath.Base(pass.Fset.Position(f.Pos()).Filename) == schemesFile {
			continue // the wire-level registry half
		}
		checkNoSchemeLadders(pass, f)
	}
	return nil
}

// checkNoSchemeLadders flags switch statements and if-condition equality
// ladders that branch on scheme identity: a coherence.Scheme value or a
// lard.Scheme Kind string.
func checkNoSchemeLadders(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.SwitchStmt:
			if stmt.Tag != nil && isSchemeExpr(pass, stmt.Tag) {
				pass.Reportf(stmt.Pos(),
					"switch on scheme kind outside the policy registry: add the decision to the "+
						"scheme's Descriptor/schemeDef in %s (or %s) instead of a switch ladder",
					coherencePkg, schemesFile)
				return true
			}
			// A tagless switch whose cases compare scheme identity is the
			// same ladder in disguise.
			if stmt.Tag == nil {
				for _, clause := range stmt.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, cond := range cc.List {
						if pos, ok := schemeComparison(pass, cond); ok {
							reportLadder(pass, pos)
						}
					}
				}
			}
		case *ast.IfStmt:
			if pos, ok := schemeComparison(pass, stmt.Cond); ok {
				reportLadder(pass, pos)
			}
		}
		return true
	})
}

func reportLadder(pass *Pass, pos token.Pos) {
	pass.Reportf(pos,
		"comparison on scheme kind outside the policy registry: route the decision through the "+
			"scheme's Descriptor/schemeDef in %s (or %s) so new schemes need no ladder edits",
		coherencePkg, schemesFile)
}

// schemeComparison reports whether expr contains an ==/!= comparison
// whose operand is scheme identity.
func schemeComparison(pass *Pass, expr ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isSchemeExpr(pass, be.X) || isSchemeExpr(pass, be.Y) {
			if !found {
				pos, found = be.Pos(), true
			}
		}
		return true
	})
	return pos, found
}

// isSchemeExpr reports whether e denotes scheme identity: a value of
// type coherence.Scheme, or the Kind field of the facade's wire Scheme.
func isSchemeExpr(pass *Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if t := pass.TypesInfo.TypeOf(e); t != nil && typeIs(t, coherencePkg, "Scheme") {
		return true
	}
	if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Kind" {
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && typeIs(t, facadePkg, "Scheme") {
			return true
		}
	}
	return false
}

// checkPolicyFile requires a policy_*.go file to self-register: an init
// function calling Register with a Descriptor literal that sets every
// required field. Registration anywhere else (or with a computed
// descriptor) hides the scheme table from both readers and this check.
func checkPolicyFile(pass *Pass, f *ast.File, base string) {
	registered := false
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "init" || fn.Recv != nil || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !calleeIs(pass.TypesInfo, call, coherencePkg, "Register") {
				return true
			}
			registered = true
			checkDescriptorLiteral(pass, call)
			return true
		})
	}
	if !registered {
		pass.Reportf(f.Pos(),
			"%s does not register its scheme: every policy_*.go must call Register from an init "+
				"function so the scheme table is complete at process start", base)
	}
}

// checkDescriptorLiteral verifies the Register argument is a Descriptor
// composite literal carrying the required fields.
func checkDescriptorLiteral(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"Register argument must be a Descriptor literal: a computed descriptor hides the "+
				"scheme's identity from readers and from this check")
		return
	}
	set := map[string]bool{}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				set[id.Name] = true
			}
		}
	}
	for _, req := range descriptorRequired {
		if !set[req] {
			pass.Reportf(lit.Pos(),
				"incomplete Descriptor: field %s must be set (Scheme and Name are frozen into "+
					"content addresses, Description feeds discovery, New constructs the policy)", req)
		}
	}
}
