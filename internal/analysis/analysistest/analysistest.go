// Package analysistest runs one analyzer over a tree of fixture
// packages and checks its diagnostics against // want comments, the
// same contract as golang.org/x/tools' package of the same name but
// loading entirely from source so the suite needs no export data and
// no network.
//
// A fixture root holds src/<importpath>/*.go. Import paths are resolved
// inside the same root, so fixtures declare fake shims for exactly the
// packages the analyzer keys on (a ten-line "sync", a "lard/internal/obs"
// with just Tracer/Span) instead of dragging in the real dependencies.
//
// Expectations ride on the flagged line:
//
//	ch <- v // want `blocking channel send`
//
// Each diagnostic must match one want regexp on its line and each want
// must be consumed by exactly one diagnostic; anything unmatched on
// either side fails the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"lard/internal/analysis"
)

// Run loads every import path under root/src that pkgs names, runs a
// over each, and matches diagnostics against // want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		fset:   token.NewFileSet(),
		srcDir: filepath.Join(root, "src"),
		pkgs:   map[string]*loaded{},
	}
	for _, path := range pkgs {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers(ld.fset, lp.files, lp.pkg, lp.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkWants(t, ld.fset, lp.files, diags)
	}
}

// loaded is one type-checked fixture package.
type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves fixture imports from source, recursively, with a
// cache so shared shims type-check once.
type loader struct {
	fset   *token.FileSet
	srcDir string
	pkgs   map[string]*loaded
}

func (ld *loader) load(path string) (*loaded, error) {
	if lp, ok := ld.pkgs[path]; ok {
		if lp == nil {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return lp, nil
	}
	ld.pkgs[path] = nil // cycle guard

	dir := filepath.Join(ld.srcDir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	tc := &types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		lp, err := ld.load(p)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	})}
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{files: files, pkg: pkg, info: info}
	ld.pkgs[path] = lp
	return lp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRE extracts the quoted regexps of a want comment; both double
// quotes and backquotes work.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// want is one expected diagnostic.
type want struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
				for _, m := range wantRE.FindAllStringSubmatch(text[i+len("// want "):], -1) {
					raw := m[1]
					if raw == "" {
						raw = m[2]
					} else {
						raw = strings.ReplaceAll(raw, `\"`, `"`)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, raw, err)
					}
					wants[key] = append(wants[key], &want{re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic (%s): %s", key, d.Analyzer, d.Message)
		}
	}

	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.consumed {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.raw)
			}
		}
	}
}
