package analysis

import (
	"go/ast"
	"go/types"
)

const (
	enginePkg = "lard/internal/engine"
	obsPkg    = "lard/internal/obs"
)

// BusLockOrderAnalyzer enforces the engine's concurrency contract:
//
//   - The sanctioned lock order is Engine.mu before bus.mu, which holds
//     only because the bus never calls back into the Engine. Any bus
//     method invoking an Engine method inverts the order and deadlocks
//     the first time both locks contend.
//   - A bare (blocking) channel send must not happen while a mutex is
//     held: a slow receiver would stall every caller of that lock. The
//     bus's select/default publish exists precisely to keep sends
//     non-blocking under bus.mu.
//   - A span obtained from Tracer.StartTrace or Span.Child is open and
//     must be ended on every return path; leaking one corrupts the
//     trace tree the SSE progress stream renders. Spans that escape the
//     function (stored in a field, passed on, returned) are managed
//     elsewhere and exempt, as is Span.ChildAt, which returns spans
//     already ended.
var BusLockOrderAnalyzer = &Analyzer{
	Name: "buslockorder",
	Doc: "bus methods must not call Engine methods (lock order is Engine.mu then bus.mu); no blocking " +
		"channel send while a mutex is held (including *Locked functions, which hold e.mu by convention); " +
		"every span from StartTrace/Child is ended on all return paths unless it escapes the function",
	Run: runBusLockOrder,
}

func runBusLockOrder(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		if pass.Pkg.Path() == enginePkg {
			checkBusCallsEngine(pass, f)
			checkSendUnderLock(pass, f)
		}
		checkSpanEnds(pass, f)
	}
	return nil
}

// checkBusCallsEngine flags Engine method calls from bus methods.
func checkBusCallsEngine(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if p, name, ok := recvTypeOf(pass.TypesInfo, fn); !ok || p != enginePkg || name != "bus" {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if recvIsEngine(callee) {
				pass.Reportf(call.Pos(),
					"bus method %s calls Engine method %s: the bus must never call back into the "+
						"Engine — the sanctioned lock order is Engine.mu before bus.mu",
					fn.Name.Name, callee.Name())
			}
			return true
		})
	}
}

// checkSendUnderLock walks each function body in source order tracking a
// mutex-held counter (Lock increments, Unlock decrements; *Locked
// functions start held by convention) and flags bare channel sends while
// the counter is positive. Sends that are the comm clause of a select
// with a default case are non-blocking and exempt.
func checkSendUnderLock(pass *Pass, f *ast.File) {
	funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		held := 0
		if decl != nil && isLockedName(decl.Name.Name) {
			held = 1 // holds e.mu by naming convention
		}
		nonBlocking := map[*ast.SendStmt]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				markNonBlockingSends(sel, nonBlocking)
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				return false // its body is visited by funcBodies separately
			case *ast.CallExpr:
				switch mutexCallKind(pass, s) {
				case "Lock":
					held++
				case "Unlock":
					if held > 0 {
						held--
					}
				}
			case *ast.DeferStmt:
				// A deferred Unlock releases at return, not here: the
				// lock stays held for the rest of the body.
				if call := s.Call; mutexCallKind(pass, call) == "Unlock" {
					return false
				}
			case *ast.SendStmt:
				if held > 0 && !nonBlocking[s] {
					pass.Reportf(s.Pos(),
						"blocking channel send while a mutex is held: a slow receiver stalls every "+
							"caller of this lock — use a select with default (drop) or send after unlock")
				}
			}
			return true
		})
	})
}

// markNonBlockingSends records sends that are comm statements of a
// select containing a default clause — those never block.
func markNonBlockingSends(sel *ast.SelectStmt, set map[*ast.SendStmt]bool) {
	hasDefault := false
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		return
	}
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			set[send] = true
		}
	}
}

// mutexCallKind classifies a call as a mutex Lock/Unlock acquisition
// ("Lock", "Unlock") or neither (""). RLock/RUnlock count: a read lock
// still blocks writers waiting behind a stalled send.
func mutexCallKind(pass *Pass, call *ast.CallExpr) string {
	callee := calleeOf(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync" {
		return ""
	}
	switch callee.Name() {
	case "Lock", "RLock":
		return "Lock"
	case "Unlock", "RUnlock":
		return "Unlock"
	}
	return ""
}

// isLockedName reports whether name follows the engine's convention of
// suffixing functions that require e.mu held with "Locked".
func isLockedName(name string) bool {
	return len(name) > len("Locked") && name[len(name)-len("Locked"):] == "Locked"
}

// checkSpanEnds enforces span End coverage per function body.
func checkSpanEnds(pass *Pass, f *ast.File) {
	funcBodies(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		parents := parentMap(body)
		for _, sv := range spanStarts(pass, body) {
			if spanEscapes(pass, body, sv) {
				continue
			}
			checkOneSpan(pass, body, parents, sv)
		}
	})
}

// spanVar is one locally started span: the variable and where it began.
type spanVar struct {
	ident *ast.Ident // LHS of the starting assignment
	stmt  *ast.AssignStmt
}

// spanStarts finds `x := <span-start>` assignments whose RHS is
// Tracer.StartTrace or Span.Child (ChildAt returns ended spans).
func spanStarts(pass *Pass, body *ast.BlockStmt) []spanVar {
	var out []spanVar
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // inner literals are visited separately
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if methodOn(pass.TypesInfo, call, obsPkg, "Tracer", "StartTrace") ||
			methodOn(pass.TypesInfo, call, obsPkg, "Span", "Child") {
			out = append(out, spanVar{ident: id, stmt: as})
		}
		return true
	})
	return out
}

// spanEscapes reports whether the span value leaves the function: stored
// into another variable or field, passed as a call argument, returned,
// embedded in a literal, or sent on a channel. Receiver position
// (sv.End(), sv.Child(...)) is use, not escape.
func spanEscapes(pass *Pass, body *ast.BlockStmt, sv spanVar) bool {
	obj := pass.TypesInfo.Defs[sv.ident]
	if obj == nil {
		obj = pass.TypesInfo.Uses[sv.ident]
	}
	if obj == nil {
		return true // cannot resolve: stay quiet rather than guess
	}
	escaped := false
	parents := parentMap(body)
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == sv.ident || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.SelectorExpr:
			// Receiver of a method call (sv.End()) is fine; anything
			// else selecting *from* the span is still local use.
			return true
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == ast.Expr(id) {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == ast.Expr(id) {
					escaped = true
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			escaped = true
		}
		return true
	})
	return escaped
}

// checkOneSpan verifies sv is ended on every return path of body. A
// deferred End covers everything; otherwise each return after the start
// must have an End call earlier in its enclosing block chain.
func checkOneSpan(pass *Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, sv spanVar) {
	obj := pass.TypesInfo.Defs[sv.ident]
	endCalls := map[ast.Node]bool{} // statements containing sv.End()
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if _, ok := parents[call].(*ast.DeferStmt); ok {
			deferred = true
			return true
		}
		// Record the top-level statement (direct child of a block)
		// containing this End call, for path checks.
		for p := ast.Node(call); p != nil; p = parents[p] {
			if parent, ok := parents[p].(*ast.BlockStmt); ok && parent != nil {
				endCalls[p] = true
				break
			}
		}
		return true
	})
	if deferred {
		return
	}
	if len(endCalls) == 0 {
		pass.Reportf(sv.stmt.Pos(),
			"span %s is never ended: every span from StartTrace/Child must be closed "+
				"(defer %s.End()) or the trace tree leaks an open phase", sv.ident.Name, sv.ident.Name)
		return
	}
	// For every return after the start, some End must appear earlier in
	// its enclosing block chain.
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() < sv.stmt.Pos() {
			return true
		}
		if !endOnPath(parents, body, ret, endCalls) {
			pass.Reportf(ret.Pos(),
				"span %s (started at line %d) is not ended on this return path: call %s.End() "+
					"before returning or defer it at the start",
				sv.ident.Name, pass.Fset.Position(sv.stmt.Pos()).Line, sv.ident.Name)
		}
		return true
	})
}

// endOnPath reports whether an End-bearing statement precedes ret in
// some block on the path from ret up to the function body.
func endOnPath(parents map[ast.Node]ast.Node, body *ast.BlockStmt, ret *ast.ReturnStmt, endCalls map[ast.Node]bool) bool {
	node := ast.Node(ret)
	for node != nil && node != ast.Node(body) {
		parent := parents[node]
		if blk, ok := parent.(*ast.BlockStmt); ok {
			for _, s := range blk.List {
				if s.Pos() >= node.Pos() {
					break
				}
				if containsAny(s, endCalls) {
					return true
				}
			}
		}
		if parent == nil {
			break
		}
		node = parent
	}
	return false
}

// containsAny reports whether any node of set lies inside root.
func containsAny(root ast.Node, set map[ast.Node]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if set[n] {
			found = true
		}
		return !found
	})
	return found
}

// parentMap records each node's syntactic parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// recvIsEngine reports whether f is a method on engine.Engine.
func recvIsEngine(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), enginePkg, "Engine")
}
