package analysis

import (
	"go/ast"
	"go/types"
)

// checkedErrPkgs are the durability layers: an error dropped here is a
// result silently not persisted (or a corrupt entry silently served),
// which the caller then trusts as a cache hit forever.
var checkedErrPkgs = map[string]bool{
	"lard/internal/store":       true,
	"lard/internal/resultstore": true,
}

// CheckedErrAnalyzer flags silently dropped errors on store I/O paths: a
// call whose error result is discarded because the call is a bare
// statement or a defer. Explicit discards (`_ = f.Close()`) and
// //lint:allow suppressions stay visible and grep-able; a bare statement
// hides the decision entirely.
var CheckedErrAnalyzer = &Analyzer{
	Name: "checkederr",
	Doc: "in the store packages, calls returning an error must not appear as bare statements or bare " +
		"defers: handle the error, discard it explicitly with `_ =`, or suppress with a reasoned //lint:allow",
	Run: runCheckedErr,
}

func runCheckedErr(pass *Pass) error {
	if !checkedErrPkgs[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && returnsError(pass, call) {
					pass.Reportf(s.Pos(),
						"error result of %s dropped on a store I/O path: a failed write here "+
							"becomes a silent cache miss (or worse, a trusted partial entry) — handle "+
							"it, `_ =` it deliberately, or //lint:allow with a reason", callName(call))
				}
			case *ast.DeferStmt:
				if returnsError(pass, s.Call) {
					pass.Reportf(s.Pos(),
						"deferred %s drops its error on a store I/O path: wrap it in a closure "+
							"that records the error (or `defer func() { _ = ... }()` deliberately)",
						callName(s.Call))
				}
			}
			return true
		})
	}
	return nil
}

// returnsError reports whether any result of call is the error type.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// callName renders a short name for the called function.
func callName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := fn.X.(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	}
	return "call"
}
