package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// namedType resolves t (through pointers and aliases) to its defining
// package path and type name; ok=false for unnamed types.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(t)
			continue
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() == nil {
				return "", obj.Name(), true // universe (error)
			}
			return obj.Pkg().Path(), obj.Name(), true
		default:
			return "", "", false
		}
	}
}

// typeIs reports whether t names pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	p, n, ok := namedType(t)
	return ok && p == pkgPath && n == name
}

// calleeOf resolves the function or method a call expression invokes;
// nil for calls through function values, builtins and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	f, _ := obj.(*types.Func)
	return f
}

// calleeIs reports whether call invokes the package-level function
// pkgPath.name (not a method).
func calleeIs(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeOf(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// methodOn reports whether call invokes a method with the given name
// whose receiver type is pkgPath.recvName.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, recvName, name string) bool {
	f := calleeOf(info, call)
	if f == nil || f.Name() != name {
		return false
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return typeIs(sig.Recv().Type(), pkgPath, recvName)
}

// recvTypeOf resolves the defining package path and type name of a
// function declaration's receiver; ok=false for plain functions.
func recvTypeOf(info *types.Info, fn *ast.FuncDecl) (pkgPath, name string, ok bool) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return "", "", false
	}
	t := info.TypeOf(fn.Recv.List[0].Type)
	if t == nil {
		return "", "", false
	}
	return namedType(t)
}

// jsonTag extracts the json key of a struct tag literal ("" when the tag
// has no json key at all; "-" for the explicit exclusion).
func jsonTag(tag string) (value string, present bool) {
	return reflect.StructTag(tag).Lookup("json")
}

// structTagOf returns the raw tag string of field f ("" when absent).
func structTagOf(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	// Tag literals include their surrounding backquotes.
	return strings.Trim(f.Tag.Value, "`")
}

// fieldNames lists the declared names of a struct field (embedded fields
// report their type name).
func fieldNames(f *ast.Field) []string {
	if len(f.Names) > 0 {
		names := make([]string, len(f.Names))
		for i, n := range f.Names {
			names[i] = n.Name
		}
		return names
	}
	// Embedded: the field name is the (possibly pointer-stripped) type name.
	t := f.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return []string{e.Name}
	case *ast.SelectorExpr:
		return []string{e.Sel.Name}
	}
	return nil
}

// jsonTagOfField looks up the json tag of the named field on t (resolved
// through pointers/aliases to its struct underlying type).
func jsonTagOfField(t types.Type, field string) (value string, present bool) {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Alias:
			t = types.Unalias(t)
			continue
		case *types.Named:
			t = u.Underlying()
			continue
		}
		break
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return jsonTag(st.Tag(i))
		}
	}
	return "", false
}

// funcBodies yields every function body in f paired with a description
// of its declaration: the enclosing FuncDecl for declared functions and
// methods, nil for function literals.
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(nil, d.Body)
		}
		return true
	})
}
