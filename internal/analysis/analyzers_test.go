package analysis_test

import (
	"testing"

	"lard/internal/analysis"
	"lard/internal/analysis/analysistest"
)

func TestKeyNeutral(t *testing.T) {
	analysistest.Run(t, "testdata/keyneutral", analysis.KeyNeutralAnalyzer,
		"lard/internal/sim", "lard/internal/resultstore", "lard")
}

func TestRegistryDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/registrydiscipline", analysis.RegistryDisciplineAnalyzer,
		"lard/internal/coherence", "consumer", "lard")
}

func TestBusLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata/buslockorder", analysis.BusLockOrderAnalyzer,
		"lard/internal/engine", "app")
}

func TestObsHygiene(t *testing.T) {
	analysistest.Run(t, "testdata/obshygiene", analysis.ObsHygieneAnalyzer,
		"lard/internal/render")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata/ctxflow", analysis.CtxFlowAnalyzer, "app")
}

func TestCheckedErr(t *testing.T) {
	analysistest.Run(t, "testdata/checkederr", analysis.CheckedErrAnalyzer,
		"lard/internal/store")
}

// TestSuppressions proves the //lint:allow contract: a well-formed
// allow (analyzer + reason) silences exactly its line, and a missing
// reason, unknown analyzer, or bare directive both fails to suppress
// and is reported itself.
func TestSuppressions(t *testing.T) {
	analysistest.Run(t, "testdata/suppress", analysis.CheckedErrAnalyzer,
		"lard/internal/store")
}
