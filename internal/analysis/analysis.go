// Package analysis is lard's static-analysis suite: a set of analyzers
// that mechanically enforce the repo's cross-layer invariants, the ones
// that otherwise live only in reviewer memory and postmortems.
//
//   - keyneutral: key-bearing structs carry explicit json tags, and
//     json:"-" side channels are never read inside key canonicalization
//     (the PR-2 "silently simulating the wrong config" bug class).
//   - registrydiscipline: no switch/if ladders on scheme kind outside the
//     internal/coherence registry and schemes.go, and every policy_*.go
//     self-registers a complete Descriptor in init.
//   - buslockorder: the engine's lock order is e.mu before bus.mu — bus
//     methods never call back into the Engine — blocking channel sends
//     never happen under a held mutex, and every locally started span is
//     ended on all return paths.
//   - obshygiene: internal packages log via slog only, metric-name string
//     literals satisfy the obs.Lint legality rules at compile time, and
//     histogram constructors get literal ascending buckets.
//   - ctxflow: handler and dispatch code holding a ctx (or an
//     *http.Request) threads it instead of minting context.Background().
//   - checkederr: store I/O paths never silently drop an error.
//
// The suite mirrors the golang.org/x/tools/go/analysis API shape but is
// built on the standard library alone (go/ast, go/types, go/importer):
// this module is dependency-free by policy, and the vet tool protocol
// (cmd/lard-lint) plus the analysistest harness need nothing more.
//
// Intentional exceptions are declared in the code, never in a config
// file: a `//lint:allow <analyzer> <reason>` comment on the flagged line
// (or the line above it) suppresses that analyzer's diagnostics for that
// line. The reason is mandatory — an allow without one is itself a
// diagnostic — so every suppression is explicit and grep-able.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, the unit the driver and the
// tests run. The shape deliberately mirrors x/tools' analysis.Analyzer so
// the suite could migrate onto the real framework without rewriting any
// checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments.
	Name string
	// Doc is the one-paragraph description `lard-lint -list` prints.
	Doc string
	// Run inspects one package via pass and reports findings with
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state into an
// analyzer run.
type Pass struct {
	// Analyzer is the check this pass executes.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the package's syntax trees (test files included when the
	// loader saw them; analyzers skip _test.go via IsTestFile).
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression/object tables.
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The suite's invariants target production code; tests may legitimately
// enumerate schemes, print, or build throwaway contexts.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding: where, what, and which analyzer said so.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// RunAnalyzers executes every analyzer over one package and returns the
// surviving diagnostics: findings not suppressed by a well-formed
// //lint:allow comment, plus one diagnostic per malformed suppression.
// Results are ordered by position for stable output.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	// Suppressions may name any analyzer of the full suite, not just the
	// ones running now: a partial run (tests exercise one analyzer at a
	// time) must not misreport another analyzer's allow as unknown.
	allows, malformed := collectAllows(fset, files, append(All(), analyzers...))
	diags = filterSuppressed(fset, diags, allows)
	diags = append(diags, malformed...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// All returns the full suite in the order diagnostics should be grouped.
func All() []*Analyzer {
	return []*Analyzer{
		KeyNeutralAnalyzer,
		RegistryDisciplineAnalyzer,
		BusLockOrderAnalyzer,
		ObsHygieneAnalyzer,
		CtxFlowAnalyzer,
		CheckedErrAnalyzer,
	}
}
