package consumer

import "lard/internal/coherence"

// pick is the ladder the analyzer exists to kill: a per-scheme decision
// outside the registry that every new scheme must remember to extend.
func pick(s coherence.Scheme) int {
	switch s { // want `switch on scheme kind outside the policy registry`
	case coherence.Baseline:
		return 0
	case coherence.LocalityAware:
		return 1
	}
	if s == coherence.LocalityAware { // want `comparison on scheme kind outside the policy registry`
		return 2
	}
	switch {
	case s != coherence.Baseline: // want `comparison on scheme kind outside the policy registry`
		return 3
	}
	return 4
}
