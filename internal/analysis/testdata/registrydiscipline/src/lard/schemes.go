package lard

// wireLabel lives in schemes.go, the facade's registry half: branching
// on Kind here is allowed.
func wireLabel(s Scheme) string {
	if s.Kind == "rt" {
		return "locality-aware"
	}
	return s.Kind
}
