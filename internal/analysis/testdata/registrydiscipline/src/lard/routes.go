package lard

// label is outside schemes.go: Kind ladders here rot the moment a
// scheme is added.
func label(s Scheme) string {
	if s.Kind == "rt" { // want `comparison on scheme kind outside the policy registry`
		return "locality-aware"
	}
	switch {
	case s.Kind == "baseline": // want `comparison on scheme kind outside the policy registry`
		return "baseline"
	}
	return "other"
}
