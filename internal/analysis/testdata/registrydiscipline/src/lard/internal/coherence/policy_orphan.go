package coherence // want `policy_orphan.go does not register its scheme`

// orphanPolicy demonstrates a policy file that forgot to self-register:
// the scheme table would silently lack it at process start.
type orphanPolicy struct{}
