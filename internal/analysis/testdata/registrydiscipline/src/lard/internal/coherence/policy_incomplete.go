package coherence

func init() {
	Register(Descriptor{ // want `incomplete Descriptor: field Description must be set` `incomplete Descriptor: field New must be set`
		Scheme: Baseline,
		Name:   "base",
	})
}
