package coherence

var dyn = Descriptor{Scheme: LocalityAware, Name: "dyn", Description: "computed elsewhere", New: nil}

func init() {
	Register(dyn) // want `Register argument must be a Descriptor literal`
}
