package coherence

func init() {
	Register(Descriptor{
		Scheme:      LocalityAware,
		Name:        "RT",
		Description: "locality-aware replication with a per-line reuse threshold",
		New:         func(e *Engine) Policy { return nil },
	})
}
