package coherence

// Scheme identifies a coherence policy.
type Scheme uint8

const (
	Baseline Scheme = iota
	LocalityAware
)

// Engine is the simulator core a policy plugs into.
type Engine struct{}

// Policy is one coherence protocol implementation.
type Policy interface{}

// Descriptor declares a scheme to the registry.
type Descriptor struct {
	Scheme      Scheme
	Name        string
	Description string
	Label       string
	New         func(*Engine) Policy
}

// Register adds a scheme to the process-wide table.
func Register(d Descriptor) {}

// pick lives inside the registry: branching on schemes here is the
// registry's job and must not be flagged.
func pick(s Scheme) string {
	switch s {
	case LocalityAware:
		return "rt"
	}
	if s == Baseline {
		return "baseline"
	}
	return "unknown"
}
