package lard

// Scheme is the wire-level scheme description.
type Scheme struct {
	Kind string `json:"kind"`
}
