package store

func remove() error { return nil }

// cleanupPreceding carries a well-formed allow on the line above the
// finding: suppressed, no diagnostics.
func cleanupPreceding() {
	//lint:allow checkederr best-effort removal of a temp file
	remove()
}

// cleanupTrailing carries the allow on the flagged line itself.
func cleanupTrailing() {
	remove() //lint:allow checkederr best-effort removal of a temp file
}

// cleanupMissingReason shows that an allow without a reason does not
// suppress anything and is itself reported.
func cleanupMissingReason() {
	//lint:allow checkederr // want `lint:allow checkederr needs a reason: unjustified suppressions are not allowed`
	remove() // want `error result of remove dropped on a store I/O path`
}

// cleanupUnknownAnalyzer shows that naming a non-existent analyzer is
// reported instead of silently suppressing nothing.
func cleanupUnknownAnalyzer() {
	//lint:allow nosuchcheck stale copy-pasted suppression // want `lint:allow names unknown analyzer nosuchcheck`
	remove() // want `error result of remove dropped on a store I/O path`
}

// cleanupBare shows the fully-empty directive.
func cleanupBare() {
	//lint:allow // want `lint:allow needs an analyzer name and a reason`
	remove() // want `error result of remove dropped on a store I/O path`
}

// cleanupWrongAnalyzer allows a different analyzer: the checkederr
// finding still fires.
func cleanupWrongAnalyzer() {
	//lint:allow ctxflow reason aimed at the wrong check
	remove() // want `error result of remove dropped on a store I/O path`
}
