package resultstore

import "lard/internal/sim"

// Spec is the canonical, content-addressed request form.
type Spec struct {
	Benchmark string      `json:"benchmark"`
	Options   sim.Options `json:"options"`
}

// SpecFor canonicalizes a request. Writing to side channels (stripping)
// is the point of this function; reading one is the PR-2 regression:
// an execution-plumbing field steering what gets simulated under a key
// that does not record it.
func SpecFor(benchmark string, opt sim.Options) Spec {
	opt.Progress = nil
	opt.ProgressEvery = 0
	if opt.Interrupt != nil { // want `json:"-" field Options.Interrupt read inside canonicalization function SpecFor`
		opt.Seed = 0
	}
	opt.Interrupt = nil
	return Spec{Benchmark: benchmark, Options: opt}
}

func encodeEntry(s Spec) string {
	if s.Options.Progress != nil { // want `json:"-" field Options.Progress read inside canonicalization function encodeEntry`
		return "with-progress"
	}
	return s.Benchmark
}

// describe is not a canonicalization function: reading side channels
// here is fine.
func describe(s Spec) string {
	if s.Options.Progress != nil {
		return s.Benchmark + " (with progress)"
	}
	return s.Benchmark
}
