package sim

// Options mirrors the real simulator options struct: a key-bearing
// struct whose JSON encoding feeds content addresses.
type Options struct {
	Scheme        string                `json:"Scheme"`
	ASRLevel      int                   `json:"ASRLevel"`
	Seed          int64                 // want `field Seed of key-bearing struct lard/internal/sim.Options needs an explicit json tag`
	CheckInv      bool                  `json:"CheckInvariants"`
	Progress      func(done, total int) `json:"-"`
	ProgressEvery int                   `json:"-"`
	Interrupt     chan struct{}         `json:"-"`
}
