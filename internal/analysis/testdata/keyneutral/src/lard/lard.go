package lard

// Scheme is the wire-level scheme description.
type Scheme struct {
	Kind     string `json:"kind"`
	Replicas int    // want `field Replicas of key-bearing struct lard.Scheme needs an explicit json tag`
}

// Options is the facade's key-bearing request struct.
type Options struct {
	Scheme Scheme       `json:"scheme"`
	Trace  func(string) `json:"-"`
}

// KeyFor canonicalizes a request into its content address.
func KeyFor(o Options) string {
	if o.Trace != nil { // want `json:"-" field Options.Trace read inside canonicalization function KeyFor`
		return "traced"
	}
	o.Trace = nil
	return o.Scheme.Kind
}
