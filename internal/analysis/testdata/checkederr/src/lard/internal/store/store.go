package store

func write() error       { return nil }
func read() (int, error) { return 0, nil }
func count() int         { return 0 }

func flush() {
	write() // want `error result of write dropped on a store I/O path`
	count() // fine: no error to drop
	if _, err := read(); err != nil {
		return
	}
	_ = write()   // fine: explicit, grep-able discard
	defer write() // want `deferred write drops its error on a store I/O path`
}

type file struct{}

func (f *file) Close() error { return nil }

func persist(f *file) {
	defer f.Close() // want `deferred f.Close drops its error on a store I/O path`
	f.Close()       // want `error result of f.Close dropped on a store I/O path`
	defer func() {
		_ = f.Close() // fine: deliberate discard inside the closure
	}()
}
