package context

type Context interface{}

func Background() Context { return nil }
func TODO() Context       { return nil }
