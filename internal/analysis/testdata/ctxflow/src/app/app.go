package app

import (
	"context"
	"net/http"
)

func dispatch(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want `context.Background\(\) in dispatch, which already receives a context.Context parameter`
}

func handler(w any, r *http.Request) {
	_ = context.TODO() // want `context.TODO\(\) in handler, which already receives an \*http.Request`
}

// rootLoop has no context of its own: it is legitimately the root of a
// new context tree.
func rootLoop() {
	_ = context.Background()
}

// launcher's goroutine deliberately detaches; the literal has no ctx
// parameter, so it is its own root.
func launcher(ctx context.Context) {
	_ = ctx
	go func() {
		_ = context.Background()
	}()
}

func relay(ctx context.Context, fn func(context.Context)) {
	fn(ctx)
	inner := func(c context.Context) {
		_ = c
		_ = context.Background() // want `context.Background\(\) in function literal, which already receives a context.Context parameter`
	}
	inner(ctx)
}
