package http

import "context"

type Request struct{}

func (r *Request) Context() context.Context { return nil }
