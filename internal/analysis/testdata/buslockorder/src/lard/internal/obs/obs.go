package obs

// Minimal shim of the real tracing API: StartTrace and Child hand back
// open spans; ChildAt returns spans that are already ended.
type Tracer struct{}

func (t *Tracer) StartTrace(name string) *Span { return &Span{} }

type Span struct{}

func (s *Span) Child(name string) *Span   { return &Span{} }
func (s *Span) ChildAt(name string) *Span { return &Span{} }
func (s *Span) End()                      {}
func (s *Span) Note(msg string)           {}
