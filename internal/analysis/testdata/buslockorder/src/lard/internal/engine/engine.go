package engine

import "sync"

type Engine struct {
	mu sync.Mutex
	ch chan int
}

func (e *Engine) Stats() int { return 0 }

// publishJobLocked holds e.mu by naming convention: a bare send here
// blocks every Engine caller behind one slow receiver.
func (e *Engine) publishJobLocked(v int) {
	e.ch <- v // want `blocking channel send while a mutex is held`
}

func (e *Engine) submit(v int) {
	e.mu.Lock()
	e.ch <- v // want `blocking channel send while a mutex is held`
	e.mu.Unlock()
	e.ch <- v // fine: the lock is released
}

func (e *Engine) submitDeferred(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ch <- v // want `blocking channel send while a mutex is held`
}

func (e *Engine) submitNonBlocking(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case e.ch <- v: // fine: select with default never blocks
	default:
	}
}
