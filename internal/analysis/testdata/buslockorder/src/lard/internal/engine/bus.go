package engine

import "sync"

type bus struct {
	mu sync.Mutex
	e  *Engine
}

// publish calling back into the Engine inverts the sanctioned
// Engine.mu-then-bus.mu lock order.
func (b *bus) publish(v int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.e.Stats() // want `bus method publish calls Engine method Stats`
}

// release touches only its own state: fine.
func (b *bus) release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.e = nil
}
