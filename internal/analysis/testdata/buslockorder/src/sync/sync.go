package sync

// Minimal shim of the real sync package: the analyzer keys on methods
// named Lock/Unlock/RLock/RUnlock defined in package path "sync".
type Mutex struct{}

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{}

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
