package app

import "lard/internal/obs"

type holder struct {
	root *obs.Span
}

func traceDeferred(t *obs.Tracer) {
	sp := t.StartTrace("run")
	defer sp.End()
	sp.Note("working")
}

func traceStraightLine(t *obs.Tracer) {
	sp := t.StartTrace("run")
	sp.Note("working")
	sp.End()
}

func traceErrPath(t *obs.Tracer, fail bool) int {
	sp := t.StartTrace("run")
	if fail {
		return 1 // want `span sp \(started at line \d+\) is not ended on this return path`
	}
	sp.End()
	return 0
}

func traceNever(t *obs.Tracer) {
	sp := t.StartTrace("run") // want `span sp is never ended`
	sp.Note("leaked")
}

func traceChildErrPath(parent *obs.Span, fail bool) int {
	child := parent.Child("phase")
	if fail {
		return 1 // want `span child \(started at line \d+\) is not ended on this return path`
	}
	child.End()
	return 0
}

// traceEscapesField stores the span: its lifetime is managed by the
// holder, not this function.
func traceEscapesField(t *obs.Tracer, h *holder) {
	sp := t.StartTrace("run")
	h.root = sp
}

// traceEscapesReturn hands the open span to the caller.
func traceEscapesReturn(t *obs.Tracer) *obs.Span {
	sp := t.StartTrace("run")
	return sp
}

// traceChildAt imports an already-ended span: nothing to close.
func traceChildAt(parent *obs.Span) {
	done := parent.ChildAt("imported")
	done.Note("already ended")
}
