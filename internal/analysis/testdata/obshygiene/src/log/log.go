package log

func Print(args ...any)                 {}
func Printf(format string, args ...any) {}
func Println(args ...any)               {}
func Fatal(args ...any)                 {}
