package os

type File struct{}

var (
	Stdout = &File{}
	Stderr = &File{}
)
