package obs

type HistogramVec struct{}

func NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	return &HistogramVec{}
}

type SeriesKind uint8

const (
	Counter SeriesKind = iota
	Gauge
)

type SeriesDef struct {
	Name string
	Kind SeriesKind
}
