package obs

type HistogramVec struct{}

func NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	return &HistogramVec{}
}
