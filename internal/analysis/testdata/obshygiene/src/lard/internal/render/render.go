package render

import (
	"fmt"
	"log"
	"os"

	"lard/internal/obs"
)

func emit(w any) {
	fmt.Println("done")            // want `fmt.Println in an internal package`
	fmt.Printf("%d jobs\n", 3)     // want `fmt.Printf in an internal package`
	fmt.Fprintf(os.Stderr, "oops") // want `fmt.Fprintf to os.Stderr in an internal package`
	fmt.Fprint(os.Stdout, "raw")   // want `fmt.Fprint to os.Stdout in an internal package`
	fmt.Fprintf(w, "fine")         // fine: the caller chose the writer
	log.Printf("legacy %d", 7)     // want `log.Printf in an internal package`
}

const goodName = "lard_queue_wait_seconds"

func metrics() {
	name := "lard_bad-name" // want `"lard_bad-name" is not a legal metric name`
	_ = name
	_ = goodName
	_ = obs.NewHistogramVec("lard_ok_seconds", "latency", []string{"scheme"}, []float64{0.1, 0.5, 2})
	template := "lard_build_info{version=%q} 1\n" // fine: a rendering template, validated by obs.Lint on output
	_ = template
	_ = obs.NewHistogramVec(
		"lard_bad metric", // want `histogram name "lard_bad metric" is not a legal metric name`
		"latency",
		[]string{"le quux"}, // want `histogram label "le quux" is not a legal label name`
		[]float64{0.2, 0.1}, // want `histogram bounds must be strictly ascending`
	)
}

var series = []obs.SeriesDef{
	{Name: "ops", Kind: obs.Counter},
	{Name: "miss offchip", Kind: obs.Counter}, // want `series name "miss offchip" is not a legal series name`
	{"replica-hits", obs.Gauge},               // want `series name "replica-hits" is not a legal series name`
}

func dynamicSeries(n string) obs.SeriesDef {
	return obs.SeriesDef{Name: n} // fine: not a literal, validated at runtime use
}
