package fmt

// Minimal shim: the analyzer keys on function names in package "fmt".
func Print(args ...any)                         {}
func Printf(format string, args ...any)         {}
func Println(args ...any)                       {}
func Fprint(w any, args ...any)                 {}
func Fprintf(w any, format string, args ...any) {}
