// Package mem defines the base types shared by every subsystem of the lard
// simulator: physical addresses, cache-line and page arithmetic, MESI states,
// access types and the ground-truth data classes used by the workload
// generators and the Figure-1 run-length analysis.
package mem

import "fmt"

// Addr is a byte-granularity physical address.
type Addr uint64

// LineAddr is a cache-line-granularity address (Addr >> LineShift).
type LineAddr uint64

// PageAddr is a page-granularity address (Addr >> PageShift).
type PageAddr uint64

// CoreID identifies a core (equivalently: a tile, an LLC slice).
type CoreID int32

// Cycles counts simulated clock cycles at the 1 GHz core clock.
type Cycles uint64

// Geometry constants shared by the whole model (Table 1: 64-byte lines; the
// page size is the conventional 4 KB used for R-NUCA-style OS classification).
const (
	LineShift = 6
	LineBytes = 1 << LineShift
	PageShift = 12
	PageBytes = 1 << PageShift
	// LinesPerPage is the number of cache lines in one page.
	LinesPerPage = 1 << (PageShift - LineShift)
)

// LineOf returns the cache line containing address a.
func LineOf(a Addr) LineAddr { return LineAddr(a >> LineShift) }

// PageOf returns the page containing address a.
func PageOf(a Addr) PageAddr { return PageAddr(a >> PageShift) }

// PageOfLine returns the page containing cache line l.
func PageOfLine(l LineAddr) PageAddr { return PageAddr(l >> (PageShift - LineShift)) }

// AddrOfLine returns the first byte address of cache line l.
func AddrOfLine(l LineAddr) Addr { return Addr(l) << LineShift }

// LineIndexInPage returns the index (0..LinesPerPage-1) of line l within its page.
func LineIndexInPage(l LineAddr) int { return int(l) & (LinesPerPage - 1) }

// AccessType distinguishes the three kinds of memory references issued by a
// core's pipeline.
type AccessType uint8

// Access types.
const (
	IFetch AccessType = iota // instruction fetch (L1-I)
	Load                     // data read (L1-D)
	Store                    // data write (L1-D)
)

// IsWrite reports whether the access requires write permission.
func (t AccessType) IsWrite() bool { return t == Store }

// IsInstr reports whether the access goes through the L1-I cache.
func (t AccessType) IsInstr() bool { return t == IFetch }

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case IFetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// DataClass is the ground-truth classification of a cache line used by the
// motivation analysis (Figure 1). It is known to the workload generator, not
// to the protocol: the paper's point is that the replication decision must be
// based on measured locality, not on the class.
type DataClass uint8

// Data classes, in the order plotted by Figure 1.
const (
	ClassPrivate DataClass = iota
	ClassInstruction
	ClassSharedRO
	ClassSharedRW
	NumDataClasses = 4
)

// String implements fmt.Stringer.
func (c DataClass) String() string {
	switch c {
	case ClassPrivate:
		return "private"
	case ClassInstruction:
		return "instruction"
	case ClassSharedRO:
		return "shared-ro"
	case ClassSharedRW:
		return "shared-rw"
	default:
		return fmt.Sprintf("DataClass(%d)", uint8(c))
	}
}

// MESI is a cache-line coherence state. The same enumeration is used for L1
// lines, LLC replicas, and the global state recorded at the home directory.
type MESI uint8

// MESI states.
const (
	Invalid MESI = iota
	Shared
	Exclusive
	Modified
)

// Valid reports whether the line holds usable data.
func (s MESI) Valid() bool { return s != Invalid }

// Writable reports whether a hit in this state satisfies a store without a
// coherence transaction.
func (s MESI) Writable() bool { return s == Exclusive || s == Modified }

// String implements fmt.Stringer.
func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("MESI(%d)", uint8(s))
	}
}
