package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want LineAddr
	}{
		{0, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{0xFFFF_FFFF_FFFF_FFFF, 0x03FF_FFFF_FFFF_FFFF},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestPageOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want PageAddr
	}{
		{0, 0},
		{4095, 0},
		{4096, 1},
		{8191, 1},
		{8192, 2},
	}
	for _, c := range cases {
		if got := PageOf(c.addr); got != c.want {
			t.Errorf("PageOf(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestLinesPerPage(t *testing.T) {
	if LinesPerPage != 64 {
		t.Fatalf("LinesPerPage = %d, want 64 (4 KB pages / 64 B lines)", LinesPerPage)
	}
}

func TestPageOfLineConsistent(t *testing.T) {
	// PageOfLine(LineOf(a)) must equal PageOf(a) for all addresses.
	f := func(a uint64) bool {
		return PageOfLine(LineOf(Addr(a))) == PageOf(Addr(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOfLineRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		l := LineOf(Addr(a))
		return LineOf(AddrOfLine(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLineIndexInPage(t *testing.T) {
	if got := LineIndexInPage(0); got != 0 {
		t.Errorf("LineIndexInPage(0) = %d", got)
	}
	if got := LineIndexInPage(63); got != 63 {
		t.Errorf("LineIndexInPage(63) = %d", got)
	}
	if got := LineIndexInPage(64); got != 0 {
		t.Errorf("LineIndexInPage(64) = %d", got)
	}
	if got := LineIndexInPage(100); got != 36 {
		t.Errorf("LineIndexInPage(100) = %d", got)
	}
}

func TestAccessTypePredicates(t *testing.T) {
	if IFetch.IsWrite() || Load.IsWrite() || !Store.IsWrite() {
		t.Error("IsWrite: only Store must be a write")
	}
	if !IFetch.IsInstr() || Load.IsInstr() || Store.IsInstr() {
		t.Error("IsInstr: only IFetch must be an instruction access")
	}
}

func TestAccessTypeString(t *testing.T) {
	cases := map[AccessType]string{IFetch: "ifetch", Load: "load", Store: "store", 99: "AccessType(99)"}
	for at, want := range cases {
		if got := at.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", at, got, want)
		}
	}
}

func TestDataClassString(t *testing.T) {
	cases := map[DataClass]string{
		ClassPrivate:     "private",
		ClassInstruction: "instruction",
		ClassSharedRO:    "shared-ro",
		ClassSharedRW:    "shared-rw",
		99:               "DataClass(99)",
	}
	for dc, want := range cases {
		if got := dc.String(); got != want {
			t.Errorf("DataClass(%d).String() = %q, want %q", dc, got, want)
		}
	}
}

func TestMESIPredicates(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid must not be Valid")
	}
	for _, s := range []MESI{Shared, Exclusive, Modified} {
		if !s.Valid() {
			t.Errorf("%v must be Valid", s)
		}
	}
	if Invalid.Writable() || Shared.Writable() {
		t.Error("I and S must not be Writable")
	}
	if !Exclusive.Writable() || !Modified.Writable() {
		t.Error("E and M must be Writable")
	}
}

func TestMESIString(t *testing.T) {
	cases := map[MESI]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", 9: "MESI(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("MESI(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestNumDataClasses(t *testing.T) {
	if NumDataClasses != 4 {
		t.Fatalf("NumDataClasses = %d, want 4", NumDataClasses)
	}
}
