// Package directory implements the sharer-tracking structures of the
// coherence protocol: the ACKwise-p limited directory of the baseline system
// (hardware pointers that degrade to a broadcast-with-known-count on
// overflow) and a full-map option. Directory entries live inside the LLC tag
// array of the home slice ("in-cache" organization, §2.1); eviction of the
// home line therefore destroys the entry, which the engine handles by
// invalidating every cached copy (inclusive LLC).
//
// The locality classifier of the paper is deliberately NOT part of this
// package: the paper stresses that reuse tracking is decoupled from sharer
// tracking (§2.2.5). Entries carry an opaque classifier reference owned by
// internal/core.
package directory

import "lard/internal/mem"

// SharerSet tracks the cores whose local cache hierarchy (L1 caches plus, in
// replication schemes, the local LLC slice) may hold a copy of a line.
//
// With p > 0 pointers the set is precise until more than p cores share the
// line; after that it switches to broadcast mode and tracks only the count,
// exactly like ACKwise-p: invalidations are broadcast to every core, and the
// known count tells the home how many acknowledgements to expect. p == 0
// selects a full-map directory (always precise).
type SharerSet struct {
	p        int
	ptrs     []mem.CoreID
	overflow bool
	count    int
	full     map[mem.CoreID]struct{} // used when overflow (to keep the
	// simulator functionally precise; timing/energy still pay broadcast)
}

// NewSharerSet returns a sharer set with p ACKwise pointers, or a full-map
// set when p == 0.
func NewSharerSet(p int) SharerSet {
	return SharerSet{p: p}
}

// Pointers returns p (0 for full-map).
func (s *SharerSet) Pointers() int { return s.p }

// Count returns the number of sharers.
func (s *SharerSet) Count() int { return s.count }

// Overflowed reports whether the set is in broadcast mode.
func (s *SharerSet) Overflowed() bool { return s.overflow }

// Has reports whether core c is a sharer. In broadcast mode the simulator
// still answers precisely (see the full map) so functional behaviour is
// exact; hardware would conservatively probe everyone, which is what the
// timing model charges.
func (s *SharerSet) Has(c mem.CoreID) bool {
	if s.overflow {
		_, ok := s.full[c]
		return ok
	}
	for _, p := range s.ptrs {
		if p == c {
			return true
		}
	}
	return false
}

// Add inserts core c. Adding a present core is a no-op.
func (s *SharerSet) Add(c mem.CoreID) {
	if s.Has(c) {
		return
	}
	if s.overflow {
		s.full[c] = struct{}{}
		s.count++
		return
	}
	if s.p == 0 || len(s.ptrs) < s.p {
		s.ptrs = append(s.ptrs, c)
		s.count++
		return
	}
	// Pointer overflow: switch to broadcast mode, preserving membership in
	// the precise shadow map.
	s.overflow = true
	s.full = make(map[mem.CoreID]struct{}, s.count+1)
	for _, p := range s.ptrs {
		s.full[p] = struct{}{}
	}
	s.ptrs = s.ptrs[:0]
	s.full[c] = struct{}{}
	s.count++
}

// Remove deletes core c if present. When a broadcast-mode set drains to at
// most p sharers it stays in broadcast mode (hardware cannot recover the
// identities); the simulator keeps the precise shadow map for functional
// behaviour only.
func (s *SharerSet) Remove(c mem.CoreID) {
	if s.overflow {
		if _, ok := s.full[c]; ok {
			delete(s.full, c)
			s.count--
		}
		return
	}
	for i, p := range s.ptrs {
		if p == c {
			s.ptrs[i] = s.ptrs[len(s.ptrs)-1]
			s.ptrs = s.ptrs[:len(s.ptrs)-1]
			s.count--
			return
		}
	}
}

// ForEach calls fn for every sharer, in unspecified order.
func (s *SharerSet) ForEach(fn func(c mem.CoreID)) {
	if s.overflow {
		for c := range s.full {
			fn(c)
		}
		return
	}
	for _, c := range s.ptrs {
		fn(c)
	}
}

// Sharers returns the sharers as a fresh slice sorted ascending (the sort
// keeps the simulator deterministic when iterating broadcast-mode maps).
func (s *SharerSet) Sharers() []mem.CoreID {
	out := make([]mem.CoreID, 0, s.count)
	s.ForEach(func(c mem.CoreID) { out = append(out, c) })
	for i := 1; i < len(out); i++ { // insertion sort; sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Clear empties the set.
func (s *SharerSet) Clear() {
	s.ptrs = s.ptrs[:0]
	s.overflow = false
	s.count = 0
	s.full = nil
}

// Entry is the directory state attached to a home LLC line.
type Entry struct {
	// Sharers tracks cores with copies (L1 and/or local LLC replica).
	Sharers SharerSet
	// Owner is the core holding the line in E or M state; valid when
	// HasOwner. The owner is also a member of Sharers.
	Owner    mem.CoreID
	HasOwner bool
	// ReplicaSlices tracks, for cluster-level replication (§2.3.4), the LLC
	// slices (other than L1 sharers' own) currently holding a replica. For
	// cluster size 1 the replica slice equals the requesting core and is
	// covered by Sharers; this set stays empty.
	ReplicaSlices []mem.CoreID
	// Classifier is the opaque per-line locality classifier state owned by
	// internal/core; nil for schemes that do not classify.
	Classifier any
	// Version counts writes serialized at this home. Every valid copy of the
	// line records the version it read; the single-writer-multiple-reader
	// invariant implies a valid copy always matches the home version. The
	// simulator checks this on every read (see DESIGN.md §2).
	Version uint64
}

// NewEntry returns an entry with an ACKwise-p sharer set.
func NewEntry(p int) *Entry {
	return &Entry{Sharers: NewSharerSet(p)}
}

// SetOwner records c as the E/M owner.
func (e *Entry) SetOwner(c mem.CoreID) {
	e.Owner = c
	e.HasOwner = true
}

// ClearOwner removes owner status.
func (e *Entry) ClearOwner() { e.HasOwner = false }

// AddReplicaSlice records slice s as holding a cluster replica.
func (e *Entry) AddReplicaSlice(s mem.CoreID) {
	for _, r := range e.ReplicaSlices {
		if r == s {
			return
		}
	}
	e.ReplicaSlices = append(e.ReplicaSlices, s)
}

// RemoveReplicaSlice removes slice s from the cluster-replica set.
func (e *Entry) RemoveReplicaSlice(s mem.CoreID) {
	for i, r := range e.ReplicaSlices {
		if r == s {
			e.ReplicaSlices[i] = e.ReplicaSlices[len(e.ReplicaSlices)-1]
			e.ReplicaSlices = e.ReplicaSlices[:len(e.ReplicaSlices)-1]
			return
		}
	}
}

// HasReplicaSlice reports whether slice s holds a cluster replica.
func (e *Entry) HasReplicaSlice(s mem.CoreID) bool {
	for _, r := range e.ReplicaSlices {
		if r == s {
			return true
		}
	}
	return false
}
