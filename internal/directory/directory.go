// Package directory implements the sharer-tracking structures of the
// coherence protocol: the ACKwise-p limited directory of the baseline system
// (hardware pointers that degrade to a broadcast-with-known-count on
// overflow) and a full-map option. Directory entries live inside the LLC tag
// array of the home slice ("in-cache" organization, §2.1); eviction of the
// home line therefore destroys the entry, which the engine handles by
// invalidating every cached copy (inclusive LLC).
//
// The locality classifier of the paper is deliberately NOT part of this
// package: the paper stresses that reuse tracking is decoupled from sharer
// tracking (§2.2.5). Entries carry an opaque classifier reference owned by
// internal/core.
package directory

import (
	"fmt"
	"math/bits"

	"lard/internal/mem"
)

// MaxCores is the largest core count the sharer bitset can track. The
// simulated machine presets top out at 64 tiles (the paper's target), which
// lets membership live in one machine word: Has/Add/Remove are single bit
// operations and iteration is allocation-free, where the previous
// representation paid a pointer-slice scan in precise mode and a heap map in
// broadcast mode.
const MaxCores = 64

// SharerSet tracks the cores whose local cache hierarchy (L1 caches plus, in
// replication schemes, the local LLC slice) may hold a copy of a line.
//
// With p > 0 pointers the set is precise until more than p cores share the
// line; after that it switches to broadcast mode and tracks only the count,
// exactly like ACKwise-p: invalidations are broadcast to every core, and the
// known count tells the home how many acknowledgements to expect. p == 0
// selects a full-map directory (always precise).
//
// Membership is a 64-bit set in both modes (the simulator stays functionally
// precise after overflow; timing/energy still pay broadcast), so core ids
// must be below MaxCores.
type SharerSet struct {
	p        int
	bits     uint64
	overflow bool
}

// NewSharerSet returns a sharer set with p ACKwise pointers, or a full-map
// set when p == 0.
func NewSharerSet(p int) SharerSet {
	return SharerSet{p: p}
}

// Pointers returns p (0 for full-map).
func (s *SharerSet) Pointers() int { return s.p }

// Count returns the number of sharers.
func (s *SharerSet) Count() int { return bits.OnesCount64(s.bits) }

// Overflowed reports whether the set is in broadcast mode.
func (s *SharerSet) Overflowed() bool { return s.overflow }

// Has reports whether core c is a sharer. In broadcast mode the simulator
// still answers precisely (the bitset keeps exact membership) so functional
// behaviour is exact; hardware would conservatively probe everyone, which is
// what the timing model charges.
func (s *SharerSet) Has(c mem.CoreID) bool {
	return s.bits&(1<<uint(c)) != 0
}

// Add inserts core c. Adding a present core is a no-op.
func (s *SharerSet) Add(c mem.CoreID) {
	if c < 0 || c >= MaxCores {
		panic(fmt.Sprintf("directory: core id %d outside the %d-core sharer bitset", c, MaxCores))
	}
	m := uint64(1) << uint(c)
	if s.bits&m != 0 {
		return
	}
	// Pointer overflow: a p-pointer set switches to broadcast mode when a
	// new sharer arrives with all p pointers occupied. Sticky, as in
	// hardware.
	if !s.overflow && s.p != 0 && bits.OnesCount64(s.bits) >= s.p {
		s.overflow = true
	}
	s.bits |= m
}

// Remove deletes core c if present. When a broadcast-mode set drains to at
// most p sharers it stays in broadcast mode (hardware cannot recover the
// identities); the simulator keeps precise membership for functional
// behaviour only.
func (s *SharerSet) Remove(c mem.CoreID) {
	s.bits &^= 1 << uint(c)
}

// Bits returns the membership bitset (bit c set = core c is a sharer).
// Callers iterate a snapshot of it to fan out without allocating; ascending
// bit order matches the sorted order Sharers returns.
func (s *SharerSet) Bits() uint64 { return s.bits }

// ForEach calls fn for every sharer, in ascending core order.
func (s *SharerSet) ForEach(fn func(c mem.CoreID)) {
	for b := s.bits; b != 0; b &= b - 1 {
		fn(mem.CoreID(bits.TrailingZeros64(b)))
	}
}

// Sharers returns the sharers as a fresh slice sorted ascending. Hot paths
// iterate Bits instead; this remains for tests and diagnostics.
func (s *SharerSet) Sharers() []mem.CoreID {
	out := make([]mem.CoreID, 0, s.Count())
	s.ForEach(func(c mem.CoreID) { out = append(out, c) })
	return out
}

// Clear empties the set.
func (s *SharerSet) Clear() {
	s.bits = 0
	s.overflow = false
}

// Entry is the directory state attached to a home LLC line.
type Entry struct {
	// Sharers tracks cores with copies (L1 and/or local LLC replica).
	Sharers SharerSet
	// Owner is the core holding the line in E or M state; valid when
	// HasOwner. The owner is also a member of Sharers.
	Owner    mem.CoreID
	HasOwner bool
	// ReplicaSlices tracks, for cluster-level replication (§2.3.4), the LLC
	// slices (other than L1 sharers' own) currently holding a replica. For
	// cluster size 1 the replica slice equals the requesting core and is
	// covered by Sharers; this set stays empty.
	ReplicaSlices []mem.CoreID
	// Classifier is the opaque per-line locality classifier state owned by
	// internal/core; nil for schemes that do not classify.
	Classifier any
	// Version counts writes serialized at this home. Every valid copy of the
	// line records the version it read; the single-writer-multiple-reader
	// invariant implies a valid copy always matches the home version. The
	// simulator checks this on every read (see DESIGN.md §2).
	Version uint64
}

// NewEntry returns an entry with an ACKwise-p sharer set.
func NewEntry(p int) *Entry {
	return &Entry{Sharers: NewSharerSet(p)}
}

// Reset returns the entry to its NewEntry(p) state, retaining the
// ReplicaSlices capacity. It exists so an engine can recycle dead entries
// through a free list instead of allocating one per off-chip fill.
func (e *Entry) Reset(p int) {
	e.Sharers = NewSharerSet(p)
	e.Owner = 0
	e.HasOwner = false
	e.ReplicaSlices = e.ReplicaSlices[:0]
	e.Classifier = nil
	e.Version = 0
}

// SetOwner records c as the E/M owner.
func (e *Entry) SetOwner(c mem.CoreID) {
	e.Owner = c
	e.HasOwner = true
}

// ClearOwner removes owner status.
func (e *Entry) ClearOwner() { e.HasOwner = false }

// AddReplicaSlice records slice s as holding a cluster replica.
func (e *Entry) AddReplicaSlice(s mem.CoreID) {
	for _, r := range e.ReplicaSlices {
		if r == s {
			return
		}
	}
	e.ReplicaSlices = append(e.ReplicaSlices, s)
}

// RemoveReplicaSlice removes slice s from the cluster-replica set.
func (e *Entry) RemoveReplicaSlice(s mem.CoreID) {
	for i, r := range e.ReplicaSlices {
		if r == s {
			e.ReplicaSlices[i] = e.ReplicaSlices[len(e.ReplicaSlices)-1]
			e.ReplicaSlices = e.ReplicaSlices[:len(e.ReplicaSlices)-1]
			return
		}
	}
}

// HasReplicaSlice reports whether slice s holds a cluster replica.
func (e *Entry) HasReplicaSlice(s mem.CoreID) bool {
	for _, r := range e.ReplicaSlices {
		if r == s {
			return true
		}
	}
	return false
}
