package directory

// Occupancy counts live directory entries — the in-cache directory's
// population, which tracks the resident home-line footprint. It exists
// for epoch telemetry: the coherence engine bumps it where entries
// enter and leave the simulated machine, and the simulator reads Live
// only at epoch boundaries. Plain (non-atomic) increments keep the hot
// path allocation- and contention-free; an engine is single-threaded by
// contract.
type Occupancy struct {
	live uint64
}

// Inc records one entry entering service (a fresh home fill).
func (o *Occupancy) Inc() { o.live++ }

// Dec records one entry leaving service (home eviction).
func (o *Occupancy) Dec() {
	if o.live > 0 {
		o.live--
	}
}

// Shift adjusts the live count by a signed delta. The parallel scheduler's
// worker clones seed their private counter with a large bias via Shift (so
// a round executing more evictions than fills never trips Dec's zero
// guard) and the master folds the delta back with a negative Shift.
func (o *Occupancy) Shift(d int64) { o.live = uint64(int64(o.live) + d) }

// Live returns the number of entries currently in service.
func (o *Occupancy) Live() uint64 { return o.live }
