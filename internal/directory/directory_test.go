package directory

import (
	"testing"
	"testing/quick"

	"lard/internal/mem"
)

func TestSharerSetBasics(t *testing.T) {
	s := NewSharerSet(4)
	if s.Count() != 0 || s.Has(3) || s.Overflowed() {
		t.Fatal("fresh set must be empty and precise")
	}
	s.Add(3)
	s.Add(7)
	if !s.Has(3) || !s.Has(7) || s.Has(5) || s.Count() != 2 {
		t.Fatalf("membership wrong: %v", s.Sharers())
	}
	s.Add(3) // duplicate
	if s.Count() != 2 {
		t.Fatal("duplicate Add must be a no-op")
	}
	s.Remove(3)
	if s.Has(3) || s.Count() != 1 {
		t.Fatal("Remove failed")
	}
	s.Remove(99) // absent
	if s.Count() != 1 {
		t.Fatal("Remove of absent core must be a no-op")
	}
}

func TestSharerSetOverflow(t *testing.T) {
	s := NewSharerSet(4)
	for c := mem.CoreID(0); c < 4; c++ {
		s.Add(c)
	}
	if s.Overflowed() {
		t.Fatal("4 sharers must fit 4 pointers")
	}
	s.Add(4) // fifth sharer: ACKwise-4 overflows to broadcast mode
	if !s.Overflowed() {
		t.Fatal("5th sharer must overflow ACKwise-4")
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d, want 5", s.Count())
	}
	// Functional precision is kept via the shadow map.
	for c := mem.CoreID(0); c < 5; c++ {
		if !s.Has(c) {
			t.Fatalf("core %d lost on overflow", c)
		}
	}
	if s.Has(9) {
		t.Fatal("non-member reported after overflow")
	}
	// Draining below p keeps broadcast mode (hardware cannot recover IDs).
	for c := mem.CoreID(0); c < 4; c++ {
		s.Remove(c)
	}
	if !s.Overflowed() || s.Count() != 1 || !s.Has(4) {
		t.Fatal("drained overflow set must stay in broadcast mode with count 1")
	}
}

func TestFullMapNeverOverflows(t *testing.T) {
	s := NewSharerSet(0)
	for c := mem.CoreID(0); c < 64; c++ {
		s.Add(c)
	}
	if s.Overflowed() {
		t.Fatal("full-map set must never overflow")
	}
	if s.Count() != 64 {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestSharersSorted(t *testing.T) {
	s := NewSharerSet(4)
	for _, c := range []mem.CoreID{9, 2, 5} {
		s.Add(c)
	}
	got := s.Sharers()
	want := []mem.CoreID{2, 5, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sharers = %v, want %v", got, want)
		}
	}
}

func TestSharersSortedAfterOverflow(t *testing.T) {
	s := NewSharerSet(2)
	for _, c := range []mem.CoreID{9, 2, 5, 7} {
		s.Add(c)
	}
	got := s.Sharers()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Sharers not sorted: %v", got)
		}
	}
}

func TestClear(t *testing.T) {
	s := NewSharerSet(2)
	for _, c := range []mem.CoreID{1, 2, 3} {
		s.Add(c)
	}
	s.Clear()
	if s.Count() != 0 || s.Overflowed() || s.Has(1) {
		t.Fatal("Clear must fully reset")
	}
}

// TestSetMatchesMapModel: under arbitrary add/remove sequences the sharer
// set must agree with a plain map, across pointer counts including overflow.
func TestSetMatchesMapModel(t *testing.T) {
	f := func(ops []uint8, p uint8) bool {
		s := NewSharerSet(int(p % 6)) // 0..5 pointers
		model := map[mem.CoreID]bool{}
		for _, op := range ops {
			c := mem.CoreID(op % 32)
			if op&0x80 != 0 {
				s.Remove(c)
				delete(model, c)
			} else {
				s.Add(c)
				model[c] = true
			}
		}
		if s.Count() != len(model) {
			return false
		}
		for c := mem.CoreID(0); c < 32; c++ {
			if s.Has(c) != model[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryOwner(t *testing.T) {
	e := NewEntry(4)
	if e.HasOwner {
		t.Fatal("fresh entry must have no owner")
	}
	e.SetOwner(5)
	if !e.HasOwner || e.Owner != 5 {
		t.Fatal("SetOwner failed")
	}
	e.ClearOwner()
	if e.HasOwner {
		t.Fatal("ClearOwner failed")
	}
}

func TestEntryReplicaSlices(t *testing.T) {
	e := NewEntry(4)
	e.AddReplicaSlice(3)
	e.AddReplicaSlice(7)
	e.AddReplicaSlice(3) // duplicate
	if len(e.ReplicaSlices) != 2 {
		t.Fatalf("ReplicaSlices = %v", e.ReplicaSlices)
	}
	if !e.HasReplicaSlice(3) || !e.HasReplicaSlice(7) || e.HasReplicaSlice(4) {
		t.Fatal("HasReplicaSlice wrong")
	}
	e.RemoveReplicaSlice(3)
	if e.HasReplicaSlice(3) || len(e.ReplicaSlices) != 1 {
		t.Fatal("RemoveReplicaSlice failed")
	}
	e.RemoveReplicaSlice(99) // absent: no-op
	if len(e.ReplicaSlices) != 1 {
		t.Fatal("absent removal must be a no-op")
	}
}

func TestEntryVersionStartsZero(t *testing.T) {
	if NewEntry(4).Version != 0 {
		t.Fatal("fresh entry version must be 0")
	}
}
