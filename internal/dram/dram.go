// Package dram models the off-chip memory subsystem of Table 1: a number of
// on-die memory controllers (8 in the default configuration) placed at fixed
// mesh tiles, each with a fixed access latency (75 ns) and a finite bandwidth
// of 5 GB/s that is modelled as a per-controller service queue: each
// cache-line transfer occupies the controller for DRAMCyclesPerLine cycles,
// and overlapping requests queue behind one another.
package dram

import (
	"lard/internal/energy"
	"lard/internal/mem"
)

// Subsystem is the set of memory controllers.
type Subsystem struct {
	tiles    []mem.CoreID // tile hosting each controller
	free     []mem.Cycles // first idle cycle per controller
	latency  mem.Cycles
	perLine  mem.Cycles
	meter    *energy.Meter
	accessPJ float64
	accesses uint64
	queued   mem.Cycles // total queueing delay, for stats
}

// New returns a subsystem with n controllers spread evenly over a cores-tile
// chip. meter may be nil.
func New(n, cores int, latency, perLine mem.Cycles, meter *energy.Meter, accessPJ float64) *Subsystem {
	if n <= 0 || cores <= 0 || n > cores {
		panic("dram: controller count out of range")
	}
	// Controllers alternate between the top and bottom rows of the mesh,
	// spread across the columns (the conventional edge placement): column-0
	// clustering would turn the left column of links into a hot spot.
	w := 1
	for w*w < cores {
		w++
	}
	tiles := make([]mem.CoreID, n)
	for i := range tiles {
		col := (i * w) / n * 2
		if n <= w {
			col = (i * w) / n
		}
		col %= w
		if i%2 == 0 {
			tiles[i] = mem.CoreID(col) // top row
		} else {
			tiles[i] = mem.CoreID((w-1)*w + col) // bottom row
		}
	}
	return &Subsystem{
		tiles:   tiles,
		free:    make([]mem.Cycles, n),
		latency: latency,
		perLine: perLine,
		meter:   meter, accessPJ: accessPJ,
	}
}

// Controllers returns the number of controllers.
func (s *Subsystem) Controllers() int { return len(s.tiles) }

// ControllerFor returns the controller index serving line a (address
// interleaved).
func (s *Subsystem) ControllerFor(a mem.LineAddr) int { return int(uint64(a) % uint64(len(s.tiles))) }

// TileOf returns the mesh tile hosting controller i.
func (s *Subsystem) TileOf(i int) mem.CoreID { return s.tiles[i] }

// Access performs one line transfer (read or write) on controller i arriving
// at cycle at, and returns the cycle at which the data is available (reads)
// or committed (writes): queueing + occupancy + fixed latency.
func (s *Subsystem) Access(i int, at mem.Cycles) mem.Cycles {
	start := at
	if s.free[i] > start {
		start = s.free[i]
	}
	s.queued += start - at
	s.free[i] = start + s.perLine
	s.accesses++
	if s.meter != nil {
		s.meter.Add(energy.DRAM, s.accessPJ)
	}
	return start + s.perLine + s.latency
}

// WorkerView returns a lane-private view of the subsystem for the
// simulator's parallel scheduler: it shares the controller placement and
// the per-controller free table (lanes with disjoint footprints never use
// the same controller concurrently — a controller lives at a fixed tile)
// but carries its own meter and stats, merged back via MergeWorker.
func (s *Subsystem) WorkerView(meter *energy.Meter) *Subsystem {
	v := *s
	v.meter = meter
	v.accesses = 0
	v.queued = 0
	return &v
}

// MergeWorker folds a worker view's stats into the parent and resets them.
// Energy lives in the view's meter, which the caller merges separately.
func (s *Subsystem) MergeWorker(v *Subsystem) {
	s.accesses += v.accesses
	s.queued += v.queued
	v.accesses = 0
	v.queued = 0
}

// Accesses returns the number of line transfers served.
func (s *Subsystem) Accesses() uint64 { return s.accesses }

// QueuedCycles returns the cumulative queueing delay across all requests.
func (s *Subsystem) QueuedCycles() mem.Cycles { return s.queued }
