package dram

import (
	"testing"

	"lard/internal/energy"
	"lard/internal/mem"
)

func newTestDRAM(meter *energy.Meter) *Subsystem {
	return New(8, 64, 75, 13, meter, 6000)
}

func TestControllerCount(t *testing.T) {
	if got := newTestDRAM(nil).Controllers(); got != 8 {
		t.Fatalf("Controllers = %d, want 8", got)
	}
}

func TestNewPanics(t *testing.T) {
	for _, c := range []struct{ n, cores int }{{0, 64}, {65, 64}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) must panic", c.n, c.cores)
				}
			}()
			New(c.n, c.cores, 75, 13, nil, 0)
		}()
	}
}

// TestPlacementSpread: controllers must not cluster in one mesh column (the
// paper's system attaches them at chip edges); at least half the columns of
// the 8x8 mesh must host one.
func TestPlacementSpread(t *testing.T) {
	d := newTestDRAM(nil)
	cols := map[int]bool{}
	for i := 0; i < d.Controllers(); i++ {
		tile := int(d.TileOf(i))
		cols[tile%8] = true
		if row := tile / 8; row != 0 && row != 7 {
			t.Errorf("controller %d at tile %d is not on a top/bottom edge row", i, tile)
		}
	}
	if len(cols) < 4 {
		t.Fatalf("controllers occupy only %d mesh columns", len(cols))
	}
}

func TestInterleaving(t *testing.T) {
	d := newTestDRAM(nil)
	if d.ControllerFor(0) == d.ControllerFor(1) {
		t.Error("adjacent lines must interleave across controllers")
	}
	if d.ControllerFor(3) != d.ControllerFor(11) {
		t.Error("lines 8 apart must map to the same of 8 controllers")
	}
}

func TestAccessLatency(t *testing.T) {
	d := newTestDRAM(nil)
	// Idle controller: occupancy 13 + latency 75.
	if got := d.Access(0, 100); got != 100+13+75 {
		t.Fatalf("idle access done at %d, want %d", got, 188)
	}
}

// TestBandwidthQueueing: back-to-back requests to one controller serialize
// on the 13-cycle occupancy, modelling the 5 GB/s bandwidth.
func TestBandwidthQueueing(t *testing.T) {
	d := newTestDRAM(nil)
	first := d.Access(0, 0)
	second := d.Access(0, 0)
	third := d.Access(0, 0)
	if first != 88 || second != 88+13 || third != 88+26 {
		t.Fatalf("pipelined accesses done at %d,%d,%d; want 88,101,114", first, second, third)
	}
	if got := d.QueuedCycles(); got != 13+26 {
		t.Fatalf("QueuedCycles = %d, want 39", got)
	}
}

func TestControllersIndependent(t *testing.T) {
	d := newTestDRAM(nil)
	d.Access(0, 0)
	if got := d.Access(1, 0); got != 88 {
		t.Fatalf("different controller must be idle: done at %d, want 88", got)
	}
}

func TestIdleGapNoQueueing(t *testing.T) {
	d := newTestDRAM(nil)
	d.Access(0, 0)
	if got := d.Access(0, 1000); got != 1088 {
		t.Fatalf("post-idle access done at %d, want 1088", got)
	}
	if d.QueuedCycles() != 0 {
		t.Fatal("no queueing expected across an idle gap")
	}
}

func TestEnergyAndCounting(t *testing.T) {
	var meter energy.Meter
	d := newTestDRAM(&meter)
	d.Access(0, 0)
	d.Access(3, 0)
	if d.Accesses() != 2 {
		t.Fatalf("Accesses = %d, want 2", d.Accesses())
	}
	if meter.Count(energy.DRAM) != 2 || meter.PJ(energy.DRAM) != 12000 {
		t.Fatalf("DRAM energy: %v pJ over %d events", meter.PJ(energy.DRAM), meter.Count(energy.DRAM))
	}
}

func TestSmallConfigPlacement(t *testing.T) {
	// 4 controllers on a 16-core (4x4) chip must still validate and spread.
	d := New(4, 16, 75, 13, nil, 0)
	for i := 0; i < 4; i++ {
		tile := int(d.TileOf(i))
		if tile < 0 || tile >= 16 {
			t.Fatalf("controller %d at out-of-range tile %d", i, tile)
		}
	}
	_ = mem.CoreID(0)
}
