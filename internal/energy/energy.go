// Package energy implements the dynamic-energy accounting of the simulator.
//
// The paper evaluates dynamic energy with McPAT/CACTI (caches, directory,
// DRAM) and DSENT (network routers and links) at the 11 nm node. Those tools
// are not reproducible here, so this package substitutes a documented table
// of per-event energies whose *ratios* follow the published models: L1
// accesses are cheapest, LLC data accesses cost several times an L1 access,
// an LLC write costs 1.2x an LLC read (stated explicitly in §4.1), directory
// lookups are tag-array-sized, network energy is paid per flit per hop, and a
// DRAM line transfer costs two orders of magnitude more than an LLC access.
// Relative scheme comparisons (all the paper reports) are preserved under any
// constants with these orderings.
package energy

import "fmt"

// Component enumerates the energy breakdown categories plotted in Figure 6.
type Component uint8

// Breakdown components, in Figure 6 legend order.
const (
	L1I Component = iota
	L1D
	LLC
	Directory
	Router
	Link
	DRAM
	NumComponents = 7
)

// String implements fmt.Stringer.
func (c Component) String() string {
	switch c {
	case L1I:
		return "L1-I Cache"
	case L1D:
		return "L1-D Cache"
	case LLC:
		return "L2 Cache (LLC)"
	case Directory:
		return "Directory"
	case Router:
		return "Network Router"
	case Link:
		return "Network Link"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Component(%d)", uint8(c))
	}
}

// Params holds the per-event dynamic energies in picojoules.
type Params struct {
	// L1IRead/L1IWrite: one L1-I access (tag+data, 16 KB 4-way).
	L1IRead, L1IWrite float64
	// L1DRead/L1DWrite: one L1-D access (tag+data, 32 KB 4-way).
	L1DRead, L1DWrite float64
	// LLCTagRead/LLCTagWrite: LLC tag-array access (paid on every lookup;
	// the tag array is written on each lookup anyway for LRU/replica-reuse
	// updates, §2.4.2).
	LLCTagRead, LLCTagWrite float64
	// LLCDataRead/LLCDataWrite: 256 KB 8-way data array access. Write is
	// 1.2x read (§4.1).
	LLCDataRead, LLCDataWrite float64
	// DirRead/DirWrite: directory-entry (sharer list + classifier) access.
	DirWrite, DirRead float64
	// RouterFlit/LinkFlit: per flit per hop.
	RouterFlit, LinkFlit float64
	// DRAMAccess: one 64-byte line transferred to or from off-chip memory.
	DRAMAccess float64
}

// DefaultParams returns the energy table used by every experiment. Values are
// picojoules per event, chosen to sit inside the envelope of published
// CACTI/McPAT/DSENT numbers for an 11 nm low-leakage process.
func DefaultParams() Params {
	return Params{
		L1IRead: 8, L1IWrite: 10,
		L1DRead: 12, L1DWrite: 14,
		LLCTagRead: 4, LLCTagWrite: 5,
		LLCDataRead: 40, LLCDataWrite: 48, // 1.2x read, per §4.1
		DirRead: 6, DirWrite: 7,
		RouterFlit: 5, LinkFlit: 3,
		DRAMAccess: 6000,
	}
}

// Meter accumulates picojoules per component. The zero value is ready to use.
type Meter struct {
	pj     [NumComponents]float64
	counts [NumComponents]uint64
}

// Add records one event of c costing pj picojoules.
func (m *Meter) Add(c Component, pj float64) {
	m.pj[c] += pj
	m.counts[c]++
}

// AddN records n identical events of c costing pj picojoules each.
func (m *Meter) AddN(c Component, pj float64, n int) {
	m.pj[c] += pj * float64(n)
	m.counts[c] += uint64(n)
}

// PJ returns the accumulated picojoules for component c.
func (m *Meter) PJ(c Component) float64 { return m.pj[c] }

// Count returns the number of events recorded for component c.
func (m *Meter) Count(c Component) uint64 { return m.counts[c] }

// Total returns the accumulated picojoules across all components.
func (m *Meter) Total() float64 {
	var t float64
	for _, v := range m.pj {
		t += v
	}
	return t
}

// Breakdown returns a copy of the per-component picojoule totals indexed by
// Component.
func (m *Meter) Breakdown() [NumComponents]float64 { return m.pj }

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

// AddMeter accumulates other into m component-wise.
func (m *Meter) AddMeter(other *Meter) {
	for i := range m.pj {
		m.pj[i] += other.pj[i]
		m.counts[i] += other.counts[i]
	}
}
