package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComponentStrings(t *testing.T) {
	want := map[Component]string{
		L1I: "L1-I Cache", L1D: "L1-D Cache", LLC: "L2 Cache (LLC)",
		Directory: "Directory", Router: "Network Router", Link: "Network Link",
		DRAM: "DRAM",
	}
	for c, w := range want {
		if got := c.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", c, got, w)
		}
	}
	if Component(42).String() != "Component(42)" {
		t.Error("unknown component string")
	}
}

// TestParamOrdering checks the physical orderings the model relies on (see
// package doc): L1 < LLC data, LLC write = 1.2x read (§4.1), DRAM dominates.
func TestParamOrdering(t *testing.T) {
	p := DefaultParams()
	if !(p.L1IRead < p.LLCDataRead && p.L1DRead < p.LLCDataRead) {
		t.Error("L1 access must be cheaper than LLC data access")
	}
	if ratio := p.LLCDataWrite / p.LLCDataRead; math.Abs(ratio-1.2) > 1e-9 {
		t.Errorf("LLC write/read ratio = %.3f, want 1.2 (stated in §4.1)", ratio)
	}
	if p.DRAMAccess < 50*p.LLCDataRead {
		t.Error("a DRAM line transfer must dominate an LLC access by orders of magnitude")
	}
	if !(p.LLCTagRead < p.LLCDataRead) {
		t.Error("tag access must be cheaper than data access")
	}
	if p.RouterFlit <= 0 || p.LinkFlit <= 0 {
		t.Error("network energies must be positive")
	}
}

func TestMeterAdd(t *testing.T) {
	var m Meter
	m.Add(L1I, 10)
	m.Add(L1I, 5)
	m.Add(DRAM, 6000)
	if got := m.PJ(L1I); got != 15 {
		t.Errorf("PJ(L1I) = %v, want 15", got)
	}
	if got := m.Count(L1I); got != 2 {
		t.Errorf("Count(L1I) = %d, want 2", got)
	}
	if got := m.Total(); got != 6015 {
		t.Errorf("Total = %v, want 6015", got)
	}
}

func TestMeterAddN(t *testing.T) {
	var m Meter
	m.AddN(Router, 5, 9)
	if m.PJ(Router) != 45 || m.Count(Router) != 9 {
		t.Errorf("AddN: pj=%v count=%d", m.PJ(Router), m.Count(Router))
	}
}

func TestMeterBreakdownIsCopy(t *testing.T) {
	var m Meter
	m.Add(LLC, 40)
	b := m.Breakdown()
	b[LLC] = 0
	if m.PJ(LLC) != 40 {
		t.Error("Breakdown must return a copy")
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.Add(Link, 3)
	m.Reset()
	if m.Total() != 0 || m.Count(Link) != 0 {
		t.Error("Reset must zero the meter")
	}
}

func TestMeterAddMeter(t *testing.T) {
	var a, b Meter
	a.Add(L1D, 12)
	b.Add(L1D, 2)
	b.Add(DRAM, 100)
	a.AddMeter(&b)
	if a.PJ(L1D) != 14 || a.PJ(DRAM) != 100 || a.Count(L1D) != 2 {
		t.Errorf("AddMeter: %+v", a)
	}
}

// TestMeterTotalMatchesSum is a property: Total always equals the sum of the
// per-component breakdown, no matter the sequence of Adds.
func TestMeterTotalMatchesSum(t *testing.T) {
	f := func(events []uint8) bool {
		var m Meter
		for _, e := range events {
			m.Add(Component(e%NumComponents), float64(e))
		}
		var sum float64
		for _, v := range m.Breakdown() {
			sum += v
		}
		return math.Abs(sum-m.Total()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
