package coherence

import (
	"lard/internal/mem"
)

// pageClass is the R-NUCA OS-level page classification (first-touch private,
// promoted to shared on a second core's access; instruction pages are
// classified by fetch).
type pageClass uint8

const (
	pagePrivate pageClass = iota
	pageShared
	pageInstr
)

// pageInfo is one page-table record.
type pageInfo struct {
	class pageClass
	owner mem.CoreID // first-touch core, meaningful while private
}

// pageTable is the OS page table consulted by R-NUCA-style placement.
type pageTable struct {
	pages map[mem.PageAddr]*pageInfo
}

func newPageTable() *pageTable {
	return &pageTable{pages: make(map[mem.PageAddr]*pageInfo)}
}

// classify returns the page record for the access, creating or promoting it
// as needed. It reports reclassified=true when the page just transitioned
// private -> shared (the caller must flush the page's lines from the old
// owner's slice and reports the old owner).
func (pt *pageTable) classify(line mem.LineAddr, c mem.CoreID, instr bool) (info *pageInfo, reclassified bool, oldOwner mem.CoreID) {
	page := mem.PageOfLine(line)
	p, ok := pt.pages[page]
	if !ok {
		p = &pageInfo{owner: c}
		if instr {
			p.class = pageInstr
		}
		pt.pages[page] = p
		return p, false, 0
	}
	if p.class == pagePrivate && p.owner != c {
		old := p.owner
		p.class = pageShared
		return p, true, old
	}
	if p.class == pageInstr && !instr {
		// Data access to an instruction page: the synthetic workloads never
		// do this; treat it as a programming error in the generator.
		panic("coherence: data access to an instruction-classified page")
	}
	return p, false, 0
}

// homeFor computes the home slice of a line for the active scheme, updating
// the page table when R-NUCA placement is in effect. The returned flush
// function is non-nil when a page reclassification requires the old owner's
// copies to be flushed; the engine invokes it at transaction time.
func (e *Engine) homeFor(op Op, c mem.CoreID, t mem.Cycles) mem.CoreID {
	if !e.rnucaPlacement {
		return e.interleave(op.Line)
	}
	info, reclassified, oldOwner := e.pages.classify(op.Line, c, op.Type.IsInstr())
	if reclassified {
		e.flushPage(mem.PageOfLine(op.Line), oldOwner, t)
	}
	switch {
	case info.class == pageInstr && e.policy.InstrClusterHome():
		// Rotational interleaving within the requester's 4-core cluster.
		return e.instrHome(op.Line, c)
	case info.class == pagePrivate:
		return info.owner
	default:
		// Shared pages (and, for the locality-aware scheme, instructions,
		// which it treats like any other shared data, §2.1).
		return e.interleave(op.Line)
	}
}

// interleave is the S-NUCA home function: lines striped across all slices.
func (e *Engine) interleave(line mem.LineAddr) mem.CoreID {
	return mem.CoreID(uint64(line) % uint64(e.cfg.Cores))
}

// instrClusterSize is R-NUCA's instruction replication cluster (4 cores).
const instrClusterSize = 4

// instrHome returns the R-NUCA rotational-interleaving home of an
// instruction line for a requester: one slice within the requester's 4-core
// cluster, so each cluster holds one copy of the line.
func (e *Engine) instrHome(line mem.LineAddr, c mem.CoreID) mem.CoreID {
	clusterBase := (int(c) / instrClusterSize) * instrClusterSize
	return mem.CoreID(clusterBase + int(uint64(line)%instrClusterSize))
}

// replicaSliceFor returns the LLC slice where a cluster-aware policy would
// place a replica for requester c: the local slice for cluster size 1, or
// the rotationally-interleaved member of c's cluster otherwise (§2.3.4).
func (e *Engine) replicaSliceFor(line mem.LineAddr, c mem.CoreID) mem.CoreID {
	if e.cfg.ClusterSize <= 1 {
		return c
	}
	base := (int(c) / e.cfg.ClusterSize) * e.cfg.ClusterSize
	return mem.CoreID(base + int(uint64(line)%uint64(e.cfg.ClusterSize)))
}

// flushPage invalidates every line of page p homed at the old owner's slice
// (R-NUCA private->shared reclassification): home copies and all their
// cached copies are invalidated, dirty data is written back off-chip, and
// message energy is charged. The latency is charged to the requester by the
// caller as part of the triggering transaction.
func (e *Engine) flushPage(p mem.PageAddr, oldOwner mem.CoreID, t mem.Cycles) {
	slice := e.tiles[oldOwner].llc
	lines := slice.CollectIf(func(l *cacheLine) bool {
		return l.Meta.home && mem.PageOfLine(l.Addr) == p
	})
	for _, la := range lines {
		e.evictHomeLine(oldOwner, la, t)
	}
}
