package coherence

import (
	"testing"

	"lard/internal/config"
	"lard/internal/mem"
	"lard/internal/stats"
)

// testEngine returns a 16-core engine with invariant checking on.
func testEngine(s Scheme) *Engine {
	cfg := config.Small()
	return New(cfg, Options{Scheme: s, CheckInvariants: true})
}

// read/write helpers driving one access and returning the result.
func rd(e *Engine, c mem.CoreID, t mem.Cycles, la mem.LineAddr) AccessResult {
	return e.Access(c, t, Op{Type: mem.Load, Line: la, Class: mem.ClassSharedRW})
}

func wr(e *Engine, c mem.CoreID, t mem.Cycles, la mem.LineAddr) AccessResult {
	return e.Access(c, t, Op{Type: mem.Store, Line: la, Class: mem.ClassSharedRW})
}

// shared makes la's page shared under R-NUCA-style placement by touching a
// sibling line from another core first.
func sharedLine(e *Engine, la mem.LineAddr) {
	if !e.rnucaPlacement {
		return
	}
	rd(e, 14, 0, la^1)
	rd(e, 15, 0, la^1)
}

func TestSchemeStrings(t *testing.T) {
	want := map[Scheme]string{SNUCA: "S-NUCA", RNUCA: "R-NUCA", VR: "VR", ASR: "ASR", LocalityAware: "RT"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestColdMissGoesOffChip(t *testing.T) {
	e := testEngine(SNUCA)
	res := rd(e, 0, 0, 0x1000)
	if res.Miss != stats.OffChipMiss {
		t.Fatalf("cold access = %v, want off-chip", res.Miss)
	}
	if res.Breakdown[stats.LLCHomeToOffChip] == 0 {
		t.Fatal("off-chip latency component must be charged")
	}
}

func TestL1Hit(t *testing.T) {
	e := testEngine(SNUCA)
	r1 := rd(e, 0, 0, 0x1000)
	r2 := rd(e, 0, r1.Done, 0x1000)
	if r2.Miss != stats.L1Hit {
		t.Fatalf("second access = %v, want L1 hit", r2.Miss)
	}
	if r2.Done != r1.Done+1 {
		t.Fatalf("L1 hit latency = %d, want 1", r2.Done-r1.Done)
	}
}

func TestHomeHitAfterL1Invalidation(t *testing.T) {
	e := testEngine(SNUCA)
	r1 := rd(e, 0, 0, 0x1000)
	e.tiles[0].l1d.Invalidate(0x1000)
	r2 := rd(e, 0, r1.Done, 0x1000)
	if r2.Miss != stats.LLCHomeHit {
		t.Fatalf("refetch = %v, want home hit", r2.Miss)
	}
}

// TestExclusiveGrantAndSilentUpgrade: a sole reader gets E and upgrades to M
// without a home transaction.
func TestExclusiveGrantAndSilentUpgrade(t *testing.T) {
	e := testEngine(SNUCA)
	r1 := rd(e, 0, 0, 0x1000)
	l1 := e.tiles[0].l1d.Lookup(0x1000)
	if l1 == nil || l1.State != mem.Exclusive {
		t.Fatalf("sole reader must hold E, got %v", l1)
	}
	r2 := wr(e, 0, r1.Done, 0x1000)
	if r2.Miss != stats.L1Hit {
		t.Fatalf("E->M upgrade must be an L1 hit, got %v", r2.Miss)
	}
	if l1.State != mem.Modified || !l1.Dirty {
		t.Fatal("silent upgrade must set M/dirty")
	}
}

// TestSecondReaderGetsShared: two readers end in S; the owner is downgraded
// with a synchronous write-back.
func TestSecondReaderGetsShared(t *testing.T) {
	e := testEngine(SNUCA)
	r1 := wr(e, 0, 0, 0x1000) // owner in M
	r2 := rd(e, 1, r1.Done, 0x1000)
	if r2.Breakdown[stats.LLCHomeToSharers] == 0 {
		t.Fatal("owner write-back must be charged to LLC-Home-To-Sharers")
	}
	if l := e.tiles[0].l1d.Lookup(0x1000); l == nil || l.State != mem.Shared || l.Dirty {
		t.Fatalf("previous owner must be downgraded to clean S, got %+v", l)
	}
	if l := e.tiles[1].l1d.Lookup(0x1000); l == nil || l.State != mem.Shared {
		t.Fatal("second reader must hold S")
	}
}

// TestWriteInvalidatesAllSharers: a store removes every other copy and bumps
// the version.
func TestWriteInvalidatesAllSharers(t *testing.T) {
	e := testEngine(SNUCA)
	var tm mem.Cycles
	for c := mem.CoreID(0); c < 6; c++ {
		tm = rd(e, c, tm, 0x1000).Done
	}
	res := wr(e, 5, tm, 0x1000)
	if res.Breakdown[stats.LLCHomeToSharers] == 0 {
		t.Fatal("invalidations must be charged")
	}
	for c := mem.CoreID(0); c < 5; c++ {
		if e.tiles[c].l1d.Lookup(0x1000) != nil {
			t.Fatalf("core %d still holds an invalidated line", c)
		}
	}
	home := e.homeOfLine(0x1000, 5)
	hl := e.homeEntry(home, 0x1000)
	if hl.Meta.dir.Version != 1 {
		t.Fatalf("version = %d, want 1", hl.Meta.dir.Version)
	}
	if !hl.Meta.dir.HasOwner || hl.Meta.dir.Owner != 5 {
		t.Fatal("writer must be the registered owner")
	}
	if hl.Meta.dir.Sharers.Count() != 1 {
		t.Fatalf("sharer count = %d, want 1", hl.Meta.dir.Sharers.Count())
	}
}

// TestUpgradeKeepsWriterCopy: an S-state writer upgrades without refetching.
func TestUpgradeKeepsWriterCopy(t *testing.T) {
	e := testEngine(SNUCA)
	t1 := rd(e, 0, 0, 0x1000).Done
	t2 := rd(e, 1, t1, 0x1000).Done // both S now
	res := wr(e, 0, t2, 0x1000)
	if res.Miss == stats.L1Hit {
		t.Fatal("S-state write must reach the home")
	}
	if l := e.tiles[0].l1d.Lookup(0x1000); l == nil || l.State != mem.Modified {
		t.Fatal("upgraded copy must be M")
	}
	if e.tiles[1].l1d.Lookup(0x1000) != nil {
		t.Fatal("other sharer must be invalidated")
	}
}

// TestACKwiseOverflowBroadcast: more sharers than pointers flips the set to
// broadcast mode; a write still invalidates everyone.
func TestACKwiseOverflowBroadcast(t *testing.T) {
	e := testEngine(SNUCA)
	var tm mem.Cycles
	for c := mem.CoreID(0); c < 9; c++ { // > 4 pointers
		tm = rd(e, c, tm, 0x1000).Done
	}
	home := e.homeOfLine(0x1000, 0)
	ent := e.homeEntry(home, 0x1000).Meta.dir
	if !ent.Sharers.Overflowed() {
		t.Fatal("9 sharers must overflow ACKwise-4")
	}
	wr(e, 0, tm, 0x1000)
	for c := mem.CoreID(1); c < 9; c++ {
		if e.tiles[c].l1d.Lookup(0x1000) != nil {
			t.Fatalf("core %d survived a broadcast invalidation", c)
		}
	}
}

// TestInclusion: evicting the home line invalidates every L1 copy.
func TestInclusion(t *testing.T) {
	e := testEngine(SNUCA)
	tm := rd(e, 3, 0, 0x1000).Done
	home := e.homeOfLine(0x1000, 3)
	e.evictHomeLine(home, 0x1000, tm)
	if e.tiles[3].l1d.Lookup(0x1000) != nil {
		t.Fatal("home eviction must back-invalidate L1 copies (inclusive LLC)")
	}
	// A subsequent read must go off-chip again.
	if res := rd(e, 3, tm+100, 0x1000); res.Miss != stats.OffChipMiss {
		t.Fatalf("refetch = %v, want off-chip", res.Miss)
	}
}

// TestDirtyWritebackOnL1Evict: a dirty L1 victim merges into the home copy.
func TestDirtyWritebackOnL1Evict(t *testing.T) {
	e := testEngine(SNUCA)
	tm := wr(e, 0, 0, 0x1000).Done
	victim := *e.tiles[0].l1d.Lookup(0x1000)
	e.tiles[0].l1d.Invalidate(0x1000)
	e.handleL1Evict(0, victim, tm)
	home := e.homeOfLine(0x1000, 0)
	hl := e.homeEntry(home, 0x1000)
	if !hl.Dirty {
		t.Fatal("home must be dirty after merging the write-back")
	}
	if hl.Meta.dir.Sharers.Count() != 0 || hl.Meta.dir.HasOwner {
		t.Fatal("directory must drop the evicting core")
	}
}

// ---- locality-aware protocol ----------------------------------------------

// TestRTPromotionCreatesReplica: the §2.2.1 flow end to end.
func TestRTPromotionCreatesReplica(t *testing.T) {
	e := testEngine(LocalityAware)
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	if e.homeOfLine(la, c) == c {
		t.Skip("layout placed home locally; pick another line")
	}
	var tm mem.Cycles
	for i := 0; i < 2; i++ {
		tm = rd(e, c, tm, la).Done
		e.tiles[c].l1d.Invalidate(la)
		if l := e.tiles[c].llc.Lookup(la); l != nil && !l.Meta.home {
			t.Fatalf("replica before reaching RT at access %d", i)
		}
	}
	tm = rd(e, c, tm, la).Done
	l := e.tiles[c].llc.Lookup(la)
	if l == nil || l.Meta.home {
		t.Fatal("3rd access must create a local replica (RT=3)")
	}
	if l.Meta.replicaReuse != 1 {
		t.Fatalf("replica reuse = %d, want 1 on creation", l.Meta.replicaReuse)
	}
	// Subsequent L1 misses hit the replica and bump its reuse counter.
	e.tiles[c].l1d.Invalidate(la)
	res := rd(e, c, tm, la)
	if res.Miss != stats.LLCReplicaHit {
		t.Fatalf("post-replica access = %v, want replica hit", res.Miss)
	}
	if l.Meta.replicaReuse != 2 {
		t.Fatalf("replica reuse = %d, want 2", l.Meta.replicaReuse)
	}
}

// TestRTWriteInvalidatesReplicas: a write by another core removes replicas
// and the acknowledgement feeds the classifier.
func TestRTWriteInvalidatesReplicas(t *testing.T) {
	e := testEngine(LocalityAware)
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	for i := 0; i < 3; i++ {
		tm = rd(e, c, tm, la).Done
		e.tiles[c].l1d.Invalidate(la)
	}
	if l := e.tiles[c].llc.Lookup(la); l == nil || l.Meta.home {
		t.Fatal("replica expected")
	}
	tm = wr(e, 9, tm, la).Done
	if l := e.tiles[c].llc.Lookup(la); l != nil && !l.Meta.home {
		t.Fatal("write must invalidate the remote replica")
	}
	// The core retained replica status (reuse sum >= RT): the next read
	// immediately re-creates the replica.
	tm = rd(e, c, tm, la).Done
	if l := e.tiles[c].llc.Lookup(la); l == nil || l.Meta.home {
		t.Fatal("replica-mode core must get a fresh replica on the next read")
	}
}

// TestRTMigratoryExclusiveReplica: a promoted writer receives an M-state
// replica so interleaved read/write streaks stay local (§2.3.1).
func TestRTMigratoryExclusiveReplica(t *testing.T) {
	e := testEngine(LocalityAware)
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	// Three sole writes promote via the migratory rule.
	for i := 0; i < 3; i++ {
		tm = wr(e, c, tm, la).Done
		victim := *e.tiles[c].l1d.Lookup(la)
		e.tiles[c].l1d.Invalidate(la)
		e.handleL1Evict(c, victim, tm)
	}
	l := e.tiles[c].llc.Lookup(la)
	if l == nil || l.Meta.home {
		t.Fatal("migratory promotion must create a replica")
	}
	if !l.State.Writable() {
		t.Fatalf("migratory replica must be E/M, got %v", l.State)
	}
	// A write now hits the local replica without a home transaction.
	res := wr(e, c, tm, la)
	if res.Miss != stats.LLCReplicaHit {
		t.Fatalf("write on M/E replica = %v, want replica hit", res.Miss)
	}
}

// TestRTLocalHomeNeverReplicates: §2.2.1 — when the home is local the line
// goes to the L1 only.
func TestRTLocalHomeNeverReplicates(t *testing.T) {
	e := testEngine(LocalityAware)
	// A private page: first touch by core 3 homes it at core 3.
	la := mem.LineAddr(0x5000)
	var tm mem.Cycles
	for i := 0; i < 6; i++ {
		tm = rd(e, 3, tm, la).Done
		e.tiles[3].l1d.Invalidate(la)
	}
	if l := e.tiles[3].llc.Lookup(la); l == nil || !l.Meta.home {
		t.Fatal("the local copy must be the home itself, never a replica")
	}
}

// TestReplicaEvictionDemotes: replica eviction with low reuse demotes the
// core; its next access goes to the home again.
func TestReplicaEvictionDemotes(t *testing.T) {
	e := testEngine(LocalityAware)
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	for i := 0; i < 3; i++ {
		tm = rd(e, c, tm, la).Done
		e.tiles[c].l1d.Invalidate(la)
	}
	l := e.tiles[c].llc.Lookup(la)
	victim := *l
	e.tiles[c].llc.Invalidate(la)
	e.replicaEvicted(c, victim, tm) // replica reuse 1 < RT: demote
	res := rd(e, c, tm, la)
	if res.Miss != stats.LLCHomeHit {
		t.Fatalf("demoted core's access = %v, want home hit", res.Miss)
	}
	if l := e.tiles[c].llc.Lookup(la); l != nil && !l.Meta.home {
		t.Fatal("demoted core must not receive a replica immediately")
	}
}

// TestReplicaEvictionBackInvalidatesL1: §2.2.3.
func TestReplicaEvictionBackInvalidatesL1(t *testing.T) {
	e := testEngine(LocalityAware)
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	for i := 0; i < 4; i++ {
		tm = rd(e, c, tm, la).Done
		if i < 3 {
			e.tiles[c].l1d.Invalidate(la)
		}
	}
	if e.tiles[c].l1d.Lookup(la) == nil {
		t.Fatal("setup: L1 copy expected")
	}
	l := e.tiles[c].llc.Lookup(la)
	victim := *l
	e.tiles[c].llc.Invalidate(la)
	e.replicaEvicted(c, victim, tm)
	if e.tiles[c].l1d.Lookup(la) != nil {
		t.Fatal("replica eviction must back-invalidate the L1 copy")
	}
	home := e.homeOfLine(la, c)
	if e.homeEntry(home, la).Meta.dir.Sharers.Has(c) {
		t.Fatal("directory must drop the core after replica eviction")
	}
}

// TestL1EvictMergesIntoReplica: with a replica present, a dirty L1 victim
// merges locally and the home is NOT notified (§2.2.3).
func TestL1EvictMergesIntoReplica(t *testing.T) {
	e := testEngine(LocalityAware)
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	for i := 0; i < 3; i++ {
		tm = wr(e, c, tm, la).Done
		victim := *e.tiles[c].l1d.Lookup(la)
		e.tiles[c].l1d.Invalidate(la)
		e.handleL1Evict(c, victim, tm)
	}
	// Now an M replica exists. Write again, then evict the dirty L1 line.
	tm = wr(e, c, tm, la).Done
	victim := *e.tiles[c].l1d.Lookup(la)
	e.tiles[c].l1d.Invalidate(la)
	e.handleL1Evict(c, victim, tm)
	l := e.tiles[c].llc.Lookup(la)
	if l == nil || !l.Dirty {
		t.Fatal("dirty data must merge into the replica")
	}
	home := e.homeOfLine(la, c)
	if !e.homeEntry(home, la).Meta.dir.Sharers.Has(c) {
		t.Fatal("the core must remain a sharer through its replica")
	}
}
