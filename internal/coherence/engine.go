package coherence

import (
	"fmt"
	"math/rand/v2"

	"lard/internal/cache"
	"lard/internal/config"
	"lard/internal/core"
	"lard/internal/directory"
	"lard/internal/dram"
	"lard/internal/energy"
	"lard/internal/mem"
	"lard/internal/network"
)

// cacheLine is the LLC line type used throughout the engine.
type cacheLine = cache.Line[llcMeta]

// l1Line is the L1 line type.
type l1Line = cache.Line[l1Meta]

// runLogEvent is one deferred run-tracker event recorded by a worker lane;
// the master engine replays lane logs in canonical commit order so the
// Figure-1 histogram is identical to a sequential run's.
type runLogEvent struct {
	la      mem.LineAddr
	c       mem.CoreID
	write   bool
	evicted bool
	class   mem.DataClass
}

// Options configure an Engine beyond the architectural Config.
type Options struct {
	// Scheme selects the LLC management scheme.
	Scheme Scheme
	// ASRLevel is the replication probability of ASR (0, 0.25, 0.5, 0.75, 1).
	ASRLevel float64
	// Seed feeds ASR's replication lottery (the only randomness in the
	// engine); runs are deterministic for a fixed seed.
	Seed uint64
	// CheckInvariants enables the single-writer/multiple-reader version
	// check on every read (tests enable it; large runs leave it off).
	CheckInvariants bool
	// TrackRuns enables the Figure-1 run-length tracker.
	TrackRuns bool
}

// Engine is the memory-system model: per-tile caches, directory, network,
// DRAM, energy accounting, and the active LLC management scheme. It is
// single-threaded by design; the simulator serializes accesses in event
// order to keep runs deterministic.
type Engine struct {
	cfg    *config.Config
	eparam energy.Params
	opts   Options
	scheme Scheme

	// policy holds the scheme's decision points. The booleans cache the
	// descriptor and policy traits consulted on hot paths: every one is
	// constant for the engine's lifetime (the policy derives them from the
	// validated Config), so the steady-state access path reads a struct
	// flag instead of re-entering the Policy interface per access.
	policy           Policy
	usesReplicas     bool
	rnucaPlacement   bool
	instrClusterHome bool
	clusterRepl      bool
	consumeOnHit     bool
	victimRepl       bool

	tiles []*tile
	mesh  *network.Mesh
	dram  *dram.Subsystem
	pages *pageTable
	meter *energy.Meter
	rng   *rand.Rand

	clfParams core.Params

	// Hot-path scratch and free lists. fanout and rsnap are reusable
	// iteration buffers for the invalidation fan-outs (sized to Cores at
	// construction, so steady-state fan-out allocates nothing); entFree and
	// clfFree recycle directory entries and locality classifiers, whose
	// only death point is disposeHome — after it returns no reference to
	// the entry survives, so reuse is safe.
	fanout  []mem.CoreID
	rsnap   []mem.CoreID
	entFree []*dirEntry
	clfFree []coreClassifier

	runs    *runTracker
	rehomed uint64 // page reclassification flushes, for stats

	// Per-class replica statistics (ground-truth classes; diagnostics).
	replicaInserts [mem.NumDataClasses]uint64
	replicaHits    [mem.NumDataClasses]uint64
	replicaEvicts  uint64
	replicaInvals  uint64

	// Epoch-telemetry counters: classifier mode transitions and directory
	// population. Plain uint64 increments on paths the engine already
	// executes — read only at epoch boundaries (see Telemetry), and free
	// when telemetry is off.
	clfPromotions uint64
	clfDemotions  uint64
	dirOcc        directory.Occupancy

	// Worker-lane state (see parallel.go). A worker clone shares tiles,
	// pages, policy traits and configuration with its parent but carries
	// private meters, counters, scratch and free lists, so footprint-
	// disjoint transactions can execute concurrently without touching
	// shared mutable state. touched accumulates the tiles an access
	// actually visited (one OR per visit — negligible on the sequential
	// path) and is checked against the declared footprint after each
	// parallel execution. logRuns redirects run-tracker events into runlog
	// for canonical-order replay at commit.
	parent     *Engine
	touched    uint64
	logRuns    bool
	runlog     []runLogEvent
	routeMasks []uint64
}

// note records that the access currently executing visited tile c.
func (e *Engine) note(c mem.CoreID) { e.touched |= 1 << uint(c) }

// recordRun routes a run-tracker access event either directly into the
// tracker (sequential path) or into the lane's replay log (parallel path).
func (e *Engine) recordRun(la mem.LineAddr, c mem.CoreID, write bool, class mem.DataClass) {
	if e.logRuns {
		e.runlog = append(e.runlog, runLogEvent{la: la, c: c, write: write, class: class})
		return
	}
	if e.runs != nil {
		e.runs.record(la, c, write, class)
	}
}

// recordRunEvicted is recordRun for home-eviction events.
func (e *Engine) recordRunEvicted(la mem.LineAddr) {
	if e.logRuns {
		e.runlog = append(e.runlog, runLogEvent{la: la, evicted: true})
		return
	}
	if e.runs != nil {
		e.runs.evicted(la)
	}
}

// Mesh returns the engine's interconnect model (diagnostics).
func (e *Engine) Mesh() *network.Mesh { return e.mesh }

// ReplicaChurn returns replica eviction and invalidation counts.
func (e *Engine) ReplicaChurn() (evicts, invals uint64) { return e.replicaEvicts, e.replicaInvals }

// ReplicaStats returns per-data-class replica insertion and hit counts.
func (e *Engine) ReplicaStats() (inserts, hits [mem.NumDataClasses]uint64) {
	return e.replicaInserts, e.replicaHits
}

// New returns an engine for the given configuration and options. The scheme
// must be registered (see Register); like an invalid configuration, an
// unregistered scheme is a programming error and panics.
func New(cfg *config.Config, opts Options) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	desc, ok := Describe(opts.Scheme)
	if !ok {
		panic(fmt.Sprintf("coherence: scheme %d is not registered", uint8(opts.Scheme)))
	}
	meter := &energy.Meter{}
	ep := energy.DefaultParams()
	e := &Engine{
		cfg:    cfg,
		eparam: ep,
		opts:   opts,
		scheme: opts.Scheme,
		mesh:   network.New(cfg.MeshW, cfg.MeshH, cfg.HopLatency, meter, ep.RouterFlit, ep.LinkFlit),
		dram:   dram.New(cfg.DRAMControllers, cfg.Cores, cfg.DRAMLatency, cfg.DRAMCyclesPerLine, meter, ep.DRAMAccess),
		pages:  newPageTable(),
		meter:  meter,
		rng:    rand.New(rand.NewPCG(opts.Seed, 0x1a4d)),
		clfParams: core.Params{
			RT:    cfg.RT,
			Cores: cfg.Cores,
			K:     cfg.ClassifierK,
		},
	}
	e.policy = desc.New(e)
	e.usesReplicas = desc.UsesReplicas
	e.rnucaPlacement = desc.RNUCAPlacement
	e.victimRepl = desc.VictimReplicates
	e.instrClusterHome = e.policy.InstrClusterHome()
	e.clusterRepl = e.policy.ClusterReplication()
	e.consumeOnHit = e.policy.ConsumeReplicaOnHit()
	e.fanout = make([]mem.CoreID, 0, cfg.Cores)
	e.rsnap = make([]mem.CoreID, 0, cfg.Cores)
	e.tiles = make([]*tile, cfg.Cores)
	for i := range e.tiles {
		e.tiles[i] = &tile{
			id:   mem.CoreID(i),
			l1i:  cache.New[l1Meta](cfg.L1ILines, cfg.L1IWays),
			l1d:  cache.New[l1Meta](cfg.L1DLines, cfg.L1DWays),
			llc:  cache.New[llcMeta](cfg.LLCSliceLines, cfg.LLCWays),
			busy: make(map[mem.LineAddr]mem.Cycles),
		}
	}
	if opts.TrackRuns {
		e.runs = newRunTracker()
	}
	return e
}

// Meter returns the engine's energy meter.
func (e *Engine) Meter() *energy.Meter { return e.meter }

// Config returns the engine's configuration.
func (e *Engine) Config() *config.Config { return e.cfg }

// Scheme returns the active LLC management scheme.
func (e *Engine) Scheme() Scheme { return e.scheme }

// PageReclassifications returns the number of R-NUCA private->shared page
// transitions that required flushing the old owner's slice.
func (e *Engine) PageReclassifications() uint64 { return e.rehomed }

// Telemetry is a snapshot of the engine's cumulative epoch-telemetry
// counters. All values except DirectoryEntries (a level) are
// monotonically non-decreasing, so the simulator can difference
// successive snapshots into per-epoch deltas.
type Telemetry struct {
	// ReplicaHits counts accesses served by an LLC replica.
	ReplicaHits uint64
	// Replications counts replica insertions into LLC slices.
	Replications uint64
	// ReplicaEvictions counts replicas displaced by LLC replacement.
	ReplicaEvictions uint64
	// Invalidations counts replicas killed by coherence invalidations.
	Invalidations uint64
	// ClassifierPromotions counts classifier decisions to replicate
	// (non-replica -> replica mode transitions observed at the home).
	ClassifierPromotions uint64
	// ClassifierDemotions counts replica-loss events fed back to the
	// classifier (evictions and invalidations reported via OnReplicaGone).
	ClassifierDemotions uint64
	// DirectoryEntries is the live in-cache directory population.
	DirectoryEntries uint64
}

// Telemetry snapshots the engine's telemetry counters. It is cheap (a
// handful of loads) and intended to be called at epoch boundaries only;
// the counters themselves cost one integer increment on paths the
// engine already executes, so the hot path stays allocation-free.
func (e *Engine) Telemetry() Telemetry {
	t := Telemetry{
		ReplicaEvictions:     e.replicaEvicts,
		Invalidations:        e.replicaInvals,
		ClassifierPromotions: e.clfPromotions,
		ClassifierDemotions:  e.clfDemotions,
		DirectoryEntries:     e.dirOcc.Live(),
	}
	for _, h := range e.replicaHits {
		t.ReplicaHits += h
	}
	for _, i := range e.replicaInserts {
		t.Replications += i
	}
	return t
}

// ---- energy helpers -------------------------------------------------------

func (e *Engine) chargeL1(instr, write bool) {
	switch {
	case instr && write:
		e.meter.Add(energy.L1I, e.eparam.L1IWrite)
	case instr:
		e.meter.Add(energy.L1I, e.eparam.L1IRead)
	case write:
		e.meter.Add(energy.L1D, e.eparam.L1DWrite)
	default:
		e.meter.Add(energy.L1D, e.eparam.L1DRead)
	}
}

func (e *Engine) chargeLLCTag(write bool) {
	if write {
		e.meter.Add(energy.LLC, e.eparam.LLCTagWrite)
	} else {
		e.meter.Add(energy.LLC, e.eparam.LLCTagRead)
	}
}

func (e *Engine) chargeLLCData(write bool) {
	if write {
		e.meter.Add(energy.LLC, e.eparam.LLCDataWrite)
	} else {
		e.meter.Add(energy.LLC, e.eparam.LLCDataRead)
	}
}

func (e *Engine) chargeDir(write bool) {
	if write {
		e.meter.Add(energy.Directory, e.eparam.DirWrite)
	} else {
		e.meter.Add(energy.Directory, e.eparam.DirRead)
	}
}

// ctrlFlits and dataFlits are the two message sizes of the protocol
// (§2.4.3: reuse counters ride in the spare header bits, so no message
// grows).
func (e *Engine) ctrlFlits() int { return e.cfg.HeaderFlits }

func (e *Engine) dataFlits() int { return e.cfg.HeaderFlits + e.cfg.DataFlits }

// ---- victim selection ------------------------------------------------------

// llcVictim returns the victim selector for tile t's LLC slice according to
// the configured replacement policy. Modified-LRU (§2.2.4) prefers lines
// with the fewest L1 copies: for home lines the in-cache directory's sharer
// count, for replicas whether the local L1 still holds the line.
func (e *Engine) llcVictim(t *tile) cache.VictimSelector[llcMeta] {
	if e.cfg.Replacement != config.ModifiedLRU {
		// PlainLRU and TLH-LRU both select by recency; TLH differs only in
		// the hint traffic that refreshes LLC recency (see temporalHint).
		return cache.LRU[llcMeta]()
	}
	return cache.ModifiedLRU(func(l *cacheLine) int {
		// Rank = 2*copies (+1 for home lines): fewest L1 copies first, and
		// at equal copy counts replicas are evicted before home lines —
		// losing a home copy costs an off-chip refetch, losing a replica
		// only a home round trip. This matches VR's insertion preference
		// and keeps the protocol's off-chip miss rate low (§2.2.4).
		if l.Meta.home {
			return 2*l.Meta.dir.Sharers.Count() + 1
		}
		if e.hasL1Copy(t, l.Addr) {
			return 2
		}
		return 0
	})
}

func (e *Engine) hasL1Copy(t *tile, la mem.LineAddr) bool {
	return t.l1i.Lookup(la) != nil || t.l1d.Lookup(la) != nil
}

// victimAllowedVR implements the Victim Replication insertion filter: a
// victim may only displace an invalid way, another replica, or a home line
// with no sharers (§3.3). It returns the way index or -1.
func victimAllowedVR(ways []cacheLine) int {
	best, bestClass := -1, 0
	// Preference order: invalid (handled by Insert), replica, sharer-free
	// home line; LRU within the chosen class.
	for i := range ways {
		var class int
		switch {
		case !ways[i].State.Valid():
			return i // Insert would find it too, but be explicit
		case !ways[i].Meta.home:
			class = 2
		case ways[i].Meta.dir.Sharers.Count() == 0:
			class = 1
		default:
			continue
		}
		if class > bestClass || (class == bestClass && ways[i].LastUse < ways[best].LastUse) {
			best, bestClass = i, class
		}
	}
	return best
}

// ---- misc helpers ----------------------------------------------------------

// homeOfLine returns the home slice of a line outside of an access (eviction
// and writeback paths), for requester/holder c.
func (e *Engine) homeOfLine(la mem.LineAddr, c mem.CoreID) mem.CoreID {
	if !e.rnucaPlacement {
		return e.interleave(la)
	}
	info, ok := e.pages.pages[mem.PageOfLine(la)]
	if !ok {
		panic(fmt.Sprintf("coherence: no page record for cached line %#x", uint64(la)))
	}
	switch {
	case info.class == pageInstr && e.instrClusterHome:
		return e.instrHome(la, c)
	case info.class == pagePrivate:
		return info.owner
	default:
		return e.interleave(la)
	}
}

// homeEntry returns the home line and directory entry for la at slice home,
// or nil if the home copy is not resident.
func (e *Engine) homeEntry(home mem.CoreID, la mem.LineAddr) *cacheLine {
	l := e.tiles[home].llc.Lookup(la)
	if l == nil || !l.Meta.home {
		return nil
	}
	return l
}

// checkVersion enforces the single-writer/multiple-reader invariant: any
// valid copy read by a core must carry the current home version.
func (e *Engine) checkVersion(c mem.CoreID, la mem.LineAddr, ver uint64) {
	if !e.opts.CheckInvariants {
		return
	}
	home := e.homeOfLine(la, c)
	hl := e.homeEntry(home, la)
	if hl == nil {
		panic(fmt.Sprintf("coherence: core %d holds line %#x with no home copy (inclusion violated)", c, uint64(la)))
	}
	if hl.Meta.dir.Version != ver {
		panic(fmt.Sprintf("coherence: SWMR violation on line %#x: core %d read version %d, home has %d",
			uint64(la), c, ver, hl.Meta.dir.Version))
	}
}
