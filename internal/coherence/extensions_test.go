package coherence

import (
	"testing"

	"lard/internal/config"
	"lard/internal/energy"
	"lard/internal/mem"
	"lard/internal/stats"
)

// TestTLHSendsHints: under TLH-LRU, every TLHPeriod-th L1 hit refreshes the
// LLC copy's recency and pays network traffic (§2.2.4 alternative).
func TestTLHSendsHints(t *testing.T) {
	cfg := config.Small()
	cfg.Replacement = config.TLHLRU
	cfg.TLHPeriod = 4
	e := New(cfg, Options{Scheme: SNUCA, CheckInvariants: true})
	la := mem.LineAddr(0x2001) // interleaved home = core 1, remote for core 0
	tm := rd(e, 0, 0, la).Done
	flitsBefore := e.mesh.FlitHops()
	for i := 0; i < 8; i++ { // 8 L1 hits -> 2 hints
		tm = rd(e, 0, tm, la).Done
	}
	if e.mesh.FlitHops() <= flitsBefore {
		t.Fatal("TLH must generate hint traffic on L1 hits")
	}
}

// TestTLHRefreshesRecency: the hinted line survives eviction pressure that
// would evict it under plain LRU.
func TestTLHRefreshesRecency(t *testing.T) {
	build := func(policy config.ReplacementPolicy) *Engine {
		cfg := config.Small()
		cfg.Replacement = policy
		cfg.TLHPeriod = 1 // hint on every L1 hit
		return New(cfg, Options{Scheme: SNUCA})
	}
	for _, tc := range []struct {
		policy   config.ReplacementPolicy
		expected bool // hot line survives?
	}{
		{config.TLHLRU, true},
		{config.PlainLRU, false},
	} {
		e := build(tc.policy)
		hot := mem.LineAddr(0x4000)
		home := e.homeOfLine(hot, 0)
		tm := rd(e, 0, 0, hot).Done
		// Interleave L1 hits on the hot line (hints under TLH) with set
		// pressure at its home. Under plain LRU the silent L1 hits leave
		// the LLC copy stale and it gets evicted (then refetched off-chip);
		// under TLH the hints keep it resident — count hot off-chip misses.
		set := e.tiles[home].llc.SetOf(hot)
		offchip := 0
		filled := 0
		for la := mem.LineAddr(0x10000); filled < 3*e.tiles[home].llc.Ways(); la++ {
			if e.homeOfLine(la, 1) != home || e.tiles[home].llc.SetOf(la) != set {
				continue
			}
			for i := 0; i < 4; i++ {
				res := rd(e, 0, tm, hot)
				tm = res.Done
				if res.Miss == stats.OffChipMiss {
					offchip++
				}
			}
			tm = rd(e, 1, tm, la).Done
			filled++
		}
		refetched := offchip > 0
		if refetched == tc.expected {
			t.Errorf("%v: hot line refetched=%v (offchip=%d), want refetched=%v",
				tc.policy, refetched, offchip, !tc.expected)
		}
	}
}

// TestKeepL1OnReplicaEvict: with the §2.2.3 alternative strategy the L1
// copy outlives the replica and the core remains a sharer until the second
// acknowledgement.
func TestKeepL1OnReplicaEvict(t *testing.T) {
	cfg := config.Small()
	cfg.KeepL1OnReplicaEvict = true
	e := New(cfg, Options{Scheme: LocalityAware, CheckInvariants: true})
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	for i := 0; i < 4; i++ {
		tm = rd(e, c, tm, la).Done
		if i < 3 {
			e.tiles[c].l1d.Invalidate(la)
		}
	}
	l := e.tiles[c].llc.Lookup(la)
	if l == nil || l.Meta.home {
		t.Fatal("setup: replica expected")
	}
	victim := *l
	e.tiles[c].llc.Invalidate(la)
	e.replicaEvicted(c, victim, tm)
	if e.tiles[c].l1d.Lookup(la) == nil {
		t.Fatal("keep-L1 strategy must preserve the L1 copy")
	}
	home := e.homeOfLine(la, c)
	if !e.homeEntry(home, la).Meta.dir.Sharers.Has(c) {
		t.Fatal("core must remain a sharer while its L1 copy lives")
	}
	// The retained copy still reads correctly (SWMR checker armed) and a
	// write by another core invalidates it.
	tm = rd(e, c, tm, la).Done
	wr(e, 9, tm, la)
	if e.tiles[c].l1d.Lookup(la) != nil {
		t.Fatal("write must invalidate the retained L1 copy")
	}
}

// TestKeepL1SecondAck: evicting the retained L1 copy later removes the
// sharer (the second acknowledgement message of §2.2.3).
func TestKeepL1SecondAck(t *testing.T) {
	cfg := config.Small()
	cfg.KeepL1OnReplicaEvict = true
	e := New(cfg, Options{Scheme: LocalityAware, CheckInvariants: true})
	sharedLine(e, 0x2000)
	c := mem.CoreID(2)
	la := mem.LineAddr(0x2000)
	var tm mem.Cycles
	for i := 0; i < 4; i++ {
		tm = rd(e, c, tm, la).Done
		if i < 3 {
			e.tiles[c].l1d.Invalidate(la)
		}
	}
	l := e.tiles[c].llc.Lookup(la)
	victim := *l
	e.tiles[c].llc.Invalidate(la)
	e.replicaEvicted(c, victim, tm)
	l1victim := *e.tiles[c].l1d.Lookup(la)
	e.tiles[c].l1d.Invalidate(la)
	e.handleL1Evict(c, l1victim, tm)
	home := e.homeOfLine(la, c)
	if e.homeEntry(home, la).Meta.dir.Sharers.Has(c) {
		t.Fatal("second acknowledgement must remove the sharer")
	}
}

// TestEnergyBreakdownComponentsPresent: a representative run touches every
// energy component of Figure 6.
func TestEnergyBreakdownComponentsPresent(t *testing.T) {
	e := testEngine(LocalityAware)
	var tm mem.Cycles
	for i := 0; i < 2000; i++ {
		c := mem.CoreID(i % 16)
		la := mem.LineAddr(0x2000 + i%331)
		if i%11 == 0 {
			tm = wr(e, c, tm, la).Done
		} else {
			tm = rd(e, c, tm, la).Done
		}
	}
	for comp := 0; comp < energy.NumComponents; comp++ {
		if e.Meter().PJ(energy.Component(comp)) == 0 {
			t.Errorf("component %v received no energy", energy.Component(comp))
		}
	}
}
