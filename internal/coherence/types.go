// Package coherence implements the memory-system model of the paper: private
// L1 caches kept coherent with an invalidation-based MESI protocol over an
// ACKwise-p limited directory integrated with the distributed LLC slices
// (§2.1), plus a pluggable registry of LLC management schemes (policy.go).
// The five schemes of the paper's evaluation — Static-NUCA, Reactive-NUCA,
// Victim Replication, Adaptive Selective Replication, and the paper's
// locality-aware replication protocol (§2.2) — each register a Policy in
// their own policy_*.go file; additional schemes plug in the same way.
//
// Coherence transactions execute atomically at the home directory with
// timing composed from the network, DRAM and queueing models; requests to the
// same line serialize on the home entry's NextFree cycle, which produces the
// paper's "LLC home waiting time" (see DESIGN.md for the modelling argument).
package coherence

import (
	"fmt"

	"lard/internal/cache"
	"lard/internal/directory"
	"lard/internal/mem"
	"lard/internal/stats"
)

// Scheme selects the LLC management scheme under evaluation (§3.3).
type Scheme uint8

// LLC management schemes.
const (
	// SNUCA address-interleaves all lines across the LLC slices.
	SNUCA Scheme = iota
	// RNUCA places private pages at the owner's slice, interleaves shared
	// pages, and replicates instructions in one slice per 4-core cluster via
	// rotational interleaving.
	RNUCA
	// VR (Victim Replication) uses the local slice as a victim cache for L1
	// evictions.
	VR
	// ASR (Adaptive Selective Replication) replicates only shared read-only
	// lines on L1 eviction, with a per-run replication probability level.
	ASR
	// LocalityAware is the paper's protocol: replication gated by the
	// run-time locality classifier with threshold RT.
	LocalityAware
)

// String implements fmt.Stringer, matching the labels of Figures 6-8. The
// names come from the policy registry; unregistered ids render a
// placeholder.
func (s Scheme) String() string {
	if d, ok := Describe(s); ok {
		return d.Name
	}
	return fmt.Sprintf("Scheme(%d)", uint8(s))
}

// Op is one memory reference presented to the engine.
type Op struct {
	// Type is the access type (ifetch/load/store).
	Type mem.AccessType
	// Line is the referenced cache line.
	Line mem.LineAddr
	// Class is the generator's ground-truth data class, used only for
	// statistics (the protocol never sees it).
	Class mem.DataClass
}

// AccessResult reports the outcome of one access.
type AccessResult struct {
	// Done is the cycle at which the access completes (data available for
	// reads, write permission granted for stores).
	Done mem.Cycles
	// Breakdown attributes the access latency to the §3.4 components
	// (Compute and Synchronization are filled in by the simulator).
	Breakdown stats.TimeBreakdown
	// Miss classifies how the access was serviced.
	Miss stats.MissType
}

// l1Meta is the per-line metadata of the private L1 caches.
type l1Meta struct {
	// version is the home version of the data held (SWMR checking).
	version uint64
	// sharedRO is ASR's sticky classification bit: true while the line has
	// never been written (conveyed by the home on the fill).
	sharedRO bool
	// class is the ground-truth data class (statistics only).
	class mem.DataClass
	// hintCount counts L1 hits for the TLH-LRU replacement policy.
	hintCount uint8
}

// llcMeta is the per-line metadata of the LLC slices.
type llcMeta struct {
	// home marks the home copy (it carries the directory entry).
	home bool
	// dir is the in-cache directory entry of a home line.
	dir *directory.Entry
	// replicaReuse is the saturating reuse counter of a replica line
	// (initialized to 1 on creation, incremented per replica hit, §2.2.1).
	replicaReuse uint8
	// version is the home version of the data held by a replica.
	version uint64
	// everWritten is the home-side sticky "not read-only" bit used by ASR.
	everWritten bool
	// everShared is the home-side sticky "shared" bit used by ASR: set once
	// a second distinct core accesses the line (ASR replicates only lines
	// classified shared AND read-only, §3.3).
	everShared bool
	// firstCore is the first core to access the line (with firstSeen), used
	// to detect sharing.
	firstCore mem.CoreID
	firstSeen bool
	// class is the ground-truth data class (statistics only).
	class mem.DataClass
}

// tile is one core's slice of the memory system.
type tile struct {
	id  mem.CoreID
	l1i *cache.Cache[l1Meta]
	l1d *cache.Cache[l1Meta]
	llc *cache.Cache[llcMeta]
	// busy[la] is the cycle at which this slice's home entry for la is free
	// for the next request (the paper's "LLC home waiting time"). Keeping
	// the map per tile (rather than engine-global keyed by (home, line))
	// lets the parallel scheduler treat it as tile state: transactions with
	// disjoint tile footprints never touch the same map.
	busy map[mem.LineAddr]mem.Cycles
}

// l1For returns the L1 cache serving the access type.
func (t *tile) l1For(a mem.AccessType) *cache.Cache[l1Meta] {
	if a.IsInstr() {
		return t.l1i
	}
	return t.l1d
}
