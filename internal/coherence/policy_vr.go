package coherence

import "lard/internal/mem"

// vrPolicy is Victim Replication: the local LLC slice doubles as a victim
// cache for L1 evictions (§3.3). Replicas are created on eviction, not on
// home access, and a replica hit is exclusive — the line moves back into the
// L1 and the LLC copy is invalidated (§4.1).
type vrPolicy struct{ basePolicy }

// ConsumeReplicaOnHit implements VR's exclusive victim-cache behaviour.
func (vrPolicy) ConsumeReplicaOnHit() bool { return true }

// VictimReplicate writes every L1 victim into the local slice, subject to
// VR's insertion filter (invalid way, another replica, or a sharer-free home
// line; the victim is dropped otherwise).
func (p vrPolicy) VictimReplicate(c mem.CoreID, victim l1Line, t mem.Cycles) bool {
	return p.e.tryVictimInsert(c, victim, t)
}

func init() {
	Register(Descriptor{
		Scheme:           VR,
		Name:             "VR",
		Description:      "Victim Replication: the local LLC slice acts as a victim cache for L1 evictions",
		UsesReplicas:     true,
		VictimReplicates: true,
		Columns:          []Column{{Label: "VR"}},
		New:              func(e *Engine) Policy { return vrPolicy{basePolicy{e}} },
	})
}
