package coherence

import (
	"math/bits"

	"lard/internal/config"
	"lard/internal/mem"
	"lard/internal/stats"
)

// Access performs one memory reference issued by core c at cycle t and
// returns its completion time, latency breakdown and service classification.
// The simulator presents accesses in global event order; the engine is
// deterministic for a given order.
func (e *Engine) Access(c mem.CoreID, t mem.Cycles, op Op) AccessResult {
	res := e.doAccess(c, t, op)
	// Reconcile: every cycle of the access span is attributed to exactly one
	// component, so per-core component sums add up to completion time.
	span := res.Done - t
	var assigned mem.Cycles
	for _, v := range res.Breakdown {
		assigned += v
	}
	resid := span - assigned
	switch res.Miss {
	case stats.L1Hit:
		res.Breakdown[stats.Compute] += resid
	case stats.LLCReplicaHit:
		res.Breakdown[stats.L1ToLLCReplica] += resid
	default:
		res.Breakdown[stats.L1ToLLCHome] += resid
	}
	return res
}

func (e *Engine) doAccess(c mem.CoreID, t mem.Cycles, op Op) AccessResult {
	res := AccessResult{}
	e.note(c)
	tl := e.tiles[c]
	l1 := tl.l1For(op.Type)

	// L1 lookup (1 cycle, Table 1).
	t += e.cfg.L1Latency
	e.chargeL1(op.Type.IsInstr(), false)
	if line := l1.Lookup(op.Line); line != nil {
		if !op.Type.IsWrite() {
			e.checkVersion(c, op.Line, line.Meta.version)
			l1.Touch(line)
			e.temporalHint(c, line, t)
			res.Done, res.Miss = t, stats.L1Hit
			return res
		}
		if line.State.Writable() {
			// Write hit on M, or silent E->M upgrade.
			e.checkVersion(c, op.Line, line.Meta.version)
			line.State = mem.Modified
			line.Dirty = true
			l1.Touch(line)
			e.temporalHint(c, line, t)
			e.chargeL1(op.Type.IsInstr(), true)
			res.Done, res.Miss = t, stats.L1Hit
			return res
		}
		// S-state write: the home upgrade path; the local copy stays valid
		// until the home grants write permission.
	}

	// Resolve placement (may trigger an R-NUCA page reclassification).
	home := e.homeFor(op, c, t)

	// Replica lookup at the local slice (or cluster replica slice).
	if e.usesReplicas {
		rslice := e.policy.ReplicaSlice(op.Line, c)
		if rslice != home {
			if done, hit := e.replicaLookup(c, rslice, op, t, &res); hit {
				res.Done = done
				return res
			}
			t = e.afterReplicaMiss(c, rslice, op, t, &res)
		}
	}

	res.Done = e.atHome(c, home, op, t, &res)
	return res
}

// replicaLookup probes the replica slice. On a usable hit (any valid state
// for reads, M/E for writes, §2.2.2) it fills the requester's L1 and returns
// the completion time. On a miss nothing is charged here; afterReplicaMiss
// accounts the probe cost unless the §2.3.2 oracle is enabled.
func (e *Engine) replicaLookup(c, rslice mem.CoreID, op Op, t mem.Cycles, res *AccessResult) (mem.Cycles, bool) {
	e.note(rslice)
	tl := e.tiles[rslice]
	l := tl.llc.Lookup(op.Line)
	if l == nil || l.Meta.home {
		return 0, false
	}
	if op.Type.IsWrite() && !l.State.Writable() {
		return 0, false
	}
	t0 := t
	t = e.mesh.Send(c, rslice, e.ctrlFlits(), t) // free when rslice == c
	t += e.cfg.LLCTagLatency + e.cfg.LLCDataLatency
	e.chargeLLCTag(false)
	e.chargeLLCData(false)
	e.chargeLLCTag(true) // LRU + replica-reuse update ride the tag write (§2.4.2)
	tl.llc.Touch(l)
	e.checkVersion(c, op.Line, l.Meta.version)

	version := l.Meta.version
	state := l.State
	replicaDirty := l.Dirty
	sharedRO := !l.Meta.everWritten
	l.Meta.replicaReuse = satReuse(l.Meta.replicaReuse, e.cfg.RT)
	consumed := e.consumeOnHit
	if consumed {
		// Exclusive replica (VR-style): a hit moves the line into the L1 and
		// invalidates the LLC copy (§4.1).
		tl.llc.Invalidate(op.Line)
	}
	t = e.mesh.Send(rslice, c, e.dataFlits(), t)

	l1State := state
	fillDirty := replicaDirty && consumed // the move carries dirtiness
	if e.clusterRepl {
		// A cluster replica serves several cores' L1s; exclusivity lives at
		// the replica, so member L1 copies are granted Shared, and a member
		// write on a writable replica first back-invalidates its siblings
		// (the intra-cluster half of the hierarchical protocol, §2.3.4).
		l1State = mem.Shared
		if op.Type.IsWrite() {
			base := (int(rslice) / e.cfg.ClusterSize) * e.cfg.ClusterSize
			for i := 0; i < e.cfg.ClusterSize; i++ {
				member := mem.CoreID(base + i)
				if member == c {
					continue
				}
				mt := e.tiles[member]
				if _, ok := mt.l1i.Invalidate(op.Line); ok {
					e.chargeL1(true, true)
				}
				if _, ok := mt.l1d.Invalidate(op.Line); ok {
					e.chargeL1(false, true)
				}
			}
		}
	}
	if op.Type.IsWrite() {
		l1State = mem.Modified
		fillDirty = true
	}
	e.fillL1(c, op, l1State, fillDirty, version, sharedRO, t)
	res.Breakdown[stats.L1ToLLCReplica] += t - t0
	res.Miss = stats.LLCReplicaHit
	e.replicaHits[l.Meta.class]++
	e.recordRun(op.Line, c, op.Type.IsWrite(), op.Class)
	return t, true
}

// afterReplicaMiss charges the failed replica-slice probe and returns the
// time at which the request proceeds to the home. The §2.3.2 dynamic oracle
// skips the probe entirely (the request routes straight to the home).
func (e *Engine) afterReplicaMiss(c, rslice mem.CoreID, op Op, t mem.Cycles, res *AccessResult) mem.Cycles {
	if e.cfg.LookupOracle {
		return t
	}
	t0 := t
	t = e.mesh.Send(c, rslice, e.ctrlFlits(), t)
	t += e.cfg.LLCTagLatency
	e.chargeLLCTag(false)
	res.Breakdown[stats.L1ToLLCReplica] += t - t0
	return t
}

// atHome runs the home-side transaction: serialization, home lookup with
// off-chip fill on miss, coherence actions, replication decision, reply and
// fills. It returns the completion time at the requester.
func (e *Engine) atHome(c, home mem.CoreID, op Op, t mem.Cycles, res *AccessResult) mem.Cycles {
	// Request leg. Under cluster replication the request was already
	// forwarded to the replica slice, which then forwards it to the home.
	src := c
	if e.usesReplicas && !e.cfg.LookupOracle {
		if rs := e.policy.ReplicaSlice(op.Line, c); rs != home {
			src = rs
		}
	}
	tstart := t
	arrive := e.mesh.Send(src, home, e.ctrlFlits(), t)
	res.Breakdown[stats.L1ToLLCHome] += arrive - tstart

	// Home serialization: the paper's "LLC home waiting time".
	e.note(home)
	begin := max(arrive, e.tiles[home].busy[op.Line])
	res.Breakdown[stats.LLCHomeWaiting] += begin - arrive
	t = begin + e.cfg.LLCTagLatency
	e.chargeLLCTag(false)
	e.chargeDir(false)

	hl := e.homeEntry(home, op.Line)
	if hl == nil {
		// Off-chip fetch.
		t0 := t
		ctrl := e.dram.ControllerFor(op.Line)
		ctile := e.dram.TileOf(ctrl)
		e.note(ctile)
		t = e.mesh.Send(home, ctile, e.ctrlFlits(), t)
		t = e.dram.Access(ctrl, t)
		t = e.mesh.Send(ctile, home, e.dataFlits(), t)
		res.Breakdown[stats.LLCHomeToOffChip] += t - t0
		hl = e.insertHomeLine(home, op, t)
		t += e.cfg.LLCDataLatency
		e.chargeLLCTag(true)
		e.chargeLLCData(true)
		res.Miss = stats.OffChipMiss
	} else {
		res.Miss = stats.LLCHomeHit
	}
	e.recordRun(op.Line, c, op.Type.IsWrite(), op.Class)
	if !hl.Meta.firstSeen {
		hl.Meta.firstSeen = true
		hl.Meta.firstCore = c
	} else if hl.Meta.firstCore != c {
		hl.Meta.everShared = true
	}

	if op.Type.IsWrite() {
		return e.homeWrite(c, home, op, hl, t, res)
	}
	return e.homeRead(c, home, op, hl, t, res)
}

// homeRead services a read or instruction fetch at the home (§2.2.1).
func (e *Engine) homeRead(c, home mem.CoreID, op Op, hl *cacheLine, t mem.Cycles, res *AccessResult) mem.Cycles {
	ent := hl.Meta.dir
	la := op.Line

	// Synchronous write-back from an E/M owner elsewhere.
	if ent.HasOwner && ent.Owner != c {
		t0 := t
		owner := ent.Owner
		tp := e.mesh.Send(home, owner, e.ctrlFlits(), t)
		tp += e.cfg.LLCTagLatency
		if e.downgradeAt(owner, la) {
			hl.Dirty = true
			e.chargeLLCData(true)
		}
		tr := e.mesh.Send(owner, home, e.dataFlits(), tp)
		ent.ClearOwner()
		e.chargeDir(true)
		res.Breakdown[stats.LLCHomeToSharers] += tr - t0
		t = tr
	}

	// Data array read for the reply.
	t += e.cfg.LLCDataLatency
	e.chargeLLCData(false)
	e.chargeLLCTag(true) // LRU update
	e.tiles[home].llc.Touch(hl)

	// Replication decision (§2.2.1). The policy observes every home access
	// (its reuse tracking advances on local hits too); a replica is only
	// physically created when the replica slice is not the home itself.
	rslice := e.policy.ReplicaSlice(la, c)
	replicate := e.policy.ReplicateOnRead(ent, c) && home != c && rslice != home
	if replicate {
		e.clfPromotions++
	}

	// Grant Exclusive when the requester will be the only holder.
	grant := mem.Shared
	if len(ent.ReplicaSlices) == 0 &&
		(ent.Sharers.Count() == 0 || (ent.Sharers.Count() == 1 && ent.Sharers.Has(c))) {
		grant = mem.Exclusive
	}
	ent.Sharers.Add(c)
	if grant == mem.Exclusive {
		ent.SetOwner(c)
	}
	e.chargeDir(true)

	e.tiles[home].busy[la] = t // home entry free for the next request

	version := ent.Version
	sharedRO := hl.Meta.everShared && !hl.Meta.everWritten
	if home == c {
		// Local home hit: L1 fill only (§2.2.1).
		e.fillL1(c, op, grant, false, version, sharedRO, t)
		return t
	}

	if replicate && e.clusterRepl {
		// Cluster replication: data flows home -> replica slice -> L1, and
		// the home registers the replica slice so invalidations reach the
		// whole cluster hierarchy (§2.3.4). Member L1 copies are Shared;
		// exclusivity lives at the replica (see replicaLookup).
		l1grant := grant
		if grant.Writable() {
			l1grant = mem.Shared
		}
		tr := e.mesh.Send(home, rslice, e.dataFlits(), t)
		tr += e.cfg.LLCDataLatency
		e.insertReplica(rslice, la, grant, false, version, op.Class, hl.Meta.everWritten, tr)
		ent.AddReplicaSlice(rslice)
		tr = e.mesh.Send(rslice, c, e.dataFlits(), tr)
		e.fillL1(c, op, l1grant, false, version, sharedRO, tr)
		return tr
	}

	tr := e.mesh.Send(home, c, e.dataFlits(), t)
	if replicate {
		tr += e.cfg.LLCDataLatency
		e.insertReplica(c, la, grant, false, version, op.Class, hl.Meta.everWritten, tr)
	}
	e.fillL1(c, op, grant, false, version, sharedRO, tr)
	return tr
}

// homeWrite services a store at the home (§2.2.2): invalidate every other
// copy (and the writer's own S-state replica), update the classifier, bump
// the version, grant Modified — with a local replica in M state when the
// classifier allows, which is what supports migratory sharing (§2.3.1).
func (e *Engine) homeWrite(c, home mem.CoreID, op Op, hl *cacheLine, t mem.Cycles, res *AccessResult) mem.Cycles {
	ent := hl.Meta.dir
	la := op.Line

	soleSharer := ent.Sharers.Count() == 0 ||
		(ent.Sharers.Count() == 1 && ent.Sharers.Has(c))

	// Invalidate all other sharers and cluster replicas.
	t = e.invalidateSharers(c, home, la, ent, t, res)

	// The writer's own replica (necessarily not writable, or the access
	// would have hit it) is invalidated as well; the policy sees it as an
	// invalidation so the (replica+home) reuse rule applies. Cluster
	// replicas were already handled through the ReplicaSlices loop.
	if e.usesReplicas && e.cfg.ClusterSize <= 1 {
		wtl := e.tiles[c]
		if l := wtl.llc.Lookup(la); l != nil && !l.Meta.home {
			reuse := l.Meta.replicaReuse
			if l.Dirty {
				hl.Dirty = true
				e.chargeLLCData(true)
			}
			wtl.llc.Invalidate(la)
			e.chargeLLCTag(true)
			e.clfDemotions++
			e.policy.OnReplicaGone(ent, c, reuse, true)
		}
	}

	// §2.2.2: non-replica sharers other than the writer have not shown
	// enough reuse; the policy resets their counters.
	e.policy.OnWrite(ent, c)

	hadCopy := e.tiles[c].l1For(op.Type).Lookup(la) != nil
	ent.Sharers.Clear()
	ent.Sharers.Add(c)
	ent.SetOwner(c)
	ent.Version++
	hl.Meta.everWritten = true
	e.chargeDir(true)
	e.chargeLLCTag(true)
	e.tiles[home].llc.Touch(hl)

	rslice := e.policy.ReplicaSlice(la, c)
	replicate := e.policy.ReplicateOnWrite(ent, c, soleSharer) && home != c && rslice != home
	if replicate {
		e.clfPromotions++
	}
	version := ent.Version

	// Upgrade replies (writer already holds an S copy) carry no data.
	flits := e.dataFlits()
	if hadCopy {
		flits = e.ctrlFlits()
	} else {
		t += e.cfg.LLCDataLatency
		e.chargeLLCData(false)
	}

	e.tiles[home].busy[la] = t

	if home == c {
		e.fillL1(c, op, mem.Modified, true, version, false, t)
		return t
	}

	if replicate && e.clusterRepl {
		tr := e.mesh.Send(home, rslice, flits, t)
		tr += e.cfg.LLCDataLatency
		e.insertReplica(rslice, la, mem.Modified, false, version, op.Class, true, tr)
		ent.AddReplicaSlice(rslice)
		tr = e.mesh.Send(rslice, c, e.dataFlits(), tr)
		e.fillL1(c, op, mem.Modified, true, version, false, tr)
		return tr
	}

	tr := e.mesh.Send(home, c, flits, t)
	if replicate {
		tr += e.cfg.LLCDataLatency
		e.insertReplica(c, la, mem.Modified, false, version, op.Class, true, tr)
	}
	e.fillL1(c, op, mem.Modified, true, version, false, tr)
	return tr
}

// invalidateSharers invalidates every sharer except the writer, collecting
// acknowledgements (with replica-reuse counters, §2.2.3) and feeding the
// policy. With an overflowed ACKwise set the probes are broadcast to every
// core but only actual holders acknowledge (§2.1). It returns the time at
// which all acknowledgements have arrived.
func (e *Engine) invalidateSharers(writer, home mem.CoreID, la mem.LineAddr, ent *dirEntry, t mem.Cycles, res *AccessResult) mem.Cycles {
	// Fan-out targets go into the engine scratch buffer (capacity Cores, so
	// no growth): ascending core order in both modes, exactly the order the
	// sorted Sharers() slice used to produce — message order is part of the
	// simulated outcome (the mesh's link reservations are stateful).
	targets := e.fanout[:0]
	if ent.Sharers.Overflowed() {
		for i := 0; i < e.cfg.Cores; i++ {
			targets = append(targets, mem.CoreID(i))
		}
	} else {
		for b := ent.Sharers.Bits(); b != 0; b &= b - 1 {
			targets = append(targets, mem.CoreID(bits.TrailingZeros64(b)))
		}
	}
	t0 := t
	maxAck := t
	any := false
	for _, s := range targets {
		if s == writer {
			continue
		}
		wasSharer := ent.Sharers.Has(s)
		tp := e.mesh.Send(home, s, e.ctrlFlits(), t)
		tp += e.cfg.LLCTagLatency
		inv := e.invalidateAt(s, la)
		if !wasSharer && !inv.hadAny {
			continue // broadcast probe of a non-holder: no acknowledgement
		}
		any = true
		flits := e.ctrlFlits()
		if inv.dirty {
			flits = e.dataFlits()
			hl := e.homeEntry(home, la)
			hl.Dirty = true
			e.chargeLLCData(true)
		}
		back := e.mesh.Send(s, home, flits, tp)
		maxAck = max(maxAck, back)
		if inv.hadReplica {
			e.clfDemotions++
			e.policy.OnReplicaGone(ent, s, inv.replicaReuse, true)
		}
		ent.Sharers.Remove(s)
	}
	// Cluster replica slices (cluster size > 1): hierarchical invalidation
	// of the replica and the cluster's L1 copies it serves (§2.3.4). The
	// loop walks an order-preserving snapshot in the engine scratch buffer:
	// RemoveReplicaSlice swap-deletes mid-iteration, and iterating the live
	// slice would visit the slices in a different (outcome-changing) order.
	rsl := append(e.rsnap[:0], ent.ReplicaSlices...)
	for _, rs := range rsl {
		tp := e.mesh.Send(home, rs, e.ctrlFlits(), t)
		tp += e.cfg.LLCTagLatency
		inv := e.invalidateClusterReplica(rs, la, writer)
		flits := e.ctrlFlits()
		if inv.dirty {
			flits = e.dataFlits()
			hl := e.homeEntry(home, la)
			hl.Dirty = true
			e.chargeLLCData(true)
		}
		back := e.mesh.Send(rs, home, flits, tp)
		maxAck = max(maxAck, back)
		if inv.hadReplica {
			e.clfDemotions++
			e.policy.OnClusterReplicaGone(ent, rs, inv.replicaReuse, true)
		}
		ent.RemoveReplicaSlice(rs)
		any = true
	}
	ent.ClearOwner()
	if any {
		res.Breakdown[stats.LLCHomeToSharers] += maxAck - t0
	}
	return maxAck
}

// invResult reports what an invalidation probe found at a core.
type invResult struct {
	hadAny       bool
	hadReplica   bool
	replicaReuse uint8
	dirty        bool
}

// invalidateAt probes core s's L1 caches and LLC slice for la and
// invalidates every copy found; both structures are always probed because
// the directory has a single pointer per core (§2.3.2).
func (e *Engine) invalidateAt(s mem.CoreID, la mem.LineAddr) invResult {
	e.note(s)
	tl := e.tiles[s]
	var r invResult
	e.chargeL1(true, false)
	e.chargeL1(false, false)
	e.chargeLLCTag(false)
	if rem, ok := tl.l1i.Invalidate(la); ok {
		r.hadAny = true
		r.dirty = r.dirty || rem.Dirty
		e.chargeL1(true, true)
	}
	if rem, ok := tl.l1d.Invalidate(la); ok {
		r.hadAny = true
		r.dirty = r.dirty || rem.Dirty
		e.chargeL1(false, true)
	}
	if e.clusterRepl {
		// Cluster replicas are registered at the home and invalidated
		// hierarchically via invalidateClusterReplica; the per-sharer probe
		// must not remove them behind the home's back.
		return r
	}
	if l := tl.llc.Lookup(la); l != nil && !l.Meta.home {
		r.hadAny = true
		r.hadReplica = true
		r.replicaReuse = l.Meta.replicaReuse
		r.dirty = r.dirty || l.Dirty
		tl.llc.Invalidate(la)
		e.replicaInvals++
		e.chargeLLCTag(true)
	}
	return r
}

// invalidateClusterReplica invalidates a cluster replica at slice rs and
// back-invalidates the L1 copies of every core in rs's cluster except the
// writer (whose upgrade keeps its own copy).
func (e *Engine) invalidateClusterReplica(rs mem.CoreID, la mem.LineAddr, writer mem.CoreID) invResult {
	e.note(rs)
	var r invResult
	tl := e.tiles[rs]
	e.chargeLLCTag(false)
	if l := tl.llc.Lookup(la); l != nil && !l.Meta.home {
		r.hadAny = true
		r.hadReplica = true
		r.replicaReuse = l.Meta.replicaReuse
		r.dirty = l.Dirty
		tl.llc.Invalidate(la)
		e.chargeLLCTag(true)
	}
	base := (int(rs) / e.cfg.ClusterSize) * e.cfg.ClusterSize
	for i := 0; i < e.cfg.ClusterSize; i++ {
		member := mem.CoreID(base + i)
		if member == writer {
			continue
		}
		mt := e.tiles[member]
		e.chargeL1(true, false)
		e.chargeL1(false, false)
		if rem, ok := mt.l1i.Invalidate(la); ok {
			r.hadAny = true
			r.dirty = r.dirty || rem.Dirty
			e.chargeL1(true, true)
		}
		if rem, ok := mt.l1d.Invalidate(la); ok {
			r.hadAny = true
			r.dirty = r.dirty || rem.Dirty
			e.chargeL1(false, true)
		}
	}
	return r
}

// downgradeAt demotes core s's copies of la to Shared and reports whether
// dirty data was collected. Under cluster replication the owner's E/M
// replica lives at its cluster's replica slice, which is downgraded too.
func (e *Engine) downgradeAt(s mem.CoreID, la mem.LineAddr) bool {
	e.note(s)
	tl := e.tiles[s]
	dirty := false
	if l := tl.l1i.Lookup(la); l != nil {
		dirty = dirty || l.Dirty
		l.State = mem.Shared
		l.Dirty = false
		e.chargeL1(true, true)
	}
	if l := tl.l1d.Lookup(la); l != nil {
		dirty = dirty || l.Dirty
		l.State = mem.Shared
		l.Dirty = false
		e.chargeL1(false, true)
	}
	dirty = e.downgradeReplicaAt(s, la) || dirty
	if e.clusterRepl {
		if rs := e.policy.ReplicaSlice(la, s); rs != s {
			dirty = e.downgradeReplicaAt(rs, la) || dirty
		}
	}
	return dirty
}

// downgradeReplicaAt demotes the replica copy of la at slice sl (if any) to
// Shared and reports whether it was dirty.
func (e *Engine) downgradeReplicaAt(sl mem.CoreID, la mem.LineAddr) bool {
	e.note(sl)
	l := e.tiles[sl].llc.Lookup(la)
	if l == nil || l.Meta.home {
		return false
	}
	dirty := l.Dirty
	l.State = mem.Shared
	l.Dirty = false
	e.chargeLLCTag(true)
	return dirty
}

// fillL1 inserts (or upgrades) the line in the requester's L1 and handles
// the displaced victim according to the active scheme.
func (e *Engine) fillL1(c mem.CoreID, op Op, state mem.MESI, dirty bool, version uint64, sharedRO bool, t mem.Cycles) {
	tl := e.tiles[c]
	l1 := tl.l1For(op.Type)
	if existing := l1.Lookup(op.Line); existing != nil {
		existing.State = state
		existing.Dirty = existing.Dirty || dirty
		existing.Meta.version = version
		l1.Touch(existing)
		e.chargeL1(op.Type.IsInstr(), true)
		return
	}
	ins, victim, evicted := l1.Insert(op.Line, state, lruL1)
	ins.Dirty = dirty
	ins.Meta = l1Meta{version: version, sharedRO: sharedRO, class: op.Class}
	e.chargeL1(op.Type.IsInstr(), true)
	if evicted {
		e.handleL1Evict(c, victim, t)
	}
}

// temporalHint implements the TLH-LRU replacement policy's hint channel
// (§2.2.4 cites [15]): every TLHPeriod-th L1 hit to a line sends a one-flit
// hint that refreshes the recency of the line's LLC copy. The hint is off
// the core's critical path but pays network traffic and an LLC tag write —
// the overhead the paper's modified-LRU avoids by reading the in-cache
// directory instead.
func (e *Engine) temporalHint(c mem.CoreID, line *l1Line, t mem.Cycles) {
	if e.cfg.Replacement != config.TLHLRU {
		return
	}
	period := e.cfg.TLHPeriod
	if period <= 0 {
		period = 16
	}
	line.Meta.hintCount++
	if int(line.Meta.hintCount) < period {
		return
	}
	line.Meta.hintCount = 0
	la := line.Addr
	e.note(c)
	// The LLC copy to refresh: the local replica if present, else the home.
	if l := e.tiles[c].llc.Lookup(la); l != nil {
		e.tiles[c].llc.Touch(l)
		e.chargeLLCTag(true)
		return
	}
	home := e.homeOfLine(la, c)
	e.note(home)
	e.mesh.Send(c, home, e.ctrlFlits(), t)
	if hl := e.homeEntry(home, la); hl != nil {
		e.tiles[home].llc.Touch(hl)
		e.chargeLLCTag(true)
	}
}
