package coherence

import (
	"strconv"

	"lard/internal/config"
	"lard/internal/mem"
)

// ExpectedHitCount is the sixth registered scheme: replication gated by an
// expected-hit-count signal instead of the paper's per-core locality
// classifier. It exists both as a useful baseline and as the registry's
// proof of pluggability — this file plus the wire registration in the lard
// facade are the only code a new scheme needs; no engine, harness, facade
// or server switch is touched.
const ExpectedHitCount Scheme = 5

// ehcPolicy gates replication on a per-line saturating hit counter kept at
// the home (after the expected-hit-count replacement work of Vakil-Ghahani
// et al.): once a line's home has serviced Config.RT read accesses since the
// last write, every remote reader is granted a replica in its local slice —
// the line has demonstrated enough reuse that its expected hit count repays
// the replica's capacity cost. A write resets the counter: the accumulated
// evidence predates data that no longer exists.
//
// Compared to the paper's protocol the signal is per-line rather than per
// (line, core): cheaper (one counter in the directory entry, no locality
// list) but blind to which core shows the reuse — the trade-off the paper's
// classifier exists to win. Placement is pure S-NUCA interleaving and
// replicas are local-slice only, so the scheme exercises the engine's
// generic replica machinery (probe, reuse counters, invalidation,
// modified-LRU ranking) with none of the RT-specific paths.
type ehcPolicy struct{ basePolicy }

// ehcState is the per-line policy state, stored in the directory entry's
// opaque Classifier slot so it lives and dies with the home copy.
type ehcState struct {
	homeReads uint8
}

func (p ehcPolicy) stateOf(ent *dirEntry) *ehcState {
	if ent.Classifier == nil {
		ent.Classifier = &ehcState{}
	}
	return ent.Classifier.(*ehcState)
}

// ReplicateOnRead advances the line's home-read counter (a directory-entry
// update, charged like the RT classifier's) and grants a replica once it
// reaches the threshold.
func (p ehcPolicy) ReplicateOnRead(ent *dirEntry, c mem.CoreID) bool {
	st := p.stateOf(ent)
	st.homeReads = satReuse(st.homeReads, p.e.cfg.RT)
	p.e.chargeDir(true)
	return int(st.homeReads) >= p.e.cfg.RT
}

// OnWrite resets the hit-count evidence: reads counted against the previous
// version predict nothing about the data just written.
func (p ehcPolicy) OnWrite(ent *dirEntry, writer mem.CoreID) {
	p.stateOf(ent).homeReads = 0
	p.e.chargeDir(true)
}

func init() {
	Register(Descriptor{
		Scheme:      ExpectedHitCount,
		Name:        "EHC",
		Description: "expected-hit-count replication: lines whose home serviced >= RT reads since the last write replicate in every remote reader's local slice",
		Label: func(cfg *config.Config) string {
			return "EHC-" + strconv.Itoa(cfg.RT)
		},
		UsesReplicas: true,
		ThresholdRT:  true,
		New:          func(e *Engine) Policy { return ehcPolicy{basePolicy{e}} },
	})
}
