package coherence

import (
	"math/rand"
	"testing"

	"lard/internal/config"
	"lard/internal/mem"
	"lard/internal/stats"
)

// ---- placement -------------------------------------------------------------

func TestSNUCAInterleaves(t *testing.T) {
	e := testEngine(SNUCA)
	for la := mem.LineAddr(0); la < 64; la++ {
		if got := e.homeOfLine(la, 0); got != mem.CoreID(la%16) {
			t.Fatalf("home(%d) = %d, want %d", la, got, la%16)
		}
	}
}

func TestRNUCAPrivatePlacement(t *testing.T) {
	e := testEngine(RNUCA)
	la := mem.LineAddr(0x9_0000) // fresh page
	rd(e, 7, 0, la)
	if got := e.homeOfLine(la, 7); got != 7 {
		t.Fatalf("private page must be homed at the first toucher, got %d", got)
	}
	// Another line of the same page follows the page's class.
	if got := e.homeOfLine(la+1, 3); got != 7 {
		t.Fatalf("same-page line must share the private home, got %d", got)
	}
}

func TestRNUCAReclassification(t *testing.T) {
	e := testEngine(RNUCA)
	la := mem.LineAddr(0x9_0000)
	tm := rd(e, 7, 0, la).Done
	if e.PageReclassifications() != 0 {
		t.Fatal("no reclassification yet")
	}
	// A second core touches the page: private -> shared, old copies flushed.
	rd(e, 3, tm, la+2)
	if e.PageReclassifications() == 0 {
		t.Fatal("second-core touch must reclassify the page")
	}
	if got := e.homeOfLine(la, 7); got != mem.CoreID(la%16) {
		t.Fatalf("shared page must interleave, got %d", got)
	}
	// The old private-home copy must be gone (flushed).
	if e.homeEntry(7, la) != nil && e.homeOfLine(la, 7) != 7 {
		t.Fatal("old home copy must have been flushed")
	}
	// The toucher's L1 copy was invalidated by the flush.
	if e.tiles[7].l1d.Lookup(la) != nil {
		t.Fatal("flush must invalidate cached copies of the re-homed page")
	}
}

func TestRNUCAInstructionClusterHome(t *testing.T) {
	e := testEngine(RNUCA)
	la := mem.LineAddr(0xA_0000)
	e.Access(5, 0, Op{Type: mem.IFetch, Line: la, Class: mem.ClassInstruction})
	// Requesters in the same 4-core cluster share a home; a different
	// cluster uses its own slice (rotational interleaving, §3.3).
	h5 := e.homeOfLine(la, 5)
	h6 := e.homeOfLine(la, 6)
	h12 := e.homeOfLine(la, 12)
	if h5/4 != 1 || h6/4 != 1 {
		t.Fatalf("cluster-1 requesters must be homed in cluster 1: %d, %d", h5, h6)
	}
	if h5 != h6 {
		t.Fatalf("same line, same cluster: home must match (%d vs %d)", h5, h6)
	}
	if h12/4 != 3 {
		t.Fatalf("cluster-3 requester must be homed in cluster 3, got %d", h12)
	}
}

func TestRNUCAInstructionClusterIndependentCopies(t *testing.T) {
	e := testEngine(RNUCA)
	la := mem.LineAddr(0xA_0000)
	r1 := e.Access(0, 0, Op{Type: mem.IFetch, Line: la, Class: mem.ClassInstruction})
	r2 := e.Access(4, r1.Done, Op{Type: mem.IFetch, Line: la, Class: mem.ClassInstruction})
	if r2.Miss != stats.OffChipMiss {
		t.Fatalf("each cluster fetches its own copy: %v, want off-chip", r2.Miss)
	}
	r3 := e.Access(5, r2.Done, Op{Type: mem.IFetch, Line: la, Class: mem.ClassInstruction})
	if r3.Miss != stats.LLCHomeHit {
		t.Fatalf("same-cluster fetch = %v, want home hit", r3.Miss)
	}
}

// TestLARDTreatsInstructionsAsShared: the locality-aware scheme does not use
// instruction-cluster replication (§2.1): instructions interleave like any
// shared data and replicate through the classifier.
func TestLARDTreatsInstructionsAsShared(t *testing.T) {
	e := testEngine(LocalityAware)
	la := mem.LineAddr(0xA_0000)
	e.Access(5, 0, Op{Type: mem.IFetch, Line: la, Class: mem.ClassInstruction})
	if got := e.homeOfLine(la, 5); got != mem.CoreID(la%16) {
		t.Fatalf("instruction home = %d, want interleaved %d", got, la%16)
	}
	var tm mem.Cycles
	for i := 0; i < 3; i++ {
		tm = e.Access(5, tm, Op{Type: mem.IFetch, Line: la, Class: mem.ClassInstruction}).Done
		e.tiles[5].l1i.Invalidate(la)
	}
	if l := e.tiles[5].llc.Lookup(la); l == nil || l.Meta.home {
		t.Fatal("instructions with reuse must be replicated like data")
	}
}

// ---- Victim Replication -----------------------------------------------------

// TestVRVictimInsertion: an L1 eviction places the victim into the local
// slice; a later access hits it and MOVES it back to the L1 (exclusive).
func TestVRVictimInsertion(t *testing.T) {
	e := testEngine(VR)
	la := mem.LineAddr(0x2001) // home = 1, requester 0
	tm := rd(e, 0, 0, la).Done
	victim := *e.tiles[0].l1d.Lookup(la)
	e.tiles[0].l1d.Invalidate(la)
	e.handleL1Evict(0, victim, tm)
	l := e.tiles[0].llc.Lookup(la)
	if l == nil || l.Meta.home {
		t.Fatal("VR must insert the victim into the local slice")
	}
	res := rd(e, 0, tm, la)
	if res.Miss != stats.LLCReplicaHit {
		t.Fatalf("VR replica hit expected, got %v", res.Miss)
	}
	if e.tiles[0].llc.Lookup(la) != nil {
		t.Fatal("VR is exclusive: the hit must invalidate the LLC replica")
	}
	if e.tiles[0].l1d.Lookup(la) == nil {
		t.Fatal("the line must now live in the L1")
	}
}

// TestVRInsertionFilter: victims may only displace invalid ways, replicas,
// or sharer-free home lines — never a home line with sharers (§3.3).
func TestVRInsertionFilter(t *testing.T) {
	e := testEngine(VR)
	// Build a full set in core 0's slice out of home lines with sharers.
	tl := e.tiles[0]
	var tm mem.Cycles
	filled := 0
	for la := mem.LineAddr(0); filled < tl.llc.Ways(); la++ {
		if e.homeOfLine(la, 0) != 0 || tl.llc.SetOf(la) != tl.llc.SetOf(0x10) {
			continue
		}
		// Another core keeps an L1 copy, so the home line has a sharer.
		tm = rd(e, 1, tm, la).Done
		filled++
	}
	set := tl.llc.WaysOf(0x10)
	if got := victimAllowedVR(set); got != -1 {
		t.Fatalf("filter must refuse a set full of shared home lines, got way %d", got)
	}
}

// TestVRDirtyVictimWritesBack: when the victim cannot be inserted, a dirty
// line is written back to the home.
func TestVRDirtyVictimNotifiesHome(t *testing.T) {
	e := testEngine(SNUCA) // scheme without local insertion
	la := mem.LineAddr(0x2001)
	tm := wr(e, 0, 0, la).Done
	victim := *e.tiles[0].l1d.Lookup(la)
	e.tiles[0].l1d.Invalidate(la)
	e.handleL1Evict(0, victim, tm)
	hl := e.homeEntry(e.homeOfLine(la, 0), la)
	if !hl.Dirty {
		t.Fatal("dirty victim must merge at the home")
	}
}

// ---- ASR --------------------------------------------------------------------

// TestASRLevelZeroNeverReplicates.
func TestASRLevelZeroNeverReplicates(t *testing.T) {
	cfg := config.Small()
	e := New(cfg, Options{Scheme: ASR, ASRLevel: 0, CheckInvariants: true})
	la := mem.LineAddr(0x2001)
	var tm mem.Cycles
	tm = rd(e, 1, tm, la).Done // second core: line becomes "shared"
	for i := 0; i < 5; i++ {
		tm = rd(e, 0, tm, la).Done
		victim := *e.tiles[0].l1d.Lookup(la)
		e.tiles[0].l1d.Invalidate(la)
		e.handleL1Evict(0, victim, tm)
	}
	if l := e.tiles[0].llc.Lookup(la); l != nil && !l.Meta.home {
		t.Fatal("ASR level 0 must never replicate")
	}
}

// TestASRSharedReadOnlyGating: ASR replicates shared read-only victims at
// level 1, but never lines that have been written, and never lines only one
// core has touched (§3.3).
func TestASRSharedReadOnlyGating(t *testing.T) {
	cfg := config.Small()
	e := New(cfg, Options{Scheme: ASR, ASRLevel: 1, CheckInvariants: true})
	evict := func(c mem.CoreID, la mem.LineAddr, tm mem.Cycles) {
		if l := e.tiles[c].l1d.Lookup(la); l != nil {
			victim := *l
			e.tiles[c].l1d.Invalidate(la)
			e.handleL1Evict(c, victim, tm)
		}
	}
	// Shared read-only line: replicated.
	ro := mem.LineAddr(0x2001)
	tm := rd(e, 1, 0, ro).Done
	tm = rd(e, 0, tm, ro).Done
	evict(0, ro, tm)
	if l := e.tiles[0].llc.Lookup(ro); l == nil || l.Meta.home {
		t.Fatal("ASR must replicate a shared read-only victim at level 1")
	}
	// Written line: excluded forever.
	rw := mem.LineAddr(0x3001)
	tm = wr(e, 1, tm, rw).Done
	tm = rd(e, 0, tm, rw).Done
	evict(0, rw, tm)
	if l := e.tiles[0].llc.Lookup(rw); l != nil && !l.Meta.home {
		t.Fatal("ASR must not replicate ever-written lines")
	}
	// Private (single-toucher) line: not classified shared, excluded.
	pv := mem.LineAddr(0x4002)
	tm = rd(e, 0, tm, pv).Done
	evict(0, pv, tm)
	if l := e.tiles[0].llc.Lookup(pv); l != nil && !l.Meta.home {
		t.Fatal("ASR must not replicate private lines")
	}
}

// ---- cluster-level replication (§2.3.4) -------------------------------------

func TestClusterReplicaPlacementAndLookup(t *testing.T) {
	cfg := config.Small()
	cfg.ClusterSize = 4
	e := New(cfg, Options{Scheme: LocalityAware, CheckInvariants: true})
	// Make a page shared first so the home interleaves.
	rd(e, 14, 0, 0x2000^1)
	rd(e, 15, 0, 0x2000^1)
	c := mem.CoreID(1) // cluster 0: slices 0-3
	la := mem.LineAddr(0x2007)
	home := e.homeOfLine(la, c)
	rs := e.replicaSliceFor(la, c)
	if rs/4 != 0 {
		t.Fatalf("replica slice %d must be in the requester's cluster", rs)
	}
	if home == rs {
		t.Skip("home fell inside the cluster at the replica slice")
	}
	var tm mem.Cycles
	for i := 0; i < 3; i++ {
		tm = rd(e, c, tm, la).Done
		e.tiles[c].l1d.Invalidate(la)
	}
	if l := e.tiles[rs].llc.Lookup(la); l == nil || l.Meta.home {
		t.Fatalf("replica must be placed at the cluster slice %d", rs)
	}
	// Another cluster member hits the same replica.
	res := rd(e, 2, tm, la)
	if res.Miss != stats.LLCReplicaHit {
		t.Fatalf("cluster member access = %v, want replica hit", res.Miss)
	}
	// A write from outside invalidates the cluster replica and every
	// cluster L1 copy.
	wr(e, 9, res.Done, la)
	if l := e.tiles[rs].llc.Lookup(la); l != nil && !l.Meta.home {
		t.Fatal("cluster replica must be invalidated on a write")
	}
	if e.tiles[2].l1d.Lookup(la) != nil {
		t.Fatal("cluster L1 copies must be back-invalidated hierarchically")
	}
}

// TestClusterSize64EquivalentToNoReplication: with one cluster covering the
// chip the replica slice coincides with the home for shared lines, so no
// replicas are created (the C-64 bar of Figure 10).
func TestClusterSize64NoReplicas(t *testing.T) {
	cfg := config.Small()
	cfg.ClusterSize = 16 // whole (small) chip
	e := New(cfg, Options{Scheme: LocalityAware, CheckInvariants: true})
	rd(e, 14, 0, 0x2000^1)
	rd(e, 15, 0, 0x2000^1)
	la := mem.LineAddr(0x2007)
	var tm mem.Cycles
	for i := 0; i < 5; i++ {
		tm = rd(e, 1, tm, la).Done
		e.tiles[1].l1d.Invalidate(la)
	}
	ins, _ := e.ReplicaStats()
	if ins != [mem.NumDataClasses]uint64{} {
		t.Fatalf("chip-wide cluster must never replicate, got %v", ins)
	}
}

// ---- oracle -----------------------------------------------------------------

// TestOracleFunctionalEquivalence: the §2.3.2 oracle changes only
// latency/energy, never functional behaviour.
func TestOracleFunctionalEquivalence(t *testing.T) {
	cfgA := config.Small()
	cfgB := config.Small()
	cfgB.LookupOracle = true
	a := New(cfgA, Options{Scheme: LocalityAware, CheckInvariants: true})
	b := New(cfgB, Options{Scheme: LocalityAware, CheckInvariants: true})
	rng := rand.New(rand.NewSource(7))
	var ta, tb mem.Cycles
	for i := 0; i < 5000; i++ {
		c := mem.CoreID(rng.Intn(16))
		la := mem.LineAddr(0x2000 + rng.Intn(256))
		op := Op{Type: mem.Load, Line: la, Class: mem.ClassSharedRW}
		if rng.Intn(10) == 0 {
			op.Type = mem.Store
		}
		ra := a.Access(c, ta, op)
		rb := b.Access(c, tb, op)
		ta, tb = ra.Done, rb.Done
		if ra.Miss != rb.Miss {
			t.Fatalf("op %d: oracle changed service point: %v vs %v", i, ra.Miss, rb.Miss)
		}
	}
}
