package coherence

import (
	"math/rand"
	"testing"

	"lard/internal/config"
	"lard/internal/mem"
)

// TestSWMRUnderRandomTraffic drives every scheme with random multi-core
// read/write traffic while the engine's single-writer/multiple-reader
// version checker is armed: any stale copy read, inclusion violation, or
// missed invalidation panics inside the engine. This is the analogue of the
// paper's Graphite functional-correctness argument (§3.1).
func TestSWMRUnderRandomTraffic(t *testing.T) {
	schemes := []struct {
		name string
		opts Options
		mut  func(*config.Config)
	}{
		{"S-NUCA", Options{Scheme: SNUCA}, nil},
		{"R-NUCA", Options{Scheme: RNUCA}, nil},
		{"VR", Options{Scheme: VR}, nil},
		{"ASR-1", Options{Scheme: ASR, ASRLevel: 1}, nil},
		{"RT-3", Options{Scheme: LocalityAware}, nil},
		{"RT-1", Options{Scheme: LocalityAware}, func(c *config.Config) { c.RT = 1 }},
		{"RT-8", Options{Scheme: LocalityAware}, func(c *config.Config) { c.RT = 8 }},
		{"RT-3-complete", Options{Scheme: LocalityAware}, func(c *config.Config) { c.ClassifierK = 0 }},
		{"RT-3-k1", Options{Scheme: LocalityAware}, func(c *config.Config) { c.ClassifierK = 1 }},
		{"RT-3-cluster4", Options{Scheme: LocalityAware}, func(c *config.Config) { c.ClusterSize = 4 }},
		{"RT-3-plainLRU", Options{Scheme: LocalityAware}, func(c *config.Config) { c.Replacement = config.PlainLRU }},
		{"RT-3-oracle", Options{Scheme: LocalityAware}, func(c *config.Config) { c.LookupOracle = true }},
		{"RT-3-tlh", Options{Scheme: LocalityAware}, func(c *config.Config) { c.Replacement = config.TLHLRU }},
		{"RT-3-keepL1", Options{Scheme: LocalityAware}, func(c *config.Config) { c.KeepL1OnReplicaEvict = true }},
		{"RT-3-fullmap", Options{Scheme: LocalityAware}, func(c *config.Config) { c.AckwisePointers = 0 }},
		{"VR-keepL1", Options{Scheme: VR}, func(c *config.Config) { c.KeepL1OnReplicaEvict = true }},
	}
	for _, sc := range schemes {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			cfg := config.Small()
			// Tiny caches maximize evictions and replacement churn.
			cfg.L1ILines, cfg.L1DLines, cfg.LLCSliceLines = 16, 32, 128
			if sc.mut != nil {
				sc.mut(cfg)
			}
			opts := sc.opts
			opts.CheckInvariants = true
			e := New(cfg, opts)
			rng := rand.New(rand.NewSource(42))
			times := make([]mem.Cycles, cfg.Cores)
			for i := 0; i < 60000; i++ {
				c := mem.CoreID(rng.Intn(cfg.Cores))
				var op Op
				switch rng.Intn(10) {
				case 0, 1: // instruction region
					op = Op{Type: mem.IFetch,
						Line: mem.LineAddr(0x10000 + rng.Intn(128)), Class: mem.ClassInstruction}
				case 2, 3: // per-core private region
					op = Op{Type: mem.Load,
						Line: mem.LineAddr(0x20000 + int(c)*0x1000 + rng.Intn(64)), Class: mem.ClassPrivate}
					if rng.Intn(3) == 0 {
						op.Type = mem.Store
					}
				default: // hot shared region with frequent writes
					op = Op{Type: mem.Load,
						Line: mem.LineAddr(0x30000 + rng.Intn(200)), Class: mem.ClassSharedRW}
					if rng.Intn(5) == 0 {
						op.Type = mem.Store
					}
				}
				res := e.Access(c, times[c], op)
				if res.Done < times[c] {
					t.Fatalf("time went backwards: %d -> %d", times[c], res.Done)
				}
				times[c] = res.Done
			}
		})
	}
}

// TestDeterminism: identical inputs produce identical timing and energy.
func TestDeterminism(t *testing.T) {
	run := func() (mem.Cycles, float64) {
		cfg := config.Small()
		e := New(cfg, Options{Scheme: LocalityAware, Seed: 9})
		rng := rand.New(rand.NewSource(3))
		var tm mem.Cycles
		for i := 0; i < 20000; i++ {
			c := mem.CoreID(rng.Intn(16))
			op := Op{Type: mem.Load, Line: mem.LineAddr(0x3000 + rng.Intn(512)), Class: mem.ClassSharedRW}
			if rng.Intn(7) == 0 {
				op.Type = mem.Store
			}
			tm = e.Access(c, tm, op).Done
		}
		return tm, e.Meter().Total()
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("non-deterministic: (%d, %v) vs (%d, %v)", t1, e1, t2, e2)
	}
}

// TestEnergyMonotonicity: every access adds non-negative energy.
func TestEnergyMonotonicity(t *testing.T) {
	e := testEngine(LocalityAware)
	prev := e.Meter().Total()
	var tm mem.Cycles
	for i := 0; i < 1000; i++ {
		tm = rd(e, mem.CoreID(i%16), tm, mem.LineAddr(0x2000+i%97)).Done
		if tot := e.Meter().Total(); tot < prev {
			t.Fatal("energy decreased")
		} else {
			prev = tot
		}
	}
}

// TestBreakdownSumsToSpan: the latency components of every access sum
// exactly to its span, so aggregate breakdowns tile completion time.
func TestBreakdownSumsToSpan(t *testing.T) {
	e := testEngine(LocalityAware)
	rng := rand.New(rand.NewSource(5))
	var tm mem.Cycles
	for i := 0; i < 20000; i++ {
		c := mem.CoreID(rng.Intn(16))
		op := Op{Type: mem.Load, Line: mem.LineAddr(0x2000 + rng.Intn(300)), Class: mem.ClassSharedRW}
		if rng.Intn(9) == 0 {
			op.Type = mem.Store
		}
		res := e.Access(c, tm, op)
		var sum mem.Cycles
		for _, v := range res.Breakdown {
			sum += v
		}
		if sum != res.Done-tm {
			t.Fatalf("op %d: breakdown sums to %d, span is %d", i, sum, res.Done-tm)
		}
		tm = res.Done
	}
}

// TestRunTrackerHistogram: the Figure-1 tracker classifies run lengths into
// the right buckets.
func TestRunTrackerHistogram(t *testing.T) {
	rt := newRunTracker()
	// Core 0 reads line 1 twelve times, then core 1 writes (conflict).
	for i := 0; i < 12; i++ {
		rt.record(1, 0, false, mem.ClassSharedRW)
	}
	rt.record(1, 1, true, mem.ClassSharedRW)
	// Core 1's write run of 1, ended by eviction.
	rt.evicted(1)
	h := rt.finish()
	if got := h[mem.ClassSharedRW][2]; got != 12 { // >=10 bucket
		t.Fatalf("12-run accesses in >=10 bucket = %d, want 12", got)
	}
	if got := h[mem.ClassSharedRW][0]; got != 1 { // 1-2 bucket
		t.Fatalf("singleton run accesses = %d, want 1", got)
	}
}

// TestRunTrackerConcurrentReaders: reads from different cores do not
// conflict with each other (§1.1's run-length definition).
func TestRunTrackerConcurrentReaders(t *testing.T) {
	rt := newRunTracker()
	for i := 0; i < 5; i++ {
		rt.record(9, 0, false, mem.ClassSharedRO)
		rt.record(9, 1, false, mem.ClassSharedRO)
	}
	h := rt.finish()
	if got := h[mem.ClassSharedRO][1]; got != 10 { // two runs of 5 in [3-9]
		t.Fatalf("reader runs = %d accesses in [3-9], want 10", got)
	}
}

// TestRunTrackerWriteEndsOthers: a write ends every other core's run, and a
// subsequent foreign read ends the writer's run.
func TestRunTrackerWriteEndsOthers(t *testing.T) {
	rt := newRunTracker()
	for i := 0; i < 4; i++ {
		rt.record(3, 0, false, mem.ClassSharedRW)
	}
	rt.record(3, 1, true, mem.ClassSharedRW)  // ends core 0's run of 4
	rt.record(3, 0, false, mem.ClassSharedRW) // ends core 1's write run of 1
	h := rt.finish()
	if got := h[mem.ClassSharedRW][1]; got != 4 {
		t.Fatalf("[3-9] bucket = %d, want 4", got)
	}
	if got := h[mem.ClassSharedRW][0]; got != 2 { // run of 1 (write) + run of 1 (final read)
		t.Fatalf("[1-2] bucket = %d, want 2", got)
	}
}
