package coherence

import (
	"strconv"

	"lard/internal/config"
	"lard/internal/mem"
)

// rtPolicy is the paper's locality-aware replication protocol: R-NUCA-style
// placement (instructions treated like any other shared data, §2.1) with
// replication gated per (line, core) by the run-time locality classifier of
// internal/core — a home-reuse counter promoted at threshold RT, demoted by
// the Figure-3 rules when replicas are evicted or invalidated. With
// ClusterSize > 1 replicas are shared by a cluster of cores at a
// rotationally-interleaved slice and invalidated hierarchically (§2.3.4).
type rtPolicy struct{ basePolicy }

func (p rtPolicy) ClusterReplication() bool { return p.e.cfg.ClusterSize > 1 }

func (p rtPolicy) ReplicaSlice(la mem.LineAddr, c mem.CoreID) mem.CoreID {
	return p.e.replicaSliceFor(la, c)
}

// ReplicateOnRead consults (and advances) the classifier on every home read
// (§2.2.1); the classifier state update rides a directory write.
func (p rtPolicy) ReplicateOnRead(ent *dirEntry, c mem.CoreID) bool {
	ok := p.e.classifierOf(ent).OnReadHome(c)
	p.e.chargeDir(true)
	return ok
}

// ReplicateOnWrite grants a Modified-state replica when the classifier
// promotes the writer (migratory sharing, §2.3.1).
func (p rtPolicy) ReplicateOnWrite(ent *dirEntry, c mem.CoreID, soleSharer bool) bool {
	return p.e.classifierOf(ent).OnWriteHome(c, soleSharer)
}

// OnWrite resets the home-reuse counters of the non-replica sharers other
// than the writer (§2.2.2): they have not shown enough reuse to be promoted.
func (p rtPolicy) OnWrite(ent *dirEntry, writer mem.CoreID) {
	p.e.classifierOf(ent).OnOthersReset(writer)
	p.e.chargeDir(true)
}

// OnReplicaGone applies the Figure-3 demotion rules using the replica-reuse
// counter carried by the eviction/invalidation acknowledgement (§2.2.3).
func (p rtPolicy) OnReplicaGone(ent *dirEntry, c mem.CoreID, reuse uint8, invalidation bool) {
	p.e.classifierOf(ent).OnReplicaGone(c, reuse, invalidation)
}

// OnClusterReplicaGone applies the replica-loss event to every core of the
// cluster the replica served (the flat approximation of §2.3.4).
func (p rtPolicy) OnClusterReplicaGone(ent *dirEntry, rs mem.CoreID, reuse uint8, invalidation bool) {
	p.e.demoteCluster(p.e.classifierOf(ent), rs, reuse, invalidation)
}

func init() {
	Register(Descriptor{
		Scheme:      LocalityAware,
		Name:        "RT",
		Description: "locality-aware replication (the paper's protocol): replication gated by the run-time locality classifier with threshold RT",
		Label: func(cfg *config.Config) string {
			return "RT-" + strconv.Itoa(cfg.RT)
		},
		UsesReplicas:   true,
		RNUCAPlacement: true,
		ThresholdRT:    true,
		Columns: []Column{
			{Label: "RT-1", RT: 1, K: 3, Cluster: 1},
			{Label: "RT-3", RT: 3, K: 3, Cluster: 1},
			{Label: "RT-8", RT: 8, K: 3, Cluster: 1},
		},
		New: func(e *Engine) Policy { return rtPolicy{basePolicy{e}} },
	})
}
