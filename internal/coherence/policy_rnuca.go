package coherence

// rnucaPolicy is the Reactive-NUCA baseline: private pages homed at the
// owner's slice, shared pages interleaved (the placement the locality-aware
// protocol also builds on), and instructions replicated one slice per 4-core
// cluster via rotational interleaving. R-NUCA places no data replicas, so
// every replication hook stays at its default.
type rnucaPolicy struct{ basePolicy }

// InstrClusterHome homes instruction lines within the requester's 4-core
// cluster (rotational interleaving) instead of interleaving them globally.
func (rnucaPolicy) InstrClusterHome() bool { return true }

func init() {
	Register(Descriptor{
		Scheme:         RNUCA,
		Name:           "R-NUCA",
		Description:    "Reactive-NUCA baseline: private pages at the owner's slice, shared pages interleaved, instructions cluster-replicated",
		RNUCAPlacement: true,
		Columns:        []Column{{Label: "R-NUCA"}},
		New:            func(e *Engine) Policy { return rnucaPolicy{basePolicy{e}} },
	})
}
