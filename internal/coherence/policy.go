package coherence

import (
	"fmt"
	"sort"
	"sync"

	"lard/internal/config"
	"lard/internal/mem"
)

// Policy is the pluggable replication-policy seam of the engine: every
// per-scheme decision point of the coherence protocol, extracted from the
// shared transaction machinery. The engine owns the invariant-preserving
// mechanics (MESI, the directory, inclusion, timing and energy); a Policy
// decides placement, replication and classifier bookkeeping. Implementations
// are constructed per engine (Descriptor.New) and may keep run-local state;
// per-line state belongs in the directory entry's opaque Classifier slot so
// it dies with the home line.
//
// The five paper schemes and any additional scheme register a Descriptor
// via Register (typically from an init in the scheme's own policy file);
// the engine resolves opts.Scheme through the registry at construction.
type Policy interface {
	// InstrClusterHome reports whether instruction pages home via R-NUCA's
	// rotational interleaving within a 4-core cluster rather than being
	// interleaved like shared data. Only consulted under R-NUCA-style
	// placement (Descriptor.RNUCAPlacement).
	InstrClusterHome() bool

	// ClusterReplication reports whether replicas are shared by a cluster of
	// cores at a designated slice (§2.3.4) and therefore registered at the
	// home's ReplicaSlices set and invalidated hierarchically.
	ClusterReplication() bool

	// ReplicaSlice returns the LLC slice where requester c's replica of la
	// would live: the local slice for local replication, the rotationally-
	// interleaved cluster member under cluster replication. Policies that
	// never replicate return c (the probe is skipped anyway).
	ReplicaSlice(la mem.LineAddr, c mem.CoreID) mem.CoreID

	// ConsumeReplicaOnHit reports whether a replica hit moves the line into
	// the requesting L1 and invalidates the LLC copy (Victim Replication's
	// exclusive victim-cache behaviour, §4.1).
	ConsumeReplicaOnHit() bool

	// ReplicateOnRead decides whether a read serviced at the home should
	// create an LLC replica for requester c. It is invoked on every home
	// read so the policy can observe reuse; the caller suppresses physical
	// replica creation when the requester is the home or the replica slice
	// is the home.
	ReplicateOnRead(ent *dirEntry, c mem.CoreID) bool

	// ReplicateOnWrite decides whether a write serialized at the home should
	// grant c a Modified-state replica (migratory sharing, §2.3.1).
	// soleSharer reports whether c was the only sharer before invalidation.
	ReplicateOnWrite(ent *dirEntry, c mem.CoreID, soleSharer bool) bool

	// OnWrite records that writer performed a write serialized at the home,
	// after all invalidation acknowledgements were processed (§2.2.2).
	OnWrite(ent *dirEntry, writer mem.CoreID)

	// OnReplicaGone records that core c's replica left the LLC, carrying the
	// replica-reuse counter from the acknowledgement; invalidation
	// distinguishes a coherence invalidation from a capacity eviction
	// (Figure 3's two demotion rules).
	OnReplicaGone(ent *dirEntry, c mem.CoreID, reuse uint8, invalidation bool)

	// OnClusterReplicaGone is OnReplicaGone for a cluster replica at slice
	// rs: the event applies to every core of the cluster it served.
	OnClusterReplicaGone(ent *dirEntry, rs mem.CoreID, reuse uint8, invalidation bool)

	// VictimReplicate gives the policy the L1 victim before it is
	// acknowledged to the home (§2.2.3): returning true means the victim was
	// absorbed into the local slice (VR's victim caching, ASR's selective
	// replication) and disposal is complete.
	VictimReplicate(c mem.CoreID, victim l1Line, t mem.Cycles) bool
}

// Descriptor registers one LLC management scheme: its stable identity (the
// Scheme id and the figure label, both part of the content-addressed result
// keys and therefore frozen once released), its placement/replication
// traits, its standard evaluation columns, and its Policy constructor.
type Descriptor struct {
	// Scheme is the stable numeric id. It is encoded into result-store
	// content addresses; never renumber a released scheme.
	Scheme Scheme
	// Name is the stable figure label ("S-NUCA", "RT", ...), also the wire
	// Kind string of the lard facade.
	Name string
	// Description is a one-line summary for discovery endpoints.
	Description string
	// Label renders a configured run the way the figures caption it
	// (e.g. "RT-3"); nil means Name is used unparameterized.
	Label func(cfg *config.Config) string
	// UsesReplicas reports whether the scheme ever places replicas in LLC
	// slices (enables the replica probe and eviction paths).
	UsesReplicas bool
	// RNUCAPlacement selects R-NUCA-style homing (private pages at the
	// owner's slice, shared pages interleaved) over pure address
	// interleaving.
	RNUCAPlacement bool
	// VictimReplicates marks schemes whose VictimReplicate hook can absorb
	// an L1 victim into the local slice (VR, ASR). The parallel scheduler's
	// footprint probe uses it to bound the eviction closure of an L1 fill.
	VictimReplicates bool
	// ThresholdRT marks schemes that consume Config.RT as their replication
	// threshold (and typically parameterize their Label with it): variant
	// builders must supply an explicit threshold, never the config default,
	// or every downstream table and store entry would be mislabeled.
	ThresholdRT bool
	// Columns are the scheme's standard evaluation columns in Figures 6-8
	// (nil for schemes outside the paper's main matrix). The harness
	// derives StandardVariants from these.
	Columns []Column
	// New constructs the policy bound to an engine.
	New func(e *Engine) Policy
}

// Column is one standard figure column contributed by a scheme.
type Column struct {
	// Label is the column header (figure nomenclature).
	Label string
	// RT, K and Cluster parameterize locality-aware-family columns
	// (K: -1 = Complete classifier, otherwise Limited-K).
	RT, K, Cluster int
	// ASRLevel is a fixed replication level; AutoTune selects the best
	// level per benchmark by energy-delay product instead (§3.3).
	ASRLevel float64
	AutoTune bool
}

var (
	registryMu sync.RWMutex
	registry   = make(map[Scheme]Descriptor)
	byName     = make(map[string]Scheme)
)

// Register adds a scheme to the registry. It panics on a duplicate id or
// name, or on a descriptor without a constructor: registration happens in
// package inits, where a broken scheme table should stop the process.
func Register(d Descriptor) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if d.New == nil {
		panic(fmt.Sprintf("coherence: scheme %q registered without a Policy constructor", d.Name))
	}
	if d.Name == "" {
		panic(fmt.Sprintf("coherence: scheme %d registered without a name", d.Scheme))
	}
	if prev, dup := registry[d.Scheme]; dup {
		panic(fmt.Sprintf("coherence: scheme id %d registered twice (%q and %q)", d.Scheme, prev.Name, d.Name))
	}
	if _, dup := byName[d.Name]; dup {
		panic(fmt.Sprintf("coherence: scheme name %q registered twice", d.Name))
	}
	registry[d.Scheme] = d
	byName[d.Name] = d.Scheme
}

// Describe returns the descriptor registered for s.
func Describe(s Scheme) (Descriptor, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	d, ok := registry[s]
	return d, ok
}

// SchemeByName resolves a registered scheme by its stable name.
func SchemeByName(name string) (Scheme, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := byName[name]
	return s, ok
}

// Registered returns every registered descriptor ordered by scheme id, so
// derived enumerations (figure columns, discovery endpoints) are stable
// regardless of init order.
func Registered() []Descriptor {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Descriptor, 0, len(registry))
	for _, d := range registry {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Scheme < out[j].Scheme })
	return out
}

// LabelFor renders a configured run's scheme the way the paper's figures do
// ("RT-3" for the locality-aware protocol). Unregistered schemes fall back
// to the Scheme(%d) placeholder of String.
func LabelFor(s Scheme, cfg *config.Config) string {
	if d, ok := Describe(s); ok && d.Label != nil {
		return d.Label(cfg)
	}
	return s.String()
}

// basePolicy is the no-op policy every scheme embeds: pure S-NUCA behaviour
// with no replication. Overriding only the relevant hooks keeps each scheme
// file down to its actual decisions.
type basePolicy struct {
	e *Engine
}

func (basePolicy) InstrClusterHome() bool                               { return false }
func (basePolicy) ClusterReplication() bool                             { return false }
func (basePolicy) ReplicaSlice(_ mem.LineAddr, c mem.CoreID) mem.CoreID { return c }
func (basePolicy) ConsumeReplicaOnHit() bool                            { return false }
func (basePolicy) ReplicateOnRead(*dirEntry, mem.CoreID) bool           { return false }
func (basePolicy) ReplicateOnWrite(*dirEntry, mem.CoreID, bool) bool    { return false }
func (basePolicy) OnWrite(*dirEntry, mem.CoreID)                        {}
func (basePolicy) OnReplicaGone(*dirEntry, mem.CoreID, uint8, bool)     {}
func (basePolicy) OnClusterReplicaGone(*dirEntry, mem.CoreID, uint8, bool) {
}
func (basePolicy) VictimReplicate(mem.CoreID, l1Line, mem.Cycles) bool { return false }
