package coherence

import "lard/internal/mem"

// asrPolicy is Adaptive Selective Replication: on L1 eviction, clean lines
// classified shared read-only are replicated into the local slice with a
// per-run probability level (§3.3). The level lottery is the engine's only
// randomness; the per-benchmark best-of-levels selection the paper applies
// lives in the harness (AutoASR), not here.
type asrPolicy struct{ basePolicy }

// VictimReplicate replicates never-written (shared read-only) clean victims
// with probability Options.ASRLevel, through the same insertion filter as VR.
func (p asrPolicy) VictimReplicate(c mem.CoreID, victim l1Line, t mem.Cycles) bool {
	e := p.e
	return !victim.Dirty && victim.Meta.sharedRO &&
		e.rng.Float64() < e.opts.ASRLevel && e.tryVictimInsert(c, victim, t)
}

func init() {
	Register(Descriptor{
		Scheme:           ASR,
		Name:             "ASR",
		Description:      "Adaptive Selective Replication: shared read-only L1 victims replicated with a per-run probability level",
		UsesReplicas:     true,
		VictimReplicates: true,
		Columns:          []Column{{Label: "ASR", AutoTune: true}},
		New:              func(e *Engine) Policy { return asrPolicy{basePolicy{e}} },
	})
}
