package coherence

import (
	"math/bits"

	"lard/internal/mem"
)

// insertHomeLine allocates the home copy (with a fresh directory entry) at
// the home slice after an off-chip fill, disposing of the displaced victim.
// The dispose runs first, so an entry recycled from the victim can serve
// the incoming line immediately.
func (e *Engine) insertHomeLine(home mem.CoreID, op Op, t mem.Cycles) *cacheLine {
	e.note(home)
	tl := e.tiles[home]
	ins, victim, evicted := tl.llc.Insert(op.Line, mem.Shared, e.llcVictim(tl))
	if evicted {
		e.dispose(home, victim, t)
	}
	ins.Meta = llcMeta{
		home:  true,
		dir:   e.newDirEntry(),
		class: op.Class,
	}
	return ins
}

// insertReplica allocates a replica at the given slice (never the line's
// home slice), initializing the replica-reuse counter to 1 (§2.2.1).
func (e *Engine) insertReplica(slice mem.CoreID, la mem.LineAddr, state mem.MESI, dirty bool, version uint64, class mem.DataClass, everWritten bool, t mem.Cycles) {
	e.note(slice)
	tl := e.tiles[slice]
	if existing := tl.llc.Lookup(la); existing != nil {
		// Refresh of a replica that survived (e.g. a same-core refetch).
		existing.State = state
		existing.Dirty = existing.Dirty || dirty
		existing.Meta.version = version
		tl.llc.Touch(existing)
		e.chargeLLCTag(true)
		e.chargeLLCData(true)
		return
	}
	ins, victim, evicted := tl.llc.Insert(la, state, e.llcVictim(tl))
	if evicted {
		e.dispose(slice, victim, t)
	}
	ins.Dirty = dirty
	ins.Meta = llcMeta{
		replicaReuse: 1,
		version:      version,
		everWritten:  everWritten,
		class:        class,
	}
	e.replicaInserts[class]++
	e.chargeLLCTag(true)
	e.chargeLLCData(true)
}

// dispose routes an evicted LLC line to the correct handler.
func (e *Engine) dispose(slice mem.CoreID, victim cacheLine, t mem.Cycles) {
	if victim.Meta.home {
		e.disposeHome(slice, victim, t)
	} else {
		e.replicaEvicted(slice, victim, t)
	}
}

// evictHomeLine removes the home copy of la from slice home (page
// reclassification path) and disposes of it.
func (e *Engine) evictHomeLine(home mem.CoreID, la mem.LineAddr, t mem.Cycles) {
	tl := e.tiles[home]
	l := tl.llc.Lookup(la)
	if l == nil || !l.Meta.home {
		return
	}
	victim := *l
	tl.llc.Invalidate(la)
	e.rehomed++
	e.disposeHome(home, victim, t)
}

// disposeHome retires an evicted home line: the LLC is inclusive, so every
// cached copy (L1s, local replicas, cluster replicas) is invalidated, and
// dirty data is written back off-chip. Eviction traffic is charged to the
// network/DRAM models but not to any requester's critical path (write-back
// buffers hide it); the paper's replacement policy keeps these
// back-invalidations rare (§2.2.3-2.2.4).
func (e *Engine) disposeHome(slice mem.CoreID, victim cacheLine, t mem.Cycles) {
	e.note(slice)
	la := victim.Addr
	ent := victim.Meta.dir
	dirty := victim.Dirty

	// Same alloc-free fan-out as invalidateSharers: engine scratch buffer,
	// ascending core order in both modes (the order the sorted Sharers()
	// slice used to produce).
	targets := e.fanout[:0]
	if ent.Sharers.Overflowed() {
		for i := 0; i < e.cfg.Cores; i++ {
			targets = append(targets, mem.CoreID(i))
		}
	} else {
		for b := ent.Sharers.Bits(); b != 0; b &= b - 1 {
			targets = append(targets, mem.CoreID(bits.TrailingZeros64(b)))
		}
	}
	for _, s := range targets {
		wasSharer := ent.Sharers.Has(s)
		e.mesh.Send(slice, s, e.ctrlFlits(), t)
		inv := e.invalidateAt(s, la)
		if !wasSharer && !inv.hadAny {
			continue
		}
		flits := e.ctrlFlits()
		if inv.dirty {
			flits = e.dataFlits()
			dirty = true
		}
		e.mesh.Send(s, slice, flits, t)
	}
	for _, rs := range ent.ReplicaSlices {
		e.mesh.Send(slice, rs, e.ctrlFlits(), t)
		inv := e.invalidateClusterReplica(rs, la, -1)
		flits := e.ctrlFlits()
		if inv.dirty {
			flits = e.dataFlits()
			dirty = true
		}
		e.mesh.Send(rs, slice, flits, t)
	}
	e.recordRunEvicted(la)
	if dirty {
		ctrl := e.dram.ControllerFor(la)
		e.note(e.dram.TileOf(ctrl))
		arr := e.mesh.Send(slice, e.dram.TileOf(ctrl), e.dataFlits(), t)
		e.dram.Access(ctrl, arr)
	}
	// The entry is dead: nothing references it past this point (the home
	// line holding it was invalidated before disposeHome was called).
	e.recycleEntry(ent)
}

// replicaEvicted retires an evicted replica line: the local L1 copies are
// back-invalidated (§2.2.3), an acknowledgement carrying the replica-reuse
// counter is sent to the home, the directory drops the core, and the
// classifier re-evaluates the core's replica status using the replica reuse
// alone (eviction rule of Figure 3).
func (e *Engine) replicaEvicted(slice mem.CoreID, victim cacheLine, t mem.Cycles) {
	e.note(slice)
	e.replicaEvicts++
	la := victim.Addr
	dirty := victim.Dirty

	// Back-invalidate the L1 copies served by this replica.
	if e.clusterRepl {
		base := (int(slice) / e.cfg.ClusterSize) * e.cfg.ClusterSize
		for i := 0; i < e.cfg.ClusterSize; i++ {
			mt := e.tiles[base+i]
			if rem, ok := mt.l1i.Invalidate(la); ok {
				dirty = dirty || rem.Dirty
				e.chargeL1(true, true)
			}
			if rem, ok := mt.l1d.Invalidate(la); ok {
				dirty = dirty || rem.Dirty
				e.chargeL1(false, true)
			}
		}
	} else if e.cfg.KeepL1OnReplicaEvict {
		// §2.2.3 alternative strategy: the L1 copy stays valid; the reuse
		// counter travels now and a second acknowledgement follows when the
		// L1 line is finally evicted or invalidated. The paper rejected the
		// extra message type for a negligible gain; this path exists to
		// verify that claim (see the replica-eviction ablation).
		e.chargeL1(true, false)
		e.chargeL1(false, false)
	} else {
		tl := e.tiles[slice]
		if rem, ok := tl.l1i.Invalidate(la); ok {
			dirty = dirty || rem.Dirty
			e.chargeL1(true, true)
		}
		if rem, ok := tl.l1d.Invalidate(la); ok {
			dirty = dirty || rem.Dirty
			e.chargeL1(false, true)
		}
	}

	home := e.homeOfLine(la, slice)
	e.note(home)
	flits := e.ctrlFlits()
	if dirty {
		flits = e.dataFlits()
	}
	e.mesh.Send(slice, home, flits, t)

	hl := e.homeEntry(home, la)
	if hl == nil {
		return // home copy already gone (its disposal invalidated us first)
	}
	ent := hl.Meta.dir
	if dirty {
		hl.Dirty = true
		e.chargeLLCData(true)
	}
	if e.clusterRepl {
		ent.RemoveReplicaSlice(slice)
		e.clfDemotions++
		e.policy.OnClusterReplicaGone(ent, slice, victim.Meta.replicaReuse, false)
	} else {
		// With the keep-L1 strategy the core remains a sharer while its L1
		// still holds the line; the second acknowledgement (sent from
		// handleL1Evict) removes it later.
		if !(e.cfg.KeepL1OnReplicaEvict && e.hasL1Copy(e.tiles[slice], la)) {
			ent.Sharers.Remove(slice)
			if ent.HasOwner && ent.Owner == slice {
				ent.ClearOwner()
			}
		}
		e.clfDemotions++
		e.policy.OnReplicaGone(ent, slice, victim.Meta.replicaReuse, false)
	}
	e.chargeDir(true)
}

// handleL1Evict retires an L1 victim according to §2.2.3 and the active
// scheme: merge into a resident home/replica copy, victim-replicate (VR,
// ASR), or acknowledge the home (with a write-back when dirty). Eviction
// traffic is off the requester's critical path.
func (e *Engine) handleL1Evict(c mem.CoreID, victim l1Line, t mem.Cycles) {
	e.note(c)
	la := victim.Addr
	tl := e.tiles[c]

	// Home copy resident in the local slice: merge and update the directory
	// in place (no messages).
	if l := tl.llc.Lookup(la); l != nil && l.Meta.home {
		ent := l.Meta.dir
		if victim.Dirty {
			l.Dirty = true
			e.chargeLLCData(true)
		}
		if !e.hasL1Copy(tl, la) {
			ent.Sharers.Remove(c)
			if ent.HasOwner && ent.Owner == c {
				ent.ClearOwner()
			}
		}
		e.chargeDir(true)
		return
	}

	// Replica resident at the replica slice: merge (§2.2.3); the core stays
	// a sharer through its replica, so the home is not notified.
	if e.usesReplicas {
		rslice := e.policy.ReplicaSlice(la, c)
		e.note(rslice)
		if l := e.tiles[rslice].llc.Lookup(la); l != nil && !l.Meta.home {
			if rslice != c {
				flits := e.ctrlFlits()
				if victim.Dirty {
					flits = e.dataFlits()
				}
				e.mesh.Send(c, rslice, flits, t)
			}
			e.chargeLLCTag(false)
			if victim.Dirty {
				l.Dirty = true
				if victim.State == mem.Modified {
					l.State = mem.Modified
				}
				e.chargeLLCData(true)
			}
			return
		}
	}

	// Victim replication (VR always, ASR selectively, §3.3): the policy may
	// absorb the victim into the local slice, completing its disposal.
	if e.policy.VictimReplicate(c, victim, t) {
		return
	}

	// Default: acknowledge the home (write-back when dirty).
	home := e.homeOfLine(la, c)
	e.note(home)
	flits := e.ctrlFlits()
	if victim.Dirty {
		flits = e.dataFlits()
	}
	e.mesh.Send(c, home, flits, t)
	hl := e.homeEntry(home, la)
	if hl == nil {
		return
	}
	ent := hl.Meta.dir
	if victim.Dirty {
		hl.Dirty = true
		e.chargeLLCData(true)
	}
	if !e.hasL1Copy(tl, la) {
		ent.Sharers.Remove(c)
		if ent.HasOwner && ent.Owner == c {
			ent.ClearOwner()
		}
	}
	e.chargeDir(true)
}

// tryVictimInsert places an L1 victim into the local LLC slice as a replica
// under the VR insertion filter (invalid way, another replica, or a
// sharer-free home line; otherwise the victim is dropped, §3.3).
func (e *Engine) tryVictimInsert(c mem.CoreID, victim l1Line, t mem.Cycles) bool {
	tl := e.tiles[c]
	la := victim.Addr
	ways := tl.llc.WaysOf(la)
	free := false
	for i := range ways {
		if !ways[i].State.Valid() {
			free = true
			break
		}
	}
	if !free && victimAllowedVR(ways) < 0 {
		// No permissible way: drop the victim; notify the home instead.
		return false
	}
	ins, v2, evicted := tl.llc.Insert(la, victim.State, victimAllowedVR)
	if evicted {
		e.dispose(c, v2, t)
	}
	ins.Dirty = victim.Dirty
	ins.Meta = llcMeta{
		replicaReuse: 1,
		version:      victim.Meta.version,
		everWritten:  !victim.Meta.sharedRO,
		class:        victim.Meta.class,
	}
	e.replicaInserts[victim.Meta.class]++
	e.chargeLLCTag(true)
	e.chargeLLCData(true)
	return true
}
