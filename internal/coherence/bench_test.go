package coherence

import (
	"sync"
	"testing"

	"lard/internal/config"
	"lard/internal/mem"
	"lard/internal/trace"
)

// benchAccess is one pre-decoded access of the benchmark workload.
type benchAccess struct {
	core mem.CoreID
	op   Op
}

// benchWorkload pre-generates a deterministic access stream so the benchmark
// times (and counts allocations for) the coherence engine alone, not trace
// generation.
func benchWorkload(tb testing.TB, cfg *config.Config) []benchAccess {
	tb.Helper()
	p, err := trace.ProfileByName("BARNES")
	if err != nil {
		tb.Fatal(err)
	}
	w := trace.Generate(p, cfg, 0.05, 1)
	var accs []benchAccess
	for c, s := range w.Streams {
		for {
			op, ok := s.Next()
			if !ok {
				break
			}
			if op.Barrier {
				continue
			}
			accs = append(accs, benchAccess{mem.CoreID(c), Op{
				Type:  op.Type,
				Line:  mem.LineOf(op.Addr),
				Class: op.Class,
			}})
		}
	}
	return accs
}

// BenchmarkCoherenceAccess measures the steady-state per-access cost of the
// coherence engine (directory lookups, sharer bookkeeping, invalidation
// fan-out) under the locality-aware scheme. The engine is warmed with one
// full pass before timing so the directory population — and therefore the
// entry/classifier free pools — has stabilized; the timed passes exercise
// the alloc-free hot path.
func BenchmarkCoherenceAccess(b *testing.B) {
	cfg := config.Small()
	accs := benchWorkload(b, cfg)
	e := New(cfg, Options{Scheme: LocalityAware})
	t := mem.Cycles(0)
	for _, a := range accs { // warm-up pass
		t = e.Access(a.core, t, a.op).Done
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i%len(accs)]
		t = e.Access(a.core, t, a.op).Done
	}
}

// TestEnginesRaceFree drives several independent engines concurrently, the
// way the harness runs AutoASR's five pressure levels in parallel. Engines
// must share no mutable state (free pools, fan-out scratch buffers and
// classifier recycling are all per-engine); `go test -race` verifies it.
func TestEnginesRaceFree(t *testing.T) {
	cfg := config.Small()
	accs := benchWorkload(t, cfg)
	if len(accs) == 0 {
		t.Fatal("empty benchmark workload")
	}
	if testing.Short() && len(accs) > 2000 {
		accs = accs[:2000]
	}
	schemes := []Scheme{SNUCA, RNUCA, VR, ASR, LocalityAware}
	var wg sync.WaitGroup
	results := make([]mem.Cycles, len(schemes))
	for i, s := range schemes {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := New(cfg, Options{Scheme: s})
			tm := mem.Cycles(0)
			for _, a := range accs {
				tm = e.Access(a.core, tm, a.op).Done
			}
			results[i] = tm
		}()
	}
	wg.Wait()
	for i, r := range results {
		if r == 0 {
			t.Errorf("scheme %v finished at cycle 0", schemes[i])
		}
	}
}
