// Conflict-footprint probe and worker-lane support for the simulator's
// parallel access scheduler (internal/sim).
//
// The contract: PeekAccess computes, without mutating anything, a
// conservative superset of the tiles a transaction can touch. Two
// transactions whose footprints are disjoint commute — they read and write
// disjoint engine state (tile caches, per-tile busy maps, directory entries
// held by home lines, mesh links and DRAM controller queues, all of which
// are covered by tile bits, since a controller lives at a fixed tile and a
// mesh link's endpoints are both in any route that crosses it) — so the
// simulator may execute them concurrently on worker clones and commit the
// results in canonical (time, core) order, with an outcome byte-identical
// to the sequential loop.
//
// The footprint is self-contained: it is derived only from state that lives
// inside the footprint itself (the requester's caches, the home entry, the
// probed LLC sets, and — gated to solo rounds — the page table), so a
// footprint stays valid while footprint-disjoint transactions execute.
// Every worker execution is checked after the fact: the tiles an access
// actually visited (Engine.touched, maintained by note calls on the access
// paths) must be a subset of the declared footprint, turning any peek
// under-approximation into a loud panic instead of a silent divergence.
package coherence

import (
	"fmt"
	"math/bits"

	"lard/internal/config"
	"lard/internal/directory"
	"lard/internal/energy"
	"lard/internal/mem"
)

// occBias offsets a worker clone's directory-occupancy counter so that a
// round executing more home evictions than fills on one lane never trips
// the counter's zero guard; MergeWorker folds the signed delta back.
const occBias = int64(1) << 32

// Footprint is the conservative conflict footprint of one access.
type Footprint struct {
	// Tiles has bit c set when the access may touch tile c (its caches,
	// its per-line busy map, a directory entry it holds, a DRAM controller
	// at it, or a mesh link adjacent to it).
	Tiles uint64
	// L1 has bit c set when the access may touch core c's private L1
	// state: the requester's own (lookup, fill, eviction) plus every
	// invalidation/downgrade fan-out target. It is the only part of the
	// footprint that can conflict with another core's L1-hit chain — a
	// chained hit touches nothing but its own L1 — so the scheduler gates
	// chaining on this mask rather than the much wider Tiles.
	L1 uint64
	// Global marks an access that must run alone on the master engine:
	// it may mutate state no tile mask covers (the R-NUCA page table).
	Global bool
	// State has bit c set when the access may read or write tile c's
	// simulated *state* — its caches, directory entries, busy maps or DRAM
	// controller queue — as opposed to merely traversing the tile on a mesh
	// route. State ⊆ Tiles: it is Tiles minus the route-only padding. Every
	// execution is checked against it (CheckTouched), and committed misses
	// invalidate other candidates' cached footprints through it — a probe
	// reads only tile state (see Reads), so route-only overlap can never
	// change its answer.
	State uint64
	// Reads has bit c set when the probe that produced this footprint read
	// tile c's state: the requester (its L1, its LLC slice, its victim
	// sets) and the home (entry, directory, victim set). A cached
	// footprint — including its exact victim predictions — must be
	// recomputed exactly when a committed access's State intersects its
	// Reads. (The probe also reads the R-NUCA page table; only Global
	// accesses mutate it, and a committed Global invalidates everything.)
	Reads uint64
	// MinLat is a lower bound on the access's service latency (completion
	// minus issue time) that stays valid however canonically-earlier
	// conflicting accesses reshape the state before this one executes:
	// contention and invalidations can only lengthen the transaction, and
	// every term counted here survives any such change. The parallel
	// scheduler uses it as event lookahead — the issuing core cannot wake
	// again before issue+MinLat — which is what lets accesses at different
	// simulated times execute in the same round without a not-yet-visible
	// successor event sneaking canonically between them.
	MinLat mem.Cycles
}

// ParallelSafe reports whether this engine's configuration admits the
// conflict-footprint analysis. The gated features and why they fall back
// to the sequential loop:
//
//   - ASR draws from the engine's rng on every L1 eviction, so results
//     depend on the global eviction order, not just per-line state.
//   - Cluster replication (ClusterSize > 1) spreads a logical transaction
//     over a replica cluster and the home's ReplicaSlices set; the simple
//     tile closure below does not model the hierarchical fan-outs.
//   - TLH-LRU sends hint messages to the home on L1 *hits*, breaking the
//     invariant that an L1 hit touches only the requester's tile.
//   - The lookup oracle and the keep-L1 eviction ablation reshape probe
//     paths that the footprint mirrors; both are ablation-only modes.
//   - CheckInvariants reads the home tile on every access (SWMR check).
//
// All five registered schemes except ASR are parallel-safe in their
// standard figure configurations (ClusterSize 1, modified-LRU).
func (e *Engine) ParallelSafe() bool {
	return e.scheme != ASR &&
		e.cfg.ClusterSize <= 1 &&
		e.cfg.Replacement != config.TLHLRU &&
		!e.cfg.LookupOracle &&
		!e.cfg.KeepL1OnReplicaEvict &&
		!e.opts.CheckInvariants
}

// PrepareParallel readies the engine for a parallel run: it builds the
// mesh route-mask table, redirects run-tracker events into the replay log,
// and returns workers-1 worker clones (the master executes the remaining
// lane itself). Call FinishParallel when the run completes.
func (e *Engine) PrepareParallel(workers int) []*Engine {
	n := e.cfg.Cores
	if e.routeMasks == nil {
		e.routeMasks = buildRouteMasks(e.cfg.MeshW, n)
	}
	e.logRuns = e.runs != nil
	clones := make([]*Engine, workers-1)
	for i := range clones {
		clones[i] = e.workerClone()
	}
	return clones
}

// FinishParallel restores direct run tracking after a parallel run.
func (e *Engine) FinishParallel() { e.logRuns = false }

// buildRouteMasks precomputes, for every tile pair, the set of tiles on the
// X-Y routes between them (both directions — requests and replies traverse
// different tiles under dimension-ordered routing). Two messages that share
// a directed mesh link necessarily share both of that link's endpoint
// tiles, so tile-mask disjointness implies link disjointness.
func buildRouteMasks(w, n int) []uint64 {
	masks := make([]uint64, n*n)
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			masks[s*n+d] = xyRouteMask(w, s, d) | xyRouteMask(w, d, s)
		}
	}
	return masks
}

// xyRouteMask walks the X-Y route from src to dst exactly as Mesh.Send does
// and returns the visited-tile mask (including both endpoints).
func xyRouteMask(w, src, dst int) uint64 {
	x, y := src%w, src/w
	dx, dy := dst%w, dst/w
	m := uint64(1) << uint(src)
	for x != dx {
		if dx > x {
			x++
		} else {
			x--
		}
		m |= 1 << uint(y*w+x)
	}
	for y != dy {
		if dy > y {
			y++
		} else {
			y--
		}
		m |= 1 << uint(y*w+x)
	}
	return m
}

// pairMask returns the precomputed bidirectional route mask for (a, b).
func (e *Engine) pairMask(a, b mem.CoreID) uint64 {
	return e.routeMasks[int(a)*e.cfg.Cores+int(b)]
}

// allTiles is the mask covering every simulated tile.
func (e *Engine) allTiles() uint64 {
	if e.cfg.Cores >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(e.cfg.Cores)) - 1
}

// PeekAccess computes the conflict footprint of the access core c is about
// to issue, strictly read-only. Only valid on a ParallelSafe engine (which
// guarantees the replica slice is the requester's own tile).
func (e *Engine) PeekAccess(c mem.CoreID, op Op) Footprint {
	// An L1 hit completes in exactly L1Latency; this is also the universal
	// floor of every other path.
	fp := Footprint{
		Tiles:  1 << uint(c),
		L1:     1 << uint(c),
		State:  1 << uint(c),
		Reads:  1 << uint(c),
		MinLat: e.cfg.L1Latency,
	}
	l1 := e.tiles[c].l1For(op.Type)
	if line := l1.Lookup(op.Line); line != nil {
		if !op.Type.IsWrite() || line.State.Writable() {
			// L1 hit: Touch + possible silent upgrade, all on tile c
			// (temporal hints and the invariant checker are gated out).
			return fp
		}
	}

	// Miss lookahead floor. A peeked miss can never turn into an L1 hit (only
	// the core's own accesses fill its L1, and this is its next access), so
	// the transaction consults at least one LLC tag — the local replica probe
	// or the home's — and a read returns data through at least one LLC data
	// array (replica hit, home read or off-chip fill all charge it). A write
	// may complete as a data-less upgrade, so it only counts the tag.
	fp.MinLat += e.cfg.LLCTagLatency
	if !op.Type.IsWrite() {
		fp.MinLat += e.cfg.LLCDataLatency
	}

	// Miss transaction. Placement first: a first touch or a private->shared
	// promotion mutates the page table and must run alone.
	home, ok := e.peekHome(op, c)
	if !ok {
		fp.Global = true
		return fp
	}
	fp.Tiles |= 1<<uint(home) | e.pairMask(c, home)
	fp.State |= 1 << uint(home)
	fp.Reads |= 1 << uint(home)

	// Unless a usable replica sits at the requester's own slice, the
	// transaction round-trips to the home at zero-load mesh latency or
	// better-never. The home is stable enough for a lower bound: interleaved
	// and instruction homes never move, and a private page's home is the
	// requester itself (peekHome rejects foreign owners), which contributes
	// zero — if a promotion rehomes it before execution, the real path only
	// gets longer. Replicas at slice c are created only by core c's own
	// accesses, so a missing replica cannot appear; a present one can vanish,
	// but every fallback path is at least as long as the replica hit.
	if !(e.usesReplicas && home != c && e.replicaUsable(c, op)) {
		fp.MinLat += 2 * e.mesh.LatencyNoContention(c, home, 1)
	}

	hl := e.homeEntry(home, op.Line)
	if hl != nil {
		ent := hl.Meta.dir
		if op.Type.IsWrite() {
			if ent.Sharers.Overflowed() {
				// ACKwise broadcast: the invalidation probes every core.
				fp.Tiles = e.allTiles()
				fp.L1 = fp.Tiles
				fp.State = fp.Tiles
				return fp
			}
			for b := ent.Sharers.Bits(); b != 0; b &= b - 1 {
				s := mem.CoreID(bits.TrailingZeros64(b))
				fp.Tiles |= 1<<uint(s) | e.pairMask(home, s)
				fp.L1 |= 1 << uint(s)
				fp.State |= 1 << uint(s)
			}
		} else if ent.HasOwner && ent.Owner != c {
			// A read never broadcasts, overflowed sharer set or not: it only
			// downgrades the exclusive owner (homeRead).
			fp.Tiles |= 1<<uint(ent.Owner) | e.pairMask(home, ent.Owner)
			fp.L1 |= 1 << uint(ent.Owner)
			fp.State |= 1 << uint(ent.Owner)
		}
	} else {
		// Off-chip fill: the controller leg, plus whatever the fill's
		// eviction at the home slice may disturb.
		ctile := e.dram.TileOf(e.dram.ControllerFor(op.Line))
		fp.Tiles |= 1<<uint(ctile) | e.pairMask(home, ctile)
		fp.State |= 1 << uint(ctile)
		e.closeOverVictim(home, op.Line, false, &fp)
	}

	// A replica may be created at the requester's slice (conservatively
	// assumed whenever the machinery allows it — peeking the classifier's
	// actual decision would require mutating it).
	if e.usesReplicas && home != c {
		e.closeOverVictim(c, op.Line, false, &fp)
	}

	// L1 fill: when the set is full the exact LRU victim is displaced and
	// its disposal may touch its home (and, for victim-replicating
	// schemes, evict from the requester's slice in turn).
	if l1.Lookup(op.Line) == nil {
		ways := l1.WaysOf(op.Line)
		victim := -1
		var lru uint64
		for i := range ways {
			if !ways[i].State.Valid() {
				victim = -1
				break
			}
			if victim < 0 || ways[i].LastUse < lru {
				victim, lru = i, ways[i].LastUse
			}
		}
		if victim >= 0 {
			vla := ways[victim].Addr
			vhome := e.homeOfLine(vla, c)
			fp.Tiles |= 1<<uint(vhome) | e.pairMask(c, vhome)
			fp.State |= 1 << uint(vhome)
			if e.victimRepl {
				// The victim-insert at slice c runs after the transaction
				// may already have inserted op.Line into c's LLC — a replica
				// creation, or the off-chip home fill when c is the home. If
				// that insert can land in the victim-insert's own set, the
				// pre-state victim prediction is unreliable (the set's
				// contents and recency change under it, and the fresh
				// op.Line way itself can become the displaced victim), so
				// close over every line the insert could displace instead.
				mayInsert := (e.usesReplicas && home != c) || (home == c && hl == nil)
				if mayInsert && e.tiles[c].llc.SetOf(op.Line) == e.tiles[c].llc.SetOf(vla) {
					// Displacing the fresh op.Line way is a replica eviction
					// at slice c: own-L1 back-invalidation plus its home
					// acknowledgement (both already in the masks via c and
					// home).
					fp.L1 |= 1 << uint(c)
					e.closeOverSet(c, vla, &fp)
				} else {
					e.closeOverVictim(c, vla, true, &fp)
				}
			}
		}
	}
	return fp
}

// PeekL1Hit reports, without mutating anything, whether core c's next
// access would complete as an L1 hit. On a ParallelSafe engine a hit
// touches only tile c (temporal hints and the invariant checker are gated
// out) and completes in exactly L1Latency, so the parallel scheduler's
// hit chains use this as their continuation test: while it returns true
// the chain's footprint stays the single requester tile.
//
// Hit-ness is stable under the core's own hits: a hit mutates recency and
// at most performs a silent E->M upgrade, never changing which lines are
// present or losing writability — so a run of consecutive peeked hits
// stays a run of hits however it interleaves with footprint-disjoint
// work, and its wake times (each exactly L1Latency after issue) can be
// computed in advance. That is what lets the scheduler use the wake of a
// core's first non-hit as its event lookahead.
func (e *Engine) PeekL1Hit(c mem.CoreID, op Op) bool {
	line := e.tiles[c].l1For(op.Type).Lookup(op.Line)
	return line != nil && (!op.Type.IsWrite() || line.State.Writable())
}

// L1HitLatency is the exact service latency of an L1 hit — the cycle
// arithmetic the scheduler needs to walk a peeked hit run.
func (e *Engine) L1HitLatency() mem.Cycles { return e.cfg.L1Latency }

// replicaUsable reports whether the requester's own LLC slice currently
// holds a replica that could serve this access (any valid state for reads,
// a writable one for writes) — the condition replicaLookup hits on.
func (e *Engine) replicaUsable(c mem.CoreID, op Op) bool {
	l := e.tiles[c].llc.Lookup(op.Line)
	if l == nil || l.Meta.home {
		return false
	}
	return !op.Type.IsWrite() || l.State.Writable()
}

// peekVictim mirrors cache.Insert's victim choice for an insertion of la
// into slice's LLC set: nil when a free way (or, on the VR filter path, the
// filter's rejection) means nothing would be displaced, otherwise the exact
// way the insertion would evict. The choice is deterministic and derived
// only from state the footprint already covers — the set itself, the
// directory entries its home lines hold, and the slice's own L1 (the
// modified-LRU copy ranks) all live on the slice tile — so it stays
// correct exactly as long as the footprint stays valid: any commit that
// could reshape the set touches the slice tile and re-peeks this
// candidate, and concurrently selected accesses are footprint-disjoint.
func (e *Engine) peekVictim(slice mem.CoreID, la mem.LineAddr, vr bool) *cacheLine {
	tl := e.tiles[slice]
	ways := tl.llc.WaysOf(la)
	for i := range ways {
		if !ways[i].State.Valid() {
			return nil
		}
	}
	if vr {
		v := victimAllowedVR(ways)
		if v < 0 {
			return nil
		}
		return &ways[v]
	}
	return &ways[e.llcVictim(tl)(ways)]
}

// closeOverVictim adds the disposal fan-out of the exact line an insertion
// at slice would displace: its sharers and DRAM controller (home lines) or
// its own slice's L1 back-invalidation plus a home acknowledgement
// (replicas). Predicting the single real victim instead of closing over
// the whole set is what keeps miss footprints — in particular their L1
// masks — narrow enough for the scheduler's hit-run lookahead to matter.
func (e *Engine) closeOverVictim(slice mem.CoreID, la mem.LineAddr, vr bool, fp *Footprint) {
	w := e.peekVictim(slice, la, vr)
	if w == nil {
		return
	}
	if w.Meta.home {
		ent := w.Meta.dir
		if ent.Sharers.Overflowed() {
			fp.Tiles = e.allTiles()
			fp.L1 = fp.Tiles
			fp.State = fp.Tiles
			return
		}
		for b := ent.Sharers.Bits(); b != 0; b &= b - 1 {
			s := mem.CoreID(bits.TrailingZeros64(b))
			fp.Tiles |= 1<<uint(s) | e.pairMask(slice, s)
			fp.L1 |= 1 << uint(s)
			fp.State |= 1 << uint(s)
		}
		ctile := e.dram.TileOf(e.dram.ControllerFor(w.Addr))
		fp.Tiles |= 1<<uint(ctile) | e.pairMask(slice, ctile)
		fp.State |= 1 << uint(ctile)
	} else {
		// replicaEvicted back-invalidates the slice's own L1 copies before
		// acknowledging the victim's home.
		fp.L1 |= 1 << uint(slice)
		vhome := e.homeOfLine(w.Addr, slice)
		fp.Tiles |= 1<<uint(vhome) | e.pairMask(slice, vhome)
		fp.State |= 1<<uint(slice) | 1<<uint(vhome)
	}
}

// closeOverSet adds the disposal fan-out of every line an insertion into
// la's set at slice could displace — the conservative fallback for the one
// insert whose victim cannot be predicted from pre-transaction state (the
// Victim Replication victim-insert racing an earlier same-set insert of the
// same transaction).
func (e *Engine) closeOverSet(slice mem.CoreID, la mem.LineAddr, fp *Footprint) {
	ways := e.tiles[slice].llc.WaysOf(la)
	for i := range ways {
		w := &ways[i]
		if !w.State.Valid() {
			continue
		}
		if w.Meta.home {
			ent := w.Meta.dir
			if ent.Sharers.Overflowed() {
				fp.Tiles = e.allTiles()
				fp.L1 = fp.Tiles
				fp.State = fp.Tiles
				return
			}
			for b := ent.Sharers.Bits(); b != 0; b &= b - 1 {
				s := mem.CoreID(bits.TrailingZeros64(b))
				fp.Tiles |= 1<<uint(s) | e.pairMask(slice, s)
				fp.L1 |= 1 << uint(s)
				fp.State |= 1 << uint(s)
			}
			ctile := e.dram.TileOf(e.dram.ControllerFor(w.Addr))
			fp.Tiles |= 1<<uint(ctile) | e.pairMask(slice, ctile)
			fp.State |= 1 << uint(ctile)
		} else {
			fp.L1 |= 1 << uint(slice)
			vhome := e.homeOfLine(w.Addr, slice)
			fp.Tiles |= 1<<uint(vhome) | e.pairMask(slice, vhome)
			fp.State |= 1<<uint(slice) | 1<<uint(vhome)
		}
	}
}

// peekHome mirrors homeFor without mutating the page table. ok=false means
// the access would mutate it (first touch or reclassification) and must run
// alone on the master engine.
func (e *Engine) peekHome(op Op, c mem.CoreID) (home mem.CoreID, ok bool) {
	if !e.rnucaPlacement {
		return e.interleave(op.Line), true
	}
	p, present := e.pages.pages[mem.PageOfLine(op.Line)]
	if !present {
		return 0, false
	}
	if p.class == pagePrivate && p.owner != c {
		return 0, false
	}
	switch {
	case p.class == pageInstr && e.instrClusterHome:
		return e.instrHome(op.Line, c), true
	case p.class == pagePrivate:
		return p.owner, true
	default:
		return e.interleave(op.Line), true
	}
}

// workerClone returns a lane engine sharing the simulated machine's state
// (tiles, page table, configuration) with private meters, counters, scratch
// buffers and free lists, so footprint-disjoint accesses on different lanes
// never write the same memory.
func (e *Engine) workerClone() *Engine {
	w := &Engine{
		cfg:              e.cfg,
		eparam:           e.eparam,
		opts:             e.opts,
		scheme:           e.scheme,
		usesReplicas:     e.usesReplicas,
		rnucaPlacement:   e.rnucaPlacement,
		instrClusterHome: e.instrClusterHome,
		clusterRepl:      e.clusterRepl,
		consumeOnHit:     e.consumeOnHit,
		victimRepl:       e.victimRepl,
		tiles:            e.tiles,
		pages:            e.pages,
		rng:              e.rng, // never drawn from: ASR is not ParallelSafe
		meter:            &energy.Meter{},
		clfParams:        e.clfParams,
		parent:           e,
		logRuns:          e.runs != nil,
		routeMasks:       e.routeMasks,
	}
	w.mesh = e.mesh.WorkerView(w.meter)
	w.dram = e.dram.WorkerView(w.meter)
	desc, _ := Describe(e.scheme)
	w.policy = desc.New(w)
	w.fanout = make([]mem.CoreID, 0, e.cfg.Cores)
	w.rsnap = make([]mem.CoreID, 0, e.cfg.Cores)
	w.dirOcc.Shift(occBias)
	return w
}

// MergeWorker folds a worker clone's private accumulators back into the
// master and resets them, so per-round merges never double-count. Energy
// merges are exact in any order: every per-event energy is a small integer,
// so the float64 component sums are exact integer arithmetic.
func (e *Engine) MergeWorker(w *Engine) {
	e.meter.AddMeter(w.meter)
	w.meter.Reset()
	e.mesh.MergeWorker(w.mesh)
	e.dram.MergeWorker(w.dram)
	for i := range w.replicaInserts {
		e.replicaInserts[i] += w.replicaInserts[i]
		e.replicaHits[i] += w.replicaHits[i]
		w.replicaInserts[i], w.replicaHits[i] = 0, 0
	}
	e.replicaEvicts += w.replicaEvicts
	e.replicaInvals += w.replicaInvals
	e.clfPromotions += w.clfPromotions
	e.clfDemotions += w.clfDemotions
	e.rehomed += w.rehomed
	w.replicaEvicts, w.replicaInvals, w.clfPromotions, w.clfDemotions, w.rehomed = 0, 0, 0, 0, 0
	e.dirOcc.Shift(int64(w.dirOcc.Live()) - occBias)
	w.dirOcc = directory.Occupancy{}
	w.dirOcc.Shift(occBias)
	// Recycled directory entries and classifiers return to the master pool;
	// object identity never affects simulated results.
	e.entFree = append(e.entFree, w.entFree...)
	e.clfFree = append(e.clfFree, w.clfFree...)
	w.entFree = w.entFree[:0]
	w.clfFree = w.clfFree[:0]
}

// RunLogLen returns the engine's run-event replay log length; the parallel
// runner brackets each access with it to delimit per-op log segments.
func (e *Engine) RunLogLen() int { return len(e.runlog) }

// ReplayRuns applies src's deferred run-tracker events [lo, hi) to the
// master's tracker; the runner calls it in canonical commit order.
func (e *Engine) ReplayRuns(src *Engine, lo, hi int) {
	if e.runs == nil {
		return
	}
	for i := lo; i < hi; i++ {
		ev := &src.runlog[i]
		if ev.evicted {
			e.runs.evicted(ev.la)
		} else {
			e.runs.record(ev.la, ev.c, ev.write, ev.class)
		}
	}
}

// ResetRunLog empties the replay log (after a round's segments were replayed).
func (e *Engine) ResetRunLog() { e.runlog = e.runlog[:0] }

// ResetTouched clears the visited-tile record before a checked execution.
func (e *Engine) ResetTouched() { e.touched = 0 }

// CheckTouched panics if the last execution escaped the declared footprint —
// a peek under-approximation, which would otherwise surface only as a
// silent golden-result divergence. The check runs against the narrow State
// mask (note is only ever called at state-touch points, never on transit
// tiles), so it also validates the invalidation masks the scheduler's
// footprint cache depends on.
func (e *Engine) CheckTouched(fp Footprint, c mem.CoreID, la mem.LineAddr) {
	if e.touched&^fp.State != 0 {
		panic(fmt.Sprintf(
			"coherence: access by core %d to line %#x touched tiles %#x outside its declared state footprint %#x",
			c, uint64(la), e.touched&^fp.State, fp.State))
	}
}
