package coherence

import (
	"lard/internal/cache"
	"lard/internal/core"
	"lard/internal/directory"
	"lard/internal/mem"
	"lard/internal/stats"
)

// Aliases keeping the engine code readable.
type (
	l1Cache        = cache.Cache[l1Meta]
	dirEntry       = directory.Entry
	coreClassifier = core.Classifier
)

// lruL1 is the shared L1 victim selector (the L1s use plain LRU).
var lruL1 = cache.LRU[l1Meta]()

// satReuse increments a replica-reuse counter, saturating at rt (hardware
// sizes the counter for the threshold, §2.4.1).
func satReuse(v uint8, rt int) uint8 {
	if int(v) >= rt {
		return v
	}
	return v + 1
}

// classifierOf returns (lazily creating) the locality classifier attached to
// a directory entry. Every line starts in the Initial state of Figure 3:
// all cores in non-replica mode — a recycled classifier was Reset to exactly
// that state when its previous entry died, so pool hits and fresh
// allocations are indistinguishable.
func (e *Engine) classifierOf(ent *dirEntry) coreClassifier {
	if ent.Classifier == nil {
		if n := len(e.clfFree); n > 0 {
			ent.Classifier = e.clfFree[n-1]
			e.clfFree = e.clfFree[:n-1]
		} else {
			ent.Classifier = core.New(e.clfParams)
		}
	}
	return ent.Classifier.(coreClassifier)
}

// newDirEntry returns a directory entry for a fresh home fill, recycled
// from the free list when one is available. A pooled entry was Reset on
// recycle, so it is indistinguishable from directory.NewEntry's result.
func (e *Engine) newDirEntry() *dirEntry {
	e.dirOcc.Inc()
	if n := len(e.entFree); n > 0 {
		ent := e.entFree[n-1]
		e.entFree = e.entFree[:n-1]
		return ent
	}
	return directory.NewEntry(e.cfg.AckwisePointers)
}

// recycleEntry returns a dead home entry — and the locality classifier it
// carried — to the engine free lists. Only disposeHome may call it: that is
// the single point where a directory entry leaves the simulated machine,
// and after it returns no live reference to the entry remains (home lines
// are the only holders of entry pointers, and the holder was just
// invalidated).
func (e *Engine) recycleEntry(ent *dirEntry) {
	e.dirOcc.Dec()
	if clf, ok := ent.Classifier.(coreClassifier); ok {
		clf.Reset()
		e.clfFree = append(e.clfFree, clf)
	}
	ent.Reset(e.cfg.AckwisePointers)
	e.entFree = append(e.entFree, ent)
}

// demoteCluster applies a replica-loss classifier event to every core of the
// cluster served by replica slice rs — the flat approximation of the
// hierarchical per-core tracking the paper sketches for cluster-level
// replication (§2.3.4; cluster size 1 never reaches here).
func (e *Engine) demoteCluster(clf coreClassifier, rs mem.CoreID, reuse uint8, invalidation bool) {
	base := (int(rs) / e.cfg.ClusterSize) * e.cfg.ClusterSize
	for i := 0; i < e.cfg.ClusterSize; i++ {
		member := mem.CoreID(base + i)
		if clf.Tracked(member) && clf.ModeOf(member) {
			clf.OnReplicaGone(member, reuse, invalidation)
		}
	}
}

// runTracker implements the Figure-1 measurement: per (line, core) run
// lengths at the LLC, ended by a conflicting access from another core (at
// least one of the accesses being a write) or by the line's eviction from
// the LLC home.
type runTracker struct {
	runs map[mem.LineAddr]*lineRuns
	hist stats.RunLengthHist
}

type lineRuns struct {
	class   mem.DataClass
	entries []runEntry
}

type runEntry struct {
	core  mem.CoreID
	count uint64
	wrote bool
}

func newRunTracker() *runTracker {
	return &runTracker{runs: make(map[mem.LineAddr]*lineRuns)}
}

// record notes one LLC access to la by core c. Two accesses conflict when
// they come from different cores and at least one is a write, so a write by
// c ends every other core's run, and any access by c ends every other core's
// write-containing run.
func (r *runTracker) record(la mem.LineAddr, c mem.CoreID, write bool, class mem.DataClass) {
	lr, ok := r.runs[la]
	if !ok {
		lr = &lineRuns{class: class}
		r.runs[la] = lr
	}
	lr.class = class
	kept := lr.entries[:0]
	for _, en := range lr.entries {
		if en.core != c && (write || en.wrote) {
			r.flushRun(lr.class, en)
		} else {
			kept = append(kept, en)
		}
	}
	lr.entries = kept
	for i := range lr.entries {
		if lr.entries[i].core == c {
			lr.entries[i].count++
			lr.entries[i].wrote = lr.entries[i].wrote || write
			return
		}
	}
	lr.entries = append(lr.entries, runEntry{core: c, count: 1, wrote: write})
}

// evicted ends every outstanding run of la (LLC home eviction).
func (r *runTracker) evicted(la mem.LineAddr) {
	lr, ok := r.runs[la]
	if !ok {
		return
	}
	for _, en := range lr.entries {
		r.flushRun(lr.class, en)
	}
	delete(r.runs, la)
}

func (r *runTracker) flushRun(class mem.DataClass, en runEntry) {
	if en.count == 0 {
		return
	}
	r.hist[class][stats.BucketOf(en.count)] += en.count
}

// finish flushes all outstanding runs and returns the histogram.
func (r *runTracker) finish() *stats.RunLengthHist {
	for la := range r.runs {
		r.evicted(la)
	}
	return &r.hist
}

// RunHistogram finalizes and returns the Figure-1 histogram; it is only
// meaningful when the engine was created with TrackRuns.
func (e *Engine) RunHistogram() *stats.RunLengthHist {
	if e.runs == nil {
		return &stats.RunLengthHist{}
	}
	return e.runs.finish()
}
