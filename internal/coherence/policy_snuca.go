package coherence

// snucaPolicy is the Static-NUCA baseline: every line address-interleaved
// across the LLC slices, no replication. It is exactly the engine's shared
// machinery with every policy hook at its default.
type snucaPolicy struct{ basePolicy }

func init() {
	Register(Descriptor{
		Scheme:      SNUCA,
		Name:        "S-NUCA",
		Description: "Static-NUCA baseline: lines address-interleaved across all LLC slices, no replication",
		Columns:     []Column{{Label: "S-NUCA"}},
		New:         func(e *Engine) Policy { return snucaPolicy{basePolicy{e}} },
	})
}
