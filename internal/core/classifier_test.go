package core

import (
	"testing"
	"testing/quick"

	"lard/internal/mem"
)

func completeRT3() Classifier { return New(Params{RT: 3, Cores: 16, K: 0}) }

func limitedRT3(k int) Classifier { return New(Params{RT: 3, Cores: 16, K: k}) }

func TestNewPanicsOnBadRT(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RT 0 must panic")
		}
	}()
	New(Params{RT: 0, Cores: 4})
}

func TestNewSelectsImplementation(t *testing.T) {
	if _, ok := New(Params{RT: 3, Cores: 4, K: 0}).(*complete); !ok {
		t.Error("K=0 must build the Complete classifier")
	}
	if _, ok := New(Params{RT: 3, Cores: 4, K: 3}).(*limited); !ok {
		t.Error("K=3 must build the Limited classifier")
	}
}

// --- Figure 3 state machine, Complete classifier -------------------------

// TestInitialMode: every core starts in non-replica mode.
func TestInitialMode(t *testing.T) {
	k := completeRT3()
	for c := mem.CoreID(0); c < 16; c++ {
		if k.ModeOf(c) {
			t.Fatalf("core %d must start non-replica", c)
		}
	}
}

// TestReadPromotion: home reuse reaching RT promotes (§2.2.1).
func TestReadPromotion(t *testing.T) {
	k := completeRT3()
	if k.OnReadHome(2) {
		t.Fatal("1st read: reuse 1 < RT, no replica")
	}
	if k.OnReadHome(2) {
		t.Fatal("2nd read: reuse 2 < RT, no replica")
	}
	if !k.OnReadHome(2) {
		t.Fatal("3rd read: reuse reaches RT, replica must be granted")
	}
	if !k.ModeOf(2) {
		t.Fatal("core must now be in replica mode")
	}
	if !k.OnReadHome(2) {
		t.Fatal("replica-mode core always gets replicas")
	}
	if k.ModeOf(3) {
		t.Fatal("other cores unaffected")
	}
}

// TestRT1PromotesImmediately: RT-1 replicates on the first access (§4.1).
func TestRT1PromotesImmediately(t *testing.T) {
	k := New(Params{RT: 1, Cores: 16, K: 0})
	if !k.OnReadHome(0) {
		t.Fatal("RT-1 must replicate on the first home access")
	}
}

// TestMigratoryWritePromotion: a sole sharer accumulates reuse across its
// own writes — migratory data replication (§2.2.2).
func TestMigratoryWritePromotion(t *testing.T) {
	k := completeRT3()
	if k.OnWriteHome(5, true) || k.OnWriteHome(5, true) {
		t.Fatal("first two sole writes stay below RT")
	}
	if !k.OnWriteHome(5, true) {
		t.Fatal("3rd sole write must promote (migratory pattern)")
	}
}

// TestContendedWriteResetsToOne: a non-sole writer restarts its count at 1
// (§2.2.2: the replica would be downgraded by conflicting requests).
func TestContendedWriteResetsToOne(t *testing.T) {
	k := completeRT3()
	k.OnReadHome(5)
	k.OnReadHome(5) // reuse 2
	if k.OnWriteHome(5, false) {
		t.Fatal("contended write must not promote")
	}
	// Count restarted at 1: two more sole accesses needed.
	if k.OnReadHome(5) {
		t.Fatal("reuse 2 after reset")
	}
	if !k.OnReadHome(5) {
		t.Fatal("reuse 3: promote")
	}
}

// TestOnOthersReset: a write resets the home-reuse counters of all other
// non-replica cores (§2.2.2).
func TestOnOthersReset(t *testing.T) {
	k := completeRT3()
	k.OnReadHome(1)
	k.OnReadHome(1) // core 1 at reuse 2
	k.OnOthersReset(0)
	// Core 1's progress is gone: needs 3 fresh accesses.
	k.OnReadHome(1)
	k.OnReadHome(1)
	if k.ModeOf(1) {
		t.Fatal("reset must have cleared progress")
	}
	if !k.OnReadHome(1) {
		t.Fatal("3rd access after reset must promote")
	}
}

// TestOnOthersResetSparesWriter: the writer keeps its own counter.
func TestOnOthersResetSparesWriter(t *testing.T) {
	k := completeRT3()
	k.OnReadHome(1)
	k.OnReadHome(1)
	k.OnOthersReset(1) // core 1 itself wrote
	if !k.OnReadHome(1) {
		t.Fatal("writer's counter must survive OnOthersReset")
	}
}

// TestOnOthersResetSparesReplicaModes: replica-mode cores are handled via
// invalidation acknowledgements, not the bulk reset.
func TestOnOthersResetSparesReplicaModes(t *testing.T) {
	k := completeRT3()
	for i := 0; i < 3; i++ {
		k.OnReadHome(1)
	}
	k.OnOthersReset(0)
	if !k.ModeOf(1) {
		t.Fatal("replica mode must survive OnOthersReset")
	}
}

// TestEvictionDemotion: replica eviction keeps replica status iff the
// replica reuse alone reached RT (Figure 3, eviction arc).
func TestEvictionDemotion(t *testing.T) {
	k := completeRT3()
	for i := 0; i < 3; i++ {
		k.OnReadHome(4)
	}
	k.OnReplicaGone(4, 2, false) // evicted with reuse 2 < RT
	if k.ModeOf(4) {
		t.Fatal("low-reuse eviction must demote")
	}
	// Re-promote, then evict with high reuse.
	for i := 0; i < 3; i++ {
		k.OnReadHome(4)
	}
	k.OnReplicaGone(4, 3, false)
	if !k.ModeOf(4) {
		t.Fatal("reuse >= RT at eviction must retain replica status")
	}
}

// TestInvalidationUsesSumOfReuses: on invalidation the decision uses
// replica + home reuse — the total reuse the core exhibited between
// successive writes (§2.2.3). Home reuse is only accumulated by accesses
// serviced at the home (§2.2.1), i.e. before the replica was created.
func TestInvalidationUsesSumOfReuses(t *testing.T) {
	k := completeRT3()
	for i := 0; i < 3; i++ {
		k.OnReadHome(4) // home reuse saturates at RT=3; replica created
	}
	// Invalidation with replica reuse 0: 0 + 3 >= RT keeps replica status
	// (the pre-promotion home accesses count toward the round's total).
	k.OnReplicaGone(4, 0, true)
	if !k.ModeOf(4) {
		t.Fatal("replica+home reuse >= RT must retain status on invalidation")
	}
	// Home reuse was reset to 0; the replica-mode core's next reads are
	// serviced by a fresh replica, so an invalidation with replica reuse 1
	// sees 1 + 0 < RT and demotes.
	k.OnReplicaGone(4, 1, true)
	if k.ModeOf(4) {
		t.Fatal("reuse sum below RT must demote")
	}
	// Had the same loss been an eviction the rule is identical here, but
	// with home reuse present only the invalidation arc adds it:
	k2 := completeRT3()
	for i := 0; i < 3; i++ {
		k2.OnReadHome(6)
	}
	k2.OnReplicaGone(6, 0, false) // eviction: replica reuse alone, 0 < RT
	if k2.ModeOf(6) {
		t.Fatal("eviction must ignore home reuse and demote")
	}
}

// TestHomeReuseResetAfterReplicaGone: the next round of classification
// starts from zero (§2.2.3).
func TestHomeReuseResetAfterReplicaGone(t *testing.T) {
	k := completeRT3()
	for i := 0; i < 3; i++ {
		k.OnReadHome(4)
	}
	k.OnReplicaGone(4, 1, false) // demote, reset
	if k.OnReadHome(4) || k.OnReadHome(4) {
		t.Fatal("counter must restart from zero after demotion")
	}
	if !k.OnReadHome(4) {
		t.Fatal("third access re-promotes")
	}
}

func TestCompleteTracksEveryCore(t *testing.T) {
	k := completeRT3()
	for c := mem.CoreID(0); c < 16; c++ {
		if !k.Tracked(c) {
			t.Fatalf("Complete must track core %d", c)
		}
	}
}

// --- Limited-k classifier (§2.2.5) ----------------------------------------

func TestLimitedAllocatesFreeEntries(t *testing.T) {
	k := limitedRT3(3)
	for c := mem.CoreID(0); c < 3; c++ {
		k.OnReadHome(c)
		if !k.Tracked(c) {
			t.Fatalf("core %d must get a free entry", c)
		}
	}
	k.OnReadHome(3)
	if k.Tracked(3) {
		t.Fatal("4th core must not be tracked: no free or inactive entry")
	}
}

// TestLimitedUntrackedMajorityVote: an untracked core is classified by the
// majority vote of the tracked modes.
func TestLimitedUntrackedMajorityVote(t *testing.T) {
	k := limitedRT3(3)
	// Promote cores 0 and 1 (majority replica), leave 2 non-replica.
	for i := 0; i < 3; i++ {
		k.OnReadHome(0)
		k.OnReadHome(1)
	}
	k.OnReadHome(2)
	if !k.OnReadHome(7) {
		t.Fatal("majority replica: untracked core must be granted a replica")
	}
	if !k.ModeOf(7) {
		t.Fatal("ModeOf(untracked) must report the majority vote")
	}
}

// TestLimitedUntrackedNonReplicaCannotPromote: with a non-replica majority,
// an untracked core can never accumulate reuse — the STREAMCLUSTER
// pathology of §4.3.
func TestLimitedUntrackedNonReplicaCannotPromote(t *testing.T) {
	k := limitedRT3(3)
	for c := mem.CoreID(0); c < 3; c++ {
		k.OnReadHome(c) // three active non-replica entries
	}
	for i := 0; i < 10; i++ {
		if k.OnReadHome(9) {
			t.Fatal("untracked core with non-replica majority must never replicate")
		}
	}
}

// TestLimitedInactiveReplacement: an inactive sharer relinquishes its entry;
// the newcomer starts in the majority mode (its "most probable mode").
func TestLimitedInactiveReplacement(t *testing.T) {
	k := limitedRT3(3)
	for i := 0; i < 3; i++ {
		k.OnReadHome(0)
		k.OnReadHome(1)
		k.OnReadHome(2)
	}
	// All three are replica-mode and active. Invalidate core 2's replica
	// with good reuse: it keeps replica status but becomes inactive.
	k.OnReplicaGone(2, 3, false)
	k.OnReadHome(9)
	if !k.Tracked(9) {
		t.Fatal("newcomer must replace the inactive sharer")
	}
	if k.Tracked(2) {
		t.Fatal("core 2's entry must have been relinquished")
	}
	if !k.ModeOf(9) {
		t.Fatal("newcomer must start in the majority (replica) mode")
	}
}

// TestLimitedWriteInactivatesNonReplicas: OnOthersReset makes non-replica
// entries inactive, so they can be replaced.
func TestLimitedWriteInactivatesNonReplicas(t *testing.T) {
	k := limitedRT3(3)
	k.OnReadHome(0)
	k.OnReadHome(1)
	k.OnReadHome(2)
	k.OnOthersReset(0) // cores 1, 2 become inactive
	k.OnReadHome(9)
	if !k.Tracked(9) {
		t.Fatal("newcomer must replace an inactive non-replica entry")
	}
	if k.Tracked(1) && k.Tracked(2) {
		t.Fatal("one of the inactive entries must have been replaced")
	}
}

// TestLimitedMajorityTieIsNonReplica: ties (including the empty list)
// resolve to the Initial non-replica mode.
func TestLimitedMajorityTieIsNonReplica(t *testing.T) {
	k := limitedRT3(2)
	if k.ModeOf(5) {
		t.Fatal("empty list must vote non-replica")
	}
	// One replica, one non-replica: tie -> non-replica.
	for i := 0; i < 3; i++ {
		k.OnReadHome(0)
	}
	k.OnReadHome(1)
	if k.ModeOf(9) {
		t.Fatal("1-1 tie must vote non-replica")
	}
}

// TestLimited1FastTraining: Limited-1 classifies every new sharer by the
// single tracked core — the fast-but-unstable behaviour of §4.3.
func TestLimited1FastTraining(t *testing.T) {
	k := limitedRT3(1)
	for i := 0; i < 3; i++ {
		k.OnReadHome(0)
	}
	// Core 0 replica-mode; every untracked core inherits it immediately.
	if !k.OnReadHome(7) || !k.OnReadHome(12) {
		t.Fatal("Limited-1 must start new sharers in the first sharer's mode")
	}
}

// TestLimitedTrackedBehavesLikeComplete: while a core owns an entry its
// decisions match the Complete classifier's.
func TestLimitedTrackedBehavesLikeComplete(t *testing.T) {
	f := func(ops []uint8) bool {
		kc := completeRT3()
		kl := limitedRT3(16) // k = cores: everyone can be tracked
		for _, op := range ops {
			c := mem.CoreID(op % 16)
			switch (op >> 4) % 4 {
			case 0:
				if kc.OnReadHome(c) != kl.OnReadHome(c) {
					return false
				}
			case 1:
				sole := op&0x80 != 0
				if kc.OnWriteHome(c, sole) != kl.OnWriteHome(c, sole) {
					return false
				}
			case 2:
				kc.OnOthersReset(c)
				kl.OnOthersReset(c)
			case 3:
				kc.OnReplicaGone(c, op%4, op&0x40 != 0)
				kl.OnReplicaGone(c, op%4, op&0x40 != 0)
			}
		}
		for c := mem.CoreID(0); c < 16; c++ {
			if kc.ModeOf(c) != kl.ModeOf(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterSaturation: reuse counters never exceed RT (they are sized for
// the threshold, §2.4.1) — expressed through behaviour: an arbitrarily long
// read streak still demotes after eviction with zero replica reuse.
func TestCounterSaturation(t *testing.T) {
	k := completeRT3()
	for i := 0; i < 100; i++ {
		k.OnReadHome(3)
	}
	k.OnReplicaGone(3, 0, false) // eviction, replica reuse 0 < RT
	if k.ModeOf(3) {
		t.Fatal("eviction rule uses replica reuse only; saturation must not leak")
	}
}

func TestSatIncr(t *testing.T) {
	if satIncr(0, 3) != 1 || satIncr(2, 3) != 3 || satIncr(3, 3) != 3 || satIncr(200, 3) != 200 {
		t.Fatal("satIncr wrong")
	}
}

// TestLimitedUntrackedReplicaGoneIsNoop: replica loss of an untracked core
// carries no classifier state.
func TestLimitedUntrackedReplicaGoneIsNoop(t *testing.T) {
	k := limitedRT3(2)
	k.OnReadHome(0)
	k.OnReadHome(1)
	k.OnReplicaGone(9, 3, true) // untracked: must not panic or disturb
	if !k.Tracked(0) || !k.Tracked(1) {
		t.Fatal("tracked entries must be unaffected")
	}
}
