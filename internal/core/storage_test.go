package core

import (
	"math"
	"testing"
)

// table1Model returns the §2.4.1 configuration: 64 cores, RT 3, 4096-line
// (256 KB) slices, ACKwise-4.
func table1Model(k int) StorageModel {
	return StorageModel{Cores: 64, RT: 3, K: k, SliceLines: 4096, AckwisePointers: 4}
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

// TestPaperStorageNumbers pins every number computed in §2.4.1.
func TestPaperStorageNumbers(t *testing.T) {
	m3 := table1Model(3)

	if got := m3.ReuseCounterBits(); got != 2 {
		t.Errorf("reuse counter bits = %d, want 2 (RT=3)", got)
	}
	// "Tracking one core requires 2 bits for the home reuse counter, 1 bit
	// for the mode and 6 bits for the core ID ... 27 = 3x9 bits."
	if got := m3.ClassifierBitsPerEntry(); got != 27 {
		t.Errorf("Limited-3 bits/entry = %d, want 27", got)
	}
	// "The Complete classifier requires 192 = 64x3 bits."
	if got := table1Model(0).ClassifierBitsPerEntry(); got != 192 {
		t.Errorf("Complete bits/entry = %d, want 192", got)
	}
	// "The storage overhead of the replica reuse bit is 1KB."
	approx(t, "replica reuse KB", m3.ReplicaReuseKB(), 1.0, 1e-9)
	// "The storage overhead of the Limited-3 classifier is 13.5KB."
	approx(t, "Limited-3 KB", m3.ClassifierKB(), 13.5, 1e-9)
	// "For the complete classifier, it is 96KB."
	approx(t, "Complete KB", table1Model(0).ClassifierKB(), 96, 1e-9)
	// "The storage overhead of the ACKwise-4 protocol ... is 12KB."
	approx(t, "ACKwise-4 KB", m3.AckwiseKB(), 12, 1e-9)
	// "... that for a Full Map protocol is 32KB."
	approx(t, "full map KB", m3.FullMapKB(), 32, 1e-9)
	// Conclusion: "14.5KB storage overhead per 256KB LLC slice."
	approx(t, "protocol overhead KB", m3.ProtocolOverheadKB(), 14.5, 1e-9)
	// "4.5% more storage than the baseline ACKwise-4 protocol."
	approx(t, "Limited-3 overhead %", m3.OverheadPercent(), 4.5, 0.2)
	// "The Complete classifier ... uses 30% more storage."
	approx(t, "Complete overhead %", table1Model(0).OverheadPercent(), 30, 1.0)
}

// TestLimited3BeatsFullMap: "the Limited-3 classifier with ACKwise-4 uses
// slightly less storage than the Full Map protocol."
func TestLimited3BeatsFullMap(t *testing.T) {
	m := table1Model(3)
	lard := m.ProtocolOverheadKB() + m.AckwiseKB()
	if lard >= m.FullMapKB() {
		t.Errorf("Limited-3 + ACKwise-4 = %.1f KB must be below full map %.1f KB",
			lard, m.FullMapKB())
	}
}

func TestReuseCounterBitsScalesWithRT(t *testing.T) {
	cases := map[int]int{1: 1, 3: 2, 7: 3, 8: 4}
	for rt, want := range cases {
		m := table1Model(3)
		m.RT = rt
		if got := m.ReuseCounterBits(); got != want {
			t.Errorf("RT=%d: counter bits = %d, want %d", rt, got, want)
		}
	}
}

func TestClassifierBitsScaleWithK(t *testing.T) {
	// Limited-k storage is proportional to k (§2.2.5).
	b1 := table1Model(1).ClassifierBitsPerEntry()
	b5 := table1Model(5).ClassifierBitsPerEntry()
	if b5 != 5*b1 {
		t.Errorf("Limited-k bits must scale linearly: k=1 %d, k=5 %d", b1, b5)
	}
}

func TestStorageAt1024Cores(t *testing.T) {
	// §2.2.5: the Complete classifier costs "over 5x" at 1024 cores. The
	// classifier bits (1024 x 3) against the 324.5 KB baseline give ~118%
	// per this model's denominator; the qualitative point pinned here is
	// that Complete explodes with core count while Limited-3 stays flat.
	big := StorageModel{Cores: 1024, RT: 3, K: 0, SliceLines: 4096, AckwisePointers: 4}
	small := StorageModel{Cores: 1024, RT: 3, K: 3, SliceLines: 4096, AckwisePointers: 4}
	if big.ClassifierKB() != 16*table1Model(0).ClassifierKB() {
		t.Errorf("Complete storage must scale linearly with cores")
	}
	// Limited-3 at 1024 cores only grows by the wider core IDs (10 bits).
	if got := small.ClassifierBitsPerEntry(); got != 3*(1+2+10) {
		t.Errorf("Limited-3 bits at 1024 cores = %d, want 39", got)
	}
}
