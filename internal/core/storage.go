package core

import "math/bits"

// StorageModel reproduces the storage-overhead arithmetic of §2.4.1: the
// extra bits the locality-aware protocol adds to each LLC directory entry and
// the resulting per-slice overheads, compared against the baseline ACKwise-p
// and full-map directories.
type StorageModel struct {
	// Cores is the number of cores (64 in the paper).
	Cores int
	// RT is the replication threshold; the reuse counters saturate at RT.
	RT int
	// K is the Limited-k parameter (0 = Complete).
	K int
	// SliceLines is the number of lines of one LLC slice (4096 in Table 1).
	SliceLines int
	// AckwisePointers is p of the baseline ACKwise-p directory.
	AckwisePointers int
}

// coreIDBits returns the bits of one core pointer (log2 of cores).
func (m StorageModel) coreIDBits() int { return bits.Len(uint(m.Cores - 1)) }

// ReuseCounterBits returns the width of one reuse counter: enough to count to
// RT (2 bits for the optimal RT of 3, §2.4.1).
func (m StorageModel) ReuseCounterBits() int { return bits.Len(uint(m.RT)) }

// ReplicaReuseBitsPerEntry returns the bits added to every LLC tag entry for
// the replica-reuse counter.
func (m StorageModel) ReplicaReuseBitsPerEntry() int { return m.ReuseCounterBits() }

// ClassifierBitsPerEntry returns the bits the classifier adds to one
// directory entry: per tracked core a mode bit and a home-reuse counter, plus
// a core ID for the Limited-k variant (the Complete variant is indexed by
// core and needs no IDs).
func (m StorageModel) ClassifierBitsPerEntry() int {
	per := 1 + m.ReuseCounterBits()
	if m.K == 0 {
		return m.Cores * per
	}
	return m.K * (per + m.coreIDBits())
}

// AckwiseBitsPerEntry returns the sharer-tracking bits of the baseline
// ACKwise-p entry (p core pointers).
func (m StorageModel) AckwiseBitsPerEntry() int { return m.AckwisePointers * m.coreIDBits() }

// FullMapBitsPerEntry returns the sharer-tracking bits of a full-map entry.
func (m StorageModel) FullMapBitsPerEntry() int { return m.Cores }

// kb converts per-entry bits to per-slice kilobytes.
func (m StorageModel) kb(bitsPerEntry int) float64 {
	return float64(bitsPerEntry*m.SliceLines) / 8 / 1024
}

// ReplicaReuseKB returns the per-slice storage of the replica-reuse counters
// (1 KB in the paper's configuration).
func (m StorageModel) ReplicaReuseKB() float64 { return m.kb(m.ReplicaReuseBitsPerEntry()) }

// ClassifierKB returns the per-slice storage of the locality classifier
// (13.5 KB for Limited-3, 96 KB for Complete in the paper's configuration).
func (m StorageModel) ClassifierKB() float64 { return m.kb(m.ClassifierBitsPerEntry()) }

// AckwiseKB returns the per-slice storage of the baseline ACKwise-p sharer
// pointers (12 KB in the paper's configuration).
func (m StorageModel) AckwiseKB() float64 { return m.kb(m.AckwiseBitsPerEntry()) }

// FullMapKB returns the per-slice storage of a full-map sharer vector
// (32 KB in the paper's configuration).
func (m StorageModel) FullMapKB() float64 { return m.kb(m.FullMapBitsPerEntry()) }

// ProtocolOverheadKB returns the total per-slice storage the locality-aware
// protocol adds on top of the baseline directory: replica-reuse counters plus
// the classifier (14.5 KB per 256 KB slice for Limited-3, as stated in the
// paper's conclusion).
func (m StorageModel) ProtocolOverheadKB() float64 {
	return m.ReplicaReuseKB() + m.ClassifierKB()
}

// BaselineCacheKB is the per-core data storage the percentages of §2.4.1 are
// quoted against: L1-I + L1-D + LLC slice data arrays.
const BaselineCacheKB = 16 + 32 + 256

// OverheadPercent returns the protocol's storage overhead relative to the
// baseline caches plus ACKwise directory (≈4.5% for Limited-3, ≈30% for
// Complete in the paper's configuration).
func (m StorageModel) OverheadPercent() float64 {
	base := BaselineCacheKB + m.AckwiseKB()
	return 100 * m.ProtocolOverheadKB() / base
}
