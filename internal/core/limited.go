package core

import "lard/internal/mem"

// limEntry is one slot of the limited locality list (Figure 5): core ID,
// replication mode bit and home-reuse counter, plus the active flag used for
// replacement (§2.2.5).
type limEntry struct {
	core   mem.CoreID
	mode   bool
	reuse  uint8
	active bool
	valid  bool
}

// limited is the Limited-k locality classifier (§2.2.5). It keeps locality
// information for at most k cores; other cores are classified by a majority
// vote of the modes of the tracked cores.
type limited struct {
	rt      int
	entries []limEntry
}

func newLimited(p Params) *limited {
	return &limited{rt: p.RT, entries: make([]limEntry, p.K)}
}

// find returns the entry tracking c, or nil.
func (k *limited) find(c mem.CoreID) *limEntry {
	for i := range k.entries {
		if k.entries[i].valid && k.entries[i].core == c {
			return &k.entries[i]
		}
	}
	return nil
}

// majority returns the majority vote of the modes of the tracked cores;
// ties (including an empty list) resolve to non-replica, the Initial mode of
// Figure 3.
func (k *limited) majority() bool {
	replica, valid := 0, 0
	for i := range k.entries {
		if k.entries[i].valid {
			valid++
			if k.entries[i].mode {
				replica++
			}
		}
	}
	return replica*2 > valid
}

// acquire returns the entry for c, allocating one if possible:
//  1. an existing entry for c,
//  2. a free (invalid) entry, started in the Initial mode,
//  3. replacement of an inactive sharer, started in the majority-vote mode
//     (the requester's "most probable mode", §2.2.5).
//
// If no replacement candidate exists it returns nil and the caller falls
// back to the majority vote without modifying the list.
func (k *limited) acquire(c mem.CoreID) *limEntry {
	if e := k.find(c); e != nil {
		e.active = true
		return e
	}
	for i := range k.entries {
		if !k.entries[i].valid {
			k.entries[i] = limEntry{core: c, active: true, valid: true}
			return &k.entries[i]
		}
	}
	for i := range k.entries {
		if !k.entries[i].active {
			k.entries[i] = limEntry{core: c, mode: k.majority(), active: true, valid: true}
			return &k.entries[i]
		}
	}
	return nil
}

// OnReadHome implements Classifier.
func (k *limited) OnReadHome(c mem.CoreID) bool {
	e := k.acquire(c)
	if e == nil {
		// Untracked: classify by majority vote; no reuse can be accumulated,
		// so a non-replica vote can never be promoted (this is the
		// STREAMCLUSTER pathology discussed in §4.3).
		return k.majority()
	}
	if e.mode {
		return true
	}
	e.reuse = satIncr(e.reuse, k.rt)
	if int(e.reuse) >= k.rt {
		e.mode = true
		return true
	}
	return false
}

// OnWriteHome implements Classifier.
func (k *limited) OnWriteHome(c mem.CoreID, soleSharer bool) bool {
	e := k.acquire(c)
	if e == nil {
		return k.majority()
	}
	if e.mode {
		return true
	}
	if soleSharer {
		e.reuse = satIncr(e.reuse, k.rt)
	} else {
		e.reuse = 1
	}
	if int(e.reuse) >= k.rt {
		e.mode = true
		return true
	}
	return false
}

// OnOthersReset implements Classifier.
func (k *limited) OnOthersReset(writer mem.CoreID) {
	for i := range k.entries {
		e := &k.entries[i]
		if e.valid && e.core != writer && !e.mode {
			e.reuse = 0
			e.active = false
		}
	}
}

// OnReplicaGone implements Classifier.
func (k *limited) OnReplicaGone(c mem.CoreID, replicaReuse uint8, invalidation bool) {
	e := k.find(c)
	if e == nil {
		return // untracked replicas carry no classifier state
	}
	x := int(replicaReuse)
	if invalidation {
		x += int(e.reuse)
	}
	if x < k.rt {
		e.mode = false
	}
	e.reuse = 0
	e.active = false
}

// ModeOf implements Classifier.
func (k *limited) ModeOf(c mem.CoreID) bool {
	if e := k.find(c); e != nil {
		return e.mode
	}
	return k.majority()
}

// Tracked implements Classifier.
func (k *limited) Tracked(c mem.CoreID) bool { return k.find(c) != nil }

// Reset implements Classifier.
func (k *limited) Reset() {
	for i := range k.entries {
		k.entries[i] = limEntry{}
	}
}
