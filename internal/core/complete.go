package core

import "lard/internal/mem"

// complete is the Complete locality classifier (Figure 4): per-core
// replication mode bits and home-reuse counters for every core in the
// system. It is exact but costs 3n bits per directory entry (§2.4.1), which
// the Limited-k classifier approximates.
type complete struct {
	rt    int
	modes bitset
	reuse []uint8
}

func newComplete(p Params) *complete {
	return &complete{
		rt:    p.RT,
		modes: newBitset(p.Cores),
		reuse: make([]uint8, p.Cores),
	}
}

// OnReadHome implements Classifier.
func (k *complete) OnReadHome(c mem.CoreID) bool {
	if k.modes.get(int(c)) {
		return true
	}
	k.reuse[c] = satIncr(k.reuse[c], k.rt)
	if int(k.reuse[c]) >= k.rt {
		k.modes.set(int(c), true)
		return true
	}
	return false
}

// OnWriteHome implements Classifier.
func (k *complete) OnWriteHome(c mem.CoreID, soleSharer bool) bool {
	if k.modes.get(int(c)) {
		return true
	}
	// §2.2.2: a sole sharer accumulates reuse across its own writes
	// (migratory data); otherwise the conflicting write restarts the count
	// at 1 (this write is the first access of the new round).
	if soleSharer {
		k.reuse[c] = satIncr(k.reuse[c], k.rt)
	} else {
		k.reuse[c] = 1
	}
	if int(k.reuse[c]) >= k.rt {
		k.modes.set(int(c), true)
		return true
	}
	return false
}

// OnOthersReset implements Classifier.
func (k *complete) OnOthersReset(writer mem.CoreID) {
	for c := range k.reuse {
		if c != int(writer) && !k.modes.get(c) {
			k.reuse[c] = 0
		}
	}
}

// OnReplicaGone implements Classifier.
func (k *complete) OnReplicaGone(c mem.CoreID, replicaReuse uint8, invalidation bool) {
	x := int(replicaReuse)
	if invalidation {
		// §2.2.3: on invalidation the total reuse between successive writes
		// is replica reuse plus home reuse.
		x += int(k.reuse[c])
	}
	if x < k.rt {
		k.modes.set(int(c), false)
	}
	k.reuse[c] = 0
}

// ModeOf implements Classifier.
func (k *complete) ModeOf(c mem.CoreID) bool { return k.modes.get(int(c)) }

// Tracked implements Classifier: the Complete classifier tracks every core.
func (k *complete) Tracked(mem.CoreID) bool { return true }

// Reset implements Classifier.
func (k *complete) Reset() {
	for i := range k.modes {
		k.modes[i] = 0
	}
	for i := range k.reuse {
		k.reuse[i] = 0
	}
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) set(i int, v bool) {
	if v {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
}
