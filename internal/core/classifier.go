// Package core implements the paper's primary contribution: the low-overhead
// in-hardware run-time classifier that tracks the reuse of each cache line at
// the LLC and decides, per requesting core, whether the line may be
// replicated in that core's local LLC slice (§2.2).
//
// Two implementations are provided, mirroring the paper:
//
//   - Complete: a replication-mode bit and a home-reuse saturating counter for
//     every core in the system (Figure 4).
//   - Limited-k: the same information for only k cores, with inactive-sharer
//     replacement and majority-vote initialization of untracked cores
//     (Figure 5, §2.2.5). Limited-3 is the paper's default.
//
// The classifier is decoupled from the sharer-tracking directory (ACKwise
// pointers serve coherence; the locality list serves classification), which
// is the property that lets the protocol scale (§2.2.5).
//
// State machine (Figure 3), per (line, core):
//
//	Initial: non-replica mode, home reuse 0.
//	Non-replica, read/write at home: home reuse counter advances; reaching
//	  RT promotes the core to replica mode and a replica is created.
//	Replica, on replica eviction:   stay replica iff replica reuse >= RT.
//	Replica, on replica invalidation: stay replica iff replica+home reuse
//	  >= RT (the sum is the total reuse between successive writes).
//	Demotion returns the core to non-replica mode with home reuse 0.
package core

import "lard/internal/mem"

// Params are the classifier parameters shared by all lines of a run.
type Params struct {
	// RT is the replication threshold: the reuse at or above which a replica
	// is created or retained (Table 1 default: 3).
	RT int
	// Cores is the number of cores in the system.
	Cores int
	// K is the number of tracked cores of the Limited-k classifier;
	// 0 selects the Complete classifier.
	K int
}

// Classifier is the per-cache-line locality classifier consulted by the home
// directory. Implementations are not safe for concurrent use (the simulator
// is single-threaded).
type Classifier interface {
	// OnReadHome records a read by core c serviced at the home location and
	// reports whether an LLC replica should be granted to c (§2.2.1).
	OnReadHome(c mem.CoreID) bool

	// OnWriteHome records a write by core c serialized at the home after all
	// invalidation acknowledgements have been processed. soleSharer reports
	// whether c was the only sharer (replica or non-replica) at the time of
	// the write, which is what permits migratory-data promotion (§2.2.2).
	// It reports whether an (Exclusive/Modified-state) replica should be
	// granted to c.
	OnWriteHome(c mem.CoreID, soleSharer bool) bool

	// OnOthersReset records that core writer performed a write: every other
	// tracked core in non-replica mode has not shown enough reuse to be
	// promoted, so its home-reuse counter is reset to zero and it becomes
	// inactive (§2.2.2). Replica-mode cores are handled separately through
	// OnReplicaGone as their copies are invalidated.
	OnOthersReset(writer mem.CoreID)

	// OnReplicaGone records the eviction (invalidation=false) or
	// invalidation (invalidation=true) of core c's LLC replica, carrying the
	// replica-reuse counter communicated with the acknowledgement (§2.2.3).
	// The core keeps replica status iff the observed reuse reaches RT; its
	// home-reuse counter is reset for the next round of classification, and
	// the core becomes inactive.
	OnReplicaGone(c mem.CoreID, replicaReuse uint8, invalidation bool)

	// ModeOf reports the current replication mode the classifier would apply
	// to core c (tracked mode, or the majority vote for untracked cores).
	ModeOf(c mem.CoreID) bool

	// Tracked reports whether core c currently has a dedicated entry.
	Tracked(c mem.CoreID) bool

	// Reset returns the classifier to the Initial state of Figure 3 (all
	// cores in non-replica mode, no reuse), making it indistinguishable
	// from a freshly constructed one — which lets an engine recycle
	// classifiers of dead directory entries instead of allocating.
	Reset()
}

// New returns a classifier for one cache line according to p: Complete when
// p.K == 0, Limited-k otherwise.
func New(p Params) Classifier {
	if p.RT < 1 {
		panic("core: RT must be >= 1")
	}
	if p.K == 0 {
		return newComplete(p)
	}
	return newLimited(p)
}

// satIncr increments a counter saturating at RT (the decision only needs
// "reached RT"; hardware sizes the counter accordingly, §2.4.1).
func satIncr(v uint8, rt int) uint8 {
	if int(v) >= rt {
		return v
	}
	return v + 1
}
