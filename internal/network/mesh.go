// Package network models the on-chip interconnect of Table 1: an electrical
// 2-D mesh with X-Y dimension-ordered routing, a fixed 2-cycle per-hop
// latency (1 router + 1 link), 64-bit flits, and per-link serialization that
// produces contention delays when messages overlap on a link. Energy is
// accounted per flit per traversed router and link.
package network

import (
	"lard/internal/energy"
	"lard/internal/mem"
)

// Mesh is the 2-D mesh interconnect. It is not safe for concurrent use; the
// simulator is single-threaded by design (deterministic event order).
type Mesh struct {
	w, h       int
	hopLatency mem.Cycles

	// linkFree[l] is the first cycle at which directed link l is idle.
	linkFree []mem.Cycles

	meter  *energy.Meter
	router float64 // pJ per flit per router
	link   float64 // pJ per flit per link

	flits    uint64     // total flit-hops, for stats
	linkWait mem.Cycles // cumulative head-flit wait due to link contention
}

// LinkWait returns the cumulative cycles head flits spent waiting for busy
// links (a contention diagnostic).
func (m *Mesh) LinkWait() mem.Cycles { return m.linkWait }

// New returns a mesh of w x h tiles. meter may be nil to disable energy
// accounting.
func New(w, h int, hopLatency mem.Cycles, meter *energy.Meter, routerPJ, linkPJ float64) *Mesh {
	if w <= 0 || h <= 0 {
		panic("network: mesh dimensions must be positive")
	}
	return &Mesh{
		w: w, h: h,
		hopLatency: hopLatency,
		// Four directed links per tile is an over-allocation (edge tiles
		// have fewer) but keeps link indexing trivial.
		linkFree: make([]mem.Cycles, w*h*4),
		meter:    meter,
		router:   routerPJ,
		link:     linkPJ,
	}
}

// Directions for link indexing.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

func (m *Mesh) coord(c mem.CoreID) (x, y int) { return int(c) % m.w, int(c) / m.w }

func (m *Mesh) tile(x, y int) int { return y*m.w + x }

func (m *Mesh) linkID(x, y, dir int) int { return m.tile(x, y)*4 + dir }

// Hops returns the Manhattan distance between src and dst.
func (m *Mesh) Hops(src, dst mem.CoreID) int {
	sx, sy := m.coord(src)
	dx, dy := m.coord(dst)
	return abs(sx-dx) + abs(sy-dy)
}

// LatencyNoContention returns the zero-load latency of a message of the given
// flit count from src to dst: hops*hopLatency plus (flits-1) serialization
// cycles. src == dst costs nothing (the local slice is accessed directly).
func (m *Mesh) LatencyNoContention(src, dst mem.CoreID, flits int) mem.Cycles {
	if src == dst {
		return 0
	}
	return mem.Cycles(m.Hops(src, dst))*m.hopLatency + mem.Cycles(flits-1)
}

// Send routes a message of the given flit count from src to dst departing at
// depart, reserving every traversed link for flits cycles (wormhole
// serialization) and accumulating router/link energy. It returns the arrival
// cycle of the tail flit at dst. src == dst returns depart unchanged.
func (m *Mesh) Send(src, dst mem.CoreID, flits int, depart mem.Cycles) mem.Cycles {
	if src == dst {
		return depart
	}
	if flits <= 0 {
		panic("network: message must have at least one flit")
	}
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	t := depart
	hops := 0
	// X-Y routing: fully resolve X, then Y.
	for x != dx {
		dir, nx := dirEast, x+1
		if dx < x {
			dir, nx = dirWest, x-1
		}
		t = m.traverse(m.linkID(x, y, dir), t, flits)
		x = nx
		hops++
	}
	for y != dy {
		dir, ny := dirSouth, y+1
		if dy < y {
			dir, ny = dirNorth, y-1
		}
		t = m.traverse(m.linkID(x, y, dir), t, flits)
		y = ny
		hops++
	}
	// Wormhole pipelining: the head flit advances hop by hop (accumulated in
	// t); the tail flit arrives flits-1 cycles after the head.
	t += mem.Cycles(flits - 1)
	if m.meter != nil {
		// Each hop traverses one router and one link; the ejection port at
		// the destination router is folded into the last hop.
		m.meter.AddN(energy.Router, m.router, flits*hops)
		m.meter.AddN(energy.Link, m.link, flits*hops)
	}
	m.flits += uint64(flits * hops)
	return t
}

// traverse reserves link l for the whole message (flits cycles of
// occupancy, which is what creates contention for later messages) starting
// no earlier than the head-flit arrival t, and returns the head-flit arrival
// at the next router.
func (m *Mesh) traverse(l int, t mem.Cycles, flits int) mem.Cycles {
	start := t
	if m.linkFree[l] > start {
		start = m.linkFree[l]
	}
	m.linkWait += start - t
	m.linkFree[l] = start + mem.Cycles(flits)
	return start + m.hopLatency
}

// WorkerView returns a lane-private view of the mesh for the simulator's
// parallel scheduler: it shares the linkFree reservation table (the
// scheduler guarantees concurrent lanes route over disjoint links, so no
// two lanes touch the same entry) but carries its own meter and stats
// accumulators, merged back per round via MergeWorker.
func (m *Mesh) WorkerView(meter *energy.Meter) *Mesh {
	v := *m
	v.meter = meter
	v.flits = 0
	v.linkWait = 0
	return &v
}

// MergeWorker folds a worker view's stats into the parent and resets them.
// Energy lives in the view's meter, which the caller merges separately.
func (m *Mesh) MergeWorker(v *Mesh) {
	m.flits += v.flits
	m.linkWait += v.linkWait
	v.flits = 0
	v.linkWait = 0
}

// FlitHops returns the cumulative flit-hop count routed so far.
func (m *Mesh) FlitHops() uint64 { return m.flits }

// Width and Height return the mesh dimensions.
func (m *Mesh) Width() int { return m.w }

// Height returns the mesh Y dimension.
func (m *Mesh) Height() int { return m.h }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
