package network

import (
	"testing"
	"testing/quick"

	"lard/internal/energy"
	"lard/internal/mem"
)

func newTestMesh(meter *energy.Meter) *Mesh { return New(4, 4, 2, meter, 5, 3) }

func TestHopsManhattan(t *testing.T) {
	m := newTestMesh(nil)
	cases := []struct {
		src, dst mem.CoreID
		want     int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6},
		{5, 10, 2},
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := newTestMesh(nil)
	f := func(a, b uint8) bool {
		s, d := mem.CoreID(a%16), mem.CoreID(b%16)
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLoadLatency(t *testing.T) {
	m := newTestMesh(nil)
	// 1 hop, 1 flit: 2 cycles; tail = head.
	if got := m.Send(0, 1, 1, 100); got != 102 {
		t.Errorf("1-hop 1-flit: arrive %d, want 102", got)
	}
	// Fresh mesh: 3 hops, 9 flits: 3*2 + 8 = 14.
	m2 := newTestMesh(nil)
	if got := m2.Send(0, 3, 9, 0); got != 14 {
		t.Errorf("3-hop 9-flit: arrive %d, want 14", got)
	}
	if got := m2.LatencyNoContention(0, 3, 9); got != 14 {
		t.Errorf("LatencyNoContention = %d, want 14", got)
	}
}

func TestLocalSendFree(t *testing.T) {
	m := newTestMesh(nil)
	if got := m.Send(5, 5, 9, 77); got != 77 {
		t.Errorf("local send must be free, got %d", got)
	}
}

func TestSendZeroFlitsPanics(t *testing.T) {
	m := newTestMesh(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Send with 0 flits must panic")
		}
	}()
	m.Send(0, 1, 0, 0)
}

// TestLinkContention: two 8-flit messages on the same link at the same time
// must serialize: the second head waits for the first message's 8 cycles.
func TestLinkContention(t *testing.T) {
	m := newTestMesh(nil)
	first := m.Send(0, 1, 8, 0)  // head at 0, link busy [0,8), arrive 2+7=9
	second := m.Send(0, 1, 8, 0) // head must wait until 8
	if first != 9 {
		t.Fatalf("first arrival = %d, want 9", first)
	}
	if second != 17 {
		t.Fatalf("second arrival = %d, want 17 (8 wait + 2 hop + 7 tail)", second)
	}
	if m.LinkWait() != 8 {
		t.Fatalf("LinkWait = %d, want 8", m.LinkWait())
	}
}

// TestDisjointPathsNoContention: messages on disjoint links do not interact.
func TestDisjointPathsNoContention(t *testing.T) {
	m := newTestMesh(nil)
	m.Send(0, 1, 8, 0)
	got := m.Send(10, 11, 8, 0)
	if got != 9 {
		t.Fatalf("disjoint send delayed: %d, want 9", got)
	}
	if m.LinkWait() != 0 {
		t.Fatalf("LinkWait = %d, want 0", m.LinkWait())
	}
}

// TestXYSeparatesDimensions: with XY routing, 0->5 goes east then south,
// using different links than 1->4's west-then-... — specifically, messages
// crossing in opposite directions never share a directed link.
func TestOppositeDirectionsIndependent(t *testing.T) {
	m := newTestMesh(nil)
	a := m.Send(0, 3, 8, 0) // east along row 0
	b := m.Send(3, 0, 8, 0) // west along row 0
	if a != b {
		t.Fatalf("opposite directions must not contend: %d vs %d", a, b)
	}
}

func TestEnergyPerFlitHop(t *testing.T) {
	var meter energy.Meter
	m := newTestMesh(&meter)
	m.Send(0, 3, 4, 0) // 3 hops x 4 flits = 12 flit-hops
	if got := meter.Count(energy.Router); got != 12 {
		t.Errorf("router events = %d, want 12", got)
	}
	if got := meter.PJ(energy.Router); got != 60 {
		t.Errorf("router pJ = %v, want 60", got)
	}
	if got := meter.PJ(energy.Link); got != 36 {
		t.Errorf("link pJ = %v, want 36", got)
	}
	if m.FlitHops() != 12 {
		t.Errorf("FlitHops = %d, want 12", m.FlitHops())
	}
}

// TestSendMonotonic: arrival is never before departure plus zero-load
// latency, and contention only adds delay.
func TestSendMonotonic(t *testing.T) {
	f := func(msgs []uint32) bool {
		m := newTestMesh(nil)
		for _, raw := range msgs {
			src := mem.CoreID(raw % 16)
			dst := mem.CoreID((raw >> 4) % 16)
			flits := int(raw>>8)%9 + 1
			depart := mem.Cycles(raw >> 16)
			got := m.Send(src, dst, flits, depart)
			if got < depart+m.LatencyNoContention(src, dst, flits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDimensions(t *testing.T) {
	m := New(8, 8, 2, nil, 1, 1)
	if m.Width() != 8 || m.Height() != 8 {
		t.Fatal("dimensions mismatch")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,4) must panic")
		}
	}()
	New(0, 4, 2, nil, 1, 1)
}
