package store_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"lard/internal/store"
)

// key returns a deterministic well-formed content address.
func key(n int) string {
	return fmt.Sprintf("%064x", n+1)
}

func val(n int) []byte { return []byte(fmt.Sprintf(`{"n":%d}`, n)) }

// backendContract exercises the behavior every Backend must share.
func backendContract(t *testing.T, b store.Backend) {
	t.Helper()
	if _, ok, err := b.Get(key(1)); ok || err != nil {
		t.Fatalf("empty Get = %v, %v", ok, err)
	}
	for i := 1; i <= 3; i++ {
		if err := b.Put(key(i), val(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	got, ok, err := b.Get(key(2))
	if err != nil || !ok || string(got) != string(val(2)) {
		t.Fatalf("Get = %q, %v, %v", got, ok, err)
	}
	// Returned bytes are private: mutating them must not corrupt the store.
	if len(got) > 0 {
		got[0] = 'X'
		again, _, _ := b.Get(key(2))
		if string(again) != string(val(2)) {
			t.Fatal("mutating returned bytes corrupted the store")
		}
	}
	// Overwrite is idempotent on the index.
	if err := b.Put(key(2), val(22)); err != nil {
		t.Fatal(err)
	}
	keys, err := b.Index()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{key(1), key(2), key(3)}
	if !reflect.DeepEqual(keys, want) {
		t.Fatalf("Index = %v, want %v", keys, want)
	}
	if err := b.Delete(key(2)); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete(key(2)); err != nil { // absent delete is a no-op
		t.Fatal(err)
	}
	if _, ok, _ := b.Get(key(2)); ok {
		t.Fatal("deleted key still readable")
	}
	if err := b.Put("../evil", val(0)); err == nil {
		t.Fatal("malformed key must be rejected")
	}
	st := b.Stats()
	if st.Entries != 2 && st.Entries != -1 { // -1: Remote does not count the peer
		t.Fatalf("Entries = %d, want 2", st.Entries)
	}
	if st.Gets == 0 || st.Puts == 0 || st.Deletes == 0 {
		t.Fatalf("counters not moving: %+v", st)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryContract(t *testing.T) {
	backendContract(t, store.NewMemory("mem", 0))
}

func TestDiskContract(t *testing.T) {
	d, err := store.NewDisk("disk", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, d)
}

func TestShardedContract(t *testing.T) {
	s := newSharded(t, t.TempDir(), 4)
	backendContract(t, s)
}

func TestReplicatedContract(t *testing.T) {
	r, err := store.NewReplicated("repl", store.NewMemory("owner", 0), store.NewMemory("local", 0), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, r)
}

func TestRemoteContract(t *testing.T) {
	srv := newFakePeer()
	defer srv.Close()
	r, err := store.NewRemote("peer", srv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	backendContract(t, r)
}

func TestMemoryLRUBound(t *testing.T) {
	m := store.NewMemory("mem", 2)
	for i := 0; i < 3; i++ {
		m.Put(key(i), val(i))
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if _, ok, _ := m.Get(key(0)); ok {
		t.Fatal("oldest entry must be evicted")
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// Recency refresh: touch key 1, insert key 3, key 2 goes.
	m.Get(key(1))
	m.Put(key(3), val(3))
	if _, ok, _ := m.Get(key(1)); !ok {
		t.Fatal("recently used entry must survive")
	}
	if _, ok, _ := m.Get(key(2)); ok {
		t.Fatal("least recently used entry must be evicted")
	}
}

func TestDiskPersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	d1, _ := store.NewDisk("d", dir)
	d1.Put(key(1), val(1))
	// Stray files never pollute the index.
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644)

	d2, err := store.NewDisk("d", dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := d2.Stats().Entries; got != 1 {
		t.Fatalf("reopened entries = %d, want 1", got)
	}
	b, ok, err := d2.Get(key(1))
	if err != nil || !ok || string(b) != string(val(1)) {
		t.Fatalf("reopened Get = %q, %v, %v", b, ok, err)
	}
	keys, _ := d2.Index()
	if len(keys) != 1 || keys[0] != key(1) {
		t.Fatalf("Index = %v", keys)
	}
}

// newSharded builds a sharded composite over n disk shards under dir.
func newSharded(t *testing.T, dir string, n int) *store.Sharded {
	t.Helper()
	children := make([]store.Backend, n)
	for i := range children {
		d, err := store.NewDisk(fmt.Sprintf("shard-%02d", i), filepath.Join(dir, fmt.Sprintf("shard-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		children[i] = d
	}
	s, err := store.NewSharded("sharded", children...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestShardedRouting(t *testing.T) {
	dir := t.TempDir()
	s := newSharded(t, dir, 4)
	const n = 64
	used := make(map[int]int)
	for i := 0; i < n; i++ {
		k := key(i)
		if s.ShardFor(k) != s.ShardFor(k) {
			t.Fatal("routing must be deterministic")
		}
		used[s.ShardFor(k)]++
		if err := s.Put(k, val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(used) != 4 {
		t.Fatalf("64 keys landed on %d of 4 shards: %v", len(used), used)
	}
	// Every key is readable through the composite, and lives on exactly its
	// owner shard.
	for i := 0; i < n; i++ {
		k := key(i)
		if b, ok, err := s.Get(k); err != nil || !ok || string(b) != string(val(i)) {
			t.Fatalf("Get %s = %q, %v, %v", k, b, ok, err)
		}
		owner := s.ShardFor(k)
		for j := 0; j < s.Shards(); j++ {
			_, ok, _ := s.Shard(j).Get(k)
			if ok != (j == owner) {
				t.Fatalf("key %s on shard %d, want only on %d", k, j, owner)
			}
		}
	}
	// A fresh composite over the same directories routes identically.
	s2 := newSharded(t, dir, 4)
	for i := 0; i < n; i++ {
		if s.ShardFor(key(i)) != s2.ShardFor(key(i)) {
			t.Fatal("routing must be stable across processes")
		}
	}
	keys, err := s2.Index()
	if err != nil || len(keys) != n {
		t.Fatalf("Index = %d keys (%v), want %d", len(keys), err, n)
	}
	st := s2.Stats()
	if st.Entries != n || len(st.Shards) != 4 {
		t.Fatalf("Stats = %+v", st)
	}
	sum := 0
	for _, sh := range st.Shards {
		sum += sh.Entries
	}
	if sum != n {
		t.Fatalf("per-shard entries sum to %d, want %d", sum, n)
	}
}

func TestReplicatedPromotionAndEviction(t *testing.T) {
	owner := store.NewMemory("owner", 0)
	local := store.NewMemory("local", 0)
	r, err := store.NewReplicated("repl", owner, local, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.NewReplicated("bad", owner, local, 0, 0); err == nil {
		t.Fatal("threshold 0 must be rejected")
	}

	for i := 0; i < 3; i++ {
		if err := r.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Puts write through to the owner only.
	if local.Len() != 0 {
		t.Fatalf("local has %d entries after puts, want 0", local.Len())
	}

	// First read: owner fetch, below threshold — no replica.
	r.Get(key(0))
	if st := r.Stats(); st.Replication.OwnerFetches != 1 || st.Replication.Promotions != 0 {
		t.Fatalf("after 1 read: %+v", st.Replication)
	}
	// Second read crosses threshold 2: promoted.
	r.Get(key(0))
	if st := r.Stats(); st.Replication.Promotions != 1 || st.Replication.Replicas != 1 {
		t.Fatalf("after 2 reads: %+v", st.Replication)
	}
	// Third read is a replica hit served from local, not the owner.
	ownerGets := owner.Stats().Gets
	b, ok, err := r.Get(key(0))
	if err != nil || !ok || string(b) != string(val(0)) {
		t.Fatalf("replica read = %q, %v, %v", b, ok, err)
	}
	if owner.Stats().Gets != ownerGets {
		t.Fatal("replica hit must not touch the owner")
	}
	if st := r.Stats(); st.Replication.ReplicaHits != 1 {
		t.Fatalf("replica hits = %+v", st.Replication)
	}

	// Promote keys 1 and 2; capacity 2 evicts key 0 back to owner-only.
	for _, i := range []int{1, 1, 2, 2} {
		r.Get(key(i))
	}
	st := r.Stats()
	if st.Replication.Promotions != 3 || st.Replication.ReplicaEvictions != 1 || st.Replication.Replicas != 2 {
		t.Fatalf("after capacity churn: %+v", st.Replication)
	}
	if _, ok, _ := local.Get(key(0)); ok {
		t.Fatal("evicted replica must leave the local backend")
	}
	// The owner still serves the evicted key.
	if b, ok, _ := r.Get(key(0)); !ok || string(b) != string(val(0)) {
		t.Fatalf("owner must still hold evicted key, got %q %v", b, ok)
	}

	// A Put to a replicated key refreshes the local copy too.
	if err := r.Put(key(1), val(11)); err != nil {
		t.Fatal(err)
	}
	if b, _, _ := local.Get(key(1)); string(b) != string(val(11)) {
		t.Fatalf("replica not refreshed on Put: %q", b)
	}
	// Delete clears both sides.
	if err := r.Delete(key(1)); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := owner.Get(key(1)); ok {
		t.Fatal("delete must clear the owner")
	}
	if _, ok, _ := local.Get(key(1)); ok {
		t.Fatal("delete must clear the local replica")
	}
}

// failingBackend errors on every read — a flaky replica disk.
type failingBackend struct{ store.Backend }

func (f failingBackend) Get(key string) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("simulated disk fault")
}

// TestReplicatedLocalFaultFallsBack: an I/O error on the local replica
// must not turn a servable read into an error — the owner holds the
// authoritative copy.
func TestReplicatedLocalFaultFallsBack(t *testing.T) {
	owner := store.NewMemory("owner", 0)
	good := store.NewMemory("local", 0)
	r, _ := store.NewReplicated("repl", owner, failingBackend{good}, 1, 0)
	r.Put(key(1), val(1))
	for i := 0; i < 2; i++ { // first read promotes; second hits the fault
		b, ok, err := r.Get(key(1))
		if err != nil || !ok || string(b) != string(val(1)) {
			t.Fatalf("read %d through faulty local: %q %v %v", i, b, ok, err)
		}
	}
}

// TestReplicatedIndexGet: audit reads bypass the reuse bookkeeping —
// enumerating a store must not promote cold keys or evict hot replicas.
func TestReplicatedIndexGet(t *testing.T) {
	r, _ := store.NewReplicated("repl", store.NewMemory("owner", 0), store.NewMemory("local", 0), 1, 0)
	r.Put(key(1), val(1))
	for i := 0; i < 3; i++ {
		if b, ok, err := r.IndexGet(key(1)); err != nil || !ok || string(b) != string(val(1)) {
			t.Fatalf("IndexGet = %q %v %v", b, ok, err)
		}
	}
	rs := r.Stats().Replication
	if rs.OwnerFetches != 0 || rs.Promotions != 0 || rs.Replicas != 0 {
		t.Fatalf("IndexGet moved the replication ledger: %+v", rs)
	}
}

// TestReplicatedLostReplica covers the local backend dropping a promoted
// replica on its own (its LRU bound): the read falls back to the owner.
func TestReplicatedLostReplica(t *testing.T) {
	owner := store.NewMemory("owner", 0)
	local := store.NewMemory("local", 1) // local evicts on its own
	r, _ := store.NewReplicated("repl", owner, local, 1, 0)
	r.Put(key(1), val(1))
	r.Put(key(2), val(2))
	r.Get(key(1)) // promoted
	r.Get(key(2)) // promoted; local bound evicts key 1's replica
	b, ok, err := r.Get(key(1))
	if err != nil || !ok || string(b) != string(val(1)) {
		t.Fatalf("lost replica must fall back to owner: %q %v %v", b, ok, err)
	}
}

func TestReplicatedConcurrent(t *testing.T) {
	r, _ := store.NewReplicated("repl", store.NewMemory("owner", 0), store.NewMemory("local", 0), 2, 4)
	const keys = 16
	for i := 0; i < keys; i++ {
		r.Put(key(i), val(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (w + i) % keys
				b, ok, err := r.Get(key(k))
				if err != nil || !ok || string(b) != string(val(k)) {
					t.Errorf("Get %d = %q %v %v", k, b, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats().Replication
	if st.Promotions == 0 {
		t.Fatalf("concurrent churn produced no promotions: %+v", st)
	}
	if st.Replicas > 4 {
		t.Fatalf("replica capacity exceeded: %+v", st)
	}
	// A sequentially hot key always ends up replica-served.
	for i := 0; i < 3; i++ {
		r.Get(key(0))
	}
	if st := r.Stats().Replication; st.ReplicaHits == 0 {
		t.Fatalf("hot key never served from replica: %+v", st)
	}
}

// newFakePeer is a minimal in-memory implementation of the server's
// /v1/results surface, for exercising Remote without importing the server.
func newFakePeer() *httptest.Server {
	var mu sync.Mutex
	entries := make(map[string][]byte)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/results", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		keys := make([]string, 0, len(entries))
		for k := range entries {
			keys = append(keys, k)
		}
		// The real server sorts; the contract test needs it too.
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		fmt.Fprintf(w, `{"keys":[`)
		for i, k := range keys {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%q", k)
		}
		fmt.Fprint(w, `]}`)
	})
	mux.HandleFunc("GET /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		b, ok := entries[r.PathValue("key")]
		mu.Unlock()
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("PUT /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		mu.Lock()
		entries[r.PathValue("key")] = b
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("DELETE /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		delete(entries, r.PathValue("key"))
		mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return httptest.NewServer(mux)
}

func TestRemoteErrors(t *testing.T) {
	if _, err := store.NewRemote("p", "not a url", nil); err == nil {
		t.Fatal("invalid URL must be rejected")
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	r, _ := store.NewRemote("p", srv.URL, nil)
	if _, _, err := r.Get(key(1)); err == nil {
		t.Fatal("peer 500 must surface as an error")
	}
	if err := r.Put(key(1), val(1)); err == nil {
		t.Fatal("peer 500 on put must surface as an error")
	}
	if _, err := r.Index(); err == nil {
		t.Fatal("peer 500 on index must surface as an error")
	}
}
