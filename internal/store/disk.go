package store

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Disk is the on-disk JSON backend, extracted from the original
// resultstore disk layer with its layout and atomicity guarantees intact:
// one file per key at dir/<key[:2]>/<key>.json, written via temp file +
// rename so concurrent writers and crashed processes can never leave a
// torn entry behind. Values round-trip byte-identically, so the
// content-address contract (same key, same bytes) survives the backend.
type Disk struct {
	name string
	dir  string

	mu      sync.Mutex
	entries int
	counters
}

// NewDisk opens (creating if missing) a disk backend rooted at dir. The
// initial entry count comes from one directory walk, so Stats.Entries is
// exact from the start.
func NewDisk(name, dir string) (*Disk, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: disk %s: empty directory", name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk %s: %w", name, err)
	}
	d := &Disk{name: name, dir: dir}
	keys, err := d.Index()
	if err != nil {
		return nil, err
	}
	d.entries = len(keys)
	return d, nil
}

// Dir returns the backend's root directory.
func (d *Disk) Dir() string { return d.dir }

// Path returns the entry file for key, sharded by the first hash byte so
// no single directory grows unboundedly.
func (d *Disk) Path(key string) string {
	return filepath.Join(d.dir, key[:2], key+".json")
}

// Get implements Backend.
func (d *Disk) Get(key string) ([]byte, bool, error) {
	d.mu.Lock()
	d.gets++
	d.mu.Unlock()
	if !ValidKey(key) {
		d.count(&d.misses)
		return nil, false, nil
	}
	b, err := os.ReadFile(d.Path(key))
	if os.IsNotExist(err) {
		d.count(&d.misses)
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: disk %s: read %s: %w", d.name, key, err)
	}
	d.count(&d.hits)
	return b, true, nil
}

// Put implements Backend.
func (d *Disk) Put(key string, val []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: disk %s: invalid key %q", d.name, key)
	}
	path := d.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("store: disk %s: %w", d.name, err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: disk %s: %w", d.name, err)
	}
	if _, err := tmp.Write(val); err != nil {
		// Cleanup on an already-failing path: the write error is the one
		// the caller acts on, so these discards are deliberate.
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: disk %s: write %s: %w", d.name, key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: disk %s: close %s: %w", d.name, key, err)
	}
	// Whether this put creates or overwrites decides the entry-count
	// bookkeeping; check under the lock so concurrent puts of the same new
	// key count it once.
	d.mu.Lock()
	defer d.mu.Unlock()
	d.puts++
	_, statErr := os.Stat(path)
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return fmt.Errorf("store: disk %s: commit %s: %w", d.name, key, err)
	}
	if os.IsNotExist(statErr) {
		d.entries++
	}
	return nil
}

// Delete implements Backend.
func (d *Disk) Delete(key string) error {
	if !ValidKey(key) {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deletes++
	err := os.Remove(d.Path(key))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: disk %s: delete %s: %w", d.name, key, err)
	}
	d.entries--
	return nil
}

// Index implements Backend. It collects keys from filenames alone — no
// entry is opened or decoded — so indexing a large store costs one
// directory walk, not one JSON parse per entry.
func (d *Disk) Index() ([]string, error) {
	var keys []string
	err := filepath.WalkDir(d.dir, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			return nil
		}
		key := strings.TrimSuffix(de.Name(), ".json")
		if ValidKey(key) { // skip temp files and stray content
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: disk %s: index: %w", d.name, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Stats implements Backend.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := Stats{Name: d.name, Kind: "disk", Entries: d.entries}
	d.counters.snapshot(&s)
	return s
}

// Close implements Backend.
func (d *Disk) Close() error { return nil }

// count bumps one counter under the lock.
func (d *Disk) count(c *uint64) {
	d.mu.Lock()
	*c++
	d.mu.Unlock()
}
