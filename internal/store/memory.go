package store

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
)

// Memory is an in-process Backend: a map with an optional LRU entry bound.
// It is the replica target for diskless nodes and the workhorse of tests
// and benchmarks. Values are copied on the way in and out, so callers can
// never alias the store's internal buffers.
type Memory struct {
	name string
	max  int

	mu      sync.Mutex
	entries map[string]*list.Element // of *memItem
	lru     *list.List               // front = most recently used
	counters
}

// memItem is one Memory entry.
type memItem struct {
	key string
	val []byte
}

// NewMemory returns a memory backend holding at most maxEntries values,
// evicting least-recently-used beyond that (0 = unbounded).
func NewMemory(name string, maxEntries int) *Memory {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Memory{
		name:    name,
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// Get implements Backend.
func (m *Memory) Get(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	el, ok := m.entries[key]
	if !ok {
		m.misses++
		return nil, false, nil
	}
	m.hits++
	m.lru.MoveToFront(el)
	it := el.Value.(*memItem)
	out := make([]byte, len(it.val))
	copy(out, it.val)
	return out, true, nil
}

// Put implements Backend.
func (m *Memory) Put(key string, val []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: memory %s: invalid key %q", m.name, key)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if el, ok := m.entries[key]; ok {
		el.Value.(*memItem).val = cp
		m.lru.MoveToFront(el)
		return nil
	}
	m.entries[key] = m.lru.PushFront(&memItem{key: key, val: cp})
	for m.max > 0 && m.lru.Len() > m.max {
		oldest := m.lru.Back()
		m.lru.Remove(oldest)
		delete(m.entries, oldest.Value.(*memItem).key)
		m.evictions++
	}
	return nil
}

// Delete implements Backend.
func (m *Memory) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.deletes++
	if el, ok := m.entries[key]; ok {
		m.lru.Remove(el)
		delete(m.entries, key)
	}
	return nil
}

// Index implements Backend.
func (m *Memory) Index() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Len returns the current entry count.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Stats implements Backend.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Name: m.name, Kind: "memory", Entries: len(m.entries)}
	m.counters.snapshot(&s)
	return s
}

// Close implements Backend.
func (m *Memory) Close() error { return nil }
