package store

import (
	"os"
	"time"
)

// Location describes where a key's bytes currently live relative to this
// process, as far as a backend can tell without touching the network or
// decoding anything. It is the placement signal the execution engine's
// locality-aware dispatcher consumes: work on a key that is already held
// nearby is cheaper than work that must cross to an owner.
type Location struct {
	// Held reports that a local (same-process or same-disk) backend holds
	// the key right now.
	Held bool
	// Replica reports that the holding backend is the replica side of a
	// locality-aware replicated tier (the hottest class: the key earned
	// its way next to this reader).
	Replica bool
	// Shard is the owning shard index of a sharded composite, -1 when the
	// backend does not shard. Dispatchers use it to keep keys of one shard
	// on one worker lane.
	Shard int
}

// Locator is an optional Backend refinement: a cheap, side-effect-free
// placement probe. Unlike Get, Locate must not count traffic, touch LRU
// recency, bump reuse counters, or cross the network — probing placement
// must never change placement.
type Locator interface {
	Locate(key string) Location
}

// Locate implements Locator: one file stat, no counters.
func (d *Disk) Locate(key string) Location {
	if !ValidKey(key) {
		return Location{Shard: -1}
	}
	_, err := os.Stat(d.Path(key))
	return Location{Held: err == nil, Shard: -1}
}

// Locate implements Locator: a map probe that leaves LRU order alone.
func (m *Memory) Locate(key string) Location {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[key]
	return Location{Held: ok, Shard: -1}
}

// Locate implements Locator: the owning shard's location, stamped with the
// shard index so dispatchers can build per-shard affinity.
func (s *Sharded) Locate(key string) Location {
	shard := s.ShardFor(key)
	loc := Location{Shard: shard}
	if l, ok := s.children[shard].(Locator); ok {
		child := l.Locate(key)
		loc.Held, loc.Replica = child.Held, child.Replica
	}
	return loc
}

// Locate implements Locator: a key held by the local (replica) side is the
// hottest placement there is; the owner side — often a Remote peer — is
// deliberately not probed, because a placement probe must stay free.
func (r *Replicated) Locate(key string) Location {
	if l, ok := r.local.(Locator); ok {
		loc := l.Locate(key)
		if loc.Held {
			loc.Replica = true
			loc.Shard = -1
			return loc
		}
	}
	return Location{Shard: -1}
}

// ModTimer is an optional Backend refinement: the last-modified time of a
// stored entry, for age-based garbage collection. ok=false means the
// backend does not hold the key (or cannot date it).
type ModTimer interface {
	ModTime(key string) (time.Time, bool, error)
}

// ModTime implements ModTimer via one file stat.
func (d *Disk) ModTime(key string) (time.Time, bool, error) {
	if !ValidKey(key) {
		return time.Time{}, false, nil
	}
	fi, err := os.Stat(d.Path(key))
	if os.IsNotExist(err) {
		return time.Time{}, false, nil
	}
	if err != nil {
		return time.Time{}, false, err
	}
	return fi.ModTime(), true, nil
}

// ModTime implements ModTimer by routing to the owning shard.
func (s *Sharded) ModTime(key string) (time.Time, bool, error) {
	if mt, ok := s.children[s.ShardFor(key)].(ModTimer); ok {
		return mt.ModTime(key)
	}
	return time.Time{}, false, nil
}

// ModTime implements ModTimer against the owner backend: GC reasons about
// the authoritative copy, not about replicas.
func (r *Replicated) ModTime(key string) (time.Time, bool, error) {
	if mt, ok := r.owner.(ModTimer); ok {
		return mt.ModTime(key)
	}
	return time.Time{}, false, nil
}
