package store

import (
	"strings"
	"testing"
	"time"
)

// locKey builds a distinct valid content address per test case.
func locKey(b byte) string { return strings.Repeat(string([]byte{b}), 64) }

// TestLocate covers the placement probe across the backend zoo, and pins
// its side-effect freedom: probing must not move a single counter.
func TestLocate(t *testing.T) {
	held, absent := locKey('a'), locKey('b')

	mem := NewMemory("m", 0)
	if err := mem.Put(held, []byte("x")); err != nil {
		t.Fatal(err)
	}
	disk, err := NewDisk("d", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := disk.Put(held, []byte("x")); err != nil {
		t.Fatal(err)
	}

	for name, b := range map[string]Backend{"memory": mem, "disk": disk} {
		l := b.(Locator)
		before := b.Stats()
		if loc := l.Locate(held); !loc.Held || loc.Replica || loc.Shard != -1 {
			t.Errorf("%s: Locate(held) = %+v", name, loc)
		}
		if loc := l.Locate(absent); loc.Held {
			t.Errorf("%s: Locate(absent) = %+v", name, loc)
		}
		if after := b.Stats(); after.Gets != before.Gets || after.Hits != before.Hits || after.Misses != before.Misses {
			t.Errorf("%s: Locate moved counters: %+v -> %+v", name, before, after)
		}
	}

	// Sharded: the probe names the owning shard whether or not it holds
	// the key.
	shards := []Backend{NewMemory("s0", 0), NewMemory("s1", 0), NewMemory("s2", 0)}
	sh, err := NewSharded("sharded", shards...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Put(held, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if loc := sh.Locate(held); !loc.Held || loc.Shard != sh.ShardFor(held) {
		t.Errorf("sharded Locate(held) = %+v, want held on shard %d", loc, sh.ShardFor(held))
	}
	if loc := sh.Locate(absent); loc.Held || loc.Shard != sh.ShardFor(absent) {
		t.Errorf("sharded Locate(absent) = %+v", loc)
	}

	// Replicated: only a local replica reads as held (and replica-class);
	// the owner side is never probed.
	owner := NewMemory("owner", 0)
	local := NewMemory("local", 0)
	rep, err := NewReplicated("rep", owner, local, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Put(held, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if loc := rep.Locate(held); loc.Held {
		t.Errorf("owner-only key reads as held: %+v", loc)
	}
	// Two gets promote (threshold 1 fires on the first reuse observation).
	rep.Get(held)
	rep.Get(held)
	if loc := rep.Locate(held); !loc.Held || !loc.Replica {
		t.Errorf("promoted key not replica-class: %+v (replication %+v)", loc, rep.Stats().Replication)
	}
}

// TestModTime covers age probes on disk, through a sharded composite, and
// their absence on memory.
func TestModTime(t *testing.T) {
	key := locKey('c')
	disk, err := NewDisk("d", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := disk.ModTime(key); ok {
		t.Fatal("absent key has a mod time")
	}
	if err := disk.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	mt, ok, err := disk.ModTime(key)
	if err != nil || !ok {
		t.Fatalf("ModTime = %v %v", ok, err)
	}
	if d := time.Since(mt); d < 0 || d > time.Minute {
		t.Fatalf("mod time %v is not recent", mt)
	}

	sh, err := NewSharded("sharded", disk, NewMemory("m", 0))
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err = sh.ModTime(key)
	wantOK := sh.ShardFor(key) == 0 // only the disk shard can date entries
	if err != nil || ok != wantOK {
		t.Fatalf("sharded ModTime ok = %v, want %v (err %v)", ok, wantOK, err)
	}
}
