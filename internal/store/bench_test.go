package store_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"lard/internal/store"
)

// benchEntry approximates one encoded result envelope (~8 KB of JSON).
func benchEntry() []byte {
	b := make([]byte, 8192)
	for i := range b {
		b[i] = byte('a' + i%16)
	}
	return b
}

// BenchmarkShardedGet measures a read through the sharded composite: one
// rendezvous routing decision plus the owning disk shard's file read.
func BenchmarkShardedGet(b *testing.B) {
	dir := b.TempDir()
	children := make([]store.Backend, 8)
	for i := range children {
		d, err := store.NewDisk(fmt.Sprintf("shard-%d", i), filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		children[i] = d
	}
	s, err := store.NewSharded("sharded", children...)
	if err != nil {
		b.Fatal(err)
	}
	val := benchEntry()
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := s.Put(key(i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := s.Get(key(i % keys)); !ok || err != nil {
			b.Fatalf("miss: %v", err)
		}
	}
}

// BenchmarkReplicaPromotion measures the locality win end to end: reads
// through the replication tier where every key starts owner-only (a disk
// shard), crosses the reuse threshold, and is thereafter served from the
// local memory backend.
func BenchmarkReplicaPromotion(b *testing.B) {
	owner, err := store.NewDisk("owner", b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	r, err := store.NewReplicated("repl", owner, store.NewMemory("local", 0), 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	val := benchEntry()
	const keys = 64
	for i := 0; i < keys; i++ {
		if err := r.Put(key(i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := r.Get(key(i % keys)); !ok || err != nil {
			b.Fatalf("miss: %v", err)
		}
	}
	b.StopTimer()
	st := r.Stats().Replication
	b.ReportMetric(float64(st.ReplicaHits)/float64(b.N)*100, "replica-hit-%")
}
