// Package store is the sharded storage tier beneath the result cache: a
// small Backend abstraction over content-addressed blobs (key -> encoded
// entry bytes) with composable implementations.
//
//   - Memory: an LRU-bounded in-process map, for replica caches and tests.
//   - Disk:   one file per key under a directory (the layout extracted from
//     the original resultstore disk layer), written atomically.
//   - Sharded: a composite that routes every key to one of N child backends
//     by rendezvous (highest-random-weight) consistent hashing, so shards
//     can live on different disks — or different machines, via Remote.
//   - Remote: an HTTP client for a peer lard-server's /v1/results endpoints,
//     letting stores stack across processes.
//   - Replicated: the locality-aware tier in the spirit of the paper's
//     reuse-threshold protocol — reads are served from a local backend when
//     a replica exists, otherwise fetched from the owner backend, and a key
//     whose reuse crosses a threshold is promoted into the local backend
//     (bounded by a replica capacity, with eviction back to owner-only).
//
// Backends move opaque bytes: the envelope format (spec + result JSON)
// belongs to internal/resultstore, which validates on decode. All backends
// are safe for concurrent use.
package store

import (
	"crypto/sha256"
	"hash/fnv"
)

// Backend is a content-addressed blob store. Keys are 64-hex SHA-256
// content addresses (see ValidKey); values are opaque encoded entries.
type Backend interface {
	// Get returns the stored bytes for key, or ok=false on a miss.
	Get(key string) ([]byte, bool, error)
	// Put stores val under key, overwriting any previous value.
	Put(key string, val []byte) error
	// Delete removes key; deleting an absent key is not an error.
	Delete(key string) error
	// Index returns every stored key, sorted. It never decodes values.
	Index() ([]string, error)
	// Stats returns a snapshot of the backend's counters; composites nest
	// their children under Shards.
	Stats() Stats
	// Close releases resources. A closed backend must not be used again.
	Close() error
}

// Stats is a point-in-time snapshot of one backend's traffic. Composite
// backends aggregate their own routing counters and nest per-child
// snapshots under Shards, so one Stats value describes a whole stack.
type Stats struct {
	// Name identifies the backend instance ("shard-02", "peer").
	Name string `json:"name"`
	// Kind is the implementation ("memory", "disk", "sharded", "remote",
	// "replicated").
	Kind string `json:"kind"`
	// Entries is the number of keys currently stored (-1 when unknown).
	Entries int `json:"entries"`
	// Gets counts Get calls; Hits/Misses partition their outcomes.
	Gets   uint64 `json:"gets"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts and Deletes count mutations.
	Puts    uint64 `json:"puts"`
	Deletes uint64 `json:"deletes"`
	// Evictions counts entries dropped by a capacity bound.
	Evictions uint64 `json:"evictions,omitempty"`
	// Replication carries the locality-aware counters of a Replicated
	// backend (nil elsewhere).
	Replication *ReplicationStats `json:"replication,omitempty"`
	// Shards nests the children of a composite backend.
	Shards []Stats `json:"shards,omitempty"`
}

// ReplicationStats counts the locality-aware replicator's behavior: how
// often reads were served from the local replica set versus fetched from
// the owner, and how the replica set churned.
type ReplicationStats struct {
	// ReplicaHits counts Gets served from the local backend's replica.
	ReplicaHits uint64 `json:"replica_hits"`
	// OwnerFetches counts Gets that went to the owner backend.
	OwnerFetches uint64 `json:"owner_fetches"`
	// Promotions counts keys copied into the local backend after their
	// reuse crossed the threshold.
	Promotions uint64 `json:"promotions"`
	// ReplicaEvictions counts replicas dropped by the capacity bound
	// (the key reverts to owner-only).
	ReplicaEvictions uint64 `json:"replica_evictions"`
	// Replicas is the current local replica count.
	Replicas int `json:"replicas"`
}

// counters is the mutable half of Stats, embedded by implementations and
// guarded by each backend's own mutex.
type counters struct {
	gets, hits, misses, puts, deletes, evictions uint64
}

// snapshot fills the traffic fields of a Stats from the counters.
func (c *counters) snapshot(s *Stats) {
	s.Gets, s.Hits, s.Misses = c.gets, c.hits, c.misses
	s.Puts, s.Deletes, s.Evictions = c.puts, c.deletes, c.evictions
}

// ValidKey reports whether key is a well-formed content address: 64
// lowercase hex digits. Backends that touch the filesystem or the network
// reject anything else, so a malformed or path-traversing key can never
// escape the store.
func ValidKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// rendezvousScore is the highest-random-weight hash of (key, shard): the
// shard with the maximal score owns the key. FNV-1a is stable across
// processes and Go versions, which matters because shard routing addresses
// data already on disk.
func rendezvousScore(key string, shard int) uint64 {
	h := fnv.New64a()
	// hash.Hash.Write is documented never to return an error; the
	// discards make that contract explicit for the error linter.
	_, _ = h.Write([]byte(key))
	_, _ = h.Write([]byte{'#', byte(shard), byte(shard >> 8)})
	return h.Sum64()
}
