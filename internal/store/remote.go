package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// maxRemoteEntry bounds a fetched entry; a peer streaming more than this
// is misbehaving, not serving a result.
const maxRemoteEntry = 64 << 20

// Remote is a Backend that proxies to a peer lard-server's /v1/results
// endpoints, so stores stack across processes: a node can treat another
// node's whole store — itself possibly sharded or replicated — as one
// backend. Peering must stay acyclic (hub-and-spoke): two servers naming
// each other as peers would forward a miss back and forth.
type Remote struct {
	name string
	base string // URL prefix without trailing slash
	c    *http.Client

	mu sync.Mutex
	counters
}

// NewRemote builds a remote backend for the lard-server at baseURL (e.g.
// "http://peer:8347"). A nil client gets a 30-second-timeout default.
func NewRemote(name, baseURL string, client *http.Client) (*Remote, error) {
	u, err := url.Parse(baseURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("store: remote %s: invalid peer URL %q", name, baseURL)
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Remote{name: name, base: strings.TrimRight(baseURL, "/"), c: client}, nil
}

// URL returns the peer base URL.
func (r *Remote) URL() string { return r.base }

// Get implements Backend.
func (r *Remote) Get(key string) ([]byte, bool, error) {
	r.count(&r.gets)
	if !ValidKey(key) {
		r.count(&r.misses)
		return nil, false, nil
	}
	resp, err := r.c.Get(r.base + "/v1/results/" + key)
	if err != nil {
		return nil, false, fmt.Errorf("store: remote %s: get %s: %w", r.name, key, err)
	}
	defer resp.Body.Close() //lint:allow checkederr read-side close after the body is consumed is best-effort
	if resp.StatusCode == http.StatusNotFound {
		// Drain so the transport can reuse the connection; a failed drain
		// only costs keep-alive, never correctness.
		_, _ = io.Copy(io.Discard, resp.Body)
		r.count(&r.misses)
		return nil, false, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("store: remote %s: get %s: peer answered %s", r.name, key, resp.Status)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteEntry))
	if err != nil {
		return nil, false, fmt.Errorf("store: remote %s: get %s: %w", r.name, key, err)
	}
	r.count(&r.hits)
	return b, true, nil
}

// Put implements Backend.
func (r *Remote) Put(key string, val []byte) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: remote %s: invalid key %q", r.name, key)
	}
	r.count(&r.puts)
	req, err := http.NewRequest(http.MethodPut, r.base+"/v1/results/"+key, bytes.NewReader(val))
	if err != nil {
		return fmt.Errorf("store: remote %s: put %s: %w", r.name, key, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.c.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote %s: put %s: %w", r.name, key, err)
	}
	defer resp.Body.Close()               //lint:allow checkederr read-side close after the body is consumed is best-effort
	_, _ = io.Copy(io.Discard, resp.Body) // best-effort drain for connection reuse
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("store: remote %s: put %s: peer answered %s", r.name, key, resp.Status)
	}
	return nil
}

// Delete implements Backend.
func (r *Remote) Delete(key string) error {
	if !ValidKey(key) {
		return nil
	}
	r.count(&r.deletes)
	req, err := http.NewRequest(http.MethodDelete, r.base+"/v1/results/"+key, nil)
	if err != nil {
		return fmt.Errorf("store: remote %s: delete %s: %w", r.name, key, err)
	}
	resp, err := r.c.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote %s: delete %s: %w", r.name, key, err)
	}
	defer resp.Body.Close()               //lint:allow checkederr read-side close after the body is consumed is best-effort
	_, _ = io.Copy(io.Discard, resp.Body) // best-effort drain for connection reuse
	if resp.StatusCode/100 != 2 && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("store: remote %s: delete %s: peer answered %s", r.name, key, resp.Status)
	}
	return nil
}

// Index implements Backend via GET /v1/results?keys=1, the keys-only
// listing the server serves without decoding entries.
func (r *Remote) Index() ([]string, error) {
	resp, err := r.c.Get(r.base + "/v1/results?keys=1")
	if err != nil {
		return nil, fmt.Errorf("store: remote %s: index: %w", r.name, err)
	}
	defer resp.Body.Close() //lint:allow checkederr read-side close after the body is consumed is best-effort
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store: remote %s: index: peer answered %s", r.name, resp.Status)
	}
	var body struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRemoteEntry)).Decode(&body); err != nil {
		return nil, fmt.Errorf("store: remote %s: index: %w", r.name, err)
	}
	return body.Keys, nil
}

// Stats implements Backend. Entries is unknown (-1): counting the peer's
// store on every scrape would turn a local snapshot into a network call.
func (r *Remote) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{Name: r.name, Kind: "remote", Entries: -1}
	r.counters.snapshot(&s)
	return s
}

// Close implements Backend.
func (r *Remote) Close() error {
	r.c.CloseIdleConnections()
	return nil
}

// count bumps one counter under the lock.
func (r *Remote) count(c *uint64) {
	r.mu.Lock()
	*c++
	r.mu.Unlock()
}
