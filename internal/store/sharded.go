package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Sharded is a composite Backend that routes every key to exactly one of N
// child backends by rendezvous consistent hashing: each (key, shard) pair
// scores deterministically and the highest score owns the key. Routing is
// stateless and stable across processes — the same key always lands on the
// same shard — and adding a shard moves only ~1/(N+1) of the keyspace,
// never shuffling keys between surviving shards.
type Sharded struct {
	name     string
	children []Backend

	mu sync.Mutex
	counters
}

// NewSharded builds a sharded composite over the given children (at least
// one). Children may be any Backend — disks on separate spindles, Remote
// peers, or further composites.
func NewSharded(name string, children ...Backend) (*Sharded, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("store: sharded %s: no children", name)
	}
	return &Sharded{name: name, children: children}, nil
}

// ShardFor returns the index of the child backend that owns key.
func (s *Sharded) ShardFor(key string) int {
	best, bestScore := 0, uint64(0)
	for i := range s.children {
		if score := rendezvousScore(key, i); i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// Shard returns the i-th child backend (for per-shard introspection).
func (s *Sharded) Shard(i int) Backend { return s.children[i] }

// Shards returns the number of children.
func (s *Sharded) Shards() int { return len(s.children) }

// Path returns the owning shard's entry path for key, when that shard can
// name one (a Disk child); otherwise "".
func (s *Sharded) Path(key string) string {
	if p, ok := s.children[s.ShardFor(key)].(interface{ Path(string) string }); ok {
		return p.Path(key)
	}
	return ""
}

// Get implements Backend.
func (s *Sharded) Get(key string) ([]byte, bool, error) {
	b, ok, err := s.children[s.ShardFor(key)].Get(key)
	s.mu.Lock()
	s.gets++
	if err == nil && ok {
		s.hits++
	} else if err == nil {
		s.misses++
	}
	s.mu.Unlock()
	return b, ok, err
}

// Put implements Backend.
func (s *Sharded) Put(key string, val []byte) error {
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return s.children[s.ShardFor(key)].Put(key, val)
}

// Delete implements Backend.
func (s *Sharded) Delete(key string) error {
	s.mu.Lock()
	s.deletes++
	s.mu.Unlock()
	return s.children[s.ShardFor(key)].Delete(key)
}

// Index implements Backend: the sorted union of every child's keys.
func (s *Sharded) Index() ([]string, error) {
	var keys []string
	for _, c := range s.children {
		ks, err := c.Index()
		if err != nil {
			return nil, err
		}
		keys = append(keys, ks...)
	}
	sort.Strings(keys)
	// Children own disjoint keyspaces by construction, but a re-sharded
	// directory can leave strays behind; dedup so the index stays a set.
	out := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			out = append(out, k)
		}
	}
	return out, nil
}

// Stats implements Backend: the composite's routing counters with one
// nested snapshot per shard. Entries is the sum over shards (or -1 if any
// shard does not know its count).
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	st := Stats{Name: s.name, Kind: "sharded"}
	s.counters.snapshot(&st)
	s.mu.Unlock()
	for _, c := range s.children {
		cs := c.Stats()
		if st.Entries >= 0 && cs.Entries >= 0 {
			st.Entries += cs.Entries
		} else {
			st.Entries = -1
		}
		st.Shards = append(st.Shards, cs)
	}
	return st
}

// Close implements Backend: closes every child, returning the first error.
func (s *Sharded) Close() error {
	var errs []error
	for _, c := range s.children {
		errs = append(errs, c.Close())
	}
	return errors.Join(errs...)
}
