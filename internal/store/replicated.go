package store

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// maxTrackedKeys bounds the reuse-counter table. Like the paper's
// classifier — which tracks locality in a bounded per-line slot, not an
// unbounded side table — the replicator forgets the coldest counters
// rather than growing without bound.
const maxTrackedKeys = 1 << 16

// Replicated is the locality-aware replication tier, the storage analogue
// of the paper's reuse-threshold (RT) protocol. Every key has one owner —
// the owner backend, typically a Sharded composite or a Remote peer — and
// reads normally fetch from it. A key whose observed reuse reaches the
// threshold is promoted: its bytes are copied into the local backend (the
// reading node's own memory or disk shard), and subsequent reads are
// served locally instead of crossing to the owner — exactly the paper's
// "replicate only what is reused, near the reader" placement, applied to
// stored results instead of cache lines.
//
// The replica set is bounded by capacity: promoting beyond it evicts the
// least-recently-used replica back to owner-only (the owner always holds
// the authoritative copy, so eviction is a delete, never a writeback).
// Writes go to the owner, refreshing a local replica only when one exists,
// and deletes clear both sides.
type Replicated struct {
	name      string
	owner     Backend
	local     Backend
	threshold int
	capacity  int // 0 = unbounded

	mu       sync.Mutex
	reuse    map[string]*list.Element // of *reuseEntry, LRU-bounded
	reuseLRU *list.List
	replicas map[string]*list.Element // of string key, front = most recent
	repLRU   *list.List
	rstats   ReplicationStats
	counters
}

// reuseEntry is one reuse counter.
type reuseEntry struct {
	key   string
	count int
}

// NewReplicated builds the replication tier: owner is the authoritative
// backend, local the reader-side replica target, threshold the reuse count
// that triggers promotion (>= 1), capacity the replica bound (0 =
// unbounded, subject to the local backend's own limits).
func NewReplicated(name string, owner, local Backend, threshold, capacity int) (*Replicated, error) {
	if owner == nil || local == nil {
		return nil, fmt.Errorf("store: replicated %s: owner and local backends are required", name)
	}
	if threshold < 1 {
		return nil, fmt.Errorf("store: replicated %s: replication threshold %d, want >= 1 (the reuse count that earns a local replica)", name, threshold)
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Replicated{
		name:      name,
		owner:     owner,
		local:     local,
		threshold: threshold,
		capacity:  capacity,
		reuse:     make(map[string]*list.Element),
		reuseLRU:  list.New(),
		replicas:  make(map[string]*list.Element),
		repLRU:    list.New(),
	}, nil
}

// Owner returns the authoritative backend.
func (r *Replicated) Owner() Backend { return r.owner }

// Local returns the reader-side replica backend.
func (r *Replicated) Local() Backend { return r.local }

// Threshold returns the promotion reuse threshold.
func (r *Replicated) Threshold() int { return r.threshold }

// Path delegates to the owner backend when it can name entry paths.
func (r *Replicated) Path(key string) string {
	if p, ok := r.owner.(interface{ Path(string) string }); ok {
		return p.Path(key)
	}
	return ""
}

// Get implements Backend: local replica first, owner on a replica miss,
// with threshold-gated promotion.
func (r *Replicated) Get(key string) ([]byte, bool, error) {
	r.mu.Lock()
	r.gets++
	replicated := r.replicas[key] != nil
	if replicated {
		r.repLRU.MoveToFront(r.replicas[key])
	}
	r.mu.Unlock()

	if replicated {
		b, ok, err := r.local.Get(key)
		if err == nil && ok {
			r.mu.Lock()
			r.hits++
			r.rstats.ReplicaHits++
			r.mu.Unlock()
			return b, true, nil
		}
		// The local backend lost the replica (its own eviction bound, a
		// wiped directory) or failed outright; either way the owner holds
		// the authoritative copy — fall through to it and drop the stale
		// bookkeeping. A replica is an optimization and must never turn a
		// servable read into an error.
		r.mu.Lock()
		if el, ok := r.replicas[key]; ok {
			r.repLRU.Remove(el)
			delete(r.replicas, key)
		}
		r.mu.Unlock()
	}

	b, ok, err := r.owner.Get(key)
	if err != nil || !ok {
		if err == nil {
			r.count2(&r.misses, nil)
		}
		return nil, false, err
	}
	r.mu.Lock()
	r.hits++
	r.rstats.OwnerFetches++
	promote := r.bumpReuseLocked(key) >= r.threshold
	r.mu.Unlock()
	if promote {
		if perr := r.promote(key, b); perr != nil {
			// Promotion is an optimization; a failing local backend must
			// not turn a successful owner read into an error.
			return b, true, nil
		}
	}
	return b, true, nil
}

// bumpReuseLocked increments key's reuse counter, evicting the coldest
// counter beyond the tracking bound. Callers hold r.mu.
func (r *Replicated) bumpReuseLocked(key string) int {
	if el, ok := r.reuse[key]; ok {
		e := el.Value.(*reuseEntry)
		e.count++
		r.reuseLRU.MoveToFront(el)
		return e.count
	}
	r.reuse[key] = r.reuseLRU.PushFront(&reuseEntry{key: key, count: 1})
	for r.reuseLRU.Len() > maxTrackedKeys {
		oldest := r.reuseLRU.Back()
		r.reuseLRU.Remove(oldest)
		delete(r.reuse, oldest.Value.(*reuseEntry).key)
	}
	return 1
}

// promote copies key's bytes into the local backend and enrolls it in the
// bounded replica set, evicting the least-recently-used replica back to
// owner-only beyond capacity.
func (r *Replicated) promote(key string, val []byte) error {
	if err := r.local.Put(key, val); err != nil {
		return err
	}
	var evict []string
	r.mu.Lock()
	if el, ok := r.replicas[key]; ok {
		r.repLRU.MoveToFront(el)
	} else {
		r.replicas[key] = r.repLRU.PushFront(key)
		r.rstats.Promotions++
		for r.capacity > 0 && r.repLRU.Len() > r.capacity {
			oldest := r.repLRU.Back()
			r.repLRU.Remove(oldest)
			k := oldest.Value.(string)
			delete(r.replicas, k)
			// The demoted key must re-earn its replica from zero, as the
			// paper's demoted lines restart classification — otherwise the
			// next read re-promotes instantly and the set thrashes.
			if el, ok := r.reuse[k]; ok {
				r.reuseLRU.Remove(el)
				delete(r.reuse, k)
			}
			r.rstats.ReplicaEvictions++
			r.evictions++
			evict = append(evict, k)
		}
	}
	r.mu.Unlock()
	for _, k := range evict {
		// Owner still holds it; eviction of the replica is best-effort and
		// a failed local delete only costs capacity, not correctness.
		_ = r.local.Delete(k)
	}
	return nil
}

// Put implements Backend: write through to the owner, refreshing the local
// copy only when a replica exists (a stale replica would undo the
// content-address contract if a key were ever rewritten).
func (r *Replicated) Put(key string, val []byte) error {
	r.mu.Lock()
	r.puts++
	_, replicated := r.replicas[key]
	r.mu.Unlock()
	if err := r.owner.Put(key, val); err != nil {
		return err
	}
	if replicated {
		return r.local.Put(key, val)
	}
	return nil
}

// Delete implements Backend: both sides forget the key.
func (r *Replicated) Delete(key string) error {
	r.mu.Lock()
	r.deletes++
	if el, ok := r.replicas[key]; ok {
		r.repLRU.Remove(el)
		delete(r.replicas, key)
	}
	if el, ok := r.reuse[key]; ok {
		r.reuseLRU.Remove(el)
		delete(r.reuse, key)
	}
	r.mu.Unlock()
	return errors.Join(r.owner.Delete(key), r.local.Delete(key))
}

// Index implements Backend: the owner is the source of truth; replicas are
// a cache, never additional state.
func (r *Replicated) Index() ([]string, error) { return r.owner.Index() }

// IndexGet reads key for audit/index purposes, straight from the owner
// with no reuse bookkeeping: enumerating a store must not look like
// locality — it would promote every cold key and evict genuinely hot
// replicas through the capacity bound.
func (r *Replicated) IndexGet(key string) ([]byte, bool, error) {
	return r.owner.Get(key)
}

// Stats implements Backend: the tier's counters plus the replication
// ledger, with owner and local nested as pseudo-shards.
func (r *Replicated) Stats() Stats {
	r.mu.Lock()
	s := Stats{Name: r.name, Kind: "replicated"}
	r.counters.snapshot(&s)
	rs := r.rstats
	rs.Replicas = len(r.replicas)
	s.Replication = &rs
	r.mu.Unlock()
	owner, local := r.owner.Stats(), r.local.Stats()
	s.Entries = owner.Entries
	s.Shards = []Stats{owner, local}
	return s
}

// Close implements Backend.
func (r *Replicated) Close() error {
	return errors.Join(r.owner.Close(), r.local.Close())
}

// count2 bumps a counter (and optionally a replication counter) under the
// lock.
func (r *Replicated) count2(c *uint64, rc *uint64) {
	r.mu.Lock()
	*c++
	if rc != nil {
		*rc++
	}
	r.mu.Unlock()
}
