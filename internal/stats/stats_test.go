package stats

import (
	"math"
	"strings"
	"testing"

	"lard/internal/mem"
)

func TestBucketOf(t *testing.T) {
	cases := map[uint64]RunBucket{
		1: Run1to2, 2: Run1to2, 3: Run3to9, 9: Run3to9, 10: Run10plus, 1000: Run10plus,
	}
	for n, want := range cases {
		if got := BucketOf(n); got != want {
			t.Errorf("BucketOf(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestComponentStrings(t *testing.T) {
	// Figure-7 legend names.
	want := []string{
		"Compute", "L1-To-LLC-Replica", "L1-To-LLC-Home", "LLC-Home-Waiting",
		"LLC-Home-To-Sharers", "LLC-Home-To-OffChip", "Synchronization",
	}
	for i, w := range want {
		if got := TimeComponent(i).String(); got != w {
			t.Errorf("component %d = %q, want %q", i, got, w)
		}
	}
}

func TestMissTypeStrings(t *testing.T) {
	want := []string{"L1-Hit", "LLC-Replica-Hit", "LLC-Home-Hit", "OffChip-Miss"}
	for i, w := range want {
		if got := MissType(i).String(); got != w {
			t.Errorf("miss type %d = %q, want %q", i, got, w)
		}
	}
}

func TestTimeBreakdownAddTotal(t *testing.T) {
	var a, b TimeBreakdown
	a[Compute] = 10
	b[Compute] = 5
	b[LLCHomeWaiting] = 7
	a.Add(b)
	if a[Compute] != 15 || a[LLCHomeWaiting] != 7 {
		t.Fatalf("Add: %+v", a)
	}
	if a.Total() != 22 {
		t.Fatalf("Total = %d", a.Total())
	}
}

func TestMissCounts(t *testing.T) {
	var m MissCounts
	m[L1Hit] = 100
	m[LLCReplicaHit] = 20
	m[LLCHomeHit] = 30
	m[OffChipMiss] = 5
	if m.L1Misses() != 55 {
		t.Fatalf("L1Misses = %d, want 55", m.L1Misses())
	}
	var n MissCounts
	n[L1Hit] = 1
	m.Add(n)
	if m[L1Hit] != 101 {
		t.Fatal("Add failed")
	}
}

func TestRunLengthHist(t *testing.T) {
	var h RunLengthHist
	h[mem.ClassSharedRW][Run10plus] = 90
	h[mem.ClassPrivate][Run1to2] = 10
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Share(mem.ClassSharedRW, Run10plus); got != 0.9 {
		t.Fatalf("Share = %v, want 0.9", got)
	}
	var empty RunLengthHist
	if empty.Share(mem.ClassPrivate, Run1to2) != 0 {
		t.Fatal("empty histogram share must be 0")
	}
	var h2 RunLengthHist
	h2.Add(&h)
	if h2.Total() != 100 {
		t.Fatal("Add failed")
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("Geomean(2,8) = %v, want 4", got)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if got := Geomean([]float64{5}); got != 5 {
		t.Errorf("singleton geomean = %v", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"A", "LongHeader"}, [][]string{{"x", "1"}, {"yy", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A ") || !strings.Contains(lines[0], "LongHeader") {
		t.Errorf("header row: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator row: %q", lines[1])
	}
	// Columns align: "yy" row pads to header width.
	if !strings.Contains(lines[3], "yy") {
		t.Errorf("data row: %q", lines[3])
	}
}
