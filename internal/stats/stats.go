// Package stats defines the measurement vocabulary of the evaluation
// (§3.4): completion-time breakdown components, L1 miss types, the Figure-1
// run-length histogram, and small aggregation helpers (normalization,
// geometric mean, text tables) used by the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"strings"

	"lard/internal/mem"
)

// TimeComponent enumerates the completion-time breakdown of Figure 7.
type TimeComponent uint8

// Completion-time components, in Figure 7 legend order.
const (
	Compute TimeComponent = iota
	L1ToLLCReplica
	L1ToLLCHome
	LLCHomeWaiting
	LLCHomeToSharers
	LLCHomeToOffChip
	Synchronization
	NumTimeComponents = 7
)

// String implements fmt.Stringer.
func (t TimeComponent) String() string {
	switch t {
	case Compute:
		return "Compute"
	case L1ToLLCReplica:
		return "L1-To-LLC-Replica"
	case L1ToLLCHome:
		return "L1-To-LLC-Home"
	case LLCHomeWaiting:
		return "LLC-Home-Waiting"
	case LLCHomeToSharers:
		return "LLC-Home-To-Sharers"
	case LLCHomeToOffChip:
		return "LLC-Home-To-OffChip"
	case Synchronization:
		return "Synchronization"
	default:
		return fmt.Sprintf("TimeComponent(%d)", uint8(t))
	}
}

// TimeBreakdown accumulates cycles per component.
type TimeBreakdown [NumTimeComponents]mem.Cycles

// Add accumulates other into b.
func (b *TimeBreakdown) Add(other TimeBreakdown) {
	for i := range b {
		b[i] += other[i]
	}
}

// Total returns the sum over all components.
func (b *TimeBreakdown) Total() mem.Cycles {
	var t mem.Cycles
	for _, v := range b {
		t += v
	}
	return t
}

// MissType classifies how an access was serviced (§3.4).
type MissType uint8

// Miss types. L1Hit is not plotted in Figure 8 (which breaks down L1
// *misses*) but is tracked for MPKI-style statistics.
const (
	L1Hit MissType = iota
	LLCReplicaHit
	LLCHomeHit
	OffChipMiss
	NumMissTypes = 4
)

// String implements fmt.Stringer.
func (t MissType) String() string {
	switch t {
	case L1Hit:
		return "L1-Hit"
	case LLCReplicaHit:
		return "LLC-Replica-Hit"
	case LLCHomeHit:
		return "LLC-Home-Hit"
	case OffChipMiss:
		return "OffChip-Miss"
	default:
		return fmt.Sprintf("MissType(%d)", uint8(t))
	}
}

// MissCounts counts accesses per miss type.
type MissCounts [NumMissTypes]uint64

// Add accumulates other into m.
func (m *MissCounts) Add(other MissCounts) {
	for i := range m {
		m[i] += other[i]
	}
}

// L1Misses returns the number of accesses that missed the L1.
func (m *MissCounts) L1Misses() uint64 {
	return m[LLCReplicaHit] + m[LLCHomeHit] + m[OffChipMiss]
}

// RunBucket is a Figure-1 run-length bucket.
type RunBucket uint8

// Run-length buckets of Figure 1.
const (
	Run1to2 RunBucket = iota
	Run3to9
	Run10plus
	NumRunBuckets = 3
)

// String implements fmt.Stringer.
func (b RunBucket) String() string {
	switch b {
	case Run1to2:
		return "[1-2]"
	case Run3to9:
		return "[3-9]"
	case Run10plus:
		return "[>=10]"
	default:
		return fmt.Sprintf("RunBucket(%d)", uint8(b))
	}
}

// BucketOf returns the bucket containing run-length n (n >= 1).
func BucketOf(n uint64) RunBucket {
	switch {
	case n <= 2:
		return Run1to2
	case n <= 9:
		return Run3to9
	default:
		return Run10plus
	}
}

// RunLengthHist is the Figure-1 histogram: LLC accesses by data class and
// run-length bucket. Entry [c][b] counts the accesses belonging to runs of
// class c whose total length falls in bucket b (a completed run of length n
// contributes n accesses to its bucket, matching the paper's "distribution
// of accesses as a function of run-length").
type RunLengthHist [mem.NumDataClasses][NumRunBuckets]uint64

// Add accumulates other into h.
func (h *RunLengthHist) Add(other *RunLengthHist) {
	for c := range h {
		for b := range h[c] {
			h[c][b] += other[c][b]
		}
	}
}

// Total returns the total number of accesses recorded.
func (h *RunLengthHist) Total() uint64 {
	var t uint64
	for c := range h {
		for _, v := range h[c] {
			t += v
		}
	}
	return t
}

// Share returns the fraction of all accesses in class c, bucket b (0 when
// the histogram is empty).
func (h *RunLengthHist) Share(c mem.DataClass, b RunBucket) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return float64(h[c][b]) / float64(t)
}

// Geomean returns the geometric mean of vs (which must all be positive);
// it returns 0 for an empty slice.
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// Mean returns the arithmetic mean of vs (0 for an empty slice).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Table renders rows as an aligned text table with a header row and a
// separator, suitable for terminal output and EXPERIMENTS.md code blocks.
func Table(headers []string, rows [][]string) string {
	width := make([]int, len(headers))
	for i, h := range headers {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	total := len(width) - 1
	for _, w := range width {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
