package resultstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"lard/internal/sim"
	"lard/internal/store"
)

// newShardedStore opens a façade over n disk shards under dir, memory
// layer bounded to maxEntries.
func newShardedStore(t *testing.T, dir string, n, maxEntries int) (*Store, *store.Sharded) {
	t.Helper()
	children := make([]store.Backend, n)
	for i := range children {
		name := fmt.Sprintf("shard-%02d", i)
		d, err := store.NewDisk(name, filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		children[i] = d
	}
	sh, err := store.NewSharded("sharded", children...)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewWithBackend(sh, maxEntries)
	if err != nil {
		t.Fatal(err)
	}
	return st, sh
}

// TestShardedRoundTrip: the façade over a sharded composite behaves
// exactly like the single-directory store — same keys, same hits — while
// entries spread across the shard directories.
func TestShardedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, sh := newShardedStore(t, dir, 4, 0)
	const n = 12
	for seed := uint64(1); seed <= n; seed++ {
		if err := st.Put(spec(seed), fakeResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh façade over the same shards serves every key from its owner
	// shard, and the spec survives the trip.
	st2, _ := newShardedStore(t, dir, 4, 0)
	for seed := uint64(1); seed <= n; seed++ {
		sp := spec(seed)
		res, got, ok, err := st2.GetByKey(sp.Key())
		if err != nil || !ok || uint64(res.CompletionTime) != seed {
			t.Fatalf("seed %d: res=%+v ok=%v err=%v", seed, res, ok, err)
		}
		if got.Key() != sp.Key() {
			t.Fatal("recovered spec must re-derive the same key")
		}
	}
	stats := sh.Stats()
	occupied := 0
	for _, shard := range stats.Shards {
		if shard.Entries > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("12 entries landed on %d of 4 shards: %+v", occupied, stats.Shards)
	}
	if stats.Entries != n {
		t.Fatalf("total entries = %d, want %d", stats.Entries, n)
	}
}

// TestCorruptEntryThroughSharded: a truncated entry file inside one shard
// surfaces through the composite as a recoverable miss — counted, healed
// by the next write — exactly as on the flat store.
func TestCorruptEntryThroughSharded(t *testing.T) {
	dir := t.TempDir()
	st, _ := newShardedStore(t, dir, 4, 0)
	sp := spec(5)
	if err := st.Put(sp, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	path := st.path(sp.Key())
	if path == "" {
		t.Fatal("sharded backend must name the owning shard's entry path")
	}
	// Truncate mid-file: a torn write no atomic rename could produce.
	if err := os.WriteFile(path, []byte(`{"key": "tru`), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, _ := newShardedStore(t, dir, 4, 0)
	if _, ok, err := st2.Get(sp); err != nil || ok {
		t.Fatalf("corrupt sharded entry must read as a miss, got ok=%v err=%v", ok, err)
	}
	res, cached, err := st2.GetOrCompute(sp, func() (*sim.Result, error) { return fakeResult(2), nil })
	if err != nil || cached || res.CompletionTime != 2 {
		t.Fatalf("recompute over corrupt entry: cached=%v err=%v res=%+v", cached, err, res)
	}
	if s := st2.Stats(); s.CorruptEntries == 0 {
		t.Fatalf("corruption must be counted, stats %+v", s)
	}
	// The overwrite healed the entry for future stores.
	st3, _ := newShardedStore(t, dir, 4, 0)
	healed, ok, err := st3.Get(sp)
	if err != nil || !ok || healed.CompletionTime != 2 {
		t.Fatalf("healed entry: ok=%v err=%v res=%+v", ok, err, healed)
	}
}

// TestConcurrentGetOrComputeWithEviction races GetOrCompute against the
// memory layer's LRU eviction: a tiny bound over a sharded backend forces
// constant evict/reload churn while many goroutines demand overlapping
// keys. Run under -race in CI; correctness here means every caller gets
// the right result and the compute count stays at one per key.
func TestConcurrentGetOrComputeWithEviction(t *testing.T) {
	st, _ := newShardedStore(t, t.TempDir(), 4, 1) // memory layer holds ONE entry
	const (
		keys    = 6
		workers = 8
		rounds  = 40
	)
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				seed := uint64((w+i)%keys + 1)
				res, _, err := st.GetOrCompute(spec(seed), func() (*sim.Result, error) {
					computes[seed-1].Add(1)
					return fakeResult(seed), nil
				})
				if err != nil {
					t.Errorf("GetOrCompute seed %d: %v", seed, err)
					return
				}
				if uint64(res.CompletionTime) != seed {
					t.Errorf("seed %d served %d — cross-key corruption", seed, res.CompletionTime)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i := range computes {
		if c := computes[i].Load(); c != 1 {
			t.Errorf("key %d computed %d times, want 1 (backend persists across evictions)", i+1, c)
		}
	}
	if st.Len() > 1 {
		t.Fatalf("memory layer holds %d entries, bound is 1", st.Len())
	}
}

// TestIndexPage covers the paged index: stable windows, total counts, and
// spec metadata served from memory without re-decoding resident entries.
func TestIndexPage(t *testing.T) {
	dir := t.TempDir()
	st, _ := newShardedStore(t, dir, 4, 0)
	const n = 9
	for seed := uint64(1); seed <= n; seed++ {
		st.Put(spec(seed), fakeResult(seed))
	}

	full, total, err := st.IndexPage(0, 0)
	if err != nil || total != n || len(full) != n {
		t.Fatalf("full page: %d/%d (%v)", len(full), total, err)
	}
	var paged []IndexEntry
	for off := 0; off < total; off += 4 {
		page, tot, err := st.IndexPage(off, 4)
		if err != nil || tot != n {
			t.Fatalf("page %d: %v (total %d)", off, err, tot)
		}
		if len(page) > 4 {
			t.Fatalf("page %d has %d rows, limit 4", off, len(page))
		}
		paged = append(paged, page...)
	}
	if len(paged) != n {
		t.Fatalf("pages sum to %d rows, want %d", len(paged), n)
	}
	for i := range full {
		if paged[i] != full[i] {
			t.Fatalf("row %d differs between paged and full index", i)
		}
	}
	// Out-of-range offsets answer empty, not error.
	if page, tot, err := st.IndexPage(n+10, 4); err != nil || tot != n || len(page) != 0 {
		t.Fatalf("past-the-end page = %d rows, %d, %v", len(page), tot, err)
	}

	// A fresh store decodes a page once, then serves the specs from the
	// metadata index: the second identical page triggers no backend reads.
	st2, sh2 := newShardedStore(t, dir, 4, 0)
	if _, _, err := st2.IndexPage(0, 4); err != nil {
		t.Fatal(err)
	}
	gets := sh2.Stats().Gets
	if _, _, err := st2.IndexPage(0, 4); err != nil {
		t.Fatal(err)
	}
	if after := sh2.Stats().Gets; after != gets {
		t.Fatalf("repeated index page re-read the backend (%d -> %d gets)", gets, after)
	}
}

// TestIndexDoesNotPromote: a replicated-backed store's index is an audit,
// not locality — enumerating it must leave the replication ledger and the
// replica set untouched.
func TestIndexDoesNotPromote(t *testing.T) {
	owner := store.NewMemory("owner", 0)
	repl, err := store.NewReplicated("repl", owner, store.NewMemory("local", 0), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeder, _ := NewWithBackend(owner, 0) // write entries straight to the owner
	for seed := uint64(1); seed <= 5; seed++ {
		if err := seeder.Put(spec(seed), fakeResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := NewWithBackend(repl, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		idx, err := st.Index()
		if err != nil || len(idx) != 5 {
			t.Fatalf("index = %d rows (%v)", len(idx), err)
		}
	}
	rs := repl.Stats().Replication
	if rs.OwnerFetches != 0 || rs.Promotions != 0 {
		t.Fatalf("indexing moved the replication ledger: %+v", rs)
	}
}

// TestSpecIndexBounded: with -max-entries set, the spec metadata cache
// must not grow without bound either.
func TestSpecIndexBounded(t *testing.T) {
	st, err := NewWithLimit("", 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := st.specsBound()
	if bound == 0 {
		t.Fatal("bounded store must bound its spec index")
	}
	for seed := uint64(1); seed <= uint64(bound)+50; seed++ {
		st.Put(spec(seed), fakeResult(seed))
	}
	st.mu.Lock()
	n := len(st.specs)
	st.mu.Unlock()
	if n > bound {
		t.Fatalf("spec index grew to %d, bound %d", n, bound)
	}
	// Unbounded stores keep every spec (the index never re-decodes).
	st2, _ := NewWithLimit("", 0)
	if st2.specsBound() != 0 {
		t.Fatal("unbounded store must keep every spec")
	}
}

// TestRawRoundTrip covers the peer-facing raw entry surface: GetRaw serves
// canonical bytes, PutRaw validates and stores them, and a mislabeled or
// corrupt envelope is rejected.
func TestRawRoundTrip(t *testing.T) {
	st, _ := New(t.TempDir())
	sp := spec(7)
	if err := st.Put(sp, fakeResult(3)); err != nil {
		t.Fatal(err)
	}
	b, ok, err := st.GetRaw(sp.Key())
	if err != nil || !ok {
		t.Fatalf("GetRaw = %v, %v", ok, err)
	}

	// The bytes land unchanged in a second, unrelated store.
	st2, _ := New(t.TempDir())
	if err := st2.PutRaw(sp.Key(), b); err != nil {
		t.Fatal(err)
	}
	res, got, ok, err := st2.GetByKey(sp.Key())
	if err != nil || !ok || res.CompletionTime != 3 || got.Key() != sp.Key() {
		t.Fatalf("after PutRaw: res=%+v ok=%v err=%v", res, ok, err)
	}
	b2, ok, _ := st2.GetRaw(sp.Key())
	if !ok || string(b2) != string(b) {
		t.Fatal("raw bytes must round-trip identically")
	}

	// A memory-only store re-encodes canonically.
	st3, _ := New("")
	st3.Put(sp, fakeResult(3))
	b3, ok, err := st3.GetRaw(sp.Key())
	if err != nil || !ok || string(b3) != string(b) {
		t.Fatalf("memory-only GetRaw must produce canonical bytes (%v, %v)", ok, err)
	}

	// Poisoned envelopes are rejected: wrong key, body under another key,
	// garbage.
	other := spec(8)
	if err := st2.PutRaw(other.Key(), b); err == nil {
		t.Fatal("entry stored under a foreign key must be rejected")
	}
	if err := st2.PutRaw(sp.Key(), []byte("{")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := st2.PutRaw("nothex", b); err == nil {
		t.Fatal("malformed key must be rejected")
	}

	// Delete clears every layer.
	if err := st2.Delete(sp.Key()); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := st2.GetByKey(sp.Key()); ok {
		t.Fatal("deleted key must be gone")
	}
}

// TestOpenComposition exercises the BackendConfig stacks: flat, sharded,
// and validation failures.
func TestOpenComposition(t *testing.T) {
	flat, err := Open(BackendConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := flat.Backend().(*store.Disk); !ok {
		t.Fatalf("flat config opened %T", flat.Backend())
	}
	sharded, err := Open(BackendConfig{Dir: t.TempDir(), Shards: 4, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	sh, ok := sharded.Backend().(*store.Sharded)
	if !ok || sh.Shards() != 4 {
		t.Fatalf("sharded config opened %T", sharded.Backend())
	}
	if sharded.MaxEntries() != 8 {
		t.Fatalf("MaxEntries = %d", sharded.MaxEntries())
	}
	memOnly, err := Open(BackendConfig{})
	if err != nil || memOnly.Backend() != nil {
		t.Fatalf("zero config must open memory-only (%v)", err)
	}
	if _, err := Open(BackendConfig{Peer: "not a url"}); err == nil {
		t.Fatal("invalid peer URL must be rejected")
	}
	if _, err := Open(BackendConfig{Peer: "http://peer:1", ReplicateThreshold: -1}); err == nil {
		t.Fatal("negative threshold must be rejected")
	}
}
