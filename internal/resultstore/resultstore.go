// Package resultstore is a content-addressed cache of simulation results.
//
// A simulation is identified by a Spec — the complete set of inputs that
// determine its outcome: the architectural configuration, the benchmark
// name, and the run options (scheme, ASR level, seed, ops scale, tracking
// flags). Because sim.Run is deterministic, a Spec's canonical hash is a
// content address for its Result: the same key always denotes the same
// bytes, so a result computed once never needs to be computed again.
//
// The store layers three mechanisms:
//
//   - an in-memory map for results seen this process,
//   - an optional on-disk JSON backend (one file per key under a store
//     directory) that persists results across processes, and
//   - singleflight deduplication: concurrent GetOrCompute calls for the
//     same key share one computation instead of racing to duplicate it.
//
// Callers receive private clones, so mutating a returned Result (for
// example relabeling its Scheme) never corrupts the cache.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"lard/internal/config"
	"lard/internal/sim"
)

// keyVersion is folded into every hash so that future changes to the Spec
// shape or the Result encoding can never alias old store entries.
const keyVersion = "lard-result-v1"

// Spec is the complete, canonical description of one simulation run: every
// input that can change the result, and nothing else.
type Spec struct {
	// Benchmark is the workload profile name.
	Benchmark string `json:"benchmark"`
	// Config is the full architectural configuration, by value.
	Config config.Config `json:"config"`
	// Options are the run options (scheme, ASR level, seed, ops scale).
	Options sim.Options `json:"options"`
}

// SpecFor builds the canonical Spec for simulating benchmark bench on cfg
// with opt. It normalizes defaulted fields (OpsScale 0 means 1.0, exactly
// as sim.Run treats it) so equivalent requests share one address.
func SpecFor(bench string, cfg *config.Config, opt sim.Options) Spec {
	if opt.OpsScale == 0 {
		opt.OpsScale = 1
	}
	return Spec{Benchmark: bench, Config: *cfg, Options: opt}
}

// Key returns the spec's content address: a hex SHA-256 of the versioned
// canonical JSON encoding. Struct fields encode in declaration order and
// the Spec contains no maps, so the encoding — and therefore the key — is
// byte-stable across processes.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only scalar fields; Marshal cannot fail.
		panic(fmt.Sprintf("resultstore: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts store traffic. Computes is the number of times a compute
// callback actually ran — the store's cache-effectiveness ground truth.
type Stats struct {
	// MemHits and DiskHits count Get/GetOrCompute calls served from the
	// in-memory map and the disk backend respectively.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts GetOrCompute lookups that found nothing in either
	// layer and went on to compute. Plain Get misses are not counted, so a
	// peek-then-compute caller (the server's POST fast path) does not
	// double-count one logical miss.
	Misses uint64 `json:"misses"`
	// Computes counts compute callbacks executed (singleflight leaders).
	Computes uint64 `json:"computes"`
	// Shared counts GetOrCompute callers that piggybacked on another
	// caller's in-flight computation instead of running their own.
	Shared uint64 `json:"shared"`
	// CorruptEntries counts on-disk entries that failed to decode and were
	// treated as misses (the next compute overwrites them).
	CorruptEntries uint64 `json:"corrupt_entries"`
}

// entry is the on-disk envelope: the spec is stored alongside the result so
// a store directory is self-describing and auditable.
type entry struct {
	Key    string      `json:"key"`
	Spec   Spec        `json:"spec"`
	Result *sim.Result `json:"result"`
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// Store is a content-addressed result cache. The zero value is not usable;
// call New. A Store is safe for concurrent use.
type Store struct {
	dir string // "" = memory only

	mu    sync.Mutex
	mem   map[string]*sim.Result
	calls map[string]*call
	stats Stats
}

// New opens a store. dir is the on-disk backend directory, created if
// missing; an empty dir selects a memory-only store.
func New(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	return &Store{
		dir:   dir,
		mem:   make(map[string]*sim.Result),
		calls: make(map[string]*call),
	}, nil
}

// Dir returns the disk backend directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of results resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// path returns the entry file for key, sharded by the first hash byte so no
// single directory grows unboundedly.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get returns the cached result for spec, or (nil, false) on a miss.
func (s *Store) Get(spec Spec) (*sim.Result, bool, error) {
	key := spec.Key()
	s.mu.Lock()
	if r, ok := s.mem[key]; ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return r.Clone(), true, nil
	}
	s.mu.Unlock()

	r, err := s.readDisk(key)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r == nil {
		return nil, false, nil
	}
	s.stats.DiskHits++
	s.mem[key] = r
	return r.Clone(), true, nil
}

// Put stores a result for spec, overwriting any previous entry.
func (s *Store) Put(spec Spec, r *sim.Result) error {
	key := spec.Key()
	c := r.Clone()
	s.mu.Lock()
	s.mem[key] = c
	s.mu.Unlock()
	return s.writeDisk(key, spec, c)
}

// GetOrCompute returns the cached result for spec, computing and storing it
// on a miss. Concurrent calls for the same key share one computation: the
// first caller runs compute, the rest block until it finishes and receive
// the same outcome. The returned bool reports whether the result was served
// from cache (memory or disk) rather than computed by this call graph.
func (s *Store) GetOrCompute(spec Spec, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	key := spec.Key()

	s.mu.Lock()
	if r, ok := s.mem[key]; ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return r.Clone(), true, nil
	}
	if c, ok := s.calls[key]; ok {
		s.stats.Shared++
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		return c.res.Clone(), false, nil
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	r, hit, err := s.leader(key, spec, compute)
	c.res, c.err = r, err
	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	close(c.done)
	if err != nil {
		return nil, false, err
	}
	return r.Clone(), hit, nil
}

// leader runs the miss path of GetOrCompute for the singleflight winner:
// consult disk, else compute and persist.
func (s *Store) leader(key string, spec Spec, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	r, err := s.readDisk(key)
	if err != nil {
		return nil, false, err
	}
	if r != nil {
		s.mu.Lock()
		s.stats.DiskHits++
		s.mem[key] = r
		s.mu.Unlock()
		return r, true, nil
	}

	s.mu.Lock()
	s.stats.Misses++
	s.stats.Computes++
	s.mu.Unlock()
	r, err = compute()
	if err != nil {
		return nil, false, err
	}
	c := r.Clone()
	s.mu.Lock()
	s.mem[key] = c
	s.mu.Unlock()
	if err := s.writeDisk(key, spec, c); err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// readDisk loads the entry for key from the disk backend, returning nil on
// a miss (or when the store is memory-only). An entry that fails to decode
// is treated as a miss, not an error: the key stays computable and the next
// write atomically replaces the damaged file. Real I/O failures still
// surface as errors.
func (s *Store) readDisk(key string) (*sim.Result, error) {
	if s.dir == "" {
		return nil, nil
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resultstore: read %s: %w", key, err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key || e.Result == nil {
		s.mu.Lock()
		s.stats.CorruptEntries++
		s.mu.Unlock()
		return nil, nil
	}
	return e.Result, nil
}

// writeDisk persists an entry atomically (temp file + rename) so concurrent
// writers and crashed processes can never leave a torn entry behind. The
// encoding is deterministic: Result holds only fixed-size arrays and
// scalars, so the same key always produces byte-identical files.
func (s *Store) writeDisk(key string, spec Spec, r *sim.Result) error {
	if s.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(entry{Key: key, Spec: spec, Result: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", key, err)
	}
	b = append(b, '\n')
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: commit %s: %w", key, err)
	}
	return nil
}
