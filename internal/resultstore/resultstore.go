// Package resultstore is a content-addressed cache of simulation results.
//
// A simulation is identified by a Spec — the complete set of inputs that
// determine its outcome: the architectural configuration, the benchmark
// name, and the run options (scheme, ASR level, seed, ops scale, tracking
// flags). Because sim.Run is deterministic, a Spec's canonical hash is a
// content address for its Result: the same key always denotes the same
// bytes, so a result computed once never needs to be computed again.
//
// The store layers three mechanisms:
//
//   - an in-memory map for results seen this process, optionally bounded by
//     an LRU entry limit so long-lived servers don't grow without bound,
//   - an optional on-disk JSON backend (one file per key under a store
//     directory) that persists results across processes, and
//   - singleflight deduplication: concurrent GetOrCompute calls for the
//     same key share one computation instead of racing to duplicate it.
//
// Callers receive private clones, so mutating a returned Result (for
// example relabeling its Scheme) never corrupts the cache.
package resultstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/sim"
)

// keyVersion is folded into every hash so that future changes to the Spec
// shape or the Result encoding can never alias old store entries.
const keyVersion = "lard-result-v1"

// Spec is the complete, canonical description of one simulation run: every
// input that can change the result, and nothing else.
type Spec struct {
	// Benchmark is the workload profile name.
	Benchmark string `json:"benchmark"`
	// Config is the full architectural configuration, by value.
	Config config.Config `json:"config"`
	// Options are the run options (scheme, ASR level, seed, ops scale).
	Options sim.Options `json:"options"`
}

// SpecFor builds the canonical Spec for simulating benchmark bench on cfg
// with opt. It normalizes defaulted fields (OpsScale 0 means 1.0, exactly
// as sim.Run treats it) so equivalent requests share one address.
func SpecFor(bench string, cfg *config.Config, opt sim.Options) Spec {
	if opt.OpsScale == 0 {
		opt.OpsScale = 1
	}
	return Spec{Benchmark: bench, Config: *cfg, Options: opt}
}

// Key returns the spec's content address: a hex SHA-256 of the versioned
// canonical JSON encoding. Struct fields encode in declaration order and
// the Spec contains no maps, so the encoding — and therefore the key — is
// byte-stable across processes.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only scalar fields; Marshal cannot fail.
		panic(fmt.Sprintf("resultstore: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(keyVersion))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// SchemeLabel renders the spec's scheme the way the paper's figures do
// ("RT-3" for the locality-aware protocol, the scheme name otherwise), as
// declared by the scheme's registry descriptor.
func (s Spec) SchemeLabel() string {
	return coherence.LabelFor(s.Options.Scheme, &s.Config)
}

// Stats counts store traffic. Computes is the number of times a compute
// callback actually ran — the store's cache-effectiveness ground truth.
type Stats struct {
	// MemHits and DiskHits count Get/GetOrCompute calls served from the
	// in-memory map and the disk backend respectively.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts GetOrCompute lookups that found nothing in either
	// layer and went on to compute. Plain Get misses are not counted, so a
	// peek-then-compute caller (the server's POST fast path) does not
	// double-count one logical miss.
	Misses uint64 `json:"misses"`
	// Computes counts compute callbacks executed (singleflight leaders).
	Computes uint64 `json:"computes"`
	// Shared counts GetOrCompute callers that piggybacked on another
	// caller's in-flight computation instead of running their own.
	Shared uint64 `json:"shared"`
	// CorruptEntries counts on-disk entries that failed to decode and were
	// treated as misses (the next compute overwrites them).
	CorruptEntries uint64 `json:"corrupt_entries"`
	// Evictions counts memory-layer entries dropped by the LRU bound.
	// Evicted results remain readable from the disk backend.
	Evictions uint64 `json:"evictions"`
}

// entry is the on-disk envelope: the spec is stored alongside the result so
// a store directory is self-describing and auditable.
type entry struct {
	Key    string      `json:"key"`
	Spec   Spec        `json:"spec"`
	Result *sim.Result `json:"result"`
}

// IndexEntry is one row of Index: the identity of a stored run.
type IndexEntry struct {
	// Key is the run's content address.
	Key string `json:"key"`
	// Benchmark, Scheme, Cores, Seed and OpsScale summarize the spec.
	Benchmark string  `json:"benchmark"`
	Scheme    string  `json:"scheme"`
	Cores     int     `json:"cores"`
	Seed      uint64  `json:"seed"`
	OpsScale  float64 `json:"ops_scale"`
	// InMemory reports whether the entry is resident in the memory layer
	// (false = disk only, e.g. after an LRU eviction or a restart).
	InMemory bool `json:"in_memory"`
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// memEntry is one memory-layer entry; the spec is kept alongside the result
// so the index is self-describing without touching disk.
type memEntry struct {
	key  string
	spec Spec
	res  *sim.Result
}

// Store is a content-addressed result cache. The zero value is not usable;
// call New. A Store is safe for concurrent use.
type Store struct {
	dir string // "" = memory only
	max int    // memory-layer LRU bound; 0 = unbounded

	mu    sync.Mutex
	mem   map[string]*list.Element // of *memEntry
	lru   *list.List               // front = most recently used
	calls map[string]*call
	stats Stats
}

// New opens an unbounded store. dir is the on-disk backend directory,
// created if missing; an empty dir selects a memory-only store.
func New(dir string) (*Store, error) { return NewWithLimit(dir, 0) }

// NewWithLimit opens a store whose memory layer holds at most maxEntries
// results, evicting least-recently-used entries beyond that (0 = unbounded).
// With a disk backend, evicted results stay readable from disk; memory-only
// stores lose them outright, trading recomputation for bounded memory.
func NewWithLimit(dir string, maxEntries int) (*Store, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("resultstore: negative entry limit %d", maxEntries)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
	}
	return &Store{
		dir:   dir,
		max:   maxEntries,
		mem:   make(map[string]*list.Element),
		lru:   list.New(),
		calls: make(map[string]*call),
	}, nil
}

// Dir returns the disk backend directory ("" for a memory-only store).
func (s *Store) Dir() string { return s.dir }

// MaxEntries returns the memory-layer LRU bound (0 = unbounded).
func (s *Store) MaxEntries() int { return s.max }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of results resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// memGetLocked returns the memory entry for key, refreshing its recency.
// Callers hold s.mu.
func (s *Store) memGetLocked(key string) (*memEntry, bool) {
	el, ok := s.mem[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry), true
}

// memPutLocked inserts or refreshes a memory entry and enforces the LRU
// bound. Callers hold s.mu.
func (s *Store) memPutLocked(key string, spec Spec, r *sim.Result) {
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).res = r
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, spec: spec, res: r})
	for s.max > 0 && s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.mem, oldest.Value.(*memEntry).key)
		s.stats.Evictions++
	}
}

// path returns the entry file for key, sharded by the first hash byte so no
// single directory grows unboundedly.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// validKey reports whether key is a well-formed content address (64 lowercase
// hex digits). Lookups by raw key strings (GET /v1/runs/{id} fallbacks) pass
// through here, so a malformed or path-traversing id can never touch disk.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the cached result for spec, or (nil, false) on a miss.
func (s *Store) Get(spec Spec) (*sim.Result, bool, error) {
	r, _, ok, err := s.GetByKey(spec.Key())
	return r, ok, err
}

// GetByKey returns the stored result whose content address is key, along
// with its spec, or ok=false when no layer holds it. It never computes; it
// is the lookup path for callers that hold only a raw id (the server's
// GET-after-eviction fallback and the index).
func (s *Store) GetByKey(key string) (*sim.Result, Spec, bool, error) {
	if !validKey(key) {
		return nil, Spec{}, false, nil
	}
	s.mu.Lock()
	if e, ok := s.memGetLocked(key); ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return e.res.Clone(), e.spec, true, nil
	}
	s.mu.Unlock()

	e, err := s.readDisk(key)
	if err != nil {
		return nil, Spec{}, false, err
	}
	if e == nil {
		return nil, Spec{}, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.DiskHits++
	s.memPutLocked(key, e.Spec, e.Result)
	return e.Result.Clone(), e.Spec, true, nil
}

// Put stores a result for spec, overwriting any previous entry.
func (s *Store) Put(spec Spec, r *sim.Result) error {
	key := spec.Key()
	c := r.Clone()
	s.mu.Lock()
	s.memPutLocked(key, spec, c)
	s.mu.Unlock()
	return s.writeDisk(key, spec, c)
}

// GetOrCompute returns the cached result for spec, computing and storing it
// on a miss. Concurrent calls for the same key share one computation: the
// first caller runs compute, the rest block until it finishes and receive
// the same outcome. The returned bool reports whether the result was served
// from cache (memory or disk) rather than computed by this call graph.
func (s *Store) GetOrCompute(spec Spec, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	key := spec.Key()

	s.mu.Lock()
	if e, ok := s.memGetLocked(key); ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return e.res.Clone(), true, nil
	}
	if c, ok := s.calls[key]; ok {
		s.stats.Shared++
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		return c.res.Clone(), false, nil
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	r, hit, err := s.leader(key, spec, compute)
	c.res, c.err = r, err
	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	close(c.done)
	if err != nil {
		return nil, false, err
	}
	return r.Clone(), hit, nil
}

// leader runs the miss path of GetOrCompute for the singleflight winner:
// consult disk, else compute and persist.
func (s *Store) leader(key string, spec Spec, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	e, err := s.readDisk(key)
	if err != nil {
		return nil, false, err
	}
	if e != nil {
		s.mu.Lock()
		s.stats.DiskHits++
		s.memPutLocked(key, e.Spec, e.Result)
		s.mu.Unlock()
		return e.Result, true, nil
	}

	s.mu.Lock()
	s.stats.Misses++
	s.stats.Computes++
	s.mu.Unlock()
	r, err := compute()
	if err != nil {
		return nil, false, err
	}
	c := r.Clone()
	s.mu.Lock()
	s.memPutLocked(key, spec, c)
	s.mu.Unlock()
	if err := s.writeDisk(key, spec, c); err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// Index enumerates every stored run — memory-resident and disk-only alike —
// sorted by key. It reads entry files to recover specs, so it is an audit
// endpoint, not a hot path.
func (s *Store) Index() ([]IndexEntry, error) {
	seen := make(map[string]IndexEntry)
	s.mu.Lock()
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*memEntry)
		seen[e.key] = indexEntryFor(e.key, e.spec, true)
	}
	s.mu.Unlock()

	if s.dir != "" {
		err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(d.Name(), ".json") {
				return nil
			}
			key := strings.TrimSuffix(d.Name(), ".json")
			if !validKey(key) {
				return nil // temp files and stray content
			}
			if _, ok := seen[key]; ok {
				return nil
			}
			e, err := s.readDisk(key)
			if err != nil || e == nil {
				return err // corrupt entries already counted by readDisk
			}
			seen[key] = indexEntryFor(key, e.Spec, false)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("resultstore: index: %w", err)
		}
	}

	out := make([]IndexEntry, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// indexEntryFor summarizes a spec into an index row.
func indexEntryFor(key string, spec Spec, inMem bool) IndexEntry {
	return IndexEntry{
		Key:       key,
		Benchmark: spec.Benchmark,
		Scheme:    spec.SchemeLabel(),
		Cores:     spec.Config.Cores,
		Seed:      spec.Options.Seed,
		OpsScale:  spec.Options.OpsScale,
		InMemory:  inMem,
	}
}

// readDisk loads the entry for key from the disk backend, returning nil on
// a miss (or when the store is memory-only). An entry that fails to decode
// is treated as a miss, not an error: the key stays computable and the next
// write atomically replaces the damaged file. Real I/O failures still
// surface as errors.
func (s *Store) readDisk(key string) (*entry, error) {
	if s.dir == "" {
		return nil, nil
	}
	b, err := os.ReadFile(s.path(key))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("resultstore: read %s: %w", key, err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key || e.Result == nil {
		s.mu.Lock()
		s.stats.CorruptEntries++
		s.mu.Unlock()
		return nil, nil
	}
	return &e, nil
}

// writeDisk persists an entry atomically (temp file + rename) so concurrent
// writers and crashed processes can never leave a torn entry behind. The
// encoding is deterministic: Result holds only fixed-size arrays and
// scalars, so the same key always produces byte-identical files.
func (s *Store) writeDisk(key string, spec Spec, r *sim.Result) error {
	if s.dir == "" {
		return nil
	}
	b, err := json.MarshalIndent(entry{Key: key, Spec: spec, Result: r}, "", "  ")
	if err != nil {
		return fmt.Errorf("resultstore: encode %s: %w", key, err)
	}
	b = append(b, '\n')
	dir := filepath.Dir(s.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: close %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("resultstore: commit %s: %w", key, err)
	}
	return nil
}
