// Package resultstore is a content-addressed cache of simulation results.
//
// A simulation is identified by a Spec — the complete set of inputs that
// determine its outcome: the architectural configuration, the benchmark
// name, and the run options (scheme, ASR level, seed, ops scale, tracking
// flags). Because sim.Run is deterministic, a Spec's canonical hash is a
// content address for its Result: the same key always denotes the same
// bytes, so a result computed once never needs to be computed again.
//
// The store layers three mechanisms:
//
//   - an in-memory map of decoded results seen this process, optionally
//     bounded by an LRU entry limit so long-lived servers don't grow
//     without bound,
//   - an optional persistent backend (internal/store) holding the encoded
//     entries: a single disk directory, a sharded composite across many
//     directories, a remote peer server, or a locality-aware replicated
//     stack over any of those (see Open), and
//   - singleflight deduplication: concurrent GetOrCompute calls for the
//     same key share one computation instead of racing to duplicate it.
//
// Callers receive private clones, so mutating a returned Result (for
// example relabeling its Scheme) never corrupts the cache. The encoded
// entry format and every content address are byte-identical to the
// original single-directory store, so existing store directories keep
// resolving unchanged.
package resultstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/sim"
	"lard/internal/store"
)

// keyVersion is folded into every hash so that future changes to the Spec
// shape or the Result encoding can never alias old store entries.
const keyVersion = "lard-result-v1"

// Spec is the complete, canonical description of one simulation run: every
// input that can change the result, and nothing else.
type Spec struct {
	// Benchmark is the workload profile name.
	Benchmark string `json:"benchmark"`
	// Config is the full architectural configuration, by value.
	Config config.Config `json:"config"`
	// Options are the run options (scheme, ASR level, seed, ops scale).
	Options sim.Options `json:"options"`
}

// SpecFor builds the canonical Spec for simulating benchmark bench on cfg
// with opt. It normalizes defaulted fields (OpsScale 0 means 1.0, exactly
// as sim.Run treats it) so equivalent requests share one address, and
// strips the execution-only observer fields (progress callback, interrupt
// channel): a spec is run identity, and two runs that differ only in who
// is watching are the same run.
func SpecFor(bench string, cfg *config.Config, opt sim.Options) Spec {
	if opt.OpsScale == 0 {
		opt.OpsScale = 1
	}
	opt.Progress, opt.ProgressEvery, opt.Interrupt, opt.Timing = nil, 0, nil, nil
	opt.Telemetry = nil
	// Intra-run parallelism is outcome-identical at every width, so the
	// worker count is not run identity either.
	opt.Workers = 0
	return Spec{Benchmark: bench, Config: *cfg, Options: opt}
}

// Key returns the spec's content address: a hex SHA-256 of the versioned
// canonical JSON encoding. Struct fields encode in declaration order and
// the Spec contains no maps, so the encoding — and therefore the key — is
// byte-stable across processes.
func (s Spec) Key() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec contains only scalar fields; Marshal cannot fail.
		panic(fmt.Sprintf("resultstore: marshal spec: %v", err))
	}
	h := sha256.New()
	// hash.Hash.Write is documented never to return an error; the
	// discards make that contract explicit for the error linter.
	_, _ = h.Write([]byte(keyVersion))
	_, _ = h.Write([]byte{'\n'})
	_, _ = h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// SchemeLabel renders the spec's scheme the way the paper's figures do
// ("RT-3" for the locality-aware protocol, the scheme name otherwise), as
// declared by the scheme's registry descriptor.
func (s Spec) SchemeLabel() string {
	return coherence.LabelFor(s.Options.Scheme, &s.Config)
}

// Stats counts store traffic. Computes is the number of times a compute
// callback actually ran — the store's cache-effectiveness ground truth.
type Stats struct {
	// MemHits and DiskHits count Get/GetOrCompute calls served from the
	// in-memory map and the persistent backend respectively.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	// Misses counts GetOrCompute lookups that found nothing in either
	// layer and went on to compute. Plain Get misses are not counted, so a
	// peek-then-compute caller (the server's POST fast path) does not
	// double-count one logical miss.
	Misses uint64 `json:"misses"`
	// Computes counts compute callbacks executed (singleflight leaders).
	Computes uint64 `json:"computes"`
	// Shared counts GetOrCompute callers that piggybacked on another
	// caller's in-flight computation instead of running their own.
	Shared uint64 `json:"shared"`
	// CorruptEntries counts backend entries that failed to decode and were
	// treated as misses (the next compute overwrites them).
	CorruptEntries uint64 `json:"corrupt_entries"`
	// Evictions counts memory-layer entries dropped by the LRU bound.
	// Evicted results remain readable from the persistent backend.
	Evictions uint64 `json:"evictions"`
}

// entry is the encoded envelope: the spec is stored alongside the result so
// a store directory is self-describing and auditable.
type entry struct {
	Key    string      `json:"key"`
	Spec   Spec        `json:"spec"`
	Result *sim.Result `json:"result"`
}

// IndexEntry is one row of Index: the identity of a stored run.
type IndexEntry struct {
	// Key is the run's content address.
	Key string `json:"key"`
	// Benchmark, Scheme, Cores, Seed and OpsScale summarize the spec.
	Benchmark string  `json:"benchmark"`
	Scheme    string  `json:"scheme"`
	Cores     int     `json:"cores"`
	Seed      uint64  `json:"seed"`
	OpsScale  float64 `json:"ops_scale"`
	// InMemory reports whether the entry is resident in the memory layer
	// (false = backend only, e.g. after an LRU eviction or a restart).
	InMemory bool `json:"in_memory"`
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// memEntry is one memory-layer entry; the spec is kept alongside the result
// so the index is self-describing without touching the backend.
type memEntry struct {
	key  string
	spec Spec
	res  *sim.Result
}

// Store is a content-addressed result cache. The zero value is not usable;
// call New, NewWithLimit, NewWithBackend or Open. A Store is safe for
// concurrent use.
type Store struct {
	backend store.Backend // nil = memory only
	dir     string        // display root ("" = memory only or custom backend)
	max     int           // memory-layer LRU bound; 0 = unbounded

	mu  sync.Mutex
	mem map[string]*list.Element // of *memEntry
	lru *list.List               // front = most recently used
	// specs caches spec metadata by key so the index never re-decodes a
	// seen entry. Unbounded stores (max 0) keep every spec; bounded stores
	// cap it at specsBound() so the -max-entries promise extends to
	// metadata (beyond the cap the index falls back to decoding).
	specs map[string]Spec
	calls map[string]*call
	stats Stats

	// opObs observes persistent-backend operation latencies (observe.go);
	// atomic so installation never contends with the op hot path.
	opObs atomic.Pointer[opObserver]
}

// New opens an unbounded store. dir is the on-disk backend directory,
// created if missing; an empty dir selects a memory-only store.
func New(dir string) (*Store, error) { return NewWithLimit(dir, 0) }

// NewWithLimit opens a store whose memory layer holds at most maxEntries
// results, evicting least-recently-used entries beyond that (0 = unbounded).
// With a persistent backend, evicted results stay readable from it;
// memory-only stores lose them outright, trading recomputation for bounded
// memory.
func NewWithLimit(dir string, maxEntries int) (*Store, error) {
	var b store.Backend
	if dir != "" {
		d, err := store.NewDisk("disk", dir)
		if err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		b = d
	}
	st, err := NewWithBackend(b, maxEntries)
	if err != nil {
		return nil, err
	}
	st.dir = dir
	return st, nil
}

// NewWithBackend opens a store over an arbitrary persistent backend — a
// sharded composite, a remote peer, a replicated stack — with the given
// memory-layer LRU bound (0 = unbounded). A nil backend selects a
// memory-only store.
func NewWithBackend(b store.Backend, maxEntries int) (*Store, error) {
	if maxEntries < 0 {
		return nil, fmt.Errorf("resultstore: negative entry limit %d", maxEntries)
	}
	return &Store{
		backend: b,
		max:     maxEntries,
		mem:     make(map[string]*list.Element),
		lru:     list.New(),
		specs:   make(map[string]Spec),
		calls:   make(map[string]*call),
	}, nil
}

// BackendConfig describes the standard backend stack of a serving node;
// Open composes it. The zero value is a memory-only store.
type BackendConfig struct {
	// Dir is the root store directory ("" = no local disk).
	Dir string
	// Shards > 1 splits Dir into that many consistent-hashed disk shards
	// (Dir/shard-00 …), so entries spread across directories — or mounts.
	Shards int
	// Peer is the base URL of another lard-server whose store becomes the
	// authoritative owner backend; this node fetches from it and promotes
	// hot entries into its own local backend (locality-aware replication).
	Peer string
	// ReplicateThreshold is the reuse count that earns a peer-owned entry
	// a local replica (default 2; meaningful only with Peer).
	ReplicateThreshold int
	// ReplicaCapacity bounds the local replica set (0 = unbounded).
	ReplicaCapacity int
	// MaxEntries bounds the in-memory decoded layer (0 = unbounded).
	MaxEntries int
}

// Open builds the backend stack cfg describes and opens a store over it:
// plain disk, sharded disks, and/or a locality-aware replicated tier over
// a peer server. Mixing sharded and unsharded stores over the same root
// directory is not supported (they address different layouts).
func Open(cfg BackendConfig) (*Store, error) {
	var base store.Backend
	switch {
	case cfg.Dir == "":
		// no local persistence
	case cfg.Shards > 1:
		children := make([]store.Backend, cfg.Shards)
		for i := range children {
			name := fmt.Sprintf("shard-%02d", i)
			d, err := store.NewDisk(name, filepath.Join(cfg.Dir, name))
			if err != nil {
				return nil, fmt.Errorf("resultstore: %w", err)
			}
			children[i] = d
		}
		s, err := store.NewSharded("sharded", children...)
		if err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		base = s
	default:
		d, err := store.NewDisk("disk", cfg.Dir)
		if err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		base = d
	}

	if cfg.Peer != "" {
		owner, err := store.NewRemote("peer", cfg.Peer, nil)
		if err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		local := base
		if local == nil {
			local = store.NewMemory("replicas", cfg.ReplicaCapacity)
		}
		threshold := cfg.ReplicateThreshold
		if threshold == 0 {
			threshold = 2
		}
		r, err := store.NewReplicated("replicated", owner, local, threshold, cfg.ReplicaCapacity)
		if err != nil {
			return nil, fmt.Errorf("resultstore: %w", err)
		}
		base = r
	}

	st, err := NewWithBackend(base, cfg.MaxEntries)
	if err != nil {
		return nil, err
	}
	st.dir = cfg.Dir
	return st, nil
}

// Dir returns the store's root directory ("" for a memory-only store or a
// custom backend opened without one).
func (s *Store) Dir() string { return s.dir }

// MaxEntries returns the memory-layer LRU bound (0 = unbounded).
func (s *Store) MaxEntries() int { return s.max }

// Backend returns the persistent backend (nil for a memory-only store).
func (s *Store) Backend() store.Backend { return s.backend }

// BackendStats returns the persistent backend's counter tree, ok=false for
// a memory-only store.
func (s *Store) BackendStats() (store.Stats, bool) {
	if s.backend == nil {
		return store.Stats{}, false
	}
	return s.backend.Stats(), true
}

// Close releases the persistent backend's resources.
func (s *Store) Close() error {
	if s.backend == nil {
		return nil
	}
	return s.backend.Close()
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len returns the number of results resident in memory.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.mem)
}

// memGetLocked returns the memory entry for key, refreshing its recency.
// Callers hold s.mu.
func (s *Store) memGetLocked(key string) (*memEntry, bool) {
	el, ok := s.mem[key]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*memEntry), true
}

// specsBound returns the spec-index cap: 0 (unbounded) when the memory
// layer is unbounded, else a generous multiple of the result bound — specs
// are two orders of magnitude smaller than results, so the index stays
// cheap without growing forever.
func (s *Store) specsBound() int {
	if s.max == 0 {
		return 0
	}
	n := 16 * s.max
	if n < 4096 {
		n = 4096
	}
	return n
}

// cacheSpecLocked records spec metadata for key, subject to the bound.
// Callers hold s.mu.
func (s *Store) cacheSpecLocked(key string, spec Spec) {
	if b := s.specsBound(); b > 0 && len(s.specs) >= b {
		if _, ok := s.specs[key]; !ok {
			return
		}
	}
	s.specs[key] = spec
}

// memPutLocked inserts or refreshes a memory entry, records the spec in
// the metadata index, and enforces the LRU bound. Callers hold s.mu.
func (s *Store) memPutLocked(key string, spec Spec, r *sim.Result) {
	s.cacheSpecLocked(key, spec)
	if el, ok := s.mem[key]; ok {
		el.Value.(*memEntry).res = r
		s.lru.MoveToFront(el)
		return
	}
	s.mem[key] = s.lru.PushFront(&memEntry{key: key, spec: spec, res: r})
	for s.max > 0 && s.lru.Len() > s.max {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.mem, oldest.Value.(*memEntry).key)
		s.stats.Evictions++
	}
}

// path returns the entry file for key when the backend can name one (a
// disk backend, or the owning shard of a sharded one); "" otherwise.
func (s *Store) path(key string) string {
	if p, ok := s.backend.(interface{ Path(string) string }); ok {
		return p.Path(key)
	}
	return ""
}

// validKey reports whether key is a well-formed content address (64
// lowercase hex digits). Lookups by raw key strings (GET /v1/runs/{id}
// fallbacks) pass through here, so a malformed or path-traversing id can
// never touch a backend.
func validKey(key string) bool { return store.ValidKey(key) }

// Get returns the cached result for spec, or (nil, false) on a miss.
func (s *Store) Get(spec Spec) (*sim.Result, bool, error) {
	r, _, ok, err := s.GetByKey(spec.Key())
	return r, ok, err
}

// GetByKey returns the stored result whose content address is key, along
// with its spec, or ok=false when no layer holds it. It never computes; it
// is the lookup path for callers that hold only a raw id (the server's
// GET-after-eviction fallback and the index).
func (s *Store) GetByKey(key string) (*sim.Result, Spec, bool, error) {
	if !validKey(key) {
		return nil, Spec{}, false, nil
	}
	s.mu.Lock()
	if e, ok := s.memGetLocked(key); ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return e.res.Clone(), e.spec, true, nil
	}
	s.mu.Unlock()

	e, err := s.readBackend(key)
	if err != nil {
		return nil, Spec{}, false, err
	}
	if e == nil {
		return nil, Spec{}, false, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.DiskHits++
	s.memPutLocked(key, e.Spec, e.Result)
	return e.Result.Clone(), e.Spec, true, nil
}

// Put stores a result for spec, overwriting any previous entry.
func (s *Store) Put(spec Spec, r *sim.Result) error {
	key := spec.Key()
	c := r.Clone()
	s.mu.Lock()
	s.memPutLocked(key, spec, c)
	s.mu.Unlock()
	return s.writeBackend(key, spec, c)
}

// GetRaw returns the canonical encoded entry for key, or ok=false when no
// layer holds one. It validates what it serves — a corrupt backend entry
// reads as a miss, never propagates to a peer — and is the server's
// GET /v1/results/{key} path (what a Remote backend fetches).
func (s *Store) GetRaw(key string) ([]byte, bool, error) {
	if !validKey(key) {
		return nil, false, nil
	}
	if s.backend != nil {
		start := time.Now()
		b, ok, err := s.backend.Get(key)
		s.observeOp("get", start)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e := s.decodeEntry(key, b); e != nil {
				s.mu.Lock()
				s.stats.DiskHits++
				s.mu.Unlock()
				return b, true, nil
			}
			return nil, false, nil
		}
	}
	// Memory-resident only (memory-only store, or a backend that lost the
	// file): re-encode canonically — the encoding is deterministic, so the
	// bytes match what the backend would have held.
	s.mu.Lock()
	e, ok := s.memGetLocked(key)
	if !ok {
		s.mu.Unlock()
		return nil, false, nil
	}
	s.stats.MemHits++
	env := entry{Key: key, Spec: e.spec, Result: e.res}
	s.mu.Unlock()
	b, err := encodeEntry(env)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

// ErrInvalidEntry marks PutRaw rejections of the entry bytes themselves —
// undecodable, mislabeled, or address-mismatched — as distinct from
// storage faults, so callers (the server's PUT handler) can blame the
// right party: 400 for a bad envelope, 500 for a failing backend.
var ErrInvalidEntry = errors.New("invalid entry")

// PutRaw stores an encoded entry under key, validating that the bytes
// decode to a self-consistent envelope whose spec re-derives key — a peer
// can never poison the store with a mislabeled result. The canonical
// re-encoding is what persists, so one key always stores one byte string.
// Validation failures wrap ErrInvalidEntry; other errors are storage
// faults.
func (s *Store) PutRaw(key string, b []byte) error {
	if !validKey(key) {
		return fmt.Errorf("resultstore: put: %w: malformed key %q", ErrInvalidEntry, key)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		return fmt.Errorf("resultstore: put %s: %w: %v", key, ErrInvalidEntry, err)
	}
	if e.Key != key || e.Result == nil {
		return fmt.Errorf("resultstore: put %s: %w: envelope does not describe this key", key, ErrInvalidEntry)
	}
	if e.Spec.Key() != key {
		return fmt.Errorf("resultstore: put %s: %w: spec re-derives a different address", key, ErrInvalidEntry)
	}
	s.mu.Lock()
	s.memPutLocked(key, e.Spec, e.Result)
	s.mu.Unlock()
	return s.writeBackend(key, e.Spec, e.Result)
}

// Locate is the execution engine's placement probe: where does key's
// result currently live, as far as this store can tell for free? The
// in-memory decoded layer counts as the hottest placement (Held+Replica —
// the result is already next to this process, decoded), then the backend's
// own Locator refinement answers for disk shards and replica tiers. The
// probe is side-effect-free: no counters move, no LRU order changes, no
// reuse is recorded.
func (s *Store) Locate(key string) store.Location {
	if !validKey(key) {
		return store.Location{Shard: -1}
	}
	s.mu.Lock()
	_, inMem := s.mem[key]
	s.mu.Unlock()
	if inMem {
		return store.Location{Held: true, Replica: true, Shard: -1}
	}
	if l, ok := s.backend.(store.Locator); ok {
		return l.Locate(key)
	}
	return store.Location{Shard: -1}
}

// GCStats summarizes one garbage-collection sweep.
type GCStats struct {
	// Scanned is the number of index entries examined.
	Scanned int `json:"scanned"`
	// Matched is the number that met every criterion (age and, when set,
	// benchmark).
	Matched int `json:"matched"`
	// Deleted is the number actually removed (0 on a dry run).
	Deleted int `json:"deleted"`
	// Undatable is the number of matched-benchmark entries skipped because
	// no backend layer could date them; they are never deleted.
	Undatable int `json:"undatable"`
}

// GC deletes stored results older than olderThan, optionally restricted to
// one benchmark, through the exact same Delete path as the HTTP DELETE
// endpoint (every layer: memory, spec index, backend). Entry age is the
// backend's last-modified time (a write refreshes it, so GC measures
// staleness of the bytes, not of first computation); entries the backend
// cannot date are counted Undatable and left alone — age-based deletion
// must never guess. With dryRun, nothing is deleted and Matched reports
// what a real sweep would remove.
func (s *Store) GC(olderThan time.Duration, benchmark string, dryRun bool) (GCStats, error) {
	var st GCStats
	mt, ok := s.backend.(store.ModTimer)
	if !ok {
		return st, errors.New("resultstore: gc: backend cannot date entries (memory-only store?)")
	}
	idx, err := s.Index()
	if err != nil {
		return st, err
	}
	cutoff := time.Now().Add(-olderThan)
	for _, e := range idx {
		st.Scanned++
		if benchmark != "" && e.Benchmark != benchmark {
			continue
		}
		t, dated, err := mt.ModTime(e.Key)
		if err != nil {
			return st, fmt.Errorf("resultstore: gc: date %s: %w", e.Key, err)
		}
		if !dated {
			st.Undatable++
			continue
		}
		if !t.Before(cutoff) {
			continue
		}
		st.Matched++
		if dryRun {
			continue
		}
		if err := s.Delete(e.Key); err != nil {
			return st, fmt.Errorf("resultstore: gc: delete %s: %w", e.Key, err)
		}
		st.Deleted++
	}
	return st, nil
}

// Delete removes key from every layer.
func (s *Store) Delete(key string) error {
	if !validKey(key) {
		return nil
	}
	s.mu.Lock()
	if el, ok := s.mem[key]; ok {
		s.lru.Remove(el)
		delete(s.mem, key)
	}
	delete(s.specs, key)
	s.mu.Unlock()
	if s.backend == nil {
		return nil
	}
	start := time.Now()
	err := s.backend.Delete(key)
	s.observeOp("delete", start)
	return err
}

// GetOrCompute returns the cached result for spec, computing and storing it
// on a miss. Concurrent calls for the same key share one computation: the
// first caller runs compute, the rest block until it finishes and receive
// the same outcome. The returned bool reports whether the result was served
// from cache (memory or backend) rather than computed by this call graph.
func (s *Store) GetOrCompute(spec Spec, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	key := spec.Key()

	s.mu.Lock()
	if e, ok := s.memGetLocked(key); ok {
		s.stats.MemHits++
		s.mu.Unlock()
		return e.res.Clone(), true, nil
	}
	if c, ok := s.calls[key]; ok {
		s.stats.Shared++
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return nil, false, c.err
		}
		return c.res.Clone(), false, nil
	}
	c := &call{done: make(chan struct{})}
	s.calls[key] = c
	s.mu.Unlock()

	r, hit, err := s.leader(key, spec, compute)
	c.res, c.err = r, err
	s.mu.Lock()
	delete(s.calls, key)
	s.mu.Unlock()
	close(c.done)
	if err != nil {
		return nil, false, err
	}
	return r.Clone(), hit, nil
}

// leader runs the miss path of GetOrCompute for the singleflight winner:
// consult the backend, else compute and persist.
func (s *Store) leader(key string, spec Spec, compute func() (*sim.Result, error)) (*sim.Result, bool, error) {
	e, err := s.readBackend(key)
	if err != nil {
		return nil, false, err
	}
	if e != nil {
		s.mu.Lock()
		s.stats.DiskHits++
		s.memPutLocked(key, e.Spec, e.Result)
		s.mu.Unlock()
		return e.Result, true, nil
	}

	s.mu.Lock()
	s.stats.Misses++
	s.stats.Computes++
	s.mu.Unlock()
	r, err := compute()
	if err != nil {
		return nil, false, err
	}
	c := r.Clone()
	s.mu.Lock()
	s.memPutLocked(key, spec, c)
	s.mu.Unlock()
	if err := s.writeBackend(key, spec, c); err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// Keys returns every stored key — memory-resident and backend alike —
// sorted. It never decodes entries.
func (s *Store) Keys() ([]string, error) {
	set := make(map[string]bool)
	if s.backend != nil {
		start := time.Now()
		ks, err := s.backend.Index()
		s.observeOp("index", start)
		if err != nil {
			return nil, fmt.Errorf("resultstore: index: %w", err)
		}
		for _, k := range ks {
			set[k] = true
		}
	}
	s.mu.Lock()
	for k := range s.mem {
		set[k] = true
	}
	s.mu.Unlock()
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}

// Index enumerates every stored run, sorted by key. Spec metadata is
// served from the in-memory index whenever the key has been seen this
// process; only never-seen backend entries are read and decoded. Large
// stores should page with IndexPage instead.
func (s *Store) Index() ([]IndexEntry, error) {
	out, _, err := s.IndexPage(0, 0)
	return out, err
}

// IndexPage returns the [offset, offset+limit) window of the sorted index
// plus the total key count (limit 0 = to the end). Decoding cost is
// bounded by the window: a page over a million-entry store touches at most
// `limit` entry files, and none whose spec is already known in memory.
func (s *Store) IndexPage(offset, limit int) ([]IndexEntry, int, error) {
	keys, err := s.Keys()
	if err != nil {
		return nil, 0, err
	}
	total := len(keys)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := total
	if limit > 0 && offset+limit < total {
		end = offset + limit
	}

	out := make([]IndexEntry, 0, end-offset)
	for _, key := range keys[offset:end] {
		s.mu.Lock()
		_, inMem := s.mem[key]
		spec, known := s.specs[key]
		s.mu.Unlock()
		if !known {
			e, err := s.readBackendForIndex(key)
			if err != nil {
				return nil, 0, fmt.Errorf("resultstore: index: %w", err)
			}
			if e == nil {
				continue // corrupt or concurrently deleted
			}
			spec = e.Spec
			s.mu.Lock()
			s.cacheSpecLocked(key, spec) // next index need not re-decode
			s.mu.Unlock()
		}
		out = append(out, indexEntryFor(key, spec, inMem))
	}
	return out, total, nil
}

// indexEntryFor summarizes a spec into an index row.
func indexEntryFor(key string, spec Spec, inMem bool) IndexEntry {
	return IndexEntry{
		Key:       key,
		Benchmark: spec.Benchmark,
		Scheme:    spec.SchemeLabel(),
		Cores:     spec.Config.Cores,
		Seed:      spec.Options.Seed,
		OpsScale:  spec.Options.OpsScale,
		InMemory:  inMem,
	}
}

// readBackendForIndex is readBackend for audit/index reads: when the
// backend distinguishes them (the replicated tier's IndexGet reads the
// owner without reuse bookkeeping), enumerating a store does not promote
// cold keys or evict hot replicas.
func (s *Store) readBackendForIndex(key string) (*entry, error) {
	ig, ok := s.backend.(interface {
		IndexGet(string) ([]byte, bool, error)
	})
	if !ok {
		return s.readBackend(key)
	}
	b, found, err := ig.IndexGet(key)
	if err != nil {
		return nil, fmt.Errorf("resultstore: read %s: %w", key, err)
	}
	if !found {
		return nil, nil
	}
	return s.decodeEntry(key, b), nil
}

// readBackend loads the entry for key from the persistent backend,
// returning nil on a miss (or when the store is memory-only). An entry
// that fails to decode is treated as a miss, not an error: the key stays
// computable and the next write atomically replaces the damaged bytes.
// Real I/O failures still surface as errors.
func (s *Store) readBackend(key string) (*entry, error) {
	if s.backend == nil {
		return nil, nil
	}
	start := time.Now()
	b, ok, err := s.backend.Get(key)
	s.observeOp("get", start)
	if err != nil {
		return nil, fmt.Errorf("resultstore: read %s: %w", key, err)
	}
	if !ok {
		return nil, nil
	}
	return s.decodeEntry(key, b), nil
}

// decodeEntry decodes and validates an encoded envelope, counting (and
// swallowing) corruption.
func (s *Store) decodeEntry(key string, b []byte) *entry {
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key || e.Result == nil {
		s.mu.Lock()
		s.stats.CorruptEntries++
		s.mu.Unlock()
		return nil
	}
	return &e
}

// writeBackend persists an entry through the backend. The encoding is
// deterministic: Result holds only fixed-size arrays and scalars, so the
// same key always produces byte-identical stored entries.
func (s *Store) writeBackend(key string, spec Spec, r *sim.Result) error {
	if s.backend == nil {
		return nil
	}
	b, err := encodeEntry(entry{Key: key, Spec: spec, Result: r})
	if err != nil {
		return err
	}
	start := time.Now()
	err = s.backend.Put(key, b)
	s.observeOp("put", start)
	if err != nil {
		return fmt.Errorf("resultstore: write %s: %w", key, err)
	}
	return nil
}

// encodeEntry renders the canonical byte encoding of an envelope —
// unchanged from the original on-disk format, so existing store
// directories remain valid byte for byte.
func encodeEntry(e entry) ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("resultstore: encode %s: %w", e.Key, err)
	}
	return append(b, '\n'), nil
}
