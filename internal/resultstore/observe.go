package resultstore

import "time"

// OpObserver receives the wall-clock latency of one persistent-backend
// operation: op is "get", "put", "delete" or "index", backend the backend
// stack's kind ("disk", "sharded", "remote", "replicated"). Implementations
// must be fast and must not call back into the Store.
type OpObserver func(op, backend string, d time.Duration)

// opObserver pairs the callback with the backend kind, resolved once at
// installation so the per-op path never walks the backend stats tree.
type opObserver struct {
	fn   OpObserver
	kind string
}

// SetOpObserver installs (or, with nil, removes) the store's backend
// operation observer — the hook the serving layer uses to feed its
// lard_store_op_seconds histogram. Install before traffic for complete
// coverage; the store never observes memory-layer hits (they are map
// lookups, not I/O) and a memory-only store therefore reports nothing.
func (s *Store) SetOpObserver(fn OpObserver) {
	if fn == nil || s.backend == nil {
		s.opObs.Store(nil)
		return
	}
	s.opObs.Store(&opObserver{fn: fn, kind: s.backend.Stats().Kind})
}

// observeOp reports one backend operation to the installed observer, if
// any. Call sites bracket only the backend call itself, never the
// store's own locking or decode work.
func (s *Store) observeOp(op string, start time.Time) {
	if o := s.opObs.Load(); o != nil {
		o.fn(op, o.kind, time.Since(start))
	}
}
