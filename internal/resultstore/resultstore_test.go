package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lard/internal/config"
	"lard/internal/mem"
	"lard/internal/sim"
	"lard/internal/stats"
	"lard/internal/trace"
)

// spec returns a small canonical spec, tweaked by seed.
func spec(seed uint64) Spec {
	return SpecFor("BARNES", config.Small(), sim.Options{Seed: seed, OpsScale: 0.02})
}

// fakeResult builds a distinguishable result.
func fakeResult(cycles uint64) *sim.Result {
	return &sim.Result{
		Benchmark:      "BARNES",
		Scheme:         "S-NUCA",
		Cores:          16,
		Ops:            1000,
		CompletionTime: mem.Cycles(cycles),
	}
}

func TestKeyStability(t *testing.T) {
	a, b := spec(1), spec(1)
	if a.Key() != b.Key() {
		t.Fatal("identical specs must share a key")
	}
	if spec(1).Key() == spec(2).Key() {
		t.Fatal("different seeds must produce different keys")
	}
	// OpsScale 0 normalizes to 1, exactly as sim.Run treats it.
	z := SpecFor("BARNES", config.Small(), sim.Options{})
	o := SpecFor("BARNES", config.Small(), sim.Options{OpsScale: 1})
	if z.Key() != o.Key() {
		t.Fatal("OpsScale 0 and 1 must share a key")
	}
	// Config changes change the key.
	cfg := config.Small()
	cfg.RT = 8
	if SpecFor("BARNES", cfg, sim.Options{}).Key() == o.Key() {
		t.Fatal("config changes must change the key")
	}
}

// TestDeterministicFiles pins the content-address contract: storing the
// result of the same key twice yields byte-identical files.
func TestDeterministicFiles(t *testing.T) {
	sp := spec(1)
	prof, err := trace.ProfileByName("BARNES")
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(&sp.Config, prof, sp.Options)

	read := func(dir string) []byte {
		t.Helper()
		st, err := New(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(sp, res); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(st.path(sp.Key()))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := read(filepath.Join(t.TempDir(), "a"))
	b := read(filepath.Join(t.TempDir(), "b"))
	if string(a) != string(b) {
		t.Fatal("same key must store byte-identical files")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	st, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := spec(1)
	if _, ok, err := st.Get(sp); err != nil || ok {
		t.Fatalf("empty store Get = %v, %v", ok, err)
	}
	want := fakeResult(7)
	want.Runs = &stats.RunLengthHist{}
	want.Runs[1][2] = 42
	if err := st.Put(sp, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(sp)
	if err != nil || !ok {
		t.Fatalf("Get after Put = %v, %v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The returned result is a private clone.
	got.Scheme = "MUTATED"
	got.Runs[1][2] = 0
	again, _, _ := st.Get(sp)
	if again.Scheme == "MUTATED" || again.Runs[1][2] != 42 {
		t.Fatal("mutating a returned result must not corrupt the cache")
	}
}

// TestDiskPersistence verifies a second store over the same directory sees
// the first store's results (disk hit, no compute).
func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	st1, _ := New(dir)
	sp := spec(3)
	computes := 0
	if _, cached, err := st1.GetOrCompute(sp, func() (*sim.Result, error) {
		computes++
		return fakeResult(1), nil
	}); err != nil || cached {
		t.Fatalf("first compute: cached=%v err=%v", cached, err)
	}

	st2, _ := New(dir)
	res, cached, err := st2.GetOrCompute(sp, func() (*sim.Result, error) {
		computes++
		return fakeResult(2), nil
	})
	if err != nil || !cached {
		t.Fatalf("second store: cached=%v err=%v", cached, err)
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	if res == nil || res.Benchmark != "BARNES" {
		t.Fatalf("bad persisted result %+v", res)
	}
	if s := st2.Stats(); s.DiskHits != 1 || s.Computes != 0 {
		t.Fatalf("stats = %+v, want one disk hit and zero computes", s)
	}
}

// TestSingleflight pins the deduplication contract: N concurrent identical
// requests run exactly one computation.
func TestSingleflight(t *testing.T) {
	st, _ := New("") // memory-only
	sp := spec(4)
	const n = 32
	var (
		computes atomic.Int64
		release  = make(chan struct{})
		wg       sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := st.GetOrCompute(sp, func() (*sim.Result, error) {
				computes.Add(1)
				<-release // hold the leader so every follower piles up
				return fakeResult(9), nil
			})
			if err != nil || res == nil {
				t.Errorf("GetOrCompute: %v", err)
			}
		}()
	}
	// Let every follower attach to the in-flight call, then release the
	// leader.
	for st.Stats().Shared < n-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if c := computes.Load(); c != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", c)
	}
	if s := st.Stats(); s.Shared != n-1 || s.Computes != 1 {
		t.Fatalf("stats = %+v, want %d shared / 1 compute", s, n-1)
	}
}

// TestCorruptEntryRecovers pins the self-healing contract: a damaged entry
// file is a miss, not a poison pill — the key recomputes and the next write
// replaces the file.
func TestCorruptEntryRecovers(t *testing.T) {
	dir := t.TempDir()
	st, _ := New(dir)
	sp := spec(5)
	if err := st.Put(sp, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(sp.Key()), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, _ := New(dir)
	if _, ok, err := st2.Get(sp); err != nil || ok {
		t.Fatalf("corrupt entry must read as a miss, got ok=%v err=%v", ok, err)
	}
	res, cached, err := st2.GetOrCompute(sp, func() (*sim.Result, error) { return fakeResult(2), nil })
	if err != nil || cached || res.CompletionTime != 2 {
		t.Fatalf("recompute over corrupt entry: cached=%v err=%v res=%+v", cached, err, res)
	}
	if s := st2.Stats(); s.CorruptEntries == 0 {
		t.Fatalf("corruption must be counted, stats %+v", s)
	}
	// The overwrite healed the file for future stores.
	st3, _ := New(dir)
	healed, ok, err := st3.Get(sp)
	if err != nil || !ok || healed.CompletionTime != 2 {
		t.Fatalf("healed entry: ok=%v err=%v res=%+v", ok, err, healed)
	}
}

// TestLRUEviction pins the memory-bound contract: a store with MaxEntries n
// never holds more than n results in memory, evicts least-recently-used
// first, and (with a disk backend) serves evicted keys from disk instead of
// recomputing.
func TestLRUEviction(t *testing.T) {
	st, err := NewWithLimit(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		if err := st.Put(spec(seed), fakeResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if ev := st.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}

	// Seed 1 was the oldest and is gone from memory — but the disk backend
	// still answers it, with no compute.
	computes := 0
	res, cached, err := st.GetOrCompute(spec(1), func() (*sim.Result, error) {
		computes++
		return fakeResult(99), nil
	})
	if err != nil || !cached || computes != 0 || res.CompletionTime != 1 {
		t.Fatalf("evicted key: cached=%v computes=%d res=%+v err=%v", cached, computes, res, err)
	}

	// Recency is refreshed on hit: touch seed 2, insert seed 4, and seed 1
	// (less recently used) is the one evicted.
	if _, ok, _ := st.Get(spec(2)); !ok {
		t.Fatal("seed 2 must still be in the store")
	}
	if err := st.Put(spec(4), fakeResult(4)); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	_, has1 := st.mem[spec(1).Key()]
	_, has2 := st.mem[spec(2).Key()]
	st.mu.Unlock()
	if has1 || !has2 {
		t.Fatalf("LRU order wrong: seed1 in mem=%v, seed2 in mem=%v", has1, has2)
	}
}

// TestLRUEvictionMemoryOnly verifies the bound also holds without a disk
// backend (the evicted result is simply recomputed next time).
func TestLRUEvictionMemoryOnly(t *testing.T) {
	st, err := NewWithLimit("", 1)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(spec(1), fakeResult(1))
	st.Put(spec(2), fakeResult(2))
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if _, ok, _ := st.Get(spec(1)); ok {
		t.Fatal("evicted entry must be gone from a memory-only store")
	}
	if _, err := NewWithLimit("", -1); err == nil {
		t.Fatal("negative limit must be rejected")
	}
}

// TestGetByKey covers the raw-content-address lookup path: memory hit, disk
// fallback in a fresh process, spec recovery, and rejection of malformed
// keys (which must never touch the filesystem).
func TestGetByKey(t *testing.T) {
	dir := t.TempDir()
	st, _ := New(dir)
	sp := spec(1)
	if err := st.Put(sp, fakeResult(5)); err != nil {
		t.Fatal(err)
	}
	res, got, ok, err := st.GetByKey(sp.Key())
	if err != nil || !ok || res.CompletionTime != 5 || got.Benchmark != "BARNES" {
		t.Fatalf("GetByKey = %+v %+v %v %v", res, got, ok, err)
	}

	// A fresh store over the same directory recovers result AND spec from
	// the raw key alone.
	st2, _ := New(dir)
	res2, sp2, ok, err := st2.GetByKey(sp.Key())
	if err != nil || !ok || res2.CompletionTime != 5 {
		t.Fatalf("disk GetByKey = %+v %v %v", res2, ok, err)
	}
	if sp2.Key() != sp.Key() {
		t.Fatal("recovered spec must re-derive the same key")
	}

	for _, bad := range []string{"", "zz", "../../../../etc/passwd", "ABCD", sp.Key()[:40]} {
		if _, _, ok, err := st2.GetByKey(bad); ok || err != nil {
			t.Fatalf("malformed key %q: ok=%v err=%v, want clean miss", bad, ok, err)
		}
	}
}

// TestIndex enumerates memory-resident and disk-only entries.
func TestIndex(t *testing.T) {
	dir := t.TempDir()
	st, _ := New(dir)
	st.Put(spec(1), fakeResult(1))
	st.Put(spec(2), fakeResult(2))

	idx, err := st.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("index has %d entries, want 2", len(idx))
	}
	for _, e := range idx {
		if e.Benchmark != "BARNES" || e.Scheme != "S-NUCA" || e.Cores != 16 || !e.InMemory {
			t.Fatalf("bad index entry %+v", e)
		}
	}
	if idx[0].Key >= idx[1].Key {
		t.Fatal("index must be sorted by key")
	}

	// A fresh store sees the same entries as disk-only.
	st2, _ := New(dir)
	idx2, err := st2.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(idx2) != 2 || idx2[0].InMemory || idx2[1].InMemory {
		t.Fatalf("disk-only index = %+v", idx2)
	}

	// Memory-only stores index too.
	st3, _ := New("")
	st3.Put(spec(3), fakeResult(3))
	idx3, err := st3.Index()
	if err != nil || len(idx3) != 1 {
		t.Fatalf("memory-only index = %+v (%v)", idx3, err)
	}
}

// TestEnvelopeIsSelfDescribing checks the on-disk format records the spec
// next to the result.
func TestEnvelopeIsSelfDescribing(t *testing.T) {
	st, _ := New(t.TempDir())
	sp := spec(6)
	if err := st.Put(sp, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(st.path(sp.Key()))
	if err != nil {
		t.Fatal(err)
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	if e.Key != sp.Key() || e.Spec.Benchmark != "BARNES" || e.Result == nil {
		t.Fatalf("envelope incomplete: %+v", e)
	}
}

// TestObserverFieldsAreKeyNeutral pins that progress callbacks and
// interrupt channels never change a run's content address — and are
// stripped from the canonical spec entirely.
func TestObserverFieldsAreKeyNeutral(t *testing.T) {
	bare := SpecFor("BARNES", config.Small(), sim.Options{Seed: 3})
	ch := make(chan struct{})
	watched := SpecFor("BARNES", config.Small(), sim.Options{
		Seed:          3,
		Progress:      func(done, total uint64) {},
		ProgressEvery: 7,
		Interrupt:     ch,
	})
	if bare.Key() != watched.Key() {
		t.Fatal("observer fields changed the content address")
	}
	if watched.Options.Progress != nil || watched.Options.Interrupt != nil || watched.Options.ProgressEvery != 0 {
		t.Fatalf("SpecFor must strip observer fields, got %+v", watched.Options)
	}
}

// TestLocateStore covers the store-level placement probe: memory residency
// is the hottest class, backend-held entries answer through the backend's
// Locator, and the probe never perturbs store counters.
func TestLocateStore(t *testing.T) {
	st, err := New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := spec(1)
	if err := st.Put(sp, fakeResult(1)); err != nil {
		t.Fatal(err)
	}
	key := sp.Key()
	if loc := st.Locate(key); !loc.Held || !loc.Replica {
		t.Fatalf("memory-resident key = %+v, want held replica-class", loc)
	}
	if loc := st.Locate(spec(2).Key()); loc.Held {
		t.Fatalf("absent key = %+v", loc)
	}
	if loc := st.Locate("not a key"); loc.Held {
		t.Fatalf("malformed key = %+v", loc)
	}

	// A fresh store over the same directory holds the key on disk only:
	// held, but not replica-class.
	st2, err := New(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	before := st2.Stats()
	if loc := st2.Locate(key); !loc.Held || loc.Replica {
		t.Fatalf("disk-held key = %+v, want held non-replica", loc)
	}
	if after := st2.Stats(); !reflect.DeepEqual(before, after) {
		t.Fatalf("Locate moved store counters: %+v -> %+v", before, after)
	}
}

// TestGC covers the age-based sweep: old entries die through the full
// Delete path, young and foreign-benchmark entries survive, dry runs
// delete nothing, and memory-only stores refuse rather than guess.
func TestGC(t *testing.T) {
	dir := t.TempDir()
	st, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	old1, old2, young := spec(1), spec(2), spec(3)
	foreign := SpecFor("DEDUP", config.Small(), sim.Options{Seed: 1, OpsScale: 0.02})
	for _, sp := range []Spec{old1, old2, young, foreign} {
		if err := st.Put(sp, fakeResult(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Age three entries by backdating their files.
	past := time.Now().Add(-48 * time.Hour)
	for _, sp := range []Spec{old1, old2, foreign} {
		if err := os.Chtimes(st.Backend().(interface{ Path(string) string }).Path(sp.Key()), past, past); err != nil {
			t.Fatal(err)
		}
	}

	// Dry run: reports two would-be deletions (foreign is excluded by the
	// benchmark filter), removes nothing.
	gs, err := st.GC(24*time.Hour, "BARNES", true)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Scanned != 4 || gs.Matched != 2 || gs.Deleted != 0 {
		t.Fatalf("dry run = %+v, want scanned 4 matched 2 deleted 0", gs)
	}
	if ks, _ := st.Keys(); len(ks) != 4 {
		t.Fatalf("dry run deleted entries: %d keys left", len(ks))
	}

	// Real sweep, no benchmark filter: both old BARNES entries and the old
	// DEDUP entry die; the young one survives everywhere.
	gs, err = st.GC(24*time.Hour, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Matched != 3 || gs.Deleted != 3 || gs.Undatable != 0 {
		t.Fatalf("sweep = %+v, want 3 deleted", gs)
	}
	ks, _ := st.Keys()
	if len(ks) != 1 || ks[0] != young.Key() {
		t.Fatalf("survivors = %v, want only %s", ks, young.Key())
	}
	if _, _, ok, _ := st.GetByKey(old1.Key()); ok {
		t.Fatal("deleted entry still readable")
	}

	// Memory-only stores cannot date entries and must say so.
	memSt, _ := New("")
	if _, err := memSt.GC(time.Hour, "", false); err == nil {
		t.Fatal("memory-only GC must error")
	}
}
