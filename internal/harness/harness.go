// Package harness regenerates every table and figure of the paper's
// evaluation (§4): the scheme-comparison matrices of Figures 6-8, the
// Limited-k sensitivity of Figure 9, the cluster-size sensitivity of Figure
// 10, the run-length motivation data of Figure 1, and the §4.2 replacement-
// policy and §2.3.2 lookup-oracle ablations. cmd/lard-bench and the
// repository's Go benchmarks are thin wrappers over this package.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/resultstore"
	"lard/internal/sim"
	"lard/internal/trace"
)

// Base configures a whole experiment campaign.
type Base struct {
	// Cores selects the machine: 64 (Table 1), 16 or 4 (scaled-down);
	// 0 defaults to 64. Any other value is rejected.
	Cores int
	// OpsScale scales per-core operation counts.
	OpsScale float64
	// Seed selects the workload instance.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Benchmarks restricts the benchmark set (nil = all 21).
	Benchmarks []string
	// Store, when non-nil, caches every simulation by its content address:
	// repeated campaigns over the same (config, scheme, benchmark, seed,
	// scale) reuse stored results instead of re-simulating.
	Store *resultstore.Store
}

// StoreSummary renders the campaign's cache effectiveness after a run —
// simulations actually executed versus results served from memory, the
// persistent backend, or shared in-flight computations — plus, when the
// store is backed by a locality-aware replicated tier, the replication
// ledger (replica hits versus owner fetches). It returns "" without a
// store.
func (b Base) StoreSummary() string {
	if b.Store == nil {
		return ""
	}
	st := b.Store.Stats()
	s := fmt.Sprintf("store: %d simulated, %d from memory, %d from backend, %d shared in flight",
		st.Computes, st.MemHits, st.DiskHits, st.Shared)
	if bs, ok := b.Store.BackendStats(); ok {
		if bs.Entries >= 0 {
			s += fmt.Sprintf("; %s backend: %d entries", bs.Kind, bs.Entries)
		}
		if bs.Replication != nil {
			r := bs.Replication
			s += fmt.Sprintf("; replication: %d replica hits, %d owner fetches, %d promotions",
				r.ReplicaHits, r.OwnerFetches, r.Promotions)
		}
	}
	return s
}

// simulate runs one fully-configured simulation, through the result store
// when the campaign has one.
func (b Base) simulate(cfg *config.Config, prof trace.Profile, opt sim.Options) (*sim.Result, error) {
	if b.Store == nil {
		return sim.Run(cfg, prof, opt), nil
	}
	res, _, err := b.Store.GetOrCompute(resultstore.SpecFor(prof.Name, cfg, opt),
		func() (*sim.Result, error) { return sim.Run(cfg, prof, opt), nil })
	return res, err
}

// cores returns the effective core count (0 defaults to 64). It does not
// validate; config does.
func (b Base) cores() int {
	if b.Cores == 0 {
		return 64
	}
	return b.Cores
}

// config builds the machine configuration for the campaign. Like
// lard.buildConfig, it resolves the core count through config.ForCores —
// a typo such as Cores: 46 must fail loudly, not silently simulate the
// 64-core machine.
func (b Base) config() (*config.Config, error) {
	return config.ForCores(b.Cores)
}

func (b Base) benchmarks() []string {
	if len(b.Benchmarks) > 0 {
		return b.Benchmarks
	}
	return trace.Names()
}

// Variant is one scheme configuration column of a figure.
type Variant struct {
	// Label is the column header (figure nomenclature).
	Label string
	// Scheme is the LLC management scheme.
	Scheme coherence.Scheme
	// RT, K and Cluster parameterize the locality-aware protocol
	// (K: -1 = Complete classifier, otherwise Limited-K).
	RT, K, Cluster int
	// ASRLevel is ASR's replication level; AutoASR selects the best of the
	// five levels by energy-delay product per benchmark (§3.3).
	ASRLevel float64
	AutoASR  bool
	// PlainLRU selects traditional LRU LLC replacement (§4.2 ablation).
	PlainLRU bool
	// TLH selects the temporal-locality-hint LRU alternative of §2.2.4.
	TLH bool
	// KeepL1 selects the §2.2.3 keep-L1-on-replica-eviction strategy.
	KeepL1 bool
	// Oracle enables the §2.3.2 perfect local-lookup oracle.
	Oracle bool
	// TrackRuns enables the Figure-1 histogram.
	TrackRuns bool
}

// StandardVariants returns the scheme columns of Figures 6-8 (the seven
// paper columns, in figure order), derived from the standard columns each
// scheme's registry descriptor declares: a registered scheme appears in the
// main matrix exactly when its Descriptor lists Columns.
func StandardVariants() []Variant {
	var vs []Variant
	for _, d := range coherence.Registered() {
		for _, col := range d.Columns {
			vs = append(vs, Variant{
				Label:    col.Label,
				Scheme:   d.Scheme,
				RT:       col.RT,
				K:        col.K,
				Cluster:  col.Cluster,
				ASRLevel: col.ASRLevel,
				AutoASR:  col.AutoTune,
			})
		}
	}
	return vs
}

// ASRLevels are the five replication levels evaluated for ASR (§3.3).
var ASRLevels = []float64{0, 0.25, 0.5, 0.75, 1}

// Run executes one (benchmark, variant) simulation.
func Run(base Base, bench string, v Variant) (*sim.Result, error) {
	prof, err := trace.ProfileByName(bench)
	if err != nil {
		return nil, err
	}
	if v.AutoASR {
		return runAutoASR(base, prof, v)
	}
	cfg, err := base.config()
	if err != nil {
		return nil, err
	}
	if err := applyVariant(cfg, v); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", bench, v.Label, err)
	}
	res, err := base.simulate(cfg, prof, sim.Options{
		Scheme:    v.Scheme,
		ASRLevel:  v.ASRLevel,
		Seed:      base.Seed,
		OpsScale:  base.OpsScale,
		TrackRuns: v.TrackRuns,
	})
	if err != nil {
		return nil, err
	}
	res.Scheme = v.Label
	return res, nil
}

// runAutoASR evaluates the five ASR replication levels and returns the run
// with the lowest energy-delay product, as the paper's methodology does.
func runAutoASR(base Base, prof trace.Profile, v Variant) (*sim.Result, error) {
	cfg, err := base.config()
	if err != nil {
		return nil, err
	}
	if err := applyVariant(cfg, v); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", prof.Name, v.Label, err)
	}
	var best *sim.Result
	bestEDP := 0.0
	for _, level := range ASRLevels {
		res, err := base.simulate(cfg, prof, sim.Options{
			Scheme:    coherence.ASR,
			ASRLevel:  level,
			Seed:      base.Seed,
			OpsScale:  base.OpsScale,
			TrackRuns: v.TrackRuns,
		})
		if err != nil {
			return nil, err
		}
		edp := res.EnergyTotal() * float64(res.CompletionTime)
		if best == nil || edp < bestEDP {
			best, bestEDP = res, edp
		}
	}
	best.Scheme = v.Label
	return best, nil
}

// applyVariant maps a variant onto the architectural configuration, driven
// by the variant scheme's registry descriptor. Like lard.buildConfig, it
// rejects a threshold-gated variant without an explicit threshold: silently
// simulating the config default under the variant's label would mislabel
// every downstream table and store entry.
func applyVariant(cfg *config.Config, v Variant) error {
	d, ok := coherence.Describe(v.Scheme)
	if !ok {
		return fmt.Errorf("harness: variant %q: scheme %d is not registered", v.Label, uint8(v.Scheme))
	}
	if d.ThresholdRT {
		if v.RT < 1 {
			return fmt.Errorf("harness: variant %q: %s scheme requires RT >= 1, got %d", v.Label, d.Name, v.RT)
		}
		if v.RT > 255 {
			// The reuse counters that must reach the threshold are 8 bits
			// wide (§2.4.1); a larger threshold could never fire.
			return fmt.Errorf("harness: variant %q: %s threshold %d exceeds the 8-bit reuse counters", v.Label, d.Name, v.RT)
		}
		cfg.RT = v.RT
		switch {
		case v.K < 0:
			cfg.ClassifierK = 0 // Complete
		case v.K > 0:
			cfg.ClassifierK = v.K
		}
		if v.Cluster > 0 {
			cfg.ClusterSize = v.Cluster
		}
	}
	if v.PlainLRU {
		cfg.Replacement = config.PlainLRU
	}
	if v.TLH {
		cfg.Replacement = config.TLHLRU
	}
	cfg.KeepL1OnReplicaEvict = v.KeepL1
	cfg.LookupOracle = v.Oracle
	return nil
}

// Matrix holds the results of a benchmark x variant campaign.
type Matrix struct {
	Benches  []string
	Variants []Variant
	// Results[bench][label] is the run result.
	Results map[string]map[string]*sim.Result
}

// RunMatrix executes every (benchmark, variant) pair, fanning the
// independent simulations out over Parallelism workers.
func RunMatrix(base Base, variants []Variant) (*Matrix, error) {
	benches := base.benchmarks()
	m := &Matrix{
		Benches:  benches,
		Variants: variants,
		Results:  make(map[string]map[string]*sim.Result, len(benches)),
	}
	for _, b := range benches {
		m.Results[b] = make(map[string]*sim.Result, len(variants))
	}
	type job struct {
		bench string
		v     Variant
	}
	jobs := make(chan job)
	par := base.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := Run(base, j.bench, j.v)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					m.Results[j.bench][j.v.Label] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range benches {
		for _, v := range variants {
			jobs <- job{b, v}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// Get returns the result for (bench, label).
func (m *Matrix) Get(bench, label string) *sim.Result { return m.Results[bench][label] }
