// Package harness regenerates every table and figure of the paper's
// evaluation (§4): the scheme-comparison matrices of Figures 6-8, the
// Limited-k sensitivity of Figure 9, the cluster-size sensitivity of Figure
// 10, the run-length motivation data of Figure 1, and the §4.2 replacement-
// policy and §2.3.2 lookup-oracle ablations. cmd/lard-bench and the
// repository's Go benchmarks are thin wrappers over this package.
package harness

import (
	"fmt"
	"runtime"
	"sync"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/resultstore"
	"lard/internal/sim"
	"lard/internal/trace"
)

// Base configures a whole experiment campaign.
type Base struct {
	// Cores selects the machine: 64 (Table 1), 16 or 4 (scaled-down);
	// 0 defaults to 64. Any other value is rejected.
	Cores int
	// OpsScale scales per-core operation counts.
	OpsScale float64
	// Seed selects the workload instance.
	Seed uint64
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// SimWorkers sets each member run's intra-run worker-lane count (the
	// conflict-aware parallel access scheduler; 0 or 1 = sequential). The
	// simulated outcome is identical at every width. Matrix-level
	// parallelism composes badly with intra-run lanes — both multiply into
	// the same cores — so RunMatrix guards this back to 1 whenever its own
	// worker fan-out exceeds one: use SimWorkers to speed up a single run
	// (Parallelism: 1), and Parallelism to saturate a campaign.
	SimWorkers int
	// Benchmarks restricts the benchmark set (nil = all 21).
	Benchmarks []string
	// Store, when non-nil, caches every simulation by its content address:
	// repeated campaigns over the same (config, scheme, benchmark, seed,
	// scale) reuse stored results instead of re-simulating.
	Store *resultstore.Store
	// Progress, when non-nil, observes the campaign live: every few
	// thousand simulated operations of every member, plus one observation
	// per finished member. Under RunMatrix the observations carry
	// campaign-level aggregation (members finished, overall fraction);
	// standalone Run reports the single member alone. Observations may
	// arrive concurrently from the matrix workers but are serialized — the
	// callback is never invoked twice at once.
	Progress func(CampaignProgress)

	// agg is the matrix-level aggregator RunMatrix installs; standalone
	// runs leave it nil and report member-only progress.
	agg *matrixAgg
}

// CampaignProgress is one observation of a running campaign.
type CampaignProgress struct {
	// Bench and Label identify the member that advanced.
	Bench, Label string
	// MemberDone/MemberTotal are the member's simulated-operation progress
	// (done == total on completion; a store-cached member reports only its
	// completion, with the stored run's operation count on both sides).
	MemberDone, MemberTotal uint64
	// MembersFinished and Members count whole member runs at campaign
	// level (1 total for a standalone Run).
	MembersFinished, Members int
	// Overall is the aggregate campaign fraction in [0,1]: finished
	// members count 1, in-flight members their current fraction.
	Overall float64
}

// matrixAgg aggregates per-member fractions into one campaign fraction.
type matrixAgg struct {
	mu       sync.Mutex
	members  int
	finished int
	inflight map[string]float64
}

func newMatrixAgg(members int) *matrixAgg {
	return &matrixAgg{members: members, inflight: make(map[string]float64)}
}

func (a *matrixAgg) overallLocked() float64 {
	s := float64(a.finished)
	for _, f := range a.inflight {
		s += f
	}
	return s / float64(a.members)
}

// observe records an in-flight member fraction; finish retires a member.
// Both fill the campaign-level fields of cp and invoke emit under the
// aggregator lock, so observers see a serialized, consistent stream.
func (a *matrixAgg) observe(key string, frac float64, cp CampaignProgress, emit func(CampaignProgress)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight[key] = frac
	cp.MembersFinished, cp.Members, cp.Overall = a.finished, a.members, a.overallLocked()
	emit(cp)
}

func (a *matrixAgg) finish(key string, cp CampaignProgress, emit func(CampaignProgress)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.inflight, key)
	a.finished++
	cp.MembersFinished, cp.Members, cp.Overall = a.finished, a.members, a.overallLocked()
	emit(cp)
}

// report routes one member observation through the matrix aggregator when
// RunMatrix installed one, or straight to the observer for standalone runs.
func (b Base) report(bench, label string, done, total uint64, finished bool) {
	if b.Progress == nil {
		return
	}
	cp := CampaignProgress{Bench: bench, Label: label, MemberDone: done, MemberTotal: total, Members: 1}
	frac := 0.0
	if total > 0 {
		frac = float64(done) / float64(total)
	}
	key := bench + "\x00" + label
	switch {
	case b.agg == nil:
		if finished {
			cp.MembersFinished = 1
		}
		cp.Overall = frac
		b.Progress(cp)
	case finished:
		b.agg.finish(key, cp, b.Progress)
	default:
		b.agg.observe(key, frac, cp, b.Progress)
	}
}

// memberObserver is the sim-level progress callback for one member.
func (b Base) memberObserver(bench, label string) func(done, total uint64) {
	if b.Progress == nil {
		return nil
	}
	// Completion at campaign level is reported separately when the member
	// truly retires (a member may span several simulations, as AutoASR
	// does), so even done == total reports here as in-flight.
	return func(done, total uint64) {
		b.report(bench, label, done, total, false)
	}
}

// StoreSummary renders the campaign's cache effectiveness after a run —
// simulations actually executed versus results served from memory, the
// persistent backend, or shared in-flight computations — plus, when the
// store is backed by a locality-aware replicated tier, the replication
// ledger (replica hits versus owner fetches). It returns "" without a
// store.
func (b Base) StoreSummary() string {
	if b.Store == nil {
		return ""
	}
	st := b.Store.Stats()
	s := fmt.Sprintf("store: %d simulated, %d from memory, %d from backend, %d shared in flight",
		st.Computes, st.MemHits, st.DiskHits, st.Shared)
	if bs, ok := b.Store.BackendStats(); ok {
		if bs.Entries >= 0 {
			s += fmt.Sprintf("; %s backend: %d entries", bs.Kind, bs.Entries)
		}
		if bs.Replication != nil {
			r := bs.Replication
			s += fmt.Sprintf("; replication: %d replica hits, %d owner fetches, %d promotions",
				r.ReplicaHits, r.OwnerFetches, r.Promotions)
		}
	}
	return s
}

// simulate runs one fully-configured simulation, through the result store
// when the campaign has one.
func (b Base) simulate(cfg *config.Config, prof trace.Profile, opt sim.Options) (*sim.Result, error) {
	if b.Store == nil {
		return sim.Run(cfg, prof, opt), nil
	}
	res, _, err := b.Store.GetOrCompute(resultstore.SpecFor(prof.Name, cfg, opt),
		func() (*sim.Result, error) { return sim.Run(cfg, prof, opt), nil })
	return res, err
}

// cores returns the effective core count (0 defaults to 64). It does not
// validate; config does.
func (b Base) cores() int {
	if b.Cores == 0 {
		return 64
	}
	return b.Cores
}

// config builds the machine configuration for the campaign. Like
// lard.buildConfig, it resolves the core count through config.ForCores —
// a typo such as Cores: 46 must fail loudly, not silently simulate the
// 64-core machine.
func (b Base) config() (*config.Config, error) {
	return config.ForCores(b.Cores)
}

func (b Base) benchmarks() []string {
	if len(b.Benchmarks) > 0 {
		return b.Benchmarks
	}
	return trace.Names()
}

// Variant is one scheme configuration column of a figure.
type Variant struct {
	// Label is the column header (figure nomenclature).
	Label string
	// Scheme is the LLC management scheme.
	Scheme coherence.Scheme
	// RT, K and Cluster parameterize the locality-aware protocol
	// (K: -1 = Complete classifier, otherwise Limited-K).
	RT, K, Cluster int
	// ASRLevel is ASR's replication level; AutoASR selects the best of the
	// five levels by energy-delay product per benchmark (§3.3).
	ASRLevel float64
	AutoASR  bool
	// PlainLRU selects traditional LRU LLC replacement (§4.2 ablation).
	PlainLRU bool
	// TLH selects the temporal-locality-hint LRU alternative of §2.2.4.
	TLH bool
	// KeepL1 selects the §2.2.3 keep-L1-on-replica-eviction strategy.
	KeepL1 bool
	// Oracle enables the §2.3.2 perfect local-lookup oracle.
	Oracle bool
	// TrackRuns enables the Figure-1 histogram.
	TrackRuns bool
}

// StandardVariants returns the scheme columns of Figures 6-8 (the seven
// paper columns, in figure order), derived from the standard columns each
// scheme's registry descriptor declares: a registered scheme appears in the
// main matrix exactly when its Descriptor lists Columns.
func StandardVariants() []Variant {
	var vs []Variant
	for _, d := range coherence.Registered() {
		for _, col := range d.Columns {
			vs = append(vs, Variant{
				Label:    col.Label,
				Scheme:   d.Scheme,
				RT:       col.RT,
				K:        col.K,
				Cluster:  col.Cluster,
				ASRLevel: col.ASRLevel,
				AutoASR:  col.AutoTune,
			})
		}
	}
	return vs
}

// ASRLevels are the five replication levels evaluated for ASR (§3.3).
var ASRLevels = []float64{0, 0.25, 0.5, 0.75, 1}

// Run executes one (benchmark, variant) simulation.
func Run(base Base, bench string, v Variant) (*sim.Result, error) {
	prof, err := trace.ProfileByName(bench)
	if err != nil {
		return nil, err
	}
	if v.AutoASR {
		return runAutoASR(base, prof, v)
	}
	cfg, err := base.config()
	if err != nil {
		return nil, err
	}
	if err := applyVariant(cfg, v); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", bench, v.Label, err)
	}
	res, err := base.simulate(cfg, prof, sim.Options{
		Scheme:    v.Scheme,
		ASRLevel:  v.ASRLevel,
		Seed:      base.Seed,
		OpsScale:  base.OpsScale,
		TrackRuns: v.TrackRuns,
		Workers:   base.SimWorkers,
		Progress:  base.memberObserver(bench, v.Label),
	})
	if err != nil {
		return nil, err
	}
	res.Scheme = v.Label
	base.report(bench, v.Label, res.Ops, res.Ops, true)
	return res, nil
}

// runAutoASR evaluates the five ASR replication levels and returns the run
// with the lowest energy-delay product, as the paper's methodology does.
// The levels are independent simulations (distinct engines, no shared
// mutable state), so they run concurrently; the pick itself stays a
// sequential index-ordered scan, preserving the earliest-level tie-break of
// the original loop.
func runAutoASR(base Base, prof trace.Profile, v Variant) (*sim.Result, error) {
	cfg, err := base.config()
	if err != nil {
		return nil, err
	}
	if err := applyVariant(cfg, v); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", prof.Name, v.Label, err)
	}
	levels := uint64(len(ASRLevels))

	// The member's progress spans the five level evaluations. Levels now
	// advance concurrently, so the member fraction is the mutex-guarded sum
	// of per-level done counts — monotonic even though per-level reports
	// interleave arbitrarily.
	var pmu sync.Mutex
	doneByLevel := make([]uint64, len(ASRLevels))
	observe := func(lvl int, done, total uint64) {
		pmu.Lock()
		defer pmu.Unlock()
		doneByLevel[lvl] = done
		var sum uint64
		for _, d := range doneByLevel {
			sum += d
		}
		// Reported under pmu so the observer stays serialized even for
		// standalone runs, where report calls it directly.
		base.report(prof.Name, v.Label, sum, levels*total, false)
	}

	results := make([]*sim.Result, len(ASRLevels))
	errs := make([]error, len(ASRLevels))
	var wg sync.WaitGroup
	for i, level := range ASRLevels {
		opt := sim.Options{
			Scheme:    coherence.ASR,
			ASRLevel:  level,
			Seed:      base.Seed,
			OpsScale:  base.OpsScale,
			TrackRuns: v.TrackRuns,
		}
		if base.Progress != nil {
			lvl := i
			opt.Progress = func(done, total uint64) { observe(lvl, done, total) }
		}
		wg.Add(1)
		go func(i int, opt sim.Options) {
			defer wg.Done()
			results[i], errs[i] = base.simulate(cfg, prof, opt)
		}(i, opt)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var best *sim.Result
	bestEDP := 0.0
	for _, res := range results {
		edp := res.EnergyTotal() * float64(res.CompletionTime)
		if best == nil || edp < bestEDP {
			best, bestEDP = res, edp
		}
	}
	best.Scheme = v.Label
	base.report(prof.Name, v.Label, best.Ops, best.Ops, true)
	return best, nil
}

// applyVariant maps a variant onto the architectural configuration, driven
// by the variant scheme's registry descriptor. Like lard.buildConfig, it
// rejects a threshold-gated variant without an explicit threshold: silently
// simulating the config default under the variant's label would mislabel
// every downstream table and store entry.
func applyVariant(cfg *config.Config, v Variant) error {
	d, ok := coherence.Describe(v.Scheme)
	if !ok {
		return fmt.Errorf("harness: variant %q: scheme %d is not registered", v.Label, uint8(v.Scheme))
	}
	if d.ThresholdRT {
		if v.RT < 1 {
			return fmt.Errorf("harness: variant %q: %s scheme requires RT >= 1, got %d", v.Label, d.Name, v.RT)
		}
		if v.RT > 255 {
			// The reuse counters that must reach the threshold are 8 bits
			// wide (§2.4.1); a larger threshold could never fire.
			return fmt.Errorf("harness: variant %q: %s threshold %d exceeds the 8-bit reuse counters", v.Label, d.Name, v.RT)
		}
		cfg.RT = v.RT
		switch {
		case v.K < 0:
			cfg.ClassifierK = 0 // Complete
		case v.K > 0:
			cfg.ClassifierK = v.K
		}
		if v.Cluster > 0 {
			cfg.ClusterSize = v.Cluster
		}
	}
	if v.PlainLRU {
		cfg.Replacement = config.PlainLRU
	}
	if v.TLH {
		cfg.Replacement = config.TLHLRU
	}
	cfg.KeepL1OnReplicaEvict = v.KeepL1
	cfg.LookupOracle = v.Oracle
	return nil
}

// Matrix holds the results of a benchmark x variant campaign.
type Matrix struct {
	Benches  []string
	Variants []Variant
	// Results[bench][label] is the run result.
	Results map[string]map[string]*sim.Result
}

// RunMatrix executes every (benchmark, variant) pair, fanning the
// independent simulations out over Parallelism workers.
func RunMatrix(base Base, variants []Variant) (*Matrix, error) {
	benches := base.benchmarks()
	m := &Matrix{
		Benches:  benches,
		Variants: variants,
		Results:  make(map[string]map[string]*sim.Result, len(benches)),
	}
	for _, b := range benches {
		m.Results[b] = make(map[string]*sim.Result, len(variants))
	}
	type job struct {
		bench string
		v     Variant
	}
	jobs := make(chan job)
	if base.Progress != nil {
		// Matrix-level aggregation: every member observation from here on
		// carries (finished, total, overall) across the whole matrix.
		base.agg = newMatrixAgg(len(benches) * len(variants))
	}
	par := base.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	// Oversubscription guard: with several members simulating at once the
	// matrix already fills the machine; intra-run lanes on top would just
	// contend. SimWorkers only takes effect when the matrix runs members
	// one at a time.
	if par > 1 && base.SimWorkers > 1 {
		base.SimWorkers = 1
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				res, err := Run(base, j.bench, j.v)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if err == nil {
					m.Results[j.bench][j.v.Label] = res
				}
				mu.Unlock()
			}
		}()
	}
	for _, b := range benches {
		for _, v := range variants {
			jobs <- job{b, v}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return m, nil
}

// Get returns the result for (bench, label).
func (m *Matrix) Get(bench, label string) *sim.Result { return m.Results[bench][label] }
