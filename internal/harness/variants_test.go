package harness

import (
	"testing"

	"lard/internal/coherence"
)

// TestStandardVariantsPinned pins the registry-derived figure columns to
// the paper's seven, in figure order with their exact parameterization: a
// scheme registration must never be able to silently reshuffle Figures 6-8.
func TestStandardVariantsPinned(t *testing.T) {
	want := []Variant{
		{Label: "S-NUCA", Scheme: coherence.SNUCA},
		{Label: "R-NUCA", Scheme: coherence.RNUCA},
		{Label: "VR", Scheme: coherence.VR},
		{Label: "ASR", Scheme: coherence.ASR, AutoASR: true},
		{Label: "RT-1", Scheme: coherence.LocalityAware, RT: 1, K: 3, Cluster: 1},
		{Label: "RT-3", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1},
		{Label: "RT-8", Scheme: coherence.LocalityAware, RT: 8, K: 3, Cluster: 1},
	}
	got := StandardVariants()
	if len(got) != len(want) {
		t.Fatalf("StandardVariants has %d columns, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("column %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestUnregisteredVariantRejected: a variant naming an unregistered scheme
// errors instead of silently simulating S-NUCA-like behaviour.
func TestUnregisteredVariantRejected(t *testing.T) {
	base := Base{Cores: 16, OpsScale: 0.02}
	_, err := Run(base, "DEDUP", Variant{Label: "nope", Scheme: coherence.Scheme(200)})
	if err == nil {
		t.Fatal("unregistered scheme variant must error")
	}
}
