package harness

import (
	"fmt"

	"lard/internal/coherence"
	"lard/internal/sim"
	"lard/internal/stats"
)

// Fig9Benches is the benchmark subset plotted by Figure 9 (the others are
// insensitive to the classifier, like DEDUP).
var Fig9Benches = []string{
	"RADIX", "LU-NC", "CHOLESKY", "BARNES", "OCEAN-NC", "WATER-NSQ",
	"RAYTRACE", "VOLREND", "STREAMCLUS.", "DEDUP", "FERRET", "FACESIM",
	"CONCOMP",
}

// Fig9Ks are the Limited-k classifier sizes of Figure 9; 64 denotes the
// Complete classifier.
var Fig9Ks = []int{1, 3, 5, 7, 64}

// Fig9LimitedK runs the Limited-k sensitivity study at RT=3 and renders the
// energy and completion-time tables normalized to the Complete classifier.
// It returns the tables and the normalized values keyed [bench][k], with the
// Complete column keyed under the largest Fig9K (64).
func Fig9LimitedK(base Base) (string, map[string]map[int][2]float64, error) {
	if base.Benchmarks == nil {
		base.Benchmarks = Fig9Benches
	}
	// Limited-k sizes below the machine's core count, plus one Complete
	// column: a Limited-k with k >= cores IS the Complete classifier, so
	// emitting every clamped k as its own column (which Cores: 4 would do
	// three times over) would simulate identical configurations under
	// distinct, misleading labels.
	var variants []Variant
	var ks []int // the k each column reports under in vals
	for _, k := range Fig9Ks {
		if k >= base.cores() {
			continue
		}
		variants = append(variants, Variant{
			Label:  fmt.Sprintf("k=%d", k),
			Scheme: coherence.LocalityAware, RT: 3, K: k, Cluster: 1,
		})
		ks = append(ks, k)
	}
	const baseLabel = "Complete"
	variants = append(variants, Variant{
		Label:  baseLabel,
		Scheme: coherence.LocalityAware, RT: 3, K: -1, Cluster: 1,
	})
	ks = append(ks, Fig9Ks[len(Fig9Ks)-1])
	m, err := RunMatrix(base, variants)
	if err != nil {
		return "", nil, err
	}
	vals := make(map[string]map[int][2]float64)
	render := func(title string, metric func(*sim.Result) float64, idx int) string {
		headers := append([]string{"Benchmark"}, labels(variants)...)
		var rows [][]string
		geos := make([][]float64, len(variants))
		for _, b := range m.Benches {
			ref := metric(m.Get(b, baseLabel))
			row := []string{b}
			for i, v := range variants {
				val := metric(m.Get(b, v.Label)) / ref
				if vals[b] == nil {
					vals[b] = make(map[int][2]float64)
				}
				pair := vals[b][ks[i]]
				pair[idx] = val
				vals[b][ks[i]] = pair
				geos[i] = append(geos[i], val)
				row = append(row, fmt.Sprintf("%.3f", val))
			}
			rows = append(rows, row)
		}
		gr := []string{"GEOMEAN"}
		for i := range variants {
			gr = append(gr, fmt.Sprintf("%.3f", stats.Geomean(geos[i])))
		}
		rows = append(rows, gr)
		return title + "\n" + stats.Table(headers, rows)
	}
	out := render("Figure 9a: energy vs Limited-k (normalized to Complete, RT=3)",
		func(r *sim.Result) float64 { return r.EnergyTotal() }, 0) + "\n" +
		render("Figure 9b: completion time vs Limited-k (normalized to Complete, RT=3)",
			func(r *sim.Result) float64 { return float64(r.CompletionTime) }, 1)
	return out, vals, nil
}

// Fig10Benches is the benchmark subset plotted by Figure 10.
var Fig10Benches = []string{
	"RADIX", "LU-NC", "BARNES", "WATER-NSQ", "RAYTRACE", "VOLREND",
	"BLACKSCH.", "SWAPTIONS", "FLUIDANIM.", "STREAMCLUS.", "FERRET",
	"BODYTRACK", "FACESIM", "PATRICIA", "CONCOMP",
}

// Fig10Clusters are the cluster sizes of Figure 10.
var Fig10Clusters = []int{1, 4, 16, 64}

// Fig10ClusterSize runs the cluster-size sensitivity study at RT=3,
// normalized to cluster size 1. It returns the tables and values keyed
// [bench][clusterSize] as {energy, time} pairs.
func Fig10ClusterSize(base Base) (string, map[string]map[int][2]float64, error) {
	if base.Benchmarks == nil {
		base.Benchmarks = Fig10Benches
	}
	// Reject unsupported core counts before deriving the sweep from them:
	// an invalid count must fail loudly here, not produce an empty cluster
	// list and a vacuous matrix.
	if _, err := base.config(); err != nil {
		return "", nil, err
	}
	candidates := Fig10Clusters
	if base.cores() < 64 {
		candidates = []int{1, 2, 4, 16} // scaled-down machine
	}
	// A cluster must tile the machine: keep only divisors of the core
	// count, so the 4-core preset sweeps {1, 2, 4} instead of failing
	// validation on C-16.
	var clusters []int
	for _, c := range candidates {
		if c <= base.cores() && base.cores()%c == 0 {
			clusters = append(clusters, c)
		}
	}
	var variants []Variant
	for _, c := range clusters {
		variants = append(variants, Variant{
			Label:  fmt.Sprintf("C-%d", c),
			Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: c,
		})
	}
	m, err := RunMatrix(base, variants)
	if err != nil {
		return "", nil, err
	}
	vals := make(map[string]map[int][2]float64)
	render := func(title string, metric func(*sim.Result) float64, idx int) string {
		headers := append([]string{"Benchmark"}, labels(variants)...)
		var rows [][]string
		geos := make([][]float64, len(variants))
		for _, b := range m.Benches {
			ref := metric(m.Get(b, "C-1"))
			row := []string{b}
			for i, v := range variants {
				val := metric(m.Get(b, v.Label)) / ref
				if vals[b] == nil {
					vals[b] = make(map[int][2]float64)
				}
				pair := vals[b][clusters[i]]
				pair[idx] = val
				vals[b][clusters[i]] = pair
				geos[i] = append(geos[i], val)
				row = append(row, fmt.Sprintf("%.3f", val))
			}
			rows = append(rows, row)
		}
		gr := []string{"GEOMEAN"}
		for i := range variants {
			gr = append(gr, fmt.Sprintf("%.3f", stats.Geomean(geos[i])))
		}
		rows = append(rows, gr)
		return title + "\n" + stats.Table(headers, rows)
	}
	out := render("Figure 10a: energy vs cluster size (normalized to C-1, RT=3)",
		func(r *sim.Result) float64 { return r.EnergyTotal() }, 0) + "\n" +
		render("Figure 10b: completion time vs cluster size (normalized to C-1, RT=3)",
			func(r *sim.Result) float64 { return float64(r.CompletionTime) }, 1)
	return out, vals, nil
}

// ReplacementAblation compares the paper's modified-LRU LLC replacement
// against plain LRU and the temporal-locality-hint alternative it cites,
// under RT-3 (§2.2.4/§4.2). It returns the table and the modified/plain
// ratios keyed [bench] as {energy, time}.
func ReplacementAblation(base Base) (string, map[string][2]float64, error) {
	variants := []Variant{
		{Label: "mod-LRU", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1},
		{Label: "LRU", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1, PlainLRU: true},
		{Label: "TLH-LRU", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1, TLH: true},
	}
	m, err := RunMatrix(base, variants)
	if err != nil {
		return "", nil, err
	}
	headers := []string{"Benchmark", "energy mod/LRU", "time mod/LRU", "energy mod/TLH", "time mod/TLH"}
	vals := make(map[string][2]float64)
	var rows [][]string
	for _, b := range m.Benches {
		mod, lru, tlh := m.Get(b, "mod-LRU"), m.Get(b, "LRU"), m.Get(b, "TLH-LRU")
		e := mod.EnergyTotal() / lru.EnergyTotal()
		t := float64(mod.CompletionTime) / float64(lru.CompletionTime)
		et := mod.EnergyTotal() / tlh.EnergyTotal()
		tt := float64(mod.CompletionTime) / float64(tlh.CompletionTime)
		vals[b] = [2]float64{e, t}
		rows = append(rows, []string{b,
			fmt.Sprintf("%.3f", e), fmt.Sprintf("%.3f", t),
			fmt.Sprintf("%.3f", et), fmt.Sprintf("%.3f", tt)})
	}
	return "§4.2: modified-LRU vs plain LRU and TLH-LRU (RT-3; <1 means modified-LRU wins)\n" +
		stats.Table(headers, rows), vals, nil
}

// ReplicaEvictAblation compares the paper's back-invalidation on replica
// eviction against the rejected keep-L1-valid strategy (§2.2.3); the paper
// reports a negligible difference.
func ReplicaEvictAblation(base Base) (string, map[string][2]float64, error) {
	variants := []Variant{
		{Label: "back-inv", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1},
		{Label: "keep-L1", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1, KeepL1: true},
	}
	m, err := RunMatrix(base, variants)
	if err != nil {
		return "", nil, err
	}
	headers := []string{"Benchmark", "energy back/keep", "time back/keep"}
	vals := make(map[string][2]float64)
	var rows [][]string
	for _, b := range m.Benches {
		bi, kp := m.Get(b, "back-inv"), m.Get(b, "keep-L1")
		e := bi.EnergyTotal() / kp.EnergyTotal()
		t := float64(bi.CompletionTime) / float64(kp.CompletionTime)
		vals[b] = [2]float64{e, t}
		rows = append(rows, []string{b, fmt.Sprintf("%.3f", e), fmt.Sprintf("%.3f", t)})
	}
	return "§2.2.3: back-invalidation vs keep-L1 replica eviction (paper: negligible difference)\n" +
		stats.Table(headers, rows), vals, nil
}

// OracleAblation compares the always-lookup policy against the §2.3.2
// dynamic oracle under RT-3; the paper reports a <1 % difference.
func OracleAblation(base Base) (string, map[string][2]float64, error) {
	variants := []Variant{
		{Label: "lookup", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1},
		{Label: "oracle", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1, Oracle: true},
	}
	m, err := RunMatrix(base, variants)
	if err != nil {
		return "", nil, err
	}
	headers := []string{"Benchmark", "energy lookup/oracle", "time lookup/oracle"}
	vals := make(map[string][2]float64)
	var rows [][]string
	for _, b := range m.Benches {
		lk, or := m.Get(b, "lookup"), m.Get(b, "oracle")
		e := lk.EnergyTotal() / or.EnergyTotal()
		t := float64(lk.CompletionTime) / float64(or.CompletionTime)
		vals[b] = [2]float64{e, t}
		rows = append(rows, []string{b, fmt.Sprintf("%.4f", e), fmt.Sprintf("%.4f", t)})
	}
	return "§2.3.2: always-lookup vs dynamic oracle (RT-3; paper reports <1% apart)\n" +
		stats.Table(headers, rows), vals, nil
}

func labels(vs []Variant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Label
	}
	return out
}
