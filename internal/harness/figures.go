package harness

import (
	"fmt"
	"strings"

	"lard/internal/energy"
	"lard/internal/mem"
	"lard/internal/sim"
	"lard/internal/stats"
)

// Fig6Energy renders the Figure-6 table: total energy per (benchmark,
// scheme) normalized to S-NUCA, with the arithmetic average row the paper
// plots. It returns the table text and the per-scheme averages.
func Fig6Energy(m *Matrix) (string, map[string]float64) {
	return normalizedTable(m, "Figure 6: energy (normalized to S-NUCA)",
		func(r *sim.Result) float64 { return r.EnergyTotal() })
}

// Fig7Time renders the Figure-7 table: completion time normalized to S-NUCA.
func Fig7Time(m *Matrix) (string, map[string]float64) {
	return normalizedTable(m, "Figure 7: completion time (normalized to S-NUCA)",
		func(r *sim.Result) float64 { return float64(r.CompletionTime) })
}

// normalizedTable renders metric(bench, scheme)/metric(bench, S-NUCA) for
// every cell plus an Average row (the paper plots averages, not geomeans,
// for Figures 6-7).
func normalizedTable(m *Matrix, title string, metric func(*sim.Result) float64) (string, map[string]float64) {
	return RenderNormalizedTable(title, m.Benches, labels(m.Variants), "S-NUCA",
		func(bench, label string) float64 { return metric(m.Get(bench, label)) })
}

// RenderNormalizedTable renders a figure-style benchmark x column table from
// an arbitrary metric surface: each row is normalized to its baselineCol
// cell (no normalization when baselineCol is empty) and an AVERAGE row is
// appended, matching the paper's Figures 6-7 presentation. It returns the
// table text and the per-column averages. This is the rendering seam shared
// by the in-process figure campaigns (which hold sim.Results) and the run
// service's campaign endpoint (which holds exported results).
func RenderNormalizedTable(title string, benches, cols []string, baselineCol string, value func(bench, col string) float64) (string, map[string]float64) {
	headers := append([]string{"Benchmark"}, cols...)
	var rows [][]string
	sums := make(map[string]float64, len(cols))
	for _, b := range benches {
		base := 1.0
		if baselineCol != "" {
			base = value(b, baselineCol)
		}
		row := []string{b}
		for _, c := range cols {
			val := value(b, c) / base
			sums[c] += val
			row = append(row, fmt.Sprintf("%.3f", val))
		}
		rows = append(rows, row)
	}
	avg := make(map[string]float64, len(cols))
	avgRow := []string{"AVERAGE"}
	for _, c := range cols {
		avg[c] = sums[c] / float64(len(benches))
		avgRow = append(avgRow, fmt.Sprintf("%.3f", avg[c]))
	}
	rows = append(rows, avgRow)
	return title + "\n" + stats.Table(headers, rows), avg
}

// EnergyBreakdownTable renders the per-component energy stack of one
// benchmark across schemes (the per-benchmark bars of Figure 6), normalized
// to the S-NUCA total.
func EnergyBreakdownTable(m *Matrix, bench string) string {
	headers := []string{"Component"}
	for _, v := range m.Variants {
		headers = append(headers, v.Label)
	}
	base := m.Get(bench, "S-NUCA").EnergyTotal()
	var rows [][]string
	for c := 0; c < energy.NumComponents; c++ {
		row := []string{energy.Component(c).String()}
		for _, v := range m.Variants {
			row = append(row, fmt.Sprintf("%.3f", m.Get(bench, v.Label).EnergyPJ[c]/base))
		}
		rows = append(rows, row)
	}
	total := []string{"TOTAL"}
	for _, v := range m.Variants {
		total = append(total, fmt.Sprintf("%.3f", m.Get(bench, v.Label).EnergyTotal()/base))
	}
	rows = append(rows, total)
	return fmt.Sprintf("Figure 6 (%s): energy breakdown (normalized to S-NUCA total)\n", bench) +
		stats.Table(headers, rows)
}

// TimeBreakdownTable renders the per-component completion-time stack of one
// benchmark across schemes (the per-benchmark bars of Figure 7).
func TimeBreakdownTable(m *Matrix, bench string) string {
	headers := []string{"Component"}
	for _, v := range m.Variants {
		headers = append(headers, v.Label)
	}
	base := float64(m.Get(bench, "S-NUCA").Time.Total())
	var rows [][]string
	for c := 0; c < stats.NumTimeComponents; c++ {
		row := []string{stats.TimeComponent(c).String()}
		for _, v := range m.Variants {
			row = append(row, fmt.Sprintf("%.3f", float64(m.Get(bench, v.Label).Time[c])/base))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figure 7 (%s): completion-time breakdown (normalized to S-NUCA)\n", bench) +
		stats.Table(headers, rows)
}

// Fig8MissTypes renders the Figure-8 table: the L1-miss service breakdown
// (replica hit / home hit / off-chip) as percentages per cell.
func Fig8MissTypes(m *Matrix) string {
	headers := []string{"Benchmark"}
	for _, v := range m.Variants {
		headers = append(headers, v.Label)
	}
	var rows [][]string
	for _, b := range m.Benches {
		row := []string{b}
		for _, v := range m.Variants {
			r := m.Get(b, v.Label)
			misses := float64(r.Miss.L1Misses())
			row = append(row, fmt.Sprintf("%2.0f/%2.0f/%2.0f",
				100*float64(r.Miss[stats.LLCReplicaHit])/misses,
				100*float64(r.Miss[stats.LLCHomeHit])/misses,
				100*float64(r.Miss[stats.OffChipMiss])/misses))
		}
		rows = append(rows, row)
	}
	return "Figure 8: L1 miss breakdown (% replica-hit / home-hit / off-chip)\n" +
		stats.Table(headers, rows)
}

// Headline computes the §4.1 headline numbers: the average energy and
// completion-time reduction of RT-3 relative to VR, ASR, R-NUCA and S-NUCA.
// The paper reports 16/14/13/21 % energy and 4/9/6/13 % time.
func Headline(m *Matrix) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Headline (§4.1): average reduction of RT-3 vs baseline")
	for _, baseline := range []string{"VR", "ASR", "R-NUCA", "S-NUCA"} {
		var esum, tsum float64
		for _, bench := range m.Benches {
			rt := m.Get(bench, "RT-3")
			bl := m.Get(bench, baseline)
			esum += 1 - rt.EnergyTotal()/bl.EnergyTotal()
			tsum += 1 - float64(rt.CompletionTime)/float64(bl.CompletionTime)
		}
		n := float64(len(m.Benches))
		fmt.Fprintf(&b, "  vs %-7s energy -%4.1f%%   completion time -%4.1f%%\n",
			baseline, 100*esum/n, 100*tsum/n)
	}
	return b.String()
}

// Fig1RunLengths runs S-NUCA with run-length tracking for every benchmark
// and renders the Figure-1 distribution: percentage of LLC accesses per
// (data class, run-length bucket).
func Fig1RunLengths(base Base) (string, map[string]*stats.RunLengthHist, error) {
	v := Variant{Label: "S-NUCA", Scheme: 0, TrackRuns: true}
	headers := []string{"Benchmark"}
	for c := 0; c < mem.NumDataClasses; c++ {
		for bkt := 0; bkt < stats.NumRunBuckets; bkt++ {
			headers = append(headers, fmt.Sprintf("%s%s",
				shortClass(mem.DataClass(c)), stats.RunBucket(bkt)))
		}
	}
	m, err := RunMatrix(base, []Variant{v})
	if err != nil {
		return "", nil, err
	}
	hists := make(map[string]*stats.RunLengthHist)
	var rows [][]string
	for _, bench := range base.benchmarks() {
		res := m.Get(bench, v.Label)
		hists[bench] = res.Runs
		row := []string{bench}
		for c := 0; c < mem.NumDataClasses; c++ {
			for bkt := 0; bkt < stats.NumRunBuckets; bkt++ {
				row = append(row, fmt.Sprintf("%4.1f",
					100*res.Runs.Share(mem.DataClass(c), stats.RunBucket(bkt))))
			}
		}
		rows = append(rows, row)
	}
	return "Figure 1: LLC access distribution by data class and run-length (% of LLC accesses, S-NUCA)\n" +
		stats.Table(headers, rows), hists, nil
}

func shortClass(c mem.DataClass) string {
	switch c {
	case mem.ClassPrivate:
		return "P"
	case mem.ClassInstruction:
		return "I"
	case mem.ClassSharedRO:
		return "RO"
	default:
		return "RW"
	}
}
