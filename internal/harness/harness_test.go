package harness

import (
	"reflect"
	"strings"
	"testing"

	"lard/internal/coherence"
	"lard/internal/resultstore"
)

// smallBase is a fast campaign configuration for tests.
func smallBase(benches ...string) Base {
	return Base{Cores: 16, OpsScale: 0.05, Benchmarks: benches}
}

func TestStandardVariants(t *testing.T) {
	vs := StandardVariants()
	want := []string{"S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-3", "RT-8"}
	if len(vs) != len(want) {
		t.Fatalf("%d variants, want %d", len(vs), len(want))
	}
	for i, w := range want {
		if vs[i].Label != w {
			t.Errorf("variant %d = %q, want %q", i, vs[i].Label, w)
		}
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	_, err := Run(smallBase(), "NOPE", Variant{Label: "S-NUCA"})
	if err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestRunMatrixAndTables(t *testing.T) {
	base := smallBase("DEDUP", "BARNES")
	m, err := RunMatrix(base, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	if m.Get("DEDUP", "RT-3") == nil || m.Get("BARNES", "VR") == nil {
		t.Fatal("matrix cells missing")
	}
	t6, avg := Fig6Energy(m)
	if !strings.Contains(t6, "BARNES") || !strings.Contains(t6, "AVERAGE") {
		t.Error("Figure 6 table incomplete")
	}
	if avg["S-NUCA"] != 1.0 {
		t.Errorf("S-NUCA normalizes to 1.0, got %v", avg["S-NUCA"])
	}
	t7, _ := Fig7Time(m)
	if !strings.Contains(t7, "completion time") {
		t.Error("Figure 7 table incomplete")
	}
	t8 := Fig8MissTypes(m)
	if !strings.Contains(t8, "Figure 8") {
		t.Error("Figure 8 table incomplete")
	}
	hl := Headline(m)
	for _, b := range []string{"VR", "ASR", "R-NUCA", "S-NUCA"} {
		if !strings.Contains(hl, b) {
			t.Errorf("headline missing baseline %s", b)
		}
	}
	if eb := EnergyBreakdownTable(m, "BARNES"); !strings.Contains(eb, "DRAM") {
		t.Error("energy breakdown missing components")
	}
	if tb := TimeBreakdownTable(m, "BARNES"); !strings.Contains(tb, "Synchronization") {
		t.Error("time breakdown missing components")
	}
}

// TestRunMatrixStoreReuse pins the campaign-caching contract: a matrix run
// twice against the same store performs zero simulations the second time
// and reproduces identical results.
func TestRunMatrixStoreReuse(t *testing.T) {
	st, err := resultstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := smallBase("DEDUP", "BARNES")
	base.Store = st
	// StandardVariants includes AutoASR, so the ASR column alone is five
	// distinct simulations — all of which must cache too.
	m1, err := RunMatrix(base, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	computes := st.Stats().Computes
	if computes == 0 {
		t.Fatal("first pass must simulate")
	}

	m2, err := RunMatrix(base, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Stats().Computes; got != computes {
		t.Fatalf("second pass ran %d simulations, want 0", got-computes)
	}
	if !reflect.DeepEqual(m1.Results, m2.Results) {
		t.Fatal("cached pass must reproduce identical results")
	}

	// A fresh process over the same store directory also reuses everything.
	st2, err := resultstore.New(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	base.Store = st2
	m3, err := RunMatrix(base, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().Computes; got != 0 {
		t.Fatalf("disk-backed pass ran %d simulations, want 0", got)
	}
	if !reflect.DeepEqual(m1.Results, m3.Results) {
		t.Fatal("disk round trip must reproduce identical results")
	}
}

// TestRunMatrixStoreMatchesDirect verifies the store layer is transparent:
// cached campaigns produce exactly what uncached ones do.
func TestRunMatrixStoreMatchesDirect(t *testing.T) {
	base := smallBase("BARNES")
	direct, err := RunMatrix(base, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	st, _ := resultstore.New("")
	base.Store = st
	stored, err := RunMatrix(base, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Results, stored.Results) {
		t.Fatal("store-backed matrix must match the direct matrix")
	}
}

// TestAutoASRValidatesConfig is a regression test: runAutoASR must reject
// an invalid configuration exactly as the non-ASR path does, rather than
// silently simulating it. The variant carries locality-aware config knobs
// (which applyVariant maps onto the config) with an impossible cluster
// size.
func TestAutoASRValidatesConfig(t *testing.T) {
	v := Variant{Label: "ASR", Scheme: coherence.LocalityAware, AutoASR: true, RT: 3, Cluster: 5}
	if _, err := Run(smallBase("DEDUP"), "DEDUP", v); err == nil {
		t.Fatal("AutoASR must reject an invalid config (ClusterSize 5 does not divide 16)")
	}
}

// TestVariantRTZeroRejected mirrors the facade's RT-0 guard at the harness
// layer: a locality-aware variant without an explicit threshold must error,
// never silently simulate the config default under the variant's label.
func TestVariantRTZeroRejected(t *testing.T) {
	v := Variant{Label: "RT-1", Scheme: coherence.LocalityAware, K: 3, Cluster: 1}
	if _, err := Run(smallBase("DEDUP"), "DEDUP", v); err == nil {
		t.Fatal("locality-aware variant without RT must error")
	}
}

func TestAutoASRPicksALevel(t *testing.T) {
	res, err := Run(smallBase(), "DEDUP", Variant{Label: "ASR", Scheme: coherence.ASR, AutoASR: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "ASR" {
		t.Fatalf("label = %q", res.Scheme)
	}
}

// TestAutoASRTracksRuns is a regression test: runAutoASR used to drop
// TrackRuns from the per-level options, so an AutoASR variant could never
// collect the Figure-1 histogram.
func TestAutoASRTracksRuns(t *testing.T) {
	res, err := Run(smallBase(), "DEDUP",
		Variant{Label: "ASR", Scheme: coherence.ASR, AutoASR: true, TrackRuns: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs == nil || res.Runs.Total() == 0 {
		t.Fatal("AutoASR with TrackRuns must collect the run-length histogram")
	}
}

// TestCoreCountValidation is a regression test: Base.config() used to map
// every core count other than 16 to the 64-core machine, so Cores: 4 (or a
// typo like 46) silently simulated 64 cores. The supported presets work and
// report the machine they claim; anything else errors.
func TestCoreCountValidation(t *testing.T) {
	for _, cores := range []int{0, 4, 16, 64} {
		base := Base{Cores: cores, OpsScale: 0.02, Benchmarks: []string{"DEDUP"}}
		res, err := Run(base, "DEDUP", Variant{Label: "S-NUCA", Scheme: coherence.SNUCA})
		if err != nil {
			t.Fatalf("Cores=%d: %v", cores, err)
		}
		want := cores
		if want == 0 {
			want = 64
		}
		if res.Cores != want {
			t.Fatalf("Cores=%d simulated a %d-core machine", cores, res.Cores)
		}
	}
	for _, cores := range []int{46, 7, -1, 128} {
		base := Base{Cores: cores, OpsScale: 0.02, Benchmarks: []string{"DEDUP"}}
		if _, err := Run(base, "DEDUP", Variant{Label: "S-NUCA", Scheme: coherence.SNUCA}); err == nil {
			t.Fatalf("Cores=%d must error, not silently simulate 64 cores", cores)
		}
		// The AutoASR path validates identically.
		if _, err := Run(base, "DEDUP", Variant{Label: "ASR", Scheme: coherence.ASR, AutoASR: true}); err == nil {
			t.Fatalf("Cores=%d must error on the AutoASR path too", cores)
		}
		if _, _, err := Fig9LimitedK(base); err == nil {
			t.Fatalf("Cores=%d must error in sensitivity studies too", cores)
		}
		if _, _, err := Fig10ClusterSize(base); err == nil {
			t.Fatalf("Cores=%d must error in Figure 10 (not panic on an empty sweep)", cores)
		}
	}
}

func TestFig1RunLengths(t *testing.T) {
	table, hists, err := Fig1RunLengths(smallBase("BARNES"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "BARNES") {
		t.Error("Figure 1 table missing benchmark")
	}
	if hists["BARNES"] == nil || hists["BARNES"].Total() == 0 {
		t.Error("Figure 1 histogram empty")
	}
}

// TestSensitivityAtFourCores pins the 4-core preset against the sensitivity
// studies: Figure 10 must sweep only cluster sizes that tile the machine
// ({1,2,4}), and Figure 9 must collapse every k >= cores into ONE Complete
// column instead of simulating duplicates under misleading k-labels.
func TestSensitivityAtFourCores(t *testing.T) {
	base := Base{Cores: 4, OpsScale: 0.02, Benchmarks: []string{"DEDUP"}}

	table10, vals10, err := Fig10ClusterSize(base)
	if err != nil {
		t.Fatalf("Figure 10 at 4 cores: %v", err)
	}
	if strings.Contains(table10, "C-16") || !strings.Contains(table10, "C-4") {
		t.Errorf("4-core cluster sweep wrong:\n%s", table10)
	}
	if _, ok := vals10["DEDUP"][16]; ok {
		t.Error("cluster 16 cannot tile a 4-core machine")
	}

	table9, vals9, err := Fig9LimitedK(base)
	if err != nil {
		t.Fatalf("Figure 9 at 4 cores: %v", err)
	}
	// k in {1,3} are real Limited-k columns; 5, 7 and 64 all collapse into
	// the single Complete column (keyed 64).
	if strings.Contains(table9, "k=5") || strings.Contains(table9, "k=7") {
		t.Errorf("clamped k must not render as its own column:\n%s", table9)
	}
	if !strings.Contains(table9, "Complete") {
		t.Errorf("Complete column missing:\n%s", table9)
	}
	if pair := vals9["DEDUP"][64]; pair[0] != 1.0 || pair[1] != 1.0 {
		t.Errorf("Complete column must normalize to 1.0, got %v", pair)
	}
}

func TestFig9Structure(t *testing.T) {
	base := smallBase("DEDUP")
	table, vals, err := Fig9LimitedK(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "k=1") || !strings.Contains(table, "GEOMEAN") {
		t.Error("Figure 9 table incomplete")
	}
	pair, ok := vals["DEDUP"][64]
	if !ok {
		t.Fatal("Complete column missing")
	}
	if pair[0] != 1.0 || pair[1] != 1.0 {
		t.Errorf("normalization base must be 1.0, got %v", pair)
	}
}

func TestFig10Structure(t *testing.T) {
	base := smallBase("DEDUP")
	table, vals, err := Fig10ClusterSize(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "C-1") {
		t.Error("Figure 10 table incomplete")
	}
	if pair := vals["DEDUP"][1]; pair[0] != 1.0 {
		t.Errorf("C-1 normalizes to 1.0, got %v", pair)
	}
}

func TestReplacementAblation(t *testing.T) {
	table, vals, err := ReplacementAblation(smallBase("DEDUP"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table, "mod") {
		t.Error("ablation table incomplete")
	}
	if _, ok := vals["DEDUP"]; !ok {
		t.Fatal("ablation values missing")
	}
}

func TestOracleAblation(t *testing.T) {
	_, vals, err := OracleAblation(smallBase("DEDUP"))
	if err != nil {
		t.Fatal(err)
	}
	pair := vals["DEDUP"]
	// The oracle removes failed-lookup cost but also perturbs contention
	// interleaving; the paper's claim is that the two are within 1%, and at
	// test scale they must at least be close.
	for i, v := range pair {
		if v < 0.9 || v > 1.1 {
			t.Errorf("lookup/oracle ratio[%d] = %v, want near 1", i, v)
		}
	}
}

// TestMatrixProgress pins the campaign-level progress aggregation: a 2x2
// matrix reports serialized observations whose overall fraction starts
// below 1, never decreases, retires exactly 4 members, and ends at 1.0.
func TestMatrixProgress(t *testing.T) {
	base := smallBase("DEDUP", "BARNES")
	base.Parallelism = 2
	var (
		obs        []CampaignProgress
		interior   bool
		lastFinish int
	)
	base.Progress = func(p CampaignProgress) {
		obs = append(obs, p)
		if p.Overall > 0 && p.Overall < 1 {
			interior = true
		}
		if p.MembersFinished < lastFinish {
			t.Errorf("members finished went backwards: %d after %d", p.MembersFinished, lastFinish)
		}
		lastFinish = p.MembersFinished
	}
	variants := []Variant{
		{Label: "S-NUCA", Scheme: coherence.SNUCA},
		{Label: "RT-3", Scheme: coherence.LocalityAware, RT: 3, K: 3, Cluster: 1},
	}
	if _, err := RunMatrix(base, variants); err != nil {
		t.Fatal(err)
	}
	if len(obs) == 0 {
		t.Fatal("no progress observations")
	}
	last := obs[len(obs)-1]
	if last.MembersFinished != 4 || last.Members != 4 || last.Overall != 1.0 {
		t.Fatalf("final observation = %+v, want 4/4 members at overall 1.0", last)
	}
	if !interior {
		t.Fatal("no interior overall fraction observed")
	}
	for _, p := range obs {
		if p.Bench != "DEDUP" && p.Bench != "BARNES" {
			t.Fatalf("observation names foreign bench %q", p.Bench)
		}
		if p.Label != "S-NUCA" && p.Label != "RT-3" {
			t.Fatalf("observation names foreign label %q", p.Label)
		}
	}
}

// TestStandaloneRunProgress pins single-run progress: member-only frames
// with a final finished observation.
func TestStandaloneRunProgress(t *testing.T) {
	base := smallBase()
	var last CampaignProgress
	n := 0
	base.Progress = func(p CampaignProgress) { last, n = p, n+1 }
	res, err := Run(base, "BARNES", Variant{Label: "S-NUCA", Scheme: coherence.SNUCA})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || last.MembersFinished != 1 || last.Members != 1 || last.Overall != 1.0 {
		t.Fatalf("final standalone observation = %+v (n=%d)", last, n)
	}
	if last.MemberDone != res.Ops || last.MemberTotal != res.Ops {
		t.Fatalf("final member ops = %d/%d, want %d", last.MemberDone, last.MemberTotal, res.Ops)
	}
}
