package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lard"
	"lard/internal/resultstore"
)

// smallCampaign is a fast real campaign: benches x {S-NUCA, RT-3} at 16
// cores and a tiny trace.
func smallCampaign(benches ...string) lard.CampaignSpec {
	return lard.CampaignSpec{
		Benchmarks: benches,
		Schemes:    []lard.Scheme{lard.SNUCA(), lard.LocalityAware(3)},
		Options:    lard.Options{Cores: 16, OpsScale: 0.02},
	}
}

// postCampaign submits a campaign and decodes the campaign view.
func postCampaign(t *testing.T, ts *httptest.Server, spec lard.CampaignSpec) (int, CampaignView) {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v CampaignView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, v
}

// pollCampaign fetches a campaign until it is complete or a member fails.
func pollCampaign(t *testing.T, ts *httptest.Server, id string) CampaignView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v CampaignView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Complete || v.Counts[StatusFailed] > 0 {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("campaign never completed")
	return CampaignView{}
}

// TestCampaignLifecycle drives the happy path: submit a 2x2 matrix, watch
// the counters converge, and require exactly one simulation per member.
func TestCampaignLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	spec := smallCampaign("BARNES", "DEDUP")

	code, v := postCampaign(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if v.Total != 4 || len(v.Members) != 4 {
		t.Fatalf("campaign has %d members, want 4: %+v", v.Total, v)
	}
	sum := 0
	for _, n := range v.Counts {
		sum += n
	}
	if sum != v.Total {
		t.Fatalf("counters %v must sum to total %d", v.Counts, v.Total)
	}

	done := pollCampaign(t, ts, v.ID)
	if !done.Complete || done.Counts[StatusDone] != 4 {
		t.Fatalf("campaign = %+v", done)
	}
	for _, m := range done.Members {
		if m.Status != StatusDone {
			t.Fatalf("member %+v not done", m)
		}
		if m.Scheme != "S-NUCA" && m.Scheme != "RT-3" {
			t.Fatalf("member label %q", m.Scheme)
		}
	}
	if computes := s.store.Stats().Computes; computes != 4 {
		t.Fatalf("computes = %d, want 4", computes)
	}

	// Member runs are ordinary jobs: GET /v1/runs/{member id} works.
	resp, err := http.Get(ts.URL + "/v1/runs/" + done.Members[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var jv JobView
	err = json.NewDecoder(resp.Body).Decode(&jv)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || jv.Status != StatusDone {
		t.Fatalf("member job GET = %d %+v (%v)", resp.StatusCode, jv, err)
	}

	// Resubmitting the identical matrix attaches to the same campaign and
	// is already complete: 200, no new simulations.
	code, again := postCampaign(t, ts, spec)
	if code != http.StatusOK || again.ID != v.ID || !again.Complete {
		t.Fatalf("resubmit = %d %+v", code, again)
	}
	if computes := s.store.Stats().Computes; computes != 4 {
		t.Fatalf("resubmit ran %d extra simulations", computes-4)
	}
}

// TestCampaignDedup pins member deduplication: duplicate scheme entries
// collapse to one content-addressed run per benchmark, and a run shared
// with a prior direct submission is not simulated again.
func TestCampaignDedup(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// Simulate one member up front through the run API.
	_, rv := post(t, ts, RunRequest{
		Benchmark: "BARNES",
		Scheme:    lard.SNUCA(),
		Options:   lard.Options{Cores: 16, OpsScale: 0.02},
	})
	poll(t, ts, rv.ID)
	if computes := s.store.Stats().Computes; computes != 1 {
		t.Fatalf("setup computes = %d", computes)
	}

	spec := smallCampaign("BARNES")
	spec.Schemes = append(spec.Schemes, lard.SNUCA(), lard.LocalityAware(3)) // duplicates
	code, v := postCampaign(t, ts, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if v.Total != 2 {
		t.Fatalf("deduped campaign has %d members, want 2 (S-NUCA + RT-3)", v.Total)
	}

	done := pollCampaign(t, ts, v.ID)
	if !done.Complete {
		t.Fatalf("campaign = %+v", done)
	}
	// Only RT-3 was new: the S-NUCA member rode the earlier run.
	if computes := s.store.Stats().Computes; computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
	if done.Cached != 1 {
		t.Fatalf("cached members = %d, want 1 (the pre-run S-NUCA)", done.Cached)
	}
}

// TestCampaignTable renders a completed campaign as figure-style tables and
// refuses to render an incomplete one.
func TestCampaignTable(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	spec := smallCampaign("BARNES", "DEDUP")
	_, v := postCampaign(t, ts, spec)
	pollCampaign(t, ts, v.ID)

	get := func(url string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get(ts.URL + "/v1/campaigns/" + v.ID + "/table")
	if code != http.StatusOK {
		t.Fatalf("table = %d (%v)", code, body)
	}
	table, _ := body["table"].(string)
	for _, want := range []string{"completion time", "S-NUCA", "RT-3", "BARNES", "DEDUP", "AVERAGE"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// The S-NUCA column normalizes to 1.000.
	avgs, _ := body["averages"].(map[string]any)
	if avgs["S-NUCA"] != 1.0 {
		t.Errorf("S-NUCA average = %v, want 1.0", avgs["S-NUCA"])
	}

	if code, body := get(ts.URL + "/v1/campaigns/" + v.ID + "/table?metric=energy"); code != http.StatusOK ||
		!strings.Contains(body["table"].(string), "energy") {
		t.Errorf("energy table = %d %v", code, body)
	}
	if code, _ := get(ts.URL + "/v1/campaigns/" + v.ID + "/table?metric=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus metric = %d, want 400", code)
	}
	if code, _ := get(ts.URL + "/v1/campaigns/doesnotexist/table"); code != http.StatusNotFound {
		t.Errorf("unknown campaign table = %d, want 404", code)
	}

	// An incomplete campaign refuses to render: block the worker pool so
	// the new campaign's members cannot finish.
	release := make(chan struct{})
	_, ts2 := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Run: blockingTestRun(nil, release)})
	defer close(release)
	_, v2 := postCampaign(t, ts2, smallCampaign("BARNES"))
	resp, err := http.Get(ts2.URL + "/v1/campaigns/" + v2.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("incomplete table = %d, want 409", resp.StatusCode)
	}
}

// TestCampaignBackpressure fills the queue mid-campaign: the POST sheds
// with 429, the campaign stays registered part-filled, and re-POSTing the
// same matrix continues the fan-out to completion.
func TestCampaignBackpressure(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Run: blockingTestRun(nil, release)})

	// 3 benchmarks x 2 schemes = 6 members against capacity 2 (1 worker +
	// 1 queue slot).
	spec := smallCampaign("BARNES", "DEDUP", "RADIX")
	code, v := postCampaign(t, ts, spec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overfull submit = %d, want 429", code)
	}
	if v.Error == "" {
		t.Fatal("shed campaign must carry an explanation")
	}
	if v.Counts[StatusPending] == 0 {
		t.Fatalf("part-filled campaign must report pending members: %v", v.Counts)
	}
	accepted := v.Counts[StatusQueued] + v.Counts[StatusRunning]
	if accepted == 0 || accepted+v.Counts[StatusPending] != v.Total {
		t.Fatalf("counts %v inconsistent with total %d", v.Counts, v.Total)
	}

	// The part-filled campaign is visible on GET.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("part-filled GET = %d", resp.StatusCode)
	}

	// Unblock the pool and drive the campaign home by re-POSTing as
	// capacity frees up, exactly like a well-behaved client.
	close(release)
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, v = postCampaign(t, ts, spec)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never drained; last = %d %+v", code, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !v.Complete || v.Counts[StatusDone] != 6 {
		t.Fatalf("drained campaign = %+v", v)
	}
	_ = s
}

// TestCampaignShedStillServesCachedMembers pins the part-fill contract: a
// queue shed must not abandon the rest of the fan-out, because members
// whose results are already in the store materialize as done without
// touching the queue. One 429 POST still completes every cached member.
func TestCampaignShedStillServesCachedMembers(t *testing.T) {
	dir := t.TempDir()
	st1, _ := resultstore.New(dir)
	_, ts1 := newTestServer(t, Config{Store: st1, Workers: 2, QueueDepth: 8})
	// Compute the S-NUCA column of the campaign below into the shared store.
	for _, b := range []string{"BARNES", "DEDUP"} {
		_, v := post(t, ts1, RunRequest{
			Benchmark: b, Scheme: lard.SNUCA(),
			Options: lard.Options{Cores: 16, OpsScale: 0.02},
		})
		poll(t, ts1, v.ID)
	}

	// Fresh server over the same store with its worker blocked and its
	// one-slot queue full of unrelated jobs: no capacity for novel members.
	release := make(chan struct{})
	started := make(chan string, 1)
	st2, _ := resultstore.New(dir)
	_, ts2 := newTestServer(t, Config{Store: st2, Workers: 1, QueueDepth: 1, Run: blockingTestRun(started, release)})
	defer close(release)
	post(t, ts2, smallRun(51))
	<-started
	post(t, ts2, smallRun(52))

	// 2 store-cached members (S-NUCA) + 2 novel (RT-3): the novel ones
	// shed, the cached ones complete anyway.
	code, v := postCampaign(t, ts2, smallCampaign("BARNES", "DEDUP"))
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit = %d, want 429", code)
	}
	if v.Counts[StatusDone] != 2 || v.Cached != 2 {
		t.Fatalf("cached members must complete despite the shed: %+v", v)
	}
	if v.Counts[StatusPending] != 2 {
		t.Fatalf("novel members must stay pending: %v", v.Counts)
	}
	if st2.Stats().Computes != 0 {
		t.Fatal("no simulation may run while the pool is blocked")
	}
}

// TestCampaignSurvivesJobEviction pins the store fallback for campaigns: a
// finished campaign whose member job records age out of the completed-job
// registry must stay complete (the store remembers) — not flip back to
// pending with a table that 409s forever.
func TestCampaignSurvivesJobEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, MaxCompletedJobs: 2})
	_, v := postCampaign(t, ts, smallCampaign("BARNES", "DEDUP"))
	done := pollCampaign(t, ts, v.ID)
	if !done.Complete {
		t.Fatalf("campaign = %+v", done)
	}

	// Push the campaign's member jobs out of the bounded registry with
	// unrelated runs.
	for seed := uint64(10); seed <= 13; seed++ {
		_, rv := post(t, ts, smallRun(seed))
		poll(t, ts, rv.ID)
	}
	evicted := 0
	for _, m := range done.Members {
		if _, ok := s.Engine().Job(m.ID); !ok {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("test setup: no member job was evicted")
	}

	after := pollCampaign(t, ts, v.ID)
	if !after.Complete || after.Counts[StatusPending] != 0 {
		t.Fatalf("campaign after eviction = %+v, want still complete", after)
	}
	// The campaign simulated every member itself; the store fallback must
	// not launder those simulations into cached counts after eviction.
	if after.Cached != 0 {
		t.Fatalf("cached = %d, want 0 (all members were simulated by this campaign)", after.Cached)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + v.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	var tbl campaignTableView
	err = json.NewDecoder(resp.Body).Decode(&tbl)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("table after eviction = %d (%v)", resp.StatusCode, err)
	}
	if !strings.Contains(tbl.Table, "BARNES") {
		t.Fatalf("table incomplete:\n%s", tbl.Table)
	}
	if computes := s.store.Stats().Computes; computes != 8 {
		t.Fatalf("fallback must not simulate (computes = %d, want 8)", computes)
	}

	// Re-POSTing the matrix after eviction recreates the member jobs from
	// the store (their job records say cached) — but the campaign's own
	// accounting must still report them as simulated, not cached.
	code, again := postCampaign(t, ts, smallCampaign("BARNES", "DEDUP"))
	if code != http.StatusOK || !again.Complete {
		t.Fatalf("re-POST after eviction = %d %+v", code, again)
	}
	if again.Cached != 0 {
		t.Fatalf("re-POST laundered %d simulated members into cached", again.Cached)
	}
}

// TestCampaignValidation covers malformed campaign submissions.
func TestCampaignValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"bad JSON":      "{",
		"unknown field": `{"schemes":[{"kind":"S-NUCA"}],"bogus":1}`,
		"no schemes":    `{"benchmarks":["BARNES"]}`,
		"unknown bench": `{"benchmarks":["NOPE"],"schemes":[{"kind":"S-NUCA"}]}`,
		"RT-0 scheme":   `{"benchmarks":["BARNES"],"schemes":[{"kind":"RT","classifier_k":3,"cluster_size":1}]}`,
		"bad cores":     `{"benchmarks":["BARNES"],"schemes":[{"kind":"S-NUCA"}],"options":{"cores":7}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign = %d, want 404", resp.StatusCode)
	}
}

// TestCampaignFigure7CachedTwice is the acceptance test for the campaign
// layer: submitting the Figure-7 matrix as one campaign twice performs zero
// simulations the second time — every member is served from the store and
// counted cached. The second submission runs on a fresh server over the
// same store directory, the production shape of "re-render last week's
// figure".
func TestCampaignFigure7CachedTwice(t *testing.T) {
	benches := []string(nil) // all 21, the full Figure-7 matrix
	if testing.Short() {
		benches = []string{"BARNES", "DEDUP", "RADIX"}
	}
	spec := lard.CampaignSpec{
		Benchmarks: benches,
		Schemes:    lard.FigureSchemes(),
		Options:    lard.Options{Cores: 16, OpsScale: 0.02},
	}
	nBench := len(benches)
	if nBench == 0 {
		nBench = len(lard.Benchmarks())
	}
	wantMembers := nBench * len(lard.FigureSchemes())

	dir := t.TempDir()
	st1, _ := resultstore.New(dir)
	s1, ts1 := newTestServer(t, Config{Store: st1, QueueDepth: wantMembers})
	code, v := postCampaign(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	if v.Total != wantMembers {
		t.Fatalf("campaign has %d members, want %d", v.Total, wantMembers)
	}
	first := pollCampaign(t, ts1, v.ID)
	if !first.Complete {
		t.Fatalf("first campaign = %+v", first)
	}
	if computes := s1.store.Stats().Computes; computes != uint64(wantMembers) {
		t.Fatalf("first pass computes = %d, want %d", computes, wantMembers)
	}

	// Second submission, fresh server, same store: answered instantly and
	// entirely from the store.
	st2, _ := resultstore.New(dir)
	s2, ts2 := newTestServer(t, Config{Store: st2, QueueDepth: wantMembers})
	code, again := postCampaign(t, ts2, spec)
	if code != http.StatusOK {
		t.Fatalf("second submit = %d, want 200 (instant, all cached)", code)
	}
	if again.ID != v.ID {
		t.Fatal("identical matrices must share a campaign id")
	}
	if !again.Complete || again.Cached != wantMembers || again.Counts[StatusDone] != wantMembers {
		t.Fatalf("second campaign = complete=%v cached=%d counts=%v, want all %d cached",
			again.Complete, again.Cached, again.Counts, wantMembers)
	}
	st := s2.store.Stats()
	if st.Computes != 0 {
		t.Fatalf("second pass ran %d simulations, want 0", st.Computes)
	}
	if st.DiskHits != uint64(wantMembers) {
		t.Fatalf("second pass disk hits = %d, want %d", st.DiskHits, wantMembers)
	}

	// The table renders instantly from the cached members.
	resp, err := http.Get(ts2.URL + "/v1/campaigns/" + again.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	var tbl campaignTableView
	err = json.NewDecoder(resp.Body).Decode(&tbl)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("table = %d (%v)", resp.StatusCode, err)
	}
	if !strings.Contains(tbl.Table, "RT-3") || tbl.Averages["S-NUCA"] != 1.0 {
		t.Fatalf("table incomplete:\n%s", tbl.Table)
	}
}
