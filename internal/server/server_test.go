package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"lard"
	"lard/internal/resultstore"
)

// newTestServer builds a started server over a fresh store and registers
// cleanup that verifies graceful shutdown.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		st, err := resultstore.New(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("graceful shutdown failed: %v", err)
		}
	})
	return s, ts
}

// smallRun is a fast real request (16 cores, tiny trace).
func smallRun(seed uint64) RunRequest {
	return RunRequest{
		Benchmark: "BARNES",
		Scheme:    lard.LocalityAware(3),
		Options:   lard.Options{Cores: 16, OpsScale: 0.02, Seed: seed},
	}
}

// post submits a run and decodes the job view.
func post(t *testing.T, ts *httptest.Server, req RunRequest) (int, JobView) {
	t.Helper()
	b, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, v
}

// poll fetches a job until it leaves the queued/running states.
func poll(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusFailed {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never completed")
	return JobView{}
}

// TestLifecycle drives the happy path: submit, poll, result — then
// resubmits and requires a synchronous cache hit with the identical result
// and zero additional simulations.
func TestLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := smallRun(0)

	code, v := post(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if v.Status != StatusQueued && v.Status != StatusRunning {
		t.Fatalf("fresh job status = %q", v.Status)
	}

	done := poll(t, ts, v.ID)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("job = %+v", done)
	}
	if done.Result.Benchmark != "BARNES" || done.Result.CompletionCycles == 0 {
		t.Fatalf("bad result %+v", done.Result)
	}
	computes := s.store.Stats().Computes
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}

	// Resubmission is a synchronous cache hit: 200, cached, identical
	// result, no new simulation.
	code, again := post(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("cache-hit submit = %d, want 200", code)
	}
	if again.Status != StatusDone || !again.Cached {
		t.Fatalf("cache-hit job = %+v", again)
	}
	if !reflect.DeepEqual(again.Result, done.Result) {
		t.Fatal("cache hit must return the identical result")
	}
	if got := s.store.Stats().Computes; got != computes {
		t.Fatalf("cache hit ran %d extra simulations", got-computes)
	}
}

// TestCacheHitAcrossRestart pins the disk backend: a new server over the
// same store directory answers a previously computed run without
// simulating.
func TestCacheHitAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st1, _ := resultstore.New(dir)
	_, ts1 := newTestServer(t, Config{Store: st1, Workers: 1})
	_, v := post(t, ts1, smallRun(7))
	first := poll(t, ts1, v.ID)

	st2, _ := resultstore.New(dir)
	s2, ts2 := newTestServer(t, Config{Store: st2, Workers: 1})
	code, hit := post(t, ts2, smallRun(7))
	if code != http.StatusOK || !hit.Cached || hit.Status != StatusDone {
		t.Fatalf("restart hit = %d %+v", code, hit)
	}
	if !reflect.DeepEqual(hit.Result, first.Result) {
		t.Fatal("restarted server must serve the identical stored result")
	}
	if s2.store.Stats().Computes != 0 {
		t.Fatal("restarted server must not re-simulate")
	}
}

// blockingTestRun is a RunFunc that parks until release fires (or the run
// is cancelled), optionally announcing each start on started.
func blockingTestRun(started chan<- string, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, st *resultstore.Store, benchmark string, s lard.Scheme, o lard.Options, p lard.ProgressFunc) (*lard.Result, bool, error) {
		if started != nil {
			started <- s.Label()
		}
		select {
		case <-release:
			return &lard.Result{Benchmark: benchmark, Scheme: s.Label(), CompletionCycles: 1}, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// mustJobView fetches a job snapshot from the engine.
func mustJobView(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	v, ok := s.Engine().Job(id)
	if !ok {
		t.Fatalf("job %s missing", id)
	}
	return v
}

// TestQueueBackpressure fills the worker and the queue with blocked jobs
// and requires the next submission to shed with 429.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, Run: blockingTestRun(nil, release)})
	defer close(release)

	// Job 1 occupies the worker, job 2 the queue slot; distinct seeds keep
	// the content addresses distinct.
	_, v1 := post(t, ts, smallRun(1))
	// Wait until the worker picked job 1 up, freeing the queue slot order.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := mustJobView(t, s, v1.ID); v.Status == StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := post(t, ts, smallRun(2)); code != http.StatusAccepted {
		t.Fatalf("queued submit = %d, want 202", code)
	}
	code, _ := post(t, ts, smallRun(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", code)
	}
}

// TestDuplicateSubmitSharesJob submits the same run twice while it is in
// flight and requires one job, not two.
func TestDuplicateSubmitSharesJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 4, Run: blockingTestRun(started, release)})

	_, v1 := post(t, ts, smallRun(1))
	<-started
	code, v2 := post(t, ts, smallRun(1))
	if code != http.StatusAccepted || v2.ID != v1.ID {
		t.Fatalf("duplicate submit = %d id %s, want 202 with id %s", code, v2.ID, v1.ID)
	}
	close(release)
	done := poll(t, ts, v1.ID)
	if done.Status != StatusDone {
		t.Fatalf("job = %+v", done)
	}
	if len(started) != 0 {
		t.Fatal("duplicate submit must not start a second simulation")
	}
}

func TestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"bad JSON":       "{",
		"unknown field":  `{"benchmark":"BARNES","scheme":{"kind":"S-NUCA"},"bogus":1}`,
		"unknown bench":  `{"benchmark":"NOPE","scheme":{"kind":"S-NUCA"}}`,
		"unknown scheme": `{"benchmark":"BARNES","scheme":{"kind":"BOGUS"}}`,
		"unsquare mesh":  `{"benchmark":"BARNES","scheme":{"kind":"S-NUCA"},"options":{"cores":7}}`,
		"bad classifier": `{"benchmark":"BARNES","scheme":{"kind":"RT","rt":3,"classifier_k":99,"cluster_size":1},"options":{"cores":16}}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/runs/doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
}

func TestAuxEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/benchmarks")
	if err != nil {
		t.Fatal(err)
	}
	var benches struct {
		Benchmarks []string `json:"benchmarks"`
	}
	err = json.NewDecoder(resp.Body).Decode(&benches)
	resp.Body.Close()
	if err != nil || len(benches.Benchmarks) != 21 {
		t.Fatalf("benchmarks = %d (%v), want 21", len(benches.Benchmarks), err)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sv statsView
	err = json.NewDecoder(resp.Body).Decode(&sv)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sv.Workers != 1 || sv.QueueCap != 2 {
		t.Fatalf("stats = %+v", sv)
	}
}

// TestShutdownFailsQueuedJobs verifies graceful shutdown: in-flight work
// finishes (workers joined, no goroutine leak under -race) and jobs still
// in the queue report failed.
func TestShutdownFailsQueuedJobs(t *testing.T) {
	st, _ := resultstore.New("")
	release := make(chan struct{})
	started := make(chan string, 1)
	srv, err := New(Config{Store: st, Workers: 1, QueueDepth: 2, Run: blockingTestRun(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, v1 := post(t, ts, smallRun(1))
	<-started
	_, v2 := post(t, ts, smallRun(2))

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	<-srv.Engine().Stopping() // wait until Shutdown has signalled the workers
	close(release)            // then let the in-flight job finish
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if v := mustJobView(t, srv, v1.ID); v.Status != StatusDone {
		t.Errorf("in-flight job = %q, want done", v.Status)
	}
	if v := mustJobView(t, srv, v2.ID); v.Status != StatusFailed {
		t.Errorf("queued job = %q, want failed", v.Status)
	}

	// A post-shutdown submission is refused.
	b, _ := json.Marshal(smallRun(3))
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit = %d, want 503", resp.StatusCode)
	}
}

// TestCompletedJobEviction bounds the finished-job registry: old completed
// jobs are evicted from the registry, but GET falls back to the store by
// content address, so a client polling an evicted id still receives the
// result instead of a bogus 404.
func TestCompletedJobEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxCompletedJobs: 2})

	_, v1 := post(t, ts, smallRun(1))
	first := poll(t, ts, v1.ID)
	for seed := uint64(2); seed <= 4; seed++ {
		_, v := post(t, ts, smallRun(seed))
		poll(t, ts, v.ID)
	}

	n := 0
	for _, c := range s.Engine().Stats().Jobs {
		n += c
	}
	_, stillThere := s.Engine().Job(v1.ID)
	if n > 2 {
		t.Fatalf("registry holds %d jobs, want <= 2", n)
	}
	if stillThere {
		t.Fatal("oldest job must have been evicted from the registry")
	}

	// GET on the evicted id answers from the store, not 404.
	resp, err := http.Get(ts.URL + "/v1/runs/" + v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	var evicted JobView
	err = json.NewDecoder(resp.Body).Decode(&evicted)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted job GET = %d, want 200 via store fallback", resp.StatusCode)
	}
	if evicted.Status != StatusDone || !evicted.Cached || evicted.Result == nil {
		t.Fatalf("store-fallback view = %+v", evicted)
	}
	if !reflect.DeepEqual(evicted.Result, first.Result) {
		t.Fatal("store fallback must serve the original result")
	}
	if computes := s.store.Stats().Computes; computes != 4 {
		t.Fatalf("fallback must not simulate (computes = %d, want 4)", computes)
	}

	// A genuinely unknown id is still 404.
	resp, err = http.Get(ts.URL + "/v1/runs/" + strings.Repeat("ab", 32))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id GET = %d, want 404", resp.StatusCode)
	}

	// Resubmission of the evicted run is likewise a cache hit.
	code, hit := post(t, ts, smallRun(1))
	if code != http.StatusOK || !hit.Cached || hit.Status != StatusDone {
		t.Fatalf("evicted run resubmit = %d %+v", code, hit)
	}
}

// TestRunRequestValidation pins the server-side RT guard: a decoded RT
// scheme without a threshold is rejected up front, never silently simulated
// at the default threshold.
func TestRunRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{"benchmark":"BARNES","scheme":{"kind":"RT","classifier_k":3,"cluster_size":1},"options":{"cores":16}}`
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	var e map[string]string
	err = json.NewDecoder(resp.Body).Decode(&e)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("RT-0 submit = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(e["error"], "rt") {
		t.Fatalf("error %q should name the rt field", e["error"])
	}
}

// TestConfigValidation covers constructor errors and defaults.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a store must error")
	}
	st, _ := resultstore.New("")
	s, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if w, q := s.Engine().Workers(), s.Engine().QueueCap(); w < 1 || q != 2*w {
		t.Fatalf("defaults: workers %d queue %d", w, q)
	}
}
