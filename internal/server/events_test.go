package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"lard"
	"lard/internal/resultstore"
)

// sseClient consumes one Server-Sent Events stream over real HTTP.
type sseClient struct {
	resp   *http.Response
	sc     *bufio.Scanner
	cancel context.CancelFunc
}

// openSSE attaches to an event stream; the returned client must be closed.
func openSSE(t *testing.T, url string) *sseClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("events stream = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	return &sseClient{resp: resp, sc: sc, cancel: cancel}
}

func (c *sseClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next returns the next event frame, skipping heartbeats; ok=false at
// stream end.
func (c *sseClient) next(t *testing.T) (Event, bool) {
	t.Helper()
	for c.sc.Scan() {
		line := c.sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id: lines, heartbeat comments, blank separators
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event payload %q: %v", line, err)
		}
		return ev, true
	}
	return Event{}, false
}

// collect drains the stream until done says stop, with a deadline.
func (c *sseClient) collect(t *testing.T, timeout time.Duration, done func(Event) bool) []Event {
	t.Helper()
	var events []Event
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			ev, ok := c.next(t)
			if !ok {
				return
			}
			events = append(events, ev)
			if done(ev) {
				return
			}
		}
	}()
	select {
	case <-finished:
		return events
	case <-time.After(timeout):
		c.cancel()
		<-finished
		t.Fatalf("stream did not finish in %v; %d events so far", timeout, len(events))
		return nil
	}
}

// TestCampaignSSEEndToEnd is this PR's acceptance test: a Figure-style
// campaign submitted over POST /v1/campaigns, watched over a real HTTP SSE
// stream — ordered per-member lifecycle events, at least one strictly
// interior instructions-retired progress event per member, one terminal
// event per member, a campaign-level completion event — and byte-equal
// replayed history for a second subscriber attaching after the fact.
func TestCampaignSSEEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 16, SSEHeartbeat: 50 * time.Millisecond})
	spec := smallCampaign("BARNES", "DEDUP")

	code, v := postCampaign(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}

	url := ts.URL + "/v1/campaigns/" + v.ID + "/events"
	c := openSSE(t, url)
	defer c.close()
	events := c.collect(t, 60*time.Second, func(ev Event) bool { return ev.Terminal && ev.Job == "" })

	// Per-member checks: ordered seqs; queued -> running -> interior
	// progress -> terminal done for all four members.
	type memberTrace struct {
		interior  bool
		terminals int
		last      string
	}
	members := map[string]*memberTrace{}
	lastSeq := uint64(0)
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq went backwards: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Campaign != v.ID {
			t.Fatalf("event names foreign campaign: %+v", ev)
		}
		if ev.Job == "" {
			continue // the campaign-level completion frame
		}
		m := members[ev.Job]
		if m == nil {
			m = &memberTrace{}
			members[ev.Job] = m
			if ev.State != StatusQueued && ev.State != StatusDone {
				t.Fatalf("member %s first event = %q", ev.Job, ev.State)
			}
		}
		if ev.State == StatusRunning && ev.Progress > 0 && ev.Progress < 1 {
			m.interior = true
		}
		if ev.Terminal {
			m.terminals++
			m.last = ev.State
		}
	}
	if len(members) != 4 {
		t.Fatalf("events cover %d members, want 4", len(members))
	}
	for id, m := range members {
		if !m.interior {
			t.Errorf("member %s: no interior progress event (0 < p < 1)", id)
		}
		if m.terminals != 1 || m.last != StatusDone {
			t.Errorf("member %s: %d terminal events, last %q", id, m.terminals, m.last)
		}
	}
	final := events[len(events)-1]
	if final.State != StatusDone || final.Progress != 1 {
		t.Fatalf("campaign completion frame = %+v", final)
	}

	// A late subscriber replays the history: same events, same order
	// (modulo the bounded history window, which is larger than this run).
	c2 := openSSE(t, url)
	defer c2.close()
	replay := c2.collect(t, 30*time.Second, func(ev Event) bool { return ev.Terminal && ev.Job == "" })
	if len(replay) != len(events) {
		t.Fatalf("replay = %d events, want %d", len(replay), len(events))
	}
	for i := range replay {
		if replay[i] != events[i] {
			t.Fatalf("replay[%d] = %+v != live %+v", i, replay[i], events[i])
		}
	}

	// The run-level stream of one member replays too, ending at its own
	// terminal event.
	c3 := openSSE(t, ts.URL+"/v1/runs/"+v.Members[0].ID+"/events")
	defer c3.close()
	runEvents := c3.collect(t, 30*time.Second, func(ev Event) bool { return ev.Terminal })
	if len(runEvents) < 3 { // queued, running, ... done
		t.Fatalf("run stream = %d events, want full lifecycle", len(runEvents))
	}
	if runEvents[len(runEvents)-1].State != StatusDone {
		t.Fatalf("run stream terminal = %+v", runEvents[len(runEvents)-1])
	}
}

// TestRunCancellationEndToEnd cancels an in-flight REAL simulation over
// HTTP: DELETE /v1/runs/{id} yields a cancelled terminal event on the SSE
// stream and the worker slot is reclaimed (pool depth returns to idle in
// /stats).
func TestRunCancellationEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SSEHeartbeat: 50 * time.Millisecond})
	req := RunRequest{
		Benchmark: "BARNES",
		Scheme:    lard.SNUCA(),
		Options:   lard.Options{Cores: 16, OpsScale: 2.0}, // seconds of work
	}
	code, v := post(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	c := openSSE(t, ts.URL+"/v1/runs/"+v.ID+"/events")
	defer c.close()
	// Wait until the simulation demonstrably progresses, then cancel.
	c.collect(t, 30*time.Second, func(ev Event) bool {
		return ev.State == StatusRunning && ev.Progress > 0 && ev.Progress < 1
	})
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+v.ID, nil)
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", delResp.StatusCode)
	}

	tail := c.collect(t, 30*time.Second, func(ev Event) bool { return ev.Terminal })
	final := tail[len(tail)-1]
	if final.State != StatusCancelled {
		t.Fatalf("terminal state = %q, want cancelled", final.State)
	}

	// Pool drains back to idle and the cancellation is visible in /stats.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var sv statsView
		err = json.NewDecoder(resp.Body).Decode(&sv)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sv.Busy == 0 && sv.QueueLen == 0 {
			if sv.Engine.Cancellations != 1 {
				t.Fatalf("cancellations = %d, want 1", sv.Engine.Cancellations)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never idled: %+v", sv)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A second DELETE answers 409: the job is terminal.
	delReq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+v.ID, nil)
	delResp2, _ := http.DefaultClient.Do(delReq2)
	delResp2.Body.Close()
	if delResp2.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel = %d, want 409", delResp2.StatusCode)
	}
}

// TestSSEClientDisconnectMidCampaign pins subscriber cleanup: a client
// that vanishes mid-stream is detached — the engine's subscriber gauge
// returns to zero — while the campaign itself keeps running to completion.
func TestSSEClientDisconnectMidCampaign(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, Run: blockingTestRun(started, release), SSEHeartbeat: 10 * time.Millisecond})

	code, v := postCampaign(t, ts, smallCampaign("BARNES"))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	<-started // campaign is mid-flight

	c := openSSE(t, ts.URL+"/v1/campaigns/"+v.ID+"/events")
	// Wait until the server demonstrably registered the subscription.
	deadline := time.Now().Add(10 * time.Second)
	for s.Engine().EventStats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.close() // client disconnects mid-campaign

	for s.Engine().EventStats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber leaked after disconnect: %+v", s.Engine().EventStats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The campaign still completes.
	close(release)
	done := pollCampaign(t, ts, v.ID)
	if !done.Complete {
		t.Fatalf("campaign = %+v", done)
	}
}

// TestRunEventsStoreFallback pins the evicted-id path: an id the registry
// forgot but the store remembers streams one synthetic terminal frame.
func TestRunEventsStoreFallback(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, MaxCompletedJobs: 1})
	_, v1 := post(t, ts, smallRun(1))
	poll(t, ts, v1.ID)
	for seed := uint64(2); seed <= 3; seed++ {
		_, v := post(t, ts, smallRun(seed))
		poll(t, ts, v.ID)
	}
	if _, ok := s.Engine().Job(v1.ID); ok {
		t.Fatal("setup: job 1 was not evicted")
	}

	c := openSSE(t, ts.URL+"/v1/runs/"+v1.ID+"/events")
	defer c.close()
	events := c.collect(t, 10*time.Second, func(ev Event) bool { return ev.Terminal })
	if len(events) != 1 {
		t.Fatalf("fallback stream = %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.State != StatusDone || !ev.Cached || ev.Progress != 1 || ev.Job != v1.ID {
		t.Fatalf("fallback frame = %+v", ev)
	}

	// A genuinely unknown id is 404.
	resp, err := http.Get(ts.URL + "/v1/runs/" + strings.Repeat("ab", 32) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id events = %d, want 404", resp.StatusCode)
	}
}

// newStoreWithRuns builds a disk store holding n distinct stored runs.
func newStoreWithRuns(t *testing.T, n int) (*resultstore.Store, error) {
	t.Helper()
	st, err := resultstore.New(t.TempDir())
	if err != nil {
		return nil, err
	}
	for seed := uint64(1); seed <= uint64(n); seed++ {
		o := lard.Options{Cores: 16, OpsScale: 0.02, Seed: seed}
		if _, _, err := lard.RunWithStore(st, "BARNES", lard.SNUCA(), o); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// TestResultsKeysPaging pins the satellite bugfix: the ?keys=1 view
// honors limit/offset with validated parameters, exactly like the index
// view.
func TestResultsKeysPaging(t *testing.T) {
	st, err := newStoreWithRuns(t, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: st, Workers: 1})

	page := func(q string) (int, int, []string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/results" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Count int      `json:"count"`
			Keys  []string `json:"keys"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body.Count, body.Keys
	}

	code, count, keys := page("?keys=1&limit=2&offset=3")
	if code != http.StatusOK || count != 5 || len(keys) != 2 {
		t.Fatalf("paged keys = %d: %d of %d, want 2 of 5", code, len(keys), count)
	}
	// Past-the-end offsets clamp to empty, mirroring the index view.
	if code, count, keys := page("?keys=1&offset=9"); code != http.StatusOK || count != 5 || len(keys) != 0 {
		t.Fatalf("past-end keys = %d: %d of %d", code, len(keys), count)
	}
	// Unpaged stays the full listing.
	if code, _, keys := page("?keys=1"); code != http.StatusOK || len(keys) != 5 {
		t.Fatalf("full keys = %d: %d keys", code, len(keys))
	}
	// Malformed paging params now 400 on the keys view too.
	for _, q := range []string{"?keys=1&limit=nope", "?keys=1&offset=-4"} {
		resp, err := http.Get(ts.URL + "/v1/results" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestRunEventsReplayAfterRetry pins the stale-terminal replay fix: a
// subscriber attaching after a failed run was re-enqueued must NOT have
// its stream closed by the old terminal event mid-history — it follows
// the live retry to its real outcome.
func TestRunEventsReplayAfterRetry(t *testing.T) {
	release := make(chan struct{})
	attempts := 0
	flaky := func(ctx context.Context, st *resultstore.Store, bench string, sc lard.Scheme, o lard.Options, p lard.ProgressFunc) (*lard.Result, bool, error) {
		attempts++
		if attempts == 1 {
			return nil, false, errBoom
		}
		<-release
		return &lard.Result{Benchmark: bench, Scheme: sc.Label(), CompletionCycles: 1}, false, nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Run: flaky, SSEHeartbeat: 20 * time.Millisecond})

	// First attempt fails…
	_, v := post(t, ts, smallRun(1))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := poll(t, ts, v.ID); got.Status == StatusFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first attempt never failed")
		}
	}
	// …the re-POST re-enqueues it (retry), which blocks in the worker.
	if code, _ := post(t, ts, smallRun(1)); code != http.StatusAccepted {
		t.Fatal("retry not accepted")
	}

	// A subscriber attaching NOW sees the stale failed terminal
	// mid-history; the stream must survive it and deliver the retry's
	// done event once released.
	c := openSSE(t, ts.URL+"/v1/runs/"+v.ID+"/events")
	defer c.close()
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	events := c.collect(t, 30*time.Second, func(ev Event) bool { return ev.Terminal && ev.State == StatusDone })
	staleFailed := false
	for _, ev := range events {
		if ev.Terminal && ev.State == StatusFailed {
			staleFailed = true
		}
	}
	if !staleFailed {
		t.Fatal("replay should include the stale failed terminal (it is history)")
	}
	final := events[len(events)-1]
	if final.State != StatusDone || !final.Terminal {
		t.Fatalf("stream must end at the retry's real outcome, got %+v", final)
	}
}

// errBoom is a distinguishable failure for flaky-run tests.
var errBoom = errors.New("boom")
