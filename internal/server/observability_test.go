package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lard/internal/obs"
)

// tracedTestServer is newTestServer with run tracing enabled — the
// configuration the acceptance tests exercise.
func tracedTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Obs = obs.New(obs.Options{Tracing: true})
	return newTestServer(t, cfg)
}

// TestMetricsConformance runs real traffic through the server and then
// requires the full /metrics body to pass the Prometheus text-format
// linter: HELP before TYPE, contiguous families, no duplicates, and for
// every histogram ascending cumulative buckets with a +Inf bucket equal
// to _count. All five latency families plus the process-level families
// must be present.
func TestMetricsConformance(t *testing.T) {
	_, ts := tracedTestServer(t, Config{Workers: 2})

	// Generate traffic on several routes so the histograms hold samples:
	// a real run (run-duration, queue-wait, dispatch, store-op), its poll
	// (http), and a 404 (the error-path code label).
	_, v := post(t, ts, smallRun(1))
	poll(t, ts, v.ID)
	if resp, err := http.Get(ts.URL + "/v1/runs/nope"); err == nil {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}

	text := string(body)
	if errs := obs.Lint(text); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
		t.Fatalf("/metrics failed exposition lint (%d errors)", len(errs))
	}

	for _, family := range []string{
		"lard_run_duration_seconds",
		"lard_queue_wait_seconds",
		"lard_dispatch_seconds",
		"lard_store_op_seconds",
		"lard_http_request_seconds",
		"lard_build_info",
		"lard_goroutines",
		"lard_heap_bytes",
		"lard_gc_pause_seconds_total",
		"lard_uptime_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+family+" ") {
			t.Errorf("family %s missing from /metrics", family)
		}
	}

	// The run that completed must show up as a run-duration sample and the
	// disk-backed store as store-op samples.
	for _, sample := range []string{
		`lard_run_duration_seconds_count 1`,
		`lard_store_op_seconds_count{`,
		`lard_http_request_seconds_bucket{`,
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("expected %q in /metrics\n", sample)
		}
	}
	// Route labels come from the matched pattern, so every poll of
	// /v1/runs/<id> (and the 404 for the unknown id) lands in one series.
	if !strings.Contains(text, `route="GET /v1/runs/{id}"`) {
		t.Errorf("run-poll route label missing from lard_http_request_seconds")
	}
}

// TestCampaignTraceAcceptance is the issue's acceptance test: submit a
// real campaign over real HTTP with tracing enabled and require every
// member to answer GET /v1/runs/{id}/trace with a finished span tree
// whose simulating span carries a coherence_loop phase with non-zero
// duration.
func TestCampaignTraceAcceptance(t *testing.T) {
	_, ts := tracedTestServer(t, Config{Workers: 2, QueueDepth: 8})

	code, v := postCampaign(t, ts, smallCampaign("BARNES", "DEDUP"))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	done := pollCampaign(t, ts, v.ID)
	if !done.Complete {
		t.Fatalf("campaign = %+v", done)
	}

	for _, m := range done.Members {
		resp, err := http.Get(ts.URL + "/v1/runs/" + m.ID + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		var tree obs.TraceView
		err = json.NewDecoder(resp.Body).Decode(&tree)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("member %s trace = %d", m.ID, resp.StatusCode)
		}
		if !tree.Finished {
			t.Errorf("member %s (%s/%s): trace not finished", m.ID, m.Benchmark, m.Scheme)
		}
		if tree.Trace != m.ID {
			t.Errorf("trace id %q != member id %q", tree.Trace, m.ID)
		}
		loop, ok := findSpan(tree.Root, "coherence_loop")
		if !ok {
			t.Fatalf("member %s: no coherence_loop span in tree %+v", m.ID, tree.Root)
		}
		if loop.DurationMS <= 0 {
			t.Errorf("member %s: coherence_loop duration = %v, want > 0", m.ID, loop.DurationMS)
		}
		// The waterfall invariants: every span is closed, the root spans
		// the whole lifecycle, and the pipeline phases are all present.
		assertClosed(t, m.ID, tree.Root)
		for _, phase := range []string{"admitted", "queued", "simulating", "stored"} {
			if _, ok := findSpan(tree.Root, phase); !ok {
				t.Errorf("member %s: span %q missing", m.ID, phase)
			}
		}
	}
}

// TestTraceEndpointDisabled: without tracing, the endpoint 404s with a
// body that tells the operator how to turn it on.
func TestTraceEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	_, v := post(t, ts, smallRun(2))
	poll(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with tracing off = %d, want 404", resp.StatusCode)
	}
	if !strings.Contains(string(body), "tracing is disabled") {
		t.Fatalf("404 body %q should explain tracing is disabled", body)
	}
}

// TestStatsUptimeAndTracing: /stats carries process uptime and the
// tracing flag.
func TestStatsUptimeAndTracing(t *testing.T) {
	_, ts := tracedTestServer(t, Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Tracing       bool    `json:"tracing"`
	}
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if view.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", view.UptimeSeconds)
	}
	if !view.Tracing {
		t.Error("tracing flag should be true on a traced server")
	}
}

// findSpan walks the span tree for the first span with the given name.
func findSpan(v obs.SpanView, name string) (obs.SpanView, bool) {
	if v.Name == name {
		return v, true
	}
	for _, c := range v.Children {
		if found, ok := findSpan(c, name); ok {
			return found, true
		}
	}
	return obs.SpanView{}, false
}

// assertClosed requires every span in the tree to have ended.
func assertClosed(t *testing.T, member string, v obs.SpanView) {
	t.Helper()
	if v.End == nil {
		t.Errorf("member %s: span %q never ended", member, v.Name)
	}
	for _, c := range v.Children {
		assertClosed(t, member, c)
	}
}
