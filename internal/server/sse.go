// Server-Sent Events: the HTTP face of the engine's event bus.
//
//	GET /v1/runs/{id}/events       one run's lifecycle + progress stream
//	GET /v1/campaigns/{id}/events  a campaign's member events, fanned in
//
// Both streams follow the same protocol: on attach, the topic's retained
// history is replayed (so a late subscriber sees everything that already
// happened, in order), then live events flow as they are published, with
// comment heartbeats in between so idle connections stay provably alive.
// Each frame is
//
//	id: <seq>
//	data: <engine.Event as JSON>
//
// and the stream ends after the terminal event — the run's own for run
// streams; the campaign-level completion event (Job == "") for campaign
// streams, whose member events keep flowing until every member is
// terminal. A client that disconnects mid-stream is detached and its
// bounded event queue released; a client that consumes too slowly loses
// oldest-first (the engine counts drops in /metrics), never blocking the
// simulation.
//
// Watch a campaign live from a shell:
//
//	curl -N http://localhost:8347/v1/campaigns/<id>/events
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"lard"
	"lard/internal/engine"
)

// sseHandshake prepares the response for event streaming. ok=false when
// the connection cannot stream (no flusher). The metrics middleware's
// statusWriter always satisfies http.Flusher by delegation, so it asks
// the wrapper whether the real connection underneath can stream.
func sseHandshake(w http.ResponseWriter) (http.Flusher, bool) {
	f, ok := w.(http.Flusher)
	if sw, wrapped := w.(*statusWriter); wrapped {
		ok = sw.flusherCapable()
	}
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	return f, true
}

// writeSSE renders one event frame.
func writeSSE(w http.ResponseWriter, ev engine.Event) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
	return err
}

// stream replays history and then relays the live subscription until the
// stop condition fires, the client disconnects, or the subscription
// closes. Heartbeat comments flow while nothing else does.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, history []engine.Event, sub *engine.Subscription, done func(engine.Event) bool) {
	defer sub.Close()
	f, ok := sseHandshake(w)
	if !ok {
		return
	}
	for _, ev := range history {
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	f.Flush()
	// A terminal event mid-history is stale: a failed or cancelled job may
	// have been re-enqueued since, and the newer events follow it in the
	// replay. Only a terminal event that is the topic's LAST word means
	// the stream is over.
	if len(history) > 0 && done(history[len(history)-1]) {
		return
	}

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			// Client went away: detach (sub.Close above) so the engine's
			// subscriber gauge and bounded queue are released.
			return
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			f.Flush()
		case ev, open := <-sub.C:
			if !open {
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			f.Flush()
			if done(ev) {
				return
			}
		}
	}
}

// handleRunEvents implements GET /v1/runs/{id}/events. For ids the engine
// still tracks (or retains history for), the stream replays and follows
// the topic until the run's terminal event. For ids evicted from the
// registry whose result the store still holds, a single synthetic terminal
// frame is emitted — the event-sourced view of "done long ago".
func (s *Server) handleRunEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	history, sub, ok := s.engine.SubscribeRun(id)
	if !ok {
		res, found, err := lard.StoredByKey(s.store, id)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !found {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
			return
		}
		f, hOK := sseHandshake(w)
		if !hOK {
			return
		}
		writeSSE(w, engine.Event{
			Seq: 1, Job: id, Benchmark: res.Benchmark, Scheme: res.Scheme,
			State: StatusDone, Progress: 1, Cached: true, Terminal: true,
		})
		f.Flush()
		return
	}
	s.stream(w, r, history, sub, func(ev engine.Event) bool { return ev.Terminal })
}

// handleCampaignEvents implements GET /v1/campaigns/{id}/events: every
// member's lifecycle and progress events (Campaign set, Job = member id),
// ending with the campaign-level completion event (Job == ""). A campaign
// with pending members — a part-filled submission the client never
// re-POSTed — streams forever (heartbeats between events); completion
// requires every member to be enqueued at least once.
func (s *Server) handleCampaignEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	history, sub, ok := s.engine.SubscribeCampaign(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q (resubmit its matrix to rebuild it)", id))
		return
	}
	s.stream(w, r, history, sub, func(ev engine.Event) bool { return ev.Terminal && ev.Job == "" })
}
