package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"lard"
	"lard/internal/resultstore"
)

// TestRawResultEndpoints covers the peer-facing raw entry surface over
// HTTP: GET serves stored bytes, PUT validates and stores them on another
// node, DELETE drops them, and poisoned envelopes bounce.
func TestRawResultEndpoints(t *testing.T) {
	_, tsA := newTestServer(t, Config{Workers: 2})
	req := smallRun(21)
	key, err := lard.KeyFor(req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	code, v := post(t, tsA, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	poll(t, tsA, v.ID)

	// GET the raw entry.
	resp, err := http.Get(tsA.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw get = %d: %s", resp.StatusCode, raw)
	}
	var env struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Key != key || len(env.Result) == 0 {
		t.Fatalf("raw entry malformed: %v %q", err, env.Key)
	}

	// PUT it into a second, empty node; the run becomes servable there
	// without a simulation.
	sB, tsB := newTestServer(t, Config{Workers: 1})
	putReq, _ := http.NewRequest(http.MethodPut, tsB.URL+"/v1/results/"+key, bytes.NewReader(raw))
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusNoContent {
		t.Fatalf("raw put = %d", putResp.StatusCode)
	}
	if code, v := post(t, tsB, req); code != http.StatusOK || !v.Cached {
		t.Fatalf("transplanted run not served from store: %d %+v", code, v)
	}
	if c := sB.store.Stats().Computes; c != 0 {
		t.Fatalf("node B simulated %d times after raw transplant", c)
	}

	// A foreign-key PUT is rejected.
	badKey := strings.Repeat("ab", 32)
	badReq, _ := http.NewRequest(http.MethodPut, tsB.URL+"/v1/results/"+badKey, bytes.NewReader(raw))
	badResp, _ := http.DefaultClient.Do(badReq)
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("foreign-key put = %d, want 400", badResp.StatusCode)
	}

	// DELETE drops the entry; the raw GET then answers 404.
	delReq, _ := http.NewRequest(http.MethodDelete, tsB.URL+"/v1/results/"+key, nil)
	delResp, _ := http.DefaultClient.Do(delReq)
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete = %d", delResp.StatusCode)
	}
	gone, _ := http.Get(tsB.URL + "/v1/results/" + key)
	io.Copy(io.Discard, gone.Body)
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted entry get = %d, want 404", gone.StatusCode)
	}
}

// TestResultsPaging covers GET /v1/results paging and the keys-only
// listing.
func TestResultsPaging(t *testing.T) {
	st, err := resultstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Five distinct stored runs, via the facade so specs are real.
	for seed := uint64(1); seed <= 5; seed++ {
		o := lard.Options{Cores: 16, OpsScale: 0.02, Seed: seed}
		if _, _, err := lard.RunWithStore(st, "BARNES", lard.SNUCA(), o); err != nil {
			t.Fatal(err)
		}
	}
	_, ts := newTestServer(t, Config{Store: st, Workers: 1})

	page := func(q string) (int, map[string]json.RawMessage) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/results" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	code, m := page("?limit=2&offset=3")
	if code != http.StatusOK {
		t.Fatalf("paged index = %d", code)
	}
	var count int
	var rows []resultstore.IndexEntry
	json.Unmarshal(m["count"], &count)
	json.Unmarshal(m["results"], &rows)
	if count != 5 || len(rows) != 2 {
		t.Fatalf("page = %d rows of %d total, want 2 of 5", len(rows), count)
	}

	code, m = page("?keys=1")
	var keys []string
	json.Unmarshal(m["keys"], &keys)
	if code != http.StatusOK || len(keys) != 5 {
		t.Fatalf("keys listing = %d, %d keys", code, len(keys))
	}
	for _, k := range keys {
		if len(k) != 64 {
			t.Fatalf("malformed key %q", k)
		}
	}

	if code, _ := page("?limit=nope"); code != http.StatusBadRequest {
		t.Fatalf("bad limit = %d, want 400", code)
	}
	if code, _ := page("?offset=-4"); code != http.StatusBadRequest {
		t.Fatalf("negative offset = %d, want 400", code)
	}
}

// TestPeerReplication stacks two real servers: node B names node A's store
// as its owner backend through the replicated tier. A result computed on A
// is served on B without simulating (and promoted into B's local replica
// set); a result computed on B writes through to A.
func TestPeerReplication(t *testing.T) {
	sA, tsA := newTestServer(t, Config{Workers: 2})

	stB, err := resultstore.Open(resultstore.BackendConfig{
		Peer:               tsA.URL,
		ReplicateThreshold: 1, // promote on first fetch
	})
	if err != nil {
		t.Fatal(err)
	}
	sB, tsB := newTestServer(t, Config{Store: stB, Workers: 2})

	// Compute on A.
	reqShared := smallRun(31)
	code, v := post(t, tsA, reqShared)
	if code != http.StatusAccepted {
		t.Fatalf("A submit = %d", code)
	}
	done := poll(t, tsA, v.ID)

	// B answers the same request synchronously from A's store — zero local
	// simulations — and promotes the hot entry into its replica set.
	code, vB := post(t, tsB, reqShared)
	if code != http.StatusOK || !vB.Cached {
		t.Fatalf("B should serve A's result from the peer store: %d %+v", code, vB)
	}
	if vB.Result == nil || vB.Result.CompletionCycles != done.Result.CompletionCycles {
		t.Fatalf("peer-served result differs: %+v vs %+v", vB.Result, done.Result)
	}
	if c := sB.store.Stats().Computes; c != 0 {
		t.Fatalf("B simulated %d times, want 0", c)
	}
	bs, ok := sB.store.BackendStats()
	if !ok || bs.Replication == nil {
		t.Fatalf("B must expose a replicated backend, got %+v", bs)
	}
	if bs.Replication.OwnerFetches == 0 || bs.Replication.Promotions == 0 {
		t.Fatalf("replication counters flat: %+v", bs.Replication)
	}

	// A run computed on B writes through to the owner: A can now serve its
	// raw entry without ever having simulated it.
	reqNew := smallRun(32)
	keyNew, _ := lard.KeyFor(reqNew.Benchmark, reqNew.Scheme, reqNew.Options)
	code, vNew := post(t, tsB, reqNew)
	if code != http.StatusAccepted {
		t.Fatalf("B submit = %d", code)
	}
	poll(t, tsB, vNew.ID)
	resp, err := http.Get(tsA.URL + "/v1/results/" + keyNew)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner A lacks B's computed entry: %d", resp.StatusCode)
	}
	if c := sA.store.Stats().Computes; c != 1 {
		t.Fatalf("A computes = %d, want 1 (B's run must not re-simulate on A)", c)
	}

	// The locality win is observable: B's /metrics carries the replication
	// families, /stats carries the backend tree.
	mresp, err := http.Get(tsB.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"lard_replica_promotions_total",
		"lard_replica_hits_total",
		"lard_owner_fetches_total",
		"lard_replica_evictions_total",
		"lard_replicas",
		"lard_backend_gets_total",
	} {
		if !strings.Contains(string(mb), family) {
			t.Errorf("/metrics lacks %s", family)
		}
	}
	sresp, _ := http.Get(tsB.URL + "/stats")
	var sv struct {
		Backend *struct {
			Kind string `json:"kind"`
		} `json:"backend"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sv.Backend == nil || sv.Backend.Kind != "replicated" {
		t.Fatalf("/stats backend = %+v, want the replicated tier", sv.Backend)
	}
}

// TestShardedServerStats: a server over a sharded store reports per-shard
// entry counts in /stats and /metrics.
func TestShardedServerStats(t *testing.T) {
	st, err := resultstore.Open(resultstore.BackendConfig{Dir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 6; seed++ {
		o := lard.Options{Cores: 16, OpsScale: 0.02, Seed: seed}
		if _, _, err := lard.RunWithStore(st, "BARNES", lard.SNUCA(), o); err != nil {
			t.Fatal(err)
		}
	}
	_, ts := newTestServer(t, Config{Store: st, Workers: 1})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var sv struct {
		Backend *struct {
			Kind    string `json:"kind"`
			Entries int    `json:"entries"`
			Shards  []struct {
				Name    string `json:"name"`
				Entries int    `json:"entries"`
			} `json:"shards"`
		} `json:"backend"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sv)
	resp.Body.Close()
	if err != nil || sv.Backend == nil {
		t.Fatalf("stats: %v %+v", err, sv)
	}
	if sv.Backend.Kind != "sharded" || len(sv.Backend.Shards) != 4 || sv.Backend.Entries != 6 {
		t.Fatalf("backend tree = %+v", sv.Backend)
	}
	sum := 0
	for _, sh := range sv.Backend.Shards {
		sum += sh.Entries
	}
	if sum != 6 {
		t.Fatalf("per-shard entries sum to %d, want 6", sum)
	}

	mresp, _ := http.Get(ts.URL + "/metrics")
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), fmt.Sprintf("lard_backend_entries{backend=%q,kind=%q}", "sharded/shard-00", "disk")) {
		t.Errorf("/metrics lacks per-shard entry gauges:\n%s", grepLines(string(mb), "lard_backend_entries"))
	}
}

// grepLines returns the lines of s containing substr (test diagnostics).
func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
