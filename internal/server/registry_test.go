package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lard"
	"lard/internal/resultstore"
)

// TestSchemesEndpoint pins the discovery contract: every registered scheme
// (the five paper schemes plus EHC) is listed with its parameters and a
// ready-to-submit example, in paper order.
func TestSchemesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/schemes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Count   int               `json:"count"`
		Schemes []lard.SchemeInfo `json:"schemes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, s := range body.Schemes {
		kinds = append(kinds, s.Kind)
	}
	want := []string{"S-NUCA", "R-NUCA", "VR", "ASR", "RT", "EHC"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("schemes = %v, want %v", kinds, want)
	}
	if body.Count != len(want) {
		t.Fatalf("count = %d, want %d", body.Count, len(want))
	}
	for _, s := range body.Schemes {
		if s.Description == "" {
			t.Errorf("scheme %q has no description", s.Kind)
		}
		if s.Example.Kind != s.Kind {
			t.Errorf("scheme %q example has kind %q", s.Kind, s.Example.Kind)
		}
		if err := lard.ValidateScheme(s.Example); err != nil {
			t.Errorf("scheme %q example does not validate: %v", s.Kind, err)
		}
	}
}

// TestEHCCampaignEndToEnd is the pluggability acceptance test: the EHC
// scheme — registered entirely from its own policy file and facade
// registration — runs through the campaign API alongside a paper scheme
// with no server, harness or engine edits, and renders in the table.
func TestEHCCampaignEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	spec := lard.CampaignSpec{
		Benchmarks: []string{"BARNES"},
		Schemes:    []lard.Scheme{lard.SNUCA(), lard.ExpectedHitCount(3)},
		Options:    lard.Options{Cores: 16, OpsScale: 0.02},
	}
	code, v := postCampaign(t, ts, spec)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d, want 202 or 200", code)
	}
	v = pollCampaign(t, ts, v.ID)
	if !v.Complete || v.Counts[StatusFailed] != 0 {
		t.Fatalf("campaign did not complete cleanly: %+v", v)
	}
	labels := map[string]bool{}
	for _, m := range v.Members {
		labels[m.Scheme] = true
	}
	if !labels["EHC-3"] || !labels["S-NUCA"] {
		t.Fatalf("member labels = %v, want S-NUCA and EHC-3", labels)
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + v.ID + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table = %d, want 200", resp.StatusCode)
	}
	var tbl struct {
		Table    string             `json:"table"`
		Averages map[string]float64 `json:"averages"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Table, "EHC-3") {
		t.Fatalf("table does not render the EHC column:\n%s", tbl.Table)
	}
	if avg, ok := tbl.Averages["EHC-3"]; !ok || avg <= 0 {
		t.Fatalf("averages = %v, want a positive EHC-3 column", tbl.Averages)
	}
}

// TestASRLevelValidation pins the misconfiguration guard at the service
// boundary: a replication probability outside [0,1], or one the paper never
// labels, is rejected on both the run and campaign paths instead of
// silently simulating an unlabeled level under the "ASR" caption.
func TestASRLevelValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, level := range []float64{-0.5, 1.5, 0.3} {
		b, _ := json.Marshal(RunRequest{
			Benchmark: "BARNES",
			Scheme:    lard.Scheme{Kind: "ASR", ASRLevel: level},
			Options:   lard.Options{Cores: 16, OpsScale: 0.02},
		})
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("ASR level %v submit = %d, want 400", level, resp.StatusCode)
		}
		if !strings.Contains(string(msg), "0.25") {
			t.Fatalf("ASR level %v error should name the allowed levels, got %s", level, msg)
		}
	}
	code, _ := postCampaign(t, ts, lard.CampaignSpec{
		Benchmarks: []string{"BARNES"},
		Schemes:    []lard.Scheme{lard.Scheme{Kind: "ASR", ASRLevel: 0.33}},
		Options:    lard.Options{Cores: 16, OpsScale: 0.02},
	})
	if code != http.StatusBadRequest {
		t.Fatalf("campaign with bad ASR level = %d, want 400", code)
	}
}

// TestUnknownKindRejected: an unregistered kind names the registered ones.
func TestUnknownKindRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	b, _ := json.Marshal(RunRequest{
		Benchmark: "BARNES",
		Scheme:    lard.Scheme{Kind: "L33T-NUCA"},
		Options:   lard.Options{Cores: 16},
	})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind = %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(msg), "EHC") || !strings.Contains(string(msg), "S-NUCA") {
		t.Fatalf("error should list the registered kinds, got %s", msg)
	}
}

// TestMetricsEndpoint scrapes /metrics after a completed run and checks the
// families the satellite promised: run lifecycle counters, store traffic,
// campaign state and worker-pool depth, in the text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	code, job := post(t, ts, smallRun(41))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if v := poll(t, ts, job.ID); v.Status != StatusDone {
		t.Fatalf("run finished %q: %s", v.Status, v.Error)
	}
	if code, _ := postCampaign(t, ts, lard.CampaignSpec{
		Benchmarks: []string{"BARNES"},
		Schemes:    []lard.Scheme{lard.LocalityAware(3)},
		Options:    lard.Options{Cores: 16, OpsScale: 0.02, Seed: 41},
	}); code != http.StatusOK {
		// Every member was just computed by the direct run above, so the
		// campaign must complete synchronously from the store.
		t.Fatalf("campaign submit = %d, want 200", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE lard_runs_started_total counter",
		"lard_runs_started_total 1",
		"lard_runs_completed_total 1",
		"lard_runs_failed_total 0",
		"lard_jobs{status=\"done\"} 1",
		"lard_campaigns_registered_total 1",
		"lard_campaign_members{status=\"done\"} 1",
		"lard_workers 2",
		"# TYPE lard_store_computes_total counter",
		"lard_store_computes_total 1",
		"lard_store_evictions_total 0",
		"lard_queue_cap 8",
		// A two-worker pool guards SimWorkers back to 1, so the intra-run
		// scheduler families render at zero here; the nonzero path is
		// covered by TestMetricsParallelCounters.
		"lard_sim_parallel_rounds_total 0",
		"lard_sim_parallel_conflicts_total 0",
		"lard_sim_parallel_commits_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsParallelCounters pushes one run through a single-worker server
// with intra-run parallelism enabled and checks that the scheduler's round,
// conflict and commit counters accumulate into /metrics. A resubmission of
// the same run answers from the store and must leave the counters untouched
// (cached results carry no scheduler work).
func TestMetricsParallelCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, SimWorkers: 2})
	scrape := func() (rounds, commits uint64) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		for _, line := range strings.Split(string(body), "\n") {
			if v, ok := strings.CutPrefix(line, "lard_sim_parallel_rounds_total "); ok {
				if _, err := fmt.Sscanf(v, "%d", &rounds); err != nil {
					t.Fatalf("bad rounds line %q: %v", line, err)
				}
			}
			if v, ok := strings.CutPrefix(line, "lard_sim_parallel_commits_total "); ok {
				if _, err := fmt.Sscanf(v, "%d", &commits); err != nil {
					t.Fatalf("bad commits line %q: %v", line, err)
				}
			}
		}
		return rounds, commits
	}

	code, job := post(t, ts, smallRun(43))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit = %d", code)
	}
	if v := poll(t, ts, job.ID); v.Status != StatusDone {
		t.Fatalf("run finished %q: %s", v.Status, v.Error)
	}
	rounds, commits := scrape()
	if rounds == 0 || commits == 0 {
		t.Fatalf("parallel run accumulated no scheduler work: rounds=%d commits=%d", rounds, commits)
	}
	if rounds > commits {
		t.Fatalf("more rounds than commits (%d > %d): every round must commit at least one access", rounds, commits)
	}

	if code, _ := post(t, ts, smallRun(43)); code != http.StatusOK {
		t.Fatalf("cached resubmit = %d, want 200", code)
	}
	if r2, c2 := scrape(); r2 != rounds || c2 != commits {
		t.Fatalf("cached run moved the counters: rounds %d->%d, commits %d->%d", rounds, r2, commits, c2)
	}
}

// TestShutdownFinishesInFlightCampaignMembers covers graceful shutdown in
// the middle of a campaign fan-out: the member a worker is simulating
// completes and is recorded done, while still-queued members fail
// deterministically with the shutdown error instead of hanging in "queued".
func TestShutdownFinishesInFlightCampaignMembers(t *testing.T) {
	st, err := resultstore.New(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 8)
	release := make(chan struct{})
	s, err := New(Config{Store: st, Workers: 1, QueueDepth: 8, Run: blockingTestRun(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	spec := lard.CampaignSpec{
		Benchmarks: []string{"BARNES"},
		Schemes:    []lard.Scheme{lard.SNUCA(), lard.LocalityAware(3), lard.ExpectedHitCount(3)},
		Options:    lard.Options{Cores: 16, OpsScale: 0.02},
	}
	code, v := postCampaign(t, ts, spec)
	if code != http.StatusAccepted || v.Total != 3 {
		t.Fatalf("submit = %d %+v", code, v)
	}

	// One member is in a worker; two are queued behind it.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no member ever started")
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Let Shutdown commit to stopping before the in-flight run finishes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	view, ok, err := s.Engine().Campaign(v.ID)
	if err != nil || !ok {
		t.Fatalf("campaign view: ok=%v err=%v", ok, err)
	}
	if view.Counts[StatusDone] != 1 {
		t.Fatalf("in-flight member should finish, got %+v", view)
	}
	if view.Counts[StatusFailed] != 2 {
		t.Fatalf("queued members should fail on shutdown, got %+v", view)
	}
	for _, m := range view.Members {
		if m.Status == StatusFailed && !strings.Contains(m.Error, "shutting down") {
			t.Fatalf("failed member %s should carry the shutdown error, got %q", m.ID, m.Error)
		}
	}
}
