// Package server exposes the LLC simulator as an HTTP JSON service: an
// asynchronous job API over a content-addressed result store.
//
// Endpoints:
//
//	POST /v1/runs                  submit a run; 200 + result on a store
//	                               hit, 202 + job on a miss, 429 when the
//	                               queue is full
//	GET  /v1/runs/{id}             poll a job (the id is the run's content
//	                               address; evicted ids fall back to the
//	                               store)
//	POST /v1/campaigns             submit a benchmark x scheme matrix as
//	                               one campaign (see campaign.go)
//	GET  /v1/campaigns/{id}        campaign progress + per-member status
//	GET  /v1/campaigns/{id}/table  render a completed campaign as a
//	                               figure-style table
//	GET  /v1/results               index of every stored run spec
//	                               (?limit=&offset= pages; ?keys=1 lists
//	                               raw keys only)
//	GET  /v1/results/{key}         one raw encoded entry (the peer-
//	                               replication fetch path)
//	PUT  /v1/results/{key}         store a raw encoded entry (validated
//	                               against its own content address)
//	DELETE /v1/results/{key}       drop an entry from every layer
//	GET  /v1/benchmarks            list the benchmark names
//	GET  /v1/schemes               registered replication policies with
//	                               their tunables and figure columns
//	GET  /healthz                  liveness probe
//	GET  /stats                    store, queue and job counters
//	GET  /metrics                  the same counters in the Prometheus
//	                               text exposition format
//
// Jobs are content-addressed: a run's job id IS its canonical store key,
// so resubmitting an identical request while it is queued or running
// attaches to the existing job instead of enqueueing a duplicate, and
// resubmitting after completion is served straight from the store. A
// bounded worker pool executes jobs; when its queue is full the server
// sheds load with 429 rather than buffering unboundedly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"

	"lard"
	"lard/internal/resultstore"
	"lard/internal/store"
)

// RunFunc executes one simulation through a store. It is a seam for tests;
// production servers use lard.RunWithStore.
type RunFunc func(st *resultstore.Store, benchmark string, s lard.Scheme, o lard.Options) (*lard.Result, bool, error)

// Config configures a Server.
type Config struct {
	// Store is the backing result store (required).
	Store *resultstore.Store
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue (default 2x Workers);
	// submissions beyond it are rejected with 429.
	QueueDepth int
	// Run overrides the simulation function (tests only).
	Run RunFunc
	// MaxCompletedJobs bounds the registry of finished jobs (default
	// maxCompletedJobs). Results live on in the store — an evicted id
	// answers 404 on GET, but resubmitting the same request body is served
	// from the store — so the registry only needs to cover polling windows.
	MaxCompletedJobs int
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// RunRequest is the POST /v1/runs body.
type RunRequest struct {
	Benchmark string       `json:"benchmark"`
	Scheme    lard.Scheme  `json:"scheme"`
	Options   lard.Options `json:"options"`
}

// validateScheme rejects decoded scheme shapes whose silent acceptance
// would simulate something other than what the client asked for: unknown
// kinds and invalid policy parameters (an RT run without a threshold, an
// ASR run at an unlabeled probability). The check is the registry's own
// (lard.ValidateScheme), so a scheme registered in the facade is accepted
// here with no server edit — and one rejected there can never slip in
// through the service.
func validateScheme(s lard.Scheme) error {
	return lard.ValidateScheme(s)
}

// JobView is the wire representation of a job.
type JobView struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Status    string `json:"status"`
	// Cached reports whether the result was served from the store rather
	// than simulated for this job.
	Cached bool         `json:"cached"`
	Result *lard.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// job is the internal job record; its mutable fields are guarded by the
// server mutex.
type job struct {
	id     string
	req    RunRequest
	status string
	cached bool
	result *lard.Result
	err    string
}

// maxCompletedJobs is the default bound on the finished-job registry.
const maxCompletedJobs = 4096

// Server is the run service. Create with New, start the worker pool with
// Start, serve Handler over HTTP, and stop with Shutdown.
type Server struct {
	store   *resultstore.Store
	run     RunFunc
	workers int
	maxDone int
	mux     *http.ServeMux

	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	done      []*job // completed jobs, oldest first, for eviction
	campaigns map[string]*campaign
	campOrder []*campaign // registration order, for eviction
	closing   bool

	// Monotonic service counters, guarded by mu (see GET /metrics).
	runsStarted   uint64 // jobs a worker began simulating
	runsCompleted uint64 // worker simulations that finished successfully
	runsFailed    uint64 // jobs that finished in failure (incl. shutdown)
	runsCached    uint64 // jobs materialized from the store without a worker
	campaignsSeen uint64 // campaign registrations (not resubmission attaches)
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	run := cfg.Run
	if run == nil {
		run = lard.RunWithStore
	}
	maxDone := cfg.MaxCompletedJobs
	if maxDone <= 0 {
		maxDone = maxCompletedJobs
	}
	s := &Server{
		store:     cfg.Store,
		run:       run,
		workers:   workers,
		maxDone:   maxDone,
		queue:     make(chan *job, depth),
		stop:      make(chan struct{}),
		jobs:      make(map[string]*job),
		campaigns: make(map[string]*campaign),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/table", s.handleCampaignTable)
	s.mux.HandleFunc("GET /v1/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResultGet)
	s.mux.HandleFunc("PUT /v1/results/{key}", s.handleResultPut)
	s.mux.HandleFunc("DELETE /v1/results/{key}", s.handleResultDelete)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops the service gracefully: new submissions are refused,
// workers finish their in-flight simulations, and still-queued jobs are
// failed. It returns ctx.Err() if the workers outlive the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Workers are gone; fail whatever never got picked up.
	for {
		select {
		case j := <-s.queue:
			s.finish(j, nil, false, errors.New("server shutting down"))
		default:
			return nil
		}
	}
}

// worker executes queued jobs until Shutdown. Go selects ready channels at
// random, so a job dequeued concurrently with the stop signal is re-checked
// against it before running: once Shutdown begins no new simulation starts,
// and still-queued jobs fail deterministically instead of racing the drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			select {
			case <-s.stop:
				s.finish(j, nil, false, errors.New("server shutting down"))
				return
			default:
			}
			s.mu.Lock()
			j.status = StatusRunning
			s.runsStarted++
			s.mu.Unlock()
			res, cached, err := s.run(s.store, j.req.Benchmark, j.req.Scheme, j.req.Options)
			s.finish(j, res, cached, err)
		}
	}
}

// finish records a job outcome.
func (s *Server) finish(j *job, res *lard.Result, cached bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		j.status, j.err = StatusFailed, err.Error()
		s.runsFailed++
	} else {
		j.status, j.cached, j.result = StatusDone, cached, res
		s.runsCompleted++
	}
	s.completedLocked(j)
}

// completedLocked enrolls a finished job for eviction and trims the
// registry to maxCompletedJobs so a long-lived server's memory stays
// bounded. Callers hold s.mu.
func (s *Server) completedLocked(j *job) {
	s.done = append(s.done, j)
	for len(s.done) > s.maxDone {
		old := s.done[0]
		s.done = s.done[1:]
		// The id may since have been re-enqueued (failed retry) or taken by
		// a newer job; only evict the record this enrollment refers to, and
		// only while it is still terminal.
		if cur, ok := s.jobs[old.id]; ok && cur == old &&
			(old.status == StatusDone || old.status == StatusFailed) {
			delete(s.jobs, old.id)
		}
	}
}

// view renders a job, taking the server mutex.
func (s *Server) view(j *job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return viewOf(j)
}

// viewOf renders a job; the caller must hold s.mu (or otherwise own j).
func viewOf(j *job) JobView {
	return JobView{
		ID:        j.id,
		Benchmark: j.req.Benchmark,
		Scheme:    j.req.Scheme.Label(),
		Status:    j.status,
		Cached:    j.cached,
		Result:    j.result,
		Error:     j.err,
	}
}

// handleSubmit implements POST /v1/runs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := validateScheme(req.Scheme); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := lard.KeyFor(req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	view, shed, err := s.ensureJob(key, req)
	switch {
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case shed:
		writeError(w, http.StatusTooManyRequests, errors.New("run queue is full, retry later"))
	case view.Status == StatusDone:
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

// ensureJob guarantees the run with content address key is progressing,
// whether submitted directly or fanned out by a campaign: an existing job
// is attached to (failed ones re-enqueued for retry), a previously stored
// result materializes a completed job without touching the queue, and a
// novel run is enqueued. It returns a snapshot view of the job (Cached set
// when this caller got it without simulating), shed=true when the queue is
// full (nothing enrolled), or an error (shutdown, or a store fault).
func (s *Server) ensureJob(key string, req RunRequest) (view JobView, shed bool, err error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return JobView{}, false, errShuttingDown
	}
	if j, ok := s.jobs[key]; ok {
		defer s.mu.Unlock()
		return s.attachLocked(j)
	}
	s.mu.Unlock()

	// Off the lock: a previously computed run answers from the store,
	// synchronously and without simulating.
	res, hit, err := lard.LookupStored(s.store, req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		return JobView{}, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check closing: Shutdown may have drained the queue while we were
	// off the lock doing the store lookup — enqueueing now would strand the
	// job in "queued" forever.
	if s.closing {
		return JobView{}, false, errShuttingDown
	}
	if j, raced := s.jobs[key]; raced {
		return s.attachLocked(j)
	}
	j := &job{id: key, req: req, status: StatusQueued}
	if hit {
		j.status, j.cached, j.result = StatusDone, true, res
		s.runsCached++
		s.jobs[key] = j
		s.completedLocked(j)
		return viewOf(j), false, nil
	}
	select {
	case s.queue <- j:
		s.jobs[key] = j
		return viewOf(j), false, nil
	default:
		return JobView{}, true, nil
	}
}

// attachLocked resolves an ensureJob call against an existing job record:
// completed jobs are cache hits (whatever their own history, *this* request
// is served without simulating), failed ones re-enqueue for retry, pending
// ones are simply attached to. Callers hold s.mu.
func (s *Server) attachLocked(j *job) (JobView, bool, error) {
	switch j.status {
	case StatusDone:
		view := viewOf(j)
		view.Cached = true
		return view, false, nil
	case StatusFailed:
		select {
		case s.queue <- j:
			j.status, j.err = StatusQueued, ""
			return viewOf(j), false, nil
		default:
			return JobView{}, true, nil
		}
	default:
		return viewOf(j), false, nil
	}
}

// handleGet implements GET /v1/runs/{id}. An id missing from the job
// registry — typically evicted after completion — falls back to a store
// lookup by content address: the registry only covers polling windows, but
// a computed result is never forgotten while the store holds it.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		writeJSON(w, http.StatusOK, s.view(j))
		return
	}
	res, found, err := lard.StoredByKey(s.store, id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	writeJSON(w, http.StatusOK, JobView{
		ID:        id,
		Benchmark: res.Benchmark,
		Scheme:    res.Scheme,
		Status:    StatusDone,
		Cached:    true,
		Result:    res,
	})
}

// handleResults implements GET /v1/results: the index of stored run
// specs. ?limit= and ?offset= page the (key-sorted) index so a large
// store never renders in one response; spec metadata comes from the
// store's in-memory index when resident, so a page costs at most `limit`
// backend reads. ?keys=1 lists raw keys only, decoding nothing — the
// listing a Remote peer backend uses.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	if q.Get("keys") != "" {
		keys, err := s.store.Keys()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "keys": keys})
		return
	}
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	idx, total, err := s.store.IndexPage(offset, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   total,
		"offset":  offset,
		"limit":   limit,
		"results": idx,
	})
}

// queryInt parses a non-negative integer query parameter.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid query value %q: want a non-negative integer", s)
	}
	return n, nil
}

// handleResultGet implements GET /v1/results/{key}: the raw encoded entry,
// exactly as stored. This is the fetch path of a peer's Remote backend —
// and of the locality-aware replicator stacked on it.
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok, err := s.store.GetRaw(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown result %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// maxRawEntry bounds a PUT /v1/results/{key} body.
const maxRawEntry = 64 << 20

// handleResultPut implements PUT /v1/results/{key}: store a raw entry.
// The body must decode to a self-consistent envelope whose spec re-derives
// the key, so a peer can never plant a result under a foreign address.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRawEntry))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read entry: %w", err))
		return
	}
	if err := s.store.PutRaw(key, b); err != nil {
		// The client is only at fault for a bad envelope; a failing
		// backend (full disk, unreachable shard) is the server's problem
		// and must read as retryable.
		code := http.StatusInternalServerError
		if errors.Is(err, resultstore.ErrInvalidEntry) {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleResultDelete implements DELETE /v1/results/{key}.
func (s *Server) handleResultDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("key")); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleBenchmarks implements GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": lard.Benchmarks()})
}

// handleSchemes implements GET /v1/schemes: the registered replication
// policies with their tunables, figure columns and a ready-to-submit
// example each, straight from the scheme registry — a scheme registered in
// the facade is discoverable here with no server edit.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	schemes := lard.RegisteredSchemes()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(schemes), "schemes": schemes})
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsView is the GET /stats body.
type statsView struct {
	Workers      int               `json:"workers"`
	QueueLen     int               `json:"queue_len"`
	QueueCap     int               `json:"queue_cap"`
	Jobs         map[string]int    `json:"jobs"`
	Campaigns    int               `json:"campaigns"`
	Store        resultstore.Stats `json:"store"`
	StoreEntries int               `json:"store_entries"`
	StoreDir     string            `json:"store_dir,omitempty"`
	// Backend is the persistent backend's counter tree — per-shard traffic
	// and entry counts, replication ledger — absent on memory-only stores.
	Backend *store.Stats `json:"backend,omitempty"`
}

// handleStats implements GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	counts := map[string]int{StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0}
	s.mu.Lock()
	for _, j := range s.jobs {
		counts[j.status]++
	}
	nCampaigns := len(s.campaigns)
	s.mu.Unlock()
	view := statsView{
		Workers:      s.workers,
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		Jobs:         counts,
		Campaigns:    nCampaigns,
		Store:        s.store.Stats(),
		StoreEntries: s.store.Len(),
		StoreDir:     s.store.Dir(),
	}
	if bs, ok := s.store.BackendStats(); ok {
		view.Backend = &bs
	}
	writeJSON(w, http.StatusOK, view)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
