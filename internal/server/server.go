// Package server exposes the LLC simulator as an HTTP JSON service: an
// asynchronous job API over a content-addressed result store.
//
// Endpoints:
//
//	POST /v1/runs        submit a run; 200 + result on a store hit,
//	                     202 + job on a miss, 429 when the queue is full
//	GET  /v1/runs/{id}   poll a job (the id is the run's content address)
//	GET  /v1/benchmarks  list the benchmark names
//	GET  /healthz        liveness probe
//	GET  /stats          store, queue and job counters
//
// Jobs are content-addressed: a run's job id IS its canonical store key,
// so resubmitting an identical request while it is queued or running
// attaches to the existing job instead of enqueueing a duplicate, and
// resubmitting after completion is served straight from the store. A
// bounded worker pool executes jobs; when its queue is full the server
// sheds load with 429 rather than buffering unboundedly.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"lard"
	"lard/internal/resultstore"
)

// RunFunc executes one simulation through a store. It is a seam for tests;
// production servers use lard.RunWithStore.
type RunFunc func(st *resultstore.Store, benchmark string, s lard.Scheme, o lard.Options) (*lard.Result, bool, error)

// Config configures a Server.
type Config struct {
	// Store is the backing result store (required).
	Store *resultstore.Store
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-job queue (default 2x Workers);
	// submissions beyond it are rejected with 429.
	QueueDepth int
	// Run overrides the simulation function (tests only).
	Run RunFunc
	// MaxCompletedJobs bounds the registry of finished jobs (default
	// maxCompletedJobs). Results live on in the store — an evicted id
	// answers 404 on GET, but resubmitting the same request body is served
	// from the store — so the registry only needs to cover polling windows.
	MaxCompletedJobs int
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
)

// RunRequest is the POST /v1/runs body.
type RunRequest struct {
	Benchmark string       `json:"benchmark"`
	Scheme    lard.Scheme  `json:"scheme"`
	Options   lard.Options `json:"options"`
}

// JobView is the wire representation of a job.
type JobView struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Status    string `json:"status"`
	// Cached reports whether the result was served from the store rather
	// than simulated for this job.
	Cached bool         `json:"cached"`
	Result *lard.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// job is the internal job record; its mutable fields are guarded by the
// server mutex.
type job struct {
	id     string
	req    RunRequest
	status string
	cached bool
	result *lard.Result
	err    string
}

// maxCompletedJobs is the default bound on the finished-job registry.
const maxCompletedJobs = 4096

// Server is the run service. Create with New, start the worker pool with
// Start, serve Handler over HTTP, and stop with Shutdown.
type Server struct {
	store   *resultstore.Store
	run     RunFunc
	workers int
	maxDone int
	mux     *http.ServeMux

	queue chan *job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	done    []*job // completed jobs, oldest first, for eviction
	closing bool
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	run := cfg.Run
	if run == nil {
		run = lard.RunWithStore
	}
	maxDone := cfg.MaxCompletedJobs
	if maxDone <= 0 {
		maxDone = maxCompletedJobs
	}
	s := &Server{
		store:   cfg.Store,
		run:     run,
		workers: workers,
		maxDone: maxDone,
		queue:   make(chan *job, depth),
		stop:    make(chan struct{}),
		jobs:    make(map[string]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s, nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops the service gracefully: new submissions are refused,
// workers finish their in-flight simulations, and still-queued jobs are
// failed. It returns ctx.Err() if the workers outlive the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closing
	s.closing = true
	s.mu.Unlock()
	if !already {
		close(s.stop)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Workers are gone; fail whatever never got picked up.
	for {
		select {
		case j := <-s.queue:
			s.finish(j, nil, false, errors.New("server shutting down"))
		default:
			return nil
		}
	}
}

// worker executes queued jobs until Shutdown. Go selects ready channels at
// random, so a job dequeued concurrently with the stop signal is re-checked
// against it before running: once Shutdown begins no new simulation starts,
// and still-queued jobs fail deterministically instead of racing the drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			select {
			case <-s.stop:
				s.finish(j, nil, false, errors.New("server shutting down"))
				return
			default:
			}
			s.mu.Lock()
			j.status = StatusRunning
			s.mu.Unlock()
			res, cached, err := s.run(s.store, j.req.Benchmark, j.req.Scheme, j.req.Options)
			s.finish(j, res, cached, err)
		}
	}
}

// finish records a job outcome.
func (s *Server) finish(j *job, res *lard.Result, cached bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		j.status, j.err = StatusFailed, err.Error()
	} else {
		j.status, j.cached, j.result = StatusDone, cached, res
	}
	s.completedLocked(j)
}

// completedLocked enrolls a finished job for eviction and trims the
// registry to maxCompletedJobs so a long-lived server's memory stays
// bounded. Callers hold s.mu.
func (s *Server) completedLocked(j *job) {
	s.done = append(s.done, j)
	for len(s.done) > s.maxDone {
		old := s.done[0]
		s.done = s.done[1:]
		// The id may since have been re-enqueued (failed retry) or taken by
		// a newer job; only evict the record this enrollment refers to, and
		// only while it is still terminal.
		if cur, ok := s.jobs[old.id]; ok && cur == old &&
			(old.status == StatusDone || old.status == StatusFailed) {
			delete(s.jobs, old.id)
		}
	}
}

// view renders a job, taking the server mutex.
func (s *Server) view(j *job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return viewOf(j)
}

// viewOf renders a job; the caller must hold s.mu (or otherwise own j).
func viewOf(j *job) JobView {
	return JobView{
		ID:        j.id,
		Benchmark: j.req.Benchmark,
		Scheme:    j.req.Scheme.Label(),
		Status:    j.status,
		Cached:    j.cached,
		Result:    j.result,
		Error:     j.err,
	}
}

// handleSubmit implements POST /v1/runs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	key, err := lard.KeyFor(req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	if j, ok := s.jobs[key]; ok {
		code, view, err := s.resubmitLocked(j)
		s.mu.Unlock()
		if err != nil {
			writeError(w, code, err)
			return
		}
		writeJSON(w, code, view)
		return
	}
	s.mu.Unlock()

	// Fast path: a previously computed run answers synchronously, without
	// touching the queue or the simulator.
	res, hit, err := lard.LookupStored(s.store, req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}

	s.mu.Lock()
	// Re-check closing: Shutdown may have drained the queue while we were
	// off the lock doing the store lookup — enqueueing now would strand the
	// job in "queued" forever.
	if s.closing {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errors.New("server shutting down"))
		return
	}
	if prev, raced := s.jobs[key]; raced {
		code, view, err := s.resubmitLocked(prev)
		s.mu.Unlock()
		if err != nil {
			writeError(w, code, err)
			return
		}
		writeJSON(w, code, view)
		return
	}
	if hit {
		j := &job{id: key, req: req, status: StatusDone, cached: true, result: res}
		s.jobs[key] = j
		s.completedLocked(j)
		view := viewOf(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, view)
		return
	}
	j := &job{id: key, req: req, status: StatusQueued}
	select {
	case s.queue <- j:
		s.jobs[key] = j
		view := viewOf(j)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, view)
	default:
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, errors.New("run queue is full, retry later"))
	}
}

// resubmitLocked answers a POST whose content address already has a job.
// Completed jobs are re-served as cache hits (200), pending ones attached
// to (202), and failed ones re-enqueued for retry. Callers hold s.mu.
func (s *Server) resubmitLocked(j *job) (int, JobView, error) {
	switch j.status {
	case StatusDone:
		// Whatever the job's own history, *this* request is served without
		// simulating: a cache hit.
		view := viewOf(j)
		view.Cached = true
		return http.StatusOK, view, nil
	case StatusFailed:
		select {
		case s.queue <- j:
			j.status, j.err = StatusQueued, ""
			return http.StatusAccepted, viewOf(j), nil
		default:
			return http.StatusTooManyRequests, JobView{}, errors.New("run queue is full, retry later")
		}
	default:
		return http.StatusAccepted, viewOf(j), nil
	}
}

// handleGet implements GET /v1/runs/{id}.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

// handleBenchmarks implements GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": lard.Benchmarks()})
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsView is the GET /stats body.
type statsView struct {
	Workers      int               `json:"workers"`
	QueueLen     int               `json:"queue_len"`
	QueueCap     int               `json:"queue_cap"`
	Jobs         map[string]int    `json:"jobs"`
	Store        resultstore.Stats `json:"store"`
	StoreEntries int               `json:"store_entries"`
	StoreDir     string            `json:"store_dir,omitempty"`
}

// handleStats implements GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	counts := map[string]int{StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0}
	s.mu.Lock()
	for _, j := range s.jobs {
		counts[j.status]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statsView{
		Workers:      s.workers,
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		Jobs:         counts,
		Store:        s.store.Stats(),
		StoreEntries: s.store.Len(),
		StoreDir:     s.store.Dir(),
	})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
