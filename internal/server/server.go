// Package server exposes the LLC simulator as an HTTP JSON service: thin
// handlers over the event-sourced execution engine (internal/engine) and
// the content-addressed result store.
//
// Endpoints:
//
//	POST /v1/runs                    submit a run; 200 + result on a store
//	                                 hit, 202 + job on a miss, 429 when the
//	                                 queue is full
//	GET  /v1/runs/{id}               poll a job (the id is the run's content
//	                                 address; evicted ids fall back to the
//	                                 store)
//	DELETE /v1/runs/{id}             cancel a queued or in-flight run (the
//	                                 context interrupt reaches the simulator
//	                                 core); 409 once terminal
//	GET  /v1/runs/{id}/events        live event stream (SSE): replayed
//	                                 history, then live lifecycle + progress
//	                                 events, heartbeats between
//	GET  /v1/runs/{id}/trace         the run's finished (or in-flight) span
//	                                 tree: admitted -> dispatched -> queued
//	                                 -> simulating (with the simulator's
//	                                 phase breakdown) -> stored; 404 unless
//	                                 the server runs with tracing enabled
//	GET  /v1/runs/{id}/timeline      the run's epoch-resolved telemetry
//	                                 (per-epoch coherence counters, cycle
//	                                 components); ?format=csv for a flat
//	                                 dump; 404 unless the server runs with
//	                                 telemetry enabled
//	POST /v1/campaigns               submit a benchmark x scheme matrix as
//	                                 one campaign (see campaign.go)
//	GET  /v1/campaigns/{id}          campaign progress + per-member status
//	GET  /v1/campaigns/{id}/events   campaign event stream (SSE), member
//	                                 events fanned in, closing on the
//	                                 campaign-terminal event
//	GET  /v1/campaigns/{id}/table    render a completed campaign as a
//	                                 figure-style table
//	GET  /v1/results                 index of every stored run spec
//	                                 (?limit=&offset= pages; ?keys=1 lists
//	                                 raw keys only, same paging)
//	GET  /v1/results/{key}           one raw encoded entry (the peer-
//	                                 replication fetch path)
//	PUT  /v1/results/{key}           store a raw encoded entry (validated
//	                                 against its own content address)
//	DELETE /v1/results/{key}         drop an entry from every layer
//	GET  /v1/benchmarks              list the benchmark names
//	GET  /v1/schemes                 registered replication policies with
//	                                 their tunables and figure columns
//	GET  /healthz                    liveness probe
//	GET  /stats                      engine, store and queue counters
//	GET  /metrics                    the same counters in the Prometheus
//	                                 text exposition format
//
// Jobs are content-addressed: a run's job id IS its canonical store key,
// so resubmitting an identical request while it is queued or running
// attaches to the existing job instead of enqueueing a duplicate, and
// resubmitting after completion is served straight from the store. The
// engine's bounded worker pool executes jobs; when its queue is full the
// server sheds load with 429 rather than buffering unboundedly. The
// lifecycle machinery itself — job registry, worker pool, dispatcher,
// event bus — lives entirely in internal/engine; this package only
// translates HTTP.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"lard"
	"lard/internal/engine"
	"lard/internal/obs"
	"lard/internal/resultstore"
	"lard/internal/store"
)

// Job states, re-exported from the engine for wire compatibility.
const (
	StatusPending   = engine.StatusPending
	StatusQueued    = engine.StatusQueued
	StatusRunning   = engine.StatusRunning
	StatusDone      = engine.StatusDone
	StatusFailed    = engine.StatusFailed
	StatusCancelled = engine.StatusCancelled
)

// RunFunc executes one simulation through a store. It is a seam for tests;
// production servers use the engine default (lard.RunWithStoreProgress).
type RunFunc = engine.RunFunc

// RunRequest is the POST /v1/runs body.
type RunRequest = engine.Request

// JobView is the wire representation of a job.
type JobView = engine.JobView

// Event is one SSE payload line.
type Event = engine.Event

// errShuttingDown is the engine's shutdown refusal, aliased for tests.
var errShuttingDown = engine.ErrShuttingDown

// Config configures a Server.
type Config struct {
	// Store is the backing result store (required).
	Store *resultstore.Store
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// SimWorkers is the intra-run worker-lane count each simulation runs
	// with (see engine.Config.SimWorkers; guarded to 1 when Workers > 1).
	SimWorkers int
	// QueueDepth bounds the pending-job queue (default 2x Workers);
	// submissions beyond it are rejected with 429.
	QueueDepth int
	// Run overrides the simulation function (tests only).
	Run RunFunc
	// MaxCompletedJobs bounds the registry of finished jobs. Results live
	// on in the store — an evicted id answers 404 on GET, but resubmitting
	// the same request body is served from the store — so the registry
	// only needs to cover polling windows.
	MaxCompletedJobs int
	// Dispatcher overrides the engine's placement policy (default:
	// locality-aware over Store).
	Dispatcher engine.Dispatcher
	// SSEHeartbeat is the keep-alive comment interval on event streams
	// (default 15s; tests shorten it).
	SSEHeartbeat time.Duration
	// Obs is the observability bundle shared by every tier: run tracing
	// (GET /v1/runs/{id}/trace), the latency histograms on /metrics, and
	// the structured logger. Default obs.Nop(): histograms recorded,
	// tracing off, logs discarded.
	Obs *obs.Observer
}

// Server is the run service. Create with New, start the worker pool with
// Start, serve Handler over HTTP, and stop with Shutdown.
type Server struct {
	store     *resultstore.Store
	engine    *engine.Engine
	obs       *obs.Observer
	mux       *http.ServeMux
	handler   http.Handler
	heartbeat time.Duration
}

// New builds a Server from cfg.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	ob := cfg.Obs
	if ob == nil {
		ob = obs.Nop()
	}
	// The store reports its backend operation latencies into the shared
	// histogram; installed before any traffic can flow.
	cfg.Store.SetOpObserver(func(op, backend string, d time.Duration) {
		ob.StoreOp.ObserveDuration(d, op, backend)
	})
	eng, err := engine.New(engine.Config{
		Store:            cfg.Store,
		Workers:          cfg.Workers,
		SimWorkers:       cfg.SimWorkers,
		QueueDepth:       cfg.QueueDepth,
		Run:              cfg.Run,
		MaxCompletedJobs: cfg.MaxCompletedJobs,
		Dispatcher:       cfg.Dispatcher,
		Obs:              ob,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	hb := cfg.SSEHeartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	s := &Server{store: cfg.Store, engine: eng, obs: ob, heartbeat: hb}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleRunEvents)
	s.mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleRunTrace)
	s.mux.HandleFunc("GET /v1/runs/{id}/timeline", s.handleRunTimeline)
	s.mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignGet)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleCampaignEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/table", s.handleCampaignTable)
	s.mux.HandleFunc("GET /v1/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/results/{key}", s.handleResultGet)
	s.mux.HandleFunc("PUT /v1/results/{key}", s.handleResultPut)
	s.mux.HandleFunc("DELETE /v1/results/{key}", s.handleResultDelete)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/schemes", s.handleSchemes)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.handler = s.withHTTPMetrics(s.mux)
	return s, nil
}

// Start launches the engine's worker pool.
func (s *Server) Start() { s.engine.Start() }

// Handler returns the HTTP handler (the mux wrapped with the
// request-latency observer).
func (s *Server) Handler() http.Handler { return s.handler }

// Obs returns the server's observability bundle (never nil).
func (s *Server) Obs() *obs.Observer { return s.obs }

// Engine exposes the underlying execution engine (stats, subscriptions).
func (s *Server) Engine() *engine.Engine { return s.engine }

// Shutdown stops the service gracefully: new submissions are refused,
// workers finish their in-flight simulations, and still-queued jobs are
// failed. It returns ctx.Err() if the workers outlive the context.
func (s *Server) Shutdown(ctx context.Context) error { return s.engine.Shutdown(ctx) }

// validateScheme rejects decoded scheme shapes whose silent acceptance
// would simulate something other than what the client asked for: unknown
// kinds and invalid policy parameters (an RT run without a threshold, an
// ASR run at an unlabeled probability). The check is the registry's own
// (lard.ValidateScheme), so a scheme registered in the facade is accepted
// here with no server edit — and one rejected there can never slip in
// through the service.
func validateScheme(sch lard.Scheme) error {
	return lard.ValidateScheme(sch)
}

// handleSubmit implements POST /v1/runs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := validateScheme(req.Scheme); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := lard.KeyFor(req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	view, shed, err := s.engine.Submit(key, req)
	switch {
	case errors.Is(err, errShuttingDown):
		writeError(w, http.StatusServiceUnavailable, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case shed:
		writeError(w, http.StatusTooManyRequests, errors.New("run queue is full, retry later"))
	case view.Status == StatusDone:
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

// handleGet implements GET /v1/runs/{id}. An id missing from the job
// registry — typically evicted after completion — falls back to a store
// lookup by content address: the registry only covers polling windows, but
// a computed result is never forgotten while the store holds it.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if v, ok := s.engine.Job(id); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	res, found, err := lard.StoredByKey(s.store, id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !found {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", id))
		return
	}
	writeJSON(w, http.StatusOK, JobView{
		ID:        id,
		Benchmark: res.Benchmark,
		Scheme:    res.Scheme,
		Status:    StatusDone,
		Progress:  1,
		Cached:    true,
		Result:    res,
	})
}

// handleRunTrace implements GET /v1/runs/{id}/trace: the run's span tree
// (admitted -> dispatched -> queued -> simulating with the simulator's
// phase breakdown -> stored), finished or in flight. 404 covers three
// cases the body distinguishes: tracing disabled on this server, an id
// never seen, and a trace evicted from the bounded registry.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tree, ok := s.engine.Trace(id)
	if !ok {
		if s.obs.Tracer == nil {
			writeError(w, http.StatusNotFound, errors.New("tracing is disabled on this server (start with -trace)"))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("no trace for run %q (unknown id, or evicted)", id))
		return
	}
	writeJSON(w, http.StatusOK, tree)
}

// handleRunTimeline implements GET /v1/runs/{id}/timeline: the run's
// epoch-resolved telemetry (per-epoch coherence counter deltas and cycle
// components), finished or in flight. ?format=csv answers a flat
// epoch-per-row dump instead of JSON. 404 covers the same three cases as
// /trace, distinguished in the body: telemetry disabled on this server,
// an id never seen, and a timeline evicted from the bounded registry.
func (s *Server) handleRunTimeline(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok := s.engine.Timeline(id)
	if !ok {
		if !s.obs.Timelines.Enabled() {
			writeError(w, http.StatusNotFound, errors.New("telemetry is disabled on this server (start with -telemetry)"))
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("no timeline for run %q (unknown id, or evicted)", id))
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		if err := view.WriteCSV(w); err != nil {
			s.obs.Log.Warn("timeline csv write failed", "run", id, "error", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleCancel implements DELETE /v1/runs/{id}: cancel a queued or
// in-flight run. A queued run reports cancelled immediately; a running one
// has its simulation interrupted and reports its terminal state through
// the usual channels (poll or SSE). Terminal jobs answer 409 — a completed
// result is store state, deleted via DELETE /v1/results/{key}, not by
// cancelling history.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	view, err := s.engine.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, engine.ErrUnknownJob):
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown run %q", r.PathValue("id")))
	case errors.Is(err, engine.ErrTerminal):
		writeJSON(w, http.StatusConflict, view)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, view)
	}
}

// handleResults implements GET /v1/results: the index of stored run
// specs. ?limit= and ?offset= page the (key-sorted) index so a large
// store never renders in one response; spec metadata comes from the
// store's in-memory index when resident, so a page costs at most `limit`
// backend reads. ?keys=1 lists raw keys only, decoding nothing — the
// listing a Remote peer backend uses — under the same paging and
// validation.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit, err := queryInt(q.Get("limit"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	offset, err := queryInt(q.Get("offset"), 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if q.Get("keys") != "" {
		keys, err := s.store.Keys()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		total := len(keys)
		if offset > total {
			offset = total
		}
		end := total
		if limit > 0 && offset+limit < total {
			end = offset + limit
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"count":  total,
			"offset": offset,
			"limit":  limit,
			"keys":   keys[offset:end],
		})
		return
	}
	idx, total, err := s.store.IndexPage(offset, limit)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   total,
		"offset":  offset,
		"limit":   limit,
		"results": idx,
	})
}

// queryInt parses a non-negative integer query parameter.
func queryInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid query value %q: want a non-negative integer", s)
	}
	return n, nil
}

// handleResultGet implements GET /v1/results/{key}: the raw encoded entry,
// exactly as stored. This is the fetch path of a peer's Remote backend —
// and of the locality-aware replicator stacked on it.
func (s *Server) handleResultGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, ok, err := s.store.GetRaw(key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown result %q", key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// maxRawEntry bounds a PUT /v1/results/{key} body.
const maxRawEntry = 64 << 20

// handleResultPut implements PUT /v1/results/{key}: store a raw entry.
// The body must decode to a self-consistent envelope whose spec re-derives
// the key, so a peer can never plant a result under a foreign address.
func (s *Server) handleResultPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRawEntry))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("read entry: %w", err))
		return
	}
	if err := s.store.PutRaw(key, b); err != nil {
		// The client is only at fault for a bad envelope; a failing
		// backend (full disk, unreachable shard) is the server's problem
		// and must read as retryable.
		code := http.StatusInternalServerError
		if errors.Is(err, resultstore.ErrInvalidEntry) {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleResultDelete implements DELETE /v1/results/{key}.
func (s *Server) handleResultDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Delete(r.PathValue("key")); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleBenchmarks implements GET /v1/benchmarks.
func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"benchmarks": lard.Benchmarks()})
}

// handleSchemes implements GET /v1/schemes: the registered replication
// policies with their tunables, figure columns and a ready-to-submit
// example each, straight from the scheme registry — a scheme registered in
// the facade is discoverable here with no server edit.
func (s *Server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	schemes := lard.RegisteredSchemes()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(schemes), "schemes": schemes})
}

// handleHealth implements GET /healthz.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsView is the GET /stats body.
type statsView struct {
	Workers int `json:"workers"`
	// SimWorkers is the effective intra-run worker-lane count each
	// simulation runs with (the configured -sim-workers after the engine's
	// oversubscription guard).
	SimWorkers   int               `json:"sim_workers"`
	QueueLen     int               `json:"queue_len"`
	QueueCap     int               `json:"queue_cap"`
	Busy         int               `json:"busy"`
	Jobs         map[string]int    `json:"jobs"`
	Campaigns    int               `json:"campaigns"`
	Engine       engineStatsView   `json:"engine"`
	Store        resultstore.Stats `json:"store"`
	StoreEntries int               `json:"store_entries"`
	StoreDir     string            `json:"store_dir,omitempty"`
	// Backend is the persistent backend's counter tree — per-shard traffic
	// and entry counts, replication ledger — absent on memory-only stores.
	Backend *store.Stats `json:"backend,omitempty"`
	// UptimeSeconds is how long this server process has been serving.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Tracing reports whether run tracing (GET /v1/runs/{id}/trace) is on.
	Tracing bool `json:"tracing"`
	// Telemetry reports whether run timelines (GET /v1/runs/{id}/timeline)
	// are on.
	Telemetry bool `json:"telemetry"`
}

// engineStatsView is the engine subtree of /stats: the event bus and the
// dispatcher's placement ledger.
type engineStatsView struct {
	Dispatcher    string            `json:"dispatcher"`
	Dispatch      map[string]uint64 `json:"dispatch"`
	Cancellations uint64            `json:"cancellations"`
	Events        engine.EventStats `json:"events"`
}

// handleStats implements GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.engine.Stats()
	view := statsView{
		Workers:    es.Workers,
		SimWorkers: es.SimWorkers,
		QueueLen:   es.QueueLen,
		QueueCap:   es.QueueCap,
		Busy:       es.Busy,
		Jobs:       es.Jobs,
		Campaigns:  es.Campaigns,
		Engine: engineStatsView{
			Dispatcher:    es.Dispatcher,
			Dispatch:      es.Dispatch,
			Cancellations: es.Cancellations,
			Events:        es.Events,
		},
		Store:         s.store.Stats(),
		StoreEntries:  s.store.Len(),
		StoreDir:      s.store.Dir(),
		UptimeSeconds: s.obs.Uptime().Seconds(),
		Tracing:       s.obs.Tracer.Enabled(),
		Telemetry:     s.obs.Timelines.Enabled(),
	}
	if bs, ok := s.store.BackendStats(); ok {
		view.Backend = &bs
	}
	writeJSON(w, http.StatusOK, view)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
