// GET /metrics: the service's operational counters in the Prometheus text
// exposition format (version 0.0.4), hand-rendered so the service stays
// dependency-free. The families cover the run lifecycle (started, completed,
// failed, cached, cancelled), the job and campaign-member state gauges, the
// engine's event bus (events emitted/dropped, live subscribers) and
// dispatcher ledger, the result store's traffic counters, and the worker
// pool's depth — everything needed to alert on a wedged pool, a cold store,
// a failing campaign or a stalled event feed.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"lard/internal/store"
)

// backendMetricRow is one flattened backend node: its path through the
// composite tree ("sharded/shard-02", "replicated/peer") and its snapshot.
type backendMetricRow struct {
	path string
	st   store.Stats
}

// flattenBackend walks the backend stats tree depth-first.
func flattenBackend(prefix string, st store.Stats, out *[]backendMetricRow) {
	path := st.Name
	if prefix != "" {
		path = prefix + "/" + st.Name
	}
	*out = append(*out, backendMetricRow{path: path, st: st})
	for _, child := range st.Shards {
		flattenBackend(path, child, out)
	}
}

// renderBackendMetrics exposes the persistent backend tree: per-shard
// traffic and entry counts, plus the locality-aware replication ledger
// (promotions, replica hits, owner fetches, evictions) of any replicated
// tier — the observability face of the storage subsystem, so the locality
// win (replica hits climbing, owner fetches flattening) shows up on a
// dashboard, not just in logs.
func renderBackendMetrics(b *strings.Builder, root store.Stats) {
	var rows []backendMetricRow
	flattenBackend("", root, &rows)

	series := func(name, help, metric string, value func(store.Stats) (uint64, bool)) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, metric)
		for _, r := range rows {
			if v, ok := value(r.st); ok {
				fmt.Fprintf(b, "%s{backend=%q,kind=%q} %d\n", name, r.path, r.st.Kind, v)
			}
		}
	}
	always := func(f func(store.Stats) uint64) func(store.Stats) (uint64, bool) {
		return func(s store.Stats) (uint64, bool) { return f(s), true }
	}
	series("lard_backend_entries", "Entries stored per backend (per-shard occupancy; -1/absent when unknown).", "gauge",
		func(s store.Stats) (uint64, bool) { return uint64(s.Entries), s.Entries >= 0 })
	series("lard_backend_gets_total", "Get calls per backend.", "counter", always(func(s store.Stats) uint64 { return s.Gets }))
	series("lard_backend_hits_total", "Get hits per backend.", "counter", always(func(s store.Stats) uint64 { return s.Hits }))
	series("lard_backend_misses_total", "Get misses per backend.", "counter", always(func(s store.Stats) uint64 { return s.Misses }))
	series("lard_backend_puts_total", "Put calls per backend.", "counter", always(func(s store.Stats) uint64 { return s.Puts }))
	series("lard_backend_deletes_total", "Delete calls per backend.", "counter", always(func(s store.Stats) uint64 { return s.Deletes }))
	series("lard_backend_evictions_total", "Capacity evictions per backend.", "counter", always(func(s store.Stats) uint64 { return s.Evictions }))

	repl := func(name, help string, value func(*store.ReplicationStats) uint64) {
		emitted := false
		for _, r := range rows {
			if r.st.Replication == nil {
				continue
			}
			if !emitted {
				fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
				emitted = true
			}
			fmt.Fprintf(b, "%s{backend=%q} %d\n", name, r.path, value(r.st.Replication))
		}
	}
	repl("lard_replica_promotions_total", "Hot entries promoted into the local backend after crossing the reuse threshold.",
		func(r *store.ReplicationStats) uint64 { return r.Promotions })
	repl("lard_replica_hits_total", "Reads served from a local replica instead of the owner backend.",
		func(r *store.ReplicationStats) uint64 { return r.ReplicaHits })
	repl("lard_owner_fetches_total", "Reads that crossed to the owner backend (no local replica).",
		func(r *store.ReplicationStats) uint64 { return r.OwnerFetches })
	repl("lard_replica_evictions_total", "Replicas evicted back to owner-only by the capacity bound.",
		func(r *store.ReplicationStats) uint64 { return r.ReplicaEvictions })
	for _, r := range rows {
		if r.st.Replication != nil {
			fmt.Fprintf(b, "# HELP lard_replicas Current local replica count.\n# TYPE lard_replicas gauge\nlard_replicas{backend=%q} %d\n",
				r.path, r.st.Replication.Replicas)
		}
	}
}

// handleMetrics implements GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.engine.MetricsSnapshot()
	st := s.store.Stats()

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	labeled := func(name, help, label string, vals map[string]int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, label, k, vals[k])
		}
	}

	counter("lard_runs_started_total", "Jobs a worker began simulating.", m.RunsStarted)
	counter("lard_runs_completed_total", "Worker simulations that finished successfully.", m.RunsCompleted)
	counter("lard_runs_failed_total", "Jobs that finished in failure (including shutdown drains).", m.RunsFailed)
	counter("lard_runs_cached_total", "Jobs answered from the result store without a worker.", m.RunsCached)
	counter("lard_runs_cancelled_total", "Jobs cancelled before or during simulation (DELETE /v1/runs/{id}).", m.RunsCancelled)
	counter("lard_sim_parallel_rounds_total", "Intra-run scheduler rounds across completed runs (zero for sequential and cached runs).", m.ParRounds)
	counter("lard_sim_parallel_conflicts_total", "Accesses deferred by footprint conflicts in the intra-run scheduler.", m.ParConflicts)
	counter("lard_sim_parallel_commits_total", "Accesses committed through parallel scheduler rounds.", m.ParCommits)
	labeled("lard_jobs", "Jobs in the registry by status.", "status", m.Jobs)
	counter("lard_campaigns_registered_total", "Campaigns registered (resubmissions attach, they do not count).", m.CampaignsSeen)
	gauge("lard_campaigns", "Campaigns currently in the registry.", m.Campaigns)
	labeled("lard_campaign_members", "Members of registered campaigns by job status (evicted-after-done members report pending).", "status", m.Members)
	gauge("lard_workers", "Simulation worker-pool size.", m.Workers)
	gauge("lard_busy_workers", "Workers currently simulating.", m.Busy)
	gauge("lard_queue_len", "Jobs waiting in the bounded queue.", m.QueueLen)
	gauge("lard_queue_cap", "Capacity of the bounded queue (full submissions shed with 429).", m.QueueCap)
	counter("lard_engine_events_total", "Events published on the engine's event bus.", m.Events.Published)
	counter("lard_engine_events_dropped_total", "Events dropped at full per-subscriber queues (slow consumers).", m.Events.Dropped)
	gauge("lard_engine_subscribers", "Live event-stream subscriptions.", m.Events.Subscribers)
	gauge("lard_engine_topics", "Event topics holding replayable history.", m.Events.Topics)
	if s.obs.Timelines.Enabled() {
		ts := s.obs.Timelines.Stats()
		counter("lard_timeline_runs_total", "Runs that attached a telemetry flight recorder.", ts.Attached)
		gauge("lard_timeline_retained", "Timelines currently held in the bounded registry.", ts.Retained)
		gauge("lard_timeline_epochs", "Retained epochs summed across held timelines.", ts.Epochs)
		gauge("lard_timeline_samples", "Raw telemetry samples folded into held timelines.", int(ts.Samples))
		counter("lard_timeline_epoch_frames_dropped_total", "Live epoch frames discarded by event-history compaction.", m.Events.EpochDropped)
	}
	{
		name := "lard_engine_dispatch_total"
		fmt.Fprintf(&b, "# HELP %s Jobs admitted to the queue by placement class (dispatcher %q).\n# TYPE %s counter\n", name, m.Dispatcher, name)
		classes := make([]string, 0, len(m.Dispatch))
		for c := range m.Dispatch {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			fmt.Fprintf(&b, "%s{class=%q} %d\n", name, c, m.Dispatch[c])
		}
	}
	counter("lard_store_mem_hits_total", "Store lookups served from the in-memory layer.", st.MemHits)
	counter("lard_store_disk_hits_total", "Store lookups served from the disk backend.", st.DiskHits)
	counter("lard_store_misses_total", "Store lookups that found nothing and went on to compute.", st.Misses)
	counter("lard_store_computes_total", "Compute callbacks executed (singleflight leaders).", st.Computes)
	counter("lard_store_shared_total", "Callers that piggybacked on an in-flight computation.", st.Shared)
	counter("lard_store_evictions_total", "Memory-layer entries dropped by the LRU bound.", st.Evictions)
	counter("lard_store_corrupt_entries_total", "On-disk entries that failed to decode and were recomputed.", st.CorruptEntries)
	gauge("lard_store_entries", "Entries in the store's in-memory layer.", s.store.Len())
	if bs, ok := s.store.BackendStats(); ok {
		renderBackendMetrics(&b, bs)
	}
	// The observability layer's latency histograms (run duration, queue
	// wait, dispatch, store ops, HTTP) and the process-level families
	// (build info, goroutines, heap, GC, uptime).
	s.obs.WriteHistograms(&b)
	s.obs.WriteRuntimeMetrics(&b)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
