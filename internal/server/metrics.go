// GET /metrics: the service's operational counters in the Prometheus text
// exposition format (version 0.0.4), hand-rendered so the service stays
// dependency-free. The families cover the run lifecycle (started, completed,
// failed, cached), the job and campaign-member state gauges, the result
// store's traffic counters, and the worker pool's depth — everything needed
// to alert on a wedged pool, a cold store or a failing campaign.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// metricsSnapshot is the consistent counter snapshot rendered by /metrics.
type metricsSnapshot struct {
	runsStarted, runsCompleted, runsFailed, runsCached uint64
	jobs                                               map[string]int
	campaigns                                          int
	campaignsSeen                                      uint64
	members                                            map[string]int
	queueLen, queueCap, workers                        int
}

// snapshotMetrics gathers every gauge and counter under one hold of the
// server mutex so a scrape never mixes states from different instants. The
// campaign-member states come from the job registry alone (no store I/O on
// the scrape path): members evicted after completion report as pending
// here, exactly as campaignViewLocked renders them.
func (s *Server) snapshotMetrics() metricsSnapshot {
	m := metricsSnapshot{
		jobs:     map[string]int{StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0},
		members:  map[string]int{StatusPending: 0, StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0},
		queueCap: cap(s.queue),
		workers:  s.workers,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m.runsStarted, m.runsCompleted = s.runsStarted, s.runsCompleted
	m.runsFailed, m.runsCached = s.runsFailed, s.runsCached
	m.campaigns, m.campaignsSeen = len(s.campaigns), s.campaignsSeen
	m.queueLen = len(s.queue)
	for _, j := range s.jobs {
		m.jobs[j.status]++
	}
	for _, c := range s.campaigns {
		for _, mem := range c.members {
			status := StatusPending
			if j, ok := s.jobs[mem.key]; ok {
				status = j.status
			}
			m.members[status]++
		}
	}
	return m
}

// handleMetrics implements GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.snapshotMetrics()
	st := s.store.Stats()

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	labeled := func(name, help, label string, vals map[string]int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s{%s=%q} %d\n", name, label, k, vals[k])
		}
	}

	counter("lard_runs_started_total", "Jobs a worker began simulating.", m.runsStarted)
	counter("lard_runs_completed_total", "Worker simulations that finished successfully.", m.runsCompleted)
	counter("lard_runs_failed_total", "Jobs that finished in failure (including shutdown drains).", m.runsFailed)
	counter("lard_runs_cached_total", "Jobs answered from the result store without a worker.", m.runsCached)
	labeled("lard_jobs", "Jobs in the registry by status.", "status", m.jobs)
	counter("lard_campaigns_registered_total", "Campaigns registered (resubmissions attach, they do not count).", m.campaignsSeen)
	gauge("lard_campaigns", "Campaigns currently in the registry.", m.campaigns)
	labeled("lard_campaign_members", "Members of registered campaigns by job status (evicted-after-done members report pending).", "status", m.members)
	gauge("lard_workers", "Simulation worker-pool size.", m.workers)
	gauge("lard_queue_len", "Jobs waiting in the bounded queue.", m.queueLen)
	gauge("lard_queue_cap", "Capacity of the bounded queue (full submissions shed with 429).", m.queueCap)
	counter("lard_store_mem_hits_total", "Store lookups served from the in-memory layer.", st.MemHits)
	counter("lard_store_disk_hits_total", "Store lookups served from the disk backend.", st.DiskHits)
	counter("lard_store_misses_total", "Store lookups that found nothing and went on to compute.", st.Misses)
	counter("lard_store_computes_total", "Compute callbacks executed (singleflight leaders).", st.Computes)
	counter("lard_store_shared_total", "Callers that piggybacked on an in-flight computation.", st.Shared)
	counter("lard_store_evictions_total", "Memory-layer entries dropped by the LRU bound.", st.Evictions)
	counter("lard_store_corrupt_entries_total", "On-disk entries that failed to decode and were recomputed.", st.CorruptEntries)
	gauge("lard_store_entries", "Entries in the store's in-memory layer.", s.store.Len())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte(b.String()))
}
