package server

import (
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status for the HTTP latency
// histogram. It deliberately implements http.Flusher by delegation: the
// SSE handlers' handshake type-asserts the ResponseWriter, and wrapping
// must not cost them streaming. (Flush on a non-Flusher inner writer is
// a no-op, exactly as an unwrapped handler would have discovered at
// handshake time — sseHandshake still checks the real capability.)
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// flusherCapable reports whether the underlying writer can stream —
// what sseHandshake really wants to know through the wrapper.
func (w *statusWriter) flusherCapable() bool {
	_, ok := w.ResponseWriter.(http.Flusher)
	return ok
}

// withHTTPMetrics wraps the mux with the request-latency observer:
// every request lands in lard_http_request_seconds{route,code}, labeled
// by the matched route pattern (so /v1/runs/{id} is one series, not one
// per id) and the response status. Unmatched requests label as the bare
// 404 they are.
func (s *Server) withHTTPMetrics(next *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			// Handler wrote nothing (e.g. a long-poll torn down by the
			// client); net/http would have sent 200.
			sw.status = http.StatusOK
		}
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.obs.HTTP.ObserveDuration(time.Since(start), route, strconv.Itoa(sw.status))
	})
}
