package server

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lard"
	"lard/internal/obs"
)

// telemetryTestServer is newTestServer with the epoch flight recorder
// enabled — the configuration the timeline acceptance tests exercise.
func telemetryTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Obs = obs.New(obs.Options{Telemetry: true})
	return newTestServer(t, cfg)
}

// getTimeline fetches a run's timeline and decodes it together with the
// embedded error body the endpoint returns on 404.
func getTimeline(t *testing.T, ts *httptest.Server, id, query string) (int, obs.TimelineView, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/timeline" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		obs.TimelineView
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.TimelineView, body.Error
}

// seriesSum adds up one named series from a timeline view; gone=false
// fails the test.
func timelineSeriesSum(t *testing.T, v obs.TimelineView, name string) uint64 {
	t.Helper()
	for _, s := range v.Series {
		if s.Name != name {
			continue
		}
		var sum uint64
		for _, x := range s.Values {
			sum += x
		}
		return sum
	}
	t.Fatalf("series %q missing from timeline (have %d series)", name, len(v.Series))
	return 0
}

// TestTimelineNotFoundTriage pins the endpoint's 404 bodies to actionable
// causes: a server without -telemetry says so (the fix is a flag, not a
// different id), while a telemetered server distinguishes unknown ids.
func TestTimelineNotFoundTriage(t *testing.T) {
	_, plain := newTestServer(t, Config{Workers: 1})
	code, _, msg := getTimeline(t, plain, "whatever", "")
	if code != http.StatusNotFound || !strings.Contains(msg, "telemetry is disabled") {
		t.Fatalf("plain server = %d %q, want 404 mentioning the disabled recorder", code, msg)
	}

	_, ts := telemetryTestServer(t, Config{Workers: 1})
	code, _, msg = getTimeline(t, ts, "nope", "")
	if code != http.StatusNotFound || !strings.Contains(msg, "no timeline") {
		t.Fatalf("unknown id = %d %q, want 404 mentioning the missing timeline", code, msg)
	}
}

// TestTimelineEndpointJSONAndCSV drives one real run and requires both
// renderings of its timeline to be complete and conserved: the JSON view's
// ops series must sum to exactly the run's final operation count, and the
// CSV rendering must carry the same totals column for column.
func TestTimelineEndpointJSONAndCSV(t *testing.T) {
	_, ts := telemetryTestServer(t, Config{Workers: 1})
	_, v := post(t, ts, smallRun(7))
	done := poll(t, ts, v.ID)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("run ended %q", done.Status)
	}

	code, tl, _ := getTimeline(t, ts, v.ID, "")
	if code != http.StatusOK {
		t.Fatalf("timeline = %d, want 200", code)
	}
	if !tl.Finished || tl.Epochs < 2 {
		t.Fatalf("timeline finished=%v epochs=%d, want a finished multi-epoch record", tl.Finished, tl.Epochs)
	}
	if got := timelineSeriesSum(t, tl, "ops"); got != done.Result.Ops {
		t.Fatalf("ops series sums to %d, want the run's %d (epochs must conserve)", got, done.Result.Ops)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/timeline?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv timeline = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("csv Content-Type = %q", ct)
	}
	rows, err := csv.NewReader(resp.Body).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != tl.Epochs+1 {
		t.Fatalf("csv has %d rows, want header + %d epochs", len(rows), tl.Epochs)
	}
	opsCol := -1
	for i, h := range rows[0] {
		if h == "ops" {
			opsCol = i
		}
	}
	if opsCol < 0 {
		t.Fatalf("csv header %v lacks an ops column", rows[0])
	}
	var csvOps uint64
	for _, row := range rows[1:] {
		n, err := strconv.ParseUint(row[opsCol], 10, 64)
		if err != nil {
			t.Fatalf("bad ops cell %q: %v", row[opsCol], err)
		}
		csvOps += n
	}
	if csvOps != done.Result.Ops {
		t.Fatalf("csv ops column sums to %d, want %d", csvOps, done.Result.Ops)
	}
}

// TestCampaignTimelinesConserved is the acceptance end-to-end: a real
// campaign over HTTP where every member's timeline must show at least two
// epochs of non-zero coherence activity, and each member's ops series must
// sum to exactly that member's final sim result — the flight recorder may
// decimate, but it may never lose or invent work.
func TestCampaignTimelinesConserved(t *testing.T) {
	_, ts := telemetryTestServer(t, Config{Workers: 2})
	code, cv := postCampaign(t, ts, smallCampaign("BARNES", "DEDUP"))
	if code != http.StatusAccepted {
		t.Fatalf("campaign submit = %d", code)
	}
	final := pollCampaign(t, ts, cv.ID)
	if !final.Complete || final.Total != 4 {
		t.Fatalf("campaign ended %+v", final.Counts)
	}

	for _, m := range final.Members {
		member := poll(t, ts, m.ID)
		if member.Result == nil {
			t.Fatalf("member %s has no result", m.ID)
		}
		code, tl, msg := getTimeline(t, ts, m.ID, "")
		if code != http.StatusOK {
			t.Fatalf("member %s timeline = %d %q", m.ID, code, msg)
		}
		if !tl.Finished || tl.Epochs < 2 {
			t.Fatalf("member %s: finished=%v epochs=%d, want a finished multi-epoch timeline",
				m.ID, tl.Finished, tl.Epochs)
		}
		if got := timelineSeriesSum(t, tl, "ops"); got != member.Result.Ops {
			t.Fatalf("member %s: ops sum %d != result %d", m.ID, got, member.Result.Ops)
		}
		var coherence uint64
		for _, s := range []string{"miss_l1_hit", "miss_llc_replica_hit", "miss_llc_home_hit", "miss_offchip"} {
			coherence += timelineSeriesSum(t, tl, s)
		}
		if coherence == 0 {
			t.Fatalf("member %s: coherence counters all zero across %d epochs", m.ID, tl.Epochs)
		}
	}
}

// TestRunSSEEpochFrames pins the live side channel on the wire: a run's
// event stream interleaves epoch frames (non-terminal running events
// carrying the frame) with the ordinary lifecycle, and the lifecycle stays
// intact around them.
func TestRunSSEEpochFrames(t *testing.T) {
	_, ts := telemetryTestServer(t, Config{Workers: 1})
	_, v := post(t, ts, smallRun(11))

	c := openSSE(t, ts.URL+"/v1/runs/"+v.ID+"/events")
	defer c.close()
	events := c.collect(t, 30*time.Second, func(ev Event) bool { return ev.Terminal })

	var epochs []int
	for _, ev := range events {
		if ev.Epoch == nil {
			continue
		}
		if ev.Terminal || ev.State != StatusRunning {
			t.Fatalf("epoch frame rode a %q terminal=%v event", ev.State, ev.Terminal)
		}
		epochs = append(epochs, ev.Epoch.Epoch)
	}
	if len(epochs) < 2 {
		t.Fatalf("saw %d epoch frames, want at least 2 (run emits one per committed epoch)", len(epochs))
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("epoch indices not increasing: %v", epochs)
		}
	}
	last := events[len(events)-1]
	if last.State != StatusDone || !last.Terminal {
		t.Fatalf("stream ended on %q terminal=%v", last.State, last.Terminal)
	}
}

// rawSSELines drains one event stream and returns the raw `data:` payload
// lines up to and including the first terminal event. Byte-level capture
// is the point: decoded events can compare equal while the wire bytes
// drift (field order, pointer identity), and the replay contract is about
// bytes.
func rawSSELines(t *testing.T, url string) []string {
	t.Helper()
	c := openSSE(t, url)
	defer c.close()
	var lines []string
	deadline := time.After(30 * time.Second)
	got := make(chan string)
	go func() {
		defer close(got)
		for c.sc.Scan() {
			line := c.sc.Text()
			if strings.HasPrefix(line, "data: ") {
				got <- strings.TrimPrefix(line, "data: ")
			}
		}
	}()
	for {
		select {
		case line, ok := <-got:
			if !ok {
				t.Fatalf("stream closed after %d events without a terminal", len(lines))
			}
			lines = append(lines, line)
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("bad event payload %q: %v", line, err)
			}
			if ev.Terminal {
				return lines
			}
		case <-deadline:
			t.Fatalf("no terminal event in 30s; %d lines so far", len(lines))
		}
	}
}

// TestRunSSEReplayByteEqual extends the replay guarantee to epoch frames:
// a subscriber that attaches after the run finished must receive the same
// `data:` payload bytes — epoch frames included — as one that watched
// live. History compaction may only drop frames, never rewrite them.
func TestRunSSEReplayByteEqual(t *testing.T) {
	_, ts := telemetryTestServer(t, Config{Workers: 1})
	_, v := post(t, ts, smallRun(13))
	url := ts.URL + "/v1/runs/" + v.ID + "/events"

	live := rawSSELines(t, url)
	poll(t, ts, v.ID)
	replay := rawSSELines(t, url)

	if len(replay) != len(live) {
		t.Fatalf("replay has %d events, live saw %d (small runs fit history whole)", len(replay), len(live))
	}
	var sawEpoch bool
	for i := range live {
		if live[i] != replay[i] {
			t.Fatalf("event %d differs:\nlive:   %s\nreplay: %s", i, live[i], replay[i])
		}
		if strings.Contains(live[i], `"epoch":{`) {
			sawEpoch = true
		}
	}
	if !sawEpoch {
		t.Fatal("no epoch frame crossed the wire; the byte-equal check proved nothing")
	}
}

// TestTimelineConcurrentReads hammers the timeline endpoint from many
// goroutines while the run is still writing epochs — the race the -race CI
// lane exists to catch. Mid-run reads may 200 (a partial snapshot) or 404
// (not yet attached); either way they must decode cleanly, and the final
// read must be finished and conserved.
func TestTimelineConcurrentReads(t *testing.T) {
	_, ts := telemetryTestServer(t, Config{Workers: 1})
	_, v := post(t, ts, RunRequest{
		Benchmark: "BARNES",
		Scheme:    lard.LocalityAware(3),
		Options:   lard.Options{Cores: 16, OpsScale: 0.5, Seed: 17},
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/timeline")
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var tl obs.TimelineView
					if err := json.Unmarshal(body, &tl); err != nil {
						t.Errorf("mid-run snapshot undecodable: %v", err)
						return
					}
				case http.StatusNotFound:
					// Raced the attach; fine.
				default:
					t.Errorf("mid-run timeline = %d", resp.StatusCode)
					return
				}
			}
		}()
	}

	done := poll(t, ts, v.ID)
	close(stop)
	wg.Wait()
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("run ended %q", done.Status)
	}
	code, tl, _ := getTimeline(t, ts, v.ID, "")
	if code != http.StatusOK || !tl.Finished {
		t.Fatalf("final timeline = %d finished=%v", code, tl.Finished)
	}
	if got := timelineSeriesSum(t, tl, "ops"); got != done.Result.Ops {
		t.Fatalf("post-race ops sum %d != result %d", got, done.Result.Ops)
	}
}
