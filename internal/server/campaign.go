// Campaign endpoints: submit a whole benchmark x scheme matrix — one
// figure's worth of runs — as a single job with fan-out, progress counters
// and figure-style table rendering.
//
//	POST /v1/campaigns             body = lard.CampaignSpec; expands into
//	                               content-addressed member runs and fans
//	                               them out through the worker pool. 200
//	                               when every member is already done (all
//	                               served from the store), 202 while any is
//	                               pending, 429 when the queue filled before
//	                               every member was enqueued (the campaign
//	                               stays registered part-filled; re-POST the
//	                               same body to continue the fan-out).
//	GET  /v1/campaigns/{id}        per-member status plus aggregate counters
//	                               (pending/queued/running/done/failed and
//	                               cached).
//	GET  /v1/campaigns/{id}/table  render the completed campaign as a
//	                               figure-style table (?metric=time|energy),
//	                               normalized to the S-NUCA column when the
//	                               campaign has one; 409 until complete.
//
// A campaign's id is content-addressed over its sorted member keys, so
// resubmitting a figure's matrix attaches to the in-flight campaign — or,
// once computed, answers instantly from the store.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lard"
	"lard/internal/harness"
)

// StatusPending marks a campaign member that is not progressing on its own:
// the queue has not accepted it yet (429 part-fill), or its job record was
// evicted from the registry — including a failed member whose record aged
// out, whose result is therefore not in the store either. In every case
// re-POSTing the campaign re-ensures the member (re-enqueueing it if
// needed); clients that see persistent pending counts should re-POST, not
// just poll.
const StatusPending = "pending"

// maxCampaigns bounds the campaign registry; the oldest registration is
// evicted beyond it. Like evicted jobs, an evicted campaign is not lost
// work: resubmitting its matrix rebuilds it from the store.
const maxCampaigns = 1024

// errShuttingDown aborts campaign fan-out during Shutdown.
var errShuttingDown = errors.New("server shutting down")

// memberRef is a campaign's view of one member run; the live state lives in
// the shared job registry under key.
type memberRef struct {
	key       string
	benchmark string
	label     string
}

// campaign is the internal campaign record. The identity fields are
// immutable after construction; cachedAttach and member state are guarded
// by the server mutex.
type campaign struct {
	id      string
	benches []string // row order (expansion order)
	labels  []string // column order
	members []memberRef
	// enrolled marks members this campaign has already attached to or
	// enqueued in some submission; cachedAttach marks the subset whose run
	// was already computed at first enrollment (by an earlier direct
	// submission or another campaign): the campaign got those without
	// simulating, so they count as cached even though the job itself was
	// not a store hit. Tracking enrollment per campaign keeps the
	// accounting correct across part-fill (429) continuation re-POSTs.
	enrolled     map[string]bool
	cachedAttach map[string]bool
}

// newCampaign indexes the expanded members into a campaign record.
func newCampaign(id string, members []lard.CampaignMember) *campaign {
	c := &campaign{id: id, enrolled: make(map[string]bool), cachedAttach: make(map[string]bool)}
	seenB := make(map[string]bool)
	seenL := make(map[string]bool)
	for _, m := range members {
		if !seenB[m.Benchmark] {
			seenB[m.Benchmark] = true
			c.benches = append(c.benches, m.Benchmark)
		}
		if !seenL[m.Label] {
			seenL[m.Label] = true
			c.labels = append(c.labels, m.Label)
		}
		c.members = append(c.members, memberRef{key: m.Key, benchmark: m.Benchmark, label: m.Label})
	}
	return c
}

// CampaignMemberView is the wire representation of one member run.
type CampaignMemberView struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	Error     string `json:"error,omitempty"`
}

// CampaignView is the wire representation of a campaign: aggregate progress
// counters plus per-member status. Cached counts the done members that were
// served from the store rather than simulated for this campaign, so
// Counts["done"] == Total with Cached == Total means the whole figure cost
// zero simulations.
type CampaignView struct {
	ID       string               `json:"id"`
	Total    int                  `json:"total"`
	Counts   map[string]int       `json:"counts"`
	Cached   int                  `json:"cached"`
	Complete bool                 `json:"complete"`
	Error    string               `json:"error,omitempty"`
	Members  []CampaignMemberView `json:"members"`
}

// campaignViewLocked renders a campaign from the job registry alone.
// Callers hold s.mu and should prefer campaignView, which adds the store
// fallback for evicted member jobs.
func (s *Server) campaignViewLocked(c *campaign) CampaignView {
	v := CampaignView{ID: c.id, Total: len(c.members)}
	for _, m := range c.members {
		// Cached comes exclusively from the campaign's own accounting
		// (cachedAttach, recorded at each member's first enrollment) and
		// never from the job record: after registry eviction a re-POST
		// legitimately recreates a member's job from the store with
		// cached=true, and trusting that flag would launder a member this
		// campaign simulated into the cached count.
		mv := CampaignMemberView{
			ID: m.key, Benchmark: m.benchmark, Scheme: m.label,
			Status: StatusPending, Cached: c.cachedAttach[m.key],
		}
		if j, ok := s.jobs[m.key]; ok {
			mv.Status, mv.Error = j.status, j.err
		}
		v.Members = append(v.Members, mv)
	}
	v.finalize()
	return v
}

// finalize recomputes the aggregate counters from the member views.
func (v *CampaignView) finalize() {
	v.Counts = map[string]int{
		StatusPending: 0, StatusQueued: 0, StatusRunning: 0,
		StatusDone: 0, StatusFailed: 0,
	}
	v.Cached = 0
	for _, m := range v.Members {
		v.Counts[m.Status]++
		if m.Status == StatusDone && m.Cached {
			v.Cached++
		}
	}
	v.Complete = v.Counts[StatusDone] == v.Total
}

// campaignView renders a campaign, consulting the job registry first and
// the store for members whose job records were evicted after completion:
// the registry only covers polling windows, but a computed member must
// never flip a finished campaign back to pending while the store still
// holds its result. Store faults propagate rather than masquerading as
// pending members.
func (s *Server) campaignView(c *campaign) (CampaignView, error) {
	s.mu.Lock()
	v := s.campaignViewLocked(c)
	// Snapshot which pending members were ever enrolled: only those can be
	// evicted-after-done. Never-enrolled members (shed by a part-filled
	// 429) were just established as store misses by ensureJob, so probing
	// them again would double the fan-out's I/O for nothing.
	enrolled := make(map[string]bool, len(c.members))
	for _, m := range c.members {
		enrolled[m.key] = c.enrolled[m.key]
	}
	s.mu.Unlock()
	changed := false
	for i := range v.Members {
		m := &v.Members[i]
		if m.Status != StatusPending || !enrolled[m.ID] {
			continue
		}
		// The member's Cached flag is NOT forced here: it carries the
		// campaign's own cachedAttach record, so a member this campaign
		// simulated stays counted as a simulation after eviction.
		_, ok, err := lard.StoredByKey(s.store, m.ID)
		if err != nil {
			return CampaignView{}, err
		}
		if ok {
			m.Status = StatusDone
			changed = true
		}
	}
	if changed {
		v.finalize()
	}
	return v, nil
}

// ensureMember guarantees one member run of campaign c is progressing,
// through the exact same path as a direct POST /v1/runs (ensureJob): an
// existing job is attached to, a stored result materializes a completed
// job, a novel run is enqueued, and failed jobs re-enqueue for retry. A
// member found already done at its first enrollment into this campaign is
// recorded as a cached attach — including members first reached by a
// continuation re-POST after a 429 part-fill. It reports shed=true when
// the queue is full (the member stays pending, not enrolled).
func (s *Server) ensureMember(c *campaign, m lard.CampaignMember) (shed bool, err error) {
	// Claim the enrollment BEFORE ensuring: a concurrent POST of the same
	// campaign must not also see first=true, race our enqueued job to
	// completion, and mark a member this campaign simulated as cached.
	s.mu.Lock()
	first := !c.enrolled[m.Key]
	c.enrolled[m.Key] = true
	s.mu.Unlock()

	req := RunRequest{Benchmark: m.Benchmark, Scheme: m.Scheme, Options: m.Options}
	view, shed, err := s.ensureJob(m.Key, req)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil || shed {
		// Roll the claim back only while the member truly has no job: a
		// concurrent POST of the same campaign may have enqueued it between
		// our claim and our shed, and erasing that enrollment would let a
		// later re-POST miscount the campaign's own simulation as cached.
		if first {
			if _, exists := s.jobs[m.Key]; !exists {
				delete(c.enrolled, m.Key) // nothing enrolled; the next POST retries
			}
		}
		return shed, err
	}
	// view.Cached covers both ways the campaign got this member for free:
	// attached to an already-done job, or materialized straight from the
	// store. Recording it here (not just while the job record lives) keeps
	// the Cached counter truthful after registry eviction.
	if first && view.Cached {
		c.cachedAttach[m.Key] = true
	}
	return false, nil
}

// handleCampaignSubmit implements POST /v1/campaigns.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var spec lard.CampaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode campaign: %w", err))
		return
	}
	for _, sch := range spec.Schemes {
		if err := validateScheme(sch); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	members, err := lard.ExpandCampaign(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := lard.CampaignKeyFor(members)

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, errShuttingDown)
		return
	}
	c, ok := s.campaigns[id]
	if !ok {
		c = newCampaign(id, members)
		s.campaignsSeen++
		s.campaigns[id] = c
		s.campOrder = append(s.campOrder, c)
		for len(s.campOrder) > maxCampaigns {
			old := s.campOrder[0]
			s.campOrder = s.campOrder[1:]
			if cur, ok := s.campaigns[old.id]; ok && cur == old {
				delete(s.campaigns, old.id)
			}
		}
	}
	s.mu.Unlock()

	shed := false
	for _, m := range members {
		sh, err := s.ensureMember(c, m)
		if errors.Is(err, errShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		// A shed only means the queue is full — keep going: members whose
		// results are already in the store materialize as done without
		// touching the queue, so one part-filled POST still completes every
		// cached member.
		if sh {
			shed = true
		}
	}

	view, err := s.campaignView(c)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	switch {
	case shed:
		view.Error = "run queue is full; campaign partially enqueued, re-POST to continue"
		writeJSON(w, http.StatusTooManyRequests, view)
	case view.Complete:
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

// handleCampaignGet implements GET /v1/campaigns/{id}.
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q (resubmit its matrix to rebuild it)", id))
		return
	}
	view, err := s.campaignView(c)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// campaignTableView is the GET /v1/campaigns/{id}/table body.
type campaignTableView struct {
	ID       string             `json:"id"`
	Metric   string             `json:"metric"`
	Table    string             `json:"table"`
	Averages map[string]float64 `json:"averages"`
}

// handleCampaignTable implements GET /v1/campaigns/{id}/table: the
// completed campaign rendered as a figure-style table through the same
// builders that regenerate the paper's figures locally.
func (s *Server) handleCampaignTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	metric := r.URL.Query().Get("metric")
	var title string
	var value func(*lard.Result) float64
	switch metric {
	case "", "time":
		metric = "time"
		title = "Figure 7-style: completion time"
		value = func(res *lard.Result) float64 { return float64(res.CompletionCycles) }
	case "energy":
		title = "Figure 6-style: energy"
		value = func(res *lard.Result) float64 { return res.EnergyTotalPJ() }
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown metric %q (use time or energy)", metric))
		return
	}

	s.mu.Lock()
	c, ok := s.campaigns[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	results := make(map[string]map[string]*lard.Result, len(c.benches))
	var missing []memberRef // evicted job records; resolved from the store
	complete := true
	for _, m := range c.members {
		j, ok := s.jobs[m.key]
		if !ok {
			missing = append(missing, m)
			continue
		}
		if j.status != StatusDone || j.result == nil {
			complete = false
			break
		}
		if results[m.benchmark] == nil {
			results[m.benchmark] = make(map[string]*lard.Result, len(c.labels))
		}
		results[m.benchmark][m.label] = j.result
	}
	s.mu.Unlock()
	for _, m := range missing {
		if !complete {
			break
		}
		res, ok, err := lard.StoredByKey(s.store, m.key)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			complete = false
			break
		}
		if results[m.benchmark] == nil {
			results[m.benchmark] = make(map[string]*lard.Result, len(c.labels))
		}
		results[m.benchmark][m.label] = res
	}
	if !complete {
		// Be actionable: failed or pending members never complete through
		// polling alone — only re-POSTing the matrix re-enqueues them.
		v, err := s.campaignView(c)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeError(w, http.StatusConflict, fmt.Errorf(
			"campaign %q is not complete (%d/%d done, %d failed, %d pending); poll GET /v1/campaigns/%s, re-POSTing the matrix to retry failed or pending members",
			id, v.Counts[StatusDone], v.Total, v.Counts[StatusFailed], v.Counts[StatusPending], id))
		return
	}

	baseline := ""
	for _, l := range c.labels {
		if l == "S-NUCA" {
			baseline = l
			break
		}
	}
	if baseline != "" {
		title += " (normalized to S-NUCA)"
	} else {
		title += " (absolute)"
	}
	table, avg := harness.RenderNormalizedTable(title, c.benches, c.labels, baseline,
		func(bench, label string) float64 { return value(results[bench][label]) })
	writeJSON(w, http.StatusOK, campaignTableView{ID: id, Metric: metric, Table: table, Averages: avg})
}
