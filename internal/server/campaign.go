// Campaign endpoints: submit a whole benchmark x scheme matrix — one
// figure's worth of runs — as a single job with fan-out, progress counters
// and figure-style table rendering. The fan-out, per-member accounting and
// completion events live in internal/engine; these handlers translate
// HTTP.
//
//	POST /v1/campaigns             body = lard.CampaignSpec; expands into
//	                               content-addressed member runs and fans
//	                               them out through the engine. 200 when
//	                               every member is already done (all served
//	                               from the store), 202 while any is
//	                               pending, 429 when the queue filled before
//	                               every member was enqueued (the campaign
//	                               stays registered part-filled; re-POST the
//	                               same body to continue the fan-out).
//	GET  /v1/campaigns/{id}        per-member status plus aggregate counters
//	                               (pending/queued/running/done/failed/
//	                               cancelled, cached, campaign progress).
//	GET  /v1/campaigns/{id}/table  render a completed campaign as a
//	                               figure-style table (?metric=time|energy),
//	                               normalized to the S-NUCA column when the
//	                               campaign has one; 409 until complete.
//
// A campaign's id is content-addressed over its sorted member keys, so
// resubmitting a figure's matrix attaches to the in-flight campaign — or,
// once computed, answers instantly from the store.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lard"
	"lard/internal/engine"
	"lard/internal/harness"
)

// CampaignMemberView is the wire representation of one member run.
type CampaignMemberView = engine.CampaignMemberView

// CampaignView is the wire representation of a campaign.
type CampaignView = engine.CampaignView

// handleCampaignSubmit implements POST /v1/campaigns.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	var spec lard.CampaignSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode campaign: %w", err))
		return
	}
	for _, sch := range spec.Schemes {
		if err := validateScheme(sch); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	members, err := lard.ExpandCampaign(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := lard.CampaignKeyFor(members)

	if err := s.engine.RegisterCampaign(id, members); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	shed := false
	for _, m := range members {
		sh, err := s.engine.EnsureMember(id, m)
		if errors.Is(err, errShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		// A shed only means the queue is full — keep going: members whose
		// results are already in the store materialize as done without
		// touching the queue, so one part-filled POST still completes every
		// cached member.
		if sh {
			shed = true
		}
	}

	view, ok, err := s.engine.Campaign(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		// Evicted between registration and render: only possible under a
		// pathological registration storm; the client should resubmit.
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("campaign %q evicted during fan-out, resubmit", id))
		return
	}
	switch {
	case shed:
		view.Error = "run queue is full; campaign partially enqueued, re-POST to continue"
		writeJSON(w, http.StatusTooManyRequests, view)
	case view.Complete:
		writeJSON(w, http.StatusOK, view)
	default:
		writeJSON(w, http.StatusAccepted, view)
	}
}

// handleCampaignGet implements GET /v1/campaigns/{id}.
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	view, ok, err := s.engine.Campaign(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q (resubmit its matrix to rebuild it)", id))
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// campaignTableView is the GET /v1/campaigns/{id}/table body.
type campaignTableView struct {
	ID       string             `json:"id"`
	Metric   string             `json:"metric"`
	Table    string             `json:"table"`
	Averages map[string]float64 `json:"averages"`
}

// handleCampaignTable implements GET /v1/campaigns/{id}/table: the
// completed campaign rendered as a figure-style table through the same
// builders that regenerate the paper's figures locally.
func (s *Server) handleCampaignTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	metric := r.URL.Query().Get("metric")
	var title string
	var value func(*lard.Result) float64
	switch metric {
	case "", "time":
		metric = "time"
		title = "Figure 7-style: completion time"
		value = func(res *lard.Result) float64 { return float64(res.CompletionCycles) }
	case "energy":
		title = "Figure 6-style: energy"
		value = func(res *lard.Result) float64 { return res.EnergyTotalPJ() }
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown metric %q (use time or energy)", metric))
		return
	}

	data, ok, err := s.engine.CampaignResults(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", id))
		return
	}
	if !data.Complete {
		// Be actionable: failed or pending members never complete through
		// polling alone — only re-POSTing the matrix re-enqueues them.
		writeError(w, http.StatusConflict, s.engine.CampaignIncompleteError(id))
		return
	}

	baseline := ""
	for _, l := range data.Labels {
		if l == "S-NUCA" {
			baseline = l
			break
		}
	}
	if baseline != "" {
		title += " (normalized to S-NUCA)"
	} else {
		title += " (absolute)"
	}
	table, avg := harness.RenderNormalizedTable(title, data.Benches, data.Labels, baseline,
		func(bench, label string) float64 { return value(data.Results[bench][label]) })
	writeJSON(w, http.StatusOK, campaignTableView{ID: id, Metric: metric, Table: table, Averages: avg})
}
