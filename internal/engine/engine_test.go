package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"lard"
	"lard/internal/resultstore"
)

// newTestEngine builds a started engine over a memory store with cleanup.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Store == nil {
		st, err := resultstore.New("")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Store = st
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return e
}

// smallReq is a fast real request with a distinct content address per seed.
func smallReq(t *testing.T, seed uint64) (string, Request) {
	t.Helper()
	req := Request{
		Benchmark: "BARNES",
		Scheme:    lard.LocalityAware(3),
		Options:   lard.Options{Cores: 16, OpsScale: 0.02, Seed: seed},
	}
	key, err := lard.KeyFor(req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	return key, req
}

// await polls until the job reaches a terminal state.
func await(t *testing.T, e *Engine, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := e.Job(id); ok && terminal(v.Status) {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job never terminated")
	return JobView{}
}

// TestLifecycleEvents drives one real run and checks the event-sourcing
// contract: ordered seqs, queued -> running -> interior progress ->
// terminal done, and byte-equal replay for a late subscriber.
func TestLifecycleEvents(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	key, req := smallReq(t, 1)

	hist, sub, ok := func() ([]Event, *Subscription, bool) {
		v, shed, err := e.Submit(key, req)
		if err != nil || shed {
			t.Fatalf("submit = %+v shed=%v err=%v", v, shed, err)
		}
		return e.SubscribeRun(key)
	}()
	if !ok {
		t.Fatal("subscribe failed for live job")
	}
	defer sub.Close()

	events := append([]Event(nil), hist...)
	deadline := time.After(30 * time.Second)
	for events[len(events)-1].Terminal == false {
		select {
		case ev := <-sub.C:
			events = append(events, ev)
		case <-deadline:
			t.Fatalf("no terminal event; have %+v", events)
		}
	}

	if events[0].State != StatusQueued {
		t.Fatalf("first event = %+v, want queued", events[0])
	}
	sawRunning, sawInterior := false, false
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d (gap/dup)", i, ev.Seq)
		}
		if ev.Job != key || ev.Benchmark != "BARNES" || ev.Scheme != "RT-3" {
			t.Fatalf("event identity wrong: %+v", ev)
		}
		if ev.State == StatusRunning {
			sawRunning = true
			if ev.Progress > 0 && ev.Progress < 1 {
				sawInterior = true
			}
		}
	}
	last := events[len(events)-1]
	if last.State != StatusDone || last.Progress != 1 || !last.Terminal {
		t.Fatalf("terminal event = %+v", last)
	}
	if !sawRunning || !sawInterior {
		t.Fatalf("running=%v interior-progress=%v, want both", sawRunning, sawInterior)
	}

	// A late subscriber replays the identical history.
	replay, sub2, ok := e.SubscribeRun(key)
	if !ok {
		t.Fatal("late subscribe failed")
	}
	sub2.Close()
	if len(replay) != len(events) {
		t.Fatalf("replay = %d events, want %d", len(replay), len(events))
	}
	for i := range replay {
		if replay[i] != events[i] {
			t.Fatalf("replay[%d] = %+v != live %+v", i, replay[i], events[i])
		}
	}
}

// blockingRun is a fake RunFunc that signals start, then waits for release
// or cancellation.
func blockingRun(started chan<- string, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, st *resultstore.Store, bench string, s lard.Scheme, o lard.Options, p lard.ProgressFunc) (*lard.Result, bool, error) {
		if started != nil {
			started <- s.Label()
		}
		select {
		case <-release:
			return &lard.Result{Benchmark: bench, Scheme: s.Label(), CompletionCycles: 1}, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// TestCancelQueued cancels a job the pool has not picked up: immediate
// cancelled terminal state, queue slot reclaimed.
func TestCancelQueued(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 2, Run: blockingRun(started, release)})
	defer close(release)

	k1, r1 := smallReq(t, 1)
	k2, r2 := smallReq(t, 2)
	if _, shed, err := e.Submit(k1, r1); shed || err != nil {
		t.Fatal(shed, err)
	}
	<-started // worker busy on job 1; job 2 stays queued
	if _, shed, err := e.Submit(k2, r2); shed || err != nil {
		t.Fatal(shed, err)
	}

	v, err := e.Cancel(k2)
	if err != nil || v.Status != StatusCancelled {
		t.Fatalf("cancel queued = %+v, %v", v, err)
	}
	if st := e.Stats(); st.QueueLen != 0 || st.Cancellations != 1 {
		t.Fatalf("stats after cancel = %+v", st)
	}
	// Cancelling again reports terminal.
	if _, err := e.Cancel(k2); err != ErrTerminal {
		t.Fatalf("second cancel err = %v, want ErrTerminal", err)
	}
	if _, err := e.Cancel("0000000000000000000000000000000000000000000000000000000000000000"); err != ErrUnknownJob {
		t.Fatalf("unknown cancel err = %v", err)
	}
}

// TestCancelRunningRealSim cancels an in-flight REAL simulation: the
// context must interrupt it mid-run (long before it would finish), the
// terminal event is cancelled, the worker slot is reclaimed, and nothing
// is stored.
func TestCancelRunningRealSim(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	req := Request{
		Benchmark: "BARNES",
		Scheme:    lard.SNUCA(),
		Options:   lard.Options{Cores: 16, OpsScale: 2.0}, // seconds of work
	}
	key, err := lard.KeyFor(req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if _, shed, err := e.Submit(key, req); shed || err != nil {
		t.Fatal(shed, err)
	}
	// Wait for the first progress event, then cancel mid-flight.
	_, sub, ok := e.SubscribeRun(key)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer sub.Close()
	deadline := time.After(30 * time.Second)
	armed := false
	for !armed {
		select {
		case ev := <-sub.C:
			if ev.State == StatusRunning && ev.Progress > 0 && ev.Progress < 1 {
				armed = true
			}
		case <-deadline:
			t.Fatal("no interior progress event")
		}
	}
	if _, err := e.Cancel(key); err != nil {
		t.Fatal(err)
	}
	v := await(t, e, key)
	if v.Status != StatusCancelled {
		t.Fatalf("status = %q, want cancelled", v.Status)
	}
	// The worker slot comes back.
	idleBy := time.Now().Add(10 * time.Second)
	for {
		st := e.Stats()
		if st.Busy == 0 && st.QueueLen == 0 {
			break
		}
		if time.Now().After(idleBy) {
			t.Fatalf("pool never idled: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, hit, _ := lard.LookupStored(e.Store(), req.Benchmark, req.Scheme, req.Options); hit {
		t.Fatal("cancelled run must not be stored")
	}
	// Resubmission re-enqueues the cancelled job (fresh attempt).
	v2, shed, err := e.Submit(key, req)
	if err != nil || shed || terminal(v2.Status) {
		t.Fatalf("resubmit after cancel = %+v shed=%v err=%v", v2, shed, err)
	}
	if _, err := e.Cancel(key); err != nil {
		t.Fatalf("re-cancel: %v", err)
	}
	await(t, e, key)
}

// TestCancelRacesCompletion fires Cancel concurrently with instant
// completion, many times: whatever wins, the job lands in exactly one
// terminal state with exactly one terminal event, and the engine survives
// -race.
func TestCancelRacesCompletion(t *testing.T) {
	instant := func(ctx context.Context, st *resultstore.Store, bench string, s lard.Scheme, o lard.Options, p lard.ProgressFunc) (*lard.Result, bool, error) {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		return &lard.Result{Benchmark: bench, Scheme: s.Label(), CompletionCycles: 1}, false, nil
	}
	e := newTestEngine(t, Config{Workers: 4, QueueDepth: 64, Run: instant})
	for i := 0; i < 50; i++ {
		key, req := smallReq(t, uint64(100+i))
		_, sub, _ := func() ([]Event, *Subscription, bool) {
			if _, shed, err := e.Submit(key, req); shed || err != nil {
				t.Fatal(shed, err)
			}
			return e.SubscribeRun(key)
		}()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Cancel(key)
		}()
		v := await(t, e, key)
		wg.Wait()
		if v.Status != StatusDone && v.Status != StatusCancelled {
			t.Fatalf("iteration %d: status %q", i, v.Status)
		}
		terminals := 0
		drain := time.After(2 * time.Second)
		for terminals == 0 {
			select {
			case ev := <-sub.C:
				if ev.Terminal {
					terminals++
				}
			case <-drain:
				t.Fatalf("iteration %d: no terminal event", i)
			}
		}
		// No second terminal may follow.
		select {
		case ev := <-sub.C:
			if ev.Terminal {
				t.Fatalf("iteration %d: duplicate terminal %+v", i, ev)
			}
		default:
		}
		sub.Close()
	}
}

// TestDispatchPriority pins the locality-aware drain order: with the
// single worker pinned, a replica-class job admitted after two cold ones
// still runs first.
func TestDispatchPriority(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{}, 8)
	run := func(ctx context.Context, st *resultstore.Store, bench string, s lard.Scheme, o lard.Options, p lard.ProgressFunc) (*lard.Result, bool, error) {
		started <- bench
		<-release
		return &lard.Result{Benchmark: bench, Scheme: s.Label(), CompletionCycles: 1}, false, nil
	}
	// classed dispatcher: DEDUP is replica-class, everything else cold.
	classed := dispatcherFunc(func(key string, lanes int) Placement {
		if key == dedupKey {
			return Placement{Class: ClassReplica}
		}
		return Placement{Class: ClassCold}
	})
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 8, Run: run, Dispatcher: classed})

	blocker, blockReq := smallReq(t, 1)
	if _, shed, err := e.Submit(blocker, blockReq); shed || err != nil {
		t.Fatal(shed, err)
	}
	<-started // worker pinned

	cold1, coldReq1 := smallReq(t, 2)
	cold2, coldReq2 := smallReq(t, 3)
	hotReq := Request{Benchmark: "DEDUP", Scheme: lard.SNUCA(), Options: lard.Options{Cores: 16, OpsScale: 0.02}}
	hot, err := lard.KeyFor(hotReq.Benchmark, hotReq.Scheme, hotReq.Options)
	if err != nil {
		t.Fatal(err)
	}
	dedupKey = hot
	for _, s := range []struct {
		k string
		r Request
	}{{cold1, coldReq1}, {cold2, coldReq2}, {hot, hotReq}} {
		if _, shed, err := e.Submit(s.k, s.r); shed || err != nil {
			t.Fatal(shed, err)
		}
	}

	release <- struct{}{} // finish the blocker
	if next := <-started; next != "DEDUP" {
		t.Fatalf("worker drained %q first, want the replica-class DEDUP job", next)
	}
	for i := 0; i < 3; i++ {
		release <- struct{}{}
	}
	for _, k := range []string{cold1, cold2, hot} {
		await(t, e, k)
	}
	if st := e.Stats(); st.Dispatch["replica"] != 1 || st.Dispatch["cold"] != 3 {
		t.Fatalf("dispatch counters = %+v", st.Dispatch)
	}
}

// dedupKey is set by TestDispatchPriority before submission.
var dedupKey string

// dispatcherFunc adapts a function to the Dispatcher interface.
type dispatcherFunc func(key string, lanes int) Placement

func (f dispatcherFunc) Name() string                          { return "test" }
func (f dispatcherFunc) Place(key string, lanes int) Placement { return f(key, lanes) }

// TestShedByteCompat pins the 429 contract: with 1 worker busy and a
// 1-deep queue, the third distinct submission sheds.
func TestShedByteCompat(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 1, Run: blockingRun(started, release)})
	defer close(release)
	k1, r1 := smallReq(t, 1)
	k2, r2 := smallReq(t, 2)
	k3, r3 := smallReq(t, 3)
	if _, shed, err := e.Submit(k1, r1); shed || err != nil {
		t.Fatal(shed, err)
	}
	<-started
	if _, shed, err := e.Submit(k2, r2); shed || err != nil {
		t.Fatalf("queued submit shed=%v err=%v", shed, err)
	}
	if _, shed, err := e.Submit(k3, r3); !shed || err != nil {
		t.Fatalf("overflow submit shed=%v err=%v, want shed", shed, err)
	}
}

// TestFinishIdempotent pins the Cancel-vs-worker-pickup race guard: a job
// finished twice (as both racers may attempt) publishes exactly one
// terminal event and counts exactly one outcome.
func TestFinishIdempotent(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Run: blockingRun(nil, make(chan struct{}))})
	key, req := smallReq(t, 1)
	j := &job{id: key, req: req, status: StatusQueued, cancelReq: true}
	e.mu.Lock()
	e.jobs[key] = j
	e.mu.Unlock()

	_, sub, ok := e.SubscribeRun(key)
	if !ok {
		t.Fatal("subscribe failed")
	}
	defer sub.Close()
	e.finish(j, nil, false, context.Canceled)
	e.finish(j, nil, false, context.Canceled)

	if st := e.Stats(); st.Cancellations != 1 {
		t.Fatalf("cancellations = %d, want 1", st.Cancellations)
	}
	terminals := 0
	for {
		select {
		case ev := <-sub.C:
			if ev.Terminal {
				terminals++
			}
			continue
		default:
		}
		break
	}
	if terminals != 1 {
		t.Fatalf("terminal events = %d, want exactly 1", terminals)
	}
}
