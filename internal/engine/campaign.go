// Campaign scheduling: a campaign is a set of member runs sharing the
// common job machinery, plus per-campaign accounting (which members this
// campaign got for free) and campaign-level completion events on the bus.
package engine

import (
	"errors"
	"fmt"

	"lard"
)

// maxCampaigns bounds the campaign registry; the oldest registration is
// evicted beyond it. Like evicted jobs, an evicted campaign is not lost
// work: resubmitting its matrix rebuilds it from the store.
const maxCampaigns = 1024

// ErrUnknownCampaign reports an id absent from the campaign registry.
var ErrUnknownCampaign = errors.New("unknown campaign")

// memberRef is a campaign's view of one member run; the live state lives
// in the shared job registry under key.
type memberRef struct {
	key       string
	benchmark string
	label     string
}

// campaign is the internal campaign record. The identity fields are
// immutable after construction; the maps are guarded by the engine mutex.
type campaign struct {
	id      string
	benches []string // row order (expansion order)
	labels  []string // column order
	members []memberRef
	// enrolled marks members this campaign has already attached to or
	// enqueued in some submission; cachedAttach marks the subset whose run
	// was already computed at first enrollment (by an earlier direct
	// submission or another campaign): the campaign got those without
	// simulating, so they count as cached even though the job itself was
	// not a store hit. Tracking enrollment per campaign keeps the
	// accounting correct across part-fill (shed) continuation re-POSTs.
	enrolled     map[string]bool
	cachedAttach map[string]bool
	// terminal records each member's final status as its terminal event
	// fires (or as it is found already done at enrollment), surviving job
	// registry eviction: campaign completion must not regress because a
	// member's job record aged out.
	terminal map[string]string
	// announced marks that the campaign-level terminal event for the
	// current completion has been published (reset when a member reopens).
	announced bool
}

// newCampaign indexes the expanded members into a campaign record.
func newCampaign(id string, members []lard.CampaignMember) *campaign {
	c := &campaign{
		id:           id,
		enrolled:     make(map[string]bool),
		cachedAttach: make(map[string]bool),
		terminal:     make(map[string]string),
	}
	seenB := make(map[string]bool)
	seenL := make(map[string]bool)
	for _, m := range members {
		if !seenB[m.Benchmark] {
			seenB[m.Benchmark] = true
			c.benches = append(c.benches, m.Benchmark)
		}
		if !seenL[m.Label] {
			seenL[m.Label] = true
			c.labels = append(c.labels, m.Label)
		}
		c.members = append(c.members, memberRef{key: m.Key, benchmark: m.Benchmark, label: m.Label})
	}
	return c
}

// CampaignMemberView is the wire representation of one member run.
type CampaignMemberView struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Status    string `json:"status"`
	// Progress is the member's instructions-retired fraction in [0,1].
	Progress float64 `json:"progress"`
	Cached   bool    `json:"cached"`
	Error    string  `json:"error,omitempty"`
}

// CampaignView is the wire representation of a campaign: aggregate
// progress counters plus per-member status. Cached counts the done members
// that were served from the store rather than simulated for this campaign,
// so Counts["done"] == Total with Cached == Total means the whole figure
// cost zero simulations.
type CampaignView struct {
	ID     string         `json:"id"`
	Total  int            `json:"total"`
	Counts map[string]int `json:"counts"`
	Cached int            `json:"cached"`
	// Progress is the campaign-level instructions-retired fraction:
	// terminal members count 1, in-flight members their current fraction.
	Progress float64              `json:"progress"`
	Complete bool                 `json:"complete"`
	Error    string               `json:"error,omitempty"`
	Members  []CampaignMemberView `json:"members"`
}

// finalize recomputes the aggregate counters from the member views.
func (v *CampaignView) finalize() {
	v.Counts = map[string]int{
		StatusPending: 0, StatusQueued: 0, StatusRunning: 0,
		StatusDone: 0, StatusFailed: 0, StatusCancelled: 0,
	}
	v.Cached = 0
	v.Progress = 0
	for _, m := range v.Members {
		v.Counts[m.Status]++
		if m.Status == StatusDone && m.Cached {
			v.Cached++
		}
		if terminal(m.Status) {
			v.Progress++
		} else {
			v.Progress += m.Progress
		}
	}
	if v.Total > 0 {
		v.Progress /= float64(v.Total)
	}
	v.Complete = v.Counts[StatusDone] == v.Total
}

// campaignViewLocked renders a campaign from the job registry alone.
// Callers hold e.mu and should prefer campaignView, which adds the store
// fallback for evicted member jobs.
func (e *Engine) campaignViewLocked(c *campaign) CampaignView {
	v := CampaignView{ID: c.id, Total: len(c.members)}
	for _, m := range c.members {
		// Cached comes exclusively from the campaign's own accounting
		// (cachedAttach, recorded at each member's first enrollment) and
		// never from the job record: after registry eviction a re-POST
		// legitimately recreates a member's job from the store with
		// cached=true, and trusting that flag would launder a member this
		// campaign simulated into the cached count.
		mv := CampaignMemberView{
			ID: m.key, Benchmark: m.benchmark, Scheme: m.label,
			Status: StatusPending, Cached: c.cachedAttach[m.key],
		}
		if j, ok := e.jobs[m.key]; ok {
			mv.Status, mv.Error, mv.Progress = j.status, j.err, j.progress
		} else if st, ok := c.terminal[m.key]; ok && st == StatusDone {
			// Evicted after completion; the terminal ledger remembers.
			mv.Status, mv.Progress = StatusDone, 1
		}
		v.Members = append(v.Members, mv)
	}
	v.finalize()
	return v
}

// Campaign renders a campaign, consulting the job registry first and the
// store for members whose job records were evicted after completion: the
// registry only covers polling windows, but a computed member must never
// flip a finished campaign back to pending while the store still holds its
// result. Store faults propagate rather than masquerading as pending
// members. ok=false for unknown campaign ids.
func (e *Engine) Campaign(id string) (CampaignView, bool, error) {
	e.mu.Lock()
	c, ok := e.campaigns[id]
	if !ok {
		e.mu.Unlock()
		return CampaignView{}, false, nil
	}
	v := e.campaignViewLocked(c)
	// Snapshot which pending members were ever enrolled: only those can be
	// evicted-after-done. Never-enrolled members (shed by a part-filled
	// submission) were just established as store misses by Submit, so
	// probing them again would double the fan-out's I/O for nothing.
	enrolled := make(map[string]bool, len(c.members))
	for _, m := range c.members {
		enrolled[m.key] = c.enrolled[m.key]
	}
	e.mu.Unlock()
	changed := false
	for i := range v.Members {
		m := &v.Members[i]
		if m.Status != StatusPending || !enrolled[m.ID] {
			continue
		}
		// The member's Cached flag is NOT forced here: it carries the
		// campaign's own cachedAttach record, so a member this campaign
		// simulated stays counted as a simulation after eviction.
		_, ok, err := lard.StoredByKey(e.store, m.ID)
		if err != nil {
			return CampaignView{}, true, err
		}
		if ok {
			m.Status, m.Progress = StatusDone, 1
			changed = true
		}
	}
	if changed {
		v.finalize()
	}
	return v, true, nil
}

// RegisterCampaign registers (or attaches to) the campaign with the given
// id and expanded members, returning its record handle for EnsureMember.
// Registration is idempotent: resubmitting a matrix attaches to the
// existing record. The registry is bounded; the oldest campaign is evicted
// beyond maxCampaigns, releasing its event topic and member fan-out.
func (e *Engine) RegisterCampaign(id string, members []lard.CampaignMember) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closing {
		return ErrShuttingDown
	}
	if _, ok := e.campaigns[id]; ok {
		return nil
	}
	c := newCampaign(id, members)
	e.campaignsSeen++
	e.campaigns[id] = c
	e.campOrder = append(e.campOrder, c)
	for _, m := range c.members {
		camps, ok := e.memberCamps[m.key]
		if !ok {
			camps = make(map[string]bool, 1)
			e.memberCamps[m.key] = camps
		}
		camps[id] = true
	}
	for len(e.campOrder) > maxCampaigns {
		old := e.campOrder[0]
		e.campOrder = e.campOrder[1:]
		if cur, ok := e.campaigns[old.id]; ok && cur == old {
			e.evictCampaignLocked(old)
		}
	}
	return nil
}

// evictCampaignLocked drops a campaign record, its member fan-out entries
// and its event topic. Callers hold e.mu.
func (e *Engine) evictCampaignLocked(c *campaign) {
	delete(e.campaigns, c.id)
	for _, m := range c.members {
		if camps, ok := e.memberCamps[m.key]; ok {
			delete(camps, c.id)
			if len(camps) == 0 {
				delete(e.memberCamps, m.key)
			}
		}
	}
	e.bus.release(c.id)
}

// EnsureMember guarantees one member run of campaign id is progressing,
// through the exact same path as a direct run submission (Submit): an
// existing job is attached to, a stored result materializes a completed
// job, a novel run is admitted, and failed jobs re-enqueue for retry. A
// member found already done at its first enrollment into this campaign is
// recorded as a cached attach — including members first reached by a
// continuation re-POST after a part-fill. It reports shed=true when the
// queue is full (the member stays pending, not enrolled).
func (e *Engine) EnsureMember(id string, m lard.CampaignMember) (shed bool, err error) {
	// Claim the enrollment BEFORE ensuring: a concurrent submission of the
	// same campaign must not also see first=true, race our enqueued job to
	// completion, and mark a member this campaign simulated as cached.
	e.mu.Lock()
	c, ok := e.campaigns[id]
	if !ok {
		e.mu.Unlock()
		return false, ErrUnknownCampaign
	}
	first := !c.enrolled[m.Key]
	c.enrolled[m.Key] = true
	e.mu.Unlock()

	req := Request{Benchmark: m.Benchmark, Scheme: m.Scheme, Options: m.Options}
	view, shed, err := e.Submit(m.Key, req)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err != nil || shed {
		// Roll the claim back only while the member truly has no job: a
		// concurrent submission of the same campaign may have enqueued it
		// between our claim and our shed, and erasing that enrollment
		// would let a later re-POST miscount the campaign's own simulation
		// as cached.
		if first {
			if _, exists := e.jobs[m.Key]; !exists {
				delete(c.enrolled, m.Key) // nothing enrolled; the next POST retries
			}
		}
		return shed, err
	}
	// view.Cached covers both ways the campaign got this member for free:
	// attached to an already-done job, or materialized straight from the
	// store. Recording it here (not just while the job record lives) keeps
	// the Cached counter truthful after registry eviction.
	if first && view.Cached {
		c.cachedAttach[m.Key] = true
	}
	if terminal(view.Status) {
		// Attached to an already-terminal job: its terminal event fired
		// before this campaign existed (or before this member enrolled),
		// so record it in the ledger now.
		c.terminal[m.Key] = view.Status
		e.campaignCompletionLocked(c)
	}
	return false, nil
}

// campaignMemberTerminalLocked records a member's terminal status in every
// owning campaign's ledger and publishes campaign-level completion events.
// Callers hold e.mu.
func (e *Engine) campaignMemberTerminalLocked(key, status string) {
	for campID := range e.memberCamps[key] {
		c, ok := e.campaigns[campID]
		if !ok {
			continue
		}
		c.terminal[key] = status
		e.campaignCompletionLocked(c)
	}
}

// campaignReopenLocked clears a member's terminal ledger entry when its
// job re-enqueues (failed/cancelled retry): the campaign is live again and
// will announce completion anew. Callers hold e.mu.
func (e *Engine) campaignReopenLocked(key string) {
	for campID := range e.memberCamps[key] {
		if c, ok := e.campaigns[campID]; ok {
			delete(c.terminal, key)
			c.announced = false
		}
	}
}

// campaignCompletionLocked publishes the campaign-level terminal event
// once every member is terminal: state done when every member completed,
// failed otherwise. Callers hold e.mu.
func (e *Engine) campaignCompletionLocked(c *campaign) {
	if c.announced || len(c.terminal) != len(c.members) {
		return
	}
	c.announced = true
	state := StatusDone
	for _, st := range c.terminal {
		if st != StatusDone {
			state = StatusFailed
			break
		}
	}
	e.bus.publish(c.id, Event{Campaign: c.id, State: state, Progress: 1, Terminal: true})
}

// CampaignResults collects a completed campaign's member results for table
// rendering, resolving evicted job records from the store. complete=false
// when any member is not done (the view explains why).
type CampaignResults struct {
	Benches []string
	Labels  []string
	// Results[bench][label] is the member result.
	Results  map[string]map[string]*lard.Result
	Complete bool
}

// CampaignResults gathers every member result of the campaign with the
// given id. ok=false for unknown ids; a store fault is an error.
func (e *Engine) CampaignResults(id string) (CampaignResults, bool, error) {
	e.mu.Lock()
	c, ok := e.campaigns[id]
	if !ok {
		e.mu.Unlock()
		return CampaignResults{}, false, nil
	}
	out := CampaignResults{
		Benches:  append([]string(nil), c.benches...),
		Labels:   append([]string(nil), c.labels...),
		Results:  make(map[string]map[string]*lard.Result, len(c.benches)),
		Complete: true,
	}
	var missing []memberRef // evicted job records; resolved from the store
	for _, m := range c.members {
		j, ok := e.jobs[m.key]
		if !ok {
			missing = append(missing, m)
			continue
		}
		if j.status != StatusDone || j.result == nil {
			out.Complete = false
			break
		}
		if out.Results[m.benchmark] == nil {
			out.Results[m.benchmark] = make(map[string]*lard.Result, len(c.labels))
		}
		out.Results[m.benchmark][m.label] = j.result
	}
	e.mu.Unlock()
	for _, m := range missing {
		if !out.Complete {
			break
		}
		res, ok, err := lard.StoredByKey(e.store, m.key)
		if err != nil {
			return CampaignResults{}, true, err
		}
		if !ok {
			out.Complete = false
			break
		}
		if out.Results[m.benchmark] == nil {
			out.Results[m.benchmark] = make(map[string]*lard.Result, len(c.labels))
		}
		out.Results[m.benchmark][m.label] = res
	}
	return out, true, nil
}

// CampaignIncompleteError renders the actionable 409 message for a table
// request against an incomplete campaign.
func (e *Engine) CampaignIncompleteError(id string) error {
	v, ok, err := e.Campaign(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w %q", ErrUnknownCampaign, id)
	}
	return fmt.Errorf(
		"campaign %q is not complete (%d/%d done, %d failed, %d cancelled, %d pending); poll GET /v1/campaigns/%s, re-POSTing the matrix to retry failed, cancelled or pending members",
		id, v.Counts[StatusDone], v.Total, v.Counts[StatusFailed], v.Counts[StatusCancelled], v.Counts[StatusPending], id)
}
