package engine

import (
	"hash/fnv"

	"lard/internal/resultstore"
	"lard/internal/store"
)

// PlacementClass orders queued work by the locality of its result key,
// hottest first — the serving-tier analogue of the paper's "replicate
// what is reused, near the reader" placement, applied to scheduling: work
// whose bytes are already next to a worker should reach one first.
type PlacementClass int

const (
	// ClassReplica: the key is held by this node's local replica set (or
	// the store's decoded memory layer) — the job will complete without
	// touching a remote owner, usually instantly.
	ClassReplica PlacementClass = iota
	// ClassOwner: an owned local disk shard holds the key; the job costs
	// one shard read. Lane affinity keeps one shard's keys on one worker.
	ClassOwner
	// ClassCold: nobody nearby holds the key; the job is a full
	// simulation and can run anywhere.
	ClassCold
)

// String renders the class for metrics labels.
func (c PlacementClass) String() string {
	switch c {
	case ClassReplica:
		return "replica"
	case ClassOwner:
		return "owner"
	default:
		return "cold"
	}
}

// Placement is a dispatcher's routing decision for one job.
type Placement struct {
	// Class is the locality class (scheduling priority, hottest first).
	Class PlacementClass
	// Lane is the preferred worker lane in [0, lanes): a worker prefers
	// jobs on its own lane, so keys that share a shard share a worker's
	// cache footprint. Any idle worker still steals cross-lane work —
	// affinity is a preference, never a fence.
	Lane int
}

// Dispatcher decides where a submitted job should run. Implementations
// must be safe for concurrent use and fast: Place sits on the submission
// path.
type Dispatcher interface {
	// Name identifies the policy in /stats and /metrics.
	Name() string
	// Place routes the job with content address key onto one of lanes
	// worker lanes.
	Place(key string, lanes int) Placement
}

// hashLane spreads keys over lanes deterministically.
func hashLane(key string, lanes int) int {
	if lanes <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(lanes))
}

// localityDispatcher is the default policy: route each member to the
// backend that already holds its key — local replica ahead of owner shard
// ahead of any worker — using the store's side-effect-free placement
// probe.
type localityDispatcher struct {
	st *resultstore.Store
}

// NewLocalityDispatcher returns the default locality-aware policy over st.
func NewLocalityDispatcher(st *resultstore.Store) Dispatcher {
	return &localityDispatcher{st: st}
}

func (d *localityDispatcher) Name() string { return "locality" }

func (d *localityDispatcher) Place(key string, lanes int) Placement {
	loc := d.st.Locate(key)
	switch {
	case loc.Replica:
		return Placement{Class: ClassReplica, Lane: hashLane(key, lanes)}
	case loc.Held:
		lane := hashLane(key, lanes)
		if loc.Shard >= 0 && lanes > 0 {
			lane = loc.Shard % lanes
		}
		return Placement{Class: ClassOwner, Lane: lane}
	default:
		return Placement{Class: ClassCold, Lane: hashLane(key, lanes)}
	}
}

// RoundRobinDispatcher ignores locality entirely: pure hash spreading,
// every job cold-class. The control policy for benchmarks and tests.
type RoundRobinDispatcher struct{}

func (RoundRobinDispatcher) Name() string { return "round-robin" }

func (RoundRobinDispatcher) Place(key string, lanes int) Placement {
	return Placement{Class: ClassCold, Lane: hashLane(key, lanes)}
}

var _ store.Locator = (*resultstore.Store)(nil)
