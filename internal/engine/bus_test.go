package engine

import (
	"fmt"
	"sync"
	"testing"

	"lard/internal/obs"
)

// TestBusReplayThenLive pins the no-gap-no-dup subscription contract:
// every event lands exactly once, either in the replay snapshot or on the
// live feed, in sequence order.
func TestBusReplayThenLive(t *testing.T) {
	b := newBus(16, 64)
	for i := 0; i < 5; i++ {
		b.publish("topic", Event{State: StatusRunning})
	}
	hist, sub := b.subscribe("topic")
	defer sub.Close()
	if len(hist) != 5 {
		t.Fatalf("replay = %d events, want 5", len(hist))
	}
	for i := 0; i < 3; i++ {
		b.publish("topic", Event{State: StatusRunning})
	}
	b.publish("topic", Event{State: StatusDone, Terminal: true})

	seen := append([]Event(nil), hist...)
	for ev := range sub.C {
		seen = append(seen, ev)
		if ev.Terminal {
			break
		}
	}
	if len(seen) != 9 {
		t.Fatalf("saw %d events, want 9", len(seen))
	}
	for i, ev := range seen {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d (gap or duplicate)", i, ev.Seq, i+1)
		}
	}
}

// TestBusHistoryBound pins the replay ring: old events fall off, the
// newest survive.
func TestBusHistoryBound(t *testing.T) {
	b := newBus(4, 8)
	for i := 0; i < 20; i++ {
		b.publish("t", Event{State: StatusRunning})
	}
	hist, sub := b.subscribe("t")
	sub.Close()
	if len(hist) != 8 {
		t.Fatalf("history = %d, want 8", len(hist))
	}
	if hist[len(hist)-1].Seq != 20 || hist[0].Seq != 13 {
		t.Fatalf("history seqs %d..%d, want 13..20", hist[0].Seq, hist[len(hist)-1].Seq)
	}
}

// TestBusSlowConsumerDrops pins the bounded-queue policy: a consumer that
// never drains loses the oldest events (counted), while the newest —
// including the terminal — survive in the queue.
func TestBusSlowConsumerDrops(t *testing.T) {
	b := newBus(4, 128)
	_, sub := b.subscribe("t")
	defer sub.Close()
	for i := 0; i < 20; i++ {
		b.publish("t", Event{State: StatusRunning})
	}
	b.publish("t", Event{State: StatusDone, Terminal: true})
	if d := sub.Dropped(); d != 17 {
		t.Fatalf("dropped = %d, want 17 (21 published, 4 retained)", d)
	}
	if st := b.stats(); st.Dropped != 17 || st.Published != 21 {
		t.Fatalf("bus stats = %+v", st)
	}
	var last Event
	for i := 0; i < 4; i++ {
		last = <-sub.C
	}
	if !last.Terminal || last.Seq != 21 {
		t.Fatalf("newest retained event = %+v, want the terminal (seq 21)", last)
	}
}

// TestBusConcurrency hammers subscribe/unsubscribe/publish from many
// goroutines with deliberately slow consumers; run under -race this is the
// bus's data-race certificate. Every subscription that stays attached must
// observe replay+live seqs strictly increasing.
func TestBusConcurrency(t *testing.T) {
	b := newBus(8, 32)
	const (
		topics     = 4
		publishers = 4
		churners   = 8
		events     = 200
	)
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				b.publish(fmt.Sprintf("t%d", (p+i)%topics), Event{State: StatusRunning})
			}
		}(p)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				topic := fmt.Sprintf("t%d", (c+i)%topics)
				hist, sub := b.subscribe(topic)
				lastSeq := uint64(0)
				for _, ev := range hist {
					if ev.Seq <= lastSeq {
						t.Errorf("replay seq %d after %d", ev.Seq, lastSeq)
					}
					lastSeq = ev.Seq
				}
				// Drain a few live events (may block briefly; publishers
				// are still running), then churn.
				for k := 0; k < 3; k++ {
					select {
					case ev := <-sub.C:
						if ev.Seq <= lastSeq {
							t.Errorf("live seq %d after %d", ev.Seq, lastSeq)
						}
						lastSeq = ev.Seq
					default:
					}
				}
				sub.Close()
			}
		}(c)
	}
	wg.Wait()
	st := b.stats()
	if st.Subscribers != 0 {
		t.Fatalf("leaked %d subscribers", st.Subscribers)
	}
	if st.Published != publishers*events {
		t.Fatalf("published = %d, want %d", st.Published, publishers*events)
	}
	for i := 0; i < topics; i++ {
		b.release(fmt.Sprintf("t%d", i))
	}
	if st := b.stats(); st.Topics != 0 {
		t.Fatalf("leaked %d topics after release", st.Topics)
	}
}

// TestBusHistoryCompactionPrefersLifecycle pins the large-campaign replay
// contract: when history overflows, interior progress frames are
// forgotten first and every lifecycle flip — queued, running-start,
// terminal — survives, so a late subscriber still learns every job's
// state trajectory.
func TestBusHistoryCompactionPrefersLifecycle(t *testing.T) {
	b := newBus(4, 64)
	const jobs = 18 // 18 * (3 lifecycle + 9 progress) = 216 events >> 64
	for j := 0; j < jobs; j++ {
		id := fmt.Sprintf("job-%02d", j)
		b.publish("camp", Event{Job: id, State: StatusQueued})
		b.publish("camp", Event{Job: id, State: StatusRunning})
		for p := 1; p <= 9; p++ {
			b.publish("camp", Event{Job: id, State: StatusRunning, Progress: float64(p) / 10})
		}
		b.publish("camp", Event{Job: id, State: StatusDone, Progress: 1, Terminal: true})
	}
	hist, sub := b.subscribe("camp")
	sub.Close()
	if len(hist) > 64 {
		t.Fatalf("history = %d events, want <= 64", len(hist))
	}
	terminals := map[string]bool{}
	queued := map[string]bool{}
	lastSeq := uint64(0)
	for _, ev := range hist {
		if ev.Seq <= lastSeq {
			t.Fatalf("replay seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if ev.Terminal {
			terminals[ev.Job] = true
		}
		if ev.State == StatusQueued {
			queued[ev.Job] = true
		}
	}
	if len(terminals) != jobs {
		t.Fatalf("replay retains %d terminal events, want all %d (progress frames must be compacted first)", len(terminals), jobs)
	}
	if len(queued) != jobs {
		t.Fatalf("replay retains %d queued events, want all %d", len(queued), jobs)
	}
}

// TestBusHistoryCompactionDropsEpochFramesFirst pins the telemetry
// extension of the replay contract: epoch frames are the first class
// evicted — before progress frames, long before lifecycle flips — and
// every evicted frame is counted in the bus's epoch-drop ledger. A late
// subscriber therefore still replays the full lifecycle byte-for-byte
// even when live epoch frames overflowed the history.
func TestBusHistoryCompactionDropsEpochFramesFirst(t *testing.T) {
	b := newBus(4, 6)
	frame := func(i int) *obs.EpochFrame { return &obs.EpochFrame{Epoch: i, Span: 1} }
	b.publish("t", Event{Job: "j", State: StatusQueued})
	for p := 1; p <= 4; p++ {
		b.publish("t", Event{Job: "j", State: StatusRunning, Progress: float64(p) / 10})
	}
	for e := 0; e < 4; e++ {
		b.publish("t", Event{Job: "j", State: StatusRunning, Progress: 0.5, Epoch: frame(e)})
	}
	b.publish("t", Event{Job: "j", State: StatusDone, Progress: 1, Terminal: true})

	hist, sub := b.subscribe("t")
	sub.Close()
	if len(hist) > 6 {
		t.Fatalf("history = %d events, want <= 6", len(hist))
	}
	var epochs, progress int
	sawQueued, sawTerminal := false, false
	for _, ev := range hist {
		switch {
		case ev.Epoch != nil:
			epochs++
		case ev.State == StatusQueued:
			sawQueued = true
		case ev.Terminal:
			sawTerminal = true
		case ev.Progress > 0 && ev.Progress < 1:
			progress++
		}
	}
	if !sawQueued || !sawTerminal {
		t.Fatalf("lifecycle flips must survive compaction, got %+v", hist)
	}
	if progress != 4 {
		t.Fatalf("progress frames retained = %d, want all 4 (epoch frames go first)", progress)
	}
	if st := b.stats(); st.EpochDropped != uint64(4-epochs) {
		t.Fatalf("epoch drops = %d, want %d (published 4, retained %d)", st.EpochDropped, 4-epochs, epochs)
	}

	// The newest event always survives, even when it is an epoch frame.
	b2 := newBus(4, 2)
	for e := 0; e < 8; e++ {
		b2.publish("t", Event{Job: "j", State: StatusRunning, Epoch: frame(e)})
	}
	hist2, sub2 := b2.subscribe("t")
	sub2.Close()
	last := hist2[len(hist2)-1]
	if last.Epoch == nil || last.Epoch.Epoch != 7 {
		t.Fatalf("newest epoch frame must survive, tail = %+v", last)
	}
}
