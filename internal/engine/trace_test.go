package engine

import (
	"strings"
	"sync"
	"testing"

	"lard/internal/obs"
)

// tracedEngine builds a started engine with tracing enabled.
func tracedEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New(obs.Options{Tracing: true})
	}
	return newTestEngine(t, cfg)
}

// spanNames flattens a span tree into name strings for containment checks.
func spanNames(v obs.SpanView, into map[string]obs.SpanView) {
	into[v.Name] = v
	for _, c := range v.Children {
		spanNames(c, into)
	}
}

// TestTraceLifecycle runs one real simulation under tracing and checks the
// finished span tree: admitted -> dispatched -> queued -> simulating (with
// the simulator's phase breakdown, coherence loop non-zero) -> stored.
func TestTraceLifecycle(t *testing.T) {
	e := tracedEngine(t, Config{Workers: 1})
	key, req := smallReq(t, 31)
	if _, shed, err := e.Submit(key, req); shed || err != nil {
		t.Fatalf("submit: shed=%v err=%v", shed, err)
	}
	await(t, e, key)

	tree, ok := e.Trace(key)
	if !ok {
		t.Fatal("no trace for finished run")
	}
	if !tree.Finished {
		t.Fatal("trace not finished after terminal job")
	}
	if tree.Trace != key || tree.Root.Name != "run" {
		t.Fatalf("trace identity wrong: %+v", tree)
	}
	spans := map[string]obs.SpanView{}
	spanNames(tree.Root, spans)
	for _, name := range []string{"admitted", "dispatched", "queued", "simulating",
		"setup", "trace_decode", "coherence_loop", "finalize", "stored"} {
		if _, ok := spans[name]; !ok {
			t.Errorf("trace missing span %q (have %v)", name, keysOf(spans))
		}
	}
	if cl := spans["coherence_loop"]; cl.DurationMS <= 0 {
		t.Errorf("coherence_loop duration = %v, want > 0", cl.DurationMS)
	}
	if d := spans["dispatched"]; len(d.Attrs) == 0 {
		t.Error("dispatched span carries no placement attrs")
	}
	for name, s := range spans {
		if s.End == nil {
			t.Errorf("span %q still open in finished trace", name)
		}
	}
}

// TestTraceCachedSubmit checks a store-hit submission gets a compact trace
// (admitted + stored(cached)) and the second submission of the same key —
// attached to the completed job — leaves it untouched.
func TestTraceCachedSubmit(t *testing.T) {
	e := tracedEngine(t, Config{Workers: 1})
	key, req := smallReq(t, 32)
	if _, shed, err := e.Submit(key, req); shed || err != nil {
		t.Fatalf("submit: shed=%v err=%v", shed, err)
	}
	await(t, e, key)
	// Clear the registry record's trace path by submitting again: the
	// attach path is a cache hit and must not restart the finished trace.
	before, _ := e.Trace(key)
	if v, _, err := e.Submit(key, req); err != nil || !v.Cached {
		t.Fatalf("resubmit = %+v err=%v, want cached", v, err)
	}
	after, ok := e.Trace(key)
	if !ok || len(after.Root.Children) != len(before.Root.Children) {
		t.Fatalf("attach rewrote the trace: before %d children, after %d",
			len(before.Root.Children), len(after.Root.Children))
	}
}

// TestEventsCarrySpanIDs checks the bus contract: with tracing on, every
// job event carries the current span id, and ids change as the job moves
// from queued to running.
func TestEventsCarrySpanIDs(t *testing.T) {
	e := tracedEngine(t, Config{Workers: 1})
	key, req := smallReq(t, 33)
	if _, shed, err := e.Submit(key, req); shed || err != nil {
		t.Fatalf("submit: shed=%v err=%v", shed, err)
	}
	await(t, e, key)
	hist, sub, ok := e.SubscribeRun(key)
	if !ok {
		t.Fatal("subscribe failed")
	}
	sub.Close()
	byState := map[string]string{}
	for _, ev := range hist {
		if ev.Span == "" {
			t.Fatalf("event %+v has no span id under tracing", ev)
		}
		byState[ev.State] = ev.Span
	}
	if byState[StatusQueued] == byState[StatusRunning] {
		t.Error("queued and running events share a span id")
	}
}

// TestEventsNoSpanWhenTracingOff checks the zero-cost contract on the
// wire: a default engine publishes events with no span field at all.
func TestEventsNoSpanWhenTracingOff(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	key, req := smallReq(t, 34)
	if _, shed, err := e.Submit(key, req); shed || err != nil {
		t.Fatalf("submit: shed=%v err=%v", shed, err)
	}
	await(t, e, key)
	hist, sub, _ := e.SubscribeRun(key)
	sub.Close()
	for _, ev := range hist {
		if ev.Span != "" {
			t.Fatalf("event %+v carries a span id with tracing disabled", ev)
		}
	}
	if _, ok := e.Trace(key); ok {
		t.Error("Trace returned a tree with tracing disabled")
	}
}

// TestTraceHistogramsObserve checks the engine feeds its latency families:
// after one real run, queue-wait, run-duration and dispatch histograms
// all have observations.
func TestTraceHistogramsObserve(t *testing.T) {
	ob := obs.New(obs.Options{Tracing: true})
	e := tracedEngine(t, Config{Workers: 1, Obs: ob})
	key, req := smallReq(t, 35)
	if _, shed, err := e.Submit(key, req); shed || err != nil {
		t.Fatalf("submit: shed=%v err=%v", shed, err)
	}
	await(t, e, key)
	if n := ob.QueueWait.With().Count(); n == 0 {
		t.Error("queue-wait histogram has no observations")
	}
	if n := ob.RunDuration.With().Count(); n == 0 {
		t.Error("run-duration histogram has no observations")
	}
	var b strings.Builder
	ob.Dispatch.Write(&b)
	if !strings.Contains(b.String(), "lard_dispatch_seconds_count") {
		t.Error("dispatch histogram rendered no children after a placement")
	}
}

// TestConcurrentTraceVsBusRace races span start/finish (jobs moving
// through the lifecycle) against bus publishes and trace reads — the
// SSE-reader-vs-worker interleaving. Run with -race.
func TestConcurrentTraceVsBusRace(t *testing.T) {
	release := make(chan struct{})
	e := tracedEngine(t, Config{Workers: 4, QueueDepth: 64, Run: blockingRun(nil, release)})

	const jobs = 16
	keys := make([]string, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		key, req := smallReq(t, uint64(100+i))
		keys[i] = key
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := e.Submit(key, req); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	// Concurrent trace readers while jobs queue, run and finish.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, k := range keys {
					e.Trace(k)
				}
			}
		}()
	}
	wg.Wait()
	close(release)
	for _, k := range keys {
		await(t, e, k)
	}
	close(stop)
	readers.Wait()
	for _, k := range keys {
		if tree, ok := e.Trace(k); !ok || !tree.Finished {
			t.Errorf("trace %s not finished (ok=%v)", k[:8], ok)
		}
	}
}

func keysOf(m map[string]obs.SpanView) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
