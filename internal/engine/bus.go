package engine

import (
	"sync"

	"lard/internal/obs"
)

// Event is one observation of a job's lifecycle, the engine's unit of
// event sourcing. Every state transition and every throttled progress
// update of a run is an Event, published to the run's own topic and —
// for campaign members — re-published to each enrolled campaign's topic
// with Campaign set. Seq is the per-topic sequence number: within one
// topic, events are totally ordered and replayable.
type Event struct {
	// Seq orders events within their topic, starting at 1.
	Seq uint64 `json:"seq"`
	// Job is the run's content address ("" for campaign-level events).
	Job string `json:"job,omitempty"`
	// Campaign is the campaign id on campaign-topic events.
	Campaign string `json:"campaign,omitempty"`
	// Benchmark and Scheme identify the run for display.
	Benchmark string `json:"benchmark,omitempty"`
	Scheme    string `json:"scheme,omitempty"`
	// State is the lifecycle state this event reports (queued, running,
	// done, failed, cancelled — or, for campaign-level events, done/failed
	// when every member is terminal).
	State string `json:"state"`
	// Progress is the instructions-retired fraction in [0,1].
	Progress float64 `json:"progress"`
	// Cached marks a run served from the result store without simulating.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure reason on failed events.
	Error string `json:"error,omitempty"`
	// Terminal marks the final event of a job (or of a campaign on
	// campaign-level events): no further events follow for it.
	Terminal bool `json:"terminal,omitempty"`
	// Span is the id of the job's current trace span when tracing is
	// enabled ("" otherwise): the correlation key that lets SSE
	// consumers line events up against GET /v1/runs/{id}/trace.
	Span string `json:"span,omitempty"`
	// Epoch carries one telemetry epoch frame when the run records a
	// timeline (a non-terminal running event at epoch cadence). A pointer
	// keeps Event comparable — the replay tests rely on struct equality —
	// and keeps frame-free events free.
	Epoch *obs.EpochFrame `json:"epoch,omitempty"`
}

// Subscription is one live event feed. Receive from C; call Close exactly
// once when done (client disconnect, end of interest). After Close the
// channel is drained and closed by the bus.
type Subscription struct {
	// C delivers events in publication order, subject to the bounded
	// queue: when a slow consumer falls more than the queue depth behind,
	// the oldest undelivered events are dropped (newest-first retention,
	// so terminal events survive congestion).
	C <-chan Event

	bus     *bus
	topic   string
	ch      chan Event
	dropped uint64
	closed  bool
}

// Close detaches the subscription from the bus. Safe to call once; the
// event channel is closed so range loops terminate.
func (s *Subscription) Close() { s.bus.unsubscribe(s) }

// Dropped reports how many events this subscription lost to its bounded
// queue.
func (s *Subscription) Dropped() uint64 {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// topicState holds one topic's history and live subscribers.
type topicState struct {
	seq     uint64
	history []Event
	subs    map[*Subscription]struct{}
	// evicted marks a topic whose owning job or campaign left the
	// registry: it is reaped once the last subscriber detaches.
	evicted bool
}

// bus is the engine's event fan-out: per-topic ordered history plus
// bounded per-subscriber queues. All methods are safe for concurrent use.
type bus struct {
	mu       sync.Mutex
	topics   map[string]*topicState
	queueCap int // per-subscriber channel depth
	histCap  int // per-topic replay history bound

	published    uint64
	dropped      uint64
	epochDropped uint64
	subs         int
}

// Default bus bounds. History keeps every lifecycle flip plus ~100
// throttled progress events per job, so maxHistory comfortably covers a
// full run; subscriber queues are sized for bursts, not for archives —
// replay serves catch-up.
const (
	defaultQueueCap = 256
	defaultHistCap  = 512
)

func newBus(queueCap, histCap int) *bus {
	if queueCap <= 0 {
		queueCap = defaultQueueCap
	}
	if histCap <= 0 {
		histCap = defaultHistCap
	}
	return &bus{topics: make(map[string]*topicState), queueCap: queueCap, histCap: histCap}
}

func (b *bus) topic(name string) *topicState {
	t, ok := b.topics[name]
	if !ok {
		t = &topicState{subs: make(map[*Subscription]struct{})}
		b.topics[name] = t
	}
	return t
}

// publish stamps ev with the topic's next sequence number, appends it to
// the replay history, and offers it to every subscriber. History beyond
// the bound is compacted progress-first (see compactHistory): lifecycle
// flips survive, so a late subscriber to even a large campaign replays
// every member's queued/running/terminal trajectory gap-free — only stale
// interior progress frames are forgotten. A subscriber whose queue is
// full loses its oldest queued event, never the new one: under congestion
// the live feed degrades to newest-events-only, which keeps terminal
// events flowing.
func (b *bus) publish(topicName string, ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topicName)
	t.seq++
	ev.Seq = t.seq
	t.history = append(t.history, ev)
	if len(t.history) > b.histCap {
		var lost int
		t.history, lost = compactHistory(t.history, b.histCap)
		b.epochDropped += uint64(lost)
	}
	b.published++
	for s := range t.subs {
		select {
		case s.ch <- ev:
			continue
		default:
		}
		// Queue full: drop the oldest queued event to make room. The
		// receiver may race us and drain meanwhile, so retry once and
		// count a drop only when something was actually lost.
		select {
		case <-s.ch:
			s.dropped++
			b.dropped++
		default:
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped++
			b.dropped++
		}
	}
}

// subscribe registers a new subscriber and atomically snapshots the
// topic's replay history: every retained event is either in the returned
// history or will arrive on the subscription, with no gap and no
// duplicate in between (compaction may have dropped old interior progress
// frames from the history — never lifecycle events, see compactHistory).
func (b *bus) subscribe(topicName string) ([]Event, *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.topic(topicName)
	s := &Subscription{bus: b, topic: topicName, ch: make(chan Event, b.queueCap)}
	s.C = s.ch
	t.subs[s] = struct{}{}
	b.subs++
	hist := make([]Event, len(t.history))
	copy(hist, t.history)
	return hist, s
}

// unsubscribe detaches s and closes its channel; reaps the topic when it
// was evicted and this was its last subscriber.
func (b *bus) unsubscribe(s *Subscription) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	t, ok := b.topics[s.topic]
	if ok {
		delete(t.subs, s)
		if t.evicted && len(t.subs) == 0 {
			delete(b.topics, s.topic)
		}
	}
	b.subs--
	// Publishers send only under b.mu, which we hold: closing is safe.
	close(s.ch)
}

// compactHistory shrinks an over-bound history toward max by discarding
// the most ephemeral events first: oldest interior telemetry epoch
// frames (they summarize an instant the timeline endpoint still serves
// in full), then oldest interior progress frames (already superseded by
// newer fractions), and only when lifecycle events alone exceed the
// bound does it drop oldest events outright. The newest event always
// survives. This is what keeps a many-member campaign's replay truthful
// about member *states* however chatty its progress or telemetry stream
// was. It returns the number of epoch frames discarded, for the bus's
// drop accounting.
func compactHistory(h []Event, max int) ([]Event, int) {
	excess := len(h) - max
	if excess <= 0 {
		return h, 0
	}
	epochLost := 0
	out := h[:0]
	for i, ev := range h {
		if excess > 0 && i < len(h)-1 && epochFrame(ev) {
			excess--
			epochLost++
			continue
		}
		out = append(out, ev)
	}
	if excess > 0 {
		kept := out
		out = kept[:0]
		for i, ev := range kept {
			if excess > 0 && i < len(kept)-1 && progressFrame(ev) {
				excess--
				continue
			}
			out = append(out, ev)
		}
	}
	if len(out) > max {
		for _, ev := range out[:len(out)-max] {
			if epochFrame(ev) {
				epochLost++
			}
		}
		out = out[len(out)-max:]
	}
	return out, epochLost
}

// progressFrame reports whether ev is an interior progress update — a
// non-terminal running event strictly inside (0,1) — as opposed to a
// lifecycle flip (queued, running-start at 0, terminal).
func progressFrame(ev Event) bool {
	return !ev.Terminal && ev.State == StatusRunning && ev.Progress > 0 && ev.Progress < 1 && ev.Epoch == nil
}

// epochFrame reports whether ev carries a telemetry epoch frame.
func epochFrame(ev Event) bool { return ev.Epoch != nil }

// hasTopic reports whether the topic holds any retained state.
func (b *bus) hasTopic(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.topics[name]
	return ok
}

// release marks a topic's owner as gone: its history is dropped
// immediately if nobody is watching, or as soon as the last subscriber
// detaches. Bounds the bus to the registries' lifetimes.
func (b *bus) release(topicName string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.topics[topicName]
	if !ok {
		return
	}
	if len(t.subs) == 0 {
		delete(b.topics, topicName)
		return
	}
	t.evicted = true
}

// EventStats is the bus's observability snapshot.
type EventStats struct {
	// Published counts events accepted onto topics; Dropped counts events
	// lost to full subscriber queues (a drop is per subscriber: one
	// publish can drop once per slow consumer).
	Published uint64 `json:"published"`
	Dropped   uint64 `json:"dropped"`
	// EpochDropped counts telemetry epoch frames discarded by history
	// compaction — they are the first class evicted, before progress
	// frames, which is what preserves the lifecycle replay guarantee.
	EpochDropped uint64 `json:"epoch_dropped"`
	// Subscribers is the live subscription count; Topics the number of
	// topics holding history.
	Subscribers int `json:"subscribers"`
	Topics      int `json:"topics"`
}

func (b *bus) stats() EventStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return EventStats{Published: b.published, Dropped: b.dropped, EpochDropped: b.epochDropped, Subscribers: b.subs, Topics: len(b.topics)}
}
