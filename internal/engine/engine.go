// Package engine is the event-sourced execution engine beneath the HTTP
// service: one lifecycle state machine for runs and campaign members,
// driven through a bounded worker pool and narrated on an event bus.
//
// Every job — a single POST /v1/runs submission or one campaign member —
// moves through pending -> queued -> running -> done/failed/cancelled.
// Each transition, and each throttled instructions-retired progress update
// from the simulator, is published as an Event on the job's topic (and
// fanned out to every campaign the job belongs to). Topics keep a bounded
// replayable history, so a late subscriber first receives everything that
// already happened, then the live feed — the contract the server's SSE
// endpoints expose.
//
// Scheduling is locality-aware and pluggable: a Dispatcher classifies each
// admitted job by where its result key already lives (local replica >
// owner shard > any worker, the serving-tier analogue of the paper's
// locality-aware replication) and workers drain the hottest class first,
// preferring their own lane but stealing freely. Admission is bounded:
// beyond QueueDepth the engine sheds (the server's 429), byte-compatible
// with the channel-based pool it replaces.
//
// Jobs are content-addressed and deduplicated exactly as before: an id is
// its run's canonical store key, resubmission attaches, completed results
// live on in the store after registry eviction.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"lard"
	"lard/internal/obs"
	"lard/internal/resultstore"
)

// Job states. A job is terminal in StatusDone, StatusFailed or
// StatusCancelled; StatusPending is the campaign-member state for work the
// queue has not accepted yet.
const (
	StatusPending   = "pending"
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// terminal reports whether status is a final state.
func terminal(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// RunFunc executes one simulation through a store, honoring ctx
// cancellation and reporting instructions-retired progress. It is a seam
// for tests; production engines use lard.RunWithStoreProgress.
type RunFunc func(ctx context.Context, st *resultstore.Store, benchmark string, s lard.Scheme, o lard.Options, progress lard.ProgressFunc) (*lard.Result, bool, error)

// Request identifies one run: the wire shape of POST /v1/runs.
type Request struct {
	Benchmark string       `json:"benchmark"`
	Scheme    lard.Scheme  `json:"scheme"`
	Options   lard.Options `json:"options"`
}

// JobView is the wire representation of a job.
type JobView struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	Scheme    string `json:"scheme"`
	Status    string `json:"status"`
	// Progress is the instructions-retired fraction in [0,1] (1 on done).
	Progress float64 `json:"progress"`
	// Cached reports whether the result was served from the store rather
	// than simulated for this job.
	Cached bool         `json:"cached"`
	Result *lard.Result `json:"result,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// job is the internal job record; mutable fields are guarded by the engine
// mutex.
type job struct {
	id        string
	req       Request
	status    string
	cached    bool
	result    *lard.Result
	err       string
	progress  float64
	placement Placement
	enq       uint64             // admission order within the queue
	cancel    context.CancelFunc // set while running
	cancelReq bool               // cancellation requested

	// Observability. admittedAt is the queue-admission instant (zero for
	// jobs answered from the store without queueing); root is the job's
	// trace root and phase the currently open phase span, both nil when
	// tracing is disabled. The phase pointer is written only under the
	// engine mutex; span-internal state has its own lock.
	admittedAt time.Time
	root       *obs.Span
	phase      *obs.Span
}

// Config configures an Engine.
type Config struct {
	// Store is the backing result store (required).
	Store *resultstore.Store
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// SimWorkers is the intra-run worker-lane count every simulation runs
	// with (lard.Options.SimWorkers; 0 or 1 = the sequential loop). The
	// pool and the intra-run scheduler multiply into the same cores, so a
	// pool wider than one worker guards this back to 1: widen SimWorkers
	// only on a single-worker pool, where one run at a time should finish
	// as fast as possible. Negative values are rejected by New.
	SimWorkers int
	// QueueDepth bounds the admitted-but-not-running queue (default 2x
	// Workers); submissions beyond it are shed.
	QueueDepth int
	// Run overrides the simulation function (tests only).
	Run RunFunc
	// MaxCompletedJobs bounds the registry of finished jobs (default
	// 4096). Results live on in the store — an evicted id answers unknown
	// here, but the store still resolves it by content address.
	MaxCompletedJobs int
	// Dispatcher overrides the placement policy (default: locality-aware
	// over Store).
	Dispatcher Dispatcher
	// EventQueue bounds each subscriber's event channel (default 256).
	EventQueue int
	// EventHistory bounds each topic's replayable history (default 512).
	EventHistory int
	// Obs is the observability bundle — tracer, latency histograms,
	// logger (default obs.Nop(): histograms recorded but unexported,
	// tracing off, logs discarded).
	Obs *obs.Observer
}

// maxCompletedJobs is the default bound on the finished-job registry.
const maxCompletedJobs = 4096

// progressDelta is the event-publication throttle: a running job's
// progress events fire when the fraction advances at least this much
// (plus always at 1.0), bounding a run to ~100 progress events however
// often the simulator reports.
const progressDelta = 0.01

// ErrShuttingDown rejects work submitted during shutdown.
var ErrShuttingDown = errors.New("engine shutting down")

// ErrUnknownJob reports an id absent from the job registry.
var ErrUnknownJob = errors.New("unknown job")

// ErrTerminal reports a cancellation attempt on an already-terminal job.
var ErrTerminal = errors.New("job already terminal")

// Engine is the execution engine. Create with New, start the worker pool
// with Start, and stop with Shutdown.
type Engine struct {
	store      *resultstore.Store
	run        RunFunc
	workers    int
	simWorkers int
	maxDone    int
	queueCap   int
	dispatcher Dispatcher
	bus        *bus
	obs        *obs.Observer

	mu      sync.Mutex
	cond    *sync.Cond // signals queue pushes and shutdown
	pending []*job     // admitted, waiting for a worker
	enqSeq  uint64
	jobs    map[string]*job
	done    []*job // completed jobs, oldest first, for eviction
	busy    int    // workers currently simulating
	closing bool
	stop    chan struct{}
	wg      sync.WaitGroup

	campaigns   map[string]*campaign
	campOrder   []*campaign                // registration order, for eviction
	memberCamps map[string]map[string]bool // member key -> campaign ids

	// Monotonic counters (see MetricsSnapshot).
	runsStarted   uint64
	runsCompleted uint64
	runsFailed    uint64
	runsCached    uint64
	runsCancelled uint64
	campaignsSeen uint64
	dispatch      [3]uint64 // admissions by PlacementClass
	parRounds     uint64    // intra-run scheduler rounds across completed runs
	parConflicts  uint64    // accesses deferred by footprint conflicts
	parCommits    uint64    // accesses committed through parallel rounds
}

// New builds an Engine from cfg.
func New(cfg Config) (*Engine, error) {
	if cfg.Store == nil {
		return nil, errors.New("engine: Config.Store is required")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SimWorkers < 0 {
		return nil, fmt.Errorf("engine: Config.SimWorkers must be non-negative, got %d", cfg.SimWorkers)
	}
	simWorkers := cfg.SimWorkers
	if workers > 1 && simWorkers > 1 {
		// Oversubscription guard: concurrent pool workers already saturate
		// the machine; intra-run lanes on top would only contend.
		simWorkers = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	run := cfg.Run
	if run == nil {
		run = func(ctx context.Context, st *resultstore.Store, benchmark string, s lard.Scheme, o lard.Options, p lard.ProgressFunc) (*lard.Result, bool, error) {
			return lard.RunWithStoreProgress(ctx, st, benchmark, s, o, p)
		}
	}
	maxDone := cfg.MaxCompletedJobs
	if maxDone <= 0 {
		maxDone = maxCompletedJobs
	}
	disp := cfg.Dispatcher
	if disp == nil {
		disp = NewLocalityDispatcher(cfg.Store)
	}
	ob := cfg.Obs
	if ob == nil {
		ob = obs.Nop()
	}
	e := &Engine{
		store:       cfg.Store,
		run:         run,
		workers:     workers,
		simWorkers:  simWorkers,
		maxDone:     maxDone,
		queueCap:    depth,
		dispatcher:  disp,
		obs:         ob,
		bus:         newBus(cfg.EventQueue, cfg.EventHistory),
		jobs:        make(map[string]*job),
		stop:        make(chan struct{}),
		campaigns:   make(map[string]*campaign),
		memberCamps: make(map[string]map[string]bool),
	}
	e.cond = sync.NewCond(&e.mu)
	return e, nil
}

// Start launches the worker pool.
func (e *Engine) Start() {
	for i := 0; i < e.workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
}

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// SimWorkers returns the effective intra-run worker-lane count each
// simulation runs with (after the oversubscription guard).
func (e *Engine) SimWorkers() int { return e.simWorkers }

// QueueCap returns the admission-queue bound.
func (e *Engine) QueueCap() int { return e.queueCap }

// Store returns the backing result store.
func (e *Engine) Store() *resultstore.Store { return e.store }

// Stopping is closed when Shutdown begins (used by tests to sequence
// against the drain).
func (e *Engine) Stopping() <-chan struct{} { return e.stop }

// Shutdown stops the engine gracefully: new submissions are refused,
// workers finish their in-flight simulations, and still-queued jobs fail
// with ErrShuttingDown's message. It returns ctx.Err() if the workers
// outlive the context.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	already := e.closing
	e.closing = true
	e.cond.Broadcast()
	e.mu.Unlock()
	if !already {
		close(e.stop)
	}

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	// Workers are gone; fail whatever never got picked up.
	e.mu.Lock()
	drained := e.pending
	e.pending = nil
	e.mu.Unlock()
	for _, j := range drained {
		e.finish(j, nil, false, ErrShuttingDown)
	}
	return nil
}

// worker drains the queue until Shutdown, hottest placement class first,
// preferring its own lane.
func (e *Engine) worker(lane int) {
	defer e.wg.Done()
	for {
		j := e.pop(lane)
		if j == nil {
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		e.mu.Lock()
		if j.cancelReq {
			// Cancelled between admission and pickup; never starts.
			e.mu.Unlock()
			cancel()
			e.finish(j, nil, false, context.Canceled)
			continue
		}
		j.status = StatusRunning
		j.cancel = cancel
		e.busy++
		e.runsStarted++
		if !j.admittedAt.IsZero() {
			e.obs.QueueWait.ObserveDuration(time.Since(j.admittedAt))
		}
		j.phase.End() // queued
		simSpan := j.root.Child("simulating")
		j.phase = simSpan
		e.publishJobLocked(j, Event{State: StatusRunning, Progress: j.progress})
		e.mu.Unlock()

		// When tracing, run through an options copy carrying the
		// simulator's phase-timing side channel — key-neutral, so the
		// job's content address (its id) is untouched.
		opts := j.req.Options
		// Intra-run parallelism is an engine policy, not job identity: the
		// effective lane width applies through the options copy, leaving
		// the job's content address untouched (the field is key-neutral
		// anyway, but requests cannot demand their own width either).
		opts.SimWorkers = e.simWorkers
		var tm lard.Timing
		if simSpan != nil {
			opts.Timing = &tm
		}
		// When telemetry is on, attach a flight recorder the same way:
		// through the options copy, never the keyed request. Epoch frames
		// flow onto the run's event topic as they commit.
		if e.obs.Timelines.Enabled() {
			rec := e.obs.Timelines.Attach(j.id)
			rec.OnEpoch(func(f obs.EpochFrame) { e.publishEpoch(j, f) })
			opts.Telemetry = rec
		}
		progress := func(done, total uint64) { e.reportProgress(j, done, total) }
		callStart := time.Now()
		res, cached, err := e.run(ctx, e.store, j.req.Benchmark, j.req.Scheme, opts, progress)
		callDur := time.Since(callStart)
		cancel()
		e.graftSimPhases(j, simSpan, &tm, callStart, callDur, cached)
		e.finish(j, res, cached, err)
		e.mu.Lock()
		e.busy--
		j.cancel = nil
		e.mu.Unlock()
	}
}

// graftSimPhases attaches the simulator's measured phase breakdown as
// children of the "simulating" span and adds the "stored" span covering
// the residual of the run call (store write, encode, singleflight
// coordination). Runs served from the store mid-call — or executed by a
// stub RunFunc that never fills the side channel — get a single "stored"
// span over the whole call. No-op when tracing is disabled.
func (e *Engine) graftSimPhases(j *job, simSpan *obs.Span, tm *lard.Timing, callStart time.Time, callDur time.Duration, cached bool) {
	if simSpan == nil {
		return
	}
	simulated := tm.Total() > 0
	if simulated {
		t := tm.Start
		for _, ph := range []struct {
			name string
			d    time.Duration
		}{
			{"setup", tm.Setup},
			{"trace_decode", tm.TraceDecode},
			{"coherence_loop", tm.CoherenceLoop},
			{"finalize", tm.Finalize},
		} {
			simSpan.ChildAt(ph.name, t, ph.d)
			t = t.Add(ph.d)
		}
	}
	simSpan.End()
	var stored *obs.Span
	if simulated && callDur > tm.Total() {
		stored = j.root.ChildAt("stored", callStart.Add(tm.Total()), callDur-tm.Total())
	} else {
		stored = j.root.ChildAt("stored", callStart, callDur)
	}
	if cached {
		stored.SetAttr("cached", "true")
	}
}

// pop blocks until a job is available (returning the best one for lane) or
// shutdown begins (returning nil). Selection order: hottest placement
// class, then own-lane before stolen, then admission order. The scan is
// linear over the bounded queue.
func (e *Engine) pop(lane int) *job {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.closing {
			return nil
		}
		if len(e.pending) > 0 {
			best := 0
			for i := 1; i < len(e.pending); i++ {
				if e.better(e.pending[i], e.pending[best], lane) {
					best = i
				}
			}
			j := e.pending[best]
			e.pending = append(e.pending[:best], e.pending[best+1:]...)
			return j
		}
		e.cond.Wait()
	}
}

// better reports whether a should run before b from lane's perspective.
func (e *Engine) better(a, b *job, lane int) bool {
	if a.placement.Class != b.placement.Class {
		return a.placement.Class < b.placement.Class
	}
	am, bm := a.placement.Lane == lane, b.placement.Lane == lane
	if am != bm {
		return am
	}
	return a.enq < b.enq
}

// Submit guarantees the run with content address key is progressing,
// whether submitted directly or fanned out by a campaign: an existing job
// is attached to (failed ones re-enqueued for retry), a previously stored
// result materializes a completed job without touching the queue, and a
// novel run is admitted through the dispatcher. It returns a snapshot view
// (Cached set when this caller got the result without simulating),
// shed=true when the queue is full (nothing enrolled), or an error
// (shutdown, or a store fault).
func (e *Engine) Submit(key string, req Request) (view JobView, shed bool, err error) {
	e.mu.Lock()
	if e.closing {
		e.mu.Unlock()
		return JobView{}, false, ErrShuttingDown
	}
	if j, ok := e.jobs[key]; ok {
		defer e.mu.Unlock()
		return e.attachLocked(j)
	}
	e.mu.Unlock()

	// Off the lock: a previously computed run answers from the store,
	// synchronously and without simulating; a miss classifies placement
	// for the dispatcher (both probe the same store).
	res, hit, err := lard.LookupStored(e.store, req.Benchmark, req.Scheme, req.Options)
	if err != nil {
		return JobView{}, false, err
	}
	dispatchStart := time.Now()
	placement := e.dispatcher.Place(key, e.workers)
	dispatchDur := time.Since(dispatchStart)
	e.obs.Dispatch.ObserveDuration(dispatchDur, placement.Class.String())

	e.mu.Lock()
	defer e.mu.Unlock()
	// Re-check closing: Shutdown may have drained the queue while we were
	// off the lock — enqueueing now would strand the job in "queued".
	if e.closing {
		return JobView{}, false, ErrShuttingDown
	}
	if j, raced := e.jobs[key]; raced {
		return e.attachLocked(j)
	}
	j := &job{id: key, req: req, status: StatusQueued, placement: placement}
	if hit {
		j.status, j.cached, j.result, j.progress = StatusDone, true, res, 1
		e.runsCached++
		e.jobs[key] = j
		e.beginTraceLocked(j, dispatchStart, dispatchDur, false)
		stored := j.root.Child("stored")
		stored.SetAttr("cached", "true")
		stored.End()
		j.root.End()
		e.obs.Log.Debug("run served from store", "run", j.id, "benchmark", req.Benchmark)
		e.publishJobLocked(j, Event{State: StatusDone, Progress: 1, Cached: true, Terminal: true})
		e.completedLocked(j)
		return viewOf(j), false, nil
	}
	if !e.admitLocked(j) {
		e.obs.Log.Warn("queue full, submission shed", "run", key, "benchmark", req.Benchmark)
		return JobView{}, true, nil
	}
	e.jobs[key] = j
	e.beginTraceLocked(j, dispatchStart, dispatchDur, false)
	e.obs.Log.Debug("run admitted", "run", j.id, "benchmark", req.Benchmark,
		"scheme", req.Scheme.Label(), "class", placement.Class.String(), "lane", placement.Lane)
	e.publishJobLocked(j, Event{State: StatusQueued})
	return viewOf(j), false, nil
}

// beginTraceLocked starts (or, on retry, restarts) j's trace: the root
// "run" span with identity attributes, an "admitted" span containing the
// measured "dispatched" placement decision, and — for a job actually
// entering the queue — an open "queued" phase span ended at worker
// pickup. No-ops entirely when tracing is disabled. Callers hold e.mu.
func (e *Engine) beginTraceLocked(j *job, dispatchStart time.Time, dispatchDur time.Duration, retry bool) {
	if j.status == StatusQueued {
		j.admittedAt = time.Now() // queue-wait baseline, tracing or not
	}
	j.root = e.obs.Tracer.StartTrace(j.id, "run")
	if j.root == nil {
		return
	}
	j.root.SetAttr("benchmark", j.req.Benchmark)
	j.root.SetAttr("scheme", j.req.Scheme.Label())
	adm := j.root.Child("admitted")
	if retry {
		adm.SetAttr("retry", "true")
	}
	if !dispatchStart.IsZero() {
		d := adm.ChildAt("dispatched", dispatchStart, dispatchDur)
		d.SetAttr("class", j.placement.Class.String())
		d.SetAttr("lane", strconv.Itoa(j.placement.Lane))
	}
	adm.End()
	if j.status == StatusQueued {
		j.phase = j.root.Child("queued")
	}
}

// admitLocked places j on the bounded queue, false when full. Callers hold
// e.mu.
func (e *Engine) admitLocked(j *job) bool {
	if len(e.pending) >= e.queueCap {
		return false
	}
	e.enqSeq++
	j.enq = e.enqSeq
	e.pending = append(e.pending, j)
	e.dispatch[j.placement.Class]++
	e.cond.Signal()
	return true
}

// attachLocked resolves a Submit against an existing job record: completed
// jobs are cache hits (whatever their own history, *this* request is
// served without simulating), failed and cancelled ones re-enqueue for
// retry, pending ones are simply attached to. Callers hold e.mu.
func (e *Engine) attachLocked(j *job) (JobView, bool, error) {
	switch j.status {
	case StatusDone:
		view := viewOf(j)
		view.Cached = true
		return view, false, nil
	case StatusFailed, StatusCancelled:
		if !e.admitLocked(j) {
			return JobView{}, true, nil
		}
		j.status, j.err, j.cancelReq, j.progress = StatusQueued, "", false, 0
		// A retry restarts the trace: the tree always describes the
		// attempt that produced the job's current state.
		e.beginTraceLocked(j, time.Time{}, 0, true)
		e.obs.Log.Debug("run re-enqueued for retry", "run", j.id, "benchmark", j.req.Benchmark)
		e.publishJobLocked(j, Event{State: StatusQueued})
		e.campaignReopenLocked(j.id)
		return viewOf(j), false, nil
	default:
		return viewOf(j), false, nil
	}
}

// Cancel requests cancellation of the job with the given id. A queued job
// cancels immediately; a running one has its context cancelled, which
// interrupts the simulation at its next progress check and reports the
// terminal cancelled event asynchronously. Terminal jobs return
// ErrTerminal, unknown ids ErrUnknownJob.
func (e *Engine) Cancel(id string) (JobView, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return JobView{}, ErrUnknownJob
	}
	if terminal(j.status) {
		defer e.mu.Unlock()
		return viewOf(j), ErrTerminal
	}
	j.cancelReq = true
	switch j.status {
	case StatusQueued:
		for i, p := range e.pending {
			if p == j {
				e.pending = append(e.pending[:i], e.pending[i+1:]...)
				break
			}
		}
		// Finish inline under the lock: a worker that popped the job
		// concurrently re-checks cancelReq under this same lock, and
		// finishLocked's terminal guard makes whichever side loses the
		// race a no-op.
		e.finishLocked(j, nil, false, context.Canceled)
	case StatusRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	defer e.mu.Unlock()
	return viewOf(j), nil
}

// reportProgress is the engine-side simulator progress callback: it
// updates the job record and publishes a throttled progress event.
func (e *Engine) reportProgress(j *job, done, total uint64) {
	if total == 0 {
		return
	}
	frac := float64(done) / float64(total)
	if frac > 1 {
		frac = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.status != StatusRunning || frac <= j.progress {
		return
	}
	if frac < 1 && frac-j.progress < progressDelta {
		return
	}
	j.progress = frac
	e.publishJobLocked(j, Event{State: StatusRunning, Progress: frac})
}

// finish records a job outcome and publishes its terminal event.
func (e *Engine) finish(j *job, res *lard.Result, cached bool, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.finishLocked(j, res, cached, err)
}

// finishLocked is finish under the engine lock. A job already terminal is
// left untouched: Cancel and a worker pickup can race to finish the same
// job (Cancel sees it queued, the worker has already popped it), and
// exactly one of them may publish the terminal event and count the
// outcome. Callers hold e.mu.
func (e *Engine) finishLocked(j *job, res *lard.Result, cached bool, err error) {
	if terminal(j.status) {
		return
	}
	switch {
	case err != nil && (j.cancelReq || errors.Is(err, context.Canceled)):
		j.status, j.err = StatusCancelled, context.Canceled.Error()
		e.runsCancelled++
		e.publishJobLocked(j, Event{State: StatusCancelled, Progress: j.progress, Terminal: true})
	case err != nil:
		j.status, j.err = StatusFailed, err.Error()
		e.runsFailed++
		e.publishJobLocked(j, Event{State: StatusFailed, Progress: j.progress, Error: j.err, Terminal: true})
	default:
		j.status, j.cached, j.result, j.progress = StatusDone, cached, res, 1
		e.runsCompleted++
		// Intra-run scheduler telemetry: zero for sequential and cached
		// runs, so the counters meter exactly the parallel simulation work
		// this engine performed.
		e.parRounds += res.Parallel.Rounds
		e.parConflicts += res.Parallel.Conflicts
		e.parCommits += res.Parallel.Commits
		e.publishJobLocked(j, Event{State: StatusDone, Progress: 1, Cached: cached, Terminal: true})
	}
	if !j.admittedAt.IsZero() {
		e.obs.RunDuration.ObserveDuration(time.Since(j.admittedAt))
	}
	// Ending the root closes any still-open phase span (queued on an
	// early cancel, simulating on a failure), so finished traces never
	// dangle.
	j.root.End()
	j.phase = nil
	switch j.status {
	case StatusFailed:
		e.obs.Log.Warn("run failed", "run", j.id, "benchmark", j.req.Benchmark, "error", j.err)
	default:
		e.obs.Log.Debug("run finished", "run", j.id, "benchmark", j.req.Benchmark,
			"status", j.status, "cached", j.cached)
	}
	e.completedLocked(j)
}

// completedLocked enrolls a finished job for eviction and trims the
// registry to maxDone so a long-lived engine's memory stays bounded.
// Evicted ids release their event topic (once unobserved). Callers hold
// e.mu.
func (e *Engine) completedLocked(j *job) {
	e.done = append(e.done, j)
	for len(e.done) > e.maxDone {
		old := e.done[0]
		e.done = e.done[1:]
		// The id may since have been re-enqueued (failed retry) or taken
		// by a newer job; only evict the record this enrollment refers to,
		// and only while it is still terminal.
		if cur, ok := e.jobs[old.id]; ok && cur == old && terminal(old.status) {
			delete(e.jobs, old.id)
			e.bus.release(old.id)
		}
	}
}

// Job returns a snapshot view of the job with the given id.
func (e *Engine) Job(id string) (JobView, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return viewOf(j), true
}

// viewOf renders a job; the caller must hold e.mu (or otherwise own j).
func viewOf(j *job) JobView {
	return JobView{
		ID:        j.id,
		Benchmark: j.req.Benchmark,
		Scheme:    j.req.Scheme.Label(),
		Status:    j.status,
		Progress:  j.progress,
		Cached:    j.cached,
		Result:    j.result,
		Error:     j.err,
	}
}

// publishJobLocked stamps ev with j's identity and publishes it to the
// job's topic and to every campaign the job is a member of (with Campaign
// set). Terminal events additionally update campaign completion
// bookkeeping, possibly publishing a campaign-level terminal event.
// Callers hold e.mu.
func (e *Engine) publishJobLocked(j *job, ev Event) {
	ev.Job = j.id
	ev.Benchmark = j.req.Benchmark
	ev.Scheme = j.req.Scheme.Label()
	if j.phase != nil {
		ev.Span = j.phase.ID()
	} else {
		ev.Span = j.root.ID() // "" when tracing is disabled
	}
	e.bus.publish(j.id, ev)
	for campID := range e.memberCamps[j.id] {
		cev := ev
		cev.Campaign = campID
		e.bus.publish(campID, cev)
	}
	if ev.Terminal {
		e.campaignMemberTerminalLocked(j.id, j.status)
	}
}

// SubscribeRun subscribes to a run's event topic, returning the replay
// history and the live feed. ok=false when the id has neither a registry
// record nor retained history.
func (e *Engine) SubscribeRun(id string) ([]Event, *Subscription, bool) {
	e.mu.Lock()
	_, known := e.jobs[id]
	e.mu.Unlock()
	if !known && !e.bus.hasTopic(id) {
		return nil, nil, false
	}
	hist, sub := e.bus.subscribe(id)
	return hist, sub, true
}

// SubscribeCampaign subscribes to a campaign's event topic. ok=false for
// unknown campaigns.
func (e *Engine) SubscribeCampaign(id string) ([]Event, *Subscription, bool) {
	e.mu.Lock()
	_, known := e.campaigns[id]
	e.mu.Unlock()
	if !known && !e.bus.hasTopic(id) {
		return nil, nil, false
	}
	hist, sub := e.bus.subscribe(id)
	return hist, sub, true
}

// EventStats returns the bus counters.
func (e *Engine) EventStats() EventStats { return e.bus.stats() }

// Obs returns the engine's observability bundle (never nil).
func (e *Engine) Obs() *obs.Observer { return e.obs }

// Trace returns the span tree recorded for the run with the given id
// (a content address, exactly as Job). ok=false when tracing is disabled
// or the trace has been evicted from the bounded registry.
func (e *Engine) Trace(id string) (obs.TraceView, bool) {
	return e.obs.Tracer.Tree(id)
}

// Timeline returns the epoch-resolved telemetry recorded for the run
// with the given id. ok=false when telemetry is disabled or the timeline
// has been evicted from the bounded registry.
func (e *Engine) Timeline(id string) (obs.TimelineView, bool) {
	return e.obs.Timelines.View(id)
}

// publishEpoch publishes one committed telemetry epoch frame on the
// run's topic (and its campaigns'). It is called from the simulator's
// run loop, via the recorder's epoch callback, outside any recorder
// lock.
func (e *Engine) publishEpoch(j *job, f obs.EpochFrame) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.status != StatusRunning {
		return
	}
	e.publishJobLocked(j, Event{State: StatusRunning, Progress: j.progress, Epoch: &f})
}

// Stats is the engine's point-in-time operational snapshot.
type Stats struct {
	Workers int `json:"workers"`
	// SimWorkers is the effective intra-run worker-lane count each
	// simulation runs with: the configured value after the
	// oversubscription guard (forced to 1 when Workers > 1).
	SimWorkers int `json:"sim_workers"`
	QueueLen   int `json:"queue_len"`
	QueueCap   int `json:"queue_cap"`
	// Busy is the number of workers currently simulating; 0 with an empty
	// queue means the pool is idle.
	Busy int            `json:"busy"`
	Jobs map[string]int `json:"jobs"`
	// Campaigns is the registered-campaign count.
	Campaigns int `json:"campaigns"`
	// Dispatcher names the placement policy; Dispatch counts admissions
	// by placement class.
	Dispatcher string            `json:"dispatcher"`
	Dispatch   map[string]uint64 `json:"dispatch"`
	// Cancellations counts jobs that reached the cancelled state.
	Cancellations uint64 `json:"cancellations"`
	// Events is the bus snapshot.
	Events EventStats `json:"events"`
}

// Stats returns the engine snapshot.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		Workers:       e.workers,
		SimWorkers:    e.simWorkers,
		QueueLen:      len(e.pending),
		QueueCap:      e.queueCap,
		Busy:          e.busy,
		Jobs:          map[string]int{StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0, StatusCancelled: 0},
		Campaigns:     len(e.campaigns),
		Dispatcher:    e.dispatcher.Name(),
		Dispatch:      map[string]uint64{},
		Cancellations: e.runsCancelled,
	}
	for _, j := range e.jobs {
		s.Jobs[j.status]++
	}
	for c := ClassReplica; c <= ClassCold; c++ {
		s.Dispatch[c.String()] = e.dispatch[c]
	}
	e.mu.Unlock()
	s.Events = e.bus.stats()
	return s
}

// MetricsSnapshot is the consistent counter snapshot /metrics renders.
type MetricsSnapshot struct {
	RunsStarted, RunsCompleted, RunsFailed, RunsCached, RunsCancelled uint64
	CampaignsSeen                                                     uint64
	ParRounds, ParConflicts, ParCommits                               uint64
	Jobs, Members                                                     map[string]int
	Campaigns                                                         int
	QueueLen, QueueCap, Workers, Busy                                 int
	Dispatcher                                                        string
	Dispatch                                                          map[string]uint64
	Events                                                            EventStats
}

// MetricsSnapshot gathers every gauge and counter under one hold of the
// engine mutex so a scrape never mixes states from different instants. The
// campaign-member states come from the job registry alone (no store I/O on
// the scrape path): members evicted after completion report as pending
// here, exactly as the campaign view renders them.
func (e *Engine) MetricsSnapshot() MetricsSnapshot {
	m := MetricsSnapshot{
		Jobs:     map[string]int{StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0, StatusCancelled: 0},
		Members:  map[string]int{StatusPending: 0, StatusQueued: 0, StatusRunning: 0, StatusDone: 0, StatusFailed: 0, StatusCancelled: 0},
		Dispatch: map[string]uint64{},
	}
	e.mu.Lock()
	m.RunsStarted, m.RunsCompleted = e.runsStarted, e.runsCompleted
	m.RunsFailed, m.RunsCached, m.RunsCancelled = e.runsFailed, e.runsCached, e.runsCancelled
	m.ParRounds, m.ParConflicts, m.ParCommits = e.parRounds, e.parConflicts, e.parCommits
	m.CampaignsSeen, m.Campaigns = e.campaignsSeen, len(e.campaigns)
	m.QueueLen, m.QueueCap = len(e.pending), e.queueCap
	m.Workers, m.Busy = e.workers, e.busy
	m.Dispatcher = e.dispatcher.Name()
	for c := ClassReplica; c <= ClassCold; c++ {
		m.Dispatch[c.String()] = e.dispatch[c]
	}
	for _, j := range e.jobs {
		m.Jobs[j.status]++
	}
	for _, c := range e.campaigns {
		for _, mem := range c.members {
			status := StatusPending
			if j, ok := e.jobs[mem.key]; ok {
				status = j.status
			}
			m.Members[status]++
		}
	}
	e.mu.Unlock()
	m.Events = e.bus.stats()
	return m
}
