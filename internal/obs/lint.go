package obs

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Lint checks text against the Prometheus exposition-format (v0.0.4)
// invariants this repo relies on and returns every violation found:
//
//   - every sample belongs to a family announced by # HELP and # TYPE
//     lines, HELP before TYPE, both before the first sample;
//   - a family's lines are contiguous and no family name repeats;
//   - metric and label names are well-formed, sample values parse;
//   - histogram families carry the full _bucket/_sum/_count triple per
//     child, bucket counts are cumulative (monotone non-decreasing in
//     le order), and the +Inf bucket equals _count.
//
// It is intentionally a validator for our own hand-rendered output, not
// a general exposition parser: it accepts exactly the subset we emit
// and flags anything surprising.
func Lint(text string) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type family struct {
		name     string
		typ      string
		hasHelp  bool
		hasType  bool
		closed   bool
		declLine int
		// histogram bookkeeping, keyed by the child's non-le label set
		buckets map[string][]histSample
		sums    map[string]float64
		counts  map[string]uint64
		hasSum  map[string]bool
		hasCnt  map[string]bool
	}
	families := map[string]*family{}
	var cur *family

	open := func(name string, line int) *family {
		if f, ok := families[name]; ok {
			if f.closed {
				fail(line, "family %s reappears after other families (non-contiguous or duplicate)", name)
			}
			return f
		}
		f := &family{
			name: name, declLine: line,
			buckets: map[string][]histSample{},
			sums:    map[string]float64{}, counts: map[string]uint64{},
			hasSum: map[string]bool{}, hasCnt: map[string]bool{},
		}
		families[name] = f
		return f
	}
	switchTo := func(f *family) {
		if cur != nil && cur != f {
			cur.closed = true
		}
		cur = f
	}

	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		line := i + 1
		if raw == "" {
			continue
		}
		if strings.HasPrefix(raw, "# HELP ") {
			rest := strings.TrimPrefix(raw, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				fail(line, "malformed HELP line")
				continue
			}
			f := open(name, line)
			if f.hasHelp {
				fail(line, "duplicate HELP for %s", name)
			}
			if f.hasType {
				fail(line, "HELP for %s after its TYPE", name)
			}
			f.hasHelp = true
			switchTo(f)
			continue
		}
		if strings.HasPrefix(raw, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(raw, "# TYPE "))
			if len(parts) != 2 {
				fail(line, "malformed TYPE line")
				continue
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(line, "unknown metric type %q for %s", typ, name)
			}
			f := open(name, line)
			if f.hasType {
				fail(line, "duplicate TYPE for %s", name)
			}
			if !f.hasHelp {
				fail(line, "TYPE for %s without preceding HELP", name)
			}
			f.hasType = true
			f.typ = typ
			switchTo(f)
			continue
		}
		if strings.HasPrefix(raw, "#") {
			continue // plain comment
		}

		name, labels, value, err := parseSample(raw)
		if err != nil {
			fail(line, "%v", err)
			continue
		}
		base := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.typ == "histogram" {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		f, ok := families[base]
		if !ok {
			fail(line, "sample %s has no HELP/TYPE declaration", name)
			continue
		}
		if !f.hasType {
			fail(line, "sample %s before its TYPE line", name)
		}
		if f.closed {
			fail(line, "sample %s outside its contiguous family block", name)
		}
		switchTo(f)

		if f.typ == "histogram" {
			child, le, hasLE := splitLE(labels)
			switch suffix {
			case "_bucket":
				if !hasLE {
					fail(line, "%s_bucket sample missing le label", base)
					continue
				}
				bound, perr := parseLE(le)
				if perr != nil {
					fail(line, "%s: %v", name, perr)
					continue
				}
				f.buckets[child] = append(f.buckets[child], histSample{bound, uint64(value), line})
			case "_sum":
				f.sums[child], f.hasSum[child] = value, true
			case "_count":
				f.counts[child], f.hasCnt[child] = uint64(value), true
			default:
				fail(line, "histogram %s has non-histogram sample %s", base, name)
			}
		}
	}

	// Histogram triple + cumulativity checks.
	for _, f := range families {
		if !f.hasHelp || !f.hasType {
			errs = append(errs, fmt.Errorf("family %s (line %d) missing %s", f.name, f.declLine,
				map[bool]string{true: "TYPE", false: "HELP"}[f.hasHelp]))
		}
		if f.typ != "histogram" {
			continue
		}
		// A declared family with zero samples is valid (a labeled vec
		// before any traffic); a family with samples needs the full
		// _bucket/_sum/_count triple per child, checked below.
		if len(f.buckets) == 0 && (len(f.hasSum) > 0 || len(f.hasCnt) > 0) {
			errs = append(errs, fmt.Errorf("histogram %s has _sum/_count but no _bucket samples", f.name))
		}
		for child, bs := range f.buckets {
			tag := f.name
			if child != "" {
				tag = fmt.Sprintf("%s{%s}", f.name, child)
			}
			var prev float64 = math.Inf(-1)
			var prevCount uint64
			var infCount uint64
			sawInf := false
			for _, b := range bs {
				if b.le <= prev {
					errs = append(errs, fmt.Errorf("line %d: %s buckets not in ascending le order", b.line, tag))
				}
				if b.count < prevCount {
					errs = append(errs, fmt.Errorf("line %d: %s bucket counts not cumulative", b.line, tag))
				}
				prev, prevCount = b.le, b.count
				if math.IsInf(b.le, +1) {
					sawInf, infCount = true, b.count
				}
			}
			if !sawInf {
				errs = append(errs, fmt.Errorf("%s missing le=\"+Inf\" bucket", tag))
			}
			if !f.hasCnt[child] {
				errs = append(errs, fmt.Errorf("%s missing _count sample", tag))
			} else if sawInf && infCount != f.counts[child] {
				errs = append(errs, fmt.Errorf("%s +Inf bucket (%d) != _count (%d)", tag, infCount, f.counts[child]))
			}
			if !f.hasSum[child] {
				errs = append(errs, fmt.Errorf("%s missing _sum sample", tag))
			}
		}
		for child := range f.hasSum {
			if _, ok := f.buckets[child]; !ok {
				errs = append(errs, fmt.Errorf("%s{%s} has _sum but no buckets", f.name, child))
			}
		}
	}
	return errs
}

type histSample struct {
	le    float64
	count uint64
	line  int
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidMetricName reports whether name is a legal exposition-format
// metric name. Exported so static analysis (lard-lint's obshygiene) can
// enforce the exact same legality rule on literals at build time that
// Lint enforces on rendered output at test time.
func ValidMetricName(name string) bool { return metricNameRE.MatchString(name) }

// ValidLabelName reports whether name is a legal label name; see
// ValidMetricName for why it is exported.
func ValidLabelName(name string) bool { return labelNameRE.MatchString(name) }

// parseSample splits `name{labels} value` into parts. labels is the raw
// text between the braces ("" when absent).
func parseSample(raw string) (name, labels string, value float64, err error) {
	rest := raw
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in sample %q", raw)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", 0, fmt.Errorf("sample %q has no value", raw)
		}
	}
	if !metricNameRE.MatchString(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	for _, pair := range splitLabelPairs(labels) {
		ln, _, ok := strings.Cut(pair, "=")
		if !ok || !labelNameRE.MatchString(ln) {
			return "", "", 0, fmt.Errorf("invalid label pair %q in %s", pair, name)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		return "", "", 0, fmt.Errorf("sample %q has malformed value", raw)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %s value %q: %v", name, fields[0], err)
	}
	return name, labels, value, nil
}

// splitLabelPairs splits a raw label body on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	var b strings.Builder
	inQuote, escaped := false, false
	for _, r := range labels {
		switch {
		case escaped:
			b.WriteRune(r)
			escaped = false
		case r == '\\' && inQuote:
			b.WriteRune(r)
			escaped = true
		case r == '"':
			b.WriteRune(r)
			inQuote = !inQuote
		case r == ',' && !inQuote:
			out = append(out, b.String())
			b.Reset()
		default:
			b.WriteRune(r)
		}
	}
	out = append(out, b.String())
	return out
}

// splitLE removes the le pair from a raw label body, returning the
// remaining pairs (sorted, so child identity is order-independent) and
// the le value.
func splitLE(labels string) (child, le string, ok bool) {
	var rest []string
	for _, pair := range splitLabelPairs(labels) {
		if v, found := strings.CutPrefix(pair, "le="); found {
			le, ok = strings.Trim(v, `"`), true
			continue
		}
		rest = append(rest, pair)
	}
	// Canonicalize child identity independent of label order.
	sortStrings(rest)
	return strings.Join(rest, ","), le, ok
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(+1), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad le value %q", s)
	}
	return f, nil
}
