package obs

import (
	"strings"
	"testing"
)

// twoSeries is the minimal def set covering both fold semantics.
var twoSeries = []SeriesDef{
	{Name: "ops", Kind: Counter},
	{Name: "level", Kind: Gauge},
}

// TestRecorderDecimationConservation is the recorder's core property: for
// ANY number of samples, the retained timeline holds at most capacity
// epochs, the spans account for every raw sample, counter sums are
// conserved exactly (decimation folds by addition), and a gauge reports
// the epoch's latest level.
func TestRecorderDecimationConservation(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 15, 16, 17, 31, 32, 33, 100, 255, 256, 257, 1000, 4097} {
		rec := NewRecorder(16)
		rec.Start(twoSeries)
		var cum, lastGauge uint64
		for i := 1; i <= n; i++ {
			cum += uint64(i%17 + 1) // deterministic, nonuniform increments
			lastGauge = uint64(i % 23)
			rec.Sample([]uint64{cum, lastGauge})
		}
		rec.Flush()
		v := rec.Snapshot()

		if !v.Finished {
			t.Fatalf("n=%d: not finished after Flush", n)
		}
		if v.Epochs < 1 || v.Epochs > 16 {
			t.Fatalf("n=%d: epochs = %d, want 1..16", n, v.Epochs)
		}
		if v.Samples != uint64(n) {
			t.Fatalf("n=%d: samples = %d", n, v.Samples)
		}
		var spanSum uint64
		for _, s := range v.Spans {
			spanSum += s
		}
		if spanSum != uint64(n) {
			t.Fatalf("n=%d: spans sum to %d, want %d (no sample may vanish)", n, spanSum, n)
		}
		ops := seriesByName(t, v, "ops")
		var opsSum uint64
		for _, x := range ops.Values {
			opsSum += x
		}
		if opsSum != cum {
			t.Fatalf("n=%d: counter sum = %d, want %d (decimation must conserve)", n, opsSum, cum)
		}
		level := seriesByName(t, v, "level")
		if got := level.Values[len(level.Values)-1]; got != lastGauge {
			t.Fatalf("n=%d: final gauge = %d, want %d", n, got, lastGauge)
		}
	}
}

// TestRecorderScaleDoubles pins the decimation arithmetic itself: filling
// a capacity-4 recorder far past its ring doubles the epoch width each
// time the ring fills (scale stays a power of two), and no span ever
// exceeds the final scale.
func TestRecorderScaleDoubles(t *testing.T) {
	rec := NewRecorder(4)
	rec.Start(twoSeries)
	for i := 1; i <= 16; i++ {
		rec.Sample([]uint64{uint64(i), 0})
	}
	rec.Flush()
	v := rec.Snapshot()
	if v.Epochs > 4 {
		t.Fatalf("epochs = %d, want <= capacity 4", v.Epochs)
	}
	if v.Scale < 4 || v.Scale&(v.Scale-1) != 0 {
		t.Fatalf("scale = %d, want a power of two >= 4 after two ring fills", v.Scale)
	}
	for i, s := range v.Spans {
		if s == 0 || s > v.Scale {
			t.Fatalf("span[%d] = %d, want 1..scale %d", i, s, v.Scale)
		}
	}
}

// TestRecorderEpochFrames pins the live side channel: each committed
// epoch invokes the callback with that epoch's deltas, and the frames sum
// to the same totals the retained timeline reports.
func TestRecorderEpochFrames(t *testing.T) {
	rec := NewRecorder(8)
	var frames []EpochFrame
	rec.OnEpoch(func(f EpochFrame) { frames = append(frames, f) })
	rec.Start(twoSeries)
	var cum uint64
	for i := 1; i <= 5; i++ {
		cum += 10
		rec.Sample([]uint64{cum, uint64(i)})
	}
	rec.Flush()
	if len(frames) != 5 {
		t.Fatalf("frames = %d, want 5 (scale 1: one per sample, plus the flushed partial)", len(frames))
	}
	var sum uint64
	for i, f := range frames {
		if f.Epoch != i {
			t.Fatalf("frame %d has epoch %d", i, f.Epoch)
		}
		sum += f.Series["ops"]
	}
	if sum != cum {
		t.Fatalf("frame ops sum = %d, want %d", sum, cum)
	}
	if got := frames[len(frames)-1].Series["level"]; got != 5 {
		t.Fatalf("final frame gauge = %d, want 5", got)
	}
}

// TestRecorderGuards pins the defensive edges: sampling before Start,
// after Flush, or with a mis-sized row is a no-op, and a nil recorder is
// inert everywhere (the telemetry-off path).
func TestRecorderGuards(t *testing.T) {
	rec := NewRecorder(4)
	rec.Sample([]uint64{1, 2}) // before Start: dropped
	rec.Start(twoSeries)
	rec.Sample([]uint64{1}) // wrong width: dropped
	rec.Sample([]uint64{5, 1})
	rec.Flush()
	rec.Sample([]uint64{9, 9}) // after Flush: dropped
	if v := rec.Snapshot(); v.Samples != 1 || v.Epochs != 1 {
		t.Fatalf("guarded recorder = %+v", v)
	}

	var nilRec *Recorder
	nilRec.Sample([]uint64{1})
	nilRec.Flush()
	nilRec.OnEpoch(func(EpochFrame) {})
	if nilRec.Epochs() != 0 || nilRec.Samples() != 0 || nilRec.Finished() {
		t.Fatal("nil recorder must be inert")
	}
}

// TestTimelineCSVEscaping pins the CSV writer's quoting: series names (and
// any future string cell) containing commas, quotes or newlines must
// round-trip through encoding/csv instead of corrupting columns. Source
// literals are linted to never look like this; the writer still must not
// rely on that.
func TestTimelineCSVEscaping(t *testing.T) {
	rec := NewRecorder(4)
	rec.Start([]SeriesDef{
		{Name: `evil,"name`, Kind: Counter},
		{Name: "plain", Kind: Counter},
	})
	rec.Sample([]uint64{3, 4})
	rec.Flush()
	var b strings.Builder
	if err := rec.Snapshot().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv = %d lines, want header + 1 epoch:\n%s", len(lines), out)
	}
	if want := `epoch,span,"evil,""name",plain`; lines[0] != want {
		t.Fatalf("header = %q, want %q", lines[0], want)
	}
	if lines[1] != "0,1,3,4" {
		t.Fatalf("row = %q", lines[1])
	}
}

// TestTimelinesRegistry pins the bounded registry: eviction prefers the
// oldest finished timeline, an Attach for a known id restarts in place,
// and a nil registry (telemetry off) is safe everywhere.
func TestTimelinesRegistry(t *testing.T) {
	reg := NewTimelines(2)
	if !reg.Enabled() {
		t.Fatal("registry should report enabled")
	}
	a := reg.Attach("a")
	a.Start(twoSeries)
	a.Sample([]uint64{1, 0})
	a.Flush() // finished: the preferred eviction victim
	b := reg.Attach("b")
	b.Start(twoSeries)
	reg.Attach("c") // over bound: evicts a (oldest finished), not b (live)
	if _, ok := reg.View("a"); ok {
		t.Fatal("finished timeline a should have been evicted")
	}
	if _, ok := reg.View("b"); !ok {
		t.Fatal("live timeline b should survive eviction")
	}
	if reg.Len() != 2 {
		t.Fatalf("len = %d, want 2", reg.Len())
	}

	// Restart keeps the slot: same id, fresh recorder, no growth.
	reg.Attach("b")
	if reg.Len() != 2 {
		t.Fatalf("restart grew the registry to %d", reg.Len())
	}
	if v, ok := reg.View("b"); !ok || v.Samples != 0 {
		t.Fatalf("restarted b = %+v, want a fresh recorder", v)
	}

	st := reg.Stats()
	if st.Attached != 4 || st.Retained != 2 {
		t.Fatalf("stats = %+v, want 4 attached / 2 retained", st)
	}

	var nilReg *Timelines
	if nilReg.Enabled() {
		t.Fatal("nil registry must report disabled")
	}
	if rec := nilReg.Attach("x"); rec != nil {
		t.Fatal("nil registry must hand out nil recorders")
	}
	if _, ok := nilReg.View("x"); ok || nilReg.Len() != 0 {
		t.Fatal("nil registry must be empty")
	}
	if st := nilReg.Stats(); st != (TimelineStats{}) {
		t.Fatalf("nil registry stats = %+v", st)
	}
}

// seriesByName fails the test when the series is absent.
func seriesByName(t *testing.T, v TimelineView, name string) SeriesView {
	t.Helper()
	for _, s := range v.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q missing from %+v", name, v.Series)
	return SeriesView{}
}
