package obs

import (
	"encoding/csv"
	"io"
	"strconv"
	"sync"
)

// This file is the epoch-resolved telemetry layer: a Recorder is a
// fixed-capacity flight recorder the simulator feeds at its existing
// checkEvery cadence, and Timelines is the bounded per-run registry the
// engine and server share (the timeline sibling of trace.go's Tracer).
//
// The core constraint is PR 8's: the simulator hot path stays
// allocation-free. The Recorder preallocates one flat []uint64 sample
// matrix at Start and never allocates in Sample; when a run outlives the
// capacity, the retained epochs are folded 2:1 in place (decimation), so
// memory stays bounded no matter how long the run is. Counter series
// fold by addition — the sum over retained epochs always equals the
// final cumulative total — and gauge series keep the later value.

// SeriesKind says how a series' per-epoch values combine.
type SeriesKind uint8

const (
	// Counter series carry per-epoch deltas of a cumulative quantity;
	// decimation folds adjacent epochs by addition, so totals conserve.
	Counter SeriesKind = iota
	// Gauge series carry an instantaneous level; decimation keeps the
	// later epoch's value.
	Gauge
)

// String renders the kind for JSON/CSV views.
func (k SeriesKind) String() string {
	if k == Gauge {
		return "gauge"
	}
	return "counter"
}

// SeriesDef declares one series a Recorder tracks. Name must be a legal
// exposition label name (ValidLabelName); lard-lint's obshygiene checks
// literal SeriesDef names at build time.
type SeriesDef struct {
	Name string
	Kind SeriesKind
}

// DefaultTimelineEpochs is the per-run epoch capacity when NewRecorder
// is given 0. At the simulator's default cadence (one sample per 4096
// ops) 128 epochs cover half a million operations before the first
// decimation.
const DefaultTimelineEpochs = 128

// EpochFrame is one committed epoch, delivered to the OnEpoch callback
// (the engine publishes it on the run's SSE topic). Epoch is the
// sequential commit index — the retained timeline may hold fewer epochs
// than were committed, because decimation folds older ones together.
type EpochFrame struct {
	Epoch int `json:"epoch"`
	// Span is the number of raw samples folded into this epoch (equal to
	// the recorder's scale at commit time, except for a final partial
	// epoch committed by Flush).
	Span   uint64            `json:"span"`
	Series map[string]uint64 `json:"series"`
}

// Recorder is a fixed-capacity epoch ring for one run. The simulator
// calls Start once (per-run setup may allocate), then Sample at every
// checkEvery boundary (never allocates), then Flush at the end. All
// methods are nil-receiver safe, so a nil *Recorder is the disabled
// recorder, the same contract as the nil *Tracer.
type Recorder struct {
	mu   sync.Mutex
	defs []SeriesDef
	cap  int

	data  []uint64 // epoch-major flat matrix: data[e*len(defs)+s]
	spans []uint64 // raw samples folded into each retained epoch
	n     int      // retained epochs
	scale uint64   // raw samples per full epoch (doubles on decimation)

	pend    []uint64 // accumulating (not yet committed) epoch
	pendN   uint64   // raw samples folded into pend
	last    []uint64 // previous cumulative values, for counter deltas
	samples uint64   // total raw samples ever taken
	commits int      // total epochs ever committed (pre-decimation count)

	finished bool
	onEpoch  func(EpochFrame)
}

// NewRecorder builds a recorder retaining at most capacity epochs
// (0 = DefaultTimelineEpochs). Call Start before Sample.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultTimelineEpochs
	}
	if capacity < 2 {
		capacity = 2 // decimation folds pairs; one slot cannot fold
	}
	return &Recorder{cap: capacity}
}

// OnEpoch installs a callback invoked (outside the recorder's lock)
// after each epoch commit. The engine uses it to stream live epoch
// frames; building the frame allocates, which is fine at epoch cadence.
func (r *Recorder) OnEpoch(fn func(EpochFrame)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onEpoch = fn
	r.mu.Unlock()
}

// Start declares the series and preallocates every buffer Sample will
// touch. Restarting (a retried run) resets all state.
func (r *Recorder) Start(defs []SeriesDef) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.defs = append([]SeriesDef(nil), defs...)
	r.data = make([]uint64, r.cap*len(defs))
	r.spans = make([]uint64, r.cap)
	r.pend = make([]uint64, len(defs))
	r.last = make([]uint64, len(defs))
	r.n, r.scale, r.pendN, r.samples, r.commits = 0, 1, 0, 0, 0
	r.finished = false
	r.mu.Unlock()
}

// Sample takes one raw sample: cum[i] is the current cumulative value of
// counter series i, or the current level of gauge series i, in Start's
// declaration order. Sample never allocates; an epoch commit (every
// scale samples) may invoke the OnEpoch callback after the lock drops.
func (r *Recorder) Sample(cum []uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.pend == nil || len(cum) != len(r.defs) || r.finished {
		r.mu.Unlock()
		return
	}
	r.samples++
	r.pendN++
	for i, d := range r.defs {
		if d.Kind == Gauge {
			r.pend[i] = cum[i]
			continue
		}
		r.pend[i] += cum[i] - r.last[i]
		r.last[i] = cum[i]
	}
	var frame EpochFrame
	emit := false
	if r.pendN >= r.scale {
		frame, emit = r.commitLocked()
	}
	fn := r.onEpoch
	r.mu.Unlock()
	if emit && fn != nil {
		fn(frame)
	}
}

// commitLocked moves pend into the matrix, decimating first when full.
// It returns the committed frame for the OnEpoch callback (built only
// when one is installed, to keep callback-free runs allocation-free at
// commit time too).
func (r *Recorder) commitLocked() (EpochFrame, bool) {
	if r.n == r.cap {
		r.decimateLocked()
	}
	row := r.data[r.n*len(r.defs) : (r.n+1)*len(r.defs)]
	copy(row, r.pend)
	r.spans[r.n] = r.pendN
	r.n++
	r.commits++
	frame := EpochFrame{Epoch: r.commits - 1, Span: r.pendN}
	if r.onEpoch != nil {
		frame.Series = make(map[string]uint64, len(r.defs))
		for i, d := range r.defs {
			frame.Series[d.Name] = r.pend[i]
		}
	}
	for i := range r.pend {
		r.pend[i] = 0
	}
	r.pendN = 0
	return frame, r.onEpoch != nil
}

// decimateLocked folds adjacent epoch pairs in place: counters add,
// gauges keep the later value, spans add. An odd tail epoch carries
// down unchanged. Afterwards each full epoch covers twice the samples.
func (r *Recorder) decimateLocked() {
	w := len(r.defs)
	half := r.n / 2
	for e := 0; e < half; e++ {
		a := r.data[(2*e)*w : (2*e+1)*w]
		b := r.data[(2*e+1)*w : (2*e+2)*w]
		dst := r.data[e*w : (e+1)*w]
		for i, d := range r.defs {
			if d.Kind == Gauge {
				dst[i] = b[i]
			} else {
				dst[i] = a[i] + b[i]
			}
		}
		r.spans[e] = r.spans[2*e] + r.spans[2*e+1]
	}
	if r.n%2 == 1 {
		copy(r.data[half*w:(half+1)*w], r.data[(r.n-1)*w:r.n*w])
		r.spans[half] = r.spans[r.n-1]
		r.n = half + 1
	} else {
		r.n = half
	}
	r.scale *= 2
}

// Flush commits any partial pending epoch and marks the timeline
// finished. After Flush the sum of every counter series over the
// retained epochs equals its final cumulative value.
func (r *Recorder) Flush() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.pend == nil || r.finished {
		r.mu.Unlock()
		return
	}
	var frame EpochFrame
	emit := false
	if r.pendN > 0 {
		frame, emit = r.commitLocked()
	}
	r.finished = true
	fn := r.onEpoch
	r.mu.Unlock()
	if emit && fn != nil {
		fn(frame)
	}
}

// Finished reports whether Flush has run.
func (r *Recorder) Finished() bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.finished
}

// Epochs returns the number of retained epochs.
func (r *Recorder) Epochs() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Samples returns the total raw samples taken.
func (r *Recorder) Samples() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// SeriesView is one series of a timeline, value per retained epoch.
type SeriesView struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Values []uint64 `json:"values"`
}

// TimelineView is the JSON shape of GET /v1/runs/{id}/timeline.
type TimelineView struct {
	Epochs   int `json:"epochs"`
	Capacity int `json:"capacity"`
	// Scale is the raw-sample width of a full epoch (1 until the first
	// decimation, then a power of two).
	Scale   uint64 `json:"scale"`
	Samples uint64 `json:"samples"`
	// Commits counts epochs ever committed; > Epochs once decimation has
	// folded the retained window.
	Commits  int          `json:"commits"`
	Finished bool         `json:"finished"`
	Spans    []uint64     `json:"spans"`
	Series   []SeriesView `json:"series"`
}

// Snapshot deep-copies the timeline for serving; safe to call while the
// run is still sampling.
func (r *Recorder) Snapshot() TimelineView {
	if r == nil {
		return TimelineView{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v := TimelineView{
		Epochs:   r.n,
		Capacity: r.cap,
		Scale:    r.scale,
		Samples:  r.samples,
		Commits:  r.commits,
		Finished: r.finished,
		Spans:    append([]uint64(nil), r.spans[:r.n]...),
	}
	w := len(r.defs)
	for i, d := range r.defs {
		vals := make([]uint64, r.n)
		for e := 0; e < r.n; e++ {
			vals[e] = r.data[e*w+i]
		}
		v.Series = append(v.Series, SeriesView{Name: d.Name, Kind: d.Kind.String(), Values: vals})
	}
	return v
}

// WriteCSV renders the timeline as CSV — one row per epoch, one column
// per series, after epoch and span columns — the single renderer behind
// both the server's ?format=csv and cmd/lard's -timeline-out. Series
// names are escaped by encoding/csv, so a hostile name cannot smuggle
// extra columns.
func (v TimelineView) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(v.Series)+2)
	header = append(header, "epoch", "span")
	for _, s := range v.Series {
		header = append(header, s.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for e := 0; e < v.Epochs; e++ {
		row[0] = strconv.Itoa(e)
		var span uint64
		if e < len(v.Spans) {
			span = v.Spans[e]
		}
		row[1] = strconv.FormatUint(span, 10)
		for i, s := range v.Series {
			var val uint64
			if e < len(s.Values) {
				val = s.Values[e]
			}
			row[i+2] = strconv.FormatUint(val, 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// DefaultMaxTimelines bounds the timeline registry when
// Options.MaxTimelines is 0. Timelines are heavier than traces (a full
// sample matrix each), so the default budget is smaller than
// DefaultMaxTraces.
const DefaultMaxTimelines = 256

// Timelines is the bounded per-run recorder registry, the timeline
// sibling of the Tracer: when full, the oldest finished timeline is
// evicted first, then the oldest outright. A nil *Timelines is the
// disabled registry; every method is nil-receiver safe.
type Timelines struct {
	mu       sync.Mutex
	recs     map[string]*Recorder
	order    []string // insertion order, for eviction
	max      int
	attached uint64 // cumulative Attach count, for lard_timeline_runs_total
}

// NewTimelines builds an enabled registry holding at most max timelines
// (0 = DefaultMaxTimelines).
func NewTimelines(max int) *Timelines {
	if max <= 0 {
		max = DefaultMaxTimelines
	}
	return &Timelines{recs: make(map[string]*Recorder), max: max}
}

// Enabled reports whether the registry records anything.
func (t *Timelines) Enabled() bool { return t != nil }

// Attach creates (or restarts) the recorder for the given run id and
// returns it. Restarting — a retried job — replaces the old timeline
// but keeps the registry slot's age, the same policy as StartTrace.
func (t *Timelines) Attach(id string) *Recorder {
	if t == nil {
		return nil
	}
	rec := NewRecorder(0)
	t.mu.Lock()
	t.attached++
	if _, exists := t.recs[id]; exists {
		t.recs[id] = rec
		t.mu.Unlock()
		return rec
	}
	if len(t.order) >= t.max {
		t.evictLocked()
	}
	t.recs[id] = rec
	t.order = append(t.order, id)
	t.mu.Unlock()
	return rec
}

// evictLocked drops one timeline: the oldest finished one if any, else
// the oldest outright.
func (t *Timelines) evictLocked() {
	for i, id := range t.order {
		if rec, ok := t.recs[id]; ok && rec.Finished() {
			delete(t.recs, id)
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
	if len(t.order) > 0 {
		delete(t.recs, t.order[0])
		t.order = t.order[1:]
	}
}

// Len returns the number of timelines currently held.
func (t *Timelines) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.recs)
}

// View returns the timeline for the given run id as a serializable
// snapshot, or ok=false when unknown (or the registry is disabled).
func (t *Timelines) View(id string) (TimelineView, bool) {
	if t == nil {
		return TimelineView{}, false
	}
	t.mu.Lock()
	rec, ok := t.recs[id]
	t.mu.Unlock()
	if !ok {
		return TimelineView{}, false
	}
	return rec.Snapshot(), true
}

// TimelineStats summarizes the registry for /metrics.
type TimelineStats struct {
	// Attached counts Attach calls ever (a counter).
	Attached uint64
	// Retained is the number of timelines currently held (a gauge).
	Retained int
	// Epochs sums retained epochs across held timelines (a gauge).
	Epochs int
	// Samples sums raw samples across held timelines (a gauge).
	Samples uint64
}

// Stats snapshots the registry counters.
func (t *Timelines) Stats() TimelineStats {
	if t == nil {
		return TimelineStats{}
	}
	t.mu.Lock()
	recs := make([]*Recorder, 0, len(t.recs))
	for _, r := range t.recs {
		recs = append(recs, r)
	}
	st := TimelineStats{Attached: t.attached, Retained: len(recs)}
	t.mu.Unlock()
	for _, r := range recs {
		st.Epochs += r.Epochs()
		st.Samples += r.Samples()
	}
	return st
}
