package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DurationBuckets are the default latency bounds, in seconds: half a
// millisecond up to a minute, covering everything from a cached-result
// HTTP hit to a full-scale simulation run.
var DurationBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// FastBuckets are bounds for sub-millisecond operations (dispatch
// decisions, in-memory store ops): one microsecond up to a second.
var FastBuckets = []float64{
	1e-6, 5e-6, 2.5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 2.5e-2, 0.1, 0.5, 1,
}

// Histogram is one fixed-bucket latency distribution: cumulative bucket
// counts plus sum and count, rendered in the Prometheus exposition
// histogram convention (_bucket{le=...}, _sum, _count). Safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implied
	counts []uint64  // per-bucket (non-cumulative) counts, len(bounds)+1
	sum    float64
	total  uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v; the slice is tiny so this
	// is a handful of comparisons.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts, sum and total under one lock.
func (h *Histogram) snapshot() (cum []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.total
}

// HistogramVec is a family of Histograms sharing a name, help text,
// bucket layout and label names; each distinct label-value tuple gets its
// own child. A vec with no label names has exactly one child (created
// eagerly, so the family renders on /metrics before any traffic).
type HistogramVec struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu       sync.Mutex
	children map[string]*histChild
	order    []string // insertion-ordered keys for stable rendering
}

type histChild struct {
	labelValues []string
	hist        *Histogram
}

// NewHistogramVec builds a histogram family. bounds must be ascending;
// +Inf is implied and must not be included.
func NewHistogramVec(name, help string, labels []string, bounds []float64) *HistogramVec {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not strictly ascending", name))
		}
	}
	if len(bounds) > 0 && math.IsInf(bounds[len(bounds)-1], +1) {
		panic(fmt.Sprintf("obs: histogram %s must not include +Inf bound", name))
	}
	v := &HistogramVec{
		name:     name,
		help:     help,
		labels:   labels,
		bounds:   bounds,
		children: make(map[string]*histChild),
	}
	if len(labels) == 0 {
		v.With() // eager single child: family renders even before traffic
	}
	return v
}

// With returns the child histogram for the given label values (one per
// label name, in order), creating it on first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram %s expects %d label values, got %d",
			v.name, len(v.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &histChild{
			labelValues: append([]string(nil), labelValues...),
			hist:        newHistogram(v.bounds),
		}
		v.children[key] = c
		v.order = append(v.order, key)
	}
	return c.hist
}

// Observe records v on the child for the given label values.
func (v *HistogramVec) Observe(val float64, labelValues ...string) {
	v.With(labelValues...).Observe(val)
}

// ObserveDuration records d (in seconds) on the child for the labels.
func (v *HistogramVec) ObserveDuration(d time.Duration, labelValues ...string) {
	v.With(labelValues...).Observe(d.Seconds())
}

// formatFloat renders a float the exposition way: shortest representation
// that round-trips, +Inf spelled "+Inf".
func formatFloat(f float64) string {
	if math.IsInf(f, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// labelPairs renders `name="value",...` for the given names and values,
// escaping per the exposition format.
func labelPairs(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// Write renders the family in exposition text format: one HELP and TYPE
// line, then for each child its cumulative _bucket series (le last, +Inf
// included), _sum and _count.
func (v *HistogramVec) Write(w io.Writer) {
	v.mu.Lock()
	keys := append([]string(nil), v.order...)
	children := make([]*histChild, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	for _, c := range children {
		prefix := labelPairs(v.labels, c.labelValues)
		cum, sum, total := c.hist.snapshot()
		for i, bound := range v.bounds {
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", v.name, joinLabels(prefix, `le="`+formatFloat(bound)+`"`), cum[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", v.name, joinLabels(prefix, `le="+Inf"`), total)
		if prefix == "" {
			fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", v.name, formatFloat(sum), v.name, total)
		} else {
			fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", v.name, prefix, formatFloat(sum), v.name, prefix, total)
		}
	}
}

func joinLabels(prefix, le string) string {
	if prefix == "" {
		return le
	}
	return prefix + "," + le
}
