package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records one span tree per trace id (in practice: per run, keyed
// by the run's content address). The registry is bounded — when it is
// full, the oldest finished trace is evicted first, then the oldest
// trace outright — so a long-lived server cannot grow without limit.
//
// A nil *Tracer is the disabled tracer: every method (and every method
// of the nil *Span it returns) is a no-op, so call sites never branch on
// "is tracing on".
type Tracer struct {
	mu     sync.Mutex
	traces map[string]*traceRec
	order  []string // insertion order, for eviction
	max    int

	idPrefix string
	idSeq    atomic.Uint64
}

type traceRec struct {
	id      string
	root    *Span
	started time.Time
}

// DefaultMaxTraces bounds the trace registry when Options.MaxTraces is 0.
const DefaultMaxTraces = 4096

// NewTracer builds an enabled tracer holding at most maxTraces traces
// (0 = DefaultMaxTraces).
func NewTracer(maxTraces int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	var b [6]byte
	rand.Read(b[:])
	return &Tracer{
		traces:   make(map[string]*traceRec),
		max:      maxTraces,
		idPrefix: hex.EncodeToString(b[:]),
	}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// nextSpanID mints a process-unique span id: a per-process random prefix
// plus an atomic counter.
func (t *Tracer) nextSpanID() string {
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], t.idSeq.Add(1))
	return t.idPrefix + hex.EncodeToString(seq[2:])
}

// Span is one timed operation in a trace. Spans form a tree under the
// trace's root; children are added with Child and a span is closed with
// End. All methods are nil-receiver safe.
type Span struct {
	tracer *Tracer

	mu       sync.Mutex
	id       string
	trace    string
	name     string
	start    time.Time
	end      time.Time // zero while open
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// StartTrace begins (or restarts) the trace with the given id and
// returns its root span. Restarting an id — a retried job — discards the
// previous tree, so the trace always describes the attempt that
// produced the stored result.
func (t *Tracer) StartTrace(id, rootName string) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	root := &Span{
		tracer: t,
		id:     t.nextSpanID(),
		trace:  id,
		name:   rootName,
		start:  now,
	}
	t.mu.Lock()
	if _, exists := t.traces[id]; exists {
		// Restart: drop the old tree but keep the registry slot's age.
		t.traces[id] = &traceRec{id: id, root: root, started: now}
		t.mu.Unlock()
		return root
	}
	if len(t.order) >= t.max {
		t.evictLocked()
	}
	t.traces[id] = &traceRec{id: id, root: root, started: now}
	t.order = append(t.order, id)
	t.mu.Unlock()
	return root
}

// evictLocked drops one trace: the oldest finished one if any, else the
// oldest outright.
func (t *Tracer) evictLocked() {
	for i, id := range t.order {
		if rec, ok := t.traces[id]; ok && rec.root.finished() {
			delete(t.traces, id)
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
	if len(t.order) > 0 {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
}

// Len returns the number of traces currently held.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Child starts a child span under s. Returns nil (a valid no-op span)
// when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		id:     s.tracer.nextSpanID(),
		trace:  s.trace,
		name:   name,
		start:  time.Now(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// ChildAt starts a child span with an explicit start time and duration —
// used to graft the simulator's own phase breakdown, measured inside
// sim.Run, into the tree after the fact.
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{
		tracer: s.tracer,
		id:     s.tracer.nextSpanID(),
		trace:  s.trace,
		name:   name,
		start:  start,
		end:    start.Add(d),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span (idempotent). Ending a span also closes any child
// still open at the same instant, so a failed or cancelled run never
// leaves a dangling open span in a finished trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.endAt(now)
}

func (s *Span) endAt(now time.Time) {
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		c.endAt(now)
	}
}

// ID returns the span's id ("" for the nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// finished reports whether the span has ended.
func (s *Span) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// SpanView is the JSON shape of one span in a trace tree.
type SpanView struct {
	ID         string     `json:"id"`
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	End        *time.Time `json:"end,omitempty"`
	DurationMS float64    `json:"duration_ms"`
	Attrs      []Attr     `json:"attrs,omitempty"`
	Children   []SpanView `json:"children,omitempty"`
}

// TraceView is the JSON shape of GET /v1/runs/{id}/trace.
type TraceView struct {
	Trace    string   `json:"trace"`
	Finished bool     `json:"finished"`
	Root     SpanView `json:"root"`
}

// Tree returns the trace with the given id as a serializable view, or
// ok=false when unknown (or the tracer is disabled).
func (t *Tracer) Tree(id string) (TraceView, bool) {
	if t == nil {
		return TraceView{}, false
	}
	t.mu.Lock()
	rec, ok := t.traces[id]
	t.mu.Unlock()
	if !ok {
		return TraceView{}, false
	}
	return TraceView{
		Trace:    id,
		Finished: rec.root.finished(),
		Root:     rec.root.view(),
	}, true
}

// view snapshots the span subtree.
func (s *Span) view() SpanView {
	s.mu.Lock()
	v := SpanView{
		ID:    s.id,
		Name:  s.name,
		Start: s.start,
		Attrs: append([]Attr(nil), s.attrs...),
	}
	if !s.end.IsZero() {
		end := s.end
		v.End = &end
		v.DurationMS = end.Sub(s.start).Seconds() * 1e3
	} else {
		v.DurationMS = time.Since(s.start).Seconds() * 1e3
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		v.Children = append(v.Children, c.view())
	}
	sort.SliceStable(v.Children, func(i, j int) bool {
		return v.Children[i].Start.Before(v.Children[j].Start)
	})
	return v
}
