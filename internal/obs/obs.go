// Package obs is the service's dependency-free observability layer: run
// tracing, fixed-bucket latency histograms in the Prometheus text
// exposition format, structured logging helpers over log/slog, and the
// build-info/runtime gauges every serving process should expose.
//
// The package deliberately depends on nothing outside the standard
// library, so every tier — the simulator facade, the execution engine, the
// storage stack, the HTTP edge — can be instrumented without dragging a
// metrics SDK into the module. Rendering is hand-written exposition text
// (version 0.0.4), the same discipline as the server's existing /metrics
// families, and Lint (lint.go) is the conformance checker that keeps it
// honest.
//
// The three concerns compose through Observer, one bundle the engine and
// server share:
//
//   - Tracer (trace.go): a span tree per run — admitted, dispatched,
//     queued, simulating (with the simulator's own phase breakdown),
//     stored — kept in a bounded registry and served by
//     GET /v1/runs/{id}/trace. A nil Tracer disables tracing at zero
//     cost: every Tracer and Span method is nil-receiver safe.
//   - Histograms (histogram.go): fixed-bucket latency distributions for
//     run duration, queue wait, dispatch, store operations and HTTP
//     requests.
//   - Logging: NewLogger builds the slog.Logger all layers share, with
//     run/campaign/span correlation ids carried as attributes.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"runtime/debug"
	"time"
)

// Observer bundles one process's observability state: the (optional)
// tracer, the latency histograms every tier feeds, and the logger.
// Construct with New; Nop returns a silent instance for tests.
type Observer struct {
	// Tracer records per-run span trees; nil disables tracing (every
	// call site stays valid — Tracer methods are nil-receiver safe).
	Tracer *Tracer
	// Timelines records per-run epoch telemetry; nil disables it with
	// the same nil-receiver contract as Tracer.
	Timelines *Timelines
	// Log is the process logger; never nil.
	Log *slog.Logger

	// RunDuration observes admitted->terminal job latency.
	RunDuration *HistogramVec
	// QueueWait observes admitted->worker-pickup latency.
	QueueWait *HistogramVec
	// Dispatch observes the dispatcher's placement decision latency,
	// labeled by placement class.
	Dispatch *HistogramVec
	// StoreOp observes result-store operation latency, labeled by
	// operation (get, put, delete, index) and backend kind.
	StoreOp *HistogramVec
	// HTTP observes request latency at the API edge, labeled by route
	// pattern and status code.
	HTTP *HistogramVec

	start time.Time
}

// Options configure New.
type Options struct {
	// Tracing enables the span tracer.
	Tracing bool
	// MaxTraces bounds the tracer's trace registry (default 4096).
	MaxTraces int
	// Telemetry enables the per-run epoch timeline registry.
	Telemetry bool
	// MaxTimelines bounds the timeline registry (default 256).
	MaxTimelines int
	// Log is the process logger (default: a discard logger — commands
	// pass NewLogger to log for real, tests stay silent).
	Log *slog.Logger
}

// New builds an Observer. The histogram families exist (and render on
// /metrics) from the start, observations or not.
func New(o Options) *Observer {
	log := o.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	obs := &Observer{
		Log:   log,
		start: time.Now(),
		RunDuration: NewHistogramVec("lard_run_duration_seconds",
			"Job latency from queue admission to terminal state (done, failed or cancelled).",
			nil, DurationBuckets),
		QueueWait: NewHistogramVec("lard_queue_wait_seconds",
			"Job latency from queue admission to worker pickup.",
			nil, DurationBuckets),
		Dispatch: NewHistogramVec("lard_dispatch_seconds",
			"Dispatcher placement-decision latency by placement class.",
			[]string{"class"}, FastBuckets),
		StoreOp: NewHistogramVec("lard_store_op_seconds",
			"Result-store operation latency by operation and backend kind.",
			[]string{"op", "backend"}, FastBuckets),
		HTTP: NewHistogramVec("lard_http_request_seconds",
			"HTTP request latency by route pattern and status code.",
			[]string{"route", "code"}, DurationBuckets),
	}
	if o.Tracing {
		obs.Tracer = NewTracer(o.MaxTraces)
	}
	if o.Telemetry {
		obs.Timelines = NewTimelines(o.MaxTimelines)
	}
	return obs
}

// Nop returns an Observer with tracing disabled and a discard logger —
// the default for engines and servers whose caller wired nothing.
func Nop() *Observer { return New(Options{}) }

// Uptime reports how long this Observer (in practice: the process) has
// been alive.
func (o *Observer) Uptime() time.Duration { return time.Since(o.start) }

// StartedAt reports when the Observer was created.
func (o *Observer) StartedAt() time.Time { return o.start }

// WriteHistograms renders every histogram family in exposition format.
func (o *Observer) WriteHistograms(w io.Writer) {
	o.RunDuration.Write(w)
	o.QueueWait.Write(w)
	o.Dispatch.Write(w)
	o.StoreOp.Write(w)
	o.HTTP.Write(w)
}

// NewLogger builds the structured logger the commands install: text
// handler on w at the given level, with every record carrying the
// component attribute. Layers add run/campaign/span correlation ids per
// call site (slog.String("run", id) and friends).
func NewLogger(w io.Writer, level slog.Level, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With(slog.String("component", component))
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (use debug, info, warn or error)", s)
}

// buildVersion resolves the binary's version: the module version when
// stamped, else the VCS revision, else "dev".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "dev"
}

// WriteRuntimeMetrics renders the process-level families: lard_build_info
// (version and Go runtime labels), goroutine and heap gauges, cumulative
// GC pause time, and process uptime.
func (o *Observer) WriteRuntimeMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP lard_build_info Build metadata; the value is always 1.\n# TYPE lard_build_info gauge\n")
	fmt.Fprintf(w, "lard_build_info{version=%q,go_version=%q} 1\n", buildVersion(), runtime.Version())
	fmt.Fprintf(w, "# HELP lard_goroutines Live goroutines in the process.\n# TYPE lard_goroutines gauge\nlard_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP lard_heap_bytes Bytes of allocated heap objects.\n# TYPE lard_heap_bytes gauge\nlard_heap_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP lard_gc_pause_seconds_total Cumulative stop-the-world GC pause time.\n# TYPE lard_gc_pause_seconds_total counter\nlard_gc_pause_seconds_total %s\n",
		formatFloat(float64(ms.PauseTotalNs)/1e9))
	fmt.Fprintf(w, "# HELP lard_gc_cycles_total Completed GC cycles.\n# TYPE lard_gc_cycles_total counter\nlard_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP lard_uptime_seconds Seconds since the process started serving.\n# TYPE lard_uptime_seconds gauge\nlard_uptime_seconds %s\n",
		formatFloat(o.Uptime().Seconds()))
}
