package obs

import (
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestHistogramObserve(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	cum, sum, total := h.snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	// le semantics: an observation equal to a bound lands in that bucket.
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if want := 0.005 + 0.01 + 0.05 + 0.5 + 5; sum < want-1e-9 || sum > want+1e-9 {
		t.Errorf("sum = %v, want %v", sum, want)
	}
}

func TestHistogramVecRendersWithoutTraffic(t *testing.T) {
	o := Nop()
	var b strings.Builder
	o.WriteHistograms(&b)
	text := b.String()
	for _, fam := range []string{
		"lard_run_duration_seconds", "lard_queue_wait_seconds",
		"lard_dispatch_seconds", "lard_store_op_seconds",
		"lard_http_request_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" histogram") {
			t.Errorf("zero-traffic exposition missing family %s", fam)
		}
	}
	// Unlabeled families must render their (empty) child eagerly.
	if !strings.Contains(text, "lard_run_duration_seconds_count 0") {
		t.Error("unlabeled family did not render an eager empty child")
	}
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("zero-traffic exposition fails lint: %v", errs)
	}
}

func TestHistogramVecLabels(t *testing.T) {
	v := NewHistogramVec("x_seconds", "help.", []string{"op", "backend"}, []float64{1})
	v.ObserveDuration(500*time.Millisecond, "get", "memory")
	v.ObserveDuration(2*time.Second, "get", "memory")
	v.Observe(0.1, "put", "disk")
	var b strings.Builder
	v.Write(&b)
	text := b.String()
	for _, want := range []string{
		`x_seconds_bucket{op="get",backend="memory",le="1"} 1`,
		`x_seconds_bucket{op="get",backend="memory",le="+Inf"} 2`,
		`x_seconds_count{op="get",backend="memory"} 2`,
		`x_seconds_bucket{op="put",backend="disk",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("labeled exposition fails lint: %v", errs)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"no declaration", "orphan_total 1\n", "no HELP/TYPE"},
		{"type before help",
			"# TYPE a gauge\n# HELP a h\na 1\n", "without preceding HELP"},
		{"duplicate family",
			"# HELP a h\n# TYPE a gauge\na 1\n# HELP b h\n# TYPE b gauge\nb 1\n# HELP a h\n# TYPE a gauge\n",
			"reappears"},
		{"non-cumulative buckets",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative"},
		{"inf mismatch",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
			"!= _count"},
		{"missing sum",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_count 0\n",
			"missing _sum"},
		{"missing inf",
			"# HELP h h\n# TYPE h histogram\nh_bucket{le=\"1\"} 0\nh_sum 0\nh_count 0\n",
			`missing le="+Inf"`},
		{"bad value", "# HELP a h\n# TYPE a gauge\na xyz\n", "value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := Lint(tc.text)
			if len(errs) == 0 {
				t.Fatalf("Lint accepted invalid exposition:\n%s", tc.text)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("Lint errors %v do not mention %q", errs, tc.want)
			}
		})
	}
}

func TestLintAcceptsCleanExposition(t *testing.T) {
	clean := `# HELP lard_up whether up
# TYPE lard_up gauge
lard_up 1
# HELP lard_reqs_total requests
# TYPE lard_reqs_total counter
lard_reqs_total{code="200"} 10
lard_reqs_total{code="500"} 1
`
	if errs := Lint(clean); len(errs) > 0 {
		t.Fatalf("Lint rejected clean exposition: %v", errs)
	}
}

func TestTracerTreeLifecycle(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartTrace("run-1", "run")
	root.SetAttr("benchmark", "BARNES")
	adm := root.Child("admitted")
	adm.Child("dispatched").End()
	adm.End()
	simSpan := root.Child("simulating")
	base := time.Now()
	simSpan.ChildAt("coherence_loop", base, 50*time.Millisecond)
	simSpan.End()
	root.End()

	v, ok := tr.Tree("run-1")
	if !ok {
		t.Fatal("trace not found")
	}
	if !v.Finished {
		t.Error("trace should be finished")
	}
	if v.Root.Name != "run" || len(v.Root.Children) != 2 {
		t.Fatalf("unexpected tree shape: %+v", v.Root)
	}
	if v.Root.Attrs[0].Key != "benchmark" || v.Root.Attrs[0].Value != "BARNES" {
		t.Errorf("root attrs = %+v", v.Root.Attrs)
	}
	var sim *SpanView
	for i := range v.Root.Children {
		if v.Root.Children[i].Name == "simulating" {
			sim = &v.Root.Children[i]
		}
	}
	if sim == nil || len(sim.Children) != 1 || sim.Children[0].Name != "coherence_loop" {
		t.Fatalf("simulating subtree wrong: %+v", sim)
	}
	if d := sim.Children[0].DurationMS; d < 49.9 || d > 50.1 {
		t.Errorf("grafted child duration = %vms, want 50ms", d)
	}
}

func TestTracerRootEndClosesOpenChildren(t *testing.T) {
	tr := NewTracer(0)
	root := tr.StartTrace("run-x", "run")
	root.Child("queued") // never explicitly ended
	root.End()
	v, _ := tr.Tree("run-x")
	if !v.Finished {
		t.Fatal("root not finished")
	}
	if v.Root.Children[0].End == nil {
		t.Error("open child not closed by root End")
	}
}

func TestTracerRestartReplacesTree(t *testing.T) {
	tr := NewTracer(0)
	first := tr.StartTrace("run-r", "run")
	first.Child("admitted")
	first.End()
	second := tr.StartTrace("run-r", "run")
	second.End()
	v, _ := tr.Tree("run-r")
	if len(v.Root.Children) != 0 {
		t.Errorf("restarted trace kept old children: %+v", v.Root.Children)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2)
	a := tr.StartTrace("a", "run")
	a.End()
	tr.StartTrace("b", "run") // still open
	tr.StartTrace("c", "run") // evicts a (oldest finished)
	if _, ok := tr.Tree("a"); ok {
		t.Error("finished trace a not evicted")
	}
	if _, ok := tr.Tree("b"); !ok {
		t.Error("open trace b evicted before finished one")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d, want 2", tr.Len())
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	s := tr.StartTrace("x", "run")
	if s != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// All of these must be safe no-ops on the nil span.
	c := s.Child("y")
	c.SetAttr("k", "v")
	c.ChildAt("z", time.Now(), time.Second)
	c.End()
	s.End()
	if s.ID() != "" {
		t.Error("nil span has an id")
	}
	if _, ok := tr.Tree("x"); ok {
		t.Error("nil tracer returned a tree")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer Len != 0")
	}
}

// TestConcurrentSpansRace exercises concurrent span start/finish/read —
// the pattern the engine produces when workers finish jobs while SSE
// readers snapshot traces. Run with -race.
func TestConcurrentSpansRace(t *testing.T) {
	tr := NewTracer(64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				id := string(rune('a'+g)) + "-trace"
				root := tr.StartTrace(id, "run")
				c := root.Child("phase")
				c.SetAttr("i", "x")
				c.End()
				root.End()
				tr.Tree(id)
			}
		}(g)
	}
	// Concurrent readers over all traces.
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 400; i++ {
				for r := 0; r < 8; r++ {
					tr.Tree(string(rune('a'+r)) + "-trace")
				}
				tr.Len()
			}
		}()
	}
	for i := 0; i < 12; i++ {
		<-done
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"": slog.LevelInfo, "warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
}

func TestRuntimeMetricsLint(t *testing.T) {
	o := Nop()
	var b strings.Builder
	o.WriteRuntimeMetrics(&b)
	text := b.String()
	for _, fam := range []string{"lard_build_info", "lard_goroutines",
		"lard_heap_bytes", "lard_gc_pause_seconds_total", "lard_uptime_seconds"} {
		if !strings.Contains(text, "# TYPE "+fam) {
			t.Errorf("runtime metrics missing %s", fam)
		}
	}
	if errs := Lint(text); len(errs) > 0 {
		t.Fatalf("runtime metrics fail lint: %v", errs)
	}
	if o.Uptime() <= 0 {
		t.Error("Uptime not positive")
	}
}
