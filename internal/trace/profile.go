package trace

import (
	"fmt"

	"lard/internal/config"
)

// Profile parameterizes one synthetic benchmark. Working-set sizes are given
// in cache lines for the Table-1 machine (L1-I 256 lines, L1-D 512 lines,
// LLC slice 4096 lines, 64 cores / 256K lines aggregate LLC) and are scaled
// with the cache sizes of the actual configuration at generation time.
type Profile struct {
	// Name is the benchmark name as it appears in the paper's figures.
	Name string
	// Ops is the nominal per-core number of memory references.
	Ops int
	// Gap is the mean compute-cycle gap between references.
	Gap int
	// Barriers is the number of global synchronization points.
	Barriers int

	// FracInstr, FracSharedRO, FracSharedRW are the access-mix fractions of
	// the LLC-relevant traffic; private data receives the remainder.
	FracInstr, FracSharedRO, FracSharedRW float64
	// FracHot is the fraction of ALL references that go to a small per-core
	// L1-resident hot set (stack/register-spill traffic): it models the L1
	// hit rate of the real program and scales the other fractions down.
	FracHot float64

	// InstrLines is the shared instruction working set.
	InstrLines int
	// PrivLines is the per-core private working set; sizes far above the
	// aggregate LLC share model streaming benchmarks.
	PrivLines int
	// PrivWriteFrac is the store fraction of private references.
	PrivWriteFrac float64
	// FalseShare places private lines into cross-core shared pages
	// (page-level false sharing, the BLACKSCHOLES pathology of §4.1).
	FalseShare bool
	// ROLines is the shared read-only working set.
	ROLines int
	// RWLines is the shared read-write working set.
	RWLines int
	// RWWriteFrac is the fraction of shared read-write references that are
	// randomly-placed stores (models unstructured write sharing with LLC
	// run-lengths of about 1/((cores-1)·frac) core-passes).
	RWWriteFrac float64
	// RWOwnerPeriod, when positive, adds phase-structured writes: each
	// line's owning core rewrites it every RWOwnerPeriod passes, so other
	// cores observe an LLC run-length of about RWOwnerPeriod regardless of
	// the core count (the read-mostly sharing of BARNES/BODYTRACK/FACESIM).
	RWOwnerPeriod int
	// Migratory switches the shared read-write region to the exclusive
	// block hand-off pattern of LU-NC; MigSweeps is the per-ownership sweep
	// count (= the LLC run-length of migratory lines).
	Migratory bool
	// MigSweeps is the number of sweeps an owner makes over its block.
	MigSweeps int
}

// scaled returns a copy of p with working sets scaled to cfg's cache sizes:
// per-core and per-slice-replicated sets (instructions, private data, shared
// read-only/read-write replication candidates) scale with the slice size,
// while the migratory region — whose footprint is bounded by the aggregate
// LLC, not by any one slice — scales with the total LLC capacity so its
// per-owner block stays at the same multiple of the L1.
func (p Profile) scaled(cfg *config.Config) Profile {
	slice := float64(cfg.LLCSliceLines) / 4096.0
	total := float64(cfg.LLCSliceLines*cfg.Cores) / (4096.0 * 64)
	sc := func(n int, f float64) int {
		if n == 0 {
			return 0
		}
		v := int(float64(n) * f)
		if v < 8 {
			v = 8
		}
		return v
	}
	p.InstrLines = sc(p.InstrLines, slice)
	p.PrivLines = sc(p.PrivLines, slice)
	p.ROLines = sc(p.ROLines, slice)
	if p.Migratory {
		p.RWLines = sc(p.RWLines, total)
	} else {
		p.RWLines = sc(p.RWLines, slice)
	}
	return p
}

// Profiles lists the 21 benchmarks of Table 2 in the order of Figure 6. The
// comments record the paper behaviour each parameterization encodes; see
// §4.1 of the paper and EXPERIMENTS.md for the correspondence.
var Profiles = []Profile{
	// RADIX: streaming thread-private sort buckets plus low-reuse shared
	// key exchange; no replication benefit, R-NUCA's private placement wins.
	{Name: "RADIX", Ops: 60000, Gap: 8, Barriers: 4, FracHot: 0.5,
		FracInstr: 0.02, FracSharedRO: 0.03, FracSharedRW: 0.10,
		InstrLines: 64, PrivLines: 32768, PrivWriteFrac: 0.40,
		ROLines: 512, RWLines: 4096, RWWriteFrac: 0.30},

	// FFT: streaming private butterflies plus an all-to-all transpose with
	// run-length 1-2 shared data.
	{Name: "FFT", Ops: 60000, Gap: 8, Barriers: 6, FracHot: 0.5,
		FracInstr: 0.03, FracSharedRO: 0.05, FracSharedRW: 0.15,
		InstrLines: 96, PrivLines: 16384, PrivWriteFrac: 0.35,
		ROLines: 512, RWLines: 8192, RWWriteFrac: 0.25},

	// LU-C: blocked dense LU with contiguous blocks; reused thread-private
	// blocks that R-NUCA places locally. No replication opportunity.
	{Name: "LU-C", Ops: 60000, Gap: 12, Barriers: 8, FracHot: 0.7,
		FracInstr: 0.03, FracSharedRO: 0.07, FracSharedRW: 0.05,
		InstrLines: 96, PrivLines: 2048, PrivWriteFrac: 0.30,
		ROLines: 1024, RWLines: 2048, RWWriteFrac: 0.02},

	// LU-NC: non-contiguous LU exhibits migratory shared blocks handed from
	// core to core; replication needs E/M-state replicas (§2.3.1/§4.1).
	{Name: "LU-NC", Ops: 120000, Gap: 10, Barriers: 8, FracHot: 0.55,
		FracInstr: 0.03, FracSharedRO: 0.02, FracSharedRW: 0.72,
		InstrLines: 96, PrivLines: 1024, PrivWriteFrac: 0.30,
		ROLines: 256, RWLines: 65536, RWWriteFrac: 0,
		Migratory: true, MigSweeps: 6},

	// CHOLESKY: irregular supernodal factorization; moderate instruction
	// and shared read-only reuse plus some migratory-ish updates.
	{Name: "CHOLESKY", Ops: 60000, Gap: 10, Barriers: 4, FracHot: 0.62,
		FracInstr: 0.10, FracSharedRO: 0.20, FracSharedRW: 0.15,
		InstrLines: 512, PrivLines: 2048, PrivWriteFrac: 0.30,
		ROLines: 2048, RWLines: 2048, RWOwnerPeriod: 6},

	// BARNES: octree with >90% of LLC accesses to shared read-write data at
	// run-length >= 10 (Figure 1); the flagship replication win that only
	// locality-aware replication (and partially VR) captures.
	{Name: "BARNES", Ops: 60000, Gap: 10, Barriers: 4, FracHot: 0.55,
		FracInstr: 0.03, FracSharedRO: 0.05, FracSharedRW: 0.80,
		InstrLines: 96, PrivLines: 512, PrivWriteFrac: 0.20,
		ROLines: 512, RWLines: 2048, RWOwnerPeriod: 12},

	// OCEAN-C: grids far exceeding the LLC; streaming with run-length 1-2,
	// significant off-chip time; replication only pollutes.
	{Name: "OCEAN-C", Ops: 60000, Gap: 6, Barriers: 8, FracHot: 0.45,
		FracInstr: 0.02, FracSharedRO: 0.02, FracSharedRW: 0.16,
		InstrLines: 64, PrivLines: 65536, PrivWriteFrac: 0.40,
		ROLines: 256, RWLines: 16384, RWWriteFrac: 0.20},

	// OCEAN-NC: smaller grids with boundary sharing; balancing on-chip
	// locality against off-chip misses matters, RT-3 shines (§4.1).
	{Name: "OCEAN-NC", Ops: 60000, Gap: 6, Barriers: 8, FracHot: 0.45,
		FracInstr: 0.02, FracSharedRO: 0.02, FracSharedRW: 0.36,
		InstrLines: 64, PrivLines: 24576, PrivWriteFrac: 0.40,
		ROLines: 256, RWLines: 8192, RWOwnerPeriod: 4},

	// WATER-NSQ: O(n^2) molecular dynamics; reused shared read-only
	// positions plus lightly-written accumulations.
	{Name: "WATER-NSQ", Ops: 60000, Gap: 12, Barriers: 4, FracHot: 0.65,
		FracInstr: 0.05, FracSharedRO: 0.45, FracSharedRW: 0.15,
		InstrLines: 160, PrivLines: 1024, PrivWriteFrac: 0.30,
		ROLines: 2048, RWLines: 1024, RWOwnerPeriod: 8},

	// RAYTRACE: large read-only scene with low per-line sharing degree and
	// a significant instruction footprint (one of three high L1-I MPKI
	// benchmarks).
	{Name: "RAYTRACE", Ops: 60000, Gap: 10, Barriers: 2, FracHot: 0.6,
		FracInstr: 0.25, FracSharedRO: 0.45, FracSharedRW: 0.05,
		InstrLines: 1024, PrivLines: 1024, PrivWriteFrac: 0.25,
		ROLines: 8192, RWLines: 512, RWWriteFrac: 0.01},

	// VOLREND: ray-cast volume rendering; instructions + read-only volume.
	{Name: "VOLREND", Ops: 60000, Gap: 10, Barriers: 3, FracHot: 0.65,
		FracInstr: 0.20, FracSharedRO: 0.35, FracSharedRW: 0.08,
		InstrLines: 768, PrivLines: 1024, PrivWriteFrac: 0.25,
		ROLines: 2048, RWLines: 512, RWWriteFrac: 0.01},

	// BLACKSCHOLES: embarrassingly parallel over options, but the option
	// arrays exhibit page-level false sharing, defeating R-NUCA's page-grain
	// private placement; cache-line-grain replication recovers it (§4.1).
	{Name: "BLACKSCH.", Ops: 60000, Gap: 12, Barriers: 2, FracHot: 0.72,
		FracInstr: 0.05, FracSharedRO: 0.15, FracSharedRW: 0,
		InstrLines: 128, PrivLines: 1024, PrivWriteFrac: 0.10, FalseShare: true,
		ROLines: 1024},

	// SWAPTIONS: Monte-Carlo over swaptions; private simulation state plus
	// modest shared read-only parameters.
	{Name: "SWAPTIONS", Ops: 60000, Gap: 15, Barriers: 2, FracHot: 0.75,
		FracInstr: 0.08, FracSharedRO: 0.17, FracSharedRW: 0,
		InstrLines: 256, PrivLines: 1024, PrivWriteFrac: 0.30,
		ROLines: 1024},

	// FLUIDANIMATE: particle grid exceeding the LLC with low-reuse shared
	// boundary cells; indiscriminate replication (RT-1) raises the off-chip
	// miss rate, RT-3 is needed (§4.1).
	{Name: "FLUIDANIM.", Ops: 60000, Gap: 6, Barriers: 6, FracHot: 0.45,
		FracInstr: 0.03, FracSharedRO: 0.02, FracSharedRW: 0.25,
		InstrLines: 96, PrivLines: 32768, PrivWriteFrac: 0.40,
		ROLines: 256, RWLines: 16384, RWWriteFrac: 0.08},

	// STREAMCLUSTER: k-median over points read by all cores with high
	// reuse; widely-shared read-mostly data where limited classifiers
	// mis-start new sharers (§4.3) and RT-8 delays replica creation.
	{Name: "STREAMCLUS.", Ops: 60000, Gap: 10, Barriers: 6, FracHot: 0.58,
		FracInstr: 0.04, FracSharedRO: 0.42, FracSharedRW: 0.25,
		InstrLines: 128, PrivLines: 512, PrivWriteFrac: 0.25,
		ROLines: 4096, RWLines: 1024, RWOwnerPeriod: 5},

	// DEDUP: pipelined compression; almost exclusively private data without
	// false sharing — R-NUCA (and anything built on it) is optimal.
	{Name: "DEDUP", Ops: 60000, Gap: 12, Barriers: 2, FracHot: 0.72,
		FracInstr: 0.06, FracSharedRO: 0.04, FracSharedRW: 0,
		InstrLines: 192, PrivLines: 2048, PrivWriteFrac: 0.35,
		ROLines: 256},

	// FERRET: similarity-search pipeline; mixed instructions, shared
	// read-only database and private stage buffers.
	{Name: "FERRET", Ops: 60000, Gap: 10, Barriers: 3, FracHot: 0.62,
		FracInstr: 0.12, FracSharedRO: 0.33, FracSharedRW: 0.05,
		InstrLines: 512, PrivLines: 1024, PrivWriteFrac: 0.30,
		ROLines: 2048, RWLines: 512, RWOwnerPeriod: 8},

	// BODYTRACK: high instruction footprint plus shared read-only frames;
	// read-write data is mostly read (§4.1 groups it with FACESIM).
	{Name: "BODYTRACK", Ops: 60000, Gap: 10, Barriers: 4, FracHot: 0.6,
		FracInstr: 0.30, FracSharedRO: 0.30, FracSharedRW: 0.10,
		InstrLines: 1024, PrivLines: 1024, PrivWriteFrac: 0.25,
		ROLines: 2048, RWLines: 1024, RWOwnerPeriod: 16},

	// FACESIM: the largest instruction working set of the suite plus
	// reused shared read-write mesh data with rare writes.
	{Name: "FACESIM", Ops: 60000, Gap: 10, Barriers: 4, FracHot: 0.58,
		FracInstr: 0.35, FracSharedRO: 0.15, FracSharedRW: 0.20,
		InstrLines: 2048, PrivLines: 1024, PrivWriteFrac: 0.25,
		ROLines: 1024, RWLines: 2048, RWOwnerPeriod: 16},

	// PATRICIA: trie lookups over shared read-only routing data with high
	// reuse (Figure 1 shows shared read-only dominating).
	{Name: "PATRICIA", Ops: 60000, Gap: 10, Barriers: 2, FracHot: 0.62,
		FracInstr: 0.08, FracSharedRO: 0.62, FracSharedRW: 0.05,
		InstrLines: 256, PrivLines: 512, PrivWriteFrac: 0.25,
		ROLines: 2560, RWLines: 512, RWWriteFrac: 0.01},

	// CONCOMP: connected components over a large graph; low-reuse shared
	// read-write edges and streaming private frontiers, working set beyond
	// the LLC; no replication benefit.
	{Name: "CONCOMP", Ops: 60000, Gap: 6, Barriers: 5, FracHot: 0.45,
		FracInstr: 0.03, FracSharedRO: 0.05, FracSharedRW: 0.40,
		InstrLines: 96, PrivLines: 16384, PrivWriteFrac: 0.35,
		ROLines: 1024, RWLines: 32768, RWWriteFrac: 0.12},
}

// ProfileByName returns the profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names returns the benchmark names in figure order.
func Names() []string {
	out := make([]string, len(Profiles))
	for i, p := range Profiles {
		out[i] = p.Name
	}
	return out
}
