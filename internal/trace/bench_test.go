package trace

import (
	"testing"

	"lard/internal/config"
)

// BenchmarkTraceGen measures per-op trace generation cost through the
// chunked Fill API the simulator uses (one Op buffer reused across refills,
// so steady-state generation is alloc-free).
func BenchmarkTraceGen(b *testing.B) {
	cfg := config.Small()
	p, err := ProfileByName("BARNES")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]Op, 256)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		w := Generate(p, cfg, 1.0, 42)
		for _, s := range w.Streams {
			for n < b.N {
				got := s.Fill(buf)
				if got == 0 {
					break
				}
				n += got
			}
		}
	}
}
