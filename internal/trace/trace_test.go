package trace

import (
	"testing"
	"testing/quick"

	"lard/internal/config"
	"lard/internal/mem"
)

func collect(p Profile, cfg *config.Config, scale float64, seed uint64, core int) []Op {
	w := Generate(p, cfg, scale, seed)
	var ops []Op
	for {
		op, ok := w.Streams[core].Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilesComplete(t *testing.T) {
	// The 21 benchmarks of Table 2, in Figure-6 order.
	want := []string{
		"RADIX", "FFT", "LU-C", "LU-NC", "CHOLESKY", "BARNES", "OCEAN-C",
		"OCEAN-NC", "WATER-NSQ", "RAYTRACE", "VOLREND", "BLACKSCH.",
		"SWAPTIONS", "FLUIDANIM.", "STREAMCLUS.", "DEDUP", "FERRET",
		"BODYTRACK", "FACESIM", "PATRICIA", "CONCOMP",
	}
	got := Names()
	if len(got) != 21 {
		t.Fatalf("%d benchmarks, want 21 (Table 2)", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("benchmark %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("NOPE"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestProfileFractionsValid(t *testing.T) {
	for _, p := range Profiles {
		sum := p.FracInstr + p.FracSharedRO + p.FracSharedRW
		if sum < 0 || sum > 1 {
			t.Errorf("%s: class fractions sum to %v", p.Name, sum)
		}
		if p.FracHot < 0 || p.FracHot >= 1 {
			t.Errorf("%s: FracHot = %v out of range", p.Name, p.FracHot)
		}
		if p.Ops <= 0 {
			t.Errorf("%s: Ops = %d", p.Name, p.Ops)
		}
		if p.Migratory && p.MigSweeps < 1 {
			t.Errorf("%s: migratory profile needs MigSweeps", p.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "BARNES")
	a := collect(p, cfg, 0.05, 7, 3)
	b := collect(p, cfg, 0.05, 7, 3)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "BARNES")
	a := collect(p, cfg, 0.05, 1, 3)
	b := collect(p, cfg, 0.05, 2, 3)
	same := true
	for i := range a {
		if i < len(b) && a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must produce different streams")
	}
}

// TestMixMatchesProfile: the deficit interleaver realizes the class mix.
func TestMixMatchesProfile(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "BARNES")
	ops := collect(p, cfg, 0.2, 0, 0)
	var count [mem.NumDataClasses]int
	n := 0
	for _, op := range ops {
		if op.Barrier {
			continue
		}
		count[op.Class]++
		n++
	}
	cold := 1 - p.FracHot
	wantRW := cold * p.FracSharedRW
	gotRW := float64(count[mem.ClassSharedRW]) / float64(n)
	if gotRW < wantRW-0.02 || gotRW > wantRW+0.02 {
		t.Errorf("shared-rw fraction = %.3f, want %.3f", gotRW, wantRW)
	}
	wantI := cold * p.FracInstr
	gotI := float64(count[mem.ClassInstruction]) / float64(n)
	if gotI < wantI-0.02 || gotI > wantI+0.02 {
		t.Errorf("instruction fraction = %.3f, want %.3f", gotI, wantI)
	}
}

func TestBarrierCount(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "BARNES") // Barriers: 4
	ops := collect(p, cfg, 0.2, 0, 5)
	barriers := 0
	for _, op := range ops {
		if op.Barrier {
			barriers++
		}
	}
	if barriers != p.Barriers {
		t.Fatalf("emitted %d barriers, want %d", barriers, p.Barriers)
	}
}

func TestOpsScale(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "DEDUP")
	full := collect(p, cfg, 1, 0, 0)
	half := collect(p, cfg, 0.5, 0, 0)
	memOps := func(ops []Op) int {
		n := 0
		for _, op := range ops {
			if !op.Barrier {
				n++
			}
		}
		return n
	}
	if got, want := memOps(half)*2, memOps(full); got < want-2 || got > want+2 {
		t.Fatalf("scale 0.5 gives %d ops, full gives %d", memOps(half), memOps(full))
	}
}

// TestRegionDisjointness: classes live in disjoint address regions, and
// private regions are disjoint across cores.
func TestRegionDisjointness(t *testing.T) {
	cfg := config.Small()
	for _, name := range []string{"BARNES", "RAYTRACE", "OCEAN-C", "LU-NC"} {
		p := mustProfile(t, name)
		regions := map[mem.DataClass]map[mem.LineAddr]bool{}
		for core := 0; core < 4; core++ {
			for _, op := range collect(p, cfg, 0.02, 0, core) {
				if op.Barrier {
					continue
				}
				if regions[op.Class] == nil {
					regions[op.Class] = map[mem.LineAddr]bool{}
				}
				regions[op.Class][mem.LineOf(op.Addr)] = true
			}
		}
		for c1, r1 := range regions {
			for c2, r2 := range regions {
				if c1 >= c2 {
					continue
				}
				for la := range r1 {
					if r2[la] {
						t.Fatalf("%s: line %#x in both %v and %v", name, uint64(la), c1, c2)
					}
				}
			}
		}
	}
}

// TestPrivateRegionsPerCore: two cores' private (non-false-shared) lines
// never collide.
func TestPrivateRegionsPerCore(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "DEDUP")
	seen := map[mem.LineAddr]int{}
	for core := 0; core < 8; core++ {
		for _, op := range collect(p, cfg, 0.02, 0, core) {
			if op.Barrier || op.Class != mem.ClassPrivate {
				continue
			}
			la := mem.LineOf(op.Addr)
			if prev, ok := seen[la]; ok && prev != core {
				t.Fatalf("private line %#x used by cores %d and %d", uint64(la), prev, core)
			}
			seen[la] = core
		}
	}
}

// TestFalseSharingLayout: BLACKSCH private lines share pages across cores
// (that is the point), but not lines.
func TestFalseSharingLayout(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "BLACKSCH.")
	pages := map[mem.PageAddr]map[int]bool{}
	lines := map[mem.LineAddr]int{}
	for core := 0; core < 8; core++ {
		for _, op := range collect(p, cfg, 0.05, 0, core) {
			if op.Barrier || op.Class != mem.ClassPrivate {
				continue
			}
			la := mem.LineOf(op.Addr)
			if prev, ok := lines[la]; ok && prev != core {
				t.Fatalf("false sharing must be page-level, not line-level: %#x", uint64(la))
			}
			lines[la] = core
			pg := mem.PageOf(op.Addr)
			if pages[pg] == nil {
				pages[pg] = map[int]bool{}
			}
			pages[pg][core] = true
		}
	}
	shared := 0
	for _, cores := range pages {
		if len(cores) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("BLACKSCH pages must be cross-core shared")
	}
}

// TestMigratoryExclusivity: only the epoch owner touches a migratory block,
// and it writes during its ownership (the LU-NC pattern).
func TestMigratoryExclusivity(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "LU-NC")
	sp := p.scaled(cfg)
	block := sp.RWLines / cfg.Cores
	ops := collect(p, cfg, 0.3, 0, 2)
	writes, reads := 0, 0
	for _, op := range ops {
		if op.Barrier || op.Class != mem.ClassSharedRW {
			continue
		}
		if op.Type == mem.Store {
			writes++
		} else {
			reads++
		}
	}
	if writes == 0 {
		t.Fatal("migratory owner must write during its epoch")
	}
	// The final sweep writes: writes ≈ reads/(sweeps-1).
	ratio := float64(reads) / float64(writes)
	want := float64(sp.MigSweeps - 1)
	if ratio < want*0.7 || ratio > want*1.4 {
		t.Errorf("read/write ratio = %.2f, want about %.0f", ratio, want)
	}
	if block <= cfg.L1DLines {
		t.Errorf("migratory block (%d lines) must exceed the L1-D (%d) or no LLC reuse exists",
			block, cfg.L1DLines)
	}
}

// TestRunLengthControl: with RWOwnerPeriod N, a non-owner core accesses a
// line about N times between the owner's writes.
func TestRunLengthControl(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "BARNES") // RWOwnerPeriod 12
	// Count per-line accesses between writes for one core and one line it
	// does not own, by merging all cores' streams round-robin.
	w := Generate(p, cfg, 1, 0)
	type ev struct {
		core  int
		write bool
	}
	// Collect per-core shared-RW sequences, then interleave them index-wise
	// (the cores progress at the same rate in the simulator).
	perCore := make([][]ev, cfg.Cores)
	perCoreLine := make([][]mem.LineAddr, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		for {
			op, ok := w.Streams[c].Next()
			if !ok {
				break
			}
			if op.Barrier || op.Class != mem.ClassSharedRW {
				continue
			}
			perCore[c] = append(perCore[c], ev{c, op.Type == mem.Store})
			perCoreLine[c] = append(perCoreLine[c], mem.LineOf(op.Addr))
		}
	}
	perLine := map[mem.LineAddr][]ev{}
	for i := 0; ; i++ {
		any := false
		for c := 0; c < cfg.Cores; c++ {
			if i < len(perCore[c]) {
				any = true
				la := perCoreLine[c][i]
				perLine[la] = append(perLine[la], perCore[c][i])
			}
		}
		if !any {
			break
		}
	}
	// Average run length of non-owner cores (accesses between any writes).
	var runs []int
	for _, evs := range perLine {
		counts := map[int]int{}
		for _, e := range evs {
			if e.write {
				for c, n := range counts {
					if n > 0 {
						runs = append(runs, n)
					}
					delete(counts, c)
				}
				continue
			}
			counts[e.core]++
		}
	}
	if len(runs) == 0 {
		t.Skip("no completed runs at this scale")
	}
	sum := 0
	for _, r := range runs {
		sum += r
	}
	avg := float64(sum) / float64(len(runs))
	if avg < 6 || avg > 24 {
		t.Errorf("BARNES mean run length = %.1f, want around RWOwnerPeriod=12", avg)
	}
}

// TestScaledWorkingSets: scaling preserves the capacity relationships.
func TestScaledWorkingSets(t *testing.T) {
	small := config.Small()
	big := config.Default64()
	for _, name := range []string{"BARNES", "OCEAN-C", "LU-NC"} {
		p := mustProfile(t, name)
		ss := p.scaled(small)
		sb := p.scaled(big)
		if sb.ROLines != p.ROLines || sb.PrivLines != p.PrivLines {
			t.Errorf("%s: Table-1 machine must keep nominal sizes", name)
		}
		if name != "LU-NC" && ss.RWLines*4 != sb.RWLines {
			t.Errorf("%s: slice-relative region must scale 4x (%d vs %d)", name, ss.RWLines, sb.RWLines)
		}
		if name == "LU-NC" && ss.RWLines*16 != sb.RWLines {
			t.Errorf("LU-NC: migratory region must scale with total LLC (%d vs %d)", ss.RWLines, sb.RWLines)
		}
	}
}

// TestStreamsDeterministicProperty: any (profile, seed, core) triple is
// reproducible — quick-checked over seeds and cores.
func TestStreamsDeterministicProperty(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "FERRET")
	f := func(seed uint16, core uint8) bool {
		c := int(core) % cfg.Cores
		a := collect(p, cfg, 0.005, uint64(seed), c)
		b := collect(p, cfg, 0.005, uint64(seed), c)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestHotSetIsL1Resident: the hot slot sweeps a set far smaller than the
// L1-D, so it models filtered traffic.
func TestHotSetIsL1Resident(t *testing.T) {
	cfg := config.Small()
	p := mustProfile(t, "SWAPTIONS")
	lines := map[mem.LineAddr]bool{}
	for _, op := range collect(p, cfg, 0.05, 0, 1) {
		if op.Barrier || op.Class != mem.ClassPrivate {
			continue
		}
		lines[mem.LineOf(op.Addr)] = true
	}
	// hot set (48) + private WS; the hot lines are a contiguous run.
	if len(lines) == 0 {
		t.Fatal("no private lines emitted")
	}
	if hotLines >= cfg.L1DLines {
		t.Fatalf("hot set (%d) must fit the L1-D (%d)", hotLines, cfg.L1DLines)
	}
}

func TestCoreLineHelper(t *testing.T) {
	cfg := config.Small()
	pfs := mustProfile(t, "BLACKSCH.")
	w := Generate(pfs, cfg, 0.01, 0)
	a0 := w.Streams[0].CoreLine(5)
	a1 := w.Streams[1].CoreLine(5)
	if a0 == a1 {
		t.Fatal("different cores' false-shared lines must differ")
	}
	if mem.PageOf(a0) != mem.PageOf(a1) {
		t.Fatal("false-shared lines of the same index must share a page")
	}
}
