// Package trace generates the synthetic multithreaded memory-access streams
// that stand in for the paper's 21 benchmarks (Table 2). The real programs
// are not reproducible here; what the protocol under study observes is the
// *access stream* — the mix of instruction, private, shared read-only and
// shared read-write references, their working-set sizes relative to the
// cache hierarchy, their reuse run-lengths at the LLC, and their
// write-sharing structure (including migratory hand-off and page-level false
// sharing). Each benchmark profile parameterizes exactly those properties,
// tuned to the per-benchmark behaviour the paper describes (see profile.go).
//
// Streams are deterministic: the same (profile, config, seed) always yields
// the same per-core sequence.
package trace

import (
	"math/rand/v2"

	"lard/internal/config"
	"lard/internal/mem"
)

// Op is one element of a per-core stream: either a memory reference or a
// barrier (all cores synchronize; the simulator charges the wait to the
// Synchronization component).
type Op struct {
	// Addr is the referenced byte address (line-aligned).
	Addr mem.Addr
	// Gap is the number of compute cycles preceding this operation.
	Gap uint16
	// Type is the reference type; meaningless for barriers.
	Type mem.AccessType
	// Class is the generator's ground-truth data class.
	Class mem.DataClass
	// Barrier marks a synchronization point.
	Barrier bool
}

// Region bases, in line addresses. Regions are disjoint by construction:
// per-core private regions are spaced privStride lines apart.
const (
	instrBase  mem.LineAddr = 0x0100_0000
	privBase   mem.LineAddr = 0x1000_0000
	privStride mem.LineAddr = 0x0100_0000 // 16M lines (1 GB) per core
	fsBase     mem.LineAddr = 0x8000_0000
	roBase     mem.LineAddr = 0x9000_0000
	rwBase     mem.LineAddr = 0xA000_0000
)

// schedClasses is the number of scheduling slots of the deficit
// interleaver: the four data classes plus the L1-resident hot slot.
const schedClasses = mem.NumDataClasses + 1

// hotSlot is the scheduling slot of L1-resident private accesses.
const hotSlot = mem.NumDataClasses

// hotLines is the per-core hot working set (fits comfortably in the L1-D).
const hotLines = 48

// classWeights is the scheduling weight vector of the deficit interleaver.
type classWeights [schedClasses]float64

// Stream produces one core's operation sequence.
type Stream struct {
	core  mem.CoreID
	cores int
	p     Profile
	rng   *rand.Rand

	emitted, total int
	perPhase       int // ops between barriers
	sincePhase     int
	barriersLeft   int
	pendingBarrier bool

	weights classWeights
	deficit classWeights

	instrPos, privPos, roPos, rwPos, rwPass, rwStart, hotPos int

	// Migratory cursor state (sharedRW with Migratory).
	migPass, migSweep, migIdx int
}

// Workload is the full set of per-core streams for one benchmark run.
type Workload struct {
	// Name is the benchmark name.
	Name string
	// Streams holds one stream per core.
	Streams []*Stream
}

// Generate builds the workload for profile p on the machine described by
// cfg. opsScale scales the per-core operation count (1.0 = the profile's
// nominal length); working-set sizes scale with the machine's cache sizes so
// the pressure relationships the profile encodes survive scaled-down test
// configurations.
func Generate(p Profile, cfg *config.Config, opsScale float64, seed uint64) *Workload {
	sp := p.scaled(cfg)
	ops := int(float64(sp.Ops) * opsScale)
	if ops < 1 {
		ops = 1
	}
	w := &Workload{Name: p.Name, Streams: make([]*Stream, cfg.Cores)}
	for c := 0; c < cfg.Cores; c++ {
		s := &Stream{
			core:  mem.CoreID(c),
			cores: cfg.Cores,
			p:     sp,
			rng:   rand.New(rand.NewPCG(seed, uint64(c)*0x9E3779B97F4A7C15+1)),
			total: ops,
		}
		// The profile's class mix describes the LLC-relevant traffic; the
		// hot fraction models the L1-resident accesses of real programs and
		// scales the rest down.
		cold := 1 - sp.FracHot
		s.weights[hotSlot] = sp.FracHot
		s.weights[mem.ClassInstruction] = cold * sp.FracInstr
		s.weights[mem.ClassSharedRO] = cold * sp.FracSharedRO
		s.weights[mem.ClassSharedRW] = cold * sp.FracSharedRW
		priv := 1 - sp.FracInstr - sp.FracSharedRO - sp.FracSharedRW
		if priv < 0 {
			priv = 0
		}
		s.weights[mem.ClassPrivate] = cold * priv
		s.barriersLeft = sp.Barriers
		if sp.Barriers > 0 {
			s.perPhase = ops / (sp.Barriers + 1)
			if s.perPhase < 1 {
				s.perPhase = 1
			}
		}
		// Desynchronize the cores' sweeps: each core starts at a different
		// offset of the shared regions, as threads of a real program would.
		// The extra +c skews the offsets off multiples of the core count so
		// concurrently-issued accesses spread over all home slices instead
		// of converging on one.
		if sp.ROLines > 0 {
			s.roPos = ((c*sp.ROLines)/cfg.Cores + c) % sp.ROLines
		}
		if sp.RWLines > 0 && !sp.Migratory {
			s.rwPos = ((c*sp.RWLines)/cfg.Cores + c) % sp.RWLines
			s.rwStart = s.rwPos
		}
		if sp.InstrLines > 0 {
			s.instrPos = ((c*sp.InstrLines)/(cfg.Cores*4) + c) % sp.InstrLines
		}
		w.Streams[c] = s
	}
	return w
}

// Remaining returns the number of memory operations the stream will still
// produce (barriers excluded).
func (s *Stream) Remaining() int { return s.total - s.emitted }

// Fill writes the stream's next operations into dst and returns how many it
// produced; 0 means the stream is exhausted. Semantics are exactly those of
// len(dst) successive Next calls — Fill exists so a consumer can refill a
// reusable chunk buffer and iterate a flat []Op instead of paying a method
// call per access on its hot loop.
func (s *Stream) Fill(dst []Op) int {
	n := 0
	for n < len(dst) {
		op, ok := s.Next()
		if !ok {
			break
		}
		dst[n] = op
		n++
	}
	return n
}

// Core returns the stream's core.
func (s *Stream) Core() mem.CoreID { return s.core }

// Next returns the next operation. ok is false when the stream is exhausted.
func (s *Stream) Next() (op Op, ok bool) {
	if s.pendingBarrier {
		s.pendingBarrier = false
		return Op{Barrier: true}, true
	}
	if s.emitted >= s.total {
		return Op{}, false
	}
	if s.barriersLeft > 0 && s.sincePhase >= s.perPhase {
		s.sincePhase = 0
		s.barriersLeft--
		return Op{Barrier: true}, true
	}
	s.emitted++
	s.sincePhase++

	slot := s.pickClass()
	var op2 Op
	if slot == hotSlot {
		op2 = s.emitHot()
	} else {
		op2 = s.emit(mem.DataClass(slot))
	}
	op = op2
	if s.p.Gap > 0 {
		op.Gap = uint16(s.rng.IntN(2*s.p.Gap + 1))
	}
	return op, true
}

// pickClass runs the deterministic deficit interleaver: the slot furthest
// behind its target fraction goes next, so the realized mix matches the
// profile exactly even for short streams. The returned value is either a
// data class or hotSlot.
func (s *Stream) pickClass() int {
	best, bestV := 0, -1.0
	for i := range s.deficit {
		s.deficit[i] += s.weights[i]
		if s.deficit[i] > bestV {
			best, bestV = i, s.deficit[i]
		}
	}
	s.deficit[best]--
	return best
}

// emitHot produces an access to the per-core L1-resident hot set: the
// register-spill/stack traffic of a real thread that the L1 filters out
// before the LLC ever sees it. It is private data at an address range next
// to the core's private region.
func (s *Stream) emitHot() Op {
	line := privBase + mem.LineAddr(s.core)*privStride + privStride/2 + mem.LineAddr(s.hotPos)
	s.hotPos = (s.hotPos + 1) % hotLines
	typ := mem.Load
	if s.rng.Float64() < 0.3 {
		typ = mem.Store
	}
	return Op{Addr: mem.AddrOfLine(line), Type: typ, Class: mem.ClassPrivate}
}

// emit produces the next reference of the given class.
func (s *Stream) emit(class mem.DataClass) Op {
	switch class {
	case mem.ClassInstruction:
		line := instrBase + mem.LineAddr(s.instrPos)
		s.instrPos = (s.instrPos + 1) % maxInt(s.p.InstrLines, 1)
		return Op{Addr: mem.AddrOfLine(line), Type: mem.IFetch, Class: class}

	case mem.ClassPrivate:
		n := maxInt(s.p.PrivLines, 1)
		idx := s.privPos
		s.privPos = (s.privPos + 1) % n
		var line mem.LineAddr
		if s.p.FalseShare {
			// Page-level false sharing (BLACKSCHOLES, §4.1): line i of core
			// c lives in page i, so every page holds truly-private lines of
			// up to 64 different cores. The slot rotates with the page index
			// so the interleaved home of a core's line is usually remote
			// (a slot equal to the core id would alias home == owner).
			slot := (int(s.core) + idx) % mem.LinesPerPage
			line = fsBase + mem.LineAddr(idx)*mem.LinesPerPage + mem.LineAddr(slot)
		} else {
			line = privBase + mem.LineAddr(s.core)*privStride + mem.LineAddr(idx)
		}
		typ := mem.Load
		if s.rng.Float64() < s.p.PrivWriteFrac {
			typ = mem.Store
		}
		return Op{Addr: mem.AddrOfLine(line), Type: typ, Class: class}

	case mem.ClassSharedRO:
		n := maxInt(s.p.ROLines, 1)
		line := roBase + mem.LineAddr(s.roPos%n)
		s.roPos = (s.roPos + 1) % n
		return Op{Addr: mem.AddrOfLine(line), Type: mem.Load, Class: class}

	default: // ClassSharedRW
		if s.p.Migratory {
			return s.emitMigratory()
		}
		n := maxInt(s.p.RWLines, 1)
		idx := s.rwPos % n
		line := rwBase + mem.LineAddr(idx)
		s.rwPos++
		if s.rwPos%n == 0 {
			s.rwPass++
		}
		typ := mem.Load
		if s.rng.Float64() < s.p.RWWriteFrac {
			typ = mem.Store
		}
		// Owner-phase writes: line idx's owning core updates it on its first
		// visit (so every line is written early, as initialization would)
		// and then once every RWOwnerPeriod passes, as a program phase
		// would. Every other core then observes an LLC run-length of about
		// RWOwnerPeriod on the line, independent of the core count.
		if s.p.RWOwnerPeriod > 0 && idx%s.cores == int(s.core) &&
			(s.rwPass%s.p.RWOwnerPeriod == 0 || s.rwPos-1 < s.rwStart+n) {
			typ = mem.Store
		}
		return Op{Addr: mem.AddrOfLine(line), Type: typ, Class: mem.ClassSharedRW}
	}
}

// emitMigratory produces the migratory hand-off pattern of LU-NC: the shared
// region is partitioned into per-core blocks larger than the L1, ownership
// of each block rotates across cores every pass, and the owner sweeps its
// block MigSweeps times (the final sweep writing), giving each line a
// run-length of MigSweeps at the LLC before the next owner's conflicting
// access. Replicating such lines requires an Exclusive/Modified-state
// replica (§2.3.1).
func (s *Stream) emitMigratory() Op {
	block := maxInt(s.p.RWLines/s.cores, 1)
	sweeps := maxInt(s.p.MigSweeps, 1)
	owned := (int(s.core) + s.migPass) % s.cores
	line := rwBase + mem.LineAddr(owned*block+s.migIdx)

	typ := mem.Load
	if s.migSweep == sweeps-1 {
		typ = mem.Store
	}
	s.migIdx++
	if s.migIdx >= block {
		s.migIdx = 0
		s.migSweep++
		if s.migSweep >= sweeps {
			s.migSweep = 0
			s.migPass++
		}
	}
	return Op{Addr: mem.AddrOfLine(line), Type: typ, Class: mem.ClassSharedRW}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// CoreLine returns the address of the stream core's i-th private line
// (diagnostics/tests).
func (s *Stream) CoreLine(i int) mem.Addr {
	if s.p.FalseShare {
		slot := (int(s.core) + i) % mem.LinesPerPage
		return mem.AddrOfLine(fsBase + mem.LineAddr(i)*mem.LinesPerPage + mem.LineAddr(slot))
	}
	return mem.AddrOfLine(privBase + mem.LineAddr(s.core)*privStride + mem.LineAddr(i))
}
