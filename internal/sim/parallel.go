// Conflict-aware parallel access scheduling: the intra-run parallel
// execution mode behind Options.Workers.
//
// The sequential loop processes one access at a time in global
// (time, core) order. This file replaces that loop, when Workers > 1 and
// the engine is coherence.ParallelSafe, with a round-based scheduler:
//
//  1. Scan: drain the event scheduler. Finish and barrier events are
//     engine-free bookkeeping and are applied immediately (a barrier can
//     only release when no running core still has an access in flight, so
//     eager processing cannot reorder anything observable). Real accesses
//     become round candidates with their operation already decoded.
//  2. Peek: compute each candidate's conservative conflict footprint
//     (coherence.PeekAccess) — read-only, fanned out across the lanes.
//     Footprints are cached across rounds: a deferred candidate is only
//     re-peeked when a committed access wrote inside its footprint.
//  3. Select: walk candidates in canonical (time, core) order keeping a
//     running union of footprint tiles. A candidate whose footprint is
//     disjoint from the union — and whose wake time clears the lookahead
//     guard against successor events that do not exist yet (see
//     selectRound) — is selected; every candidate's footprint joins the
//     union regardless, so an access never overtakes an earlier
//     conflicting one. Page-table-mutating accesses (Footprint.Global)
//     only run alone, at the head of a round.
//  4. Execute: selected accesses run concurrently, round-robin across the
//     worker lanes (the master engine is lane 0; the rest are clones
//     sharing the simulated machine with private accumulators). Each
//     execution is checked against its declared footprint and panics on
//     escape. After its candidate completes, a lane chains the same core
//     forward through consecutive L1 hits (see execTask): a hit touches
//     only the core's own tile and its wake times are exact, so whole
//     hit runs advance concurrently as long as they stay under the
//     lookahead horizon and no other candidate claims the tile. The
//     chains are where the speedup lives — between LLC misses every
//     core's hit run progresses in parallel.
//  5. Merge + commit: lane accumulators fold into the master (exact in
//     any order — every energy quantum is a small integer), then the
//     round's executed steps commit through runState.commit in canonical
//     (time, core) order — a k-way merge over the per-core chains:
//     aggregates, run-tracker replay, progress/interrupt/telemetry
//     cadence all happen at the same operation counts a sequential run
//     would produce, and each core reschedules at its last chained
//     completion.
//
// Selected accesses commute (disjoint footprints over tile-covered state)
// and deferred accesses observe every conflicting predecessor's effects,
// so the result is identical to the sequential loop's by construction —
// the golden-grid tests pin this byte-for-byte at several widths.
package sim

import (
	"runtime"
	"sync"

	"lard/internal/coherence"
	"lard/internal/mem"
)

// parStats counts the parallel scheduler's efficiency telemetry:
// commits/rounds is the achieved per-round parallelism, and
// conflicts/(commits+conflicts) the fraction of candidate scheduling
// opportunities lost to footprint conflicts. All zero on sequential runs.
type parStats struct {
	rounds    uint64
	conflicts uint64
	commits   uint64
}

// parStep is one executed access awaiting commit: a selected candidate or
// one of its chained L1 hits. Steps live in per-lane buffers (no sharing;
// reused across rounds) and commit in canonical (now, core) order.
type parStep struct {
	now          mem.Cycles // event (wake) time — canonical-order key
	gap          mem.Cycles
	res          coherence.AccessResult
	logLo, logHi int
}

// parTask is one candidate access flowing through a scheduling round. A
// task deferred by a conflict stays a candidate (its core has no scheduler
// event until the access commits); its footprint is kept until a committed
// access invalidates it.
type parTask struct {
	core     mem.CoreID
	now      mem.Cycles // event (wake) time — canonical-order key
	t        mem.Cycles // issue time: now + gap
	gap      mem.Cycles
	op       coherence.Op
	fp       coherence.Footprint
	low      mem.Cycles // lookahead bound: earliest possibly-conflicting future event
	hit      bool       // candidate peeked as an L1 hit (footprint = own tile)
	fpValid  bool       // footprint computed and not invalidated since
	selected bool

	// Set at selection time for selected tasks.
	chainOK bool       // no other candidate claims this tile: lane may chain L1 hits
	bLow    mem.Cycles // lookahead horizon: min (low, core) over the other candidates
	bCore   mem.CoreID

	// Execution outputs, written by the owning lane, read by the master
	// after the round's join: steps [stepLo, stepHi) of lane's buffer.
	lane           int
	stepLo, stepHi int
}

// Lane phase commands.
const (
	phasePeek = iota + 1
	phaseExec
)

// peekFanoutMin is the stale-candidate count below which the master computes
// all footprints itself: a footprint probe costs a small fraction of an
// access, so waking the lanes for a handful of probes costs more than it
// saves.
const peekFanoutMin = 8

// execFanoutMin is the selected-set size below which the master executes the
// whole round itself (selected accesses commute, so any execution order
// works): a lane wake/join round-trip costs several accesses' worth of
// work, so tiny rounds run faster inline.
const execFanoutMin = 4

// parRun is the shared state of one parallel run: the master goroutine
// mutates cands/sel strictly between lane phases, and the lane channels'
// happens-before edges publish them.
type parRun struct {
	st      *runState
	workers int
	lanes   []*coherence.Engine
	cands   []parTask
	sel     []*parTask
	steps   [][]parStep  // per-lane step buffers, reset each round
	cursor  []int        // per-selected-task commit cursor (k-way merge)
	heads   []mem.Cycles // per-selected-task next-step wake (noHorizon = done)

	// Per-core hit-run lookahead cache: runEnd[c] is the wake of core c's
	// first possibly-non-hit event (hitRunEnd), valid while runEndOK[c] —
	// invalidated only when a committed miss touches c's L1 (the core's
	// own included), the one way the run can change.
	runEnd   []mem.Cycles
	runEndOK []bool
	missIdx  []int // scratch: this round's non-hit candidate indices

	// fanLanes gates the worker goroutines: with a single schedulable CPU
	// (GOMAXPROCS 1) the lanes could only timeshare the master's processor,
	// so every wake/join round-trip would cost a context switch and return
	// nothing — the master then executes all lanes' shares itself. The
	// schedule, and therefore the results, are identical either way; lane
	// count is purely an execution resource.
	fanLanes bool
}

// runParallel executes the run with the given lane count. It returns true
// when the run was interrupted. The master participates as lane 0, so
// workers lanes means workers-1 extra goroutines, parked between phases.
func (st *runState) runParallel(workers int) (interrupted bool) {
	if workers > st.n {
		workers = st.n
	}
	eng := st.eng
	clones := eng.PrepareParallel(workers)
	defer eng.FinishParallel()

	pr := &parRun{
		st:       st,
		workers:  workers,
		lanes:    make([]*coherence.Engine, workers),
		cands:    make([]parTask, 0, st.n),
		sel:      make([]*parTask, 0, st.n),
		steps:    make([][]parStep, workers),
		cursor:   make([]int, 0, st.n),
		heads:    make([]mem.Cycles, 0, st.n),
		runEnd:   make([]mem.Cycles, st.n),
		runEndOK: make([]bool, st.n),
		missIdx:  make([]int, 0, st.n),
	}
	pr.lanes[0] = eng
	copy(pr.lanes[1:], clones)
	for w := range pr.steps {
		pr.steps[w] = make([]parStep, 0, 4*opChunk)
	}
	pr.fanLanes = workers > 1 && runtime.GOMAXPROCS(0) > 1

	cmd := make([]chan int, workers)
	done := make(chan struct{}, workers)
	if pr.fanLanes {
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			cmd[w] = make(chan int, 1)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ph := range cmd[w] {
					if ph == phasePeek {
						pr.peekLane(w)
					} else {
						pr.execLane(w)
					}
					done <- struct{}{}
				}
			}(w)
		}
		defer func() {
			for w := 1; w < workers; w++ {
				close(cmd[w])
			}
			wg.Wait()
		}()
	}

	for {
		// Phase 1: drain the scheduler into candidates; finishes and
		// barriers apply immediately (see the package comment for why that
		// is order-safe).
		if !pr.scan() {
			return false // every core finished and nothing is deferred
		}
		st.par.rounds++

		// Phase 2: conflict footprints for every candidate whose cached
		// footprint was invalidated (or never computed).
		pr.peek(cmd, done)

		// Phase 3: canonical-order selection under the running tile union.
		pr.selectRound()

		// Phase 4: concurrent execution on the lanes — each selected
		// candidate plus its L1-hit chain.
		pr.exec(cmd, done)

		// Phase 5: merge lane accumulators, then commit every executed step
		// in canonical (time, core) order — a k-way merge over the per-core
		// chains, each of which is already sorted.
		for _, cl := range clones {
			eng.MergeWorker(cl)
		}
		stop := pr.commitRound()
		eng.ResetRunLog()
		for _, cl := range clones {
			cl.ResetRunLog()
		}
		if stop {
			return true
		}

		// Compact: committed tasks leave; deferred ones stay candidates,
		// dropping cached analysis this round's commits could have changed.
		// Pure-hit chains write only their own L1, which no other
		// candidate's peek reads; only miss transactions invalidate
		// anything, and only through their State masks — a probe reads tile
		// state, never mesh-route occupancy, so a committed miss that
		// merely shares routes with a cached footprint leaves it valid
		// (Global commits, which mutate the page table every probe reads,
		// invalidate everything).
		var missState, missL1 uint64
		for _, t := range pr.sel {
			if t.fp.Global {
				missState, missL1 = ^uint64(0), ^uint64(0)
				break
			}
			if !t.hit {
				missState |= t.fp.State
				missL1 |= t.fp.L1
			}
		}
		if missL1 != 0 {
			for c := range pr.runEndOK {
				if missL1&(1<<uint(c)) != 0 {
					pr.runEndOK[c] = false
				}
			}
		}
		live := pr.cands[:0]
		for i := range pr.cands {
			t := &pr.cands[i]
			if t.selected {
				continue
			}
			if t.hit {
				// A hit candidate's analysis reads only its own L1.
				if missL1&(1<<uint(t.core)) != 0 {
					t.fpValid = false
				}
			} else if t.fp.Reads&missState != 0 {
				t.fpValid = false
			}
			live = append(live, *t)
		}
		pr.cands = live
	}
}

// scan drains the scheduler, applying finish/barrier events directly and
// decoding real accesses into candidates. It reports whether any candidate
// is pending (false = the run completed).
func (pr *parRun) scan() bool {
	st := pr.st
	sch, bufs, pos, cnt := st.sch, st.bufs, st.pos, st.cnt
	for sch.active > 0 {
		now, c := sch.pop()
		if pos[c] == cnt[c] {
			cnt[c] = st.w.Streams[c].Fill(bufs[int(c)*opChunk : (int(c)+1)*opChunk])
			pos[c] = 0
		}
		if cnt[c] == 0 {
			st.coreFinished(c, now)
			continue
		}
		op := &bufs[int(c)*opChunk+pos[c]]
		pos[c]++
		if op.Barrier {
			st.coreAtBarrier(c, now)
			continue
		}
		pr.cands = append(pr.cands, parTask{
			core: c,
			now:  now,
			t:    now + mem.Cycles(op.Gap),
			gap:  mem.Cycles(op.Gap),
			op: coherence.Op{
				Type:  op.Type,
				Line:  mem.LineOf(op.Addr),
				Class: op.Class,
			},
		})
	}
	if len(pr.cands) == 0 {
		return false
	}
	// Canonical (time, core) order — the order the sequential loop would
	// process these events in. Insertion sort: at most one entry per core
	// and the deferred prefix is already sorted.
	cands := pr.cands
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && taskBefore(&cands[j], &cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	return true
}

// taskBefore is the canonical event order: time, then core id.
func taskBefore(a, b *parTask) bool {
	return a.now < b.now || (a.now == b.now && a.core < b.core)
}

// peek computes the footprint of every candidate that lacks a valid cached
// one, fanning out across the lanes when the stale set is large enough to
// amortize the wake-up. A cached footprint stays valid because PeekAccess
// only reads state on tiles inside the footprint it returns (plus the page
// table, which only Global accesses mutate — and a committed Global
// invalidates every cache): if no committed access wrote a footprint tile,
// the probe would compute the same answer again.
func (pr *parRun) peek(cmd []chan int, done chan struct{}) {
	stale := 0
	for i := range pr.cands {
		if !pr.cands[i].fpValid {
			stale++
		}
	}
	if stale == 0 {
		return
	}
	if !pr.fanLanes || stale < peekFanoutMin {
		for i := range pr.cands {
			if !pr.cands[i].fpValid {
				pr.peekTask(pr.st.eng, &pr.cands[i])
			}
		}
		return
	}
	active := 0
	for w := 1; w < pr.workers && w < stale; w++ {
		cmd[w] <- phasePeek
		active++
	}
	pr.peekLane(0)
	for ; active > 0; active-- {
		<-done
	}
}

// peekLane computes the footprints of lane w's candidate share. The probes
// are strictly read-only against the master engine, so lanes may overlap.
func (pr *parRun) peekLane(w int) {
	eng := pr.st.eng
	for i := w; i < len(pr.cands); i += pr.workers {
		if !pr.cands[i].fpValid {
			pr.peekTask(eng, &pr.cands[i])
		}
	}
}

// peekTask classifies one candidate. An L1 hit needs no directory probe at
// all: it is confined to the core's own L1 line by construction, so its
// footprint is the single own tile. Everything else takes the full
// PeekAccess walk.
func (pr *parRun) peekTask(eng *coherence.Engine, t *parTask) {
	if eng.PeekL1Hit(t.core, t.op) {
		t.hit = true
		t.fp = coherence.Footprint{
			Tiles:  1 << uint(t.core),
			L1:     1 << uint(t.core),
			State:  1 << uint(t.core),
			Reads:  1 << uint(t.core),
			MinLat: eng.L1HitLatency(),
		}
	} else {
		t.hit = false
		t.fp = eng.PeekAccess(t.core, t.op)
	}
	t.fpValid = true
}

// hitRunEnd returns the wake time of core c's first possibly-non-hit event:
// the end of the run of consecutive peeked L1 hits starting at hit
// candidate t. Hit-ness is stable under the core's own hits and every hit
// completes in exactly L1HitLatency, so these wakes are exact, not bounds.
// The walk stops at a barrier, the chunk boundary, or the first op that
// does not peek as a hit — whatever event sits there is the first one whose
// behaviour the scheduler cannot predict. The result is cached per core:
// it stays correct across the core's own hit commits (the remaining wakes
// do not move) and is dropped only when a committed miss may have touched
// the core's L1. A cached value behind the candidate's own completion
// (previous chunk) is recomputed.
func (pr *parRun) hitRunEnd(t *parTask) mem.Cycles {
	st := pr.st
	c := t.core
	lat := st.eng.L1HitLatency()
	end := t.t + lat // candidate completion: wake of the core's next event
	if pr.runEndOK[c] && pr.runEnd[c] >= end {
		return pr.runEnd[c]
	}
	base := int(c) * opChunk
	for i := st.pos[c]; i < st.cnt[c]; i++ {
		op := &st.bufs[base+i]
		if op.Barrier || !st.eng.PeekL1Hit(c, coherence.Op{Type: op.Type, Line: mem.LineOf(op.Addr), Class: op.Class}) {
			break
		}
		end += mem.Cycles(op.Gap) + lat
	}
	pr.runEnd[c], pr.runEndOK[c] = end, true
	return end
}

// noHorizon marks a selected task with no other candidate: its chain is
// bounded only by its own misses (no other core can generate events).
const noHorizon = ^mem.Cycles(0)

// selectRound picks the round's concurrent set: candidates in canonical
// order whose footprints are disjoint from everything scheduled or blocked
// before them, and whose wake time clears the lookahead guard below.
// Blocked footprints join the union too, so no access ever overtakes an
// earlier conflicting access. The head candidate is always selectable — a
// round commits at least one access, so the run advances.
//
// The lookahead guard closes the one hazard the footprint union cannot see:
// events that do not exist yet. A committed access reschedules its core at
// its completion time, and that successor event can carry a wake time
// canonically *before* an already-running candidate's — the sequential loop
// would then process the successor first, and if the two conflict, in a
// different state. Every future event descends from some current candidate
// X (finished cores produce nothing, barrier-parked cores cannot release
// while any candidate's core is running), belongs to X's core, and cannot
// wake before X's issue time plus its footprint's MinLat — so a candidate
// is safe to execute exactly when its own (wake, core) orders before that
// bound for every other candidate. The same bound caps each selected
// task's L1-hit chain (execTask): chained wakes are exact completion
// times, each ≥ the task's own low, so other tasks' horizons stay sound
// as every chain advances.
//
// Chaining additionally requires the task's tile to be claimed by no other
// candidate's footprint (dup below): a chained hit executes at wake times
// beyond deferred candidates', which is only order-safe while it cannot
// touch state any of them will.
func (pr *parRun) selectRound() {
	st := pr.st
	pr.sel = pr.sel[:0]
	cands := pr.cands

	// Lookahead lows. A miss candidate's successors cannot wake before its
	// issue time plus its footprint's MinLat. A hit candidate is much
	// stronger: hit-ness is stable under the core's own hits, so the whole
	// peeked run of consecutive hits has exact wake times and the core's
	// first possibly-conflicting event is the run's first non-hit
	// (hitRunEnd) — unless a miss candidate's invalidation fan-out can
	// reach this core's L1 and cut the run short, which caps the bound at
	// that candidate's wake.
	pr.missIdx = pr.missIdx[:0]
	for i := range cands {
		if !cands[i].hit {
			pr.missIdx = append(pr.missIdx, i)
		}
	}
	// Two smallest (low, core) entries: each candidate's guard bound is the
	// minimum over the *other* candidates, so the argmin uses the runner-up.
	i1, i2 := -1, -1
	for i := range cands {
		t := &cands[i]
		if t.hit {
			t.low = pr.hitRunEnd(t)
			for _, j := range pr.missIdx {
				w := &cands[j]
				if (w.fp.Global || w.fp.L1&(1<<uint(t.core)) != 0) && w.now < t.low {
					t.low = w.now
				}
			}
		} else {
			t.low = t.t + t.fp.MinLat
		}
		if i1 < 0 || lowBefore(t, &cands[i1]) {
			i1, i2 = i, i1
		} else if i2 < 0 || lowBefore(t, &cands[i2]) {
			i2 = i
		}
	}
	// Running unions in canonical order. A pure hit reads and writes
	// nothing but its own L1 line, so it conflicts with an earlier
	// candidate only when a miss's invalidation fan-out may reach its L1
	// (missL1); sharing mesh routes or LLC slices with miss traffic is not
	// a conflict because a hit never touches them. A miss conflicts
	// tile-wise with earlier miss footprints (missTiles) and with any
	// earlier hit whose L1 its fan-out may touch (hitTiles). dup tracks
	// tiles whose private L1 more than one candidate may touch — the
	// chaining barrier (see execTask).
	var missTiles, missL1, hitTiles, unionL1, dup uint64
	for i := range cands {
		t := &cands[i]
		t.selected = false
		if t.fp.Global {
			// Page-table mutation: only runs alone at the head of a round
			// (the master executes it solo); afterwards it blocks the rest
			// of the round like a full-chip footprint. The head is immune
			// to the lookahead hazard: successor events never order before
			// the globally minimal (wake, core).
			if i == 0 {
				t.selected = true
				pr.sel = append(pr.sel, t)
			} else {
				st.par.conflicts++
			}
			missTiles, missL1, hitTiles = ^uint64(0), ^uint64(0), ^uint64(0)
			unionL1, dup = ^uint64(0), ^uint64(0)
			continue
		}
		dup |= unionL1 & t.fp.L1
		unionL1 |= t.fp.L1
		var conflict bool
		if t.hit {
			conflict = missL1&(1<<uint(t.core)) != 0
		} else {
			conflict = t.fp.Tiles&missTiles != 0 || t.fp.L1&hitTiles != 0
		}
		// The head needs no guard: its (wake, core) is globally minimal, so
		// every future event orders after it — and without the exemption a
		// cutter-capped low equal to the head's own wake could deadlock the
		// round by deferring everyone.
		if conflict || (i > 0 && !pr.guarded(i, i1, i2)) {
			st.par.conflicts++
		} else {
			t.selected = true
			pr.sel = append(pr.sel, t)
		}
		// Deferred candidates block later conflicting ones too: an access
		// never overtakes an earlier conflicting access.
		if t.hit {
			hitTiles |= 1 << uint(t.core)
		} else {
			missTiles |= t.fp.Tiles
			missL1 |= t.fp.L1
		}
	}
	for _, t := range pr.sel {
		t.chainOK = !t.fp.Global && dup&(1<<uint(t.core)) == 0
		t.bLow, t.bCore = noHorizon, 0
		if o := pr.other(i1, i2, t); o >= 0 {
			t.bLow, t.bCore = cands[o].low, cands[o].core
		}
	}
}

// lowBefore orders candidates by (low, core): the earliest (wake, core) any
// successor event of the candidate's core can carry.
func lowBefore(a, b *parTask) bool {
	return a.low < b.low || (a.low == b.low && a.core < b.core)
}

// other returns the index of the candidate with the smallest (low, core)
// among all candidates other than t, or -1 when t is the sole candidate.
func (pr *parRun) other(i1, i2 int, t *parTask) int {
	if i1 >= 0 && &pr.cands[i1] != t {
		return i1
	}
	return i2
}

// guarded reports whether candidate i's wake orders canonically before the
// earliest possible successor event of every other candidate.
func (pr *parRun) guarded(i, i1, i2 int) bool {
	o := i1
	if o == i {
		o = i2
	}
	if o < 0 {
		return true // sole candidate: no other core can generate events
	}
	t, b := &pr.cands[i], &pr.cands[o]
	return t.now < b.low || (t.now == b.low && t.core < b.core)
}

// exec runs the selected accesses. Small rounds run inline on the master
// (selected accesses commute, so sequential execution is just another valid
// order); larger rounds fan out round-robin across the lanes with the
// master working lane 0's share.
func (pr *parRun) exec(cmd []chan int, done chan struct{}) {
	for w := range pr.steps {
		pr.steps[w] = pr.steps[w][:0]
	}
	if len(pr.sel) == 1 && pr.sel[0].fp.Global {
		// Solo by construction: free to touch the page table; no
		// containment check applies, and the next access may rehome, so
		// the chain never extends past it.
		t := pr.sel[0]
		eng := pr.st.eng
		lo := eng.RunLogLen()
		res := eng.Access(t.core, t.t, t.op)
		t.lane, t.stepLo = 0, 0
		pr.steps[0] = append(pr.steps[0], parStep{now: t.now, gap: t.gap, res: res, logLo: lo, logHi: eng.RunLogLen()})
		t.stepHi = 1
		return
	}
	if !pr.fanLanes || len(pr.sel) < execFanoutMin {
		for _, t := range pr.sel {
			pr.execTask(0, t)
		}
		return
	}
	active := 0
	for w := 1; w < pr.workers && w < len(pr.sel); w++ {
		cmd[w] <- phaseExec
		active++
	}
	pr.execLane(0)
	for ; active > 0; active-- {
		<-done
	}
}

// execLane executes lane w's share of the selected set.
func (pr *parRun) execLane(w int) {
	for i := w; i < len(pr.sel); i += pr.workers {
		pr.execTask(w, pr.sel[i])
	}
}

// execTask runs one selected candidate on lane w, then chains the same core
// forward through consecutive L1 hits. A chained hit is order-safe because
// it is provably confined to the core's own tile (PeekL1Hit on a
// ParallelSafe engine), no other candidate claims that tile (chainOK), and
// its wake — the exact completion time of the previous step — still orders
// before the earliest event any other candidate can generate (bLow). The
// chain stops at a barrier or chunk boundary (the master's scan handles
// both), at the first non-hit, or at the horizon.
func (pr *parRun) execTask(w int, t *parTask) {
	lane := pr.lanes[w]
	t.lane = w
	t.stepLo = len(pr.steps[w])
	pr.execStep(w, lane, t, t.now, t.gap, t.op, t.fp)
	if t.chainOK {
		st := pr.st
		c := t.core
		base := int(c) * opChunk
		pos, cnt, bufs := st.pos, st.cnt, st.bufs
		for {
			wake := pr.steps[w][len(pr.steps[w])-1].res.Done
			if !(wake < t.bLow || (wake == t.bLow && c < t.bCore)) {
				break
			}
			if pos[c] == cnt[c] {
				break // chunk exhausted: refilling is the master's job
			}
			op := &bufs[base+pos[c]]
			if op.Barrier {
				break
			}
			cop := coherence.Op{Type: op.Type, Line: mem.LineOf(op.Addr), Class: op.Class}
			if !lane.PeekL1Hit(c, cop) {
				break
			}
			pos[c]++
			fp := coherence.Footprint{Tiles: 1 << uint(c), State: 1 << uint(c)}
			pr.execStep(w, lane, t, wake, mem.Cycles(op.Gap), cop, fp)
		}
	}
	t.stepHi = len(pr.steps[w])
}

// execStep runs one access on a lane, checks footprint containment, and
// appends the pending commit to the lane's step buffer.
func (pr *parRun) execStep(w int, lane *coherence.Engine, t *parTask, wake, gap mem.Cycles, op coherence.Op, fp coherence.Footprint) {
	lane.ResetTouched()
	lo := lane.RunLogLen()
	res := lane.Access(t.core, wake+gap, op)
	lane.CheckTouched(fp, t.core, op.Line)
	pr.steps[w] = append(pr.steps[w], parStep{now: wake, gap: gap, res: res, logLo: lo, logHi: lane.RunLogLen()})
}

// commitRound folds the round's executed steps into the run state in
// canonical (time, core) order: a k-way merge over the selected tasks'
// chains (each already sorted by construction). Each core reschedules at
// its final chained completion — the intermediate wakes were consumed by
// the chain, exactly as the sequential loop would have popped them.
func (pr *parRun) commitRound() (stop bool) {
	st := pr.st
	eng := st.eng
	// heads[i] caches chain i's next uncommitted wake time (or exhausted =
	// noHorizon), so the merge's inner argmin scans a flat cycle array
	// instead of chasing step buffers.
	pr.cursor = pr.cursor[:0]
	pr.heads = pr.heads[:0]
	remaining := 0
	for _, t := range pr.sel {
		pr.cursor = append(pr.cursor, t.stepLo)
		pr.heads = append(pr.heads, pr.steps[t.lane][t.stepLo].now)
		remaining += t.stepHi - t.stepLo
	}
	for ; remaining > 0; remaining-- {
		best := 0
		bw := pr.heads[0]
		for i := 1; i < len(pr.heads); i++ {
			if now := pr.heads[i]; now < bw || (now == bw && pr.sel[i].core < pr.sel[best].core) {
				best, bw = i, now
			}
		}
		t := pr.sel[best]
		s := &pr.steps[t.lane][pr.cursor[best]]
		pr.cursor[best]++
		if pr.cursor[best] == t.stepHi {
			pr.heads[best] = noHorizon
		} else {
			pr.heads[best] = pr.steps[t.lane][pr.cursor[best]].now
		}
		eng.ReplayRuns(pr.lanes[t.lane], s.logLo, s.logHi)
		st.par.commits++
		if st.commitStep(t.core, s.gap, s.res, pr.cursor[best] == t.stepHi) {
			return true
		}
	}
	return false
}
