package sim

import "time"

// Timing is the simulator's wall-clock phase breakdown, reported through
// the Options.Timing side channel. Like Progress and Interrupt it is
// execution plumbing, not run identity: the field is excluded from JSON
// encoding (and stripped by resultstore.SpecFor), so wiring a Timing can
// never change a run's content address or its simulated outcome.
//
// The phases partition Run's wall time:
//
//	Setup         — configuration validation and coherence-engine build
//	TraceDecode   — synthetic workload generation from the profile
//	CoherenceLoop — the event loop (the paper's simulated execution)
//	Finalize      — stats aggregation and energy accounting
//
// When the run is interrupted, only the phases completed so far are
// filled; CoherenceLoop holds the partial loop time.
type Timing struct {
	// Start is the wall-clock instant Run began.
	Start time.Time
	// Per-phase durations; see the type comment for the partition.
	Setup         time.Duration
	TraceDecode   time.Duration
	CoherenceLoop time.Duration
	Finalize      time.Duration
}

// Total is the sum of the measured phases.
func (t *Timing) Total() time.Duration {
	return t.Setup + t.TraceDecode + t.CoherenceLoop + t.Finalize
}
