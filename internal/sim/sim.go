// Package sim executes a workload on the coherence engine: it interleaves
// the per-core streams in global event order (each core is the paper's
// in-order, single-issue, 1-IPC pipeline that blocks on its memory
// accesses), implements the barrier synchronization of the parallel region,
// and aggregates the §3.4 metrics: completion time and its breakdown, the
// energy breakdown, L1 miss types, and the Figure-1 run-length histogram.
package sim

import (
	"time"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/energy"
	"lard/internal/mem"
	"lard/internal/obs"
	"lard/internal/stats"
	"lard/internal/trace"
)

// Options configure one simulation run.
//
// The Progress/ProgressEvery/Interrupt/Timing fields are execution
// plumbing, not run identity: they are excluded from JSON encoding (and
// therefore from every resultstore content address — two runs that differ
// only in their observers are the same run) and must never change the
// simulated outcome.
//
// Identity fields carry explicit json tags spelling their Go names: the
// encoding predates the tags and existing content addresses are frozen,
// so the tags pin today's byte-exact encoding rather than restyle it.
// Every field must declare one side or the other; lard-lint's keyneutral
// check rejects untagged additions.
type Options struct {
	// Scheme is the LLC management scheme.
	Scheme coherence.Scheme `json:"Scheme"`
	// ASRLevel is ASR's replication probability level.
	ASRLevel float64 `json:"ASRLevel"`
	// Seed drives workload generation and ASR's lottery.
	Seed uint64 `json:"Seed"`
	// OpsScale scales per-core operation counts (1.0 = profile nominal).
	OpsScale float64 `json:"OpsScale"`
	// CheckInvariants enables the SWMR/inclusion checker.
	CheckInvariants bool `json:"CheckInvariants"`
	// TrackRuns enables the Figure-1 run-length tracker.
	TrackRuns bool `json:"TrackRuns"`
	// Progress, when non-nil, is invoked every ProgressEvery executed
	// memory operations with (operations retired, total operations), and
	// once more at completion with done == total. A nil Progress costs
	// nothing on the hot path.
	Progress func(done, total uint64) `json:"-"`
	// ProgressEvery is the Progress/Interrupt check cadence in executed
	// operations (0 = DefaultProgressEvery). Only consulted when Progress
	// or Interrupt is set.
	ProgressEvery uint64 `json:"-"`
	// Interrupt, when non-nil, aborts the run early: it is polled at the
	// ProgressEvery cadence and, once it is closed (or delivers), Run
	// returns nil instead of a Result. Wire a context's Done channel here
	// to make a simulation cancellable.
	Interrupt <-chan struct{} `json:"-"`
	// Timing, when non-nil, receives the run's wall-clock phase breakdown
	// (see Timing). Like the other observers it is key-neutral and costs
	// nothing on the per-operation hot path: phases are stamped only at
	// the four phase boundaries.
	Timing *Timing `json:"-"`
	// Telemetry, when non-nil, receives epoch-resolved counter samples at
	// the same checkEvery cadence as Progress/Interrupt (plus one final
	// sample, then Flush, on every exit path). Key-neutral like the other
	// observers, and result-neutral: sampling only reads counters the
	// engine and run loop already maintain.
	Telemetry *obs.Recorder `json:"-"`
}

// DefaultProgressEvery is the default Progress/Interrupt polling cadence,
// in executed memory operations: frequent enough that even scaled-down
// test runs report intermediate fractions, rare enough to stay invisible
// next to the per-operation simulation cost.
const DefaultProgressEvery = 4096

// Result is the outcome of one (benchmark, scheme) run.
type Result struct {
	// Benchmark and Scheme identify the run.
	Benchmark string
	Scheme    string
	// Cores is the simulated core count.
	Cores int
	// Ops is the total number of memory references executed.
	Ops uint64
	// CompletionTime is the parallel-region completion time (the slowest
	// core's finish cycle).
	CompletionTime mem.Cycles
	// Time is the per-core average latency breakdown; its Total() equals
	// the average per-core busy time and tracks CompletionTime.
	Time stats.TimeBreakdown
	// EnergyPJ is the per-component dynamic energy in picojoules.
	EnergyPJ [energy.NumComponents]float64
	// Miss counts accesses by service point.
	Miss stats.MissCounts
	// Runs is the Figure-1 histogram (nil unless TrackRuns).
	Runs *stats.RunLengthHist
	// PageReclassifications counts R-NUCA private->shared transitions.
	PageReclassifications uint64
}

// Clone returns an independent deep copy: mutating the clone (for example
// relabeling Scheme) never affects r. Result is a value struct except for
// the optional Runs histogram, which is copied.
func (r *Result) Clone() *Result {
	c := *r
	if r.Runs != nil {
		h := *r.Runs
		c.Runs = &h
	}
	return &c
}

// EnergyTotal returns the total dynamic energy in picojoules.
func (r *Result) EnergyTotal() float64 {
	var t float64
	for _, v := range r.EnergyPJ {
		t += v
	}
	return t
}

// sched is the event scheduler. The simulated cores are the only event
// sources and each has at most one pending wake-up, so the general
// container/heap priority queue this loop used to run was overkill — and
// its interface-typed Push/Pop boxed one allocation per simulated
// operation onto the hot path (~98% of the simulator's allocations). The
// concrete replacement keeps one next-wake time per core and selects the
// minimum with an ascending linear scan: for the supported core counts
// (≤64) that is a few cache lines, allocation-free, and free of virtual
// Less/Swap dispatch. The event order is bit-identical to the heap's: the
// heap ordered events by (time, then core id), and a strict-< scan in
// ascending core order realizes exactly that total order.
type sched struct {
	next   []mem.Cycles // per-core next wake time; schedIdle = no event
	active int          // number of cores with a pending wake-up
}

// schedIdle marks a core with no pending event. Real wake times grow by
// bounded per-operation latencies from zero and can never reach it.
const schedIdle = ^mem.Cycles(0)

// opChunk is the per-core trace window, in operations: large enough to
// amortize the refill call, small enough that 64 cores' windows stay
// cache-resident next to the simulator's own state.
const opChunk = 256

// newSched returns a scheduler with all n cores pending at time 0.
func newSched(n int) *sched {
	return &sched{next: make([]mem.Cycles, n), active: n}
}

// pop removes and returns the earliest pending (time, core) pair, lowest
// core id on ties. Only valid while active > 0.
func (s *sched) pop() (mem.Cycles, mem.CoreID) {
	best, t := 0, s.next[0]
	for i := 1; i < len(s.next); i++ {
		if s.next[i] < t {
			best, t = i, s.next[i]
		}
	}
	s.next[best] = schedIdle
	s.active--
	return t, mem.CoreID(best)
}

// push schedules core c's next wake-up at time t.
func (s *sched) push(t mem.Cycles, c mem.CoreID) {
	s.next[c] = t
	s.active++
}

// Run simulates profile p on configuration cfg and returns the aggregated
// result. Runs are deterministic for fixed inputs. When opt.Interrupt
// fires mid-run, Run stops at the next cadence check and returns nil — the
// only condition under which it does.
func Run(cfg *config.Config, p trace.Profile, opt Options) *Result {
	if opt.OpsScale == 0 {
		opt.OpsScale = 1
	}
	// Phase stamps touch the clock only at the four phase boundaries, so
	// an unset Timing costs nothing and a set one stays invisible next to
	// the per-operation simulation cost. Phases accumulate in a local
	// scratch copied out on every exit path, so an interrupted run still
	// reports the phases it completed.
	var tm Timing
	track := opt.Timing != nil
	var phaseStart time.Time
	if track {
		phaseStart = time.Now()
		tm.Start = phaseStart
	}
	lap := func(d *time.Duration) {
		if !track {
			return
		}
		now := time.Now()
		*d = now.Sub(phaseStart)
		phaseStart = now
	}
	eng := coherence.New(cfg, coherence.Options{
		Scheme:          opt.Scheme,
		ASRLevel:        opt.ASRLevel,
		Seed:            opt.Seed,
		CheckInvariants: opt.CheckInvariants,
		TrackRuns:       opt.TrackRuns,
	})
	lap(&tm.Setup)
	w := trace.Generate(p, cfg, opt.OpsScale, opt.Seed)
	lap(&tm.TraceDecode)

	n := cfg.Cores
	var (
		sch        = newSched(n)
		breakdown  = make([]stats.TimeBreakdown, n)
		miss       = make([]stats.MissCounts, n)
		finish     = make([]mem.Cycles, n)
		atBarrier  = make([]bool, n)
		arriveAt   = make([]mem.Cycles, n)
		running    = n
		waiting    = 0
		totalOps   uint64
		completion mem.Cycles
	)

	// Per-core chunk buffers: each stream refills a reusable window of
	// opChunk operations, so the steady-state loop reads the next operation
	// from a flat slice instead of paying a generator call per access. One
	// backing array serves all cores; pos==cnt marks an empty window.
	bufs := make([]trace.Op, n*opChunk)
	pos := make([]int, n)
	cnt := make([]int, n)

	// Progress/interrupt/telemetry cadence: checkEvery stays 0 when no
	// observer is wired, so the steady-state cost of this feature is one
	// integer compare per operation. Remaining() is exact here — the chunk
	// windows above are filled lazily, after this count.
	var checkEvery, targetOps uint64
	if opt.Progress != nil || opt.Interrupt != nil || opt.Telemetry != nil {
		checkEvery = opt.ProgressEvery
		if checkEvery == 0 {
			checkEvery = DefaultProgressEvery
		}
		for c := 0; c < n; c++ {
			targetOps += uint64(w.Streams[c].Remaining())
		}
	}

	// Telemetry setup happens once per run (allocation is fine here); the
	// per-sample path below reuses tscratch and never allocates.
	rec := opt.Telemetry
	var tscratch []uint64
	if rec != nil {
		rec.Start(telemetrySeries)
		tscratch = make([]uint64, len(telemetrySeries))
	}

	for sch.active > 0 {
		now, c := sch.pop()
		if pos[c] == cnt[c] {
			cnt[c] = w.Streams[c].Fill(bufs[int(c)*opChunk : (int(c)+1)*opChunk])
			pos[c] = 0
		}
		if cnt[c] == 0 {
			finish[c] = now
			running--
			completion = max(completion, now)
			// A finished core can no longer reach a barrier; if everyone
			// else is already waiting, release them.
			if waiting > 0 && waiting == running {
				releaseBarrier(sch, atBarrier, arriveAt, breakdown, &waiting)
			}
			continue
		}
		op := &bufs[int(c)*opChunk+pos[c]]
		pos[c]++
		if op.Barrier {
			atBarrier[c] = true
			arriveAt[c] = now
			waiting++
			if waiting == running {
				releaseBarrier(sch, atBarrier, arriveAt, breakdown, &waiting)
			}
			continue
		}
		t := now + mem.Cycles(op.Gap)
		breakdown[c][stats.Compute] += mem.Cycles(op.Gap)
		res := eng.Access(c, t, coherence.Op{
			Type:  op.Type,
			Line:  mem.LineOf(op.Addr),
			Class: op.Class,
		})
		breakdown[c].Add(res.Breakdown)
		miss[c][res.Miss]++
		totalOps++
		if checkEvery != 0 && totalOps%checkEvery == 0 {
			if opt.Interrupt != nil {
				select {
				case <-opt.Interrupt:
					if rec != nil {
						// Final sample + Flush: the partial timeline of an
						// interrupted run stays internally consistent.
						fillTelemetry(tscratch, eng, totalOps, breakdown, miss)
						rec.Sample(tscratch)
						rec.Flush()
					}
					if track {
						lap(&tm.CoherenceLoop)
						*opt.Timing = tm
					}
					return nil
				default:
				}
			}
			if opt.Progress != nil {
				opt.Progress(totalOps, targetOps)
			}
			if rec != nil {
				fillTelemetry(tscratch, eng, totalOps, breakdown, miss)
				rec.Sample(tscratch)
			}
		}
		sch.push(res.Done, c)
	}
	lap(&tm.CoherenceLoop)
	if rec != nil {
		// Final sample (a zero-delta epoch when the op count landed exactly
		// on the cadence) + Flush: after this, every counter series sums to
		// its final cumulative value — "ops" to Result.Ops, the miss series
		// to Result.Miss — which is the conservation the timeline tests pin.
		fillTelemetry(tscratch, eng, totalOps, breakdown, miss)
		rec.Sample(tscratch)
		rec.Flush()
	}

	r := &Result{
		Benchmark:             p.Name,
		Scheme:                schemeLabel(cfg, opt),
		Cores:                 n,
		Ops:                   totalOps,
		CompletionTime:        completion,
		EnergyPJ:              eng.Meter().Breakdown(),
		PageReclassifications: eng.PageReclassifications(),
	}
	for c := 0; c < n; c++ {
		r.Time.Add(breakdown[c])
		r.Miss.Add(miss[c])
	}
	// Per-core average breakdown (what Figure 7 stacks).
	for i := range r.Time {
		r.Time[i] /= mem.Cycles(n)
	}
	if opt.TrackRuns {
		r.Runs = eng.RunHistogram()
	}
	if opt.Progress != nil {
		opt.Progress(totalOps, targetOps)
	}
	if track {
		lap(&tm.Finalize)
		*opt.Timing = tm
	}
	return r
}

// releaseBarrier wakes every parked core at the latest arrival time,
// charging the wait to the Synchronization component.
func releaseBarrier(sch *sched, atBarrier []bool, arriveAt []mem.Cycles, breakdown []stats.TimeBreakdown, waiting *int) {
	var tmax mem.Cycles
	for c := range atBarrier {
		if atBarrier[c] {
			tmax = max(tmax, arriveAt[c])
		}
	}
	for c := range atBarrier {
		if atBarrier[c] {
			breakdown[c][stats.Synchronization] += tmax - arriveAt[c]
			atBarrier[c] = false
			sch.push(tmax, mem.CoreID(c))
		}
	}
	*waiting = 0
}

// schemeLabel renders the run's scheme the way the figures label it
// (RT-<threshold> for the locality-aware protocol), as declared by the
// scheme's registry descriptor.
func schemeLabel(cfg *config.Config, opt Options) string {
	return coherence.LabelFor(opt.Scheme, cfg)
}
