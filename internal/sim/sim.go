// Package sim executes a workload on the coherence engine: it interleaves
// the per-core streams in global event order (each core is the paper's
// in-order, single-issue, 1-IPC pipeline that blocks on its memory
// accesses), implements the barrier synchronization of the parallel region,
// and aggregates the §3.4 metrics: completion time and its breakdown, the
// energy breakdown, L1 miss types, and the Figure-1 run-length histogram.
package sim

import (
	"math/bits"
	"time"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/energy"
	"lard/internal/mem"
	"lard/internal/obs"
	"lard/internal/stats"
	"lard/internal/trace"
)

// Options configure one simulation run.
//
// The Progress/ProgressEvery/Interrupt/Timing fields are execution
// plumbing, not run identity: they are excluded from JSON encoding (and
// therefore from every resultstore content address — two runs that differ
// only in their observers are the same run) and must never change the
// simulated outcome.
//
// Identity fields carry explicit json tags spelling their Go names: the
// encoding predates the tags and existing content addresses are frozen,
// so the tags pin today's byte-exact encoding rather than restyle it.
// Every field must declare one side or the other; lard-lint's keyneutral
// check rejects untagged additions.
type Options struct {
	// Scheme is the LLC management scheme.
	Scheme coherence.Scheme `json:"Scheme"`
	// ASRLevel is ASR's replication probability level.
	ASRLevel float64 `json:"ASRLevel"`
	// Seed drives workload generation and ASR's lottery.
	Seed uint64 `json:"Seed"`
	// OpsScale scales per-core operation counts (1.0 = profile nominal).
	OpsScale float64 `json:"OpsScale"`
	// CheckInvariants enables the SWMR/inclusion checker.
	CheckInvariants bool `json:"CheckInvariants"`
	// TrackRuns enables the Figure-1 run-length tracker.
	TrackRuns bool `json:"TrackRuns"`
	// Workers is the intra-run parallelism width: the number of lanes the
	// conflict-aware scheduler may execute footprint-disjoint accesses on
	// (see parallel.go). 0 and 1 run the classic sequential loop. The
	// outcome is identical at every width by construction — results commit
	// in canonical (time, core) order and only provably-commuting accesses
	// overlap — so the knob is execution plumbing, not run identity, and is
	// excluded from result keys like the observers above. Negative values
	// panic: a caller that computed a width got it wrong, and silently
	// running sequential would hide the bug. Configurations outside the
	// footprint analysis (ASR's eviction lottery, cluster replication,
	// TLH-LRU hints, the lookup oracle and ablations, invariant checking)
	// fall back to the sequential loop regardless of Workers.
	Workers int `json:"-"`
	// Progress, when non-nil, is invoked every ProgressEvery executed
	// memory operations with (operations retired, total operations), and
	// once more at completion with done == total. A nil Progress costs
	// nothing on the hot path.
	Progress func(done, total uint64) `json:"-"`
	// ProgressEvery is the Progress/Interrupt check cadence in executed
	// operations (0 = DefaultProgressEvery). Only consulted when Progress
	// or Interrupt is set.
	ProgressEvery uint64 `json:"-"`
	// Interrupt, when non-nil, aborts the run early: it is polled at the
	// ProgressEvery cadence and, once it is closed (or delivers), Run
	// returns nil instead of a Result. Wire a context's Done channel here
	// to make a simulation cancellable.
	Interrupt <-chan struct{} `json:"-"`
	// Timing, when non-nil, receives the run's wall-clock phase breakdown
	// (see Timing). Like the other observers it is key-neutral and costs
	// nothing on the per-operation hot path: phases are stamped only at
	// the four phase boundaries.
	Timing *Timing `json:"-"`
	// Telemetry, when non-nil, receives epoch-resolved counter samples at
	// the same checkEvery cadence as Progress/Interrupt (plus one final
	// sample, then Flush, on every exit path). Key-neutral like the other
	// observers, and result-neutral: sampling only reads counters the
	// engine and run loop already maintain.
	Telemetry *obs.Recorder `json:"-"`
}

// DefaultProgressEvery is the default Progress/Interrupt polling cadence,
// in executed memory operations: frequent enough that even scaled-down
// test runs report intermediate fractions, rare enough to stay invisible
// next to the per-operation simulation cost.
const DefaultProgressEvery = 4096

// Result is the outcome of one (benchmark, scheme) run.
type Result struct {
	// Benchmark and Scheme identify the run.
	Benchmark string
	Scheme    string
	// Cores is the simulated core count.
	Cores int
	// Ops is the total number of memory references executed.
	Ops uint64
	// CompletionTime is the parallel-region completion time (the slowest
	// core's finish cycle).
	CompletionTime mem.Cycles
	// Time is the per-core average latency breakdown; its Total() equals
	// the average per-core busy time and tracks CompletionTime.
	Time stats.TimeBreakdown
	// EnergyPJ is the per-component dynamic energy in picojoules.
	EnergyPJ [energy.NumComponents]float64
	// Miss counts accesses by service point.
	Miss stats.MissCounts
	// Runs is the Figure-1 histogram (nil unless TrackRuns).
	Runs *stats.RunLengthHist
	// PageReclassifications counts R-NUCA private->shared transitions.
	PageReclassifications uint64
	// Parallel is the intra-run scheduler's efficiency telemetry (all zero
	// on sequential runs). Excluded from the JSON encoding on purpose: the
	// golden suite hashes Result's canonical JSON to pin that worker count
	// never changes a simulated outcome, and these counters describe the
	// execution strategy, not the outcome.
	Parallel ParallelStats `json:"-"`
}

// ParallelStats counts the parallel access scheduler's work: scheduling
// rounds, candidate deferrals (footprint conflicts plus lookahead-guard
// holds), and committed accesses. Commits/Rounds is the achieved per-round
// parallelism.
type ParallelStats struct {
	Rounds    uint64
	Conflicts uint64
	Commits   uint64
}

// Clone returns an independent deep copy: mutating the clone (for example
// relabeling Scheme) never affects r. Result is a value struct except for
// the optional Runs histogram, which is copied.
func (r *Result) Clone() *Result {
	c := *r
	if r.Runs != nil {
		h := *r.Runs
		c.Runs = &h
	}
	return &c
}

// EnergyTotal returns the total dynamic energy in picojoules.
func (r *Result) EnergyTotal() float64 {
	var t float64
	for _, v := range r.EnergyPJ {
		t += v
	}
	return t
}

// sched is the event scheduler. The simulated cores are the only event
// sources and each has at most one pending wake-up, so the general
// container/heap priority queue this loop used to run was overkill — and
// its interface-typed Push/Pop boxed one allocation per simulated
// operation onto the hot path (~98% of the simulator's allocations). The
// concrete replacement keeps one next-wake time per core and selects the
// minimum with an ascending linear scan: for the supported core counts
// (≤64) that is a few cache lines, allocation-free, and free of virtual
// Less/Swap dispatch. The event order is bit-identical to the heap's: the
// heap ordered events by (time, then core id), and a strict-< scan in
// ascending core order realizes exactly that total order.
type sched struct {
	next []mem.Cycles // per-core next wake time; schedIdle = no event
	// pending has bit c set while core c has a wake-up queued, so pop's
	// min-scan walks only the cores that can win instead of comparing
	// every idle lane's schedIdle sentinel. Core counts are capped at 64
	// (directory.MaxCores), so one word always suffices.
	pending uint64
	active  int // number of cores with a pending wake-up
}

// schedIdle marks a core with no pending event. Real wake times grow by
// bounded per-operation latencies from zero and can never reach it.
const schedIdle = ^mem.Cycles(0)

// opChunk is the per-core trace window, in operations: large enough to
// amortize the refill call, small enough that 64 cores' windows stay
// cache-resident next to the simulator's own state.
const opChunk = 256

// newSched returns a scheduler with all n cores pending at time 0.
func newSched(n int) *sched {
	pending := ^uint64(0)
	if n < 64 {
		pending = uint64(1)<<uint(n) - 1
	}
	return &sched{next: make([]mem.Cycles, n), pending: pending, active: n}
}

// pop removes and returns the earliest pending (time, core) pair, lowest
// core id on ties. Only valid while active > 0. Iterating the pending
// bits in ascending order with a strict < preserves the lowest-core
// tie-break of the full scan.
func (s *sched) pop() (mem.Cycles, mem.CoreID) {
	b := s.pending
	best := bits.TrailingZeros64(b)
	t := s.next[best]
	for b &= b - 1; b != 0; b &= b - 1 {
		i := bits.TrailingZeros64(b)
		if s.next[i] < t {
			best, t = i, s.next[i]
		}
	}
	s.pending &^= uint64(1) << uint(best)
	s.next[best] = schedIdle
	s.active--
	return t, mem.CoreID(best)
}

// push schedules core c's next wake-up at time t.
func (s *sched) push(t mem.Cycles, c mem.CoreID) {
	s.next[c] = t
	s.pending |= uint64(1) << uint(c)
	s.active++
}

// Run simulates profile p on configuration cfg and returns the aggregated
// result. Runs are deterministic for fixed inputs. When opt.Interrupt
// fires mid-run, Run stops at the next cadence check and returns nil — the
// only condition under which it does.
func Run(cfg *config.Config, p trace.Profile, opt Options) *Result {
	if opt.OpsScale == 0 {
		opt.OpsScale = 1
	}
	// Phase stamps touch the clock only at the four phase boundaries, so
	// an unset Timing costs nothing and a set one stays invisible next to
	// the per-operation simulation cost. Phases accumulate in a local
	// scratch copied out on every exit path, so an interrupted run still
	// reports the phases it completed.
	var tm Timing
	track := opt.Timing != nil
	var phaseStart time.Time
	if track {
		phaseStart = time.Now()
		tm.Start = phaseStart
	}
	lap := func(d *time.Duration) {
		if !track {
			return
		}
		now := time.Now()
		*d = now.Sub(phaseStart)
		phaseStart = now
	}
	eng := coherence.New(cfg, coherence.Options{
		Scheme:          opt.Scheme,
		ASRLevel:        opt.ASRLevel,
		Seed:            opt.Seed,
		CheckInvariants: opt.CheckInvariants,
		TrackRuns:       opt.TrackRuns,
	})
	lap(&tm.Setup)
	w := trace.Generate(p, cfg, opt.OpsScale, opt.Seed)
	lap(&tm.TraceDecode)

	if opt.Workers < 0 {
		panic("sim: Options.Workers must be non-negative")
	}

	n := cfg.Cores
	st := &runState{
		opt: &opt,
		eng: eng,
		w:   w,
		n:   n,
		sch: newSched(n),

		breakdown: make([]stats.TimeBreakdown, n),
		miss:      make([]stats.MissCounts, n),
		finish:    make([]mem.Cycles, n),
		atBarrier: make([]bool, n),
		arriveAt:  make([]mem.Cycles, n),
		running:   n,

		// Per-core chunk buffers: each stream refills a reusable window of
		// opChunk operations, so the steady-state loop reads the next
		// operation from a flat slice instead of paying a generator call per
		// access. One backing array serves all cores; pos==cnt marks an
		// empty window.
		bufs: make([]trace.Op, n*opChunk),
		pos:  make([]int, n),
		cnt:  make([]int, n),
	}

	// Progress/interrupt/telemetry cadence: checkEvery stays 0 when no
	// observer is wired, so the steady-state cost of this feature is one
	// predictable branch per operation (checkLeft counts down and resets,
	// sparing the hot path a modulo). Remaining() is exact here — the chunk
	// windows above are filled lazily, after this count.
	if opt.Progress != nil || opt.Interrupt != nil || opt.Telemetry != nil {
		st.checkEvery = opt.ProgressEvery
		if st.checkEvery == 0 {
			st.checkEvery = DefaultProgressEvery
		}
		st.checkLeft = st.checkEvery
		for c := 0; c < n; c++ {
			st.targetOps += uint64(w.Streams[c].Remaining())
		}
	}

	// Telemetry setup happens once per run (allocation is fine here); the
	// per-sample path reuses tscratch and never allocates.
	if opt.Telemetry != nil {
		st.rec = opt.Telemetry
		st.rec.Start(telemetrySeries)
		st.tscratch = make([]uint64, len(telemetrySeries))
	}

	var interrupted bool
	if opt.Workers > 1 && n > 1 && eng.ParallelSafe() {
		interrupted = st.runParallel(opt.Workers)
	} else {
		interrupted = st.runSequential()
	}
	if interrupted {
		if st.rec != nil {
			// Final sample + Flush: the partial timeline of an interrupted
			// run stays internally consistent.
			st.sampleTelemetry()
			st.rec.Flush()
		}
		if track {
			lap(&tm.CoherenceLoop)
			*opt.Timing = tm
		}
		return nil
	}
	lap(&tm.CoherenceLoop)
	if st.rec != nil {
		// Final sample (a zero-delta epoch when the op count landed exactly
		// on the cadence) + Flush: after this, every counter series sums to
		// its final cumulative value — "ops" to Result.Ops, the miss series
		// to Result.Miss — which is the conservation the timeline tests pin.
		st.sampleTelemetry()
		st.rec.Flush()
	}

	r := &Result{
		Benchmark:             p.Name,
		Scheme:                schemeLabel(cfg, opt),
		Cores:                 n,
		Ops:                   st.totalOps,
		CompletionTime:        st.completion,
		EnergyPJ:              eng.Meter().Breakdown(),
		PageReclassifications: eng.PageReclassifications(),
		Parallel: ParallelStats{
			Rounds:    st.par.rounds,
			Conflicts: st.par.conflicts,
			Commits:   st.par.commits,
		},
	}
	for c := 0; c < n; c++ {
		r.Time.Add(st.breakdown[c])
		r.Miss.Add(st.miss[c])
	}
	// Per-core average breakdown (what Figure 7 stacks).
	for i := range r.Time {
		r.Time[i] /= mem.Cycles(n)
	}
	if opt.TrackRuns {
		r.Runs = eng.RunHistogram()
	}
	if opt.Progress != nil {
		opt.Progress(st.totalOps, st.targetOps)
	}
	if track {
		lap(&tm.Finalize)
		*opt.Timing = tm
	}
	return r
}

// runState is the mutable state of one run, shared by the sequential event
// loop and the parallel round scheduler (parallel.go). Both drive the same
// per-core aggregates through the same commit path, which is what makes
// their outcomes identical by construction.
type runState struct {
	opt *Options
	eng *coherence.Engine
	w   *trace.Workload
	n   int

	sch        *sched
	breakdown  []stats.TimeBreakdown
	miss       []stats.MissCounts
	finish     []mem.Cycles
	atBarrier  []bool
	arriveAt   []mem.Cycles
	running    int
	waiting    int
	totalOps   uint64
	completion mem.Cycles

	bufs []trace.Op
	pos  []int
	cnt  []int

	checkEvery uint64
	checkLeft  uint64
	targetOps  uint64

	rec      *obs.Recorder
	tscratch []uint64

	par parStats
}

// runSequential is the classic single-threaded event loop: strict global
// (time, core) order, one access at a time. It returns true when the run
// was interrupted.
func (st *runState) runSequential() (interrupted bool) {
	sch, bufs, pos, cnt := st.sch, st.bufs, st.pos, st.cnt
	for sch.active > 0 {
		now, c := sch.pop()
		if pos[c] == cnt[c] {
			cnt[c] = st.w.Streams[c].Fill(bufs[int(c)*opChunk : (int(c)+1)*opChunk])
			pos[c] = 0
		}
		if cnt[c] == 0 {
			st.coreFinished(c, now)
			continue
		}
		op := &bufs[int(c)*opChunk+pos[c]]
		pos[c]++
		if op.Barrier {
			st.coreAtBarrier(c, now)
			continue
		}
		t := now + mem.Cycles(op.Gap)
		res := st.eng.Access(c, t, coherence.Op{
			Type:  op.Type,
			Line:  mem.LineOf(op.Addr),
			Class: op.Class,
		})
		if st.commit(c, mem.Cycles(op.Gap), res) {
			return true
		}
	}
	return false
}

// coreFinished retires a drained core. A finished core can no longer reach
// a barrier; if everyone else is already waiting, release them.
func (st *runState) coreFinished(c mem.CoreID, now mem.Cycles) {
	st.finish[c] = now
	st.running--
	st.completion = max(st.completion, now)
	if st.waiting > 0 && st.waiting == st.running {
		releaseBarrier(st.sch, st.atBarrier, st.arriveAt, st.breakdown, &st.waiting)
	}
}

// coreAtBarrier parks a core at the barrier, releasing everyone when it is
// the last runner to arrive.
func (st *runState) coreAtBarrier(c mem.CoreID, now mem.Cycles) {
	st.atBarrier[c] = true
	st.arriveAt[c] = now
	st.waiting++
	if st.waiting == st.running {
		releaseBarrier(st.sch, st.atBarrier, st.arriveAt, st.breakdown, &st.waiting)
	}
}

// commit applies one executed access to the run aggregates and reschedules
// the core. This is the single commit path of both execution modes: the
// parallel scheduler calls it in canonical (time, core) order, so cadence
// work (progress, interrupt polling, telemetry epochs) happens at the same
// operation counts as a sequential run. It returns true when the run was
// interrupted.
func (st *runState) commit(c mem.CoreID, gap mem.Cycles, res coherence.AccessResult) (stop bool) {
	return st.commitStep(c, gap, res, true)
}

// commitStep is commit with the reschedule made optional: the parallel
// scheduler's L1-hit chains consume a core's intermediate wake events
// inside one round, so only a chain's final step pushes the core's next
// event — exactly the scheduler state a sequential run would have left.
func (st *runState) commitStep(c mem.CoreID, gap mem.Cycles, res coherence.AccessResult, resched bool) (stop bool) {
	st.breakdown[c][stats.Compute] += gap
	st.breakdown[c].Add(res.Breakdown)
	st.miss[c][res.Miss]++
	st.totalOps++
	if st.checkEvery != 0 {
		st.checkLeft--
		if st.checkLeft == 0 {
			st.checkLeft = st.checkEvery
			if st.opt.Interrupt != nil {
				select {
				case <-st.opt.Interrupt:
					return true
				default:
				}
			}
			if st.opt.Progress != nil {
				st.opt.Progress(st.totalOps, st.targetOps)
			}
			if st.rec != nil {
				st.sampleTelemetry()
			}
		}
	}
	if resched {
		st.sch.push(res.Done, c)
	}
	return false
}

// sampleTelemetry records one epoch sample from the run's live counters.
func (st *runState) sampleTelemetry() {
	fillTelemetry(st.tscratch, st.eng, st.totalOps, st.breakdown, st.miss, &st.par)
	st.rec.Sample(st.tscratch)
}

// releaseBarrier wakes every parked core at the latest arrival time,
// charging the wait to the Synchronization component.
func releaseBarrier(sch *sched, atBarrier []bool, arriveAt []mem.Cycles, breakdown []stats.TimeBreakdown, waiting *int) {
	var tmax mem.Cycles
	for c := range atBarrier {
		if atBarrier[c] {
			tmax = max(tmax, arriveAt[c])
		}
	}
	for c := range atBarrier {
		if atBarrier[c] {
			breakdown[c][stats.Synchronization] += tmax - arriveAt[c]
			atBarrier[c] = false
			sch.push(tmax, mem.CoreID(c))
		}
	}
	*waiting = 0
}

// schemeLabel renders the run's scheme the way the figures label it
// (RT-<threshold> for the locality-aware protocol), as declared by the
// scheme's registry descriptor.
func schemeLabel(cfg *config.Config, opt Options) string {
	return coherence.LabelFor(opt.Scheme, cfg)
}
