package sim

import (
	"runtime"
	"testing"
	"time"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/trace"
)

// TestParallelCancelRace churns the worker lanes against asynchronous
// interrupts: repeated parallel runs are cut short at varying points (and
// sometimes not at all) while lane goroutines are live, exercising the
// abort path's lane shutdown under the race detector. GOMAXPROCS is raised
// so the scheduler actually fans out on single-CPU hosts.
func TestParallelCancelRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p, err := trace.ProfileByName("DEDUP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Small()
	cfg.RT = 3
	for i := 0; i < 24; i++ {
		stop := make(chan struct{})
		if delay := time.Duration(i%8) * 150 * time.Microsecond; i%8 != 7 {
			// i%8 == 7 leaves the run uninterrupted end to end.
			go func() {
				time.Sleep(delay)
				close(stop)
			}()
		}
		res := Run(cfg, p, Options{
			Scheme:        coherence.LocalityAware,
			OpsScale:      0.05,
			Workers:       4,
			ProgressEvery: 128,
			Interrupt:     stop,
		})
		if i%8 == 7 && res == nil {
			t.Fatal("uninterrupted run returned nil")
		}
		if res != nil && res.Ops == 0 {
			t.Fatal("completed run recorded no ops")
		}
	}
}

// TestParallelWorkersIdentical pins the scheduler's determinism contract at
// the package level: the same run through 1, 2, 3 and 4 lanes produces
// field-identical results (the top-level golden grid pins the hashes; this
// covers a scheme/width combination per push without the full grid).
func TestParallelWorkersIdentical(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	p, err := trace.ProfileByName("FERRET")
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Small()
	cfg.RT = 3
	base := Run(cfg, p, Options{Scheme: coherence.LocalityAware, OpsScale: 0.05, TrackRuns: true})
	for _, w := range []int{2, 3, 4} {
		r := Run(cfg, p, Options{Scheme: coherence.LocalityAware, OpsScale: 0.05, TrackRuns: true, Workers: w})
		if r.CompletionTime != base.CompletionTime || r.Ops != base.Ops ||
			r.EnergyTotal() != base.EnergyTotal() {
			t.Fatalf("workers=%d diverged: completion %d vs %d, ops %d vs %d",
				w, r.CompletionTime, base.CompletionTime, r.Ops, base.Ops)
		}
	}
}
