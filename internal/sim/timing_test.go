package sim

import (
	"testing"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/trace"
)

// TestTimingFilled checks the phase breakdown side channel: a run with a
// Timing wired fills every phase (the coherence loop dominating), and the
// phases partition the run's wall time.
func TestTimingFilled(t *testing.T) {
	var tm Timing
	r := runSmall(t, coherence.LocalityAware, "BARNES", Options{Timing: &tm})
	if r == nil {
		t.Fatal("run returned nil")
	}
	if tm.Start.IsZero() {
		t.Error("Timing.Start not stamped")
	}
	if tm.CoherenceLoop <= 0 {
		t.Errorf("CoherenceLoop = %v, want > 0", tm.CoherenceLoop)
	}
	if tm.Setup < 0 || tm.TraceDecode < 0 || tm.Finalize < 0 {
		t.Errorf("negative phase: %+v", tm)
	}
	if tm.Total() <= 0 || tm.Total() < tm.CoherenceLoop {
		t.Errorf("Total() = %v inconsistent with phases %+v", tm.Total(), tm)
	}
}

// TestTimingIsKeyNeutralAndDeterministic checks that wiring a Timing
// changes nothing about the simulated outcome: the result is identical to
// an unobserved run, field for field.
func TestTimingIsKeyNeutralAndDeterministic(t *testing.T) {
	bare := runSmall(t, coherence.LocalityAware, "DEDUP", Options{Seed: 7})
	var tm Timing
	timed := runSmall(t, coherence.LocalityAware, "DEDUP", Options{Seed: 7, Timing: &tm})
	if *bare != *timed {
		t.Errorf("timed run diverged from bare run:\nbare  %+v\ntimed %+v", bare, timed)
	}
	if tm.CoherenceLoop <= 0 {
		t.Error("Timing not filled")
	}
}

// TestTimingOnInterrupt checks that an interrupted run still reports the
// phases it completed, with the partial loop time in CoherenceLoop.
func TestTimingOnInterrupt(t *testing.T) {
	p, err := trace.ProfileByName("BARNES")
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan struct{})
	close(ch)
	var tm Timing
	r := Run(config.Small(), p, Options{
		Scheme:        coherence.SNUCA,
		OpsScale:      0.05,
		Interrupt:     ch,
		ProgressEvery: 64,
		Timing:        &tm,
	})
	if r != nil {
		t.Fatal("closed interrupt did not abort the run")
	}
	if tm.Start.IsZero() || tm.TraceDecode <= 0 {
		t.Errorf("interrupted run lost early phases: %+v", tm)
	}
	if tm.Finalize != 0 {
		t.Errorf("interrupted run claims a finalize phase: %+v", tm)
	}
}
