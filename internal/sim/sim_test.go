package sim

import (
	"testing"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/mem"
	"lard/internal/stats"
	"lard/internal/trace"
)

func runSmall(t *testing.T, scheme coherence.Scheme, bench string, opt Options) *Result {
	t.Helper()
	p, err := trace.ProfileByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	opt.Scheme = scheme
	if opt.OpsScale == 0 {
		opt.OpsScale = 0.05
	}
	return Run(config.Small(), p, opt)
}

func TestRunBasics(t *testing.T) {
	r := runSmall(t, coherence.SNUCA, "BARNES", Options{CheckInvariants: true})
	if r.Benchmark != "BARNES" || r.Scheme != "S-NUCA" {
		t.Fatalf("labels: %q/%q", r.Benchmark, r.Scheme)
	}
	if r.Cores != 16 {
		t.Fatalf("Cores = %d", r.Cores)
	}
	if r.CompletionTime == 0 || r.Ops == 0 {
		t.Fatal("empty result")
	}
	if r.EnergyTotal() <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestSchemeLabels(t *testing.T) {
	cases := []struct {
		scheme coherence.Scheme
		rt     int
		want   string
	}{
		{coherence.SNUCA, 0, "S-NUCA"},
		{coherence.RNUCA, 0, "R-NUCA"},
		{coherence.VR, 0, "VR"},
		{coherence.ASR, 0, "ASR"},
		{coherence.LocalityAware, 3, "RT-3"},
		{coherence.LocalityAware, 8, "RT-8"},
	}
	p, _ := trace.ProfileByName("DEDUP")
	for _, c := range cases {
		cfg := config.Small()
		if c.rt > 0 {
			cfg.RT = c.rt
		}
		r := Run(cfg, p, Options{Scheme: c.scheme, OpsScale: 0.01})
		if r.Scheme != c.want {
			t.Errorf("label = %q, want %q", r.Scheme, c.want)
		}
	}
}

// TestOpsAccounting: every generated memory op executes exactly once.
func TestOpsAccounting(t *testing.T) {
	p, _ := trace.ProfileByName("FERRET")
	cfg := config.Small()
	r := Run(cfg, p, Options{Scheme: coherence.RNUCA, OpsScale: 0.05})
	want := uint64(0)
	w := trace.Generate(p, cfg, 0.05, 0)
	for _, s := range w.Streams {
		want += uint64(s.Remaining())
	}
	if r.Ops != want {
		t.Fatalf("Ops = %d, want %d", r.Ops, want)
	}
	var missSum uint64
	for _, v := range r.Miss {
		missSum += v
	}
	if missSum != want {
		t.Fatalf("miss counts sum to %d, want %d", missSum, want)
	}
}

// TestBreakdownTracksCompletion: the per-core average breakdown total is
// close to the completion time (equal up to load imbalance at the end).
func TestBreakdownTracksCompletion(t *testing.T) {
	r := runSmall(t, coherence.LocalityAware, "BARNES", Options{OpsScale: 0.1})
	total := r.Time.Total()
	if total > r.CompletionTime {
		t.Fatalf("average busy time %d exceeds completion %d", total, r.CompletionTime)
	}
	if float64(total) < 0.8*float64(r.CompletionTime) {
		t.Fatalf("average busy time %d far below completion %d (accounting leak)",
			total, r.CompletionTime)
	}
}

// TestBarrierSynchronization: barriers charge Synchronization time.
func TestBarrierSynchronization(t *testing.T) {
	r := runSmall(t, coherence.SNUCA, "BARNES", Options{OpsScale: 0.1})
	if r.Time[stats.Synchronization] == 0 {
		t.Fatal("barrier profile must record synchronization time")
	}
}

// TestDeterministicRuns: same inputs, same results.
func TestDeterministicRuns(t *testing.T) {
	a := runSmall(t, coherence.LocalityAware, "STREAMCLUS.", Options{Seed: 3})
	b := runSmall(t, coherence.LocalityAware, "STREAMCLUS.", Options{Seed: 3})
	if a.CompletionTime != b.CompletionTime || a.EnergyTotal() != b.EnergyTotal() {
		t.Fatalf("non-deterministic: %d/%v vs %d/%v",
			a.CompletionTime, a.EnergyTotal(), b.CompletionTime, b.EnergyTotal())
	}
}

// TestTrackRuns: the Figure-1 histogram accounts every LLC access.
func TestTrackRuns(t *testing.T) {
	r := runSmall(t, coherence.SNUCA, "BARNES", Options{TrackRuns: true, OpsScale: 0.1})
	if r.Runs == nil {
		t.Fatal("TrackRuns must produce a histogram")
	}
	llcAccesses := r.Miss[stats.LLCHomeHit] + r.Miss[stats.OffChipMiss] + r.Miss[stats.LLCReplicaHit]
	if got := r.Runs.Total(); got != llcAccesses {
		t.Fatalf("histogram total %d != LLC accesses %d", got, llcAccesses)
	}
	// BARNES: shared read-write accesses dominate (Figure 1).
	rw := r.Runs.Share(mem.ClassSharedRW, stats.Run1to2) +
		r.Runs.Share(mem.ClassSharedRW, stats.Run3to9) +
		r.Runs.Share(mem.ClassSharedRW, stats.Run10plus)
	if rw < 0.5 {
		t.Errorf("BARNES shared-rw share of LLC accesses = %.2f, want > 0.5", rw)
	}
}

// TestSchemesFunctionallyEquivalentOpsServed: every scheme serves the same
// op count for the same workload (they differ only in where).
func TestSchemesSameOps(t *testing.T) {
	var ops []uint64
	for _, s := range []coherence.Scheme{coherence.SNUCA, coherence.RNUCA, coherence.VR, coherence.ASR, coherence.LocalityAware} {
		r := runSmall(t, s, "WATER-NSQ", Options{CheckInvariants: true})
		ops = append(ops, r.Ops)
	}
	for i := 1; i < len(ops); i++ {
		if ops[i] != ops[0] {
			t.Fatalf("op counts differ across schemes: %v", ops)
		}
	}
}

// TestProgressCallback pins the progress contract: monotone non-decreasing
// done counts at the configured cadence, at least one strictly-interior
// report, a final done == total report, and a result identical to the same
// run without an observer (progress must never perturb the simulation).
func TestProgressCallback(t *testing.T) {
	type report struct{ done, total uint64 }
	var reports []report
	opt := Options{
		OpsScale:      0.05,
		ProgressEvery: 64,
		Progress:      func(done, total uint64) { reports = append(reports, report{done, total}) },
	}
	r := runSmall(t, coherence.SNUCA, "BARNES", opt)
	if r == nil {
		t.Fatal("run with progress returned nil")
	}
	if len(reports) < 2 {
		t.Fatalf("got %d progress reports, want at least an interior one and a final one", len(reports))
	}
	total := reports[0].total
	if total == 0 {
		t.Fatal("progress total is zero")
	}
	interior := false
	for i, rep := range reports {
		if rep.total != total {
			t.Fatalf("report %d changed total: %d -> %d", i, total, rep.total)
		}
		if i > 0 && rep.done < reports[i-1].done {
			t.Fatalf("report %d went backwards: %d after %d", i, rep.done, reports[i-1].done)
		}
		if rep.done > 0 && rep.done < total {
			interior = true
		}
	}
	if !interior {
		t.Fatal("no strictly-interior progress report")
	}
	last := reports[len(reports)-1]
	if last.done != total || last.done != r.Ops {
		t.Fatalf("final report %d/%d, want done == total == Ops (%d)", last.done, total, r.Ops)
	}

	bare := runSmall(t, coherence.SNUCA, "BARNES", Options{OpsScale: 0.05})
	if bare.CompletionTime != r.CompletionTime || bare.Ops != r.Ops {
		t.Fatalf("progress observer changed the run: %d/%d vs %d/%d ops/cycles",
			r.Ops, r.CompletionTime, bare.Ops, bare.CompletionTime)
	}
}

// TestInterrupt pins cancellation: a fired Interrupt channel makes Run
// return nil at the next cadence check instead of finishing the workload.
func TestInterrupt(t *testing.T) {
	stop := make(chan struct{})
	fired := false
	opt := Options{
		OpsScale:      0.05,
		ProgressEvery: 64,
		Interrupt:     stop,
		Progress: func(done, total uint64) {
			if !fired && done >= 64 && done < total {
				fired = true
				close(stop)
			}
		},
	}
	if r := runSmall(t, coherence.SNUCA, "BARNES", opt); r != nil {
		t.Fatalf("interrupted run returned a result (%d ops)", r.Ops)
	}
	if !fired {
		t.Fatal("test never armed the interrupt")
	}
}
