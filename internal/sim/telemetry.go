package sim

import (
	"lard/internal/coherence"
	"lard/internal/obs"
	"lard/internal/stats"
)

// telemetrySeries declares the epoch series every run records when
// Options.Telemetry is wired: the operation count and per-service-point
// miss counts the simulator already aggregates, the coherence engine's
// replica/classifier counters, the live directory population, and the
// per-component cycle totals behind the Figure-7 breakdown. All are
// cumulative at sampling time (directory_entries is a level); the
// Recorder differences counters into per-epoch deltas.
var telemetrySeries = []obs.SeriesDef{
	{Name: "ops", Kind: obs.Counter},
	{Name: "miss_l1_hit", Kind: obs.Counter},
	{Name: "miss_llc_replica_hit", Kind: obs.Counter},
	{Name: "miss_llc_home_hit", Kind: obs.Counter},
	{Name: "miss_offchip", Kind: obs.Counter},
	{Name: "replications", Kind: obs.Counter},
	{Name: "replica_evictions", Kind: obs.Counter},
	{Name: "invalidations", Kind: obs.Counter},
	{Name: "classifier_promotions", Kind: obs.Counter},
	{Name: "classifier_demotions", Kind: obs.Counter},
	{Name: "directory_entries", Kind: obs.Gauge},
	{Name: "cycles_compute", Kind: obs.Counter},
	{Name: "cycles_l1_to_llc_replica", Kind: obs.Counter},
	{Name: "cycles_l1_to_llc_home", Kind: obs.Counter},
	{Name: "cycles_llc_home_waiting", Kind: obs.Counter},
	{Name: "cycles_llc_home_to_sharers", Kind: obs.Counter},
	{Name: "cycles_llc_home_to_offchip", Kind: obs.Counter},
	{Name: "cycles_synchronization", Kind: obs.Counter},
	// Parallel-scheduler efficiency counters (all zero on sequential runs):
	// rounds scheduled, candidate accesses deferred by footprint conflicts,
	// and accesses committed through parallel rounds. commits/rounds is the
	// achieved per-round parallelism; conflicts/(commits+conflicts) the
	// conflict rate.
	{Name: "parallel_rounds", Kind: obs.Counter},
	{Name: "parallel_conflicts", Kind: obs.Counter},
	{Name: "parallel_commits", Kind: obs.Counter},
}

// fillTelemetry writes the current cumulative counter values into
// scratch, in telemetrySeries order. It runs at epoch boundaries only
// (the checkEvery cadence) and never allocates: scratch is preallocated
// once per run, and everything read is either a field the engine already
// maintains or a sum over the per-core arrays the run loop owns.
func fillTelemetry(scratch []uint64, eng *coherence.Engine, totalOps uint64, breakdown []stats.TimeBreakdown, miss []stats.MissCounts, par *parStats) {
	var m stats.MissCounts
	for c := range miss {
		m.Add(miss[c])
	}
	var cyc stats.TimeBreakdown
	for c := range breakdown {
		cyc.Add(breakdown[c])
	}
	ct := eng.Telemetry()

	scratch[0] = totalOps
	scratch[1] = m[stats.L1Hit]
	scratch[2] = m[stats.LLCReplicaHit]
	scratch[3] = m[stats.LLCHomeHit]
	scratch[4] = m[stats.OffChipMiss]
	scratch[5] = ct.Replications
	scratch[6] = ct.ReplicaEvictions
	scratch[7] = ct.Invalidations
	scratch[8] = ct.ClassifierPromotions
	scratch[9] = ct.ClassifierDemotions
	scratch[10] = ct.DirectoryEntries
	scratch[11] = uint64(cyc[stats.Compute])
	scratch[12] = uint64(cyc[stats.L1ToLLCReplica])
	scratch[13] = uint64(cyc[stats.L1ToLLCHome])
	scratch[14] = uint64(cyc[stats.LLCHomeWaiting])
	scratch[15] = uint64(cyc[stats.LLCHomeToSharers])
	scratch[16] = uint64(cyc[stats.LLCHomeToOffChip])
	scratch[17] = uint64(cyc[stats.Synchronization])
	scratch[18] = par.rounds
	scratch[19] = par.conflicts
	scratch[20] = par.commits
}
