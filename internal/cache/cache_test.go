package cache

import (
	"testing"
	"testing/quick"

	"lard/internal/mem"
)

type meta struct{ tag int }

func newTestCache(lines, ways int) *Cache[meta] { return New[meta](lines, ways) }

func TestNewPanics(t *testing.T) {
	cases := []struct{ lines, ways int }{
		{0, 1}, {-8, 2}, {7, 2}, {8, 3}, {24, 4}, // 24/4 = 6 sets, not power of two
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) must panic", c.lines, c.ways)
				}
			}()
			New[meta](c.lines, c.ways)
		}()
	}
}

func TestGeometry(t *testing.T) {
	c := newTestCache(64, 4)
	if c.Sets() != 16 || c.Ways() != 4 || c.Capacity() != 64 {
		t.Fatalf("geometry: sets=%d ways=%d cap=%d", c.Sets(), c.Ways(), c.Capacity())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := newTestCache(64, 4)
	if c.Lookup(42) != nil {
		t.Fatal("empty cache must miss")
	}
	ins, _, ev := c.Insert(42, mem.Shared, LRU[meta]())
	if ev {
		t.Fatal("insert into empty set must not evict")
	}
	if ins.Addr != 42 || ins.State != mem.Shared {
		t.Fatalf("inserted line = %+v", ins)
	}
	got := c.Lookup(42)
	if got == nil || got.Addr != 42 {
		t.Fatal("lookup after insert must hit")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	c := newTestCache(64, 4)
	c.Insert(7, mem.Shared, LRU[meta]())
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Insert must panic")
		}
	}()
	c.Insert(7, mem.Exclusive, LRU[meta]())
}

func TestInsertInvalidStatePanics(t *testing.T) {
	c := newTestCache(64, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert with Invalid state must panic")
		}
	}()
	c.Insert(7, mem.Invalid, LRU[meta]())
}

// sameSet returns n distinct line addresses mapping to the same set.
func sameSet(c *Cache[meta], n int) []mem.LineAddr {
	want := c.SetOf(0)
	out := []mem.LineAddr{0}
	for a := mem.LineAddr(1); len(out) < n; a++ {
		if c.SetOf(a) == want {
			out = append(out, a)
		}
	}
	return out
}

func TestLRUEviction(t *testing.T) {
	c := newTestCache(64, 4)
	addrs := sameSet(c, 5)
	for _, a := range addrs[:4] {
		c.Insert(a, mem.Shared, LRU[meta]())
	}
	// Touch addrs[0] so addrs[1] becomes least recently used.
	c.Touch(c.Lookup(addrs[0]))
	_, victim, evicted := c.Insert(addrs[4], mem.Shared, LRU[meta]())
	if !evicted {
		t.Fatal("full set must evict")
	}
	if victim.Addr != addrs[1] {
		t.Fatalf("victim = %#x, want LRU %#x", victim.Addr, addrs[1])
	}
	if c.Lookup(addrs[1]) != nil {
		t.Fatal("victim must be gone")
	}
	if c.Lookup(addrs[0]) == nil {
		t.Fatal("touched line must survive")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTestCache(64, 4)
	ins, _, _ := c.Insert(9, mem.Modified, LRU[meta]())
	ins.Dirty = true
	rem, ok := c.Invalidate(9)
	if !ok || rem.Addr != 9 || !rem.Dirty || rem.State != mem.Modified {
		t.Fatalf("Invalidate returned %+v ok=%v", rem, ok)
	}
	if c.Lookup(9) != nil || c.Len() != 0 {
		t.Fatal("line must be gone")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double invalidate must report absence")
	}
}

func TestInvalidFreesWay(t *testing.T) {
	c := newTestCache(64, 4)
	addrs := sameSet(c, 5)
	for _, a := range addrs[:4] {
		c.Insert(a, mem.Shared, LRU[meta]())
	}
	c.Invalidate(addrs[2])
	_, _, evicted := c.Insert(addrs[4], mem.Shared, LRU[meta]())
	if evicted {
		t.Fatal("insert must reuse the invalidated way without eviction")
	}
}

func TestModifiedLRUPrefersFewestCopies(t *testing.T) {
	c := newTestCache(64, 4)
	addrs := sameSet(c, 5)
	copies := map[mem.LineAddr]int{
		addrs[0]: 3, addrs[1]: 1, addrs[2]: 0, addrs[3]: 0,
	}
	for _, a := range addrs[:4] {
		c.Insert(a, mem.Shared, LRU[meta]())
	}
	// addrs[2] and addrs[3] tie at 0 copies; addrs[2] is older (inserted
	// earlier), so it must be the victim.
	sel := ModifiedLRU(func(l *Line[meta]) int { return copies[l.Addr] })
	_, victim, _ := c.Insert(addrs[4], mem.Shared, sel)
	if victim.Addr != addrs[2] {
		t.Fatalf("victim = %#x, want %#x (fewest copies, then LRU)", victim.Addr, addrs[2])
	}
}

func TestModifiedLRUDegeneratesToLRU(t *testing.T) {
	c := newTestCache(64, 4)
	addrs := sameSet(c, 5)
	for _, a := range addrs[:4] {
		c.Insert(a, mem.Shared, LRU[meta]())
	}
	sel := ModifiedLRU(func(*Line[meta]) int { return 0 })
	_, victim, _ := c.Insert(addrs[4], mem.Shared, sel)
	if victim.Addr != addrs[0] {
		t.Fatalf("victim = %#x, want LRU %#x", victim.Addr, addrs[0])
	}
}

func TestWaysOf(t *testing.T) {
	c := newTestCache(64, 4)
	c.Insert(3, mem.Shared, LRU[meta]())
	ways := c.WaysOf(3)
	if len(ways) != 4 {
		t.Fatalf("WaysOf returned %d ways", len(ways))
	}
	found := false
	for i := range ways {
		if ways[i].State.Valid() && ways[i].Addr == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("WaysOf must expose the resident line")
	}
}

func TestForEachAndCollectIf(t *testing.T) {
	c := newTestCache(64, 4)
	for a := mem.LineAddr(0); a < 10; a++ {
		c.Insert(a, mem.Shared, LRU[meta]())
	}
	n := 0
	c.ForEach(func(l *Line[meta]) { n++ })
	if n != 10 {
		t.Fatalf("ForEach visited %d lines, want 10", n)
	}
	odd := c.CollectIf(func(l *Line[meta]) bool { return l.Addr%2 == 1 })
	if len(odd) != 5 {
		t.Fatalf("CollectIf returned %d lines, want 5", len(odd))
	}
}

func TestMetaZeroedOnInsert(t *testing.T) {
	c := newTestCache(64, 4)
	ins, _, _ := c.Insert(1, mem.Shared, LRU[meta]())
	ins.Meta.tag = 99
	c.Invalidate(1)
	ins2, _, _ := c.Insert(1, mem.Shared, LRU[meta]())
	if ins2.Meta.tag != 0 {
		t.Fatal("Meta must be zeroed on insert")
	}
}

// TestOccupancyInvariant: Len never exceeds Capacity and always equals the
// number of valid lines, under arbitrary insert/invalidate sequences.
func TestOccupancyInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := newTestCache(128, 4)
		for _, op := range ops {
			a := mem.LineAddr(op % 512)
			if op&0x8000 != 0 {
				c.Invalidate(a)
			} else if c.Lookup(a) == nil {
				c.Insert(a, mem.Shared, LRU[meta]())
			}
			if c.Len() > c.Capacity() {
				return false
			}
		}
		valid := 0
		c.ForEach(func(*Line[meta]) { valid++ })
		return valid == c.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestLookupAlwaysFindsInserted: a line inserted and not evicted or
// invalidated is always found.
func TestLookupAlwaysFindsInserted(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := newTestCache(4096, 8) // large: no evictions for small inputs
		seen := map[mem.LineAddr]bool{}
		for _, a16 := range addrs {
			a := mem.LineAddr(a16)
			if !seen[a] {
				c.Insert(a, mem.Exclusive, LRU[meta]())
				seen[a] = true
			}
			if c.Lookup(a) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSetHashSpread: the hashed set index must spread stride-64 (same low
// bits) addresses across many sets — the property raw bit-selection lacks
// and the reason hashing is used (see SetOf).
func TestSetHashSpread(t *testing.T) {
	c := newTestCache(4096, 8) // 512 sets
	used := map[int]bool{}
	for i := 0; i < 512; i++ {
		used[c.SetOf(mem.LineAddr(i*64))] = true // all ≡ 0 mod 64
	}
	if len(used) < 256 {
		t.Fatalf("stride-64 addresses hit only %d of 512 sets", len(used))
	}
}
