// Package cache implements the set-associative cache model used for both the
// private L1 caches and the LLC slices. The cache is generic over a metadata
// type M so the coherence engine can attach directory entries and
// replica-reuse counters to LLC lines without this package knowing about
// them. Victim selection is pluggable; the two policies from the paper
// (plain LRU and the modified LRU of §2.2.4 that first minimizes the number
// of L1 copies) are provided.
package cache

import (
	"math/bits"

	"lard/internal/mem"
)

// Line is one cache line. A Line with State Invalid is a free way.
type Line[M any] struct {
	// Addr is the line address stored in the tag.
	Addr mem.LineAddr
	// State is the MESI state of this copy.
	State mem.MESI
	// Dirty reports whether the copy differs from the next level.
	Dirty bool
	// LastUse is the LRU timestamp (monotonic per cache).
	LastUse uint64
	// Meta is caller-defined per-line metadata.
	Meta M
}

// VictimSelector picks the index of the way to evict among a full set. Every
// line passed to the selector is valid. now is the current LRU clock.
type VictimSelector[M any] func(ways []Line[M]) int

// Cache is a set-associative cache with W ways and S sets.
type Cache[M any] struct {
	sets, ways int
	lines      []Line[M] // sets*ways, set-major
	clock      uint64
	size       int // number of valid lines
}

// New returns a cache with the given total line count and associativity.
// totalLines must be a positive multiple of ways and totalLines/ways must be
// a power of two (so set indexing is a mask).
func New[M any](totalLines, ways int) *Cache[M] {
	if totalLines <= 0 || ways <= 0 || totalLines%ways != 0 {
		panic("cache: totalLines must be a positive multiple of ways")
	}
	sets := totalLines / ways
	if bits.OnesCount(uint(sets)) != 1 {
		panic("cache: number of sets must be a power of two")
	}
	return &Cache[M]{sets: sets, ways: ways, lines: make([]Line[M], totalLines)}
}

// Sets returns the number of sets.
func (c *Cache[M]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache[M]) Ways() int { return c.ways }

// Capacity returns the total number of lines the cache can hold.
func (c *Cache[M]) Capacity() int { return c.sets * c.ways }

// Len returns the number of currently valid lines.
func (c *Cache[M]) Len() int { return c.size }

// SetOf returns the set index for line a. The index mixes the whole line
// address (a Fibonacci-hash fold) rather than selecting raw low bits: the
// LLC home interleaving fixes the low log2(cores) bits of every line mapped
// to a slice, so raw bit-selection would leave most sets of a slice unused.
// Hashed indexing is applied uniformly to every cache so all schemes see the
// same placement behaviour.
func (c *Cache[M]) SetOf(a mem.LineAddr) int {
	h := uint64(a) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	return int(h & uint64(c.sets-1))
}

func (c *Cache[M]) set(a mem.LineAddr) []Line[M] {
	s := c.SetOf(a)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup returns the valid line holding a, or nil on miss. It does not touch
// LRU state; callers decide when a lookup counts as a use (Touch).
func (c *Cache[M]) Lookup(a mem.LineAddr) *Line[M] {
	set := c.set(a)
	for i := range set {
		if set[i].State.Valid() && set[i].Addr == a {
			return &set[i]
		}
	}
	return nil
}

// Touch marks l as most recently used.
func (c *Cache[M]) Touch(l *Line[M]) {
	c.clock++
	l.LastUse = c.clock
}

// Insert places line a into the cache in the given state and returns a
// pointer to the inserted line. If the set is full, sel chooses the victim;
// the evicted line is returned with evicted=true. Inserting an address that
// is already present panics: callers must Lookup first.
//
// The returned insert pointer is valid until the next mutation of the cache.
func (c *Cache[M]) Insert(a mem.LineAddr, state mem.MESI, sel VictimSelector[M]) (inserted *Line[M], victim Line[M], evicted bool) {
	if !state.Valid() {
		panic("cache: Insert with Invalid state")
	}
	set := c.set(a)
	free := -1
	for i := range set {
		if !set[i].State.Valid() {
			if free < 0 {
				free = i
			}
			continue
		}
		if set[i].Addr == a {
			panic("cache: Insert of already-present line")
		}
	}
	if free < 0 {
		free = sel(set)
		if free < 0 || free >= len(set) {
			panic("cache: victim selector returned out-of-range way")
		}
		victim = set[free]
		evicted = true
		c.size--
	}
	c.clock++
	var zero M
	set[free] = Line[M]{Addr: a, State: state, LastUse: c.clock, Meta: zero}
	c.size++
	return &set[free], victim, evicted
}

// Invalidate removes line a if present and returns the removed copy.
func (c *Cache[M]) Invalidate(a mem.LineAddr) (removed Line[M], ok bool) {
	l := c.Lookup(a)
	if l == nil {
		return Line[M]{}, false
	}
	removed = *l
	l.State = mem.Invalid
	l.Dirty = false
	c.size--
	return removed, true
}

// WaysOf returns the set holding line a as a mutable slice. Callers may
// inspect the ways (e.g. to pre-check an insertion filter) but must not
// change Addr/State directly; use Insert and Invalidate for that.
func (c *Cache[M]) WaysOf(a mem.LineAddr) []Line[M] { return c.set(a) }

// ForEach calls fn for every valid line. fn must not insert or invalidate.
func (c *Cache[M]) ForEach(fn func(l *Line[M])) {
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			fn(&c.lines[i])
		}
	}
}

// CollectIf returns the addresses of all valid lines for which pred is true.
// It is used by the R-NUCA page re-classification path, which must flush
// every line of a page from its old home.
func (c *Cache[M]) CollectIf(pred func(l *Line[M]) bool) []mem.LineAddr {
	var out []mem.LineAddr
	for i := range c.lines {
		if c.lines[i].State.Valid() && pred(&c.lines[i]) {
			out = append(out, c.lines[i].Addr)
		}
	}
	return out
}

// LRU is the traditional least-recently-used victim selector.
func LRU[M any]() VictimSelector[M] {
	return func(ways []Line[M]) int {
		best := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].LastUse < ways[best].LastUse {
				best = i
			}
		}
		return best
	}
}

// ModifiedLRU is the paper's LLC replacement policy (§2.2.4): it first
// selects the lines with the fewest L1 cache copies (available from the
// in-cache directory via the copies callback) and then applies LRU among
// them. With copies always returning 0 it degenerates to plain LRU.
func ModifiedLRU[M any](copies func(l *Line[M]) int) VictimSelector[M] {
	return func(ways []Line[M]) int {
		best := 0
		bestCopies := copies(&ways[0])
		for i := 1; i < len(ways); i++ {
			n := copies(&ways[i])
			if n < bestCopies || (n == bestCopies && ways[i].LastUse < ways[best].LastUse) {
				best = i
				bestCopies = n
			}
		}
		return best
	}
}
