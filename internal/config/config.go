// Package config holds the architectural parameters of the simulated
// multicore. Default64 reproduces Table 1 of the paper exactly; Small is a
// scaled-down configuration with the same *ratios* used by unit tests and Go
// benchmarks so the suite stays fast.
package config

import (
	"fmt"

	"lard/internal/mem"
)

// ReplacementPolicy selects the LLC victim-selection policy (§2.2.4).
type ReplacementPolicy uint8

// LLC replacement policies.
const (
	// PlainLRU is the traditional least-recently-used policy.
	PlainLRU ReplacementPolicy = iota
	// ModifiedLRU first selects the lines with the fewest L1 copies and then
	// the least recently used among them (the paper's policy, §2.2.4).
	ModifiedLRU
	// TLHLRU is plain LRU kept honest by Temporal Locality Hint messages
	// from the L1 to the LLC (Jaleel et al., the alternative §2.2.4 cites):
	// periodic L1 hits refresh the LLC copy's recency at the cost of extra
	// network traffic. The paper's modified-LRU achieves the same effect
	// from the in-cache directory for free.
	TLHLRU
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case ModifiedLRU:
		return "modified-lru"
	case TLHLRU:
		return "tlh-lru"
	default:
		return "lru"
	}
}

// Config collects every architectural parameter of the simulated system.
// All latencies are in cycles of the 1 GHz core clock.
type Config struct {
	// Cores is the number of tiles; MeshW*MeshH must equal Cores.
	Cores int
	// MeshW and MeshH are the mesh dimensions.
	MeshW, MeshH int

	// L1ILines and L1IWays describe the per-core L1 instruction cache.
	L1ILines, L1IWays int
	// L1DLines and L1DWays describe the per-core L1 data cache.
	L1DLines, L1DWays int
	// L1Latency is the L1 hit latency.
	L1Latency mem.Cycles

	// LLCSliceLines and LLCWays describe one per-core LLC (L2) slice.
	LLCSliceLines, LLCWays int
	// LLCTagLatency and LLCDataLatency are the LLC tag and data array
	// latencies (a hit pays tag+data).
	LLCTagLatency, LLCDataLatency mem.Cycles

	// AckwisePointers is p in ACKwise-p (0 selects a full-map directory).
	AckwisePointers int

	// DRAMControllers is the number of on-die memory controllers.
	DRAMControllers int
	// DRAMLatency is the fixed DRAM access latency (75 ns at 1 GHz).
	DRAMLatency mem.Cycles
	// DRAMCyclesPerLine is the per-controller bandwidth occupancy of one
	// cache-line transfer (64 B at 5 GB/s = 12.8 ns at 1 GHz).
	DRAMCyclesPerLine mem.Cycles

	// HopLatency is the per-hop mesh latency (1 router + 1 link).
	HopLatency mem.Cycles
	// HeaderFlits is the size of an address-only message; DataFlits is the
	// additional flits of a cache-line payload (512 bits / 64-bit flits).
	HeaderFlits, DataFlits int

	// RT is the replication threshold of the locality-aware protocol.
	RT int
	// ClassifierK is k of the Limited-k classifier; 0 selects Complete.
	ClassifierK int
	// ClusterSize is the replication cluster size (1 = local slice, §2.3.4).
	ClusterSize int
	// Replacement selects the LLC victim policy.
	Replacement ReplacementPolicy
	// TLHPeriod is the hint period of the TLHLRU policy: every TLHPeriod-th
	// L1 hit to a line sends a temporal locality hint to its LLC location.
	TLHPeriod int
	// LookupOracle enables the §2.3.2 dynamic oracle that skips local-slice
	// lookups that would miss (used only for the ablation).
	LookupOracle bool
	// KeepL1OnReplicaEvict enables the §2.2.3 alternative the paper
	// rejected: an evicted LLC replica leaves the L1 copy valid (two
	// acknowledgement messages instead of a back-invalidation). The paper
	// measured a negligible difference and chose the simpler protocol.
	KeepL1OnReplicaEvict bool
}

// Default64 returns the Table 1 configuration: 64 cores at 1 GHz, 16 KB/32 KB
// 4-way L1-I/L1-D (1 cycle), 256 KB 8-way LLC slices (2-cycle tag, 4-cycle
// data), ACKwise-4, 8 DRAM controllers at 5 GB/s and 75 ns, 2-cycle mesh hops,
// 64-bit flits with 1 header flit and 8-flit cache lines, RT = 3, Limited-3
// classifier, cluster size 1, modified-LRU replacement.
func Default64() *Config {
	return &Config{
		Cores: 64, MeshW: 8, MeshH: 8,
		L1ILines: 16 * 1024 / mem.LineBytes, L1IWays: 4,
		L1DLines: 32 * 1024 / mem.LineBytes, L1DWays: 4,
		L1Latency:     1,
		LLCSliceLines: 256 * 1024 / mem.LineBytes, LLCWays: 8,
		LLCTagLatency: 2, LLCDataLatency: 4,
		AckwisePointers: 4,
		DRAMControllers: 8, DRAMLatency: 75, DRAMCyclesPerLine: 13,
		HopLatency:  2,
		HeaderFlits: 1, DataFlits: 8,
		RT: 3, ClassifierK: 3, ClusterSize: 1,
		Replacement: ModifiedLRU, TLHPeriod: 16,
	}
}

// Small returns a 16-core configuration with caches scaled down 4x (same
// associativities, latencies and flit sizes) for fast tests and Go benchmarks.
func Small() *Config {
	c := Default64()
	c.Cores, c.MeshW, c.MeshH = 16, 4, 4
	c.L1ILines /= 4
	c.L1DLines /= 4
	c.LLCSliceLines /= 4
	c.DRAMControllers = 4
	return c
}

// ForCores returns the machine preset for a core count: the Table-1
// 64-core machine (also the 0-means-default case), or the scaled-down 16-
// and 4-core variants. It is the single source of truth for the supported
// presets — every layer that resolves a user-facing core count (the lard
// facade, the harness) goes through here, so a typo like 46 can never
// silently select a different machine than the one requested.
func ForCores(n int) (*Config, error) {
	switch n {
	case 0, 64:
		return Default64(), nil
	case 16:
		return Small(), nil
	case 4:
		c := Small()
		c.Cores, c.MeshW, c.MeshH = 4, 2, 2
		c.DRAMControllers = 2
		return c, nil
	}
	return nil, fmt.Errorf("config: unsupported core count %d (use 4, 16 or 64)", n)
}

// Validate checks internal consistency and returns a descriptive error for
// the first violated constraint.
func (c *Config) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.MeshW*c.MeshH != c.Cores:
		return fmt.Errorf("config: mesh %dx%d does not cover %d cores", c.MeshW, c.MeshH, c.Cores)
	case c.L1ILines <= 0 || c.L1IWays <= 0 || c.L1ILines%c.L1IWays != 0:
		return fmt.Errorf("config: bad L1-I geometry %d lines / %d ways", c.L1ILines, c.L1IWays)
	case c.L1DLines <= 0 || c.L1DWays <= 0 || c.L1DLines%c.L1DWays != 0:
		return fmt.Errorf("config: bad L1-D geometry %d lines / %d ways", c.L1DLines, c.L1DWays)
	case c.LLCSliceLines <= 0 || c.LLCWays <= 0 || c.LLCSliceLines%c.LLCWays != 0:
		return fmt.Errorf("config: bad LLC geometry %d lines / %d ways", c.LLCSliceLines, c.LLCWays)
	case c.AckwisePointers < 0:
		return fmt.Errorf("config: AckwisePointers must be >= 0, got %d", c.AckwisePointers)
	case c.DRAMControllers <= 0 || c.DRAMControllers > c.Cores:
		return fmt.Errorf("config: DRAMControllers %d out of range 1..%d", c.DRAMControllers, c.Cores)
	case c.RT < 1:
		return fmt.Errorf("config: RT must be >= 1, got %d", c.RT)
	case c.ClassifierK < 0 || c.ClassifierK > c.Cores:
		return fmt.Errorf("config: ClassifierK %d out of range 0..%d", c.ClassifierK, c.Cores)
	case c.ClusterSize < 1 || c.Cores%c.ClusterSize != 0:
		return fmt.Errorf("config: ClusterSize %d must divide Cores %d", c.ClusterSize, c.Cores)
	case c.HeaderFlits < 1 || c.DataFlits < 1:
		return fmt.Errorf("config: flit counts must be >= 1 (header %d, data %d)", c.HeaderFlits, c.DataFlits)
	}
	return nil
}

// Clone returns a deep copy (Config contains no reference fields today, but
// callers should not rely on that).
func (c *Config) Clone() *Config {
	d := *c
	return &d
}

// LLCTotalLines returns the aggregate LLC capacity in lines.
func (c *Config) LLCTotalLines() int { return c.LLCSliceLines * c.Cores }

// ClusterOf returns the replication cluster index of core id.
func (c *Config) ClusterOf(id mem.CoreID) int { return int(id) / c.ClusterSize }

// ClusterMembers returns the core IDs in cluster cl, lowest first.
func (c *Config) ClusterMembers(cl int) []mem.CoreID {
	out := make([]mem.CoreID, c.ClusterSize)
	for i := range out {
		out[i] = mem.CoreID(cl*c.ClusterSize + i)
	}
	return out
}
