package config

import (
	"testing"

	"lard/internal/mem"
)

// TestTable1 pins every Table-1 parameter of the paper.
func TestTable1(t *testing.T) {
	c := Default64()
	checks := []struct {
		name      string
		got, want int
	}{
		{"Cores", c.Cores, 64},
		{"MeshW", c.MeshW, 8},
		{"MeshH", c.MeshH, 8},
		{"L1I lines (16 KB)", c.L1ILines, 256},
		{"L1I ways", c.L1IWays, 4},
		{"L1D lines (32 KB)", c.L1DLines, 512},
		{"L1D ways", c.L1DWays, 4},
		{"LLC slice lines (256 KB)", c.LLCSliceLines, 4096},
		{"LLC ways", c.LLCWays, 8},
		{"ACKwise pointers", c.AckwisePointers, 4},
		{"DRAM controllers", c.DRAMControllers, 8},
		{"header flits", c.HeaderFlits, 1},
		{"data flits (512-bit line / 64-bit flit)", c.DataFlits, 8},
		{"RT", c.RT, 3},
		{"Limited-k", c.ClassifierK, 3},
		{"cluster size", c.ClusterSize, 1},
	}
	for _, ch := range checks {
		if ch.got != ch.want {
			t.Errorf("%s = %d, want %d", ch.name, ch.got, ch.want)
		}
	}
	if c.L1Latency != 1 {
		t.Errorf("L1 latency = %d, want 1 cycle", c.L1Latency)
	}
	if c.LLCTagLatency != 2 || c.LLCDataLatency != 4 {
		t.Errorf("LLC latencies = %d/%d, want 2/4 cycles", c.LLCTagLatency, c.LLCDataLatency)
	}
	if c.DRAMLatency != 75 {
		t.Errorf("DRAM latency = %d, want 75 cycles (75 ns at 1 GHz)", c.DRAMLatency)
	}
	if c.DRAMCyclesPerLine != 13 {
		t.Errorf("DRAM occupancy = %d, want 13 cycles (64 B at 5 GB/s)", c.DRAMCyclesPerLine)
	}
	if c.HopLatency != 2 {
		t.Errorf("hop latency = %d, want 2 cycles", c.HopLatency)
	}
	if c.Replacement != ModifiedLRU {
		t.Errorf("replacement = %v, want modified-lru", c.Replacement)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Default64 must validate: %v", err)
	}
}

func TestSmall(t *testing.T) {
	c := Small()
	if err := c.Validate(); err != nil {
		t.Fatalf("Small must validate: %v", err)
	}
	if c.Cores != 16 || c.MeshW != 4 || c.MeshH != 4 {
		t.Errorf("Small mesh = %dx%d/%d cores", c.MeshW, c.MeshH, c.Cores)
	}
	d := Default64()
	if c.L1DLines*4 != d.L1DLines || c.LLCSliceLines*4 != d.LLCSliceLines {
		t.Error("Small caches must be 4x smaller than Table 1")
	}
	if c.L1DWays != d.L1DWays || c.LLCWays != d.LLCWays {
		t.Error("Small must keep associativities")
	}
}

func TestValidateErrors(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"mesh mismatch", func(c *Config) { c.MeshW = 7 }},
		{"bad L1I ways", func(c *Config) { c.L1IWays = 5 }},
		{"zero L1D", func(c *Config) { c.L1DLines = 0 }},
		{"bad LLC geometry", func(c *Config) { c.LLCWays = 7 }},
		{"negative ackwise", func(c *Config) { c.AckwisePointers = -1 }},
		{"zero DRAM controllers", func(c *Config) { c.DRAMControllers = 0 }},
		{"too many DRAM controllers", func(c *Config) { c.DRAMControllers = 65 }},
		{"RT zero", func(c *Config) { c.RT = 0 }},
		{"classifier K too big", func(c *Config) { c.ClassifierK = 65 }},
		{"cluster does not divide", func(c *Config) { c.ClusterSize = 3 }},
		{"cluster zero", func(c *Config) { c.ClusterSize = 0 }},
		{"zero header flits", func(c *Config) { c.HeaderFlits = 0 }},
	}
	for _, m := range mutations {
		c := Default64()
		m.mut(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate must fail", m.name)
		}
	}
}

func TestClone(t *testing.T) {
	c := Default64()
	d := c.Clone()
	d.RT = 8
	if c.RT != 3 {
		t.Error("Clone must not alias the original")
	}
}

func TestLLCTotalLines(t *testing.T) {
	if got := Default64().LLCTotalLines(); got != 64*4096 {
		t.Errorf("LLCTotalLines = %d, want %d (16 MB aggregate)", got, 64*4096)
	}
}

func TestClusterOf(t *testing.T) {
	c := Default64()
	c.ClusterSize = 4
	cases := []struct {
		core mem.CoreID
		want int
	}{{0, 0}, {3, 0}, {4, 1}, {63, 15}}
	for _, cs := range cases {
		if got := c.ClusterOf(cs.core); got != cs.want {
			t.Errorf("ClusterOf(%d) = %d, want %d", cs.core, got, cs.want)
		}
	}
}

func TestClusterMembers(t *testing.T) {
	c := Default64()
	c.ClusterSize = 4
	got := c.ClusterMembers(2)
	want := []mem.CoreID{8, 9, 10, 11}
	if len(got) != len(want) {
		t.Fatalf("ClusterMembers(2) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ClusterMembers(2) = %v, want %v", got, want)
		}
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if PlainLRU.String() != "lru" || ModifiedLRU.String() != "modified-lru" {
		t.Error("ReplacementPolicy.String mismatch")
	}
}
