package lard

import (
	"fmt"

	"lard/internal/coherence"
	"lard/internal/config"
	"lard/internal/sim"
)

// ExpectedHitCount returns the expected-hit-count replication scheme with
// threshold rt: a line replicates in every remote reader's local slice once
// its home has serviced rt reads since the last write. The engine-side
// policy lives in internal/coherence/policy_ehc.go; this file is its wire
// registration — together they are the complete footprint of the scheme.
func ExpectedHitCount(rt int) Scheme { return Scheme{Kind: "EHC", RT: rt} }

func init() {
	registerScheme("EHC", schemeDef{
		engine: coherence.ExpectedHitCount,
		label:  func(s Scheme) string { return fmt.Sprintf("EHC-%d", s.RT) },
		params: []SchemeParam{
			{Name: "rt", Doc: "hit-count threshold, 1..255: home reads since the last write before a line replicates"},
		},
		example: ExpectedHitCount(3),
		validate: func(s Scheme) error {
			if s.RT < 1 {
				return fmt.Errorf("lard: EHC scheme requires a hit-count threshold >= 1, got %d (did you mean ExpectedHitCount(3)?)", s.RT)
			}
			if s.RT > maxThreshold {
				// The home-read counter is 8 bits; a larger threshold could
				// never fire and the run would silently be S-NUCA under an
				// EHC-N label.
				return fmt.Errorf("lard: EHC scheme threshold rt must be <= %d (8-bit hit counter), got %d", maxThreshold, s.RT)
			}
			return nil
		},
		apply: func(s Scheme, cfg *config.Config, _ *sim.Options) {
			cfg.RT = s.RT
		},
	})
}
