package lard_test

import (
	"testing"

	"lard"
)

// TestPaperSchemeKeysPinned is the refactor's regression anchor: the five
// paper schemes must produce byte-identical labels and content-addressed
// result-store keys across any rearrangement of the scheme dispatch. The
// keys below were captured from the pre-registry implementation; a
// mismatch means every previously stored result silently stops resolving —
// treat a failure as a bug in the change, never re-pin without a
// deliberate store-format migration.
func TestPaperSchemeKeysPinned(t *testing.T) {
	defaults := lard.Options{}
	scaled := lard.Options{Cores: 16, OpsScale: 0.1, Seed: 7}
	cases := []struct {
		scheme    lard.Scheme
		label     string
		benchmark string
		options   lard.Options
		key       string
	}{
		{lard.SNUCA(), "S-NUCA", "BARNES", defaults, "1758f2f4d6c080c11986f96dfe1259c67b708bec2191d9e5f7175d2458b94319"},
		{lard.SNUCA(), "S-NUCA", "RADIX", scaled, "9b0a1b2b4892d739fec0abf3bdd31f661ecc5c48281189ee5048dbe8cc1e739b"},
		{lard.RNUCA(), "R-NUCA", "BARNES", defaults, "fab25c3e42cf8638cd5fa48e8fda859ef33ef51b016335d79f0b91b38d1d8e7d"},
		{lard.RNUCA(), "R-NUCA", "RADIX", scaled, "e68a89106409982c9f832f08efb5fbe05dbdc17c793230df19fd47a4e04ce0f6"},
		{lard.VictimReplication(), "VR", "BARNES", defaults, "49731beebc7131d31bc4bb89e8cad89981350c0d32a7752a06567df089e89c09"},
		{lard.VictimReplication(), "VR", "RADIX", scaled, "4b828ea745da2a2426d84c2e8acf41270945b6de1b52173fd18c1b44e5e7d791"},
		{lard.ASR(0.5), "ASR", "BARNES", defaults, "89d6d1f8fdbf744f640679f4a810d3e12ec109690149983071cc83a40bea8541"},
		{lard.ASR(0.5), "ASR", "RADIX", scaled, "3a75bd145186a9c6cab709023dc8cd3ad1abab03dc5a6a0674f411dd4d624c87"},
		{lard.ASR(1), "ASR", "BARNES", defaults, "240469ca31e7bb1d52c84f5a2153f36f6899071aac046bdf7b47554abdacac47"},
		{lard.LocalityAware(1), "RT-1", "BARNES", defaults, "552ae47e1322020df7c12b60ba53dbbf9c001567c8fb1cef2381d10452ca2f8e"},
		{lard.LocalityAware(1), "RT-1", "RADIX", scaled, "5abc40541ff5b08c5e4529a1c2728e6b12a4b90a0c2880ebe73bf77c8b166f8d"},
		{lard.LocalityAware(3), "RT-3", "BARNES", defaults, "90c81146200df84032cdffedcc02a8909bd41d847790e401f5d7a8953aaf29cb"},
		{lard.LocalityAware(3), "RT-3", "RADIX", scaled, "4020694b727d30fbb6e473e63e05e7709eefcdd349c08fbf90f6d763d31f24d6"},
		{lard.LocalityAware(8), "RT-8", "BARNES", defaults, "3e75991a90971c92a078fa677fdde19dc37d432bbd9f849c0ac98eb174812180"},
		{lard.LocalityAware(8), "RT-8", "RADIX", scaled, "5159fa03e2b0aca52203b4412aa1d864043c0f8ac149c62d554ee2b2c6be6163"},
		// Parameter variations: cluster replication, the plain-LRU ablation
		// and the lookup oracle each fold into the address.
		{lard.Scheme{Kind: "RT", RT: 3, ClassifierK: 3, ClusterSize: 4}, "RT-3", "BARNES", defaults,
			"61318def672aa89191049b7974d502eb1f7f49828db26d700a45f9f1d7f72abb"},
		{lard.Scheme{Kind: "S-NUCA", PlainLRU: true}, "S-NUCA", "BARNES", defaults,
			"6eaa95c498d9906d64885fcfd9064aad77e7aab48d4ba77b398ea6a016280fc5"},
		{lard.Scheme{Kind: "RT", RT: 3, ClassifierK: 3, ClusterSize: 1, LookupOracle: true}, "RT-3", "BARNES", defaults,
			"03809d55a215124430340cd3de0af96cc14fcfed65db51ec09cfeddf2cd2db33"},
	}
	for _, c := range cases {
		if got := c.scheme.Label(); got != c.label {
			t.Errorf("%+v Label() = %q, want %q", c.scheme, got, c.label)
		}
		key, err := lard.KeyFor(c.benchmark, c.scheme, c.options)
		if err != nil {
			t.Errorf("KeyFor(%s, %s): %v", c.benchmark, c.label, err)
			continue
		}
		if key != c.key {
			t.Errorf("KeyFor(%s, %s, %+v) = %s, want pinned %s — stored results would stop resolving",
				c.benchmark, c.label, c.options, key, c.key)
		}
	}
}

// TestFigureSchemesPinned pins the registry-derived figure columns to the
// paper's seven, in figure order, with their historical labels.
func TestFigureSchemesPinned(t *testing.T) {
	want := []string{"S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-3", "RT-8"}
	got := lard.FigureSchemes()
	if len(got) != len(want) {
		t.Fatalf("FigureSchemes has %d columns, want %d", len(got), len(want))
	}
	for i, s := range got {
		if s.Label() != want[i] {
			t.Errorf("column %d = %q, want %q", i, s.Label(), want[i])
		}
	}
	if got[3].ASRLevel != 0.5 {
		t.Errorf("ASR column level = %v, want the pinned 0.5", got[3].ASRLevel)
	}
}
